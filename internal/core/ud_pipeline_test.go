package iwarp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/rudp"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// newRDNode opens a UDQP over an rudp endpoint (the RD service).
func newRDNode(t *testing.T, net *simnet.Network, name string, cfg UDConfig) *udNode {
	t.Helper()
	ep, err := net.OpenDatagram(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	nd := &udNode{pd: memreg.NewPD(), tbl: memreg.NewTable(), scq: NewCQ(0), rcq: NewCQ(0)}
	nd.qp, err = OpenUD(rudp.New(ep), nd.pd, nd.tbl, nd.scq, nd.rcq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.qp.Close() })
	return nd
}

// TestUDBlockOnRNRWaitsForPostRecv is the RNR regression test: a message
// arriving before any receive is posted must park on PostRecv's
// notification and complete as soon as a buffer appears — not spin, not
// drop.
func TestUDBlockOnRNRWaitsForPostRecv(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newRDNode(t, net, "a", UDConfig{})
	b := newRDNode(t, net, "b", UDConfig{BlockOnRNR: true, ReassemblyTimeout: 5 * time.Second})

	msg := bytes.Repeat([]byte{0x5a}, 2000)
	if err := a.qp.PostSend(1, b.qp.LocalAddr(), nio.VecOf(msg)); err != nil {
		t.Fatal(err)
	}
	// Let the message arrive and the placement engine block on RNR.
	time.Sleep(50 * time.Millisecond)
	buf := make([]byte, 4096)
	if err := b.qp.PostRecv(7, buf); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	e, err := b.rcq.Poll(2 * time.Second)
	if err != nil {
		t.Fatalf("blocked message never delivered: %v", err)
	}
	if !e.Ok() || e.WRID != 7 || !bytes.Equal(buf[:e.ByteLen], msg) {
		t.Fatalf("CQE %+v", e)
	}
	// The notification must wake the engine promptly — this bound is ~3
	// orders of magnitude above the wakeup cost, but far below the
	// reassembly timeout a pollless implementation would sleep toward.
	if wait := time.Since(start); wait > time.Second {
		t.Fatalf("delivery took %v after PostRecv", wait)
	}
	if n := b.qp.Stats().RecvDropped; n != 0 {
		t.Fatalf("RecvDropped = %d, want 0", n)
	}
}

// TestUDBlockOnRNRTimesOut: the RNR wait is bounded — with no receive ever
// posted the message is dropped after the reassembly timeout and the QP
// stays usable.
func TestUDBlockOnRNRTimesOut(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newRDNode(t, net, "a", UDConfig{})
	b := newRDNode(t, net, "b", UDConfig{BlockOnRNR: true, ReassemblyTimeout: 100 * time.Millisecond})

	if err := a.qp.PostSend(1, b.qp.LocalAddr(), nio.VecOf([]byte("nobody home"))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for b.qp.Stats().RecvDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("RNR wait never timed out")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The QP is not wedged: post a receive and deliver a second message.
	buf := make([]byte, 256)
	if err := b.qp.PostRecv(8, buf); err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostSend(2, b.qp.LocalAddr(), nio.VecOf([]byte("second"))); err != nil {
		t.Fatal(err)
	}
	e, err := b.rcq.Poll(2 * time.Second)
	if err != nil || !e.Ok() || e.WRID != 8 {
		t.Fatalf("post-timeout delivery: CQE %+v err %v", e, err)
	}
}

// TestUDShardedPerPeerOrdering pins the pipeline's ordering invariant: with
// several placement workers and an in-order network, completions for any
// one peer arrive in that peer's send order, however the peers interleave.
func TestUDShardedPerPeerOrdering(t *testing.T) {
	net := simnet.New(simnet.Config{})
	recv := newUDNode(t, net, "recv", UDConfig{RecvWorkers: 4, RecvDepth: 2048})

	const peers = 8
	const msgs = 50
	bufs := make(map[uint64][]byte)
	for i := 0; i < peers*msgs; i++ {
		buf := make([]byte, 64)
		bufs[uint64(i)] = buf
		if err := recv.qp.PostRecv(uint64(i), buf); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for p := 0; p < peers; p++ {
		nd := newUDNode(t, net, fmt.Sprintf("peer%d", p), UDConfig{})
		wg.Add(1)
		go func(nd *udNode, p int) {
			defer wg.Done()
			var msg [8]byte
			for i := 0; i < msgs; i++ {
				binary.BigEndian.PutUint32(msg[:4], uint32(p))
				binary.BigEndian.PutUint32(msg[4:], uint32(i))
				if err := nd.qp.PostSend(uint64(i), recv.qp.LocalAddr(), nio.VecOf(msg[:])); err != nil {
					t.Error(err)
					return
				}
			}
		}(nd, p)
	}
	wg.Wait()

	lastSeq := make(map[transport.Addr]int)
	for got := 0; got < peers*msgs; got++ {
		e, err := recv.rcq.Poll(5 * time.Second)
		if err != nil {
			t.Fatalf("after %d completions: %v", got, err)
		}
		if !e.Ok() || e.ByteLen != 8 {
			t.Fatalf("CQE %+v", e)
		}
		body := bufs[e.WRID]
		peer := binary.BigEndian.Uint32(body[:4])
		seq := int(binary.BigEndian.Uint32(body[4:8]))
		if last, ok := lastSeq[e.Src]; ok && seq != last+1 {
			t.Fatalf("peer %d (src %v): seq %d after %d — per-peer order violated", peer, e.Src, seq, last)
		}
		lastSeq[e.Src] = seq
	}
	if len(lastSeq) != peers {
		t.Fatalf("completions from %d peers, want %d", len(lastSeq), peers)
	}
}

// TestUDPipelineStress hammers the sharded pipeline with loss, duplication
// and (in one variant) reordering, with both worker counts, checking every
// delivered message for integrity and — when the network is FIFO per peer —
// per-peer completion order. Run with -race to make it a concurrency test.
func TestUDPipelineStress(t *testing.T) {
	const peers = 6
	const msgs = 30
	const msgSize = 3000

	variants := []struct {
		name    string
		cfg     simnet.Config
		ordered bool // network delivers FIFO per peer (dups are adjacent)
	}{
		{"loss+dup/workers=1", simnet.Config{LossRate: 0.05, DupRate: 0.05, Seed: 7}, true},
		{"loss+dup/workers=4", simnet.Config{LossRate: 0.05, DupRate: 0.05, Seed: 7}, true},
		{"loss+reorder+dup/workers=4", simnet.Config{LossRate: 0.03, ReorderRate: 0.2, DupRate: 0.05, Seed: 11}, false},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			workers := 1
			if v.name[len(v.name)-1] == '4' {
				workers = 4
			}
			net := simnet.New(v.cfg)
			recv := newUDNode(t, net, "recv", UDConfig{
				RecvWorkers: workers, RecvDepth: 4096,
				ReassemblyTimeout: 300 * time.Millisecond,
			})
			// Duplication can deliver a message twice; every delivery
			// consumes a receive, so post generously.
			total := peers * msgs * 2
			bufs := make(map[uint64][]byte)
			for i := 0; i < total; i++ {
				buf := make([]byte, msgSize)
				bufs[uint64(i)] = buf
				if err := recv.qp.PostRecv(uint64(i), buf); err != nil {
					t.Fatal(err)
				}
			}

			var wg sync.WaitGroup
			for p := 0; p < peers; p++ {
				nd := newUDNode(t, net, fmt.Sprintf("p%d", p), UDConfig{})
				wg.Add(1)
				go func(nd *udNode, p int) {
					defer wg.Done()
					for i := 0; i < msgs; i++ {
						msg := stressPayload(p, i, msgSize)
						if err := nd.qp.PostSend(uint64(i), recv.qp.LocalAddr(), nio.VecOf(msg)); err != nil {
							t.Error(err)
							return
						}
					}
				}(nd, p)
			}
			wg.Wait()

			lastSeq := make(map[transport.Addr]int)
			delivered := 0
			for {
				e, err := recv.rcq.Poll(time.Second)
				if err != nil {
					break // quiet: everything that survived the wire is in
				}
				if !e.Ok() || e.ByteLen != msgSize {
					t.Fatalf("CQE %+v", e)
				}
				body := bufs[e.WRID]
				peer := int(binary.BigEndian.Uint32(body[:4]))
				seq := int(binary.BigEndian.Uint32(body[4:8]))
				if !bytes.Equal(body[:msgSize], stressPayload(peer, seq, msgSize)) {
					t.Fatalf("peer %d seq %d: payload corrupt", peer, seq)
				}
				if v.ordered {
					if last, ok := lastSeq[e.Src]; ok && seq < last {
						t.Fatalf("peer %d: seq %d after %d — per-peer order violated", peer, seq, last)
					}
					lastSeq[e.Src] = seq
				}
				delivered++
			}
			if delivered == 0 {
				t.Fatal("nothing delivered")
			}
			t.Logf("delivered %d/%d (loss %.0f%%, dup %.0f%%)", delivered, peers*msgs, v.cfg.LossRate*100, v.cfg.DupRate*100)
		})
	}
}

// stressPayload builds the deterministic message body for (peer, seq):
// an 8-byte header plus a fill pattern both derive from.
func stressPayload(peer, seq, size int) []byte {
	msg := make([]byte, size)
	binary.BigEndian.PutUint32(msg[:4], uint32(peer))
	binary.BigEndian.PutUint32(msg[4:8], uint32(seq))
	fill := byte(peer*31 + seq)
	for i := 8; i < size; i++ {
		msg[i] = fill
	}
	return msg
}

// TestUDClaimSweepRepostsReceive: a multi-segment message whose tail is
// lost claims a posted receive; when the sweeper abandons the partial, the
// receive must return to the queue — the message is lost, the buffer is
// not — and the next complete message lands in it.
func TestUDClaimSweepRepostsReceive(t *testing.T) {
	net := simnet.New(simnet.Config{})

	// The SENDER drops its 2nd outbound datagram — the Last segment of the
	// first, two-segment message.
	bep, err := net.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	b := &udNode{pd: memreg.NewPD(), tbl: memreg.NewTable(), scq: NewCQ(0), rcq: NewCQ(0)}
	b.qp, err = OpenUD(bep, b.pd, b.tbl, b.scq, b.rcq, UDConfig{ReassemblyTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.qp.Close() })

	aep, err := net.OpenDatagram("adrop", 0)
	if err != nil {
		t.Fatal(err)
	}
	sender := &udNode{pd: memreg.NewPD(), tbl: memreg.NewTable(), scq: NewCQ(0), rcq: NewCQ(0)}
	sender.qp, err = OpenUD(&dropNthEndpoint{Datagram: aep, n: 2}, sender.pd, sender.tbl, sender.scq, sender.rcq, UDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sender.qp.Close() })

	const size = 100 << 10 // two segments
	buf := make([]byte, size)
	if err := b.qp.PostRecv(21, buf); err != nil {
		t.Fatal(err)
	}
	if err := sender.qp.PostSend(1, b.qp.LocalAddr(), nio.VecOf(bytes.Repeat([]byte{1}, size))); err != nil {
		t.Fatal(err)
	}
	// The partial claims WR 21; no completion may arrive.
	if e, err := b.rcq.Poll(250 * time.Millisecond); err == nil {
		t.Fatalf("unexpected CQE %+v", e)
	}
	// Wait for the sweeper to abandon the claim and repost the receive.
	deadline := time.Now().Add(3 * time.Second)
	for b.qp.Stats().SweptPartials == 0 {
		if time.Now().After(deadline) {
			t.Fatal("partial claim never swept")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A complete message must now land in the recycled buffer.
	want := bytes.Repeat([]byte{2}, size)
	if err := sender.qp.PostSend(2, b.qp.LocalAddr(), nio.VecOf(want)); err != nil {
		t.Fatal(err)
	}
	e, err := b.rcq.Poll(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Ok() || e.WRID != 21 || e.ByteLen != size {
		t.Fatalf("CQE %+v", e)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("recycled receive holds wrong payload")
	}
	if n := b.qp.Stats().Reassembled; n != 1 {
		t.Fatalf("Reassembled = %d, want 1", n)
	}
}

// TestUDRecvBatchStatsVisible: after a burst of traffic the QP's
// receive-pipeline counters are live — batches, segments, recycled buffers
// and pool hit/miss all reflect the run.
func TestUDRecvBatchStatsVisible(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	const count = 64
	for i := 0; i < count; i++ {
		if err := b.qp.PostRecv(uint64(i), make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		if err := a.qp.PostSend(uint64(i), b.qp.LocalAddr(), nio.VecOf(bytes.Repeat([]byte{byte(i)}, 200))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		if e, err := b.rcq.Poll(2 * time.Second); err != nil || !e.Ok() {
			t.Fatalf("recv %d: CQE %+v err %v", i, e, err)
		}
	}
	st := b.qp.Stats()
	if st.BatchesRecv == 0 || st.SegmentsRecv != count {
		t.Fatalf("BatchesRecv %d SegmentsRecv %d, want >0 and %d", st.BatchesRecv, st.SegmentsRecv, count)
	}
	if st.Recycled != count {
		t.Fatalf("Recycled = %d, want %d", st.Recycled, count)
	}
	if st.RecvPoolHits+st.RecvPoolMisses < count {
		t.Fatalf("pool hits %d + misses %d < %d segments", st.RecvPoolHits, st.RecvPoolMisses, count)
	}
	if got := st.SegmentsPerRecvBatch(); got <= 0 {
		t.Fatalf("SegmentsPerRecvBatch = %v", got)
	}
}

// TestUDRecvWorkersDefault pins the worker-count resolution rule.
func TestUDRecvWorkersDefault(t *testing.T) {
	if n := (UDConfig{RecvWorkers: 3}).recvWorkers(); n != 3 {
		t.Fatalf("explicit: %d", n)
	}
	if n := (UDConfig{}).recvWorkers(); n < 1 || n > 4 {
		t.Fatalf("default: %d", n)
	}
}
