package iwarp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ddp"
	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/peertab"
	"repro/internal/rdmap"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// UDConfig parameterises a datagram queue pair.
type UDConfig struct {
	// RecvDepth bounds the posted-receive queue (default 256).
	RecvDepth int
	// ReassemblyTimeout bounds how long partial multi-segment messages are
	// retained before being abandoned (default ddp.DefaultReassemblyTimeout).
	ReassemblyTimeout time.Duration
	// PerChunkCompletions switches Write-Record target notification from
	// one aggregated validity-map completion per message to one completion
	// per placed chunk — the paper's §IV.B.3 design alternative
	// ("individual entries for each logical chunk of data in a message or
	// ... a validity map").
	PerChunkCompletions bool
	// BlockOnRNR makes the placement engine wait for a posted receive
	// instead of dropping a completed message, emulating the RNR
	// NAK-and-retry behaviour of a reliable-datagram service. Only
	// meaningful when the QP runs over a reliable LLP (rudp): blocking
	// propagates backpressure to the sender through the transport window.
	// Messages are still dropped after ReassemblyTimeout to bound the
	// stall. Never enable over a raw unreliable endpoint — it would let
	// one slow receiver stall the placement engine for all peers.
	BlockOnRNR bool
	// RecvWorkers sets how many placement workers the receive pipeline
	// runs (default min(4, GOMAXPROCS)). Arriving segments are sharded to
	// workers by source peer, so per-peer completion order is preserved
	// while independent peers parse, reassemble, and place concurrently;
	// 1 degrades to the serial engine.
	RecvWorkers int
	// PlacementNotify, when non-nil, receives every successful Write-Record
	// target completion (WTWriteRecordRecv) instead of the receive CQ — the
	// placement-completion hook a message layer's rendezvous sink needs:
	// direct dispatch from the placement worker, no CQ round trip and no
	// risk of a full CQ dropping the notification a zero-copy transfer
	// completes on. The callback runs on a placement-worker goroutine and
	// must not block; advisory error completions (WTError) still go to the
	// receive CQ.
	PlacementNotify func(CQE)
}

// recvWorkers resolves the configured worker count.
func (cfg UDConfig) recvWorkers() int {
	if cfg.RecvWorkers > 0 {
		return cfg.RecvWorkers
	}
	return min(4, runtime.GOMAXPROCS(0))
}

// UDQP is a datagram (unreliable datagram, or — when bound to an
// rudp.Endpoint — reliable datagram) queue pair. One UDQP serves any number
// of peers: there is no connection, sends name their destination, and
// receive completions report their source. That is the paper's scalability
// argument in code — per-peer state is one reassembly slot at most, not a
// connection.
//
// Loss semantics follow §IV.B: lost datagrams produce nothing (poll with a
// timeout); CRC failures and placement violations yield advisory WTError
// completions; the QP never transitions into an error state.
type UDQP struct {
	pd     *memreg.PD
	tbl    *memreg.Table
	ch     *ddp.DatagramChannel
	sendCQ *CQ
	recvCQ *CQ
	cfg    UDConfig

	rq         *recvQueue
	workers    []*udWorker    // placement workers, sharded by source peer
	workerWG   sync.WaitGroup // placeLoop goroutines
	reasmBytes atomic.Int64   // snapshot of reassembler memory, for Footprint
	msn        atomic.Uint32

	// Write-Record trackers and outstanding UD reads, sharded by peer+MSN
	// (peertab): each key is only ever touched by its peer's placement
	// worker, but the sweeper walks both tables, so tracker state is
	// guarded by the entry lock and removal uses EvictEntry's exactly-once
	// win to arbitrate completion against timeout.
	records      *peertab.Table[wrKey, wrTracker]
	pendingReads *peertab.Table[wrKey, pendingUDRead]

	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup

	// Datapath counters are registry handles (DESIGN.md §4.6): Stats()
	// reads this QP's handles exactly; the process scrape sums all QPs.
	stats struct {
		msgsSent, msgsRecv, bytesSent, bytesRecv          *telemetry.Counter
		recvDropped, placed, placeErr, reassembled, swept *telemetry.Counter
	}
}

// recvBurst bounds one demux pull from the DDP channel; it matches the DDP
// and transport burst sizes so a full send burst crosses each stage whole.
const recvBurst = 32

// workerQueueDepth buffers each placement worker's inbox. A full inbox
// stalls the demux stage — the pipeline's flow control, standing in for
// the RNR backpressure a hardware receive pipeline would apply.
const workerQueueDepth = 256

// recvItem is one parsed, CRC-valid segment in flight from the demux stage
// to a placement worker. The segment's Payload aliases Raw, which the
// worker recycles after placement.
type recvItem struct {
	seg  ddp.Segment
	from transport.Addr
}

// udWorker is one placement worker: an inbox fed by the demux stage and
// the claims of multi-segment untagged messages in flight from its peers.
// Sharding by source peer means a peer's segments always meet the same
// worker, so claim state needs no cross-worker coordination; Write-Record
// trackers and pending reads stay on the QP's shared maps (their keys
// include the peer, so each key is only ever touched by one worker anyway,
// but the sweeper also walks them). With one worker the demux dispatches
// inline and no placeLoop goroutine runs (in stays nil).
type udWorker struct {
	in      chan recvItem
	claimMu sync.Mutex // guards claims (shared by placeLoop and sweeper)
	claims  map[claimKey]*udClaim
}

// claimKey identifies one in-flight multi-segment untagged message,
// mirroring the DDP reassembly key (source, queue, MSN).
type claimKey struct {
	from transport.Addr
	qn   uint32
	msn  uint32
}

// udClaim is the receive-side state of one multi-segment untagged message:
// the posted receive it claimed when its first segment arrived, plus
// arrival tracking. Segments are placed directly into the claimed buffer —
// there is no staging allocation and no reassembly copy, mirroring how an
// RNIC lands untagged data in the posted receive as it arrives. A claim
// without a receive (hasWR false) is a tombstone: the message was already
// counted dropped, and it absorbs the remaining segments so they neither
// consume a later receive nor recount the drop.
type udClaim struct {
	wr      RecvWR
	hasWR   bool
	msgLen  uint32
	arrived memreg.ValidityMap
	born    time.Time
}

// shardOf maps a source peer to a placement worker: FNV-1a over the node
// name and port. All traffic from one peer lands on one worker — the
// ordering invariant the completion semantics need — while independent
// peers spread across the pool.
//
//diwarp:hotpath
func shardOf(from transport.Addr, n int) int {
	if n == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(from.Node); i++ {
		h ^= uint32(from.Node[i])
		h *= 16777619
	}
	h ^= uint32(from.Port)
	h *= 16777619
	return int(h % uint32(n))
}

// wrKey identifies one in-flight Write-Record message at the target.
type wrKey struct {
	from transport.Addr
	msn  uint32
}

// hashWrKey shards the tracker tables by peer and MSN with the same FNV-1a
// discipline as every other peer table in the stack.
func hashWrKey(k wrKey) uint32 {
	h := peertab.HashString(peertab.Seed(), k.from.Node)
	h = peertab.HashUint32(h, uint32(k.from.Port))
	return peertab.HashUint32(h, k.msn)
}

// wrTracker accumulates placement state for a multi-segment Write-Record
// message until its Last segment arrives (or it is swept).
type wrTracker struct {
	stag     memreg.STag
	validity memreg.ValidityMap
	placed   int
	born     time.Time
}

// OpenUD creates a datagram QP over the given endpoint. The endpoint may be
// a raw unreliable datagram socket (UD service) or an rudp.Endpoint
// (RD service); the QP is agnostic, exactly as the paper's design intends
// ("compatible with both unreliable and reliable lower UDP layers").
// Completions for sends go to sendCQ and for receives/target events to
// recvCQ; the two may be the same CQ.
func OpenUD(ep transport.Datagram, pd *memreg.PD, tbl *memreg.Table, sendCQ, recvCQ *CQ, cfg UDConfig) (*UDQP, error) {
	if ep == nil || pd == nil || tbl == nil || sendCQ == nil || recvCQ == nil {
		return nil, fmt.Errorf("%w: nil argument", ErrBadWR)
	}
	qp := &UDQP{
		pd:           pd,
		tbl:          tbl,
		ch:           ddp.NewDatagramChannel(ep),
		sendCQ:       sendCQ,
		recvCQ:       recvCQ,
		cfg:          cfg,
		rq:           newRecvQueue(cfg.RecvDepth),
		records:      peertab.New[wrKey, wrTracker](hashWrKey, peertab.Options{}),
		pendingReads: peertab.New[wrKey, pendingUDRead](hashWrKey, peertab.Options{}),
	}
	qp.workers = make([]*udWorker, cfg.recvWorkers())
	for i := range qp.workers {
		qp.workers[i] = &udWorker{claims: make(map[claimKey]*udClaim)}
	}
	qp.stats.msgsSent = telemetry.Default.Counter("diwarp_ud_msgs_sent_total")
	qp.stats.msgsRecv = telemetry.Default.Counter("diwarp_ud_msgs_recv_total")
	qp.stats.bytesSent = telemetry.Default.Counter("diwarp_ud_bytes_sent_total")
	qp.stats.bytesRecv = telemetry.Default.Counter("diwarp_ud_bytes_recv_total")
	qp.stats.recvDropped = telemetry.Default.Counter("diwarp_ud_recv_dropped_total")
	qp.stats.placed = telemetry.Default.Counter("diwarp_ud_placed_segments_total")
	qp.stats.placeErr = telemetry.Default.Counter("diwarp_ud_place_errors_total")
	qp.stats.reassembled = telemetry.Default.Counter("diwarp_ud_reassembled_total")
	qp.stats.swept = telemetry.Default.Counter("diwarp_ud_swept_total")
	qp.done = make(chan struct{})
	qp.wg.Add(2)
	// One worker means the demux goroutine places inline: no inbox, no
	// channel hop, no placeLoop — the serial engine with batching kept.
	if len(qp.workers) > 1 {
		qp.workerWG.Add(len(qp.workers))
		for _, w := range qp.workers {
			w.in = make(chan recvItem, workerQueueDepth)
			go qp.placeLoop(w)
		}
	}
	go qp.recvLoop()
	go qp.sweepLoop()
	return qp, nil
}

// LocalAddr returns the QP's bound datagram address.
func (qp *UDQP) LocalAddr() transport.Addr { return qp.ch.LocalAddr() }

// PD returns the protection domain.
func (qp *UDQP) PD() *memreg.PD { return qp.pd }

// MaxMessage returns the largest single message the QP accepts. Following
// the paper's recommendation, in-stack reassembly handles messages spanning
// multiple datagrams, bounded here to keep tracker state sane.
const maxUDMessage = 1 << 30

// PostRecv posts a receive buffer for one incoming untagged message.
func (qp *UDQP) PostRecv(id uint64, buf []byte) error {
	if qp.closed.Load() {
		return ErrQPClosed
	}
	return qp.rq.post(RecvWR{ID: id, Buf: buf})
}

// PostSend transmits one untagged message to the destination (the datagram
// send verb of §IV.B item 4: the WR carries the destination address). The
// WR completes as soon as every segment is handed to the LLP.
func (qp *UDQP) PostSend(id uint64, to transport.Addr, payload nio.Vec) error {
	return qp.postUntagged(id, to, payload, rdmap.OpSend)
}

// PostSendSE is Send with Solicited Event. Over our software stack the
// event is the completion itself; the distinct opcode is preserved on the
// wire for protocol fidelity.
func (qp *UDQP) PostSendSE(id uint64, to transport.Addr, payload nio.Vec) error {
	return qp.postUntagged(id, to, payload, rdmap.OpSendSE)
}

func (qp *UDQP) postUntagged(id uint64, to transport.Addr, payload nio.Vec, op rdmap.Opcode) error {
	if qp.closed.Load() {
		return ErrQPClosed
	}
	n := payload.Len()
	if n > maxUDMessage {
		return fmt.Errorf("%w: message of %d bytes", ErrBadWR, n)
	}
	// No send lock: the datagram channel's pooled datapath is safe for
	// concurrent posters, and segment interleaving between messages is
	// harmless — every segment is self-describing (MSN/MO/MsgLen).
	msn := qp.msn.Add(1)
	if err := qp.ch.SendUntagged(to, ddp.QNSend, msn, rdmap.Ctrl(op), payload); err != nil {
		return err
	}
	qp.stats.msgsSent.Inc()
	qp.stats.bytesSent.Add(int64(n))
	telemetry.DefaultTrace.Record(telemetry.EvSend, telemetry.PeerToken(to), n, msn)
	qp.sendCQ.post(CQE{WRID: id, Type: WTSend, ByteLen: n, Src: to})
	return nil
}

// PostWriteRecord performs the paper's RDMA Write-Record (§IV.B.3): a truly
// one-sided tagged write of payload into the remote region named stag at
// offset to. No receive is consumed at the target; the source completes
// "at the moment that the last bit of the message is passed to [the]
// transport layer". The target application discovers the data through
// WTWriteRecordRecv completions carrying a validity map.
func (qp *UDQP) PostWriteRecord(id uint64, dest transport.Addr, stag memreg.STag, to uint64, payload nio.Vec) error {
	if qp.closed.Load() {
		return ErrQPClosed
	}
	n := payload.Len()
	if n > maxUDMessage {
		return fmt.Errorf("%w: message of %d bytes", ErrBadWR, n)
	}
	msn := qp.msn.Add(1)
	if err := qp.ch.SendTagged(dest, stag, to, msn, rdmap.Ctrl(rdmap.OpWriteRecord), payload); err != nil {
		return err
	}
	qp.stats.msgsSent.Inc()
	qp.stats.bytesSent.Add(int64(n))
	telemetry.DefaultTrace.Record(telemetry.EvSend, telemetry.PeerToken(dest), n, msn)
	qp.sendCQ.post(CQE{WRID: id, Type: WTWriteRecord, ByteLen: n, Src: dest})
	return nil
}

// recvLoop is the receive pipeline's demux stage: it pulls bursts of
// CRC-valid segments from the DDP channel and shards each to a placement
// worker by source peer, so one queue wakeup and one batch of queue locks
// serve up to recvBurst datagrams. It exits when the endpoint closes,
// draining the workers before flushing posted receives. It blocks without
// a timeout — reassembly garbage collection runs in sweepLoop — so an idle
// QP parks cheaply, with no timer churn on the per-datagram path.
func (qp *UDQP) recvLoop() {
	defer qp.wg.Done()
	var segs [recvBurst]ddp.Segment
	var froms [recvBurst]transport.Addr
	nw := len(qp.workers)
	for {
		n, err := qp.ch.RecvBatch(segs[:], froms[:], 0)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			if nw > 1 {
				for _, w := range qp.workers {
					close(w.in)
				}
				qp.workerWG.Wait()
			}
			qp.flushRecvs()
			return
		}
		if nw == 1 {
			// Single worker: place inline on the demux goroutine — no channel
			// hop, no second wakeup per burst.
			w := qp.workers[0]
			for i := 0; i < n; i++ {
				qp.dispatch(w, froms[i], &segs[i])
				qp.ch.Recycle(segs[i].Raw)
				segs[i] = ddp.Segment{}
			}
			continue
		}
		for i := 0; i < n; i++ {
			// A full worker inbox blocks here: demux stalls until the worker
			// catches up, which in turn backpressures the LLP's queue — the
			// pipeline's flow control.
			qp.workers[shardOf(froms[i], nw)].in <- recvItem{seg: segs[i], from: froms[i]}
			segs[i] = ddp.Segment{} // drop the Raw reference: the worker owns it
		}
	}
}

// placeLoop is one placement worker: it parses the RDMAP opcode, dispatches
// to the appropriate handler, and recycles the transport buffer once the
// payload has been copied or placed.
func (qp *UDQP) placeLoop(w *udWorker) {
	defer qp.workerWG.Done()
	for it := range w.in {
		qp.dispatch(w, it.from, &it.seg)
		// Every handler copies (or places) the payload before returning, so
		// the transport buffer can go back to its pool.
		qp.ch.Recycle(it.seg.Raw)
	}
}

// dispatch routes one segment to its opcode's handler.
func (qp *UDQP) dispatch(w *udWorker, from transport.Addr, seg *ddp.Segment) {
	op, perr := rdmap.ParseCtrl(seg.RDMAP)
	if perr != nil {
		qp.advisory(from, perr)
		return
	}
	switch op {
	case rdmap.OpSend, rdmap.OpSendSE:
		qp.handleSend(w, from, seg)
	case rdmap.OpWriteRecord:
		qp.handleWriteRecord(from, seg)
	case rdmap.OpReadReq:
		qp.handleReadReq(from, seg)
	case rdmap.OpReadResp:
		qp.handleReadResp(from, seg)
	case rdmap.OpTerminate:
		if t, terr := rdmap.ParseTerminate(seg.Payload); terr == nil {
			qp.advisory(from, t)
		}
	default:
		// RDMA Write (non-Record) is undefined over UD; report, stay up.
		qp.advisory(from, fmt.Errorf("%w over datagram QP: %s", rdmap.ErrBadOpcode, op))
	}
}

func (qp *UDQP) reasmTimeout() time.Duration {
	if qp.cfg.ReassemblyTimeout > 0 {
		return qp.cfg.ReassemblyTimeout
	}
	return ddp.DefaultReassemblyTimeout
}

// advisory posts a WTError completion: the UD error model (errors are
// "simply reported, but the QP is not forced into the error state").
func (qp *UDQP) advisory(from transport.Addr, err error) {
	qp.recvCQ.post(CQE{Type: WTError, Status: StatusBadWR, Err: err, Src: from})
}

// handleSend completes one untagged message. Single-segment messages (the
// common case below the 64 KB datagram limit) take a direct path: the
// payload still aliases the transport buffer and is copied ONCE, into the
// posted receive. Multi-segment messages claim the posted receive at first
// arrival and place each segment directly into it — no staging buffer, no
// reassembly copy.
//
//diwarp:hotpath
func (qp *UDQP) handleSend(w *udWorker, from transport.Addr, seg *ddp.Segment) {
	if !seg.Last || seg.MO != 0 {
		qp.placeUntagged(w, from, seg)
		return
	}
	if int(seg.MsgLen) != len(seg.Payload) {
		return // inconsistent header; drop
	}
	wr, ok := qp.rq.pop()
	if !ok && qp.cfg.BlockOnRNR {
		wr, ok = qp.waitRecv()
	}
	if !ok {
		qp.dropNoRecv(from, len(seg.Payload))
		return
	}
	if len(seg.Payload) > len(wr.Buf) {
		qp.completeLengthError(wr, from, len(seg.Payload))
		return
	}
	copy(wr.Buf, seg.Payload)
	qp.stats.msgsRecv.Inc()
	qp.stats.bytesRecv.Add(int64(len(seg.Payload)))
	telemetry.DefaultTrace.Record(telemetry.EvRecv, telemetry.PeerToken(from), len(seg.Payload), seg.MSN)
	qp.recvCQ.post(CQE{WRID: wr.ID, Type: WTRecv, ByteLen: len(seg.Payload), Src: from})
}

// placeUntagged handles one segment of a multi-segment untagged message by
// direct placement: the first segment to arrive (in any order) claims the
// posted receive at the queue head, and every segment copies straight into
// it at its message offset. A validity map tracks arrival; the completion
// fires when the byte count closes. Outlined from handleSend: it takes the
// claim lock the sweeper shares.
func (qp *UDQP) placeUntagged(w *udWorker, from transport.Addr, seg *ddp.Segment) {
	end := uint64(seg.MO) + uint64(len(seg.Payload))
	if end > uint64(seg.MsgLen) {
		return // segment overflows its declared message; drop
	}
	key := claimKey{from: from, qn: seg.QN, msn: seg.MSN}
	w.claimMu.Lock()
	cl, ok := w.claims[key]
	if !ok {
		// First segment of the message: claim a posted receive. The pop (and
		// the RNR wait, which can block for the reassembly timeout) runs
		// outside the claim lock so the sweeper and other peers' claims are
		// not stalled behind it. Only this worker creates claims for this
		// peer, so the key cannot appear concurrently.
		w.claimMu.Unlock()
		wr, got := qp.rq.pop()
		if !got && qp.cfg.BlockOnRNR {
			wr, got = qp.waitRecv()
		}
		if got && int(seg.MsgLen) > len(wr.Buf) {
			qp.completeLengthError(wr, from, int(seg.MsgLen))
			got = false // tombstone: error already reported, absorb the rest
		} else if !got {
			qp.dropNoRecv(from, int(seg.MsgLen))
		}
		cl = &udClaim{wr: wr, hasWR: got, msgLen: seg.MsgLen, born: time.Now()}
		w.claimMu.Lock()
		w.claims[key] = cl
	}
	if seg.MsgLen != cl.msgLen {
		w.claimMu.Unlock()
		return // conflicting header for this MSN; drop the segment
	}
	if cl.hasWR {
		copy(cl.wr.Buf[seg.MO:end], seg.Payload)
	}
	cl.arrived.Add(uint64(seg.MO), uint64(len(seg.Payload)))
	if !cl.arrived.Complete(uint64(cl.msgLen)) {
		w.claimMu.Unlock()
		return
	}
	delete(w.claims, key)
	w.claimMu.Unlock()
	if !cl.hasWR {
		return // tombstone completed: the drop was counted at claim time
	}
	qp.stats.reassembled.Inc()
	qp.stats.msgsRecv.Inc()
	qp.stats.bytesRecv.Add(int64(cl.msgLen))
	telemetry.DefaultTrace.Record(telemetry.EvRecv, telemetry.PeerToken(from), int(cl.msgLen), seg.MSN)
	qp.recvCQ.post(CQE{WRID: cl.wr.ID, Type: WTRecv, ByteLen: int(cl.msgLen), Src: from})
}

// waitRecv blocks until a receive is posted, the QP closes, or the
// reassembly timeout bounds the stall — the RNR NAK-and-retry loop of an
// RD service, driven by PostRecv's notification instead of a spin-sleep.
// Outlined from handleSend: it is the cold contended path, and it parks on
// channels the hot path never touches.
func (qp *UDQP) waitRecv() (RecvWR, bool) {
	timer := time.NewTimer(qp.reasmTimeout())
	defer timer.Stop()
	for {
		if wr, ok := qp.rq.pop(); ok {
			return wr, true
		}
		select {
		case <-qp.rq.avail:
		case <-timer.C:
			return RecvWR{}, false
		case <-qp.done:
			return RecvWR{}, false
		}
	}
}

// dropNoRecv records a message dropped for want of a posted receive, like a
// UD QP with an empty receive queue on a real RNIC. Cold path, outlined.
func (qp *UDQP) dropNoRecv(from transport.Addr, n int) {
	qp.stats.recvDropped.Inc()
	telemetry.DefaultTrace.Record(telemetry.EvDrop, telemetry.PeerToken(from), n, telemetry.DropNoRecv)
}

// completeLengthError completes a receive whose buffer was too small for
// the message. Cold path, outlined to keep handleSend fmt-free.
func (qp *UDQP) completeLengthError(wr RecvWR, from transport.Addr, n int) {
	qp.recvCQ.post(CQE{
		WRID: wr.ID, Type: WTRecv, Status: StatusLocalLength,
		Err: fmt.Errorf("iwarp: message %d bytes exceeds receive buffer %d", n, len(wr.Buf)),
		Src: from, ByteLen: n,
	})
}

func (qp *UDQP) handleWriteRecord(from transport.Addr, seg *ddp.Segment) {
	region, err := qp.tbl.Lookup(seg.STag)
	if err != nil {
		qp.stats.placeErr.Inc()
		qp.recvCQ.post(CQE{Type: WTError, Status: StatusRemoteInvalid, Err: err, Src: from, STag: seg.STag})
		return
	}
	if err := region.Place(qp.pd, memreg.RemoteWrite, seg.TO, seg.Payload); err != nil {
		qp.stats.placeErr.Inc()
		qp.recvCQ.post(CQE{Type: WTError, Status: StatusRemoteAccess, Err: err, Src: from, STag: seg.STag})
		return
	}
	region.Record(seg.TO, len(seg.Payload))
	qp.stats.placed.Inc()
	qp.stats.bytesRecv.Add(int64(len(seg.Payload)))
	telemetry.DefaultTrace.Record(telemetry.EvWriteRecord, telemetry.PeerToken(from), len(seg.Payload), uint32(seg.STag))

	if qp.cfg.PerChunkCompletions {
		var v memreg.ValidityMap
		v.Add(seg.TO, uint64(len(seg.Payload)))
		qp.completeWR(CQE{
			Type: WTWriteRecordRecv, ByteLen: len(seg.Payload), Src: from,
			STag: seg.STag, TO: seg.TO, MsgLen: int(seg.MsgLen), Validity: v,
		})
		return
	}

	// Aggregated mode: single-segment fast path needs no tracker.
	if seg.Last && uint64(len(seg.Payload)) == uint64(seg.MsgLen) {
		var v memreg.ValidityMap
		v.Add(seg.TO, uint64(len(seg.Payload)))
		qp.stats.msgsRecv.Inc()
		qp.completeWR(CQE{
			Type: WTWriteRecordRecv, ByteLen: len(seg.Payload), Src: from,
			STag: seg.STag, TO: seg.TO, MsgLen: int(seg.MsgLen), Validity: v,
		})
		return
	}

	key := wrKey{from: from, msn: seg.MSN}
	ent, _, _ := qp.records.LockOrCreate(key, func(ne *peertab.Entry[wrKey, wrTracker]) {
		ne.V.stag = seg.STag
		ne.V.born = time.Now()
	})
	tr := &ent.V
	tr.validity.Add(seg.TO, uint64(len(seg.Payload)))
	tr.placed += len(seg.Payload)
	if !seg.Last {
		ent.Unlock()
		return
	}
	// The Last segment carries enough to locate the message base: its TO
	// plus its length minus the total message length. Capture the tracker
	// under its lock: the sweeper may evict the entry the moment we let go.
	placed, stag, validity := tr.placed, tr.stag, tr.validity.Clone()
	ent.Unlock()
	qp.records.EvictEntry(ent)
	base := seg.TO + uint64(len(seg.Payload)) - uint64(seg.MsgLen)
	qp.stats.msgsRecv.Inc()
	qp.completeWR(CQE{
		Type: WTWriteRecordRecv, ByteLen: placed, Src: from,
		STag: stag, TO: base, MsgLen: int(seg.MsgLen), Validity: validity,
	})
}

// completeWR delivers a Write-Record target completion: to the configured
// placement hook when one is installed, otherwise to the receive CQ.
func (qp *UDQP) completeWR(e CQE) {
	if qp.cfg.PlacementNotify != nil {
		qp.cfg.PlacementNotify(e)
		return
	}
	qp.recvCQ.post(e)
}

// sweepLoop periodically abandons stale reassembly partials and
// Write-Record trackers, off the datapath.
func (qp *UDQP) sweepLoop() {
	defer qp.wg.Done()
	ticker := time.NewTicker(qp.reasmTimeout() / 2)
	defer ticker.Stop()
	for {
		select {
		case <-qp.done:
			return
		case now := <-ticker.C:
			qp.sweepClaims(now)
			// Reads before records: a timed-out read reports the validity
			// of whatever partially arrived, and its tracker lives in the
			// records map. The tracker is never older than its read, so
			// when both expire on the same tick, sweeping records first
			// would destroy the partial validity the read must report.
			qp.sweepReads(now)
			qp.sweepRecords(now)
		}
	}
}

// sweepClaims abandons claims of partial messages whose remaining segments
// never arrived. The claimed receive goes back to the head of the queue's
// behaviour space by reposting it — the message is lost, the buffer is not;
// if the queue refilled meanwhile, the receive completes StatusTimedOut
// instead, so no posted buffer is ever silently leaked. Tombstones (claims
// that never got a receive) just expire. Also refreshes the Footprint
// snapshot: claims hold no payload staging, only fixed tracking state.
func (qp *UDQP) sweepClaims(now time.Time) {
	cutoff := now.Add(-qp.reasmTimeout())
	var live int64
	for _, w := range qp.workers {
		w.claimMu.Lock()
		for k, cl := range w.claims {
			if !cl.born.Before(cutoff) {
				live++
				continue
			}
			delete(w.claims, k)
			qp.stats.swept.Inc()
			if !cl.hasWR {
				continue
			}
			if err := qp.rq.post(cl.wr); err != nil {
				qp.recvCQ.post(CQE{
					WRID: cl.wr.ID, Type: WTRecv, Status: StatusTimedOut,
					Err: fmt.Errorf("iwarp: partial message abandoned after %v", qp.reasmTimeout()),
					Src: k.from,
				})
			}
		}
		w.claimMu.Unlock()
	}
	qp.reasmBytes.Store(live * udClaimOverhead)
}

// udClaimOverhead approximates the tracking state of one claim (key, claim
// struct, validity ranges) for Footprint accounting.
const udClaimOverhead = 160

// sweepRecords abandons Write-Record trackers whose Last segment never
// arrived — the paper's observation that "loss of this final packet results
// in the loss of the entire message". The placed bytes remain in the region
// (and in its validity map); only the notification is lost, exactly as in
// the paper's design.
func (qp *UDQP) sweepRecords(now time.Time) {
	cutoff := now.Add(-qp.reasmTimeout())
	qp.records.Range(func(ent *peertab.Entry[wrKey, wrTracker]) bool {
		ent.Lock()
		stale := !ent.Gone() && ent.V.born.Before(cutoff)
		ent.Unlock()
		if stale && qp.records.EvictEntry(ent) {
			qp.stats.swept.Inc()
		}
		return true
	})
}

// flushRecvs completes every posted receive with StatusFlushed at close.
func (qp *UDQP) flushRecvs() {
	for _, wr := range qp.rq.drain() {
		qp.recvCQ.post(CQE{WRID: wr.ID, Type: WTRecv, Status: StatusFlushed, Err: ErrQPClosed})
	}
}

// Stats returns a snapshot of the QP's datapath counters.
func (qp *UDQP) Stats() Stats {
	batches, segments, poolHits, poolMisses := qp.ch.SendStats()
	rb, rs, rec, rpHits, rpMisses := qp.ch.RecvStats()
	return Stats{
		BatchesSent:    batches,
		SegmentsSent:   segments,
		PoolHits:       poolHits,
		PoolMisses:     poolMisses,
		BatchesRecv:    rb,
		SegmentsRecv:   rs,
		Recycled:       rec,
		RecvPoolHits:   rpHits,
		RecvPoolMisses: rpMisses,
		MsgsSent:       qp.stats.msgsSent.Load(),
		MsgsReceived:   qp.stats.msgsRecv.Load(),
		BytesSent:      qp.stats.bytesSent.Load(),
		BytesReceived:  qp.stats.bytesRecv.Load(),
		RecvDropped:    qp.stats.recvDropped.Load(),
		PlacedSegments: qp.stats.placed.Load(),
		PlaceErrors:    qp.stats.placeErr.Load(),
		Reassembled:    qp.stats.reassembled.Load(),
		SweptPartials:  qp.stats.swept.Load(),
	}
}

// Close shuts the QP down, closing the underlying endpoint and flushing
// posted receives.
func (qp *UDQP) Close() error {
	if qp.closed.Swap(true) {
		return nil
	}
	close(qp.done)
	err := qp.ch.Close()
	qp.wg.Wait()
	return err
}
