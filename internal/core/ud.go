package iwarp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ddp"
	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/rdmap"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// UDConfig parameterises a datagram queue pair.
type UDConfig struct {
	// RecvDepth bounds the posted-receive queue (default 256).
	RecvDepth int
	// ReassemblyTimeout bounds how long partial multi-segment messages are
	// retained before being abandoned (default ddp.DefaultReassemblyTimeout).
	ReassemblyTimeout time.Duration
	// PerChunkCompletions switches Write-Record target notification from
	// one aggregated validity-map completion per message to one completion
	// per placed chunk — the paper's §IV.B.3 design alternative
	// ("individual entries for each logical chunk of data in a message or
	// ... a validity map").
	PerChunkCompletions bool
	// BlockOnRNR makes the placement engine wait for a posted receive
	// instead of dropping a completed message, emulating the RNR
	// NAK-and-retry behaviour of a reliable-datagram service. Only
	// meaningful when the QP runs over a reliable LLP (rudp): blocking
	// propagates backpressure to the sender through the transport window.
	// Messages are still dropped after ReassemblyTimeout to bound the
	// stall. Never enable over a raw unreliable endpoint — it would let
	// one slow receiver stall the placement engine for all peers.
	BlockOnRNR bool
}

// UDQP is a datagram (unreliable datagram, or — when bound to an
// rudp.Endpoint — reliable datagram) queue pair. One UDQP serves any number
// of peers: there is no connection, sends name their destination, and
// receive completions report their source. That is the paper's scalability
// argument in code — per-peer state is one reassembly slot at most, not a
// connection.
//
// Loss semantics follow §IV.B: lost datagrams produce nothing (poll with a
// timeout); CRC failures and placement violations yield advisory WTError
// completions; the QP never transitions into an error state.
type UDQP struct {
	pd     *memreg.PD
	tbl    *memreg.Table
	ch     *ddp.DatagramChannel
	sendCQ *CQ
	recvCQ *CQ
	cfg    UDConfig

	rq         *recvQueue
	reasmMu    sync.Mutex // guards reasm (shared by recvLoop and sweeper)
	reasm      *ddp.Reassembler
	reasmBytes atomic.Int64 // snapshot of reassembler memory, for Footprint
	msn        atomic.Uint32

	recMu   sync.Mutex // guards records (Write-Record message trackers)
	records map[wrKey]*wrTracker

	readMu       sync.Mutex // guards pendingReads (outstanding UD reads)
	pendingReads map[wrKey]*pendingUDRead

	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup

	// Datapath counters are registry handles (DESIGN.md §4.6): Stats()
	// reads this QP's handles exactly; the process scrape sums all QPs.
	stats struct {
		msgsSent, msgsRecv, bytesSent, bytesRecv          *telemetry.Counter
		recvDropped, placed, placeErr, reassembled, swept *telemetry.Counter
	}
}

// wrKey identifies one in-flight Write-Record message at the target.
type wrKey struct {
	from transport.Addr
	msn  uint32
}

// wrTracker accumulates placement state for a multi-segment Write-Record
// message until its Last segment arrives (or it is swept).
type wrTracker struct {
	stag     memreg.STag
	validity memreg.ValidityMap
	placed   int
	born     time.Time
}

// OpenUD creates a datagram QP over the given endpoint. The endpoint may be
// a raw unreliable datagram socket (UD service) or an rudp.Endpoint
// (RD service); the QP is agnostic, exactly as the paper's design intends
// ("compatible with both unreliable and reliable lower UDP layers").
// Completions for sends go to sendCQ and for receives/target events to
// recvCQ; the two may be the same CQ.
func OpenUD(ep transport.Datagram, pd *memreg.PD, tbl *memreg.Table, sendCQ, recvCQ *CQ, cfg UDConfig) (*UDQP, error) {
	if ep == nil || pd == nil || tbl == nil || sendCQ == nil || recvCQ == nil {
		return nil, fmt.Errorf("%w: nil argument", ErrBadWR)
	}
	qp := &UDQP{
		pd:           pd,
		tbl:          tbl,
		ch:           ddp.NewDatagramChannel(ep),
		sendCQ:       sendCQ,
		recvCQ:       recvCQ,
		cfg:          cfg,
		rq:           newRecvQueue(cfg.RecvDepth),
		reasm:        ddp.NewReassembler(cfg.ReassemblyTimeout),
		records:      make(map[wrKey]*wrTracker),
		pendingReads: make(map[wrKey]*pendingUDRead),
	}
	qp.stats.msgsSent = telemetry.Default.Counter("diwarp_ud_msgs_sent_total")
	qp.stats.msgsRecv = telemetry.Default.Counter("diwarp_ud_msgs_recv_total")
	qp.stats.bytesSent = telemetry.Default.Counter("diwarp_ud_bytes_sent_total")
	qp.stats.bytesRecv = telemetry.Default.Counter("diwarp_ud_bytes_recv_total")
	qp.stats.recvDropped = telemetry.Default.Counter("diwarp_ud_recv_dropped_total")
	qp.stats.placed = telemetry.Default.Counter("diwarp_ud_placed_segments_total")
	qp.stats.placeErr = telemetry.Default.Counter("diwarp_ud_place_errors_total")
	qp.stats.reassembled = telemetry.Default.Counter("diwarp_ud_reassembled_total")
	qp.stats.swept = telemetry.Default.Counter("diwarp_ud_swept_total")
	qp.done = make(chan struct{})
	qp.wg.Add(2)
	go qp.recvLoop()
	go qp.sweepLoop()
	return qp, nil
}

// LocalAddr returns the QP's bound datagram address.
func (qp *UDQP) LocalAddr() transport.Addr { return qp.ch.LocalAddr() }

// PD returns the protection domain.
func (qp *UDQP) PD() *memreg.PD { return qp.pd }

// MaxMessage returns the largest single message the QP accepts. Following
// the paper's recommendation, in-stack reassembly handles messages spanning
// multiple datagrams, bounded here to keep tracker state sane.
const maxUDMessage = 1 << 30

// PostRecv posts a receive buffer for one incoming untagged message.
func (qp *UDQP) PostRecv(id uint64, buf []byte) error {
	if qp.closed.Load() {
		return ErrQPClosed
	}
	return qp.rq.post(RecvWR{ID: id, Buf: buf})
}

// PostSend transmits one untagged message to the destination (the datagram
// send verb of §IV.B item 4: the WR carries the destination address). The
// WR completes as soon as every segment is handed to the LLP.
func (qp *UDQP) PostSend(id uint64, to transport.Addr, payload nio.Vec) error {
	return qp.postUntagged(id, to, payload, rdmap.OpSend)
}

// PostSendSE is Send with Solicited Event. Over our software stack the
// event is the completion itself; the distinct opcode is preserved on the
// wire for protocol fidelity.
func (qp *UDQP) PostSendSE(id uint64, to transport.Addr, payload nio.Vec) error {
	return qp.postUntagged(id, to, payload, rdmap.OpSendSE)
}

func (qp *UDQP) postUntagged(id uint64, to transport.Addr, payload nio.Vec, op rdmap.Opcode) error {
	if qp.closed.Load() {
		return ErrQPClosed
	}
	n := payload.Len()
	if n > maxUDMessage {
		return fmt.Errorf("%w: message of %d bytes", ErrBadWR, n)
	}
	// No send lock: the datagram channel's pooled datapath is safe for
	// concurrent posters, and segment interleaving between messages is
	// harmless — every segment is self-describing (MSN/MO/MsgLen).
	msn := qp.msn.Add(1)
	if err := qp.ch.SendUntagged(to, ddp.QNSend, msn, rdmap.Ctrl(op), payload); err != nil {
		return err
	}
	qp.stats.msgsSent.Inc()
	qp.stats.bytesSent.Add(int64(n))
	telemetry.DefaultTrace.Record(telemetry.EvSend, telemetry.PeerToken(to), n, msn)
	qp.sendCQ.post(CQE{WRID: id, Type: WTSend, ByteLen: n, Src: to})
	return nil
}

// PostWriteRecord performs the paper's RDMA Write-Record (§IV.B.3): a truly
// one-sided tagged write of payload into the remote region named stag at
// offset to. No receive is consumed at the target; the source completes
// "at the moment that the last bit of the message is passed to [the]
// transport layer". The target application discovers the data through
// WTWriteRecordRecv completions carrying a validity map.
func (qp *UDQP) PostWriteRecord(id uint64, dest transport.Addr, stag memreg.STag, to uint64, payload nio.Vec) error {
	if qp.closed.Load() {
		return ErrQPClosed
	}
	n := payload.Len()
	if n > maxUDMessage {
		return fmt.Errorf("%w: message of %d bytes", ErrBadWR, n)
	}
	msn := qp.msn.Add(1)
	if err := qp.ch.SendTagged(dest, stag, to, msn, rdmap.Ctrl(rdmap.OpWriteRecord), payload); err != nil {
		return err
	}
	qp.stats.msgsSent.Inc()
	qp.stats.bytesSent.Add(int64(n))
	telemetry.DefaultTrace.Record(telemetry.EvSend, telemetry.PeerToken(dest), n, msn)
	qp.sendCQ.post(CQE{WRID: id, Type: WTWriteRecord, ByteLen: n, Src: dest})
	return nil
}

// recvLoop is the QP's placement engine: it parses arriving segments,
// reassembles untagged messages, places tagged ones, and generates
// completions. It exits when the endpoint closes. It blocks without a
// timeout — reassembly garbage collection runs in sweepLoop — so an idle
// QP parks cheaply, with no timer churn on the per-datagram path.
func (qp *UDQP) recvLoop() {
	defer qp.wg.Done()
	for {
		seg, from, err := qp.ch.Recv(0)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			qp.flushRecvs()
			return
		}
		op, perr := rdmap.ParseCtrl(seg.RDMAP)
		if perr != nil {
			qp.advisory(from, perr)
			continue
		}
		switch op {
		case rdmap.OpSend, rdmap.OpSendSE:
			qp.handleSend(from, &seg)
		case rdmap.OpWriteRecord:
			qp.handleWriteRecord(from, &seg)
		case rdmap.OpReadReq:
			qp.handleReadReq(from, &seg)
		case rdmap.OpReadResp:
			qp.handleReadResp(from, &seg)
		case rdmap.OpTerminate:
			if t, terr := rdmap.ParseTerminate(seg.Payload); terr == nil {
				qp.advisory(from, t)
			}
		default:
			// RDMA Write (non-Record) is undefined over UD; report, stay up.
			qp.advisory(from, fmt.Errorf("%w over datagram QP: %s", rdmap.ErrBadOpcode, op))
		}
		// Every handler above copies (or places) the payload before
		// returning, so the transport buffer can go back to its pool.
		qp.ch.Recycle(seg.Raw)
	}
}

func (qp *UDQP) reasmTimeout() time.Duration {
	if qp.cfg.ReassemblyTimeout > 0 {
		return qp.cfg.ReassemblyTimeout
	}
	return ddp.DefaultReassemblyTimeout
}

// advisory posts a WTError completion: the UD error model (errors are
// "simply reported, but the QP is not forced into the error state").
func (qp *UDQP) advisory(from transport.Addr, err error) {
	qp.recvCQ.post(CQE{Type: WTError, Status: StatusBadWR, Err: err, Src: from})
}

func (qp *UDQP) handleSend(from transport.Addr, seg *ddp.Segment) {
	qp.reasmMu.Lock()
	msg, done := qp.reasm.Add(from, seg)
	qp.reasmMu.Unlock()
	if !done {
		return
	}
	if seg.MO != 0 || !seg.Last {
		qp.stats.reassembled.Inc()
	}
	wr, ok := qp.rq.pop()
	if !ok && qp.cfg.BlockOnRNR {
		// RD service: behave like an RNR NAK loop, waiting for the
		// application to post a receive, bounded by the sweep timeout.
		deadline := time.Now().Add(qp.reasmTimeout())
		for !ok && time.Now().Before(deadline) && !qp.closed.Load() {
			time.Sleep(200 * time.Microsecond)
			wr, ok = qp.rq.pop()
		}
	}
	if !ok {
		// No posted receive: the message is dropped, like a UD QP with an
		// empty receive queue on a real RNIC.
		qp.stats.recvDropped.Inc()
		telemetry.DefaultTrace.Record(telemetry.EvDrop, telemetry.PeerToken(from), len(msg), telemetry.DropNoRecv)
		return
	}
	if len(msg) > len(wr.Buf) {
		qp.recvCQ.post(CQE{
			WRID: wr.ID, Type: WTRecv, Status: StatusLocalLength,
			Err: fmt.Errorf("iwarp: message %d bytes exceeds receive buffer %d", len(msg), len(wr.Buf)),
			Src: from, ByteLen: len(msg),
		})
		return
	}
	copy(wr.Buf, msg)
	qp.stats.msgsRecv.Inc()
	qp.stats.bytesRecv.Add(int64(len(msg)))
	telemetry.DefaultTrace.Record(telemetry.EvRecv, telemetry.PeerToken(from), len(msg), seg.MSN)
	qp.recvCQ.post(CQE{WRID: wr.ID, Type: WTRecv, ByteLen: len(msg), Src: from})
}

func (qp *UDQP) handleWriteRecord(from transport.Addr, seg *ddp.Segment) {
	region, err := qp.tbl.Lookup(seg.STag)
	if err != nil {
		qp.stats.placeErr.Inc()
		qp.recvCQ.post(CQE{Type: WTError, Status: StatusRemoteInvalid, Err: err, Src: from, STag: seg.STag})
		return
	}
	if err := region.Place(qp.pd, memreg.RemoteWrite, seg.TO, seg.Payload); err != nil {
		qp.stats.placeErr.Inc()
		qp.recvCQ.post(CQE{Type: WTError, Status: StatusRemoteAccess, Err: err, Src: from, STag: seg.STag})
		return
	}
	region.Record(seg.TO, len(seg.Payload))
	qp.stats.placed.Inc()
	qp.stats.bytesRecv.Add(int64(len(seg.Payload)))
	telemetry.DefaultTrace.Record(telemetry.EvWriteRecord, telemetry.PeerToken(from), len(seg.Payload), uint32(seg.STag))

	if qp.cfg.PerChunkCompletions {
		var v memreg.ValidityMap
		v.Add(seg.TO, uint64(len(seg.Payload)))
		qp.recvCQ.post(CQE{
			Type: WTWriteRecordRecv, ByteLen: len(seg.Payload), Src: from,
			STag: seg.STag, TO: seg.TO, MsgLen: int(seg.MsgLen), Validity: v,
		})
		return
	}

	// Aggregated mode: single-segment fast path needs no tracker.
	if seg.Last && uint64(len(seg.Payload)) == uint64(seg.MsgLen) {
		var v memreg.ValidityMap
		v.Add(seg.TO, uint64(len(seg.Payload)))
		qp.stats.msgsRecv.Inc()
		qp.recvCQ.post(CQE{
			Type: WTWriteRecordRecv, ByteLen: len(seg.Payload), Src: from,
			STag: seg.STag, TO: seg.TO, MsgLen: int(seg.MsgLen), Validity: v,
		})
		return
	}

	key := wrKey{from: from, msn: seg.MSN}
	qp.recMu.Lock()
	tr, ok := qp.records[key]
	if !ok {
		tr = &wrTracker{stag: seg.STag, born: time.Now()}
		qp.records[key] = tr
	}
	tr.validity.Add(seg.TO, uint64(len(seg.Payload)))
	tr.placed += len(seg.Payload)
	if !seg.Last {
		qp.recMu.Unlock()
		return
	}
	// The Last segment carries enough to locate the message base: its TO
	// plus its length minus the total message length.
	delete(qp.records, key)
	qp.recMu.Unlock()
	base := seg.TO + uint64(len(seg.Payload)) - uint64(seg.MsgLen)
	qp.stats.msgsRecv.Inc()
	qp.recvCQ.post(CQE{
		Type: WTWriteRecordRecv, ByteLen: tr.placed, Src: from,
		STag: tr.stag, TO: base, MsgLen: int(seg.MsgLen), Validity: tr.validity.Clone(),
	})
}

// sweepLoop periodically abandons stale reassembly partials and
// Write-Record trackers, off the datapath.
func (qp *UDQP) sweepLoop() {
	defer qp.wg.Done()
	ticker := time.NewTicker(qp.reasmTimeout() / 2)
	defer ticker.Stop()
	for {
		select {
		case <-qp.done:
			return
		case now := <-ticker.C:
			qp.reasmMu.Lock()
			qp.stats.swept.Add(int64(qp.reasm.Sweep()))
			qp.reasmBytes.Store(qp.reasm.MemFootprint())
			qp.reasmMu.Unlock()
			qp.sweepRecords(now)
			qp.sweepReads(now)
		}
	}
}

// sweepRecords abandons Write-Record trackers whose Last segment never
// arrived — the paper's observation that "loss of this final packet results
// in the loss of the entire message". The placed bytes remain in the region
// (and in its validity map); only the notification is lost, exactly as in
// the paper's design.
func (qp *UDQP) sweepRecords(now time.Time) {
	cutoff := now.Add(-qp.reasmTimeout())
	qp.recMu.Lock()
	for k, tr := range qp.records {
		if tr.born.Before(cutoff) {
			delete(qp.records, k)
			qp.stats.swept.Inc()
		}
	}
	qp.recMu.Unlock()
}

// flushRecvs completes every posted receive with StatusFlushed at close.
func (qp *UDQP) flushRecvs() {
	for _, wr := range qp.rq.drain() {
		qp.recvCQ.post(CQE{WRID: wr.ID, Type: WTRecv, Status: StatusFlushed, Err: ErrQPClosed})
	}
}

// Stats returns a snapshot of the QP's datapath counters.
func (qp *UDQP) Stats() Stats {
	batches, segments, poolHits, poolMisses := qp.ch.SendStats()
	return Stats{
		BatchesSent:    batches,
		SegmentsSent:   segments,
		PoolHits:       poolHits,
		PoolMisses:     poolMisses,
		MsgsSent:       qp.stats.msgsSent.Load(),
		MsgsReceived:   qp.stats.msgsRecv.Load(),
		BytesSent:      qp.stats.bytesSent.Load(),
		BytesReceived:  qp.stats.bytesRecv.Load(),
		RecvDropped:    qp.stats.recvDropped.Load(),
		PlacedSegments: qp.stats.placed.Load(),
		PlaceErrors:    qp.stats.placeErr.Load(),
		Reassembled:    qp.stats.reassembled.Load(),
		SweptPartials:  qp.stats.swept.Load(),
	}
}

// Close shuts the QP down, closing the underlying endpoint and flushing
// posted receives.
func (qp *UDQP) Close() error {
	if qp.closed.Swap(true) {
		return nil
	}
	close(qp.done)
	err := qp.ch.Close()
	qp.wg.Wait()
	return err
}
