package iwarp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ddp"
	"repro/internal/memreg"
	"repro/internal/mpa"
	"repro/internal/nio"
	"repro/internal/rdmap"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// RCConfig parameterises a reliable-connection queue pair.
type RCConfig struct {
	// RecvDepth bounds the posted-receive queue (default 256).
	RecvDepth int
	// MPA configures stream framing; zero value selects the standard
	// markers-on, CRC-on profile. Used by ConnectRC/AcceptRC.
	MPA mpa.Config
	// BlockOnRNR makes an arriving send-type message wait for a posted
	// receive instead of terminating the connection — the behaviour of a
	// software iWARP over TCP, where not draining the stream simply stalls
	// the sender through the TCP window. Hardware RNICs terminate (the
	// default); socket-style layers set this.
	BlockOnRNR bool
}

// RCQP is a standard iWARP reliable-connection queue pair over an
// MPA-framed stream: the baseline the paper compares against. It supports
// Send/Recv, RDMA Write, and RDMA Read with the specification's semantics,
// including the strict error model: any protocol violation sends a
// Terminate, moves the QP to the error state, and flushes outstanding work
// requests (contrast UDQP).
type RCQP struct {
	pd     *memreg.PD
	tbl    *memreg.Table
	ch     *ddp.StreamChannel
	sendCQ *CQ
	recvCQ *CQ
	cfg    RCConfig

	rq  *recvQueue
	msn atomic.Uint32

	sendMu sync.Mutex

	readMu       sync.Mutex
	pendingReads []pendingRead

	// Current inbound untagged message state (stream delivery is in-order,
	// so at most one send-type message is in flight at a time).
	cur *inboundMsg

	stateMu sync.Mutex
	errored bool
	closed  bool
	wg      sync.WaitGroup

	// Counters are registry handles (DESIGN.md §4.6): per-QP exact reads
	// via Stats(), summed across QPs for the process scrape.
	stats struct {
		msgsSent, msgsRecv, bytesSent, bytesRecv *telemetry.Counter
		placed, placeErr                         *telemetry.Counter
	}
}

// pendingRead tracks one outstanding RDMA Read awaiting its response.
// Stream ordering guarantees responses complete in request order.
type pendingRead struct {
	id     uint64
	sink   memreg.STag
	length int
	placed int
}

// inboundMsg is the receive WR bound to the in-progress untagged message.
type inboundMsg struct {
	wr       RecvWR
	msn      uint32
	received int
	tooLong  bool
}

// ConnectRC establishes an RC QP as the MPA initiator on an existing
// stream; private data rides the MPA request.
func ConnectRC(s transport.Stream, pd *memreg.PD, tbl *memreg.Table, sendCQ, recvCQ *CQ, cfg RCConfig, private []byte) (*RCQP, []byte, error) {
	conn, peerPriv, err := mpa.Connect(s, cfg.MPA, private)
	if err != nil {
		return nil, peerPriv, err
	}
	qp, err := newRCQP(conn, pd, tbl, sendCQ, recvCQ, cfg)
	return qp, peerPriv, err
}

// AcceptRC establishes an RC QP as the MPA responder on an accepted stream.
func AcceptRC(s transport.Stream, pd *memreg.PD, tbl *memreg.Table, sendCQ, recvCQ *CQ, cfg RCConfig, private []byte) (*RCQP, []byte, error) {
	conn, peerPriv, err := mpa.Accept(s, cfg.MPA, private)
	if err != nil {
		return nil, peerPriv, err
	}
	qp, err := newRCQP(conn, pd, tbl, sendCQ, recvCQ, cfg)
	return qp, peerPriv, err
}

func newRCQP(conn *mpa.Conn, pd *memreg.PD, tbl *memreg.Table, sendCQ, recvCQ *CQ, cfg RCConfig) (*RCQP, error) {
	if pd == nil || tbl == nil || sendCQ == nil || recvCQ == nil {
		return nil, fmt.Errorf("%w: nil argument", ErrBadWR)
	}
	qp := &RCQP{
		pd:     pd,
		tbl:    tbl,
		ch:     ddp.NewStreamChannel(conn),
		sendCQ: sendCQ,
		recvCQ: recvCQ,
		cfg:    cfg,
		rq:     newRecvQueue(cfg.RecvDepth),
	}
	qp.stats.msgsSent = telemetry.Default.Counter("diwarp_rc_msgs_sent_total")
	qp.stats.msgsRecv = telemetry.Default.Counter("diwarp_rc_msgs_recv_total")
	qp.stats.bytesSent = telemetry.Default.Counter("diwarp_rc_bytes_sent_total")
	qp.stats.bytesRecv = telemetry.Default.Counter("diwarp_rc_bytes_recv_total")
	qp.stats.placed = telemetry.Default.Counter("diwarp_rc_placed_segments_total")
	qp.stats.placeErr = telemetry.Default.Counter("diwarp_rc_place_errors_total")
	qp.wg.Add(1)
	go qp.recvLoop()
	return qp, nil
}

// PD returns the protection domain.
func (qp *RCQP) PD() *memreg.PD { return qp.pd }

// Errored reports whether the QP has entered the error state.
func (qp *RCQP) Errored() bool {
	qp.stateMu.Lock()
	defer qp.stateMu.Unlock()
	return qp.errored
}

func (qp *RCQP) usable() error {
	qp.stateMu.Lock()
	defer qp.stateMu.Unlock()
	if qp.closed || qp.errored {
		return ErrQPClosed
	}
	return nil
}

// PostRecv posts a receive buffer for one incoming send-type message.
func (qp *RCQP) PostRecv(id uint64, buf []byte) error {
	if err := qp.usable(); err != nil {
		return err
	}
	return qp.rq.post(RecvWR{ID: id, Buf: buf})
}

// PostSend transmits one untagged message. The WR completes when the
// message is handed to the reliable LLP.
func (qp *RCQP) PostSend(id uint64, payload nio.Vec) error {
	if err := qp.usable(); err != nil {
		return err
	}
	msn := qp.msn.Add(1)
	qp.sendMu.Lock()
	err := qp.ch.SendUntagged(ddp.QNSend, msn, rdmap.Ctrl(rdmap.OpSend), payload)
	qp.sendMu.Unlock()
	if err != nil {
		qp.enterError(err)
		return err
	}
	n := payload.Len()
	qp.stats.msgsSent.Inc()
	qp.stats.bytesSent.Add(int64(n))
	qp.sendCQ.post(CQE{WRID: id, Type: WTSend, ByteLen: n})
	return nil
}

// PostWrite performs a standard RDMA Write into the remote region named
// stag at offset to. Per the specification the target gets no completion;
// applications follow with a Send when they need target notification
// (the two-message pattern of the paper's Figure 3, top half).
func (qp *RCQP) PostWrite(id uint64, stag memreg.STag, to uint64, payload nio.Vec) error {
	if err := qp.usable(); err != nil {
		return err
	}
	msn := qp.msn.Add(1)
	qp.sendMu.Lock()
	err := qp.ch.SendTagged(stag, to, msn, rdmap.Ctrl(rdmap.OpWrite), payload)
	qp.sendMu.Unlock()
	if err != nil {
		qp.enterError(err)
		return err
	}
	n := payload.Len()
	qp.stats.msgsSent.Inc()
	qp.stats.bytesSent.Add(int64(n))
	qp.sendCQ.post(CQE{WRID: id, Type: WTWrite, ByteLen: n})
	return nil
}

// PostRead performs an RDMA Read: length bytes from the remote region
// (srcSTag, srcTO) into the local region (sinkSTag, sinkTO). The WR
// completes when the full response has been placed locally.
func (qp *RCQP) PostRead(id uint64, sinkSTag memreg.STag, sinkTO uint64, srcSTag memreg.STag, srcTO uint64, length int) error {
	if err := qp.usable(); err != nil {
		return err
	}
	// Validate the local sink up front so failures surface at post time.
	sink, err := qp.tbl.Lookup(sinkSTag)
	if err != nil {
		return fmt.Errorf("%w: sink: %v", ErrBadWR, err)
	}
	if sink.Access()&memreg.LocalWrite == 0 {
		return fmt.Errorf("%w: sink lacks LOCAL_WRITE", ErrBadWR)
	}
	req := rdmap.ReadReq{
		SinkSTag: uint32(sinkSTag),
		SinkTO:   sinkTO,
		Len:      uint32(length),
		SrcSTag:  uint32(srcSTag),
		SrcTO:    srcTO,
	}
	qp.readMu.Lock()
	qp.pendingReads = append(qp.pendingReads, pendingRead{id: id, sink: sinkSTag, length: length})
	qp.readMu.Unlock()

	msn := qp.msn.Add(1)
	qp.sendMu.Lock()
	err = qp.ch.SendUntagged(ddp.QNReadReq, msn, rdmap.Ctrl(rdmap.OpReadReq), nio.VecOf(req.Append(nil)))
	qp.sendMu.Unlock()
	if err != nil {
		qp.enterError(err)
		return err
	}
	return nil
}

// recvLoop processes inbound segments in stream order.
func (qp *RCQP) recvLoop() {
	defer qp.wg.Done()
	defer func() {
		// A half-received message's WR was already popped from the receive
		// queue; flush it explicitly so no WR vanishes without a CQE.
		if qp.cur != nil {
			qp.recvCQ.post(CQE{WRID: qp.cur.wr.ID, Type: WTRecv, Status: StatusFlushed, Err: ErrQPClosed})
			qp.cur = nil
		}
	}()
	for {
		seg, err := qp.ch.Recv()
		if err != nil {
			qp.enterError(err)
			return
		}
		op, perr := rdmap.ParseCtrl(seg.RDMAP)
		if perr != nil {
			qp.terminate(rdmap.LayerRDMAP, rdmap.TermInvalidOpcode, perr.Error())
			return
		}
		switch op {
		case rdmap.OpSend, rdmap.OpSendSE:
			if !qp.handleSendSeg(&seg) {
				return
			}
		case rdmap.OpWrite:
			if !qp.placeTagged(&seg, false) {
				return
			}
		case rdmap.OpReadResp:
			if !qp.placeTagged(&seg, true) {
				return
			}
		case rdmap.OpReadReq:
			if !qp.handleReadReq(&seg) {
				return
			}
		case rdmap.OpTerminate:
			if t, terr := rdmap.ParseTerminate(seg.Payload); terr == nil {
				qp.enterError(t)
			} else {
				qp.enterError(terr)
			}
			return
		default:
			qp.terminate(rdmap.LayerRDMAP, rdmap.TermInvalidOpcode, op.String())
			return
		}
	}
}

// handleSendSeg places one untagged segment into the bound receive WR,
// binding the head WR on the first segment of each message. Returns false
// when the QP must stop (fatal error).
func (qp *RCQP) handleSendSeg(seg *ddp.Segment) bool {
	if qp.cur == nil || qp.cur.msn != seg.MSN {
		wr, ok := qp.rq.pop()
		for !ok && qp.cfg.BlockOnRNR {
			// Software-iWARP behaviour: stop draining the stream until the
			// application posts a receive; TCP backpressure stalls the peer.
			qp.stateMu.Lock()
			stopped := qp.closed || qp.errored
			qp.stateMu.Unlock()
			if stopped {
				return false
			}
			time.Sleep(200 * time.Microsecond)
			wr, ok = qp.rq.pop()
		}
		if !ok {
			// Receiver not ready: fatal on RC per the specification.
			qp.terminate(rdmap.LayerDDP, rdmap.TermCatastrophic, "no posted receive")
			return false
		}
		qp.cur = &inboundMsg{wr: wr, msn: seg.MSN}
		if int(seg.MsgLen) > len(wr.Buf) {
			qp.cur.tooLong = true
		}
	}
	m := qp.cur
	if !m.tooLong {
		copy(m.wr.Buf[seg.MO:], seg.Payload)
	}
	m.received += len(seg.Payload)
	if !seg.Last {
		return true
	}
	qp.cur = nil
	if m.tooLong {
		qp.recvCQ.post(CQE{
			WRID: m.wr.ID, Type: WTRecv, Status: StatusLocalLength,
			Err:     fmt.Errorf("iwarp: message %d bytes exceeds receive buffer %d", seg.MsgLen, len(m.wr.Buf)),
			ByteLen: m.received,
		})
		return true
	}
	qp.stats.msgsRecv.Inc()
	qp.stats.bytesRecv.Add(int64(m.received))
	qp.recvCQ.post(CQE{WRID: m.wr.ID, Type: WTRecv, ByteLen: m.received})
	return true
}

// placeTagged places an RDMA Write or Read Response segment. Read Response
// completion is matched against the pending-read FIFO.
func (qp *RCQP) placeTagged(seg *ddp.Segment, isReadResp bool) bool {
	region, err := qp.tbl.Lookup(seg.STag)
	if err != nil {
		qp.stats.placeErr.Inc()
		qp.terminate(rdmap.LayerDDP, rdmap.TermInvalidSTag, err.Error())
		return false
	}
	need := memreg.RemoteWrite
	if isReadResp {
		// A read sink needs only local write rights: the remote peer is
		// acting on our behalf.
		need = memreg.LocalWrite
	}
	if err := region.Place(qp.pd, need, seg.TO, seg.Payload); err != nil {
		qp.stats.placeErr.Inc()
		qp.terminate(rdmap.LayerDDP, rdmap.TermBaseBounds, err.Error())
		return false
	}
	qp.stats.placed.Inc()
	qp.stats.bytesRecv.Add(int64(len(seg.Payload)))
	if isReadResp && seg.Last {
		qp.readMu.Lock()
		var pr pendingRead
		ok := len(qp.pendingReads) > 0
		if ok {
			pr = qp.pendingReads[0]
			qp.pendingReads = qp.pendingReads[1:]
		}
		qp.readMu.Unlock()
		if ok {
			qp.sendCQ.post(CQE{WRID: pr.id, Type: WTRead, ByteLen: int(seg.MsgLen), STag: pr.sink})
		}
	}
	return true
}

// handleReadReq services a peer's RDMA Read: fetch from the local source
// region and stream a tagged Read Response back.
func (qp *RCQP) handleReadReq(seg *ddp.Segment) bool {
	req, err := rdmap.ParseReadReq(seg.Payload)
	if err != nil {
		qp.terminate(rdmap.LayerRDMAP, rdmap.TermCatastrophic, err.Error())
		return false
	}
	src, err := qp.tbl.Lookup(memreg.STag(req.SrcSTag))
	if err != nil {
		qp.terminate(rdmap.LayerRDMAP, rdmap.TermInvalidSTag, err.Error())
		return false
	}
	buf := make([]byte, req.Len)
	if err := src.Read(qp.pd, memreg.RemoteRead, req.SrcTO, buf); err != nil {
		qp.terminate(rdmap.LayerRDMAP, rdmap.TermAccessViolation, err.Error())
		return false
	}
	msn := qp.msn.Add(1)
	qp.sendMu.Lock()
	err = qp.ch.SendTagged(memreg.STag(req.SinkSTag), req.SinkTO, msn, rdmap.Ctrl(rdmap.OpReadResp), nio.VecOf(buf))
	qp.sendMu.Unlock()
	if err != nil {
		qp.enterError(err)
		return false
	}
	return true
}

// terminate sends a Terminate message to the peer (best effort) and moves
// the QP to the error state.
func (qp *RCQP) terminate(layer rdmap.TermLayer, code rdmap.TermCode, info string) {
	t := rdmap.Terminate{Layer: layer, Code: code, Info: info}
	msn := qp.msn.Add(1)
	qp.sendMu.Lock()
	_ = qp.ch.SendUntagged(ddp.QNTerminate, msn, rdmap.Ctrl(rdmap.OpTerminate), nio.VecOf(t.Append(nil)))
	qp.sendMu.Unlock()
	qp.enterError(t)
}

// enterError moves the QP to the error state once, flushing receives and
// pending reads with StatusFlushed.
func (qp *RCQP) enterError(cause error) {
	qp.stateMu.Lock()
	if qp.errored || qp.closed {
		qp.stateMu.Unlock()
		return
	}
	qp.errored = true
	qp.stateMu.Unlock()

	for _, wr := range qp.rq.drain() {
		qp.recvCQ.post(CQE{WRID: wr.ID, Type: WTRecv, Status: StatusFlushed, Err: cause})
	}
	qp.readMu.Lock()
	pending := qp.pendingReads
	qp.pendingReads = nil
	qp.readMu.Unlock()
	for _, pr := range pending {
		qp.sendCQ.post(CQE{WRID: pr.id, Type: WTRead, Status: StatusFlushed, Err: cause})
	}
	_ = qp.ch.Close()
}

// Stats returns a snapshot of the QP's datapath counters.
func (qp *RCQP) Stats() Stats {
	return Stats{
		MsgsSent:       qp.stats.msgsSent.Load(),
		MsgsReceived:   qp.stats.msgsRecv.Load(),
		BytesSent:      qp.stats.bytesSent.Load(),
		BytesReceived:  qp.stats.bytesRecv.Load(),
		PlacedSegments: qp.stats.placed.Load(),
		PlaceErrors:    qp.stats.placeErr.Load(),
	}
}

// Close tears the connection down and flushes outstanding work requests.
func (qp *RCQP) Close() error {
	qp.stateMu.Lock()
	if qp.closed {
		qp.stateMu.Unlock()
		return nil
	}
	qp.closed = true
	alreadyErrored := qp.errored
	qp.stateMu.Unlock()

	err := qp.ch.Close()
	qp.wg.Wait()
	if !alreadyErrored {
		for _, wr := range qp.rq.drain() {
			qp.recvCQ.post(CQE{WRID: wr.ID, Type: WTRecv, Status: StatusFlushed, Err: ErrQPClosed})
		}
	}
	return err
}
