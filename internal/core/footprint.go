package iwarp

// Memory accounting for the paper's Figure 11 scalability comparison. Each
// QP reports the state it pins per endpoint; the difference between the two
// QP types is the paper's argument: an RC QP carries connection state
// (framing buffers, stream windows, MPA bookkeeping) that a UD QP simply
// does not have ("it does not have to keep information regarding
// connections", §IV.A).

// Estimated fixed struct-and-bookkeeping overheads, standing in for the
// RNIC context entry plus host driver state of each QP type. The RC entry
// is larger because the connection context (TCP tuple, MPA state, sequence
// tracking) lives there; the values follow typical RNIC QP context sizes
// (256 B–1 KiB class) rather than Go struct sizes, which would undercount a
// hardware realisation.
const (
	udQPOverhead = 512
	rcQPOverhead = 1024
)

// Footprint reports the bytes of state the UD QP currently pins: fixed
// context, posted-receive bookkeeping, reassembly partials, and
// Write-Record trackers. Note what is absent: no per-peer state at all.
func (qp *UDQP) Footprint() int64 {
	n := int64(udQPOverhead)
	n += int64(qp.rq.len()) * 24 // posted WR slots
	n += qp.reasmBytes.Load()
	n += int64(qp.records.Len()) * 96 // tracker struct + validity intervals
	return n
}

// Footprint reports the bytes of state the RC QP pins: fixed context,
// posted-receive bookkeeping, MPA framing buffers, and the stream's
// buffering (the simulated socket send/receive windows).
func (qp *RCQP) Footprint() int64 {
	n := int64(rcQPOverhead)
	n += int64(qp.rq.len()) * 24
	n += qp.ch.Footprint()
	return n
}
