package iwarp

import (
	"fmt"
	"time"

	"repro/internal/ddp"
	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/peertab"
	"repro/internal/rdmap"
	"repro/internal/transport"
)

// UD RDMA Read — the paper's stated future work ("we would also like to
// ... propose UD-based RDMA Read for use in HPC applications", §VII) —
// implemented here as the natural dual of RDMA Write-Record:
//
//   - the requester sends an RDMA Read Request on untagged queue 1 carrying
//     (sink STag, sink TO, length, source STag, source TO) plus the
//     requester's MSN as a correlation cookie;
//   - the responder validates the source region (REMOTE_READ rights) and
//     streams the data back as tagged Read Response segments, which the
//     requester's placement engine handles exactly like Write-Record
//     segments: place, record, complete on the Last segment;
//   - the completion carries a validity map, so — like Write-Record — a
//     read over a lossy network can complete *partially*, with the holes
//     visible to the application;
//   - if the request, the Last response segment, or everything is lost, no
//     completion arrives: the outstanding read is reclaimed by the sweeper
//     with StatusTimedOut, preserving the paper's rule that a datagram QP
//     never wedges on loss.
type pendingUDRead struct {
	id     uint64
	sink   memreg.STag
	sinkTO uint64
	length int
	born   time.Time
}

// PostRead issues a UD RDMA Read: length bytes from the remote region
// (srcSTag, srcTO) at dest into the local region (sinkSTag, sinkTO). The
// WR completes with WTRead when the response's final segment arrives —
// possibly partially under loss (inspect the CQE's Validity) — or with
// StatusTimedOut if the exchange is lost.
func (qp *UDQP) PostRead(id uint64, dest transport.Addr, sinkSTag memreg.STag, sinkTO uint64, srcSTag memreg.STag, srcTO uint64, length int) error {
	if qp.closed.Load() {
		return ErrQPClosed
	}
	if length <= 0 || length > maxUDMessage {
		return fmt.Errorf("%w: read of %d bytes", ErrBadWR, length)
	}
	// Validate the local sink up front: it must exist and be locally
	// writable, since the responder's segments will be placed into it.
	sink, err := qp.tbl.Lookup(sinkSTag)
	if err != nil {
		return fmt.Errorf("%w: sink: %v", ErrBadWR, err)
	}
	if sink.Access()&memreg.LocalWrite == 0 {
		return fmt.Errorf("%w: sink lacks LOCAL_WRITE", ErrBadWR)
	}
	msn := qp.msn.Add(1)
	req := rdmap.ReadReq{
		SinkSTag: uint32(sinkSTag),
		SinkTO:   sinkTO,
		Len:      uint32(length),
		SrcSTag:  uint32(srcSTag),
		SrcTO:    srcTO,
	}
	key := wrKey{from: dest, msn: msn}
	// The MSN is unique per QP lifetime, so this always creates.
	pent, _, _ := qp.pendingReads.GetOrCreate(key, func(ne *peertab.Entry[wrKey, pendingUDRead]) {
		ne.V = pendingUDRead{id: id, sink: sinkSTag, sinkTO: sinkTO, length: length, born: time.Now()}
	})

	err = qp.ch.SendUntagged(dest, ddp.QNReadReq, msn, rdmap.Ctrl(rdmap.OpReadReq), nio.VecOf(req.Append(nil)))
	if err != nil {
		qp.pendingReads.EvictEntry(pent)
		return err
	}
	return nil
}

// handleReadReq services a peer's UD RDMA Read at the responder: fetch the
// requested bytes from the local source region and stream them back as
// tagged Read Response segments reusing the requester's MSN. Failures are
// reported with a Terminate message, which the requester surfaces as an
// advisory completion (the QP stays up, per the UD error model).
func (qp *UDQP) handleReadReq(from transport.Addr, seg *ddp.Segment) {
	req, err := rdmap.ParseReadReq(seg.Payload)
	if err != nil {
		qp.advisory(from, err)
		return
	}
	src, err := qp.tbl.Lookup(memreg.STag(req.SrcSTag))
	if err != nil {
		qp.stats.placeErr.Add(1)
		qp.sendTerminate(from, rdmap.LayerRDMAP, rdmap.TermInvalidSTag, err.Error())
		return
	}
	buf := make([]byte, req.Len)
	if err := src.Read(qp.pd, memreg.RemoteRead, req.SrcTO, buf); err != nil {
		qp.stats.placeErr.Add(1)
		qp.sendTerminate(from, rdmap.LayerRDMAP, rdmap.TermAccessViolation, err.Error())
		return
	}
	err = qp.ch.SendTagged(from, memreg.STag(req.SinkSTag), req.SinkTO, seg.MSN, rdmap.Ctrl(rdmap.OpReadResp), nio.VecOf(buf))
	if err != nil {
		qp.advisory(from, err)
		return
	}
	qp.stats.bytesSent.Add(int64(len(buf)))
}

// handleReadResp places one tagged Read Response segment at the requester.
// The placement path mirrors Write-Record; completion fires on the Last
// segment against the matching outstanding read.
func (qp *UDQP) handleReadResp(from transport.Addr, seg *ddp.Segment) {
	key := wrKey{from: from, msn: seg.MSN}
	pent := qp.pendingReads.Get(key)
	if pent == nil {
		// Stale or duplicate response (e.g. its read already timed out).
		return
	}
	pr := &pent.V // immutable after PostRead publishes the entry
	region, err := qp.tbl.Lookup(seg.STag)
	if err != nil || seg.STag != pr.sink {
		qp.stats.placeErr.Add(1)
		qp.failRead(key, pent, StatusRemoteInvalid, fmt.Errorf("iwarp: read response names unknown sink %#x", uint32(seg.STag)))
		return
	}
	// Read responses target OUR OWN sink on our own behalf: LocalWrite
	// suffices, matching the RC semantics.
	if err := region.Place(qp.pd, memreg.LocalWrite, seg.TO, seg.Payload); err != nil {
		qp.stats.placeErr.Add(1)
		qp.failRead(key, pent, StatusLocalAccess, err)
		return
	}
	qp.stats.placed.Add(1)
	qp.stats.bytesRecv.Add(int64(len(seg.Payload)))

	ent, _, _ := qp.records.LockOrCreate(key, func(ne *peertab.Entry[wrKey, wrTracker]) {
		ne.V.stag = seg.STag
		ne.V.born = time.Now()
	})
	tr := &ent.V
	tr.validity.Add(seg.TO, uint64(len(seg.Payload)))
	tr.placed += len(seg.Payload)
	if !seg.Last {
		ent.Unlock()
		return
	}
	placed, stag, validity := tr.placed, tr.stag, tr.validity.Clone()
	ent.Unlock()
	qp.records.EvictEntry(ent)

	// Exactly one of completion, failRead, and the sweeper wins the pending
	// entry; losers leave the CQE to the winner.
	if !qp.pendingReads.EvictEntry(pent) {
		return
	}
	qp.stats.msgsRecv.Add(1)
	base := seg.TO + uint64(len(seg.Payload)) - uint64(seg.MsgLen)
	qp.sendCQ.post(CQE{
		WRID: pr.id, Type: WTRead, ByteLen: placed, Src: from,
		STag: stag, TO: base, MsgLen: int(seg.MsgLen), Validity: validity,
	})
}

// failRead completes an outstanding read unsuccessfully and drops its
// state. The eviction's exactly-once win keeps a racing sweep or duplicate
// response from double-completing the WR.
func (qp *UDQP) failRead(key wrKey, pent *peertab.Entry[wrKey, pendingUDRead], status Status, err error) {
	if !qp.pendingReads.EvictEntry(pent) {
		return
	}
	if ent := qp.records.Get(key); ent != nil {
		qp.records.EvictEntry(ent)
	}
	qp.sendCQ.post(CQE{WRID: pent.V.id, Type: WTRead, Status: status, Err: err, STag: pent.V.sink})
}

// sweepReads times out reads whose responses never completed.
func (qp *UDQP) sweepReads(now time.Time) {
	cutoff := now.Add(-qp.reasmTimeout())
	qp.pendingReads.Range(func(pent *peertab.Entry[wrKey, pendingUDRead]) bool {
		if !pent.V.born.Before(cutoff) {
			return true
		}
		if !qp.pendingReads.EvictEntry(pent) {
			return true // a response or failure beat the sweep to it
		}
		cqe := CQE{
			WRID: pent.V.id, Type: WTRead, Status: StatusTimedOut,
			Err:  fmt.Errorf("iwarp: UD read timed out after %v", qp.reasmTimeout()),
			STag: pent.V.sink,
		}
		if ent := qp.records.Get(pent.Key); ent != nil {
			// Partial data did arrive; report what is valid even though the
			// Last segment never came.
			ent.Lock()
			if !ent.Gone() {
				cqe.ByteLen = ent.V.placed
				cqe.Validity = ent.V.validity.Clone()
			}
			ent.Unlock()
			qp.records.EvictEntry(ent)
		}
		qp.stats.swept.Add(1)
		qp.sendCQ.post(cqe)
		return true
	})
}

// sendTerminate reports an error back to a peer without touching QP state.
func (qp *UDQP) sendTerminate(to transport.Addr, layer rdmap.TermLayer, code rdmap.TermCode, info string) {
	t := rdmap.Terminate{Layer: layer, Code: code, Info: info}
	msn := qp.msn.Add(1)
	_ = qp.ch.SendUntagged(to, ddp.QNTerminate, msn, rdmap.Ctrl(rdmap.OpTerminate), nio.VecOf(t.Append(nil)))
}
