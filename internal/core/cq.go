package iwarp

import (
	"sync"
	"sync/atomic"
	"time"
)

// CQ is a completion queue: a bounded buffer of CQEs shared by any number
// of queue pairs. Poll takes entries with an explicit timeout — the polling
// discipline the paper requires for datagram-iWARP, where a lost datagram
// means the awaited completion never arrives ("it is essential that the
// completion queue be polled with a defined timeout period", §IV.B.1).
type CQ struct {
	ch       chan CQE
	overruns atomic.Int64

	mu     sync.Mutex
	closed bool
}

// DefaultCQDepth is the completion queue capacity used when depth 0 is
// requested.
const DefaultCQDepth = 1024

// NewCQ creates a completion queue holding up to depth entries
// (0 selects DefaultCQDepth).
func NewCQ(depth int) *CQ {
	if depth <= 0 {
		depth = DefaultCQDepth
	}
	return &CQ{ch: make(chan CQE, depth)}
}

// post adds a completion. A full queue drops the entry and counts an
// overrun — the hardware-CQ overflow behaviour; sizing the CQ to the sum of
// queue depths avoids it, as on a real RNIC.
func (cq *CQ) post(e CQE) {
	cq.mu.Lock()
	if cq.closed {
		cq.mu.Unlock()
		return
	}
	select {
	case cq.ch <- e:
	default:
		cq.overruns.Add(1)
	}
	cq.mu.Unlock()
}

// Poll returns the next completion, waiting up to timeout. A zero timeout
// polls without blocking; a negative timeout blocks indefinitely. It
// returns ErrCQEmpty when the deadline passes with no completion.
func (cq *CQ) Poll(timeout time.Duration) (CQE, error) {
	// Fast path: a queued completion never pays for timer setup. Under
	// load this is the common case and keeps the per-message cost of
	// timeout-based polling near zero.
	select {
	case e := <-cq.ch:
		return e, nil
	default:
	}
	if timeout == 0 {
		return CQE{}, ErrCQEmpty
	}
	if timeout < 0 {
		return <-cq.ch, nil
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case e := <-cq.ch:
		return e, nil
	case <-t.C:
		return CQE{}, ErrCQEmpty
	}
}

// PollN collects up to max completions, waiting at most timeout for the
// first and draining whatever else is immediately available.
func (cq *CQ) PollN(max int, timeout time.Duration) []CQE {
	if max <= 0 {
		return nil
	}
	first, err := cq.Poll(timeout)
	if err != nil {
		return nil
	}
	out := []CQE{first}
	for len(out) < max {
		select {
		case e := <-cq.ch:
			out = append(out, e)
		default:
			return out
		}
	}
	return out
}

// Len reports the number of queued completions.
func (cq *CQ) Len() int { return len(cq.ch) }

// Overruns reports how many completions were dropped to a full queue.
func (cq *CQ) Overruns() int64 { return cq.overruns.Load() }

// Close marks the queue closed; queued entries remain pollable. Posting
// after Close is a silent no-op so racing QPs shut down cleanly.
func (cq *CQ) Close() {
	cq.mu.Lock()
	cq.closed = true
	cq.mu.Unlock()
}
