package iwarp

import "sync"

// recvQueue is the posted-receive FIFO of a queue pair. The receiver side
// "handles all of the buffer management and determines where incoming data
// will be placed" (§II): each completed untagged message consumes the WR at
// the head.
type recvQueue struct {
	mu    sync.Mutex
	wrs   []RecvWR
	depth int
}

func newRecvQueue(depth int) *recvQueue {
	if depth <= 0 {
		depth = 256
	}
	return &recvQueue{depth: depth}
}

// post appends a receive WR, failing when the queue is at depth.
func (q *recvQueue) post(wr RecvWR) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.wrs) >= q.depth {
		return ErrRecvQueueFull
	}
	q.wrs = append(q.wrs, wr)
	return nil
}

// pop removes and returns the head WR.
func (q *recvQueue) pop() (RecvWR, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.wrs) == 0 {
		return RecvWR{}, false
	}
	wr := q.wrs[0]
	q.wrs[0] = RecvWR{}
	q.wrs = q.wrs[1:]
	if len(q.wrs) == 0 {
		q.wrs = nil
	}
	return wr, true
}

// drain removes and returns every posted WR (for flushing at close).
func (q *recvQueue) drain() []RecvWR {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.wrs
	q.wrs = nil
	return out
}

// len reports the number of posted WRs.
func (q *recvQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.wrs)
}
