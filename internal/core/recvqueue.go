package iwarp

import "sync"

// recvQueue is the posted-receive FIFO of a queue pair. The receiver side
// "handles all of the buffer management and determines where incoming data
// will be placed" (§II): each completed untagged message consumes the WR at
// the head. The avail channel is pulsed on every post so an RNR-blocked
// placement worker parks on a notification instead of spin-polling.
type recvQueue struct {
	mu    sync.Mutex
	wrs   []RecvWR
	depth int
	avail chan struct{}
}

func newRecvQueue(depth int) *recvQueue {
	if depth <= 0 {
		depth = 256
	}
	return &recvQueue{depth: depth, avail: make(chan struct{}, 1)}
}

// notify pulses a capacity-1 channel without blocking.
func notify(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// post appends a receive WR, failing when the queue is at depth.
func (q *recvQueue) post(wr RecvWR) error {
	q.mu.Lock()
	if len(q.wrs) >= q.depth {
		q.mu.Unlock()
		return ErrRecvQueueFull
	}
	q.wrs = append(q.wrs, wr)
	q.mu.Unlock()
	notify(q.avail)
	return nil
}

// pop removes and returns the head WR. When WRs remain after the pop, the
// avail pulse is re-armed: several workers can be parked in waitRecv while
// the capacity-1 channel holds only one token, and the cascade hands the
// wakeup on so no posted receive strands a waiter (lost-wakeup avoidance).
func (q *recvQueue) pop() (RecvWR, bool) {
	q.mu.Lock()
	if len(q.wrs) == 0 {
		q.mu.Unlock()
		return RecvWR{}, false
	}
	wr := q.wrs[0]
	q.wrs[0] = RecvWR{}
	q.wrs = q.wrs[1:]
	remaining := len(q.wrs)
	if remaining == 0 {
		q.wrs = nil
	}
	q.mu.Unlock()
	if remaining > 0 {
		notify(q.avail)
	}
	return wr, true
}

// drain removes and returns every posted WR (for flushing at close).
func (q *recvQueue) drain() []RecvWR {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.wrs
	q.wrs = nil
	return out
}

// len reports the number of posted WRs.
func (q *recvQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.wrs)
}
