package iwarp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/memreg"
	"repro/internal/mpa"
	"repro/internal/nio"
	"repro/internal/simnet"
	"repro/internal/transport"
)

type rcNode struct {
	pd  *memreg.PD
	tbl *memreg.Table
	scq *CQ
	rcq *CQ
	qp  *RCQP
}

// rcPair connects two RC QPs over a simulated network.
func rcPair(t *testing.T, cfg RCConfig) (*rcNode, *rcNode) {
	t.Helper()
	net := simnet.New(simnet.Config{})
	l, err := net.Listen("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *rcNode {
		return &rcNode{pd: memreg.NewPD(), tbl: memreg.NewTable(), scq: NewCQ(0), rcq: NewCQ(0)}
	}
	srv, cli := mk(), mk()
	type res struct {
		qp  *RCQP
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := l.Accept()
		if err != nil {
			ch <- res{nil, err}
			return
		}
		qp, _, err := AcceptRC(s, srv.pd, srv.tbl, srv.scq, srv.rcq, cfg, nil)
		ch <- res{qp, err}
	}()
	s, err := net.Dial("cli", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli.qp, _, err = ConnectRC(s, cli.pd, cli.tbl, cli.scq, cli.rcq, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	srv.qp = r.qp
	t.Cleanup(func() { cli.qp.Close(); srv.qp.Close() })
	return cli, srv
}

func TestRCSendRecvRoundTrip(t *testing.T) {
	cli, srv := rcPair(t, RCConfig{})
	buf := make([]byte, 128)
	if err := srv.qp.PostRecv(5, buf); err != nil {
		t.Fatal(err)
	}
	msg := []byte("over the reliable connection")
	if err := cli.qp.PostSend(6, nio.VecOf(msg)); err != nil {
		t.Fatal(err)
	}
	se, err := cli.scq.Poll(time.Second)
	if err != nil || se.Type != WTSend || !se.Ok() {
		t.Fatalf("send CQE %+v err %v", se, err)
	}
	re, err := srv.rcq.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if re.WRID != 5 || re.ByteLen != len(msg) || !bytes.Equal(buf[:re.ByteLen], msg) {
		t.Fatalf("recv CQE %+v payload %q", re, buf[:re.ByteLen])
	}
}

func TestRCLargeSendSegmented(t *testing.T) {
	cli, srv := rcPair(t, RCConfig{})
	msg := make([]byte, 300<<10) // hundreds of MULPDU segments
	rand.New(rand.NewSource(3)).Read(msg)
	buf := make([]byte, len(msg))
	if err := srv.qp.PostRecv(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := cli.qp.PostSend(2, nio.VecOf(msg)); err != nil {
		t.Fatal(err)
	}
	re, err := srv.rcq.Poll(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if re.ByteLen != len(msg) || !bytes.Equal(buf, msg) {
		t.Fatalf("ByteLen = %d", re.ByteLen)
	}
}

func TestRCWriteThenNotify(t *testing.T) {
	// The standard RC pattern from Figure 3: RDMA Write (no target CQE),
	// then a Send to tell the target the data is valid.
	cli, srv := rcPair(t, RCConfig{})
	region, err := srv.tbl.Register(srv.pd, make([]byte, 64<<10), memreg.RemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 48<<10)
	rand.New(rand.NewSource(8)).Read(payload)

	if err := srv.qp.PostRecv(1, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if err := cli.qp.PostWrite(2, region.STag(), 4096, nio.VecOf(payload)); err != nil {
		t.Fatal(err)
	}
	we, err := cli.scq.Poll(time.Second)
	if err != nil || we.Type != WTWrite || !we.Ok() {
		t.Fatalf("write CQE %+v err %v", we, err)
	}
	// No target-side completion for the write itself.
	if _, err := srv.rcq.Poll(50 * time.Millisecond); !errors.Is(err, ErrCQEmpty) {
		t.Fatal("RDMA Write must not complete at the target")
	}
	if err := cli.qp.PostSend(3, nio.VecOf([]byte("valid"))); err != nil {
		t.Fatal(err)
	}
	re, err := srv.rcq.Poll(time.Second)
	if err != nil || re.Type != WTRecv {
		t.Fatalf("notify CQE %+v err %v", re, err)
	}
	// Stream ordering guarantees the write landed before the send.
	if !bytes.Equal(region.Bytes()[4096:4096+len(payload)], payload) {
		t.Fatal("write not placed before notify")
	}
}

func TestRCRead(t *testing.T) {
	cli, srv := rcPair(t, RCConfig{})
	src, err := srv.tbl.Register(srv.pd, make([]byte, 32<<10), memreg.RemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	rand.New(rand.NewSource(4)).Read(src.Bytes())
	sink, err := cli.tbl.Register(cli.pd, make([]byte, 32<<10), memreg.LocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20 << 10
	if err := cli.qp.PostRead(11, sink.STag(), 100, src.STag(), 200, n); err != nil {
		t.Fatal(err)
	}
	e, err := cli.scq.Poll(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != WTRead || !e.Ok() || e.WRID != 11 {
		t.Fatalf("read CQE %+v", e)
	}
	if !bytes.Equal(sink.Bytes()[100:100+n], src.Bytes()[200:200+n]) {
		t.Fatal("read data mismatch")
	}
}

func TestRCReadBadSinkRejectedAtPost(t *testing.T) {
	cli, _ := rcPair(t, RCConfig{})
	err := cli.qp.PostRead(1, memreg.STag(0xFFFF00), 0, memreg.STag(1), 0, 16)
	if !errors.Is(err, ErrBadWR) {
		t.Fatalf("err = %v", err)
	}
}

func TestRCRNRTerminatesConnection(t *testing.T) {
	cli, srv := rcPair(t, RCConfig{})
	// No posted receive at the server: RC treats this as fatal.
	if err := cli.qp.PostSend(1, nio.VecOf([]byte("unexpected"))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !srv.qp.Errored() {
		time.Sleep(time.Millisecond)
	}
	if !srv.qp.Errored() {
		t.Fatal("server QP did not error on RNR")
	}
	// The Terminate propagates back: client errors too.
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !cli.qp.Errored() {
		time.Sleep(time.Millisecond)
	}
	if !cli.qp.Errored() {
		t.Fatal("client QP did not receive Terminate")
	}
	// Posts after error fail.
	if err := cli.qp.PostSend(2, nio.VecOf([]byte("x"))); !errors.Is(err, ErrQPClosed) {
		t.Fatalf("post after error: %v", err)
	}
}

func TestRCWriteBoundsViolationTerminates(t *testing.T) {
	cli, srv := rcPair(t, RCConfig{})
	region, err := srv.tbl.Register(srv.pd, make([]byte, 16), memreg.RemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.qp.PostWrite(1, region.STag(), 8, nio.VecOf([]byte("overruns the region"))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !srv.qp.Errored() {
		time.Sleep(time.Millisecond)
	}
	if !srv.qp.Errored() {
		t.Fatal("server QP did not error on bounds violation")
	}
	if srv.qp.Stats().PlaceErrors == 0 {
		t.Fatal("place error not counted")
	}
}

func TestRCInvalidSTagTerminates(t *testing.T) {
	cli, srv := rcPair(t, RCConfig{})
	if err := cli.qp.PostWrite(1, memreg.STag(0xDEAD00), 0, nio.VecOf([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !srv.qp.Errored() {
		time.Sleep(time.Millisecond)
	}
	if !srv.qp.Errored() {
		t.Fatal("server QP did not error on invalid STag")
	}
}

func TestRCErrorFlushesPostedRecvs(t *testing.T) {
	cli, srv := rcPair(t, RCConfig{})
	if err := srv.qp.PostRecv(21, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := srv.qp.PostRecv(22, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// Trigger a fatal error from the client: invalid STag write.
	if err := cli.qp.PostWrite(1, memreg.STag(0xBAD), 0, nio.VecOf([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		e, err := srv.rcq.Poll(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if e.Status != StatusFlushed {
			t.Fatalf("CQE %+v", e)
		}
		seen[e.WRID] = true
	}
	if !seen[21] || !seen[22] {
		t.Fatalf("flushed WRs = %v", seen)
	}
}

func TestRCCloseFlushesRecvs(t *testing.T) {
	cli, _ := rcPair(t, RCConfig{})
	if err := cli.qp.PostRecv(31, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	cli.qp.Close()
	e, err := cli.rcq.Poll(time.Second)
	if err != nil || e.WRID != 31 || e.Status != StatusFlushed {
		t.Fatalf("CQE %+v err %v", e, err)
	}
}

func TestRCRecvBufferTooSmall(t *testing.T) {
	cli, srv := rcPair(t, RCConfig{})
	if err := srv.qp.PostRecv(1, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if err := cli.qp.PostSend(2, nio.VecOf(make([]byte, 4096))); err != nil {
		t.Fatal(err)
	}
	e, err := srv.rcq.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Status != StatusLocalLength {
		t.Fatalf("CQE %+v", e)
	}
	// RC survives a too-small buffer (it is a local condition, not a
	// protocol violation): traffic continues.
	if err := srv.qp.PostRecv(3, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := cli.qp.PostSend(4, nio.VecOf([]byte("fits"))); err != nil {
		t.Fatal(err)
	}
	if e, err := srv.rcq.Poll(time.Second); err != nil || !e.Ok() {
		t.Fatalf("follow-up CQE %+v err %v", e, err)
	}
}

func TestRCMarkerlessProfile(t *testing.T) {
	cli, srv := rcPair(t, RCConfig{MPA: mpa.Config{MarkerInterval: -1, DisableCRC: true}})
	if err := srv.qp.PostRecv(1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := cli.qp.PostSend(2, nio.VecOf([]byte("bare profile"))); err != nil {
		t.Fatal(err)
	}
	if e, err := srv.rcq.Poll(time.Second); err != nil || !e.Ok() {
		t.Fatalf("CQE %+v err %v", e, err)
	}
}

func TestRCBidirectionalTraffic(t *testing.T) {
	cli, srv := rcPair(t, RCConfig{})
	const rounds = 50
	for i := 0; i < rounds; i++ {
		if err := cli.qp.PostRecv(uint64(i), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		if err := srv.qp.PostRecv(uint64(i), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	errc := make(chan error, 2)
	go func() {
		for i := 0; i < rounds; i++ {
			if err := cli.qp.PostSend(uint64(i), nio.VecOf([]byte{1, byte(i)})); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	go func() {
		for i := 0; i < rounds; i++ {
			if err := srv.qp.PostSend(uint64(i), nio.VecOf([]byte{2, byte(i)})); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < rounds; i++ {
		if e, err := cli.rcq.Poll(2 * time.Second); err != nil || !e.Ok() {
			t.Fatalf("cli recv %d: %+v %v", i, e, err)
		}
		if e, err := srv.rcq.Poll(2 * time.Second); err != nil || !e.Ok() {
			t.Fatalf("srv recv %d: %+v %v", i, e, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRCOverRealTCP(t *testing.T) {
	l, err := transport.ListenTCP("127.0.0.1", 0)
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	defer l.Close()
	mk := func() *rcNode {
		return &rcNode{pd: memreg.NewPD(), tbl: memreg.NewTable(), scq: NewCQ(0), rcq: NewCQ(0)}
	}
	srv, cli := mk(), mk()
	type res struct {
		qp  *RCQP
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := l.Accept()
		if err != nil {
			ch <- res{nil, err}
			return
		}
		qp, _, err := AcceptRC(s, srv.pd, srv.tbl, srv.scq, srv.rcq, RCConfig{}, nil)
		ch <- res{qp, err}
	}()
	s, err := transport.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli.qp, _, err = ConnectRC(s, cli.pd, cli.tbl, cli.scq, cli.rcq, RCConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	srv.qp = r.qp
	defer cli.qp.Close()
	defer srv.qp.Close()

	buf := make([]byte, 64)
	if err := srv.qp.PostRecv(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := cli.qp.PostSend(2, nio.VecOf([]byte("iwarp over kernel tcp"))); err != nil {
		t.Fatal(err)
	}
	e, err := srv.rcq.Poll(2 * time.Second)
	if err != nil || !e.Ok() {
		t.Fatalf("CQE %+v err %v", e, err)
	}
	if string(buf[:e.ByteLen]) != "iwarp over kernel tcp" {
		t.Fatalf("payload %q", buf[:e.ByteLen])
	}
}
