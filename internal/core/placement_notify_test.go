package iwarp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/simnet"
)

// TestPlacementNotifyHook pins the placement-completion hook: with
// PlacementNotify set, successful Write-Record target completions go to
// the callback — not the receive CQ — while advisory errors still reach
// the CQ. The hook is the message layer's rendezvous completion signal; a
// full CQ must never be able to drop it.
func TestPlacementNotifyHook(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})

	hooked := make(chan CQE, 8)
	b := newUDNode(t, net, "b", UDConfig{
		PlacementNotify: func(e CQE) { hooked <- e },
	})

	region, err := b.tbl.Register(b.pd, make([]byte, 4096), memreg.RemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hooked placement completion")
	if err := a.qp.PostWriteRecord(1, b.qp.LocalAddr(), region.STag(), 64, nio.VecOf(payload)); err != nil {
		t.Fatal(err)
	}
	var re CQE
	select {
	case re = <-hooked:
	case <-time.After(2 * time.Second):
		t.Fatal("placement hook never fired")
	}
	if re.Type != WTWriteRecordRecv || !re.Ok() {
		t.Fatalf("hooked CQE %+v", re)
	}
	if re.STag != region.STag() || re.TO != 64 || re.MsgLen != len(payload) {
		t.Fatalf("hooked CQE fields %+v", re)
	}
	if !bytes.Equal(region.Bytes()[64:64+len(payload)], payload) {
		t.Fatal("data not placed")
	}
	// The completion must NOT also appear on the receive CQ.
	if e, err := b.rcq.Poll(100 * time.Millisecond); err == nil {
		t.Fatalf("completion leaked to the receive CQ: %+v", e)
	}

	// Multi-segment messages complete through the same hook exactly once.
	big := make([]byte, 200<<10)
	for i := range big {
		big[i] = byte(i * 7)
	}
	region2, err := b.tbl.Register(b.pd, make([]byte, len(big)), memreg.RemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostWriteRecord(2, b.qp.LocalAddr(), region2.STag(), 0, nio.VecOf(big)); err != nil {
		t.Fatal(err)
	}
	select {
	case re = <-hooked:
	case <-time.After(2 * time.Second):
		t.Fatal("hook never fired for multi-segment record")
	}
	if re.STag != region2.STag() || re.MsgLen != len(big) {
		t.Fatalf("multi-segment hooked CQE %+v", re)
	}
	select {
	case e := <-hooked:
		t.Fatalf("duplicate hook invocation: %+v", e)
	case <-time.After(100 * time.Millisecond):
	}
	if !bytes.Equal(region2.Bytes(), big) {
		t.Fatal("multi-segment data not placed")
	}

	// Advisory errors (bad STag) still surface on the receive CQ.
	if err := a.qp.PostWriteRecord(3, b.qp.LocalAddr(), memreg.STag(0xdead00), 0, nio.VecOf(payload)); err != nil {
		t.Fatal(err)
	}
	e, err := b.rcq.Poll(2 * time.Second)
	if err != nil {
		t.Fatal("advisory error did not reach the receive CQ")
	}
	if e.Type != WTError {
		t.Fatalf("advisory CQE %+v", e)
	}
}
