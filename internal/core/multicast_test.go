package iwarp

import (
	"testing"
	"time"

	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/simnet"
)

// TestUDMulticastSend exercises the paper's §IV.A multicast scenario at the
// verbs level: one datagram QP sends a message to a group address and every
// subscribed QP completes a receive — one send, N deliveries, still zero
// connections.
func TestUDMulticastSend(t *testing.T) {
	net := simnet.New(simnet.Config{})
	group := simnet.GroupAddr(7)
	sender := newUDNode(t, net, "src", UDConfig{})

	const subscribers = 4
	var subs []*udNode
	for i := 0; i < subscribers; i++ {
		ep, err := net.OpenDatagram("sub", 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Join(group, ep); err != nil {
			t.Fatal(err)
		}
		nd := &udNode{pd: memreg.NewPD(), tbl: memreg.NewTable(), scq: NewCQ(0), rcq: NewCQ(0)}
		nd.qp, err = OpenUD(ep, nd.pd, nd.tbl, nd.scq, nd.rcq, UDConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.qp.Close() })
		if err := nd.qp.PostRecv(uint64(i), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		subs = append(subs, nd)
	}

	if err := sender.qp.PostSend(1, group, nio.VecOf([]byte("media frame"))); err != nil {
		t.Fatal(err)
	}
	for i, nd := range subs {
		e, err := nd.rcq.Poll(time.Second)
		if err != nil {
			t.Fatalf("subscriber %d: %v", i, err)
		}
		if !e.Ok() || e.ByteLen != len("media frame") {
			t.Fatalf("subscriber %d: CQE %+v", i, e)
		}
		if e.Src != sender.qp.LocalAddr() {
			t.Fatalf("subscriber %d: Src %v", i, e.Src)
		}
	}
}
