// Package iwarp is the verbs layer of the datagram-iWARP stack: the
// programming interface applications (and the socket interface) use to
// drive RDMA operations, corresponding to the "Verbs interface - RC & UD"
// box of the paper's Figure 4.
//
// It implements the queue-pair/completion-queue model of the RDMA verbs
// specification with the paper's datagram extensions (§IV.B item 4):
//
//   - datagram-type queue pairs ([UDQP]) bound to a local datagram endpoint
//     rather than a connection, whose send work requests carry destination
//     addresses and whose completions report the datagram source;
//   - completion-queue polling with a timeout ([CQ.Poll]), mandatory under
//     loss because a completion for a lost datagram never arrives;
//   - the RDMA Write-Record operation ([UDQP.PostWriteRecord]) and its
//     target-side completions carrying validity maps;
//   - the paper's UD error model: datagram QPs report failures as advisory
//     completions and remain usable, instead of transitioning to ERROR.
//
// Reliable-connection QPs ([RCQP]) implement the standard semantics (Send/
// Recv, RDMA Write, RDMA Read) over MPA-framed streams for baseline
// comparison, with the spec's strict error handling: any protocol violation
// terminates the connection and flushes outstanding work requests.
package iwarp

import (
	"errors"
	"fmt"

	"repro/internal/memreg"
	"repro/internal/transport"
)

// WorkType identifies the operation a completion reports.
type WorkType int

// Completion work types.
const (
	WTSend WorkType = iota + 1
	WTRecv
	WTWrite           // RDMA Write source completion (RC)
	WTWriteRecord     // Write-Record source completion (UD)
	WTWriteRecordRecv // Write-Record target completion: data placed (UD)
	WTRead            // RDMA Read source completion (RC)
	WTError           // advisory error completion (UD error model)
)

func (w WorkType) String() string {
	switch w {
	case WTSend:
		return "SEND"
	case WTRecv:
		return "RECV"
	case WTWrite:
		return "WRITE"
	case WTWriteRecord:
		return "WRITE_RECORD"
	case WTWriteRecordRecv:
		return "WRITE_RECORD_RECV"
	case WTRead:
		return "READ"
	case WTError:
		return "ERROR"
	default:
		return fmt.Sprintf("WORKTYPE(%d)", int(w))
	}
}

// Status is the completion status of a work request.
type Status int

// Completion statuses, following the verbs specification's work-completion
// status taxonomy.
const (
	StatusSuccess       Status = iota
	StatusLocalLength          // receive buffer too small for the message
	StatusLocalAccess          // local memory registration violation
	StatusRemoteAccess         // remote peer rejected a tagged access
	StatusRemoteInvalid        // remote STag unknown/stale
	StatusFlushed              // QP closed or errored with the WR outstanding
	StatusRNR                  // receiver not ready: no posted receive (RC fatal)
	StatusBadWR                // malformed work request
	StatusTimedOut             // UD operation abandoned: response lost (§IV.B.1 polling model)
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "SUCCESS"
	case StatusLocalLength:
		return "LOC_LEN_ERR"
	case StatusLocalAccess:
		return "LOC_ACCESS_ERR"
	case StatusRemoteAccess:
		return "REM_ACCESS_ERR"
	case StatusRemoteInvalid:
		return "REM_INV_STAG"
	case StatusFlushed:
		return "WR_FLUSH_ERR"
	case StatusRNR:
		return "RNR"
	case StatusBadWR:
		return "BAD_WR"
	case StatusTimedOut:
		return "TIMEOUT"
	default:
		return fmt.Sprintf("STATUS(%d)", int(s))
	}
}

// Verbs-layer errors.
var (
	// ErrCQEmpty reports that a completion-queue poll timed out: the
	// defined-timeout polling the paper mandates for datagram mode.
	ErrCQEmpty = errors.New("iwarp: completion queue poll timed out")
	// ErrQPClosed reports use of a closed or errored queue pair.
	ErrQPClosed = errors.New("iwarp: queue pair closed")
	// ErrRecvQueueFull reports too many outstanding receive WRs.
	ErrRecvQueueFull = errors.New("iwarp: receive queue full")
	// ErrBadWR reports a malformed work request.
	ErrBadWR = errors.New("iwarp: bad work request")
)

// CQE is a completion-queue entry. For datagram QPs, Src carries the
// sender's address ("the completion queue elements need to be altered to
// include information concerning the source address and port for incoming
// data", §IV.B item 4). For Write-Record target completions, STag/TO/MsgLen
// describe the written message and Validity lists the byte ranges of the
// region that actually arrived (§IV.B.3).
type CQE struct {
	WRID   uint64
	Type   WorkType
	Status Status
	Err    error // detail when Status != StatusSuccess, else nil

	ByteLen int            // bytes received (WTRecv) or placed (WTWriteRecordRecv)
	Src     transport.Addr // datagram source (UD completions)

	// Write-Record target fields.
	STag     memreg.STag
	TO       uint64 // base target offset of the message
	MsgLen   int    // total message length announced by the source
	Validity memreg.ValidityMap
}

// Ok reports whether the completion succeeded.
func (e *CQE) Ok() bool { return e.Status == StatusSuccess }

// RecvWR is a receive work request: a buffer awaiting one incoming message.
type RecvWR struct {
	ID  uint64
	Buf []byte
}

// Stats counts datapath events on one queue pair, mirroring the counters a
// hardware RNIC exposes.
type Stats struct {
	MsgsSent       int64
	MsgsReceived   int64
	BytesSent      int64
	BytesReceived  int64
	RecvDropped    int64 // messages with no posted receive (UD)
	PlacedSegments int64 // tagged segments placed directly
	PlaceErrors    int64 // tagged placement failures
	Reassembled    int64 // multi-segment untagged messages completed
	SweptPartials  int64 // partial messages abandoned by timeout

	// Send-datapath counters (UD QPs; zero on RC QPs, whose stream binding
	// does not batch).
	BatchesSent  int64 // SendBatch bursts handed to the LLP
	SegmentsSent int64 // wire segments emitted by the segmented send path
	PoolHits     int64 // segment buffers served from the send pool
	PoolMisses   int64 // segment buffers that had to be allocated

	// Receive-datapath counters (UD QPs; zero on RC QPs).
	BatchesRecv    int64 // RecvBatch bursts pulled from the LLP
	SegmentsRecv   int64 // CRC-valid segments handed to the placement pipeline
	Recycled       int64 // receive buffers returned to the LLP's pool
	RecvPoolHits   int64 // LLP receive buffers served from its pool
	RecvPoolMisses int64 // LLP receive buffers that had to be allocated
}

// SegmentsPerRecvBatch reports the mean burst size the receive path
// achieved, or 0 before any batched receive.
func (s Stats) SegmentsPerRecvBatch() float64 {
	if s.BatchesRecv == 0 {
		return 0
	}
	return float64(s.SegmentsRecv) / float64(s.BatchesRecv)
}

// SegmentsPerBatch reports the mean burst size the send path achieved, or 0
// before any batched send.
func (s Stats) SegmentsPerBatch() float64 {
	if s.BatchesSent == 0 {
		return 0
	}
	return float64(s.SegmentsSent) / float64(s.BatchesSent)
}

// PoolHitRate reports the fraction of segment-buffer requests served from
// the pool, in [0, 1]; 0 before any send.
func (s Stats) PoolHitRate() float64 {
	total := s.PoolHits + s.PoolMisses
	if total == 0 {
		return 0
	}
	return float64(s.PoolHits) / float64(total)
}
