package iwarp

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/nio"
	"repro/internal/simnet"
)

// TestUDConcurrentSenders drives one UD QP from many posting goroutines at
// once — the contention case the pooled, lock-free send datapath exists
// for. Under -race this doubles as the datapath's race check: the old
// implementation serialized every segment under one mutex and a shared send
// buffer; the new one must stay correct with no send lock at all. Every
// message must arrive intact (simnet is lossless here), with payload bytes
// matching its sender.
func TestUDConcurrentSenders(t *testing.T) {
	const (
		senders   = 8
		perSender = 25
		msgSize   = 96 << 10 // multi-segment: two 64K-limited datagrams
	)
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{RecvDepth: senders*perSender + 8})
	b := newUDNode(t, net, "b", UDConfig{RecvDepth: senders*perSender + 8})

	for i := 0; i < senders*perSender; i++ {
		if err := b.qp.PostRecv(uint64(i), make([]byte, msgSize)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, senders)
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := make([]byte, msgSize)
			for i := range payload {
				payload[i] = byte(s)
			}
			vec := nio.VecOf(payload)
			for i := 0; i < perSender; i++ {
				if err := a.qp.PostSend(uint64(s), b.qp.LocalAddr(), vec); err != nil {
					errs <- fmt.Errorf("sender %d: %w", s, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for got := 0; got < senders*perSender; got++ {
		e, err := b.rcq.Poll(5 * time.Second)
		if err != nil {
			t.Fatalf("after %d receives: %v", got, err)
		}
		if e.Type != WTRecv || !e.Ok() {
			t.Fatalf("completion %+v", e)
		}
		if e.ByteLen != msgSize {
			t.Fatalf("received %d bytes, want %d", e.ByteLen, msgSize)
		}
	}

	st := a.qp.Stats()
	if st.MsgsSent != senders*perSender {
		t.Fatalf("MsgsSent = %d, want %d", st.MsgsSent, senders*perSender)
	}
	if st.SegmentsSent < 2*senders*perSender {
		t.Fatalf("SegmentsSent = %d, want ≥ %d (multi-segment messages)", st.SegmentsSent, 2*senders*perSender)
	}
	if st.BatchesSent == 0 {
		t.Fatal("BatchesSent = 0: batched path not exercised")
	}
	if st.SegmentsPerBatch() < 1 {
		t.Fatalf("SegmentsPerBatch = %v", st.SegmentsPerBatch())
	}
	if st.PoolHitRate() < 0.5 {
		t.Fatalf("PoolHitRate = %v, want ≥ 0.5 in steady state", st.PoolHitRate())
	}
}

// TestUDConcurrentSendersPayloadIntegrity repeats the concurrent-post
// pattern but verifies byte content end to end: interleaved segments from
// unlocked senders must still reassemble into each sender's exact payload
// (MSN/MO self-description, not send-side locking, is what orders them).
func TestUDConcurrentSendersPayloadIntegrity(t *testing.T) {
	const (
		senders = 4
		msgs    = 10
		msgSize = 48 << 10
	)
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{RecvDepth: senders*msgs + 4})
	b := newUDNode(t, net, "b", UDConfig{RecvDepth: senders*msgs + 4})

	bufs := make([][]byte, senders*msgs)
	for i := range bufs {
		bufs[i] = make([]byte, msgSize)
		if err := b.qp.PostRecv(uint64(i), bufs[i]); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := make([]byte, msgSize)
			for i := range payload {
				payload[i] = byte(s*31 + 7)
			}
			for i := 0; i < msgs; i++ {
				if err := a.qp.PostSend(uint64(s), b.qp.LocalAddr(), nio.VecOf(payload)); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	for got := 0; got < senders*msgs; got++ {
		e, err := b.rcq.Poll(5 * time.Second)
		if err != nil {
			t.Fatalf("after %d receives: %v", got, err)
		}
		if e.Type != WTRecv || !e.Ok() {
			t.Fatalf("completion %+v", e)
		}
		buf := bufs[e.WRID]
		want := buf[0]
		for i, c := range buf {
			if c != want {
				t.Fatalf("message %d corrupt at byte %d: %d != %d — segments interleaved across messages", e.WRID, i, c, want)
			}
		}
	}
}
