package iwarp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/memreg"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func TestUDReadSmall(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	src, err := b.tbl.Register(b.pd, []byte("remote readable data, twenty-nine"), memreg.RemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := a.tbl.Register(a.pd, make([]byte, 64), memreg.LocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostRead(9, b.qp.LocalAddr(), sink.STag(), 4, src.STag(), 7, 12); err != nil {
		t.Fatal(err)
	}
	e, err := a.scq.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != WTRead || !e.Ok() || e.WRID != 9 {
		t.Fatalf("CQE %+v", e)
	}
	if e.ByteLen != 12 || e.MsgLen != 12 || e.TO != 4 {
		t.Fatalf("CQE fields %+v", e)
	}
	want := []byte("remote readable data, twenty-nine")[7 : 7+12]
	if !bytes.Equal(sink.Bytes()[4:16], want) {
		t.Fatalf("sink = %q, want %q", sink.Bytes()[4:16], want)
	}
	if !e.Validity.Contains(4, 12) {
		t.Fatalf("validity %s", e.Validity.String())
	}
	if e.Src != b.qp.LocalAddr() {
		t.Fatalf("Src = %v", e.Src)
	}
}

func TestUDReadLargeMultiSegment(t *testing.T) {
	net := simnet.New(simnet.Config{ReorderRate: 0.3, Seed: 8})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	data := make([]byte, 300<<10) // several response segments
	rand.New(rand.NewSource(6)).Read(data)
	src, err := b.tbl.Register(b.pd, data, memreg.RemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := a.tbl.Register(a.pd, make([]byte, len(data)), memreg.LocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostRead(1, b.qp.LocalAddr(), sink.STag(), 0, src.STag(), 0, len(data)); err != nil {
		t.Fatal(err)
	}
	e, err := a.scq.Poll(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != WTRead || !e.Ok() || e.ByteLen != len(data) {
		t.Fatalf("CQE %+v", e)
	}
	if !e.Validity.Complete(uint64(len(data))) {
		t.Fatalf("validity %s", e.Validity.String())
	}
	if !bytes.Equal(sink.Bytes(), data) {
		t.Fatal("read data corrupt")
	}
}

func TestUDReadInvalidSourceSTag(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	sink, err := a.tbl.Register(a.pd, make([]byte, 64), memreg.LocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostRead(1, b.qp.LocalAddr(), sink.STag(), 0, memreg.STag(0xBAD00), 0, 16); err != nil {
		t.Fatal(err)
	}
	// The responder sends Terminate; the requester surfaces it as an
	// advisory error completion on the receive CQ and the read eventually
	// times out (swept).
	e, err := a.rcq.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != WTError {
		t.Fatalf("CQE %+v", e)
	}
}

func TestUDReadSourceAccessDenied(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	// Region lacking REMOTE_READ.
	src, err := b.tbl.Register(b.pd, make([]byte, 64), memreg.LocalRead)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := a.tbl.Register(a.pd, make([]byte, 64), memreg.LocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostRead(1, b.qp.LocalAddr(), sink.STag(), 0, src.STag(), 0, 16); err != nil {
		t.Fatal(err)
	}
	e, err := a.rcq.Poll(time.Second)
	if err != nil || e.Type != WTError {
		t.Fatalf("CQE %+v err %v", e, err)
	}
	if b.qp.Stats().PlaceErrors != 1 {
		t.Fatalf("responder PlaceErrors = %d", b.qp.Stats().PlaceErrors)
	}
}

func TestUDReadBadSinkRejectedAtPost(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})
	if err := a.qp.PostRead(1, b.qp.LocalAddr(), memreg.STag(0xF00), 0, memreg.STag(1), 0, 8); !errors.Is(err, ErrBadWR) {
		t.Fatalf("err = %v", err)
	}
	if err := a.qp.PostRead(1, b.qp.LocalAddr(), memreg.STag(0xF00), 0, memreg.STag(1), 0, 0); !errors.Is(err, ErrBadWR) {
		t.Fatalf("zero-length err = %v", err)
	}
}

func TestUDReadTimesOutUnderTotalLoss(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{ReassemblyTimeout: 150 * time.Millisecond})
	b := newUDNode(t, net, "b", UDConfig{})

	src, err := b.tbl.Register(b.pd, make([]byte, 64), memreg.RemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := a.tbl.Register(a.pd, make([]byte, 64), memreg.LocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	net.SetLossRate(1.0) // the request itself is lost
	if err := a.qp.PostRead(7, b.qp.LocalAddr(), sink.STag(), 0, src.STag(), 0, 16); err != nil {
		t.Fatal(err)
	}
	e, err := a.scq.Poll(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != WTRead || e.Status != StatusTimedOut || e.WRID != 7 {
		t.Fatalf("CQE %+v", e)
	}
	// The QP stays usable: with loss off, a fresh read succeeds.
	net.SetLossRate(0)
	if err := a.qp.PostRead(8, b.qp.LocalAddr(), sink.STag(), 0, src.STag(), 0, 16); err != nil {
		t.Fatal(err)
	}
	if e, err := a.scq.Poll(2 * time.Second); err != nil || !e.Ok() || e.WRID != 8 {
		t.Fatalf("follow-up CQE %+v err %v", e, err)
	}
}

// dropNthEndpoint drops exactly the n-th outbound datagram (1-based),
// making "the Last response segment was lost" deterministic.
type dropNthEndpoint struct {
	transport.Datagram
	n     int
	count int
}

func (d *dropNthEndpoint) SendTo(p []byte, to transport.Addr) error {
	d.count++
	if d.count == d.n {
		return nil // silently dropped, like a lossy wire
	}
	return d.Datagram.SendTo(p, to)
}

func TestUDReadPartialTimeoutReportsValidity(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{ReassemblyTimeout: 150 * time.Millisecond})

	// Responder whose endpoint drops its 2nd datagram: for a two-segment
	// read response that is exactly the Last segment.
	bep, err := net.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	b := &udNode{pd: memreg.NewPD(), tbl: memreg.NewTable(), scq: NewCQ(0), rcq: NewCQ(0)}
	b.qp, err = OpenUD(&dropNthEndpoint{Datagram: bep, n: 2}, b.pd, b.tbl, b.scq, b.rcq, UDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.qp.Close() })

	const size = 100 << 10 // two response segments at the 64 KB limit
	data := make([]byte, size)
	rand.New(rand.NewSource(9)).Read(data)
	src, err := b.tbl.Register(b.pd, data, memreg.RemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := a.tbl.Register(a.pd, make([]byte, size), memreg.LocalWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostRead(3, b.qp.LocalAddr(), sink.STag(), 0, src.STag(), 0, size); err != nil {
		t.Fatal(err)
	}
	e, err := a.scq.Poll(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != WTRead || e.Status != StatusTimedOut || e.WRID != 3 {
		t.Fatalf("CQE %+v", e)
	}
	// The first segment's bytes arrived and must be reported as valid.
	if e.ByteLen == 0 || e.Validity.Covered() != uint64(e.ByteLen) {
		t.Fatalf("partial read: ByteLen %d validity %s", e.ByteLen, e.Validity.String())
	}
	firstSeg := e.Validity.Intervals()[0]
	if firstSeg.Off != 0 {
		t.Fatalf("first valid range %v should start at 0", firstSeg)
	}
	if !bytes.Equal(sink.Bytes()[:firstSeg.Len], data[:firstSeg.Len]) {
		t.Fatal("partially placed data corrupt")
	}
}
