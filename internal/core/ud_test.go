package iwarp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/crcx"
	"repro/internal/ddp"
	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/rdmap"
	"repro/internal/rudp"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// udNode bundles the per-node verbs resources a test needs.
type udNode struct {
	pd  *memreg.PD
	tbl *memreg.Table
	scq *CQ
	rcq *CQ
	qp  *UDQP
}

func newUDNode(t *testing.T, n *simnet.Network, name string, cfg UDConfig) *udNode {
	t.Helper()
	ep, err := n.OpenDatagram(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	nd := &udNode{
		pd:  memreg.NewPD(),
		tbl: memreg.NewTable(),
		scq: NewCQ(0),
		rcq: NewCQ(0),
	}
	nd.qp, err = OpenUD(ep, nd.pd, nd.tbl, nd.scq, nd.rcq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.qp.Close() })
	return nd
}

func TestUDSendRecvRoundTrip(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	buf := make([]byte, 256)
	if err := b.qp.PostRecv(7, buf); err != nil {
		t.Fatal(err)
	}
	msg := []byte("datagram send/recv")
	if err := a.qp.PostSend(1, b.qp.LocalAddr(), nio.VecOf(msg)); err != nil {
		t.Fatal(err)
	}
	// Source-side completion: fire and forget.
	se, err := a.scq.Poll(time.Second)
	if err != nil || se.Type != WTSend || !se.Ok() || se.WRID != 1 {
		t.Fatalf("send CQE %+v err %v", se, err)
	}
	// Target-side completion reports the source address.
	re, err := b.rcq.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if re.Type != WTRecv || !re.Ok() || re.WRID != 7 {
		t.Fatalf("recv CQE %+v", re)
	}
	if re.Src != a.qp.LocalAddr() {
		t.Fatalf("Src = %v, want %v", re.Src, a.qp.LocalAddr())
	}
	if !bytes.Equal(buf[:re.ByteLen], msg) {
		t.Fatalf("payload %q", buf[:re.ByteLen])
	}
}

func TestUDMultiSegmentMessage(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	msg := make([]byte, 200<<10) // 4 datagram segments
	rand.New(rand.NewSource(1)).Read(msg)
	buf := make([]byte, len(msg))
	if err := b.qp.PostRecv(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostSend(2, b.qp.LocalAddr(), nio.VecOf(msg)); err != nil {
		t.Fatal(err)
	}
	re, err := b.rcq.Poll(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if re.ByteLen != len(msg) || !bytes.Equal(buf, msg) {
		t.Fatalf("ByteLen %d", re.ByteLen)
	}
	if st := b.qp.Stats(); st.Reassembled != 1 {
		t.Fatalf("Reassembled = %d", st.Reassembled)
	}
}

func TestUDNoPostedRecvDropsMessage(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	if err := a.qp.PostSend(1, b.qp.LocalAddr(), nio.VecOf([]byte("nobody home"))); err != nil {
		t.Fatal(err)
	}
	if _, err := b.rcq.Poll(100 * time.Millisecond); !errors.Is(err, ErrCQEmpty) {
		t.Fatalf("poll err = %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for b.qp.Stats().RecvDropped == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := b.qp.Stats(); st.RecvDropped != 1 {
		t.Fatalf("RecvDropped = %d", st.RecvDropped)
	}
}

func TestUDRecvBufferTooSmall(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	if err := b.qp.PostRecv(9, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostSend(1, b.qp.LocalAddr(), nio.VecOf([]byte("way too long"))); err != nil {
		t.Fatal(err)
	}
	re, err := b.rcq.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if re.Status != StatusLocalLength || re.WRID != 9 {
		t.Fatalf("CQE %+v", re)
	}
	// QP remains usable afterwards (UD error model).
	buf := make([]byte, 64)
	if err := b.qp.PostRecv(10, buf); err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostSend(2, b.qp.LocalAddr(), nio.VecOf([]byte("ok"))); err != nil {
		t.Fatal(err)
	}
	re, err = b.rcq.Poll(time.Second)
	if err != nil || !re.Ok() {
		t.Fatalf("follow-up CQE %+v err %v", re, err)
	}
}

func TestUDWriteRecordSingleSegment(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	region, err := b.tbl.Register(b.pd, make([]byte, 4096), memreg.RemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("one-sided, no receive posted")
	if err := a.qp.PostWriteRecord(3, b.qp.LocalAddr(), region.STag(), 100, nio.VecOf(payload)); err != nil {
		t.Fatal(err)
	}
	se, err := a.scq.Poll(time.Second)
	if err != nil || se.Type != WTWriteRecord || !se.Ok() {
		t.Fatalf("source CQE %+v err %v", se, err)
	}
	re, err := b.rcq.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if re.Type != WTWriteRecordRecv || !re.Ok() {
		t.Fatalf("target CQE %+v", re)
	}
	if re.STag != region.STag() || re.TO != 100 || re.MsgLen != len(payload) || re.ByteLen != len(payload) {
		t.Fatalf("target CQE fields %+v", re)
	}
	if !re.Validity.Contains(100, uint64(len(payload))) {
		t.Fatalf("validity %v", re.Validity.String())
	}
	if !bytes.Equal(region.Bytes()[100:100+len(payload)], payload) {
		t.Fatal("data not placed")
	}
	if re.Src != a.qp.LocalAddr() {
		t.Fatalf("Src = %v", re.Src)
	}
}

func TestUDWriteRecordMultiSegmentReordered(t *testing.T) {
	net := simnet.New(simnet.Config{ReorderRate: 0.5, Seed: 13})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	region, err := b.tbl.Register(b.pd, make([]byte, 300<<10), memreg.RemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256<<10) // 4+ segments
	rand.New(rand.NewSource(5)).Read(payload)
	if err := a.qp.PostWriteRecord(1, b.qp.LocalAddr(), region.STag(), 0, nio.VecOf(payload)); err != nil {
		t.Fatal(err)
	}
	re, err := b.rcq.Poll(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if re.Type != WTWriteRecordRecv || re.TO != 0 || re.MsgLen != len(payload) {
		t.Fatalf("CQE %+v", re)
	}
	if !re.Validity.Complete(uint64(len(payload))) {
		t.Fatalf("validity incomplete: %s", re.Validity.String())
	}
	if !bytes.Equal(region.Bytes()[:len(payload)], payload) {
		t.Fatal("placed data corrupt")
	}
}

func TestUDWriteRecordPartialUnderLoss(t *testing.T) {
	// Drop exactly the second segment of a 3-segment message by toggling
	// the loss rate around it: deterministic partial delivery.
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{PerChunkCompletions: true})

	region, err := b.tbl.Register(b.pd, make([]byte, 200<<10), memreg.RemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	segSize := transport.MaxDatagramSize - 26 // TaggedHdrLen+crc
	payload := make([]byte, 3*segSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Send the three segments by hand through three QPs? Simpler: use the
	// QP but flip loss only for the middle segment via a custom pattern:
	// send three separate single-segment messages, dropping the middle.
	third := payload[:segSize]
	if err := a.qp.PostWriteRecord(1, b.qp.LocalAddr(), region.STag(), 0, nio.VecOf(third)); err != nil {
		t.Fatal(err)
	}
	net.SetLossRate(1.0)
	if err := a.qp.PostWriteRecord(2, b.qp.LocalAddr(), region.STag(), uint64(segSize), nio.VecOf(third)); err != nil {
		t.Fatal(err)
	}
	net.SetLossRate(0)
	if err := a.qp.PostWriteRecord(3, b.qp.LocalAddr(), region.STag(), uint64(2*segSize), nio.VecOf(third)); err != nil {
		t.Fatal(err)
	}
	var got []CQE
	for len(got) < 2 {
		e, err := b.rcq.Poll(2 * time.Second)
		if err != nil {
			t.Fatalf("poll after %d completions: %v", len(got), err)
		}
		got = append(got, e)
	}
	v := region.Validity()
	if v.Contains(uint64(segSize), uint64(segSize)) {
		t.Fatal("middle chunk should be missing")
	}
	if !v.Contains(0, uint64(segSize)) || !v.Contains(uint64(2*segSize), uint64(segSize)) {
		t.Fatalf("outer chunks missing: %s", v.String())
	}
	holes := v.Holes(uint64(3 * segSize))
	if len(holes) != 1 || holes[0].Off != uint64(segSize) {
		t.Fatalf("holes = %v", holes)
	}
}

func TestUDWriteRecordLostLastSegmentSwept(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{ReassemblyTimeout: 100 * time.Millisecond})

	region, err := b.tbl.Register(b.pd, make([]byte, 200<<10), memreg.RemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	// A 2-segment message; the last datagram is dropped mid-send by a
	// loss-rate flip triggered from a shim endpoint is overkill — instead
	// send the first segment only, as a "message" bigger than one segment
	// whose tail never arrives, by writing the raw segment through a bare
	// channel. Easiest faithful approach: 100% loss AFTER the first
	// segment cannot be timed reliably, so craft the orphan directly.
	payload := make([]byte, 100<<10)
	if err := a.qp.PostWriteRecord(1, b.qp.LocalAddr(), region.STag(), 0, nio.VecOf(payload)); err != nil {
		t.Fatal(err)
	}
	// Both segments arrive: CQE appears. Drain it first.
	if _, err := b.rcq.Poll(time.Second); err != nil {
		t.Fatal(err)
	}
	if n := pendingRecords(b.qp); n != 0 {
		t.Fatalf("records = %d before orphan", n)
	}
	// Now inject an orphan: a non-Last tagged segment whose Last never
	// arrives (as if the final datagram were lost). Crafted through a raw
	// DDP channel so only the first half of the "message" exists.
	injectOrphanSegment(t, net, b.qp.LocalAddr(), uint32(region.STag()))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && pendingRecords(b.qp) == 0 {
		time.Sleep(time.Millisecond)
	}
	if n := pendingRecords(b.qp); n != 1 {
		t.Fatalf("records = %d after orphan, want 1", n)
	}
	// The sweeper (period = ReassemblyTimeout/2) reclaims it; no CQE.
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && pendingRecords(b.qp) != 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if n := pendingRecords(b.qp); n != 0 {
		t.Fatalf("records = %d after sweep window", n)
	}
	if _, err := b.rcq.Poll(50 * time.Millisecond); !errors.Is(err, ErrCQEmpty) {
		t.Fatal("orphaned message must not complete")
	}
	if b.qp.Stats().SweptPartials == 0 {
		t.Fatal("sweep not counted")
	}
}

// injectOrphanSegment sends a single non-Last Write-Record segment claiming
// to be the first half of a two-segment message.
func injectOrphanSegment(t *testing.T, net *simnet.Network, to transport.Addr, stag uint32) {
	t.Helper()
	ep, err := net.OpenDatagram("injector", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ch := ddp.NewDatagramChannel(ep)
	seg := &ddp.Segment{
		Tagged:  true,
		Last:    false,
		RDMAP:   rdmap.Ctrl(rdmap.OpWriteRecord),
		STag:    memreg.STag(stag),
		TO:      0,
		MSN:     999,
		MsgLen:  64,
		Payload: make([]byte, 32),
	}
	pkt := ddp.AppendHeader(nil, seg)
	pkt = append(pkt, seg.Payload...)
	pkt = nio.PutU32(pkt, crcx.Checksum(pkt))
	if err := ep.SendTo(pkt, to); err != nil {
		t.Fatal(err)
	}
	_ = ch
}

func pendingRecords(qp *UDQP) int { return qp.records.Len() }

func TestUDWriteRecordInvalidSTagAdvisory(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	if err := a.qp.PostWriteRecord(1, b.qp.LocalAddr(), memreg.STag(0xBAD00), 0, nio.VecOf([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	e, err := b.rcq.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != WTError || e.Status != StatusRemoteInvalid {
		t.Fatalf("CQE %+v", e)
	}
	// The QP is still alive: a valid operation succeeds (paper §IV.B.2).
	region, _ := b.tbl.Register(b.pd, make([]byte, 64), memreg.RemoteWrite)
	if err := a.qp.PostWriteRecord(2, b.qp.LocalAddr(), region.STag(), 0, nio.VecOf([]byte("ok"))); err != nil {
		t.Fatal(err)
	}
	e, err = b.rcq.Poll(time.Second)
	if err != nil || e.Type != WTWriteRecordRecv {
		t.Fatalf("CQE %+v err %v", e, err)
	}
}

func TestUDWriteRecordAccessViolation(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	// Region without RemoteWrite.
	region, err := b.tbl.Register(b.pd, make([]byte, 64), memreg.LocalRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostWriteRecord(1, b.qp.LocalAddr(), region.STag(), 0, nio.VecOf([]byte("denied"))); err != nil {
		t.Fatal(err)
	}
	e, err := b.rcq.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != WTError || e.Status != StatusRemoteAccess {
		t.Fatalf("CQE %+v", e)
	}
	if b.qp.Stats().PlaceErrors != 1 {
		t.Fatalf("PlaceErrors = %d", b.qp.Stats().PlaceErrors)
	}
}

func TestUDWriteRecordBoundsViolation(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{})

	region, err := b.tbl.Register(b.pd, make([]byte, 16), memreg.RemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostWriteRecord(1, b.qp.LocalAddr(), region.STag(), 10, nio.VecOf([]byte("overrun!"))); err != nil {
		t.Fatal(err)
	}
	e, err := b.rcq.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != WTError || e.Status != StatusRemoteAccess {
		t.Fatalf("CQE %+v", e)
	}
}

func TestUDPerChunkCompletions(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	b := newUDNode(t, net, "b", UDConfig{PerChunkCompletions: true})

	region, err := b.tbl.Register(b.pd, make([]byte, 200<<10), memreg.RemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 150<<10) // 3 segments
	if err := a.qp.PostWriteRecord(1, b.qp.LocalAddr(), region.STag(), 0, nio.VecOf(payload)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e, err := b.rcq.Poll(time.Second)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if e.Type != WTWriteRecordRecv || e.Validity.Covered() != uint64(e.ByteLen) {
			t.Fatalf("chunk CQE %+v", e)
		}
	}
	if _, err := b.rcq.Poll(50 * time.Millisecond); !errors.Is(err, ErrCQEmpty) {
		t.Fatalf("extra CQE: %v", err)
	}
}

func TestUDManyPeersOneQP(t *testing.T) {
	net := simnet.New(simnet.Config{})
	srv := newUDNode(t, net, "srv", UDConfig{})
	const peers = 8
	clients := make([]*udNode, peers)
	for i := range clients {
		clients[i] = newUDNode(t, net, "cli", UDConfig{})
	}
	for i := 0; i < peers; i++ {
		if err := srv.qp.PostRecv(uint64(i), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range clients {
		if err := c.qp.PostSend(uint64(i), srv.qp.LocalAddr(), nio.VecOf([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[transport.Addr]bool)
	for i := 0; i < peers; i++ {
		e, err := srv.rcq.Poll(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		seen[e.Src] = true
	}
	if len(seen) != peers {
		t.Fatalf("distinct sources = %d, want %d", len(seen), peers)
	}
}

func TestUDOverReliableDatagram(t *testing.T) {
	// The RD service: a UDQP bound to an rudp endpoint delivers everything
	// even under heavy loss.
	net := simnet.New(simnet.Config{LossRate: 0.25, Seed: 17})
	mk := func(name string) (*udNode, *rudp.Endpoint) {
		ep, err := net.OpenDatagram(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep := rudp.New(ep)
		nd := &udNode{pd: memreg.NewPD(), tbl: memreg.NewTable(), scq: NewCQ(0), rcq: NewCQ(0)}
		nd.qp, err = OpenUD(rep, nd.pd, nd.tbl, nd.scq, nd.rcq, UDConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.qp.Close() })
		return nd, rep
	}
	a, _ := mk("a")
	b, _ := mk("b")
	const count = 40
	for i := 0; i < count; i++ {
		if err := b.qp.PostRecv(uint64(i), make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		if err := a.qp.PostSend(uint64(i), b.qp.LocalAddr(), nio.VecOf(bytes.Repeat([]byte{byte(i)}, 1000))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		e, err := b.rcq.Poll(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !e.Ok() || e.ByteLen != 1000 {
			t.Fatalf("CQE %+v", e)
		}
	}
}

func TestUDClosedQPRejectsPosts(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	a.qp.Close()
	if err := a.qp.PostSend(1, transport.Addr{}, nil); !errors.Is(err, ErrQPClosed) {
		t.Fatalf("PostSend err = %v", err)
	}
	if err := a.qp.PostRecv(1, nil); !errors.Is(err, ErrQPClosed) {
		t.Fatalf("PostRecv err = %v", err)
	}
	if err := a.qp.PostWriteRecord(1, transport.Addr{}, 0, 0, nil); !errors.Is(err, ErrQPClosed) {
		t.Fatalf("PostWriteRecord err = %v", err)
	}
}

func TestUDCloseFlushesRecvs(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{})
	if err := a.qp.PostRecv(42, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	a.qp.Close()
	e, err := a.rcq.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.WRID != 42 || e.Status != StatusFlushed {
		t.Fatalf("CQE %+v", e)
	}
}

func TestCQSemantics(t *testing.T) {
	cq := NewCQ(2)
	if _, err := cq.Poll(0); !errors.Is(err, ErrCQEmpty) {
		t.Fatal("empty non-blocking poll should fail")
	}
	cq.post(CQE{WRID: 1})
	cq.post(CQE{WRID: 2})
	cq.post(CQE{WRID: 3}) // overrun
	if cq.Overruns() != 1 {
		t.Fatalf("Overruns = %d", cq.Overruns())
	}
	if cq.Len() != 2 {
		t.Fatalf("Len = %d", cq.Len())
	}
	es := cq.PollN(10, time.Second)
	if len(es) != 2 || es[0].WRID != 1 || es[1].WRID != 2 {
		t.Fatalf("PollN = %+v", es)
	}
	start := time.Now()
	if _, err := cq.Poll(30 * time.Millisecond); !errors.Is(err, ErrCQEmpty) {
		t.Fatal("timed poll should time out")
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("poll returned early")
	}
	cq.Close()
	cq.post(CQE{WRID: 4}) // silently dropped
	if cq.Len() != 0 {
		t.Fatal("post after close enqueued")
	}
}

func TestUDRecvQueueDepthLimit(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a := newUDNode(t, net, "a", UDConfig{RecvDepth: 2})
	if err := a.qp.PostRecv(1, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostRecv(2, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.qp.PostRecv(3, make([]byte, 1)); !errors.Is(err, ErrRecvQueueFull) {
		t.Fatalf("err = %v", err)
	}
}
