package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
)

func newTestEnv(t *testing.T, cfg EnvConfig) *Env {
	t.Helper()
	e, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestPingPongAllModes(t *testing.T) {
	e := newTestEnv(t, EnvConfig{})
	for _, mode := range []Mode{UDSendRecv, UDWriteRecord, RCSendRecv, RCWrite} {
		for _, size := range []int{1, 1024, 64 << 10} {
			s, err := e.PingPong(mode, size, 10)
			if err != nil {
				t.Fatalf("%v @%d: %v", mode, size, err)
			}
			if s.N() != 10 {
				t.Fatalf("%v @%d: %d samples", mode, size, s.N())
			}
			if s.Mean() <= 0 {
				t.Fatalf("%v @%d: mean %v", mode, size, s.Mean())
			}
		}
	}
}

func TestBandwidthAllModes(t *testing.T) {
	e := newTestEnv(t, EnvConfig{})
	for _, mode := range []Mode{UDSendRecv, UDWriteRecord, RCSendRecv, RCWrite} {
		r, err := e.Bandwidth(mode, 16<<10, 64)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if r.Delivered != 64*16<<10 {
			t.Fatalf("%v: delivered %d of %d", mode, r.Delivered, 64*16<<10)
		}
		if r.MBps() <= 0 {
			t.Fatalf("%v: %v MB/s", mode, r.MBps())
		}
	}
}

func TestBandwidthUnderTotalLossIsZero(t *testing.T) {
	e := newTestEnv(t, EnvConfig{Sim: simnet.Config{LossRate: 1.0}})
	r, err := e.Bandwidth(UDSendRecv, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != 0 {
		t.Fatalf("delivered %d under 100%% loss", r.Delivered)
	}
}

func TestWriteRecordPartialGoodputUnderLoss(t *testing.T) {
	// At 1% fragment loss, 1 MB messages (16 × 64 KB segments) should
	// deliver partial bytes via Write-Record but almost nothing via
	// send/recv (whole-message semantics) — the Figure 7 vs 8 contrast.
	const size = 1 << 20
	const count = 12

	eWR := newTestEnv(t, EnvConfig{Sim: simnet.Config{LossRate: 0.01, Seed: 42}})
	wr, err := eWR.Bandwidth(UDWriteRecord, size, count)
	if err != nil {
		t.Fatal(err)
	}
	eSR := newTestEnv(t, EnvConfig{Sim: simnet.Config{LossRate: 0.01, Seed: 42}})
	sr, err := eSR.Bandwidth(UDSendRecv, size, count)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Delivered <= sr.Delivered {
		t.Fatalf("Write-Record delivered %d ≤ send/recv %d under loss", wr.Delivered, sr.Delivered)
	}
	if wr.Delivered == 0 {
		t.Fatal("Write-Record delivered nothing at 1% loss")
	}
	t.Logf("1MB @1%% loss: WR %d bytes vs SR %d bytes", wr.Delivered, sr.Delivered)
}

func TestLatencySweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("latency sweep is slow")
	}
	e := newTestEnv(t, EnvConfig{})
	sizes := []int{64, 1024}
	ud, err := e.LatencySweep(UDSendRecv, sizes, 30)
	if err != nil {
		t.Fatal(err)
	}
	rcw, err := e.LatencySweep(RCWrite, sizes, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Small-message shape: UD send/recv should not lose badly to RC Write
	// (which pays MPA framing plus the extra notification message). Exact
	// orderings at the µs scale are scheduler-noisy on one core, so only a
	// gross inversion fails.
	if ud[0] > 2*rcw[0] {
		t.Errorf("UD send/recv %0.1fµs > 2× RC Write %0.1fµs at 64 B", ud[0], rcw[0])
	}
}

func TestRunStreamingShape(t *testing.T) {
	res, err := RunStreaming(StreamingConfig{ClipSize: 2 << 20, PreBuffer: 512 << 10, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results: %d", len(res))
	}
	byLabel := map[string]time.Duration{}
	for _, r := range res {
		if r.Buffering <= 0 {
			t.Fatalf("%s: %v", r.Label, r.Buffering)
		}
		byLabel[r.Label] = r.Buffering
	}
	// Figure 9 shape: UD buffering is at least competitive with RC (HTTP).
	// The paper's 74% gap came largely from kernel-TCP costs our in-process
	// transports lack (see EXPERIMENTS.md), so only gross inversions fail.
	if byLabel["UD Send/Recv"] > 2*byLabel["RC Send/Recv (HTTP)"] {
		t.Errorf("UD %v vs RC %v: UD grossly slower", byLabel["UD Send/Recv"], byLabel["RC Send/Recv (HTTP)"])
	}
}

func TestRunSockifOverhead(t *testing.T) {
	iw, native, frac, err := RunSockifOverhead(StreamingConfig{ClipSize: 2 << 20, PreBuffer: 512 << 10, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if iw <= 0 || native <= 0 {
		t.Fatalf("times %v %v", iw, native)
	}
	// The paper reports ≈2% against a kernel-UDP baseline; our native
	// baseline is an in-process queue with almost no per-packet cost, so
	// the same absolute shim work is a larger fraction (EXPERIMENTS.md).
	// Only a grossly disproportionate overhead fails.
	if frac > 10.0 {
		t.Errorf("overhead %.0f%% is implausibly high", frac*100)
	}
	t.Logf("iWARP %v vs native %v (overhead %.1f%%)", iw, native, frac*100)
}

func TestRunSIPLatency(t *testing.T) {
	ud, rc, err := RunSIPLatency(20)
	if err != nil {
		t.Fatal(err)
	}
	if ud.Invite.N() != 20 || rc.Invite.N() != 20 {
		t.Fatalf("samples %d %d", ud.Invite.N(), rc.Invite.N())
	}
	t.Logf("SIP INVITE RT: UD %.0fµs vs RC %.0fµs", ud.Invite.Mean(), rc.Invite.Mean())
}

func TestRunSIPMemoryShape(t *testing.T) {
	res, err := RunSIPMemory([]int{50, 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.UDBytes <= 0 || r.RCBytes <= 0 {
			t.Fatalf("bytes %+v", r)
		}
		// Figure 11 shape: UD uses less memory per call population.
		if r.UDBytes >= r.RCBytes {
			t.Errorf("@%d calls: UD %d ≥ RC %d", r.Calls, r.UDBytes, r.RCBytes)
		}
		t.Logf("@%d calls: UD %d B, RC %d B, improvement %.1f%%", r.Calls, r.UDBytes, r.RCBytes, r.ImprovementPct)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "Verbs Latency",
		XHeader: "MsgSize",
		XLabels: []string{"1", "2"},
		Series: []Series{
			{Label: "UD Send/Recv", Values: []float64{1.5, 2.5}},
			{Label: "RC Send/Recv", Values: []float64{2.0}},
		},
		Unit: "µs",
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Verbs Latency", "UD Send/Recv", "1.50", "2.00", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestImprovementHelpers(t *testing.T) {
	if got := Improvement(200, 100); got != 100 {
		t.Fatalf("Improvement = %v", got)
	}
	if got := Reduction(50, 100); got != 50 {
		t.Fatalf("Reduction = %v", got)
	}
	if Improvement(1, 0) != 0 || Reduction(1, 0) != 0 {
		t.Fatal("zero base should yield 0")
	}
}

func TestModeStrings(t *testing.T) {
	if UDWriteRecord.String() != "UD RDMA Write-Record" || !UDWriteRecord.IsUD() {
		t.Fatal("mode metadata wrong")
	}
	if RCWrite.IsUD() {
		t.Fatal("RCWrite is not UD")
	}
}
