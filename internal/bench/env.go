// Package bench is the measurement harness that regenerates the paper's
// evaluation section: verbs-level latency and bandwidth microbenchmarks
// (Figures 5 and 6), bandwidth under packet loss (Figures 7 and 8), the
// media-streaming comparison (Figure 9), and the SIP latency and memory
// experiments (Figures 10 and 11). cmd/iwarpbench, cmd/mediabench and
// cmd/sipbench print the tables; bench_test.go wires the same code into
// testing.B benchmarks.
package bench

import (
	"fmt"
	"time"

	iwarp "repro/internal/core"
	"repro/internal/memreg"
	"repro/internal/mpa"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Mode selects one of the four datapaths the paper compares.
type Mode int

// The four modes of Figures 5–8.
const (
	UDSendRecv Mode = iota
	UDWriteRecord
	RCSendRecv
	RCWrite
)

func (m Mode) String() string {
	switch m {
	case UDSendRecv:
		return "UD Send/Recv"
	case UDWriteRecord:
		return "UD RDMA Write-Record"
	case RCSendRecv:
		return "RC Send/Recv"
	case RCWrite:
		return "RC RDMA Write"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// IsUD reports whether the mode runs over the datagram service.
func (m Mode) IsUD() bool { return m == UDSendRecv || m == UDWriteRecord }

// MaxMsgSize is the largest message the microbenchmarks sweep (the paper
// sweeps to 1 MB).
const MaxMsgSize = 1 << 20

// sinkSize sizes each node's tagged sink region: offset rotation for
// back-to-back tagged writes needs headroom above the largest message.
const sinkSize = 2 * MaxMsgSize

// EnvConfig parameterises a benchmark environment.
type EnvConfig struct {
	// Sim configures the simulated network (loss, MTU, seed...).
	Sim simnet.Config
	// MPA overrides RC framing (the marker/CRC ablations).
	MPA mpa.Config
	// RecvDepth bounds QP receive queues (default 512).
	RecvDepth int
}

// Env is a benchmark environment: one simulated network on which each
// measurement builds a fresh pair of endpoints. Fresh QPs per measurement
// guarantee no state (posted receives, in-flight segments, CQ entries)
// leaks from one data point into the next.
type Env struct {
	Net *simnet.Network
	cfg EnvConfig

	pairSeq int
}

// NewEnv builds the environment.
func NewEnv(cfg EnvConfig) (*Env, error) {
	if cfg.RecvDepth == 0 {
		cfg.RecvDepth = 512
	}
	return &Env{Net: simnet.New(cfg.Sim), cfg: cfg}, nil
}

// SetLossRate adjusts the per-fragment loss probability at runtime.
func (e *Env) SetLossRate(p float64) { e.Net.SetLossRate(p) }

// Close releases the environment. (Endpoint pairs are per-measurement and
// already closed; the simulated network needs no teardown.)
func (e *Env) Close() {}

// node is one endpoint of a measurement with both QP types up.
type node struct {
	pd   *memreg.PD
	tbl  *memreg.Table
	sCQ  *iwarp.CQ
	rCQ  *iwarp.CQ
	ud   *iwarp.UDQP
	rc   *iwarp.RCQP
	sink *memreg.Region // tagged sink for Write/Write-Record
}

// pair is a fresh A/B endpoint pair for one measurement.
type pair struct {
	A, B *node
}

func (p *pair) close() {
	for _, n := range []*node{p.A, p.B} {
		if n == nil {
			continue
		}
		if n.ud != nil {
			n.ud.Close()
		}
		if n.rc != nil {
			n.rc.Close()
		}
	}
}

// newPair opens UD endpoints and an RC connection between two fresh nodes.
// depth overrides the configured receive-queue depth when positive (the
// bandwidth test pre-posts every receive buffer up front).
func (e *Env) newPair(depth int) (*pair, error) {
	if depth <= 0 {
		depth = e.cfg.RecvDepth
	}
	e.pairSeq++
	hostA := fmt.Sprintf("a%d", e.pairSeq)
	hostB := fmt.Sprintf("b%d", e.pairSeq)

	mk := func(name string) (*node, error) {
		n := &node{
			pd:  memreg.NewPD(),
			tbl: memreg.NewTable(),
			sCQ: iwarp.NewCQ(4096),
			rCQ: iwarp.NewCQ(4096),
		}
		ep, err := e.Net.OpenDatagram(name, 0)
		if err != nil {
			return nil, err
		}
		n.ud, err = iwarp.OpenUD(ep, n.pd, n.tbl, n.sCQ, n.rCQ, iwarp.UDConfig{RecvDepth: depth})
		if err != nil {
			return nil, err
		}
		n.sink, err = n.tbl.Register(n.pd, make([]byte, sinkSize), memreg.RemoteWrite)
		if err != nil {
			return nil, err
		}
		return n, nil
	}
	p := &pair{}
	var err error
	if p.A, err = mk(hostA); err != nil {
		return nil, err
	}
	if p.B, err = mk(hostB); err != nil {
		p.close()
		return nil, err
	}

	l, err := e.Net.Listen(hostB, 0)
	if err != nil {
		p.close()
		return nil, err
	}
	defer l.Close()
	type res struct {
		qp  *iwarp.RCQP
		err error
	}
	ch := make(chan res, 1)
	rcCfg := iwarp.RCConfig{RecvDepth: depth, MPA: e.cfg.MPA, BlockOnRNR: true}
	go func() {
		s, err := l.Accept()
		if err != nil {
			ch <- res{nil, err}
			return
		}
		qp, _, err := iwarp.AcceptRC(s, p.B.pd, p.B.tbl, p.B.sCQ, p.B.rCQ, rcCfg, nil)
		ch <- res{qp, err}
	}()
	s, err := e.Net.Dial(hostA, l.Addr())
	if err != nil {
		p.close()
		return nil, err
	}
	p.A.rc, _, err = iwarp.ConnectRC(s, p.A.pd, p.A.tbl, p.A.sCQ, p.A.rCQ, rcCfg, nil)
	if err != nil {
		p.close()
		return nil, err
	}
	r := <-ch
	if r.err != nil {
		p.close()
		return nil, r.err
	}
	p.B.rc = r.qp
	return p, nil
}

// drain empties a CQ without blocking.
func drain(cq *iwarp.CQ) {
	for {
		if _, err := cq.Poll(0); err != nil {
			return
		}
	}
}

// pollSlice is the polling granularity of stoppable helpers.
const pollSlice = 2 * time.Millisecond

// pollType polls cq until a successful completion of the wanted type
// arrives, skipping advisory errors and failed completions, or the timeout
// elapses.
func pollType(cq *iwarp.CQ, want iwarp.WorkType, timeout time.Duration) (iwarp.CQE, error) {
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return iwarp.CQE{}, transport.ErrTimeout
		}
		e, err := cq.Poll(remaining)
		if err != nil {
			return iwarp.CQE{}, err
		}
		if e.Type == want && e.Status == iwarp.StatusSuccess {
			return e, nil
		}
	}
}

// pollTypeStop is pollType with a stop channel: it polls in pollSlice
// windows so a helper goroutine exits promptly when its measurement ends.
func pollTypeStop(cq *iwarp.CQ, want iwarp.WorkType, timeout time.Duration, stop <-chan struct{}) (iwarp.CQE, error) {
	deadline := time.Now().Add(timeout)
	for {
		select {
		case <-stop:
			return iwarp.CQE{}, transport.ErrClosed
		default:
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return iwarp.CQE{}, transport.ErrTimeout
		}
		window := pollSlice
		if window > remaining {
			window = remaining
		}
		e, err := cq.Poll(window)
		if err != nil {
			continue
		}
		if e.Type == want && e.Status == iwarp.StatusSuccess {
			return e, nil
		}
	}
}
