package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Series is one labelled line of a figure: a name and a y-value per x.
type Series struct {
	Label  string
	Values []float64
}

// Table renders figure data the way the paper's plots are read: sizes down
// the rows, one column per mode/series.
type Table struct {
	Title   string
	XHeader string
	XLabels []string
	Series  []Series
	Unit    string
}

// WriteTo prints the table in aligned text form.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, " [%s]", t.Unit)
	}
	b.WriteString("\n")
	// Header.
	fmt.Fprintf(&b, "%-12s", t.XHeader)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 12+23*len(t.Series)))
	for i, x := range t.XLabels {
		fmt.Fprintf(&b, "%-12s", x)
		for _, s := range t.Series {
			if i < len(s.Values) {
				fmt.Fprintf(&b, " %22.2f", s.Values[i])
			} else {
				fmt.Fprintf(&b, " %22s", "-")
			}
		}
		b.WriteString("\n")
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// SizeLabels maps byte sizes to the paper's axis labels.
func SizeLabels(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = stats.SizeLabel(s)
	}
	return out
}

// Improvement returns the percentage by which got improves over base for
// "higher is better" metrics (bandwidth).
func Improvement(got, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (got - base) / base
}

// Reduction returns the percentage by which got improves over base for
// "lower is better" metrics (latency, buffering time, memory).
func Reduction(got, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - got) / base
}
