package bench

import (
	"errors"
	"fmt"
	"time"

	iwarp "repro/internal/core"
	"repro/internal/nio"
	"repro/internal/stats"
	"repro/internal/transport"
)

// pingTimeout bounds each ping-pong iteration; on the zero-loss fixture it
// should never fire.
const pingTimeout = 5 * time.Second

// PingPong measures one-way latency (half the measured round trip) for the
// given mode and message size over iters round trips, reproducing the
// methodology behind Figure 5. The returned sample is in microseconds.
// Each call runs on a fresh pair of QPs.
func (e *Env) PingPong(mode Mode, size, iters int) (*stats.Sample, error) {
	p, err := e.newPair(0)
	if err != nil {
		return nil, err
	}
	defer p.close()
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	echoBuf := make([]byte, size)
	sample := &stats.Sample{}

	switch mode {
	case UDSendRecv, RCSendRecv:
		post := func(n *node, id uint64, buf []byte) error {
			if mode == UDSendRecv {
				return n.ud.PostRecv(id, buf)
			}
			return n.rc.PostRecv(id, buf)
		}
		send := func(from *node, p2 []byte) error {
			if mode == UDSendRecv {
				var to transport.Addr
				if from == p.A {
					to = p.B.ud.LocalAddr()
				} else {
					to = p.A.ud.LocalAddr()
				}
				return from.ud.PostSend(0, to, nio.VecOf(p2))
			}
			return from.rc.PostSend(0, nio.VecOf(p2))
		}
		stop := make(chan struct{})
		defer close(stop)
		errc := make(chan error, 1)
		ready := make(chan struct{})
		go func() { // echo server on B
			// Two alternating buffers: the next receive is posted BEFORE
			// the echo is sent, so the initiator's next ping always finds a
			// buffer waiting (no self-inflicted drops on the UD path).
			bufs := [2][]byte{make([]byte, size), make([]byte, size)}
			if err := post(p.B, 0, bufs[0]); err != nil {
				errc <- err
				close(ready)
				return
			}
			close(ready)
			for i := 0; ; i++ {
				ev, err := pollTypeStop(p.B.rCQ, iwarp.WTRecv, pingTimeout, stop)
				if err != nil {
					if errors.Is(err, transport.ErrClosed) {
						errc <- nil
					} else {
						errc <- err
					}
					return
				}
				cur := bufs[i%2]
				if err := post(p.B, uint64((i+1)%2), bufs[(i+1)%2]); err != nil {
					errc <- err
					return
				}
				if err := send(p.B, cur[:ev.ByteLen]); err != nil {
					errc <- err
					return
				}
				drain(p.B.sCQ)
			}
		}()
		<-ready
		for i := 0; i < iters; i++ {
			if err := post(p.A, 2, echoBuf); err != nil {
				return nil, err
			}
			start := time.Now()
			if err := send(p.A, payload); err != nil {
				return nil, err
			}
			if _, err := pollType(p.A.rCQ, iwarp.WTRecv, pingTimeout); err != nil {
				return nil, fmt.Errorf("iter %d: %w", i, err)
			}
			sample.AddDuration(time.Since(start) / 2)
			drain(p.A.sCQ)
		}
		select {
		case err := <-errc:
			if err != nil {
				return nil, err
			}
		default:
		}
		return sample, nil

	case UDWriteRecord:
		stop := make(chan struct{})
		defer close(stop)
		errc := make(chan error, 1)
		go func() { // reflector on B: write back on each target completion
			for {
				ev, err := pollTypeStop(p.B.rCQ, iwarp.WTWriteRecordRecv, pingTimeout, stop)
				if err != nil {
					if errors.Is(err, transport.ErrClosed) {
						errc <- nil
					} else {
						errc <- err
					}
					return
				}
				data := p.B.sink.Bytes()[ev.TO : ev.TO+uint64(ev.MsgLen)]
				copy(echoBuf, data)
				if err := p.B.ud.PostWriteRecord(0, p.A.ud.LocalAddr(), p.A.sink.STag(), 0, nio.VecOf(echoBuf[:ev.MsgLen])); err != nil {
					errc <- err
					return
				}
				drain(p.B.sCQ)
			}
		}()
		for i := 0; i < iters; i++ {
			start := time.Now()
			if err := p.A.ud.PostWriteRecord(0, p.B.ud.LocalAddr(), p.B.sink.STag(), 0, nio.VecOf(payload)); err != nil {
				return nil, err
			}
			if _, err := pollType(p.A.rCQ, iwarp.WTWriteRecordRecv, pingTimeout); err != nil {
				return nil, fmt.Errorf("iter %d: %w", i, err)
			}
			sample.AddDuration(time.Since(start) / 2)
			drain(p.A.sCQ)
		}
		select {
		case err := <-errc:
			if err != nil {
				return nil, err
			}
		default:
		}
		return sample, nil

	case RCWrite:
		// The standard completion pattern of Figure 3's upper half: RDMA
		// Write followed by a zero-byte Send that tells the target the data
		// is valid; the target replies the same way.
		stop := make(chan struct{})
		defer close(stop)
		errc := make(chan error, 1)
		go func() {
			note := make([]byte, 0)
			buf := make([]byte, 16)
			for {
				if err := p.B.rc.PostRecv(1, buf); err != nil {
					errc <- err
					return
				}
				if _, err := pollTypeStop(p.B.rCQ, iwarp.WTRecv, pingTimeout, stop); err != nil {
					if errors.Is(err, transport.ErrClosed) {
						errc <- nil
					} else {
						errc <- err
					}
					return
				}
				if err := p.B.rc.PostWrite(0, p.A.sink.STag(), 0, nio.VecOf(payload)); err != nil {
					errc <- err
					return
				}
				if err := p.B.rc.PostSend(0, nio.VecOf(note)); err != nil {
					errc <- err
					return
				}
				drain(p.B.sCQ)
			}
		}()
		note := make([]byte, 0)
		buf := make([]byte, 16)
		for i := 0; i < iters; i++ {
			if err := p.A.rc.PostRecv(2, buf); err != nil {
				return nil, err
			}
			start := time.Now()
			if err := p.A.rc.PostWrite(0, p.B.sink.STag(), 0, nio.VecOf(payload)); err != nil {
				return nil, err
			}
			if err := p.A.rc.PostSend(0, nio.VecOf(note)); err != nil {
				return nil, err
			}
			if _, err := pollType(p.A.rCQ, iwarp.WTRecv, pingTimeout); err != nil {
				return nil, fmt.Errorf("iter %d: %w", i, err)
			}
			sample.AddDuration(time.Since(start) / 2)
			drain(p.A.sCQ)
		}
		select {
		case err := <-errc:
			if err != nil {
				return nil, err
			}
		default:
		}
		return sample, nil
	}
	return nil, fmt.Errorf("bench: unknown mode %v", mode)
}

// BandwidthResult is one unidirectional bandwidth measurement.
type BandwidthResult struct {
	Mode      Mode
	MsgSize   int
	MsgsSent  int
	Delivered int64 // valid bytes that reached the application
	Elapsed   time.Duration
}

// MBps returns the goodput in decimal megabytes per second.
func (r BandwidthResult) MBps() float64 { return stats.Throughput(r.Delivered, r.Elapsed) }

// idleTimeout ends a bandwidth measurement when the receiver has seen no
// traffic for this long after the sender finished (loss sweeps need it:
// lost messages never arrive).
const idleTimeout = 250 * time.Millisecond

// Bandwidth measures unidirectional goodput A→B: the sender fires count
// messages of the given size back to back ("one side is sending
// back-to-back messages of the same size to the other side", §VI.A.1) and
// the receiver counts the bytes that actually reach the application.
// Under loss, goodput reflects the mode's delivery semantics: send/recv
// needs every segment of a message; Write-Record places partial messages.
// Each call runs on a fresh pair of QPs.
func (e *Env) Bandwidth(mode Mode, size, count int) (BandwidthResult, error) {
	res := BandwidthResult{Mode: mode, MsgSize: size, MsgsSent: count}
	// Pre-post one receive per message: the receiver never races the
	// sender for buffer reposts (the paper's testbed gave the receiver a
	// dedicated CPU; on one core the repost loop would otherwise starve
	// and inflict artificial drops).
	p, err := e.newPair(count + 16)
	if err != nil {
		return res, err
	}
	defer p.close()
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	senderDone := make(chan error, 1)
	start := time.Now()
	lastEvent := start

	switch mode {
	case UDSendRecv, RCSendRecv:
		// One pre-posted receive per message.
		bufs := make([][]byte, count)
		qpPost := func(id uint64, buf []byte) error {
			if mode == UDSendRecv {
				return p.B.ud.PostRecv(id, buf)
			}
			return p.B.rc.PostRecv(id, buf)
		}
		for i := range bufs {
			bufs[i] = make([]byte, size)
			if err := qpPost(uint64(i), bufs[i]); err != nil {
				return res, err
			}
		}
		go func() {
			for i := 0; i < count; i++ {
				var err error
				if mode == UDSendRecv {
					err = p.A.ud.PostSend(0, p.B.ud.LocalAddr(), nio.VecOf(payload))
				} else {
					err = p.A.rc.PostSend(0, nio.VecOf(payload))
				}
				if err != nil {
					senderDone <- err
					return
				}
				drain(p.A.sCQ)
			}
			senderDone <- nil
		}()
		received := 0
		senderFinished := false
		for received < count {
			ev, err := pollType(p.B.rCQ, iwarp.WTRecv, idleTimeout)
			if err != nil {
				if senderFinished {
					break
				}
				select {
				case serr := <-senderDone:
					if serr != nil {
						return res, serr
					}
					senderFinished = true
				default:
				}
				continue
			}
			res.Delivered += int64(ev.ByteLen)
			lastEvent = time.Now()
			received++
		}
		if !senderFinished {
			if serr := <-senderDone; serr != nil {
				return res, serr
			}
		}

	case UDWriteRecord:
		go func() {
			var cursor uint64
			for i := 0; i < count; i++ {
				if cursor+uint64(size) > sinkSize {
					cursor = 0
				}
				if err := p.A.ud.PostWriteRecord(0, p.B.ud.LocalAddr(), p.B.sink.STag(), cursor, nio.VecOf(payload)); err != nil {
					senderDone <- err
					return
				}
				cursor += uint64(size)
				drain(p.A.sCQ)
			}
			senderDone <- nil
		}()
		received := 0
		senderFinished := false
		for received < count {
			ev, err := pollType(p.B.rCQ, iwarp.WTWriteRecordRecv, idleTimeout)
			if err != nil {
				if senderFinished {
					break
				}
				select {
				case serr := <-senderDone:
					if serr != nil {
						return res, serr
					}
					senderFinished = true
				default:
				}
				continue
			}
			res.Delivered += int64(ev.ByteLen) // partial placement counts
			lastEvent = time.Now()
			received++
		}
		if !senderFinished {
			if serr := <-senderDone; serr != nil {
				return res, serr
			}
		}

	case RCWrite:
		// Back-to-back writes; a final zero-byte Send marks the end so the
		// receiver can time delivery (stream ordering places it last).
		if err := p.B.rc.PostRecv(1, make([]byte, 16)); err != nil {
			return res, err
		}
		go func() {
			var cursor uint64
			for i := 0; i < count; i++ {
				if cursor+uint64(size) > sinkSize {
					cursor = 0
				}
				if err := p.A.rc.PostWrite(0, p.B.sink.STag(), cursor, nio.VecOf(payload)); err != nil {
					senderDone <- err
					return
				}
				cursor += uint64(size)
				drain(p.A.sCQ)
			}
			if err := p.A.rc.PostSend(0, nio.VecOf([]byte{})); err != nil {
				senderDone <- err
				return
			}
			drain(p.A.sCQ)
			senderDone <- nil
		}()
		if _, err := pollType(p.B.rCQ, iwarp.WTRecv, time.Minute); err != nil {
			return res, err
		}
		res.Delivered = int64(size) * int64(count)
		lastEvent = time.Now()
		if serr := <-senderDone; serr != nil {
			return res, serr
		}
	default:
		return res, fmt.Errorf("bench: unknown mode %v", mode)
	}

	res.Elapsed = lastEvent.Sub(start)
	if res.Elapsed <= 0 {
		res.Elapsed = time.Nanosecond
	}
	return res, nil
}

// LatencySweep runs PingPong across sizes, returning median one-way
// latencies in microseconds, one per size. A short unmeasured warmup run
// precedes each point so code paths and pools are hot.
func (e *Env) LatencySweep(mode Mode, sizes []int, iters int) ([]float64, error) {
	out := make([]float64, 0, len(sizes))
	for _, sz := range sizes {
		if _, err := e.PingPong(mode, sz, max(iters/10, 4)); err != nil {
			return nil, fmt.Errorf("%v warmup @%d: %w", mode, sz, err)
		}
		s, err := e.PingPong(mode, sz, iters)
		if err != nil {
			return nil, fmt.Errorf("%v @%d: %w", mode, sz, err)
		}
		out = append(out, s.Median())
	}
	return out, nil
}

// bandwidthTrials repeats each sweep point and keeps the best goodput:
// peak bandwidth is the quantity the paper's plots show, and best-of
// filters out scheduler and GC noise on a shared machine.
const bandwidthTrials = 3

// BandwidthSweep runs Bandwidth across sizes with a byte budget per point,
// returning goodput in MB/s per size (best of bandwidthTrials runs).
func (e *Env) BandwidthSweep(mode Mode, sizes []int, budget int64) ([]float64, error) {
	out := make([]float64, 0, len(sizes))
	for _, sz := range sizes {
		count := int(budget / int64(sz))
		if count < 4 {
			count = 4
		}
		if count > 20000 {
			count = 20000
		}
		best := 0.0
		for trial := 0; trial < bandwidthTrials; trial++ {
			r, err := e.Bandwidth(mode, sz, count)
			if err != nil {
				return nil, fmt.Errorf("%v @%d: %w", mode, sz, err)
			}
			if v := r.MBps(); v > best {
				best = v
			}
		}
		out = append(out, best)
	}
	return out, nil
}
