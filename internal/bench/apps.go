package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/media"
	"repro/internal/simnet"
	"repro/internal/sip"
	"repro/internal/sockif"
	"repro/internal/stats"
)

// --- Figure 9: media streaming initial-buffering time ---

// StreamingResult is one bar of Figure 9.
type StreamingResult struct {
	Label     string
	Buffering time.Duration
	Bytes     int64
}

// StreamingConfig shapes the Figure 9 experiment.
type StreamingConfig struct {
	ClipSize  int64 // media asset size (default 8 MiB)
	PreBuffer int64 // client pre-buffer target (default 2 MiB)
	Trials    int   // runs per mode, best-of (default 3)
}

func (c StreamingConfig) withDefaults() StreamingConfig {
	if c.ClipSize == 0 {
		c.ClipSize = 8 << 20
	}
	if c.PreBuffer == 0 {
		c.PreBuffer = 2 << 20
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	return c
}

// streamSockCfg sizes socket slabs for media frames: the receive budget a
// streaming client configures (large SO_RCVBUF).
func streamSockCfg(prebuffer int64) sockif.Config {
	return sockif.Config{
		RecvBufSize:  2048,
		RecvBufCount: int(prebuffer/media.DefaultFrameSize) + 64,
		RingSize:     4 << 20,
	}
}

// RunStreaming measures initial-buffering time for the four Figure 9 modes
// in the paper's order: UD send/recv, UD RDMA Write-Record, RC send/recv
// (HTTP), RC RDMA Write (HTTP over the stream Write-Record profile).
func RunStreaming(cfg StreamingConfig) ([]StreamingResult, error) {
	cfg = cfg.withDefaults()
	var out []StreamingResult

	runUDP := func(label string, writeRecord bool) error {
		best := time.Duration(0)
		for trial := 0; trial < cfg.Trials; trial++ {
			net := simnet.New(simnet.Config{})
			ifSrv := sockif.NewSim(net, "server", streamSockCfg(cfg.PreBuffer))
			ifCli := sockif.NewSim(net, "client", streamSockCfg(cfg.PreBuffer))
			ss, err := ifSrv.BindDatagram(1234)
			if err != nil {
				return err
			}
			cs, err := ifCli.Socket(sockif.DatagramSocket)
			if err != nil {
				ss.Close()
				return err
			}
			srvErr := make(chan error, 1)
			go func() { srvErr <- media.ServeUDP(ss, media.NewClip(cfg.ClipSize), 10*time.Second) }()
			d, n, err := media.PreBufferUDP(cs, ss.LocalAddr(), cfg.PreBuffer, writeRecord, 60*time.Second)
			<-srvErr
			cs.Close()
			ss.Close()
			if err != nil {
				return fmt.Errorf("%s: %w (got %d bytes)", label, err, n)
			}
			if best == 0 || d < best {
				best = d
			}
		}
		out = append(out, StreamingResult{Label: label, Buffering: best, Bytes: cfg.PreBuffer})
		return nil
	}

	if err := runUDP("UD Send/Recv", false); err != nil {
		return nil, err
	}
	if err := runUDP("UD RDMA Write-Record", true); err != nil {
		return nil, err
	}

	runRC := func(label string, writeRecord bool) error {
		best := time.Duration(0)
		for trial := 0; trial < cfg.Trials; trial++ {
			net := simnet.New(simnet.Config{})
			sockCfg := streamSockCfg(cfg.PreBuffer)
			sockCfg.StreamWriteRecord = writeRecord
			ifSrv := sockif.NewSim(net, "server", sockCfg)
			ifCli := sockif.NewSim(net, "client", sockCfg)
			l, err := ifSrv.Listen(8080)
			if err != nil {
				return err
			}
			srvErr := make(chan error, 1)
			go func() { srvErr <- media.ServeHTTP(l, media.NewClip(cfg.ClipSize)) }()
			cs, err := ifCli.Socket(sockif.StreamSocket)
			if err != nil {
				l.Close()
				return err
			}
			if err := cs.Connect(l.Addr()); err != nil {
				cs.Close()
				l.Close()
				return err
			}
			d, n, err := media.PreBufferHTTP(cs, cfg.PreBuffer, 60*time.Second)
			// Hang up before waiting for the server: once the pre-buffer is
			// measured the client stops reading, and with a reliable stream
			// the server would otherwise stay blocked on backpressure
			// forever. The close makes its next Send fail, a normal hangup.
			cs.Close()
			<-srvErr
			l.Close()
			if err != nil {
				return fmt.Errorf("%s: %w (got %d bytes)", label, err, n)
			}
			if best == 0 || d < best {
				best = d
			}
		}
		out = append(out, StreamingResult{Label: label, Buffering: best, Bytes: cfg.PreBuffer})
		return nil
	}
	if err := runRC("RC Send/Recv (HTTP)", false); err != nil {
		return nil, err
	}
	if err := runRC("RC RDMA Write (HTTP)", true); err != nil {
		return nil, err
	}
	return out, nil
}

// RunSockifOverhead measures the §VI.B.2 in-text number: pre-buffering
// through the iWARP socket interface versus the native datagram transport.
// It returns (iWARP time, native time, overhead fraction).
func RunSockifOverhead(cfg StreamingConfig) (time.Duration, time.Duration, float64, error) {
	cfg = cfg.withDefaults()
	clip := media.NewClip(cfg.ClipSize)

	bestIWARP := time.Duration(0)
	for trial := 0; trial < cfg.Trials; trial++ {
		net := simnet.New(simnet.Config{})
		ifSrv := sockif.NewSim(net, "server", streamSockCfg(cfg.PreBuffer))
		ifCli := sockif.NewSim(net, "client", streamSockCfg(cfg.PreBuffer))
		ss, _ := ifSrv.BindDatagram(1234)
		cs, _ := ifCli.Socket(sockif.DatagramSocket)
		srvErr := make(chan error, 1)
		go func() { srvErr <- media.ServeUDP(ss, clip, 10*time.Second) }()
		d, _, err := media.PreBufferUDP(cs, ss.LocalAddr(), cfg.PreBuffer, false, 60*time.Second)
		<-srvErr
		cs.Close()
		ss.Close()
		if err != nil {
			return 0, 0, 0, err
		}
		if bestIWARP == 0 || d < bestIWARP {
			bestIWARP = d
		}
	}

	bestNative := time.Duration(0)
	for trial := 0; trial < cfg.Trials; trial++ {
		net := simnet.New(simnet.Config{})
		srvEp, err := net.OpenDatagram("server", 0)
		if err != nil {
			return 0, 0, 0, err
		}
		cliEp, err := net.OpenDatagram("client", 0)
		if err != nil {
			return 0, 0, 0, err
		}
		srvErr := make(chan error, 1)
		go func() { srvErr <- media.ServeNativeUDP(srvEp, clip, 10*time.Second) }()
		d, _, err := media.PreBufferNativeUDP(cliEp, srvEp.LocalAddr(), cfg.PreBuffer, 60*time.Second)
		<-srvErr
		cliEp.Close()
		srvEp.Close()
		if err != nil {
			return 0, 0, 0, err
		}
		if bestNative == 0 || d < bestNative {
			bestNative = d
		}
	}
	overhead := float64(bestIWARP-bestNative) / float64(bestNative)
	return bestIWARP, bestNative, overhead, nil
}

// --- Figure 10: SIP response time ---

// SIPLatencyResult holds one transport's response-time distribution.
type SIPLatencyResult struct {
	Label  string
	Invite stats.Sample // INVITE first-response times (µs)
	Calls  int
}

// RunSIPLatency measures SipStone call response times over UD and RC
// transports (Figure 10). Calls are sequential — "a server under light
// load".
func RunSIPLatency(calls int) (ud, rc SIPLatencyResult, err error) {
	if calls <= 0 {
		calls = 100
	}
	sockCfg := sockif.Config{RecvBufSize: 4096, RecvBufCount: 32}

	// UD.
	{
		net := simnet.New(simnet.Config{})
		ifSrv := sockif.NewSim(net, "server", sockCfg)
		ifCli := sockif.NewSim(net, "client", sockCfg)
		ss, e := ifSrv.BindDatagram(5060)
		if e != nil {
			return ud, rc, e
		}
		cs, e := ifCli.Socket(sockif.DatagramSocket)
		if e != nil {
			return ud, rc, e
		}
		srv := sip.NewServer(ss)
		go srv.Serve(30 * time.Second)
		cli := sip.NewClient(cs, ss.LocalAddr())
		ud = SIPLatencyResult{Label: "UD", Calls: calls}
		for i := 0; i < calls; i++ {
			rt, _, e := cli.Call(5 * time.Second)
			if e != nil {
				return ud, rc, fmt.Errorf("UD call %d: %w", i, e)
			}
			ud.Invite.AddDuration(rt)
		}
		cs.Close()
		ss.Close()
	}

	// RC: the same call flow over a stream socket connection.
	{
		net := simnet.New(simnet.Config{})
		ifSrv := sockif.NewSim(net, "server", sockCfg)
		ifCli := sockif.NewSim(net, "client", sockCfg)
		l, e := ifSrv.Listen(5060)
		if e != nil {
			return ud, rc, e
		}
		srvErr := make(chan error, 1)
		go func() { srvErr <- sip.ServeStream(l, 30*time.Second) }()
		cs, e := ifCli.Socket(sockif.StreamSocket)
		if e != nil {
			return ud, rc, e
		}
		if e := cs.Connect(l.Addr()); e != nil {
			return ud, rc, e
		}
		cli := sip.NewStreamClient(cs)
		rc = SIPLatencyResult{Label: "RC", Calls: calls}
		for i := 0; i < calls; i++ {
			rt, _, e := cli.Call(5 * time.Second)
			if e != nil {
				return ud, rc, fmt.Errorf("RC call %d: %w", i, e)
			}
			rc.Invite.AddDuration(rt)
		}
		cs.Close()
		l.Close()
		<-srvErr
	}
	return ud, rc, nil
}

// --- Figure 11: SIP server memory scalability ---

// SIPMemoryResult is one point of Figure 11.
type SIPMemoryResult struct {
	Calls          int
	UDBytes        int64 // accounted stack+app memory, UD sockets
	RCBytes        int64 // accounted stack+app memory, RC connections
	UDHeapBytes    int64 // measured process heap growth, UD
	RCHeapBytes    int64 // measured process heap growth, RC
	ImprovementPct float64
}

// sipMemSockCfg is the per-call socket shape for the scalability test:
// small slabs, like a SIP server handling tiny signalling messages.
func sipMemSockCfg() sockif.Config {
	return sockif.Config{RecvBufSize: 2048, RecvBufCount: 2}
}

// RunSIPMemory reproduces Figure 11: a SIP server holding n concurrent
// calls, each with its own socket (the SIPp configuration: "a single UDP
// port for each client"), comparing accounted memory for UD sockets
// against RC connections. Improvement is (RC-UD)/RC as the paper plots.
func RunSIPMemory(callCounts []int) ([]SIPMemoryResult, error) {
	var out []SIPMemoryResult
	for _, n := range callCounts {
		udBytes, udHeap, err := sipMemoryUD(n)
		if err != nil {
			return nil, fmt.Errorf("UD @%d: %w", n, err)
		}
		rcBytes, rcHeap, err := sipMemoryRC(n)
		if err != nil {
			return nil, fmt.Errorf("RC @%d: %w", n, err)
		}
		out = append(out, SIPMemoryResult{
			Calls:          n,
			UDBytes:        udBytes,
			RCBytes:        rcBytes,
			UDHeapBytes:    udHeap,
			RCHeapBytes:    rcHeap,
			ImprovementPct: 100 * float64(rcBytes-udBytes) / float64(rcBytes),
		})
	}
	return out, nil
}

func heapInUse() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapInuse)
}

// sipMemoryUD opens n server-side datagram sockets with one live dialog
// each and accounts their memory.
func sipMemoryUD(n int) (accounted, heap int64, err error) {
	net := simnet.New(simnet.Config{})
	ifSrv := sockif.NewSim(net, "server", sipMemSockCfg())
	before := heapInUse()
	socks := make([]*sockif.Socket, 0, n)
	defer func() {
		for _, s := range socks {
			s.Close()
		}
	}()
	srv := newDialogTable(n)
	for i := 0; i < n; i++ {
		s, e := ifSrv.Socket(sockif.DatagramSocket)
		if e != nil {
			return 0, 0, e
		}
		socks = append(socks, s)
		srv.add(i, s.LocalAddr().String())
	}
	accounted = ifSrv.Footprint() + srv.footprint()
	heap = heapInUse() - before
	return accounted, heap, nil
}

// sipMemoryRC opens n server-side accepted stream connections with one
// live dialog each.
func sipMemoryRC(n int) (accounted, heap int64, err error) {
	net := simnet.New(simnet.Config{StreamBufSize: 4 << 10})
	ifSrv := sockif.NewSim(net, "server", sipMemSockCfg())
	ifCli := sockif.NewSim(net, "client", sipMemSockCfg())
	l, err := ifSrv.Listen(5060)
	if err != nil {
		return 0, 0, err
	}
	defer l.Close()
	before := heapInUse()

	type acceptResult struct {
		s   *sockif.Socket
		err error
	}
	accepted := make(chan acceptResult, 64)
	go func() {
		for i := 0; i < n; i++ {
			s, err := l.Accept()
			accepted <- acceptResult{s, err}
			if err != nil {
				return
			}
		}
	}()
	var srvSocks, cliSocks []*sockif.Socket
	defer func() {
		for _, s := range srvSocks {
			s.Close()
		}
		for _, s := range cliSocks {
			s.Close()
		}
	}()
	srv := newDialogTable(n)
	for i := 0; i < n; i++ {
		cs, e := ifCli.Socket(sockif.StreamSocket)
		if e != nil {
			return 0, 0, e
		}
		cliSocks = append(cliSocks, cs)
		if e := cs.Connect(l.Addr()); e != nil {
			return 0, 0, e
		}
		ar := <-accepted
		if ar.err != nil {
			return 0, 0, ar.err
		}
		srvSocks = append(srvSocks, ar.s)
		srv.add(i, ar.s.Peer().String())
	}
	accounted = ifSrv.Footprint() + srv.footprint()
	heap = heapInUse() - before
	return accounted, heap, nil
}

// dialogTable models the SIP server's per-call application state for the
// memory experiment without running full signalling at 10 4 scale.
type dialogTable struct {
	calls map[int]*sip.CallState
}

func newDialogTable(n int) *dialogTable {
	return &dialogTable{calls: make(map[int]*sip.CallState, n)}
}

func (d *dialogTable) add(i int, peer string) {
	d.calls[i] = &sip.CallState{
		CallID: fmt.Sprintf("call-%d@%s", i, peer),
		From:   "<sip:uac@" + peer + ">;tag=x",
		To:     "<sip:uas@server>",
		State:  "established",
	}
}

func (d *dialogTable) footprint() int64 {
	var n int64
	for _, c := range d.calls {
		n += 160 + int64(len(c.CallID)+len(c.From)+len(c.To)+len(c.State))
	}
	return n
}
