package bench

import (
	"fmt"
	"time"

	iwarp "repro/internal/core"
	"repro/internal/memreg"
	"repro/internal/stats"
)

// ReadPingPong measures RDMA Read latency: the requester pulls size bytes
// from the responder's region repeatedly, timing each full round trip
// (request out, response placed, completion raised). With ud set it uses
// the UD RDMA Read extension; otherwise the standard RC RDMA Read.
func (e *Env) ReadPingPong(ud bool, size, iters int) (*stats.Sample, error) {
	p, err := e.newPair(0)
	if err != nil {
		return nil, err
	}
	defer p.close()

	src, err := p.B.tbl.Register(p.B.pd, make([]byte, size), memreg.RemoteRead)
	if err != nil {
		return nil, err
	}
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i * 13)
	}
	sink, err := p.A.tbl.Register(p.A.pd, make([]byte, size), memreg.LocalWrite)
	if err != nil {
		return nil, err
	}
	sample := &stats.Sample{}
	for i := 0; i < iters; i++ {
		start := time.Now()
		if ud {
			if err := p.A.ud.PostRead(uint64(i), p.B.ud.LocalAddr(), sink.STag(), 0, src.STag(), 0, size); err != nil {
				return nil, err
			}
		} else {
			if err := p.A.rc.PostRead(uint64(i), sink.STag(), 0, src.STag(), 0, size); err != nil {
				return nil, err
			}
		}
		e2, err := pollType(p.A.sCQ, iwarp.WTRead, pingTimeout)
		if err != nil {
			return nil, fmt.Errorf("read %d: %w", i, err)
		}
		if e2.WRID != uint64(i) {
			return nil, fmt.Errorf("read %d completed as WR %d", i, e2.WRID)
		}
		sample.AddDuration(time.Since(start))
	}
	return sample, nil
}
