package sip

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sockif"
	"repro/internal/transport"
)

// SIP over a reliable connection (RFC 3261 §18.1 TCP transport): messages
// are delimited by Content-Length framing on the byte stream. This is the
// RC side of the Figure 10 comparison.

// framer incrementally extracts SIP messages from a stream socket.
type framer struct {
	sock *sockif.Socket
	buf  []byte
	tmp  []byte
}

func newFramer(sock *sockif.Socket) *framer {
	return &framer{sock: sock, tmp: make([]byte, 8192)}
}

// next returns the next complete message from the stream.
func (f *framer) next(timeout time.Duration) (*Message, error) {
	deadline := time.Now().Add(timeout)
	for {
		if m, n, err := f.tryParse(); err != nil {
			return nil, err
		} else if m != nil {
			f.buf = f.buf[n:]
			if len(f.buf) == 0 {
				f.buf = nil
			}
			return m, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, transport.ErrTimeout
		}
		k, err := f.sock.Recv(f.tmp, remaining)
		if err != nil {
			return nil, err
		}
		f.buf = append(f.buf, f.tmp[:k]...)
	}
}

// tryParse attempts to cut one complete message from the front of the
// buffer, returning it and its wire length.
func (f *framer) tryParse() (*Message, int, error) {
	i := bytes.Index(f.buf, []byte("\r\n\r\n"))
	if i < 0 {
		if len(f.buf) > 64<<10 {
			return nil, 0, fmt.Errorf("%w: unterminated header block", ErrMalformed)
		}
		return nil, 0, nil
	}
	head := f.buf[:i]
	contentLen := 0
	for _, ln := range strings.Split(string(head), "\r\n") {
		name, val, ok := strings.Cut(ln, ":")
		if ok && strings.EqualFold(strings.TrimSpace(name), "Content-Length") {
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil || n < 0 {
				return nil, 0, fmt.Errorf("%w: Content-Length %q", ErrMalformed, val)
			}
			contentLen = n
		}
	}
	total := i + 4 + contentLen
	if len(f.buf) < total {
		return nil, 0, nil // body still in flight
	}
	m, err := Parse(f.buf[:total])
	if err != nil {
		return nil, 0, err
	}
	return m, total, nil
}

// ServeStream accepts RC connections on l and serves the SipStone call
// flow on each until the listener closes. Each connection gets its own
// dialog table, like a SIP server's per-connection transport association.
func ServeStream(l *sockif.StreamListener, idle time.Duration) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		go serveStreamConn(conn, idle)
	}
}

func serveStreamConn(conn *sockif.Socket, idle time.Duration) {
	defer conn.Close()
	f := newFramer(conn)
	calls := make(map[string]*CallState)
	reply := func(req *Message, status int, reason string) bool {
		resp := Response(req, status, reason)
		return conn.Send(resp.Bytes()) == nil
	}
	for {
		req, err := f.next(idle)
		if err != nil {
			return
		}
		if !req.IsRequest {
			continue
		}
		switch req.Method {
		case MethodInvite:
			calls[req.CallID] = &CallState{
				CallID: req.CallID, From: req.From, To: req.To,
				CSeq: req.CSeq, State: "ringing", Started: time.Now(),
			}
			if !reply(req, 180, "Ringing") {
				return
			}
			if c := calls[req.CallID]; c != nil {
				c.State = "established"
			}
			if !reply(req, 200, "OK") {
				return
			}
		case MethodAck:
			// end-to-end, no response
		case MethodBye:
			delete(calls, req.CallID)
			if !reply(req, 200, "OK") {
				return
			}
		case MethodOptions:
			if !reply(req, 200, "OK") {
				return
			}
		default:
			if !reply(req, 501, "Not Implemented") {
				return
			}
		}
	}
}

// StreamClient is a UAC over a connected RC stream socket.
type StreamClient struct {
	f   *framer
	seq int
}

// NewStreamClient wraps a connected stream socket as a UAC.
func NewStreamClient(sock *sockif.Socket) *StreamClient {
	return &StreamClient{f: newFramer(sock)}
}

// waitStatus reads responses until one for callID with status ≥ want.
func (c *StreamClient) waitStatus(callID string, want int, timeout time.Duration) (*Message, error) {
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, transport.ErrTimeout
		}
		m, err := c.f.next(remaining)
		if err != nil {
			return nil, err
		}
		if m.IsRequest || m.CallID != callID {
			continue
		}
		if m.Status >= want {
			return m, nil
		}
	}
}

// Call runs one SipStone basic call over the stream, returning the INVITE
// first-response time and total call duration (Figure 10's RC column).
func (c *StreamClient) Call(timeout time.Duration) (inviteRT, total time.Duration, err error) {
	c.seq++
	sock := c.f.sock
	callID := fmt.Sprintf("scall-%d-%d", c.seq, time.Now().UnixNano())
	from := fmt.Sprintf("<sip:uac@stream>;tag=%d", c.seq)
	to := "<sip:uas@stream>"
	start := time.Now()
	inv := &Message{
		IsRequest: true, Method: MethodInvite, URI: "sip:uas@stream",
		Via: "SIP/2.0/TCP client", From: from, To: to,
		CallID: callID, CSeq: 1, CSeqMet: MethodInvite,
		Body: []byte("v=0\r\no=- 0 0 IN IP4 0.0.0.0\r\ns=-\r\n"),
	}
	if err = sock.Send(inv.Bytes()); err != nil {
		return 0, 0, fmt.Errorf("INVITE: %w", err)
	}
	first, err := c.waitStatus(callID, 100, timeout)
	if err != nil {
		return 0, 0, fmt.Errorf("INVITE response: %w", err)
	}
	inviteRT = time.Since(start)
	if first.Status < 200 {
		if _, err = c.waitStatus(callID, 200, timeout); err != nil {
			return inviteRT, 0, fmt.Errorf("final response: %w", err)
		}
	}
	ack := &Message{
		IsRequest: true, Method: MethodAck, URI: inv.URI,
		Via: inv.Via, From: from, To: to,
		CallID: callID, CSeq: 1, CSeqMet: MethodAck,
	}
	if err = sock.Send(ack.Bytes()); err != nil {
		return inviteRT, 0, fmt.Errorf("ACK: %w", err)
	}
	bye := &Message{
		IsRequest: true, Method: MethodBye, URI: inv.URI,
		Via: inv.Via, From: from, To: to,
		CallID: callID, CSeq: 2, CSeqMet: MethodBye,
	}
	if err = sock.Send(bye.Bytes()); err != nil {
		return inviteRT, 0, fmt.Errorf("BYE: %w", err)
	}
	if _, err = c.waitStatus(callID, 200, timeout); err != nil {
		return inviteRT, 0, fmt.Errorf("BYE response: %w", err)
	}
	return inviteRT, time.Since(start), nil
}
