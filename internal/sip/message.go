// Package sip implements the Session Initiation Protocol workload of the
// paper's evaluation (§VI.B.2): a message codec, user-agent client/server
// transaction engines, and the SipStone-style basic call flow that the
// SIPp traffic generator drives in the original experiments.
//
// The codec is a real (if minimal) RFC 3261 text codec — request/status
// lines, the six mandatory headers, Content-Length framing — because the
// measured quantity in Figure 10 is request/response time through the
// socket interface, which includes parse/serialise work on both ends.
package sip

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Methods used by the SipStone basic call flow.
const (
	MethodInvite   = "INVITE"
	MethodAck      = "ACK"
	MethodBye      = "BYE"
	MethodOptions  = "OPTIONS"
	MethodRegister = "REGISTER"
)

// Codec errors.
var (
	ErrMalformed = errors.New("sip: malformed message")
	ErrTruncated = errors.New("sip: truncated message body")
)

// Message is one SIP request or response.
type Message struct {
	IsRequest bool

	// Request fields.
	Method string
	URI    string

	// Response fields.
	Status int
	Reason string

	// Mandatory headers (RFC 3261 §8.1.1).
	Via     string
	From    string
	To      string
	CallID  string
	CSeq    int
	CSeqMet string // method in the CSeq header
	Contact string

	// Extra headers preserved verbatim (name: value).
	Extra []string

	Body []byte
}

const version = "SIP/2.0"

// Append serialises the message in wire form onto dst.
func (m *Message) Append(dst []byte) []byte {
	if m.IsRequest {
		dst = append(dst, m.Method...)
		dst = append(dst, ' ')
		dst = append(dst, m.URI...)
		dst = append(dst, ' ')
		dst = append(dst, version...)
	} else {
		dst = append(dst, version...)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(m.Status), 10)
		dst = append(dst, ' ')
		dst = append(dst, m.Reason...)
	}
	dst = append(dst, "\r\n"...)
	appendHdr := func(name, val string) {
		if val != "" {
			dst = append(dst, name...)
			dst = append(dst, ": "...)
			dst = append(dst, val...)
			dst = append(dst, "\r\n"...)
		}
	}
	appendHdr("Via", m.Via)
	appendHdr("From", m.From)
	appendHdr("To", m.To)
	appendHdr("Call-ID", m.CallID)
	if m.CSeq > 0 {
		dst = append(dst, "CSeq: "...)
		dst = strconv.AppendInt(dst, int64(m.CSeq), 10)
		dst = append(dst, ' ')
		dst = append(dst, m.CSeqMet...)
		dst = append(dst, "\r\n"...)
	}
	appendHdr("Contact", m.Contact)
	for _, h := range m.Extra {
		dst = append(dst, h...)
		dst = append(dst, "\r\n"...)
	}
	dst = append(dst, "Content-Length: "...)
	dst = strconv.AppendInt(dst, int64(len(m.Body)), 10)
	dst = append(dst, "\r\n\r\n"...)
	dst = append(dst, m.Body...)
	return dst
}

// Bytes serialises the message into a fresh slice.
func (m *Message) Bytes() []byte { return m.Append(nil) }

// Parse decodes one SIP message from wire form.
func Parse(p []byte) (*Message, error) {
	head, rest, ok := bytes.Cut(p, []byte("\r\n\r\n"))
	if !ok {
		return nil, fmt.Errorf("%w: no header terminator", ErrMalformed)
	}
	lines := strings.Split(string(head), "\r\n")
	if len(lines) == 0 || lines[0] == "" {
		return nil, fmt.Errorf("%w: empty start line", ErrMalformed)
	}
	m := &Message{}
	start := lines[0]
	if strings.HasPrefix(start, version+" ") {
		// Status line.
		parts := strings.SplitN(start, " ", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("%w: status line %q", ErrMalformed, start)
		}
		code, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("%w: status code %q", ErrMalformed, parts[1])
		}
		m.Status = code
		if len(parts) == 3 {
			m.Reason = parts[2]
		}
	} else {
		parts := strings.SplitN(start, " ", 3)
		if len(parts) != 3 || parts[2] != version {
			return nil, fmt.Errorf("%w: request line %q", ErrMalformed, start)
		}
		m.IsRequest = true
		m.Method = parts[0]
		m.URI = parts[1]
	}
	contentLen := -1
	for _, ln := range lines[1:] {
		name, val, ok := strings.Cut(ln, ":")
		if !ok {
			return nil, fmt.Errorf("%w: header %q", ErrMalformed, ln)
		}
		val = strings.TrimSpace(val)
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "via":
			m.Via = val
		case "from":
			m.From = val
		case "to":
			m.To = val
		case "call-id":
			m.CallID = val
		case "cseq":
			num, met, _ := strings.Cut(val, " ")
			n, err := strconv.Atoi(strings.TrimSpace(num))
			if err != nil {
				return nil, fmt.Errorf("%w: CSeq %q", ErrMalformed, val)
			}
			m.CSeq = n
			m.CSeqMet = strings.TrimSpace(met)
		case "contact":
			m.Contact = val
		case "content-length":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%w: Content-Length %q", ErrMalformed, val)
			}
			contentLen = n
		default:
			m.Extra = append(m.Extra, ln)
		}
	}
	if contentLen >= 0 {
		if len(rest) < contentLen {
			return nil, fmt.Errorf("%w: body %d < Content-Length %d", ErrTruncated, len(rest), contentLen)
		}
		rest = rest[:contentLen]
	}
	if len(rest) > 0 {
		m.Body = append([]byte(nil), rest...)
	}
	return m, nil
}

// Response builds a response to a request, copying the dialog-identifying
// headers as RFC 3261 §8.2.6 requires.
func Response(req *Message, status int, reason string) *Message {
	return &Message{
		Status:  status,
		Reason:  reason,
		Via:     req.Via,
		From:    req.From,
		To:      req.To,
		CallID:  req.CallID,
		CSeq:    req.CSeq,
		CSeqMet: req.Method,
	}
}
