package sip

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sockif"
	"repro/internal/transport"
)

// CallState tracks one dialog on the server, the per-call application
// state whose growth Figure 11's memory comparison includes ("the
// application's memory usage, which would require some additional book
// keeping to keep track of the states of the calls").
type CallState struct {
	CallID   string
	From, To string
	Peer     transport.Addr
	CSeq     int
	State    string // "ringing", "established", "terminated"
	Started  time.Time
	// bookkeeping padding representative of a production SIP server's
	// per-dialog state (route sets, timers, branch IDs).
	routeSet [4]string
	branch   [2]string
}

// Server is a minimal SIP UAS implementing the SipStone basic call flow:
// INVITE → 180 Ringing → 200 OK; ACK; BYE → 200 OK. It runs over one
// socket-interface datagram socket.
type Server struct {
	sock *sockif.Socket

	mu    sync.Mutex
	calls map[string]*CallState

	stats ServerStats
}

// ServerStats counts server activity.
type ServerStats struct {
	Invites, Acks, Byes, Options int64
	Malformed                    int64
}

// NewServer wraps a datagram socket as a SIP UAS.
func NewServer(sock *sockif.Socket) *Server {
	return &Server{sock: sock, calls: make(map[string]*CallState)}
}

// Calls returns the number of live dialogs.
func (s *Server) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.calls)
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// CallFootprint estimates the application bytes held per live dialog.
func (s *Server) CallFootprint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, c := range s.calls {
		n += 160 // struct and map-slot overhead
		n += int64(len(c.CallID) + len(c.From) + len(c.To) + len(c.State))
		for _, r := range c.routeSet {
			n += int64(len(r))
		}
		for _, b := range c.branch {
			n += int64(len(b))
		}
	}
	return n
}

// Serve processes requests until the socket closes or the idle timeout
// elapses with no traffic. It is the server's main loop.
func (s *Server) Serve(idle time.Duration) error {
	buf := make([]byte, 4096)
	for {
		n, from, err := s.sock.RecvFrom(buf, idle)
		if err != nil {
			return err
		}
		s.Handle(buf[:n], from)
	}
}

// Handle processes one inbound message and sends any responses.
func (s *Server) Handle(raw []byte, from transport.Addr) {
	req, err := Parse(raw)
	if err != nil || !req.IsRequest {
		s.mu.Lock()
		s.stats.Malformed++
		s.mu.Unlock()
		return
	}
	switch req.Method {
	case MethodInvite:
		s.mu.Lock()
		s.stats.Invites++
		s.calls[req.CallID] = &CallState{
			CallID:  req.CallID,
			From:    req.From,
			To:      req.To,
			Peer:    from,
			CSeq:    req.CSeq,
			State:   "ringing",
			Started: time.Now(),
		}
		s.mu.Unlock()
		s.reply(req, from, 180, "Ringing")
		s.mu.Lock()
		if c, ok := s.calls[req.CallID]; ok {
			c.State = "established"
		}
		s.mu.Unlock()
		s.reply(req, from, 200, "OK")
	case MethodAck:
		s.mu.Lock()
		s.stats.Acks++
		s.mu.Unlock()
		// ACK is end-to-end; no response.
	case MethodBye:
		s.mu.Lock()
		s.stats.Byes++
		delete(s.calls, req.CallID)
		s.mu.Unlock()
		s.reply(req, from, 200, "OK")
	case MethodOptions:
		s.mu.Lock()
		s.stats.Options++
		s.mu.Unlock()
		s.reply(req, from, 200, "OK")
	default:
		s.reply(req, from, 501, "Not Implemented")
	}
}

func (s *Server) reply(req *Message, to transport.Addr, status int, reason string) {
	resp := Response(req, status, reason)
	_ = s.sock.SendTo(resp.Bytes(), to)
}

// Client is a SIP UAC driving SipStone basic calls against a server.
type Client struct {
	sock   *sockif.Socket
	server transport.Addr
	seq    int
	buf    []byte
}

// NewClient wraps a datagram socket as a UAC targeting server.
func NewClient(sock *sockif.Socket, server transport.Addr) *Client {
	return &Client{sock: sock, server: server, buf: make([]byte, 4096)}
}

// request sends req and waits for a response with matching Call-ID and
// status ≥ want, returning the first such response.
func (c *Client) request(req *Message, want int, timeout time.Duration) (*Message, error) {
	if err := c.sock.SendTo(req.Bytes(), c.server); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, transport.ErrTimeout
		}
		n, _, err := c.sock.RecvFrom(c.buf, remaining)
		if err != nil {
			return nil, err
		}
		resp, err := Parse(c.buf[:n])
		if err != nil || resp.IsRequest || resp.CallID != req.CallID {
			continue
		}
		if resp.Status >= want {
			return resp, nil
		}
	}
}

// Call runs one SipStone basic call: INVITE → (180) → 200, ACK, BYE → 200.
// It returns the INVITE response time (first-response latency, the
// quantity in Figure 10) and the total call duration.
func (c *Client) Call(timeout time.Duration) (inviteRT, total time.Duration, err error) {
	c.seq++
	callID := fmt.Sprintf("call-%d-%d@%s", c.seq, time.Now().UnixNano(), c.sock.LocalAddr())
	from := fmt.Sprintf("<sip:uac@%s>;tag=%d", c.sock.LocalAddr(), c.seq)
	to := fmt.Sprintf("<sip:uas@%s>", c.server)

	start := time.Now()
	inv := &Message{
		IsRequest: true,
		Method:    MethodInvite,
		URI:       "sip:uas@" + c.server.String(),
		Via:       "SIP/2.0/UDP " + c.sock.LocalAddr().String(),
		From:      from,
		To:        to,
		CallID:    callID,
		CSeq:      1,
		CSeqMet:   MethodInvite,
		Body:      []byte("v=0\r\no=- 0 0 IN IP4 0.0.0.0\r\ns=-\r\n"),
	}
	if _, err = c.requestFirst(inv, timeout); err != nil {
		return 0, 0, fmt.Errorf("INVITE: %w", err)
	}
	inviteRT = time.Since(start)
	// Wait for the 200 (may already have been consumed as the first
	// response if the 180 was lost; requestFirst handles both).
	ack := &Message{
		IsRequest: true,
		Method:    MethodAck,
		URI:       inv.URI,
		Via:       inv.Via,
		From:      from,
		To:        to,
		CallID:    callID,
		CSeq:      1,
		CSeqMet:   MethodAck,
	}
	if err = c.sock.SendTo(ack.Bytes(), c.server); err != nil {
		return inviteRT, 0, fmt.Errorf("ACK: %w", err)
	}
	bye := &Message{
		IsRequest: true,
		Method:    MethodBye,
		URI:       inv.URI,
		Via:       inv.Via,
		From:      from,
		To:        to,
		CallID:    callID,
		CSeq:      2,
		CSeqMet:   MethodBye,
	}
	if _, err = c.request(bye, 200, timeout); err != nil {
		return inviteRT, 0, fmt.Errorf("BYE: %w", err)
	}
	return inviteRT, time.Since(start), nil
}

// requestFirst sends req and returns on the FIRST response for its call
// (the 180 normally; the 200 if the 180 was lost), then drains the 200 if
// the first was provisional.
func (c *Client) requestFirst(req *Message, timeout time.Duration) (*Message, error) {
	resp, err := c.request(req, 100, timeout)
	if err != nil {
		return nil, err
	}
	if resp.Status < 200 {
		// Provisional; the final 200 follows. Absorb it (best effort —
		// over UD it may be lost, which a real UAC handles by the ACK
		// retransmission machinery we do not need for benchmarking).
		if final, err := c.request0(req.CallID, 200, timeout); err == nil {
			return final, nil
		}
	}
	return resp, nil
}

// request0 waits for an already-solicited response without resending.
func (c *Client) request0(callID string, want int, timeout time.Duration) (*Message, error) {
	deadline := time.Now().Add(timeout)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, transport.ErrTimeout
		}
		n, _, err := c.sock.RecvFrom(c.buf, remaining)
		if err != nil {
			return nil, err
		}
		resp, err := Parse(c.buf[:n])
		if err != nil || resp.IsRequest || resp.CallID != callID {
			continue
		}
		if resp.Status >= want {
			return resp, nil
		}
	}
}

// Options sends an OPTIONS ping and returns its response time: the
// lightest-weight request/response measurement.
func (c *Client) Options(timeout time.Duration) (time.Duration, error) {
	c.seq++
	req := &Message{
		IsRequest: true,
		Method:    MethodOptions,
		URI:       "sip:uas@" + c.server.String(),
		Via:       "SIP/2.0/UDP " + c.sock.LocalAddr().String(),
		From:      fmt.Sprintf("<sip:uac@%s>;tag=%d", c.sock.LocalAddr(), c.seq),
		To:        "<sip:uas@" + c.server.String() + ">",
		CallID:    fmt.Sprintf("opt-%d@%s", c.seq, c.sock.LocalAddr()),
		CSeq:      c.seq,
		CSeqMet:   MethodOptions,
	}
	start := time.Now()
	if _, err := c.request(req, 200, timeout); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
