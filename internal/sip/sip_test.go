package sip

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
	"repro/internal/sockif"
)

func TestRequestRoundTrip(t *testing.T) {
	in := &Message{
		IsRequest: true,
		Method:    MethodInvite,
		URI:       "sip:bob@example.com",
		Via:       "SIP/2.0/UDP host:5060",
		From:      "<sip:alice@a>;tag=1",
		To:        "<sip:bob@b>",
		CallID:    "abc123@a",
		CSeq:      1,
		CSeqMet:   MethodInvite,
		Contact:   "<sip:alice@host>",
		Extra:     []string{"Max-Forwards: 70"},
		Body:      []byte("v=0\r\n"),
	}
	out, err := Parse(in.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsRequest || out.Method != in.Method || out.URI != in.URI ||
		out.Via != in.Via || out.From != in.From || out.To != in.To ||
		out.CallID != in.CallID || out.CSeq != 1 || out.CSeqMet != MethodInvite ||
		out.Contact != in.Contact || !bytes.Equal(out.Body, in.Body) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if len(out.Extra) != 1 || out.Extra[0] != "Max-Forwards: 70" {
		t.Fatalf("extra headers %v", out.Extra)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	req := &Message{
		IsRequest: true, Method: MethodInvite, URI: "sip:x@y",
		Via: "v", From: "f", To: "t", CallID: "c1", CSeq: 3, CSeqMet: MethodInvite,
	}
	resp := Response(req, 180, "Ringing")
	out, err := Parse(resp.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if out.IsRequest || out.Status != 180 || out.Reason != "Ringing" ||
		out.CallID != "c1" || out.CSeq != 3 || out.CSeqMet != MethodInvite {
		t.Fatalf("response %+v", out)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not sip at all"),
		[]byte("INVITE sip:x\r\n\r\n"),   // missing version
		[]byte("SIP/2.0 abc OK\r\n\r\n"), // bad status
		[]byte("INVITE sip:x SIP/2.0\r\nBad\r\n\r\n"), // header without colon
	}
	for i, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseTruncatedBody(t *testing.T) {
	m := &Message{IsRequest: true, Method: MethodOptions, URI: "sip:x", Body: []byte("12345")}
	raw := m.Bytes()
	if _, err := Parse(raw[:len(raw)-2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseIgnoresTrailingBytes(t *testing.T) {
	m := &Message{IsRequest: true, Method: MethodOptions, URI: "sip:x", Body: []byte("ab")}
	raw := append(m.Bytes(), []byte("JUNK")...)
	out, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Body) != "ab" {
		t.Fatalf("body %q", out.Body)
	}
}

// Property: serialise ∘ parse is the identity on well-formed header values.
func TestCodecRoundTripQuick(t *testing.T) {
	clean := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r < 32 || r > 126 || r == ':' {
				return 'x'
			}
			return r
		}, s)
		return strings.TrimSpace(s)
	}
	f := func(callID, from string, cseq uint8, body []byte) bool {
		in := &Message{
			IsRequest: true,
			Method:    MethodInvite,
			URI:       "sip:uas@server",
			Via:       "SIP/2.0/UDP client",
			From:      clean(from),
			To:        "<sip:uas@server>",
			CallID:    clean(callID),
			CSeq:      int(cseq) + 1,
			CSeqMet:   MethodInvite,
			Body:      body,
		}
		out, err := Parse(in.Bytes())
		if err != nil {
			return false
		}
		return out.CallID == in.CallID && out.From == in.From &&
			out.CSeq == in.CSeq && bytes.Equal(out.Body, in.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sipPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	net := simnet.New(simnet.Config{})
	ifSrv := sockif.NewSim(net, "server", sockif.Config{})
	ifCli := sockif.NewSim(net, "client", sockif.Config{})
	ss, err := ifSrv.BindDatagram(5060)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := ifCli.Socket(sockif.DatagramSocket)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close(); cs.Close() })
	srv := NewServer(ss)
	go srv.Serve(5 * time.Second)
	return srv, NewClient(cs, ss.LocalAddr())
}

func TestBasicCallFlow(t *testing.T) {
	srv, cli := sipPair(t)
	inviteRT, total, err := cli.Call(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if inviteRT <= 0 || total < inviteRT {
		t.Fatalf("times: invite %v total %v", inviteRT, total)
	}
	st := srv.Stats()
	if st.Invites != 1 || st.Byes != 1 {
		t.Fatalf("stats %+v", st)
	}
	if srv.Calls() != 0 {
		t.Fatalf("calls leaked: %d", srv.Calls())
	}
}

func TestManySequentialCalls(t *testing.T) {
	srv, cli := sipPair(t)
	for i := 0; i < 20; i++ {
		if _, _, err := cli.Call(2 * time.Second); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := srv.Stats().Invites; got != 20 {
		t.Fatalf("invites = %d", got)
	}
}

func TestOptionsPing(t *testing.T) {
	srv, cli := sipPair(t)
	rt, err := cli.Options(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rt <= 0 {
		t.Fatalf("rt = %v", rt)
	}
	if srv.Stats().Options != 1 {
		t.Fatalf("stats %+v", srv.Stats())
	}
}

func TestConcurrentDialogState(t *testing.T) {
	net := simnet.New(simnet.Config{})
	ifSrv := sockif.NewSim(net, "server", sockif.Config{})
	ss, err := ifSrv.BindDatagram(5060)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	srv := NewServer(ss)

	// Drive INVITEs without BYEs directly through Handle: dialogs stay.
	for i := 0; i < 50; i++ {
		inv := &Message{
			IsRequest: true, Method: MethodInvite, URI: "sip:uas@s",
			Via: "v", From: "f", To: "t",
			CallID: strings.Repeat("c", 8) + string(rune('0'+i%10)) + callSuffix(i),
			CSeq:   1, CSeqMet: MethodInvite,
		}
		srv.Handle(inv.Bytes(), ss.LocalAddr())
	}
	if srv.Calls() != 50 {
		t.Fatalf("calls = %d", srv.Calls())
	}
	if fp := srv.CallFootprint(); fp < 50*160 {
		t.Fatalf("footprint = %d", fp)
	}
	if srv.Stats().Malformed != 0 {
		t.Fatalf("malformed = %d", srv.Stats().Malformed)
	}
}

func callSuffix(i int) string { return string([]byte{byte('a' + i/10%26), byte('a' + i%10)}) }

func TestServerIgnoresMalformed(t *testing.T) {
	net := simnet.New(simnet.Config{})
	ifSrv := sockif.NewSim(net, "server", sockif.Config{})
	ss, _ := ifSrv.BindDatagram(5060)
	defer ss.Close()
	srv := NewServer(ss)
	srv.Handle([]byte("complete garbage"), ss.LocalAddr())
	if srv.Stats().Malformed != 1 {
		t.Fatalf("stats %+v", srv.Stats())
	}
}
