package sockif

import (
	"bytes"
	"fmt"
	"time"

	iwarp "repro/internal/core"
	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/transport"
)

// RDMA Write data path for stream (RC) sockets — the fourth bar of the
// paper's Figure 9 ("support for both UD and RC operations has been
// included in our socket interface", §V.A). Both ends register a ring
// region and advertise it in the MPA connection-setup private data, so no
// extra round trip is spent on buffer exchange. A Send then becomes:
//
//	RDMA Write of the payload into the peer's ring
//	+ a small notify message (offset, length) on the untagged path
//
// which is the paper's Figure 3 upper half verbatim: the Write places the
// data, the following send tells the application it is valid. Ring space
// is governed by the same cumulative credit scheme as the datagram
// Write-Record path; credits ride the reliable channel, so no timeout
// fallback is needed.
//
// With the Write-Record profile enabled, every untagged message on the
// connection carries a one-byte type prefix (data / notify / credit), as
// negotiated by both ends through the private-data handshake.

// wrPrivMagic tags MPA private data advertising a Write-Record ring.
var wrPrivMagic = []byte("WRC1")

// encodeRingAdvert builds the MPA private data for a ring advertisement.
func encodeRingAdvert(r *memreg.Region) []byte {
	out := make([]byte, 0, len(wrPrivMagic)+8)
	out = append(out, wrPrivMagic...)
	out = nio.PutU32(out, uint32(r.STag()))
	out = nio.PutU32(out, uint32(r.Len()))
	return out
}

// parseRingAdvert extracts a peer ring advertisement, if present.
func parseRingAdvert(p []byte) (ringInfo, bool) {
	if len(p) < len(wrPrivMagic)+8 || !bytes.HasPrefix(p, wrPrivMagic) {
		return ringInfo{}, false
	}
	return ringInfo{
		stag: memreg.STag(nio.U32(p[len(wrPrivMagic):])),
		size: int(nio.U32(p[len(wrPrivMagic)+4:])),
		ok:   true,
	}, true
}

// notifyLen is the payload of a Write notify: type byte + TO(8) + len(4).
const notifyLen = 1 + 8 + 4

// sendStreamWR moves p to the peer through the RDMA Write data path,
// chunking to a quarter ring so large sends pipeline through the credit
// window (stream semantics permit splitting).
func (s *Socket) sendStreamWR(p []byte) error {
	s.mu.Lock()
	maxChunk := s.remoteRing.size / 4
	rcqp := s.rcqp
	s.mu.Unlock()
	if maxChunk == 0 {
		return fmt.Errorf("%w: peer ring too small", ErrBadSocket)
	}
	for len(p) > 0 {
		n := min(maxChunk, len(p))
		if err := s.waitRingCreditRC(n); err != nil {
			return err
		}
		s.mu.Lock()
		if s.ringCursor+n > s.remoteRing.size {
			s.ringSent += uint64(s.remoteRing.size - s.ringCursor)
			s.ringCursor = 0
		}
		cursor := s.ringCursor
		s.ringCursor += n
		s.ringSent += uint64(n)
		stag := s.remoteRing.stag
		s.mu.Unlock()

		if err := rcqp.PostWrite(0, stag, uint64(cursor), nio.VecOf(p[:n])); err != nil {
			return err
		}
		notify := make([]byte, 1, notifyLen)
		notify[0] = frameWRNotify
		notify = nio.PutU64(notify, uint64(cursor))
		notify = nio.PutU32(notify, uint32(n))
		if err := rcqp.PostSend(0, nio.VecOf(notify)); err != nil {
			return err
		}
		s.drainSendCQ()
		p = p[n:]
	}
	return nil
}

// waitRingCreditRC blocks until the peer ring has room for n bytes,
// pumping the receive path so credit messages are processed. Credits ride
// the reliable channel: no timeout fallback, a stalled peer stalls us like
// a zero TCP window would.
func (s *Socket) waitRingCreditRC(n int) error {
	for {
		s.mu.Lock()
		outstanding := s.ringSent - s.ringAcked
		size := uint64(s.remoteRing.size)
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return ErrBadSocket
		}
		if outstanding+uint64(n) <= size/2 {
			return nil
		}
		if err := s.pump(2 * time.Millisecond); err != nil {
			if err == iwarp.ErrCQEmpty {
				continue
			}
			if err == transport.ErrClosed {
				return ErrBadSocket
			}
			return err
		}
	}
}

// handleStreamWRFrame processes one typed untagged message on a
// Write-Record-profile stream socket (called from pump with the slab
// buffer already bounds-checked).
func (s *Socket) handleStreamWRFrame(idx int, e iwarp.CQE) {
	buf := s.slab[idx][:e.ByteLen]
	if len(buf) == 0 {
		s.repost(idx)
		return
	}
	switch buf[0] {
	case frameData:
		data := make([]byte, len(buf)-1)
		copy(data, buf[1:])
		s.mu.Lock()
		s.rxq = append(s.rxq, dgramMsg{data: data, from: e.Src, slabIdx: -1})
		s.mu.Unlock()
		s.stats.msgsRecv.Inc()
		s.stats.bytesRecv.Add(int64(len(data)))
		s.repost(idx)
	case frameWRNotify:
		if len(buf) < notifyLen {
			s.repost(idx)
			return
		}
		to := nio.U64(buf[1:])
		n := int(nio.U32(buf[9:]))
		s.repost(idx)
		s.consumeRingWrite(to, n, e.Src)
	case frameRingCredit:
		if len(buf) >= 9 {
			acked := nio.U64(buf[1:])
			s.mu.Lock()
			if acked > s.ringAcked {
				s.ringAcked = acked
			}
			s.mu.Unlock()
		}
		s.repost(idx)
	default:
		s.repost(idx)
	}
}

// consumeRingWrite copies a notified write out of the local ring into the
// receive queue and advances the credit counters (mirroring the sender's
// wrap-skip accounting).
func (s *Socket) consumeRingWrite(to uint64, n int, from transport.Addr) {
	s.mu.Lock()
	ring := s.ring
	s.mu.Unlock()
	if ring == nil || to+uint64(n) > uint64(ring.Len()) {
		return
	}
	data := make([]byte, n)
	copy(data, ring.Bytes()[to:to+uint64(n)])
	s.stats.msgsRecv.Inc()
	s.stats.bytesRecv.Add(int64(n))
	s.mu.Lock()
	s.rxq = append(s.rxq, dgramMsg{data: data, from: from, slabIdx: -1})
	if int(to) != s.ringExpect && to == 0 {
		s.ringRecvd += uint64(ring.Len() - s.ringExpect)
	}
	s.ringRecvd += uint64(n)
	s.ringExpect = int(to) + n
	var credit uint64
	sendCredit := s.ringRecvd-s.ringCredit >= uint64(ring.Len()/4)
	if sendCredit {
		s.ringCredit = s.ringRecvd
		credit = s.ringRecvd
	}
	rcqp := s.rcqp
	s.mu.Unlock()
	if sendCredit && rcqp != nil {
		frame := make([]byte, 1, 9)
		frame[0] = frameRingCredit
		frame = nio.PutU64(frame, credit)
		//diwarp:ignore errflow: credit frames carry cumulative counters: the next one repairs a lost send
		_ = rcqp.PostSend(^uint64(0), nio.VecOf(frame))
		s.drainSendCQ()
	}
}
