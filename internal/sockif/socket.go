package sockif

import (
	"errors"
	"fmt"
	"sync"
	"time"

	iwarp "repro/internal/core"
	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Datagram-socket control frames ride the untagged path with a one-byte
// type prefix (the shim's private framing, invisible to applications):
// frameData carries application payload; frameRingReq asks the peer to
// advertise its Write-Record ring; frameRingAdv answers with (STag, size).
const (
	frameData       = 0
	frameRingReq    = 1
	frameRingAdv    = 2
	frameRingCredit = 3
	frameWRNotify   = 4 // stream WR profile: (TO, len) of a completed RDMA Write
)

// streamWRInlineMax is the cutoff below which a stream WR-profile send uses
// a plain (buffered-copy) message instead of the ring — the paper's §VI.B.1
// suggestion of "zero copy for large message sizes and buffered copy for
// smaller messages".
const streamWRInlineMax = 256

// Socket is one application socket backed by exactly one queue pair.
type Socket struct {
	ifc *Interface
	fd  int
	typ Type

	mu     sync.Mutex
	closed bool
	peer   transport.Addr // connected peer (default destination)

	// Datagram (UD) state.
	udqp   *iwarp.UDQP
	sendCQ *iwarp.CQ
	recvCQ *iwarp.CQ
	slab   [][]byte
	rxq    []dgramMsg // messages decoded ahead of the application

	ring       *memreg.Region // local Write-Record ring (lazily registered)
	remoteRing ringInfo       // peer's advertised ring
	ringCursor int            // sender cursor into the remote ring
	wrMode     bool           // data path uses Write-Record

	// Write-Record ring flow control (the credit scheme an SDP-style
	// buffered-copy ring uses): the sender never lets unconsumed bytes
	// exceed the ring size; the receiver acks consumption with cumulative
	// credit frames. Skipped ring tails (wrap waste) are accounted on both
	// sides so the cumulative counters agree.
	ringSent   uint64 // sender: cumulative bytes written incl. skipped tails
	ringAcked  uint64 // sender: cumulative bytes the peer has consumed
	ringRecvd  uint64 // receiver: cumulative bytes consumed incl. tails
	ringExpect int    // receiver: next expected ring offset (wrap detection)
	ringCredit uint64 // receiver: ringRecvd value last advertised

	// Stream (RC) state.
	rcqp    *iwarp.RCQP
	pending []byte // partial inbound message remainder (stream semantics)

	// Socket counters are telemetry-registry handles (DESIGN.md §4.6):
	// Stats() reads this socket's handles exactly, and the process scrape
	// sums every socket under the diwarp_sock_* names. Handles are atomic,
	// so they are bumped without s.mu.
	stats struct {
		msgsSent, msgsRecv, bytesSent, bytesRecv *telemetry.Counter
		truncated, droppedIncomplete             *telemetry.Counter
	}
}

// SocketStats counts socket-level events.
type SocketStats struct {
	MsgsSent, MsgsReceived   int64
	BytesSent, BytesReceived int64
	Truncated                int64 // messages dropped: larger than slab buffers
	DroppedIncomplete        int64 // Write-Record messages dropped with holes
}

// newSocket builds a bare socket with its counters registered.
func newSocket(ifc *Interface, t Type) *Socket {
	s := &Socket{ifc: ifc, typ: t}
	s.stats.msgsSent = telemetry.Default.Counter("diwarp_sock_msgs_sent_total")
	s.stats.msgsRecv = telemetry.Default.Counter("diwarp_sock_msgs_recv_total")
	s.stats.bytesSent = telemetry.Default.Counter("diwarp_sock_bytes_sent_total")
	s.stats.bytesRecv = telemetry.Default.Counter("diwarp_sock_bytes_recv_total")
	s.stats.truncated = telemetry.Default.Counter("diwarp_sock_truncated_total")
	s.stats.droppedIncomplete = telemetry.Default.Counter("diwarp_sock_dropped_incomplete_total")
	return s
}

type dgramMsg struct {
	data    []byte
	from    transport.Addr
	slabIdx int // slab buffer to re-post after delivery, -1 if none
}

type ringInfo struct {
	stag memreg.STag
	size int
	ok   bool
}

// FD returns the socket's file-descriptor number in the shim's table.
func (s *Socket) FD() int { return s.fd }

// Type returns the socket type.
func (s *Socket) Type() Type { return s.typ }

// Stats returns a snapshot of socket counters.
func (s *Socket) Stats() SocketStats {
	return SocketStats{
		MsgsSent:          s.stats.msgsSent.Load(),
		MsgsReceived:      s.stats.msgsRecv.Load(),
		BytesSent:         s.stats.bytesSent.Load(),
		BytesReceived:     s.stats.bytesRecv.Load(),
		Truncated:         s.stats.truncated.Load(),
		DroppedIncomplete: s.stats.droppedIncomplete.Load(),
	}
}

// initUD builds the datagram QP and pre-posts the receive slab.
func (s *Socket) initUD(ep transport.Datagram) error {
	cfg := s.ifc.cfg
	s.sendCQ = iwarp.NewCQ(cfg.RecvBufCount * 4)
	s.recvCQ = iwarp.NewCQ(cfg.RecvBufCount * 4)
	qp, err := iwarp.OpenUD(ep, s.ifc.pd, s.ifc.tbl, s.sendCQ, s.recvCQ, iwarp.UDConfig{
		RecvDepth: cfg.RecvBufCount + 1,
		// Over a reliable LLP, stall instead of dropping when the slab is
		// momentarily exhausted (RNR semantics); backpressure flows to the
		// sender through the transport window.
		BlockOnRNR: cfg.Reliable,
	})
	if err != nil {
		return err
	}
	s.udqp = qp
	s.slab = make([][]byte, cfg.RecvBufCount)
	for i := range s.slab {
		s.slab[i] = make([]byte, cfg.RecvBufSize)
		if err := qp.PostRecv(uint64(i), s.slab[i]); err != nil {
			qp.Close() //diwarp:ignore errflow: error-path cleanup of a QP never exposed; PostRecv's error is the one to report
			return err
		}
	}
	return nil
}

// initRCAccept builds the RC QP on an accepted stream.
func (s *Socket) initRCAccept(stream transport.Stream) error {
	return s.initRC(stream, false)
}

func (s *Socket) initRC(stream transport.Stream, initiator bool) error {
	cfg := s.ifc.cfg
	sendCQ := iwarp.NewCQ(cfg.RecvBufCount * 4)
	recvCQ := iwarp.NewCQ(cfg.RecvBufCount * 4)
	// With the stream Write-Record profile, both ends advertise their ring
	// in the MPA private data — the buffer exchange costs no extra round
	// trip (§V.A: a full protocol would "enable more efficient use of RDMA
	// Write-Record"; this is that optimisation).
	var private []byte
	if cfg.StreamWriteRecord {
		ring, err := s.ensureRing()
		if err != nil {
			return err
		}
		private = encodeRingAdvert(ring)
	}
	var qp *iwarp.RCQP
	var peerPriv []byte
	var err error
	// Socket-style RC: no posted receive means "stop reading the stream"
	// (TCP window backpressure), not a fatal RNR.
	rcCfg := iwarp.RCConfig{RecvDepth: cfg.RecvBufCount + 1, BlockOnRNR: true}
	if initiator {
		qp, peerPriv, err = iwarp.ConnectRC(stream, s.ifc.pd, s.ifc.tbl, sendCQ, recvCQ, rcCfg, private)
	} else {
		qp, peerPriv, err = iwarp.AcceptRC(stream, s.ifc.pd, s.ifc.tbl, sendCQ, recvCQ, rcCfg, private)
	}
	if err != nil {
		return err
	}
	var remote ringInfo
	if cfg.StreamWriteRecord {
		ri, ok := parseRingAdvert(peerPriv)
		if !ok {
			qp.Close() //diwarp:ignore errflow: error-path cleanup of a QP never exposed; the handshake failure is the error to report
			return fmt.Errorf("%w: peer did not advertise a Write-Record ring", ErrBadSocket)
		}
		remote = ri
	}
	slab := make([][]byte, cfg.RecvBufCount)
	for i := range slab {
		slab[i] = make([]byte, cfg.RecvBufSize)
		if err := qp.PostRecv(uint64(i), slab[i]); err != nil {
			qp.Close() //diwarp:ignore errflow: error-path cleanup of a QP never exposed; PostRecv's error is the one to report
			return err
		}
	}
	// Publish the connection state under s.mu. A Connect-time initRC runs on
	// a socket that is already in the interface's fd table (Socket returned
	// it before the dial), so monitoring reads — Peer, Footprint, a scrape
	// walking Interface.Footprint — and data-path polls race this point.
	s.mu.Lock()
	s.sendCQ, s.recvCQ = sendCQ, recvCQ
	if cfg.StreamWriteRecord {
		s.remoteRing = remote
		s.wrMode = true
	}
	s.rcqp = qp
	s.peer = stream.RemoteAddr()
	s.slab = slab
	s.mu.Unlock()
	return nil
}

// LocalAddr returns the socket's bound address (datagram sockets only; a
// stream socket returns its peer-facing local address when connected).
func (s *Socket) LocalAddr() transport.Addr {
	if s.udqp != nil {
		return s.udqp.LocalAddr()
	}
	return transport.Addr{}
}

// Connect sets the default peer. For a stream socket this dials and
// establishes the RC connection; for a datagram socket it only pins the
// destination, like connect(2) on UDP.
func (s *Socket) Connect(to transport.Addr) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrBadSocket
	}
	switch s.typ {
	case DatagramSocket:
		s.peer = to
		s.mu.Unlock()
		return nil
	case StreamSocket:
		if s.rcqp != nil {
			s.mu.Unlock()
			return fmt.Errorf("%w: already connected", ErrBadSocket)
		}
		if s.ifc.cfg.Dial == nil {
			s.mu.Unlock()
			return fmt.Errorf("%w: no dialer configured", ErrBadSocket)
		}
		// Dial and handshake outside the lock: both block on the network,
		// and initRC needs the lock for ring registration.
		s.mu.Unlock()
		stream, err := s.ifc.cfg.Dial(to)
		if err != nil {
			return err
		}
		if err := s.initRC(stream, true); err != nil {
			stream.Close() //diwarp:ignore errflow: error-path cleanup of a stream never exposed; initRC's error is the one to report
			return err
		}
		return nil
	}
	s.mu.Unlock()
	return ErrBadSocket
}

// EnableWriteRecord switches the connected datagram socket's data path to
// RDMA Write-Record: it asks the peer to advertise its ring region and
// waits for the advertisement. Subsequent SendTo/Send calls write directly
// into the peer's ring instead of using send/recv.
func (s *Socket) EnableWriteRecord(timeout time.Duration) error {
	s.mu.Lock()
	if s.typ != DatagramSocket || s.peer.IsZero() {
		s.mu.Unlock()
		return fmt.Errorf("%w: EnableWriteRecord needs a connected datagram socket", ErrBadSocket)
	}
	peer := s.peer
	s.mu.Unlock()
	if err := s.udqp.PostSend(^uint64(0), peer, nio.VecOf([]byte{frameRingReq})); err != nil {
		return err
	}
	s.drainSendCQ()
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		if s.remoteRing.ok {
			s.wrMode = true
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return transport.ErrTimeout
		}
		// Pump the receive path; data frames arriving meanwhile are queued.
		if err := s.pump(remaining); err != nil && !errors.Is(err, iwarp.ErrCQEmpty) {
			return err
		}
	}
}

// ensureRing lazily registers the local Write-Record ring sink.
func (s *Socket) ensureRing() (*memreg.Region, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring != nil {
		return s.ring, nil
	}
	r, err := s.ifc.tbl.Register(s.ifc.pd, make([]byte, s.ifc.cfg.RingSize), memreg.RemoteWrite)
	if err != nil {
		return nil, err
	}
	s.ring = r
	return r, nil
}

// SendTo transmits one datagram to the given destination.
func (s *Socket) SendTo(p []byte, to transport.Addr) error {
	if s.typ != DatagramSocket {
		return ErrBadSocket
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrBadSocket
	}
	wr := s.wrMode && s.remoteRing.ok && to == s.peer
	var stag memreg.STag
	var cursor int
	if wr {
		if len(p) > s.remoteRing.size/2 {
			s.mu.Unlock()
			return fmt.Errorf("%w: message %d exceeds half the peer ring %d", ErrBadSocket, len(p), s.remoteRing.size)
		}
		s.mu.Unlock()
		if err := s.waitRingCredit(len(p)); err != nil {
			return err
		}
		s.mu.Lock()
		if s.ringCursor+len(p) > s.remoteRing.size {
			// Skip the tail; the receiver detects the wrap and accounts the
			// same skipped bytes, keeping the credit counters in step.
			s.ringSent += uint64(s.remoteRing.size - s.ringCursor)
			s.ringCursor = 0
		}
		stag, cursor = s.remoteRing.stag, s.ringCursor
		s.ringCursor += len(p)
		s.ringSent += uint64(len(p))
	}
	s.stats.msgsSent.Inc()
	s.stats.bytesSent.Add(int64(len(p)))
	s.mu.Unlock()

	var err error
	if wr {
		err = s.udqp.PostWriteRecord(0, to, stag, uint64(cursor), nio.VecOf(p))
	} else {
		err = s.udqp.PostSend(0, to, nio.VecOf([]byte{frameData}, p))
	}
	s.drainSendCQ()
	return err
}

// ringCreditTimeout bounds how long a Write-Record send waits for ring
// credits. Credits ride an unreliable transport; when they stop arriving
// (loss, or a peer that stopped reading) the sender eventually proceeds —
// possible data loss, which is within UD socket semantics.
const ringCreditTimeout = 250 * time.Millisecond

// waitRingCredit blocks until the peer's ring has room for n more bytes,
// pumping this socket's receive path so credit frames are processed.
func (s *Socket) waitRingCredit(n int) error {
	deadline := time.Now().Add(ringCreditTimeout)
	for {
		s.mu.Lock()
		outstanding := s.ringSent - s.ringAcked
		size := uint64(s.remoteRing.size)
		s.mu.Unlock()
		// The wrap-skip above can add up to half a ring of tail waste, so
		// leave that headroom: block only when a full ring could be unread.
		if outstanding+uint64(n) <= size {
			return nil
		}
		if time.Now().After(deadline) {
			// Assume the unacked bytes are lost or consumed (credits ride
			// an unreliable path) and move on.
			s.mu.Lock()
			s.ringAcked = s.ringSent
			s.mu.Unlock()
			return nil
		}
		if err := s.pump(2 * time.Millisecond); err != nil && !errors.Is(err, iwarp.ErrCQEmpty) {
			return err
		}
	}
}

// Send transmits to the connected peer (datagram or stream).
func (s *Socket) Send(p []byte) error {
	switch s.typ {
	case DatagramSocket:
		s.mu.Lock()
		peer := s.peer
		s.mu.Unlock()
		if peer.IsZero() {
			return ErrNotConnected
		}
		return s.SendTo(p, peer)
	case StreamSocket:
		// Snapshot the connection state under s.mu: a concurrent Connect
		// publishes rcqp and wrMode under the same lock, and every later
		// plain read on this path is ordered behind this acquisition.
		s.mu.Lock()
		rcqp, wr := s.rcqp, s.wrMode
		s.mu.Unlock()
		if rcqp == nil {
			return ErrNotConnected
		}
		s.stats.msgsSent.Inc()
		s.stats.bytesSent.Add(int64(len(p)))
		if wr {
			if len(p) > streamWRInlineMax {
				return s.sendStreamWR(p)
			}
			err := rcqp.PostSend(0, nio.VecOf([]byte{frameData}, p))
			s.drainSendCQ()
			return err
		}
		err := rcqp.PostSend(0, nio.VecOf(p))
		s.drainSendCQ()
		return err
	}
	return ErrBadSocket
}

// drainSendCQ retires source-side completions (sends complete when handed
// to the LLP, so entries are available immediately after each post).
func (s *Socket) drainSendCQ() {
	for {
		if _, err := s.sendCQ.Poll(0); err != nil {
			return
		}
	}
}

// pump converts the next completion into a queued message. It returns
// iwarp.ErrCQEmpty on timeout.
func (s *Socket) pump(timeout time.Duration) error {
	e, err := s.recvCQ.Poll(timeout)
	if err != nil {
		return err
	}
	switch e.Type {
	case iwarp.WTRecv:
		idx := int(e.WRID)
		if e.Status == iwarp.StatusFlushed {
			return transport.ErrClosed
		}
		if e.Status == iwarp.StatusLocalLength {
			s.stats.truncated.Inc()
			s.repost(idx)
			return nil
		}
		if e.Status != iwarp.StatusSuccess {
			s.repost(idx)
			return nil
		}
		s.handleInbound(idx, e)
		return nil
	case iwarp.WTWriteRecordRecv:
		s.handleRingWrite(e)
		return nil
	case iwarp.WTError:
		// Advisory error (UD model): count and continue.
		return nil
	default:
		return nil
	}
}

// handleInbound processes one untagged message from slab buffer idx.
func (s *Socket) handleInbound(idx int, e iwarp.CQE) {
	buf := s.slab[idx][:e.ByteLen]
	if s.typ == StreamSocket {
		s.mu.Lock()
		wr := s.wrMode
		s.mu.Unlock()
		if wr {
			s.handleStreamWRFrame(idx, e)
			return
		}
		// Plain stream data has no frame byte.
		data := make([]byte, len(buf))
		copy(data, buf)
		s.mu.Lock()
		s.rxq = append(s.rxq, dgramMsg{data: data, from: e.Src, slabIdx: -1})
		s.mu.Unlock()
		s.stats.msgsRecv.Inc()
		s.stats.bytesRecv.Add(int64(len(data)))
		s.repost(idx)
		return
	}
	if len(buf) == 0 {
		s.repost(idx)
		return
	}
	switch buf[0] {
	case frameData:
		data := make([]byte, len(buf)-1)
		copy(data, buf[1:])
		s.mu.Lock()
		s.rxq = append(s.rxq, dgramMsg{data: data, from: e.Src, slabIdx: -1})
		s.mu.Unlock()
		s.stats.msgsRecv.Inc()
		s.stats.bytesRecv.Add(int64(len(data)))
		s.repost(idx)
	case frameRingReq:
		s.repost(idx)
		ring, err := s.ensureRing()
		if err != nil {
			return
		}
		adv := make([]byte, 1, 9)
		adv[0] = frameRingAdv
		adv = nio.PutU32(adv, uint32(ring.STag()))
		adv = nio.PutU32(adv, uint32(ring.Len()))
		//diwarp:ignore errflow: advert reply is best-effort: the requester re-sends frameRingReq until one arrives
		_ = s.udqp.PostSend(^uint64(0), e.Src, nio.VecOf(adv))
		s.drainSendCQ()
	case frameRingAdv:
		if len(buf) >= 9 {
			s.mu.Lock()
			s.remoteRing = ringInfo{
				stag: memreg.STag(nio.U32(buf[1:])),
				size: int(nio.U32(buf[5:])),
				ok:   true,
			}
			s.mu.Unlock()
		}
		s.repost(idx)
	case frameRingCredit:
		if len(buf) >= 9 {
			acked := nio.U64(buf[1:])
			s.mu.Lock()
			if acked > s.ringAcked {
				s.ringAcked = acked
			}
			s.mu.Unlock()
		}
		s.repost(idx)
	default:
		s.repost(idx)
	}
}

// handleRingWrite delivers a Write-Record message placed in the local ring.
// Messages with holes (lost segments) are dropped at the socket layer —
// socket applications expect whole datagrams; verbs applications that can
// use partial data consume validity maps directly.
func (s *Socket) handleRingWrite(e iwarp.CQE) {
	if !e.Validity.Contains(e.TO, uint64(e.MsgLen)) {
		s.stats.droppedIncomplete.Inc()
		telemetry.DefaultTrace.Record(telemetry.EvDrop, telemetry.PeerToken(e.Src), e.MsgLen, telemetry.DropIncomplete)
		return
	}
	s.mu.Lock()
	ring := s.ring
	s.mu.Unlock()
	if ring == nil || e.STag != ring.STag() {
		return
	}
	data := make([]byte, e.MsgLen)
	copy(data, ring.Bytes()[e.TO:e.TO+uint64(e.MsgLen)])
	s.stats.msgsRecv.Inc()
	s.stats.bytesRecv.Add(int64(len(data)))
	s.mu.Lock()
	s.rxq = append(s.rxq, dgramMsg{data: data, from: e.Src, slabIdx: -1})
	// Credit accounting: mirror the sender's wrap-skip, then count the
	// message. Advertise cumulative consumption every quarter ring.
	if int(e.TO) != s.ringExpect && e.TO == 0 {
		s.ringRecvd += uint64(ring.Len() - s.ringExpect)
	}
	s.ringRecvd += uint64(e.MsgLen)
	s.ringExpect = int(e.TO) + e.MsgLen
	var credit uint64
	sendCredit := s.ringRecvd-s.ringCredit >= uint64(ring.Len()/4)
	if sendCredit {
		s.ringCredit = s.ringRecvd
		credit = s.ringRecvd
	}
	peer := e.Src
	s.mu.Unlock()
	if sendCredit {
		frame := make([]byte, 1, 9)
		frame[0] = frameRingCredit
		frame = nio.PutU64(frame, credit)
		//diwarp:ignore errflow: credit frames carry cumulative counters: the next one repairs a lost send
		_ = s.udqp.PostSend(^uint64(0), peer, nio.VecOf(frame))
		s.drainSendCQ()
	}
}

// repost returns slab buffer idx to the QP's receive queue.
func (s *Socket) repost(idx int) {
	if idx < 0 || idx >= len(s.slab) {
		return
	}
	if s.udqp != nil {
		_ = s.udqp.PostRecv(uint64(idx), s.slab[idx]) //diwarp:ignore errflow: PostRecv on a live QP only fails once the QP is closed, when the receive window is moot
	} else if s.rcqp != nil {
		_ = s.rcqp.PostRecv(uint64(idx), s.slab[idx]) //diwarp:ignore errflow: PostRecv on a live QP only fails once the QP is closed, when the receive window is moot
	}
}

// popRx dequeues the oldest queued message.
func (s *Socket) popRx() (dgramMsg, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.rxq) == 0 {
		return dgramMsg{}, false
	}
	m := s.rxq[0]
	s.rxq[0] = dgramMsg{}
	s.rxq = s.rxq[1:]
	if len(s.rxq) == 0 {
		s.rxq = nil
	}
	return m, true
}

// RecvFrom receives one datagram into p, returning the byte count and the
// source address. Oversized messages are truncated to len(p), like
// recvfrom(2) on a datagram socket.
func (s *Socket) RecvFrom(p []byte, timeout time.Duration) (int, transport.Addr, error) {
	if s.typ != DatagramSocket {
		return 0, transport.Addr{}, ErrBadSocket
	}
	deadline := time.Now().Add(timeout)
	for {
		if m, ok := s.popRx(); ok {
			n := copy(p, m.data)
			return n, m.from, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return 0, transport.Addr{}, transport.ErrTimeout
		}
		if err := s.pump(remaining); err != nil {
			if errors.Is(err, iwarp.ErrCQEmpty) {
				continue
			}
			return 0, transport.Addr{}, err
		}
	}
}

// Recv reads from the connected socket. Datagram sockets return one message
// per call; stream sockets fill p with as many buffered bytes as available
// (at least one), preserving byte-stream semantics.
func (s *Socket) Recv(p []byte, timeout time.Duration) (int, error) {
	switch s.typ {
	case DatagramSocket:
		n, _, err := s.RecvFrom(p, timeout)
		return n, err
	case StreamSocket:
		// Locked check: orders this goroutine behind a concurrent Connect's
		// publication before the pump path reads slab/CQ state plainly.
		s.mu.Lock()
		rcqp := s.rcqp
		s.mu.Unlock()
		if rcqp == nil {
			return 0, ErrNotConnected
		}
		deadline := time.Now().Add(timeout)
		for {
			s.mu.Lock()
			if len(s.pending) > 0 {
				n := copy(p, s.pending)
				s.pending = s.pending[n:]
				if len(s.pending) == 0 {
					s.pending = nil
				}
				s.mu.Unlock()
				return n, nil
			}
			s.mu.Unlock()
			if m, ok := s.popRx(); ok {
				n := copy(p, m.data)
				if n < len(m.data) {
					s.mu.Lock()
					s.pending = m.data[n:]
					s.mu.Unlock()
				}
				return n, nil
			}
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return 0, transport.ErrTimeout
			}
			if err := s.pump(remaining); err != nil && !errors.Is(err, iwarp.ErrCQEmpty) {
				return 0, err
			}
		}
	}
	return 0, ErrBadSocket
}

// Peer returns the connected peer address.
func (s *Socket) Peer() transport.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peer
}

// Footprint reports the bytes of stack memory this socket pins: the receive
// slab, the Write-Record ring if registered, and its QP's state. This is
// the per-socket quantity the paper's Figure 11 sums across a SIP server's
// client population.
func (s *Socket) Footprint() int64 {
	s.mu.Lock()
	n := int64(0)
	for _, b := range s.slab {
		n += int64(cap(b))
	}
	if s.ring != nil {
		n += int64(s.ring.Len()) + 64
	}
	for _, m := range s.rxq {
		n += int64(cap(m.data))
	}
	n += int64(cap(s.pending))
	udqp, rcqp := s.udqp, s.rcqp
	s.mu.Unlock()
	if udqp != nil {
		n += udqp.Footprint()
	}
	if rcqp != nil {
		n += rcqp.Footprint()
	}
	return n
}

// Close releases the socket and its QP.
func (s *Socket) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ring := s.ring
	udqp, rcqp := s.udqp, s.rcqp
	s.mu.Unlock()
	s.ifc.forget(s.fd)
	var err error
	if ring != nil {
		// A failed deregistration leaves the ring reachable through a stale
		// STag — worth surfacing unless a QP teardown error outranks it.
		err = s.ifc.tbl.Deregister(ring.STag())
	}
	if udqp != nil {
		if cerr := udqp.Close(); cerr != nil {
			err = cerr
		}
	}
	if rcqp != nil {
		if cerr := rcqp.Close(); cerr != nil {
			err = cerr
		}
	}
	return err
}
