package sockif

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

// Regression tests for the two connection-establishment races the
// concurrency-analyzer triage surfaced (run with -race; both failed before
// the fix):
//
//  1. initRC published connection state (rcqp, peer, wrMode, remoteRing,
//     slab, CQs) with plain writes after Connect dropped s.mu for the
//     blocking dial, racing the monitoring methods — Peer, Footprint,
//     Interface.Footprint — that read the same fields under s.mu. A stream
//     socket is in the interface's fd table from Socket() time, so a
//     Figure 11-style scrape walking open sockets races any concurrent
//     Connect.
//  2. The stream data path read s.rcqp (Send, Recv, repost) and s.wrMode
//     (handleInbound) with no lock at all, so a goroutine polling Recv
//     while another goroutine Connects read the fields initRC was writing.

// scrapeSocket models a telemetry scrape hitting one socket's monitoring
// surface until stop closes.
func scrapeSocket(wg *sync.WaitGroup, stop chan struct{}, ifc *Interface, s *Socket) {
	defer wg.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
		_ = s.Peer()
		_ = s.Footprint()
		_ = s.Stats()
		_ = ifc.Footprint()
	}
}

func TestConnectPublishesUnderLock(t *testing.T) {
	ifa, ifb, _ := simPair(t, simnet.Config{}, Config{})
	l, err := ifb.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		if s, err := l.Accept(); err == nil {
			defer s.Close()
			buf := make([]byte, 64)
			_, _ = s.Recv(buf, time.Second)
		}
	}()

	cli, err := ifa.Socket(StreamSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go scrapeSocket(&wg, stop, ifa, cli)

	if err := cli.Connect(l.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := cli.Send([]byte("published")); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if cli.Peer().IsZero() {
		t.Fatal("peer not published after Connect")
	}
}

func TestDataPathReadsConnectionStateUnderLock(t *testing.T) {
	ifa, ifb, _ := simPair(t, simnet.Config{}, Config{})
	l, err := ifb.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		if s, err := l.Accept(); err == nil {
			defer s.Close()
			buf := make([]byte, 64)
			for {
				if _, err := s.Recv(buf, time.Second); err != nil {
					return
				}
			}
		}
	}()

	cli, err := ifa.Socket(StreamSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Poll the data path through the not-yet-connected window and into
		// the connected state: both sides of the transition must be
		// synchronized with initRC's publication.
		buf := make([]byte, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			errS := cli.Send([]byte("probe"))
			_, errR := cli.Recv(buf, time.Millisecond)
			if errS == nil && !errors.Is(errR, ErrNotConnected) {
				// Connected and pumping; keep going until told to stop so
				// the established data path overlaps the scrape below.
				continue
			}
		}
	}()

	if err := cli.Connect(l.Addr()); err != nil {
		t.Fatal(err)
	}
	// Let the poller run against the established connection briefly.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}
