package sockif

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/transport"
)

func simPair(t *testing.T, netCfg simnet.Config, cfg Config) (*Interface, *Interface, *simnet.Network) {
	t.Helper()
	net := simnet.New(netCfg)
	return NewSim(net, "a", cfg), NewSim(net, "b", cfg), net
}

func TestDatagramSendToRecvFrom(t *testing.T) {
	ifa, ifb, _ := simPair(t, simnet.Config{}, Config{})
	sa, err := ifa.Socket(DatagramSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := ifb.BindDatagram(5060)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	if sb.LocalAddr().Port != 5060 {
		t.Fatalf("bound port %d", sb.LocalAddr().Port)
	}

	msg := []byte("datagram through the shim")
	if err := sa.SendTo(msg, sb.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, from, err := sb.RecvFrom(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("payload %q", buf[:n])
	}
	if from != sa.LocalAddr() {
		t.Fatalf("from %v, want %v", from, sa.LocalAddr())
	}
	st := sb.Stats()
	if st.MsgsReceived != 1 || st.BytesReceived != int64(len(msg)) {
		t.Fatalf("stats %+v", st)
	}
}

func TestDatagramConnectSendRecv(t *testing.T) {
	ifa, ifb, _ := simPair(t, simnet.Config{}, Config{})
	sa, _ := ifa.Socket(DatagramSocket)
	defer sa.Close()
	sb, _ := ifb.Socket(DatagramSocket)
	defer sb.Close()
	if err := sa.Connect(sb.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := sa.Send([]byte("connected dgram")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := sb.Recv(buf, time.Second)
	if err != nil || string(buf[:n]) != "connected dgram" {
		t.Fatalf("%q %v", buf[:n], err)
	}
}

func TestDatagramUnconnectedSendFails(t *testing.T) {
	ifa, _, _ := simPair(t, simnet.Config{}, Config{})
	sa, _ := ifa.Socket(DatagramSocket)
	defer sa.Close()
	if err := sa.Send([]byte("x")); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("err = %v", err)
	}
}

func TestDatagramRecvTimeout(t *testing.T) {
	ifa, _, _ := simPair(t, simnet.Config{}, Config{})
	sa, _ := ifa.Socket(DatagramSocket)
	defer sa.Close()
	if _, _, err := sa.RecvFrom(make([]byte, 8), 30*time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestDatagramTruncationToCallerBuffer(t *testing.T) {
	ifa, ifb, _ := simPair(t, simnet.Config{}, Config{})
	sa, _ := ifa.Socket(DatagramSocket)
	defer sa.Close()
	sb, _ := ifb.Socket(DatagramSocket)
	defer sb.Close()
	if err := sa.SendTo([]byte("0123456789"), sb.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 4)
	n, _, err := sb.RecvFrom(small, time.Second)
	if err != nil || n != 4 || string(small) != "0123" {
		t.Fatalf("n=%d buf=%q err=%v", n, small, err)
	}
}

func TestDatagramOversizeSlabDropped(t *testing.T) {
	ifa, ifb, _ := simPair(t, simnet.Config{}, Config{RecvBufSize: 64})
	sa, _ := ifa.Socket(DatagramSocket)
	defer sa.Close()
	sb, _ := ifb.Socket(DatagramSocket)
	defer sb.Close()
	if err := sa.SendTo(make([]byte, 1000), sb.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sb.RecvFrom(make([]byte, 2000), 100*time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if sb.Stats().Truncated != 1 {
		t.Fatalf("Truncated = %d", sb.Stats().Truncated)
	}
	// Slab recycled: an in-budget message still arrives.
	if err := sa.SendTo([]byte("fits"), sb.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if n, _, err := sb.RecvFrom(buf, time.Second); err != nil || string(buf[:n]) != "fits" {
		t.Fatalf("%q %v", buf[:n], err)
	}
}

func TestWriteRecordDataPath(t *testing.T) {
	ifa, ifb, _ := simPair(t, simnet.Config{}, Config{})
	sa, _ := ifa.Socket(DatagramSocket)
	defer sa.Close()
	sb, _ := ifb.Socket(DatagramSocket)
	defer sb.Close()
	if err := sa.Connect(sb.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	// The ring advertisement handshake needs the receiver pumping.
	done := make(chan error, 1)
	go func() { done <- sa.EnableWriteRecord(2 * time.Second) }()
	buf := make([]byte, 256)
	// Receiver polls; the ring request is absorbed internally.
	_, _, _ = sb.RecvFrom(buf, 300*time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("EnableWriteRecord: %v", err)
	}

	for i := 0; i < 5; i++ {
		msg := bytes.Repeat([]byte{byte('A' + i)}, 100+i)
		if err := sa.Send(msg); err != nil {
			t.Fatal(err)
		}
		n, from, err := sb.RecvFrom(buf, time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(buf[:n], msg) {
			t.Fatalf("msg %d: got %d bytes", i, n)
		}
		if from != sa.LocalAddr() {
			t.Fatalf("from %v", from)
		}
	}
	// The Write-Record path consumed no slab receives for data.
	if sb.Stats().MsgsReceived != 5 {
		t.Fatalf("MsgsReceived = %d", sb.Stats().MsgsReceived)
	}
}

func TestWriteRecordRingWraparound(t *testing.T) {
	ifa, ifb, _ := simPair(t, simnet.Config{}, Config{RingSize: 1024})
	sa, _ := ifa.Socket(DatagramSocket)
	defer sa.Close()
	sb, _ := ifb.Socket(DatagramSocket)
	defer sb.Close()
	sa.Connect(sb.LocalAddr())
	done := make(chan error, 1)
	go func() { done <- sa.EnableWriteRecord(2 * time.Second) }()
	_, _, _ = sb.RecvFrom(make([]byte, 8), 300*time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 10; i++ { // 10 × 400 B through a 1 KiB ring
		msg := bytes.Repeat([]byte{byte(i)}, 400)
		if err := sa.Send(msg); err != nil {
			t.Fatal(err)
		}
		n, _, err := sb.RecvFrom(buf, time.Second)
		if err != nil || !bytes.Equal(buf[:n], msg) {
			t.Fatalf("round %d: n=%d err=%v", i, n, err)
		}
	}
}

func TestStreamSocketRoundTrip(t *testing.T) {
	ifa, ifb, _ := simPair(t, simnet.Config{}, Config{})
	l, err := ifb.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type acc struct {
		s   *Socket
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		s, err := l.Accept()
		ch <- acc{s, err}
	}()
	cli, err := ifa.Socket(StreamSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Connect(l.Addr()); err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	defer a.s.Close()

	if err := cli.Send([]byte("hello stream")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := a.s.Recv(buf, time.Second)
	if err != nil || string(buf[:n]) != "hello stream" {
		t.Fatalf("%q %v", buf[:n], err)
	}
	// Reply.
	if err := a.s.Send([]byte("hi back")); err != nil {
		t.Fatal(err)
	}
	n, err = cli.Recv(buf, time.Second)
	if err != nil || string(buf[:n]) != "hi back" {
		t.Fatalf("%q %v", buf[:n], err)
	}
}

func TestStreamByteSemantics(t *testing.T) {
	ifa, ifb, _ := simPair(t, simnet.Config{}, Config{})
	l, _ := ifb.Listen(0)
	defer l.Close()
	ch := make(chan *Socket, 1)
	go func() {
		s, err := l.Accept()
		if err == nil {
			ch <- s
		}
	}()
	cli, _ := ifa.Socket(StreamSocket)
	defer cli.Close()
	if err := cli.Connect(l.Addr()); err != nil {
		t.Fatal(err)
	}
	srv := <-ch
	defer srv.Close()

	if err := cli.Send([]byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	// Read in three small chunks: stream semantics split one message.
	var got []byte
	for len(got) < 10 {
		buf := make([]byte, 4)
		n, err := srv.Recv(buf, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "abcdefghij" {
		t.Fatalf("got %q", got)
	}
}

func TestSocketTableLookup(t *testing.T) {
	ifa, _, _ := simPair(t, simnet.Config{}, Config{})
	s, _ := ifa.Socket(DatagramSocket)
	if got, ok := ifa.Lookup(s.FD()); !ok || got != s {
		t.Fatal("fd lookup failed")
	}
	if ifa.SocketCount() != 1 {
		t.Fatalf("count = %d", ifa.SocketCount())
	}
	s.Close()
	if _, ok := ifa.Lookup(s.FD()); ok {
		t.Fatal("closed fd still resolvable")
	}
	if ifa.SocketCount() != 0 {
		t.Fatalf("count = %d", ifa.SocketCount())
	}
}

func TestFootprintUDCheaperThanRC(t *testing.T) {
	ifa, ifb, _ := simPair(t, simnet.Config{StreamBufSize: 16 << 10}, Config{})
	ud, err := ifa.Socket(DatagramSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer ud.Close()

	l, _ := ifb.Listen(0)
	defer l.Close()
	ch := make(chan *Socket, 1)
	go func() {
		s, err := l.Accept()
		if err == nil {
			ch <- s
		}
	}()
	rc, _ := ifa.Socket(StreamSocket)
	defer rc.Close()
	if err := rc.Connect(l.Addr()); err != nil {
		t.Fatal(err)
	}
	srv := <-ch
	defer srv.Close()

	udf, rcf := ud.Footprint(), rc.Footprint()
	if udf <= 0 || rcf <= 0 {
		t.Fatalf("footprints %d %d", udf, rcf)
	}
	if udf >= rcf {
		t.Fatalf("UD socket (%d B) should be cheaper than RC socket (%d B)", udf, rcf)
	}
	t.Logf("UD %d B vs RC %d B (saving %.1f%%)", udf, rcf, 100*float64(rcf-udf)/float64(rcf))
}

func TestDatagramOverLossySocket(t *testing.T) {
	ifa, ifb, net := simPair(t, simnet.Config{Seed: 3}, Config{})
	sa, _ := ifa.Socket(DatagramSocket)
	defer sa.Close()
	sb, _ := ifb.Socket(DatagramSocket)
	defer sb.Close()
	net.SetLossRate(1.0)
	if err := sa.SendTo([]byte("vanishes"), sb.LocalAddr()); err != nil {
		t.Fatal(err) // send succeeds: fire and forget
	}
	if _, _, err := sb.RecvFrom(make([]byte, 16), 100*time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	net.SetLossRate(0)
	if err := sa.SendTo([]byte("arrives"), sb.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if n, _, err := sb.RecvFrom(buf, time.Second); err != nil || string(buf[:n]) != "arrives" {
		t.Fatalf("%q %v", buf[:n], err)
	}
}

func TestReliableDatagramSocket(t *testing.T) {
	net := simnet.New(simnet.Config{LossRate: 0.2, Seed: 31})
	ifa := NewSim(net, "a", Config{Reliable: true})
	ifb := NewSim(net, "b", Config{Reliable: true})
	sa, _ := ifa.Socket(DatagramSocket)
	defer sa.Close()
	sb, _ := ifb.Socket(DatagramSocket)
	defer sb.Close()
	for i := 0; i < 30; i++ {
		if err := sa.SendTo([]byte{byte(i)}, sb.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 8)
	for i := 0; i < 30; i++ {
		n, _, err := sb.RecvFrom(buf, 5*time.Second)
		if err != nil || n != 1 || buf[0] != byte(i) {
			t.Fatalf("msg %d: n=%d b=%d err=%v", i, n, buf[0], err)
		}
	}
}

func TestStreamWriteRecordProfile(t *testing.T) {
	cfg := Config{StreamWriteRecord: true, RingSize: 64 << 10}
	ifa, ifb, _ := simPair(t, simnet.Config{}, cfg)
	l, err := ifb.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ch := make(chan *Socket, 1)
	go func() {
		s, err := l.Accept()
		if err == nil {
			ch <- s
		}
	}()
	cli, err := ifa.Socket(StreamSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Connect(l.Addr()); err != nil {
		t.Fatal(err)
	}
	srv := <-ch
	defer srv.Close()

	// Small message: buffered-copy path.
	if err := cli.Send([]byte("tiny")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128<<10)
	n, err := srv.Recv(buf, time.Second)
	if err != nil || string(buf[:n]) != "tiny" {
		t.Fatalf("%q %v", buf[:n], err)
	}

	// Large message: RDMA Write + notify through the ring, chunked to a
	// quarter ring (16 KiB) — stream semantics reassemble transparently.
	big := bytes.Repeat([]byte("payload!"), 8<<10) // 64 KiB
	go func() {
		if err := cli.Send(big); err != nil {
			t.Error(err)
		}
	}()
	var got []byte
	for len(got) < len(big) {
		n, err := srv.Recv(buf, 2*time.Second)
		if err != nil {
			t.Fatalf("after %d bytes: %v", len(got), err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large WR-profile transfer corrupt")
	}

	// Bidirectional: the server answers through its own ring path.
	go func() {
		if err := srv.Send(big[:20<<10]); err != nil {
			t.Error(err)
		}
	}()
	got = got[:0]
	for len(got) < 20<<10 {
		n, err := cli.Recv(buf, 2*time.Second)
		if err != nil {
			t.Fatalf("reverse after %d: %v", len(got), err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, big[:20<<10]) {
		t.Fatal("reverse WR-profile transfer corrupt")
	}
}

func TestStreamWriteRecordManyMessages(t *testing.T) {
	// Sustained traffic exercises ring wraparound and the credit loop.
	cfg := Config{StreamWriteRecord: true, RingSize: 32 << 10}
	ifa, ifb, _ := simPair(t, simnet.Config{}, cfg)
	l, _ := ifb.Listen(0)
	defer l.Close()
	ch := make(chan *Socket, 1)
	go func() {
		s, err := l.Accept()
		if err == nil {
			ch <- s
		}
	}()
	cli, _ := ifa.Socket(StreamSocket)
	defer cli.Close()
	if err := cli.Connect(l.Addr()); err != nil {
		t.Fatal(err)
	}
	srv := <-ch
	defer srv.Close()

	const msgs = 64
	msg := bytes.Repeat([]byte{0xAB}, 3000)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			m := append([]byte{byte(i)}, msg...)
			if err := cli.Send(m); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	buf := make([]byte, 8192)
	var total int
	for total < msgs*(len(msg)+1) {
		n, err := srv.Recv(buf, 2*time.Second)
		if err != nil {
			t.Fatalf("after %d bytes: %v", total, err)
		}
		total += n
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
