// Package sockif is the iWARP socket interface of the paper's §V.A: a
// translation layer that gives socket-style applications (the SIP server
// and media streamer of the evaluation) access to datagram-iWARP verbs
// without rewriting them against queue pairs.
//
// The original is an LD_PRELOAD shim overriding libc socket calls; Go
// cannot intercept symbols, so the same boundary is expressed as an
// explicit API with the shim's architecture preserved:
//
//   - each socket is backed by exactly one queue pair ("each socket is only
//     associated with a single QP"), UD or RC by socket type;
//   - receive is buffered-copy: the stack owns a slab of pre-posted receive
//     buffers and copies each message into the caller's buffer, which is
//     why the paper measures send/recv and Write-Record as nearly identical
//     through sockets ("to copy the data over to the supplied buffer
//     location instead");
//   - datagram sockets can optionally run their data path over RDMA
//     Write-Record into a ring region advertised once at connect time (the
//     paper's decision "not to re-exchange remote buffer locations for
//     every new buffer");
//   - stream (RC) sockets speak byte-stream semantics over message-based
//     verbs, buffering partial messages like SDP's buffered-copy mode.
package sockif

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/memreg"
	"repro/internal/rudp"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Type selects the socket semantics, mirroring SOCK_DGRAM / SOCK_STREAM.
type Type int

// Socket types.
const (
	// DatagramSocket maps to a UD queue pair over an unreliable datagram
	// LLP (or a reliable one when Config.Reliable is set).
	DatagramSocket Type = iota
	// StreamSocket maps to an RC queue pair over an MPA-framed stream.
	StreamSocket
)

// Socket-interface errors.
var (
	ErrNotConnected = errors.New("sockif: socket not connected")
	ErrBadSocket    = errors.New("sockif: operation invalid for socket type/state")
	ErrMsgTruncated = errors.New("sockif: message exceeds receive slab buffer")
)

// Config parameterises one process's socket interface instance.
type Config struct {
	// OpenDatagram binds a datagram endpoint on the given port (0 = any).
	OpenDatagram func(port uint16) (transport.Datagram, error)
	// Listen binds a stream listener for StreamSocket servers.
	Listen func(port uint16) (transport.Listener, error)
	// Dial connects a stream for StreamSocket clients.
	Dial func(to transport.Addr) (transport.Stream, error)

	// RecvBufCount and RecvBufSize shape the pre-posted receive slab
	// (defaults 16 × 8 KiB). A message larger than RecvBufSize is dropped
	// with a truncation error, like a datagram overflowing SO_RCVBUF.
	RecvBufCount int
	RecvBufSize  int
	// RingSize is the Write-Record ring region size advertised by datagram
	// sockets (default 1 MiB). Zero keeps the feature available with the
	// default; the ring is only registered when the peer requests it.
	RingSize int
	// Reliable wraps datagram endpoints in the reliable-datagram LLP,
	// giving TCP-like guarantees with datagram scalability (RD service).
	Reliable bool
	// RudpConfig parameterises the reliable-datagram layer when Reliable
	// is set: peer-table sharding, bounded capacity (admission errors past
	// MaxPeers), and idle-conversation eviction. The zero value keeps
	// rudp's defaults (unbounded, no idle eviction).
	RudpConfig rudp.Config
	// StreamWriteRecord switches stream (RC) sockets to the RDMA Write
	// data path: rings are advertised in the MPA private data at connect
	// time, large sends become RDMA Write + notify (the paper's Figure 3
	// upper half), and sends of ≤256 bytes stay buffered-copy. Both ends
	// of a connection must enable it.
	StreamWriteRecord bool
}

func (c Config) withDefaults() Config {
	if c.RecvBufCount == 0 {
		c.RecvBufCount = 16
	}
	if c.RecvBufSize == 0 {
		c.RecvBufSize = 8 << 10
	}
	if c.RingSize == 0 {
		c.RingSize = 1 << 20
	}
	return c
}

// Interface is one process's socket layer: the loaded shim. It owns the
// verbs resources every socket shares (protection domain and STag table)
// and the socket table ("the QP to file descriptor mapping").
type Interface struct {
	cfg Config
	pd  *memreg.PD
	tbl *memreg.Table

	mu      sync.Mutex
	sockets map[int]*Socket
	nextFD  int
}

// New creates a socket interface instance.
func New(cfg Config) *Interface {
	return &Interface{
		cfg:     cfg.withDefaults(),
		pd:      memreg.NewPD(),
		tbl:     memreg.NewTable(),
		sockets: make(map[int]*Socket),
		nextFD:  3, // historical fd convention: 0-2 are stdio
	}
}

// NewSim builds an Interface whose endpoints live on a simulated network
// node — the common test/benchmark configuration.
func NewSim(net *simnet.Network, node string, cfg Config) *Interface {
	cfg.OpenDatagram = func(port uint16) (transport.Datagram, error) {
		return net.OpenDatagram(node, port)
	}
	cfg.Listen = func(port uint16) (transport.Listener, error) {
		return net.Listen(node, port)
	}
	cfg.Dial = func(to transport.Addr) (transport.Stream, error) {
		return net.Dial(node, to)
	}
	return New(cfg)
}

// Socket creates a socket of the given type, returning it with its file
// descriptor number. A datagram socket is immediately bound to an
// ephemeral port (bind explicitly with BindDatagram for a fixed port).
func (ifc *Interface) Socket(t Type) (*Socket, error) {
	return ifc.socket(t, 0)
}

// BindDatagram creates a datagram socket bound to a specific port.
func (ifc *Interface) BindDatagram(port uint16) (*Socket, error) {
	return ifc.socket(DatagramSocket, port)
}

func (ifc *Interface) socket(t Type, port uint16) (*Socket, error) {
	s := newSocket(ifc, t)
	switch t {
	case DatagramSocket:
		if ifc.cfg.OpenDatagram == nil {
			return nil, fmt.Errorf("%w: no datagram opener configured", ErrBadSocket)
		}
		ep, err := ifc.cfg.OpenDatagram(port)
		if err != nil {
			return nil, err
		}
		if ifc.cfg.Reliable {
			ep = rudp.NewConfig(ep, ifc.cfg.RudpConfig)
		}
		if err := s.initUD(ep); err != nil {
			ep.Close() //diwarp:ignore errflow: error-path cleanup of an endpoint never exposed; initUD's error is the one to report
			return nil, err
		}
	case StreamSocket:
		// Stream sockets acquire their QP at Connect/Accept time, like TCP.
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadSocket, t)
	}
	ifc.mu.Lock()
	ifc.nextFD++
	s.fd = ifc.nextFD
	ifc.sockets[s.fd] = s
	ifc.mu.Unlock()
	return s, nil
}

// Listen opens a stream listener for Accept.
func (ifc *Interface) Listen(port uint16) (*StreamListener, error) {
	if ifc.cfg.Listen == nil {
		return nil, fmt.Errorf("%w: no stream listener configured", ErrBadSocket)
	}
	l, err := ifc.cfg.Listen(port)
	if err != nil {
		return nil, err
	}
	return &StreamListener{ifc: ifc, l: l}, nil
}

// Lookup resolves a file descriptor to its socket, mirroring the shim's
// fd→socket table probe on every intercepted call.
func (ifc *Interface) Lookup(fd int) (*Socket, bool) {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	s, ok := ifc.sockets[fd]
	return s, ok
}

// SocketCount reports how many sockets are open.
func (ifc *Interface) SocketCount() int {
	ifc.mu.Lock()
	defer ifc.mu.Unlock()
	return len(ifc.sockets)
}

func (ifc *Interface) forget(fd int) {
	ifc.mu.Lock()
	delete(ifc.sockets, fd)
	ifc.mu.Unlock()
}

// Footprint sums the accounted memory of every open socket: the quantity
// behind the paper's Figure 11 memory-scalability comparison.
func (ifc *Interface) Footprint() int64 {
	ifc.mu.Lock()
	socks := make([]*Socket, 0, len(ifc.sockets))
	for _, s := range ifc.sockets {
		socks = append(socks, s)
	}
	ifc.mu.Unlock()
	var total int64
	for _, s := range socks {
		total += s.Footprint()
	}
	return total
}

// StreamListener accepts RC stream sockets.
type StreamListener struct {
	ifc *Interface
	l   transport.Listener
}

// Addr returns the listening address.
func (sl *StreamListener) Addr() transport.Addr { return sl.l.Addr() }

// Accept waits for a connection and returns the accepted stream socket.
func (sl *StreamListener) Accept() (*Socket, error) {
	stream, err := sl.l.Accept()
	if err != nil {
		return nil, err
	}
	s := newSocket(sl.ifc, StreamSocket)
	if err := s.initRCAccept(stream); err != nil {
		stream.Close() //diwarp:ignore errflow: error-path cleanup of a stream never exposed; initRCAccept's error is the one to report
		return nil, err
	}
	sl.ifc.mu.Lock()
	sl.ifc.nextFD++
	s.fd = sl.ifc.nextFD
	sl.ifc.sockets[s.fd] = s
	sl.ifc.mu.Unlock()
	return s, nil
}

// Close stops the listener.
func (sl *StreamListener) Close() error { return sl.l.Close() }
