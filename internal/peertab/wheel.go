package peertab

import (
	"sync"
	"sync/atomic"
	"time"
)

// Wheel is a hashed timer wheel for per-peer retransmit deadlines. It
// replaces the O(peers)-under-one-lock retransmit scan: the tick visits
// only the slots whose time has come, and each slot holds only the peers
// whose next deadline hashes there. With W slots of granularity g, a
// deadline within the W·g horizon is filed in exactly the slot that fires
// at its RTO; deadlines beyond the horizon wrap and are re-examined once
// per revolution (each scan checks the stored deadline before declaring
// the key due, so a wrapped entry fires on time, never early).
//
// Concurrency contract: all Arm/Disarm calls for one key must be
// serialized by the key's owner (in rudp, the peer's Entry lock), and
// Advance must be called from a single goroutine (the tick loop). Slot
// mutexes order after the entry lock — Arm/Disarm run with the entry lock
// held — so Advance must NEVER lock an entry while holding a slot mutex;
// it collects due keys under the slot lock and returns them for the
// caller to process lock-free of the wheel.
type Wheel[K comparable] struct {
	granularity time.Duration
	slots       []wslot[K]
	mask        int64
	// lastTick is the most recent tick index Advance has swept. Arm reads
	// it to clamp already-expired deadlines forward into the next sweep —
	// filing them at their literal tick would park them behind the cursor
	// for a full revolution.
	lastTick atomic.Int64
}

type wslot[K comparable] struct {
	// mu guards m. Ordered after the owning peer's entry lock: rudp arms
	// and disarms while holding Entry.mu.
	//diwarp:lockafter Entry.mu
	mu sync.Mutex
	m  map[K]int64 // key → deadline (unix nanos)
}

// Fired is one key popped by Advance, tagged with the slot it came from so
// the owner can detect stale pops (the key was disarmed and re-armed into
// a different slot between the pop and the owner taking its entry lock).
type Fired[K comparable] struct {
	Key  K
	Slot int
}

// NewWheel builds a wheel with the given slot count (rounded up to a power
// of two) and tick granularity.
func NewWheel[K comparable](slots int, granularity time.Duration) *Wheel[K] {
	pow := 1
	for pow < slots {
		pow <<= 1
	}
	w := &Wheel[K]{
		granularity: granularity,
		slots:       make([]wslot[K], pow),
		mask:        int64(pow - 1),
	}
	for i := range w.slots {
		w.slots[i].m = make(map[K]int64)
	}
	w.lastTick.Store(time.Now().UnixNano() / int64(granularity))
	return w
}

// Arm files k to fire at deadline and returns the slot index the caller
// must remember for Disarm. Caller holds k's owner lock.
func (w *Wheel[K]) Arm(k K, deadline time.Time) int {
	tick := deadline.UnixNano() / int64(w.granularity)
	if last := w.lastTick.Load(); tick <= last {
		tick = last + 1
	}
	slot := int(tick & w.mask)
	s := &w.slots[slot]
	s.mu.Lock()
	s.m[k] = deadline.UnixNano()
	s.mu.Unlock()
	return slot
}

// Disarm removes k from slot. A no-op if Advance already popped it —
// exactly the idempotence the evict-mid-tick race needs. Caller holds k's
// owner lock.
func (w *Wheel[K]) Disarm(k K, slot int) {
	s := &w.slots[slot]
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// Advance sweeps every slot between the previous sweep and now, popping
// keys whose deadline has passed and appending them to buf (reused across
// ticks to keep the loop alloc-free at steady state). Keys with wrapped
// deadlines (filed more than one revolution out) stay put for a later
// sweep. Single-caller: the owner's tick loop.
func (w *Wheel[K]) Advance(now time.Time, buf []Fired[K]) []Fired[K] {
	nowTick := now.UnixNano() / int64(w.granularity)
	last := w.lastTick.Load()
	if nowTick <= last {
		return buf
	}
	// A long stall (suspended VM, stopped world) may owe more ticks than
	// the wheel has slots; one full revolution covers them all.
	from := last + 1
	if nowTick-from >= int64(len(w.slots)) {
		from = nowTick - int64(len(w.slots)) + 1
	}
	nowNanos := now.UnixNano()
	for t := from; t <= nowTick; t++ {
		slot := int(t & w.mask)
		s := &w.slots[slot]
		s.mu.Lock()
		for k, dl := range s.m {
			if dl <= nowNanos {
				delete(s.m, k)
				buf = append(buf, Fired[K]{Key: k, Slot: slot})
			}
		}
		s.mu.Unlock()
	}
	w.lastTick.Store(nowTick)
	return buf
}

// Armed returns the number of keys currently filed — the quiesce invariant
// for eviction tests: a clean shutdown leaves zero armed timers.
func (w *Wheel[K]) Armed() int {
	n := 0
	for i := range w.slots {
		s := &w.slots[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
