package peertab

// FNV-1a primitives for building shard hashes. The same discipline as the
// core placement workers (PR 4): one peer address must hash identically at
// every layer, so demux decisions agree from the UD QP up through rudp and
// msg. Chained form — start from Seed(), fold in each key component —
// keeps composite keys (addr+ID, addr+STag) alloc-free.

const (
	fnvOffset = 2166136261
	fnvPrime  = 16777619
)

// Seed returns the FNV-1a offset basis.
//
//diwarp:hotpath
func Seed() uint32 { return fnvOffset }

// HashString folds s into h.
//
//diwarp:hotpath
func HashString(h uint32, s string) uint32 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * fnvPrime
	}
	return h
}

// HashUint32 folds v into h byte-by-byte (big-endian).
//
//diwarp:hotpath
func HashUint32(h uint32, v uint32) uint32 {
	h = (h ^ (v >> 24)) * fnvPrime
	h = (h ^ (v >> 16 & 0xff)) * fnvPrime
	h = (h ^ (v >> 8 & 0xff)) * fnvPrime
	h = (h ^ (v & 0xff)) * fnvPrime
	return h
}

// HashUint64 folds v into h byte-by-byte (big-endian).
//
//diwarp:hotpath
func HashUint64(h uint32, v uint64) uint32 {
	h = HashUint32(h, uint32(v>>32))
	return HashUint32(h, uint32(v))
}

// HashBytes folds b into h.
//
//diwarp:hotpath
func HashBytes(h uint32, b []byte) uint32 {
	for i := 0; i < len(b); i++ {
		h = (h ^ uint32(b[i])) * fnvPrime
	}
	return h
}
