package peertab

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type testVal struct {
	n     int
	freed bool
}

func newTestTable(opts Options) *Table[string, testVal] {
	return New[string, testVal](func(k string) uint32 {
		return HashString(Seed(), k)
	}, opts)
}

func TestGetOrCreateAndGet(t *testing.T) {
	tab := newTestTable(Options{Shards: 4})
	e, created, err := tab.GetOrCreate("a", func(e *Entry[string, testVal]) { e.V.n = 7 })
	if err != nil || !created {
		t.Fatalf("first create: created=%v err=%v", created, err)
	}
	if e.V.n != 7 || e.Key != "a" {
		t.Fatalf("init not applied: %+v", e)
	}
	e2, created, err := tab.GetOrCreate("a", nil)
	if err != nil || created || e2 != e {
		t.Fatalf("second create returned created=%v e2==e %v err=%v", created, e2 == e, err)
	}
	if g := tab.Get("a"); g != e {
		t.Fatal("Get missed the inserted entry")
	}
	if g := tab.Get("missing"); g != nil {
		t.Fatal("Get invented an entry")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

func TestEvictEntryExactlyOnce(t *testing.T) {
	tab := newTestTable(Options{})
	e, _, _ := tab.GetOrCreate("a", nil)
	if !tab.EvictEntry(e) {
		t.Fatal("first evict lost")
	}
	if tab.EvictEntry(e) {
		t.Fatal("second evict won too")
	}
	if tab.Get("a") != nil || tab.Len() != 0 {
		t.Fatal("entry still visible after evict")
	}
	e.Lock()
	if !e.Gone() {
		t.Fatal("evicted entry not marked gone")
	}
	e.Unlock()
}

// TestEvictEntryIsPointerExact pins the re-admission race: evicting a
// stale entry must not tear down the fresh entry that replaced it under
// the same key.
func TestEvictEntryIsPointerExact(t *testing.T) {
	tab := newTestTable(Options{})
	old, _, _ := tab.GetOrCreate("a", nil)
	tab.EvictEntry(old)
	fresh, created, _ := tab.GetOrCreate("a", nil)
	if !created || fresh == old {
		t.Fatal("re-admission did not create a fresh entry")
	}
	if tab.EvictEntry(old) {
		t.Fatal("stale evictor won against an already-gone entry")
	}
	if tab.Get("a") != fresh {
		t.Fatal("fresh entry was collateral damage of the stale evict")
	}
}

// TestLockOrCreateSkipsGone pins the retry loop: an entry that went gone
// between the snapshot read and the lock must not be returned.
func TestLockOrCreateSkipsGone(t *testing.T) {
	tab := newTestTable(Options{})
	old, _, _ := tab.GetOrCreate("a", nil)
	tab.EvictEntry(old)
	e, created, err := tab.LockOrCreate("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if e == old || !created {
		t.Fatal("LockOrCreate returned the gone entry")
	}
	if e.Gone() {
		t.Fatal("returned entry is gone")
	}
	e.Unlock()
}

func TestCapacity(t *testing.T) {
	tab := newTestTable(Options{Shards: 2, Capacity: 3})
	for i := 0; i < 3; i++ {
		if _, _, err := tab.GetOrCreate(fmt.Sprint(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := tab.GetOrCreate("overflow", nil)
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("admission beyond capacity: err=%v", err)
	}
	// Existing keys stay reachable at capacity.
	if _, created, err := tab.GetOrCreate("1", nil); err != nil || created {
		t.Fatalf("existing key rejected at capacity: created=%v err=%v", created, err)
	}
	// Eviction frees a slot.
	tab.Evict("0")
	if _, _, err := tab.GetOrCreate("overflow", nil); err != nil {
		t.Fatalf("admission after evict: %v", err)
	}
}

func TestEvictIdle(t *testing.T) {
	tab := newTestTable(Options{})
	a, _, _ := tab.GetOrCreate("a", nil)
	b, _, _ := tab.GetOrCreate("b", nil)
	past := time.Now().Add(-time.Hour).UnixNano()
	a.Touch(past)
	b.Touch(past)
	vetoed := 0
	n := tab.EvictIdle(time.Minute, func(e *Entry[string, testVal]) bool {
		if e.Key == "b" {
			vetoed++
			return false // still busy
		}
		e.V.freed = true
		return true
	})
	if n != 1 || vetoed != 1 {
		t.Fatalf("evicted %d vetoed %d, want 1/1", n, vetoed)
	}
	if tab.Get("a") != nil || tab.Get("b") == nil {
		t.Fatal("wrong entry evicted")
	}
	if !a.V.freed {
		t.Fatal("teardown callback did not run under the entry lock")
	}
	// A recent Touch protects the entry without the veto.
	b.Touch(time.Now().UnixNano())
	if n := tab.EvictIdle(time.Minute, nil); n != 0 {
		t.Fatalf("evicted %d recently-touched entries", n)
	}
}

func TestClear(t *testing.T) {
	tab := newTestTable(Options{})
	for i := 0; i < 10; i++ {
		tab.GetOrCreate(fmt.Sprint(i), nil)
	}
	torn := 0
	tab.Clear(func(e *Entry[string, testVal]) { torn++ })
	if torn != 10 || tab.Len() != 0 {
		t.Fatalf("Clear tore down %d of 10, Len=%d", torn, tab.Len())
	}
}

func TestStats(t *testing.T) {
	tab := newTestTable(Options{Shards: 4})
	for i := 0; i < 64; i++ {
		tab.GetOrCreate(fmt.Sprint(i), nil)
	}
	s := tab.Stats()
	if s.Occupancy != 64 || s.Shards != 4 {
		t.Fatalf("stats %+v", s)
	}
	if s.ShardMax < s.ShardMin || s.ShardMax == 0 {
		t.Fatalf("implausible imbalance: %+v", s)
	}
	if s.ShardMax > 2*64/4+16 {
		t.Fatalf("FNV spread badly skewed: max %d of 64 over 4 shards", s.ShardMax)
	}
}

// TestGetAllocFree pins the hot lookup at zero allocations — the property
// the hotpath analyzer enforces statically and the datapath depends on.
func TestGetAllocFree(t *testing.T) {
	tab := newTestTable(Options{})
	for i := 0; i < 100; i++ {
		tab.GetOrCreate(fmt.Sprint(i), nil)
	}
	var sink *Entry[string, testVal]
	allocs := testing.AllocsPerRun(1000, func() {
		sink = tab.Get("42")
	})
	if sink == nil {
		t.Fatal("lookup missed")
	}
	if allocs != 0 {
		t.Fatalf("Get allocates %.2f per lookup, want 0", allocs)
	}
}

// TestHammer races inserts, lookups, touches, and evicts across shards
// under -race. The invariants: a looked-up live entry is always the one
// the table maps its key to, and the final Len matches a serial count.
func TestHammer(t *testing.T) {
	tab := newTestTable(Options{Shards: 8})
	const keys = 64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var ops atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprint((g*31 + i) % keys)
				switch i % 4 {
				case 0, 1:
					e, _, err := tab.LockOrCreate(k, func(e *Entry[string, testVal]) { e.V.n = g })
					if err != nil {
						t.Error(err)
						return
					}
					e.V.n++
					e.Touch(time.Now().UnixNano())
					e.Unlock()
				case 2:
					if e := tab.Lookup(k); e != nil {
						if e.Gone() {
							t.Error("Lookup returned a gone entry")
							e.Unlock()
							return
						}
						e.Unlock()
					}
				case 3:
					if e := tab.Get(k); e != nil {
						tab.EvictEntry(e)
					}
				}
				ops.Add(1)
			}
		}(g)
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if ops.Load() < 1000 {
		t.Fatalf("hammer barely ran: %d ops", ops.Load())
	}
	// Quiesce invariant: Len agrees with a serial scan.
	n := 0
	tab.Range(func(e *Entry[string, testVal]) bool { n++; return true })
	if n != tab.Len() {
		t.Fatalf("Len=%d but Range saw %d", tab.Len(), n)
	}
}

// TestHammerCapacity races admission against eviction under a tight bound
// and checks the occupancy never runs away past the documented slack.
func TestHammerCapacity(t *testing.T) {
	const cap = 32
	tab := newTestTable(Options{Shards: 4, Capacity: cap})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprint((g*17 + i) % (2 * cap))
				if _, _, err := tab.GetOrCreate(k, nil); err != nil {
					tab.Evict(fmt.Sprint(i % (2 * cap)))
				}
			}
		}(g)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := tab.Len(); n > cap+4 /* Shards-1 slack */ {
		t.Fatalf("occupancy %d blew past capacity %d + shard slack", n, cap)
	}
}
