package peertab

import (
	"testing"
	"time"
)

func TestWheelArmAdvance(t *testing.T) {
	w := NewWheel[string](16, time.Millisecond)
	now := time.Now()
	w.Arm("a", now.Add(2*time.Millisecond))
	w.Arm("b", now.Add(5*time.Millisecond))
	if w.Armed() != 2 {
		t.Fatalf("armed %d, want 2", w.Armed())
	}
	// Nothing due yet.
	if due := w.Advance(now, nil); len(due) != 0 {
		t.Fatalf("premature fire: %v", due)
	}
	due := w.Advance(now.Add(3*time.Millisecond), nil)
	if len(due) != 1 || due[0].Key != "a" {
		t.Fatalf("at +3ms fired %v, want [a]", due)
	}
	due = w.Advance(now.Add(10*time.Millisecond), due[:0])
	if len(due) != 1 || due[0].Key != "b" {
		t.Fatalf("at +10ms fired %v, want [b]", due)
	}
	if w.Armed() != 0 {
		t.Fatalf("armed %d at quiesce, want 0", w.Armed())
	}
}

func TestWheelDisarm(t *testing.T) {
	w := NewWheel[string](16, time.Millisecond)
	now := time.Now()
	slot := w.Arm("a", now.Add(2*time.Millisecond))
	w.Disarm("a", slot)
	if w.Armed() != 0 {
		t.Fatalf("armed %d after disarm, want 0", w.Armed())
	}
	if due := w.Advance(now.Add(20*time.Millisecond), nil); len(due) != 0 {
		t.Fatalf("disarmed key fired: %v", due)
	}
	// Disarming an already-popped slot is a no-op, not a panic.
	w.Disarm("a", slot)
}

// TestWheelPastDeadline pins the clamp: a deadline already in the past
// must fire on the next sweep, not wait out a full wheel revolution.
func TestWheelPastDeadline(t *testing.T) {
	w := NewWheel[string](16, time.Millisecond)
	now := time.Now()
	w.Advance(now, nil) // move the cursor to now
	w.Arm("late", now.Add(-50*time.Millisecond))
	due := w.Advance(now.Add(2*time.Millisecond), nil)
	if len(due) != 1 || due[0].Key != "late" {
		t.Fatalf("past-deadline key fired %v, want [late]", due)
	}
}

// TestWheelBeyondHorizon pins wrap handling: a deadline more than one
// revolution out must not fire early when its slot is swept.
func TestWheelBeyondHorizon(t *testing.T) {
	w := NewWheel[string](8, time.Millisecond) // 8ms horizon
	now := time.Now()
	w.Arm("far", now.Add(20*time.Millisecond))
	if due := w.Advance(now.Add(10*time.Millisecond), nil); len(due) != 0 {
		t.Fatalf("beyond-horizon key fired a revolution early: %v", due)
	}
	due := w.Advance(now.Add(25*time.Millisecond), nil)
	if len(due) != 1 || due[0].Key != "far" {
		t.Fatalf("beyond-horizon key fired %v, want [far]", due)
	}
}

// TestWheelStall pins the long-stall sweep cap: after a pause longer than
// a full revolution, one Advance drains everything due without looping the
// slot array more than once.
func TestWheelStall(t *testing.T) {
	w := NewWheel[string](8, time.Millisecond)
	now := time.Now()
	for i, k := range []string{"a", "b", "c"} {
		w.Arm(k, now.Add(time.Duration(i+1)*time.Millisecond))
	}
	due := w.Advance(now.Add(time.Second), nil)
	if len(due) != 3 {
		t.Fatalf("after stall fired %d, want 3", len(due))
	}
	if w.Armed() != 0 {
		t.Fatalf("armed %d after stall sweep, want 0", w.Armed())
	}
}

// TestWheelRearmSameSlot pins the overwrite property: re-arming a key into
// the slot it already occupies replaces the filing instead of duplicating
// it (the map key is the peer), so Armed can never double-count a peer.
func TestWheelRearmSameSlot(t *testing.T) {
	w := NewWheel[string](16, time.Millisecond)
	now := time.Now()
	s1 := w.Arm("a", now.Add(3*time.Millisecond))
	s2 := w.Arm("a", now.Add(3*time.Millisecond))
	if s1 != s2 {
		t.Fatalf("same deadline filed to different slots %d/%d", s1, s2)
	}
	if w.Armed() != 1 {
		t.Fatalf("armed %d after re-arm, want 1", w.Armed())
	}
}
