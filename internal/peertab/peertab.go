// Package peertab is the sharded connection manager under every per-peer
// table in the stack. The paper's UD-based iWARP removes per-connection QP
// state so one QP serves arbitrarily many peers (§III); RDMAvisor draws the
// consequence for software: the demux from packet source to peer state must
// cost O(1) and contend on nothing, or the single QP just trades kernel
// state for a user-space lock convoy. Before this package, rudp, msg, and
// core each guarded a flat `map[addr]*state` with one endpoint-wide mutex —
// every send, every ACK, and every retransmit tick serialized all peers.
//
// The table is striped N ways by a caller-supplied hash (the same FNV-1a
// discipline as the placement workers, so one address computes one shard
// everywhere). Each shard separates its two concerns:
//
//   - Structural changes (insert, evict) take the shard mutex and publish a
//     new immutable snapshot map (copy-on-write). They are rare: once per
//     peer lifetime, not once per packet.
//   - The hot lookup loads the snapshot through an atomic pointer and
//     indexes a map no writer will ever mutate: no lock, no retry loop,
//     zero allocations (pinned by TestGetAllocFree and the hotpath
//     analyzer).
//
// Per-peer state lives in the Entry and is guarded by the Entry's own
// mutex, so two peers never contend once looked up. The shard lock orders
// strictly before the entry lock (declared via //diwarp:lockafter); callers
// must therefore never take a shard-structural operation while holding an
// entry lock — mark state under the entry lock, unlock, then Evict.
//
// Eviction discipline: an entry leaves the table in two steps — its `gone`
// flag flips under the entry lock (the linearization point; exactly one
// caller wins), then the shard removes it from the snapshot. Readers that
// looked up an entry before it went must lock it and check Gone before
// trusting it; Lookup and GetOrCreate wrap that retry loop.
package peertab

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// DefaultShards is the stripe count when Options.Shards is zero. 64 shards
// keep the COW insert cost trivial at typical peer counts while leaving
// lock contention negligible at 8–16 cores; soak-scale tables (100k+
// peers) raise it so each snapshot copy stays small.
const DefaultShards = 64

// ErrCapacity reports an insert rejected by Options.Capacity. The caller
// owns admission policy: rudp surfaces it from SendTo, the UD demux drops
// the packet. Rejections count in diwarp_peertab_admission_rejects_total.
var ErrCapacity = errors.New("peertab: table at capacity")

// Options configures a Table.
type Options struct {
	// Shards is the stripe count, rounded up to a power of two.
	// Zero selects DefaultShards.
	Shards int
	// Capacity bounds the table's total entry count; GetOrCreate returns
	// ErrCapacity beyond it. Zero means unbounded. The bound is checked
	// against a table-wide atomic outside any global lock, so concurrent
	// inserts on distinct shards may overshoot by at most Shards-1
	// entries — a bounded, harmless slack for an admission limit.
	Capacity int
}

// Entry is one peer's slot in a Table. Key and V are set before the entry
// is published and never change; V's fields are guarded by the entry lock
// (callers with internal atomics may bypass it where they document so).
type Entry[K comparable, V any] struct {
	Key K
	V   V

	// lastUsed is the Touch timestamp (unix nanos) EvictIdle compares
	// against. Atomic so hot-path readers can stamp it without the lock.
	lastUsed atomic.Int64

	// mu guards V and gone. It orders after the owning shard's mutex:
	// GetOrCreate and EvictIdle lock entries while holding shard.mu, so
	// taking shard.mu while holding an entry lock would deadlock.
	//diwarp:lockafter shard.mu
	mu   sync.Mutex
	gone bool
}

// Lock acquires the entry's state lock.
func (e *Entry[K, V]) Lock() { e.mu.Lock() }

// Unlock releases the entry's state lock.
func (e *Entry[K, V]) Unlock() { e.mu.Unlock() }

// Gone reports whether the entry has been evicted. Callers must hold the
// entry lock; a true result means the entry is (or is about to be) absent
// from the table and any state in V is orphaned — re-lookup the key.
func (e *Entry[K, V]) Gone() bool { return e.gone }

// Touch stamps the entry's idle clock. Hot paths call it with a timestamp
// they already have; EvictIdle treats the entry as busy until IdleFor
// exceeds the eviction threshold.
//
//diwarp:hotpath
func (e *Entry[K, V]) Touch(now int64) { e.lastUsed.Store(now) }

// IdleFor returns how long ago the entry was last touched.
func (e *Entry[K, V]) IdleFor(now time.Time) time.Duration {
	return time.Duration(now.UnixNano() - e.lastUsed.Load())
}

// shard is one stripe: a mutex serializing structural changes and an
// atomic pointer to the current immutable snapshot map.
type shard[K comparable, V any] struct {
	mu    sync.Mutex
	snap  atomic.Pointer[map[K]*Entry[K, V]]
	count atomic.Int64 // len of current snapshot, for imbalance telemetry
}

// Table is an N-way striped peer table. See the package comment for the
// locking and eviction discipline.
type Table[K comparable, V any] struct {
	hash   func(K) uint32
	shards []shard[K, V]
	mask   uint32
	cap    int
	len    atomic.Int64

	occupancy *telemetry.Gauge   // diwarp_peertab_occupancy
	shardMax  *telemetry.Gauge   // diwarp_peertab_shard_max
	shardMin  *telemetry.Gauge   // diwarp_peertab_shard_min
	evicted   *telemetry.Counter // diwarp_peertab_evictions_total
	rejected  *telemetry.Counter // diwarp_peertab_admission_rejects_total
}

// New builds a table striped by hash. The hash must be deterministic for a
// key's lifetime; FNV-1a over the address bytes (see hash.go) matches the
// placement-worker sharding so one peer hashes identically at every layer.
func New[K comparable, V any](hash func(K) uint32, opts Options) *Table[K, V] {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	t := &Table[K, V]{
		hash:      hash,
		shards:    make([]shard[K, V], pow),
		mask:      uint32(pow - 1),
		cap:       opts.Capacity,
		occupancy: telemetry.Default.Gauge("diwarp_peertab_occupancy"),
		shardMax:  telemetry.Default.Gauge("diwarp_peertab_shard_max"),
		shardMin:  telemetry.Default.Gauge("diwarp_peertab_shard_min"),
		evicted:   telemetry.Default.Counter("diwarp_peertab_evictions_total"),
		rejected:  telemetry.Default.Counter("diwarp_peertab_admission_rejects_total"),
	}
	empty := make(map[K]*Entry[K, V])
	for i := range t.shards {
		t.shards[i].snap.Store(&empty)
	}
	return t
}

// shardFor selects the stripe for a key.
//
//diwarp:hotpath
func (t *Table[K, V]) shardFor(k K) *shard[K, V] {
	return &t.shards[t.hash(k)&t.mask]
}

// Get returns the entry for k from the current snapshot, or nil. This is
// the datapath lookup: one atomic load and one read of an immutable map —
// no lock, no allocation. The entry may have been evicted concurrently;
// callers that mutate state must Lock and check Gone (or use Lookup).
//
//diwarp:hotpath
func (t *Table[K, V]) Get(k K) *Entry[K, V] {
	return (*t.shardFor(k).snap.Load())[k]
}

// Lookup returns the entry for k locked and alive, or nil if absent. It
// absorbs the evict race: a hit that went gone before the lock landed is
// retried against the snapshot, which the evictor is guaranteed to update
// without needing this entry's lock.
func (t *Table[K, V]) Lookup(k K) *Entry[K, V] {
	for {
		e := t.Get(k)
		if e == nil {
			return nil
		}
		e.mu.Lock()
		if !e.gone {
			//diwarp:ignore unlockcheck: lock hand-off is the contract — the caller receives the entry locked and alive, and must Unlock it
			return e
		}
		e.mu.Unlock()
	}
}

// GetOrCreate returns the live entry for k, creating it if absent. init,
// if non-nil, runs on a new entry before it becomes visible to any other
// goroutine (no lock needed inside). The returned entry is NOT locked and
// — like Get's result — may go stale; mutating callers should use
// LockOrCreate. created reports whether this call inserted the entry.
func (t *Table[K, V]) GetOrCreate(k K, init func(*Entry[K, V])) (e *Entry[K, V], created bool, err error) {
	if e := t.Get(k); e != nil {
		return e, false, nil
	}
	s := t.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.snap.Load()
	if e := old[k]; e != nil {
		// Re-check under the shard lock: a racing insert may have won. A
		// gone entry still in the snapshot (evictor between flag and
		// removal) is replaced here rather than returned, so callers'
		// retry loops terminate.
		e.mu.Lock()
		gone := e.gone
		e.mu.Unlock()
		if !gone {
			return e, false, nil
		}
	}
	if t.cap > 0 && int(t.len.Load()) >= t.cap {
		t.rejected.Inc()
		return nil, false, ErrCapacity
	}
	e = &Entry[K, V]{Key: k}
	e.lastUsed.Store(time.Now().UnixNano())
	if init != nil {
		init(e)
	}
	next := make(map[K]*Entry[K, V], len(old)+1)
	for kk, vv := range old {
		if kk == k {
			continue // the gone entry detected above
		}
		next[kk] = vv
	}
	next[k] = e
	s.snap.Store(&next)
	s.count.Store(int64(len(next)))
	t.len.Add(int64(len(next) - len(old)))
	t.occupancy.Add(int64(len(next) - len(old)))
	t.updateImbalance()
	return e, true, nil
}

// LockOrCreate is GetOrCreate with the evict race absorbed: the returned
// entry is locked and alive. The caller must Unlock it.
func (t *Table[K, V]) LockOrCreate(k K, init func(*Entry[K, V])) (e *Entry[K, V], created bool, err error) {
	for {
		e, created, err = t.GetOrCreate(k, init)
		if err != nil {
			return nil, false, err
		}
		e.mu.Lock()
		if !e.gone {
			//diwarp:ignore unlockcheck: lock hand-off is the contract — the caller receives the entry locked and alive, and must Unlock it
			return e, created, nil
		}
		e.mu.Unlock()
	}
}

// Evict removes k's current entry. Returns the evicted entry, or nil if k
// was absent (or already being evicted by another caller).
func (t *Table[K, V]) Evict(k K) *Entry[K, V] {
	e := t.Get(k)
	if e == nil || !t.EvictEntry(e) {
		return nil
	}
	return e
}

// EvictEntry removes exactly the entry e (not whatever currently maps to
// e.Key — a peer that died and was re-admitted must not have its fresh
// state torn down by a stale evictor). Exactly one caller wins the gone
// transition and gets true. The caller must NOT hold the entry lock: the
// flag flip takes it, and shard removal follows after it is released
// (shard.mu orders before Entry.mu).
func (t *Table[K, V]) EvictEntry(e *Entry[K, V]) bool {
	e.mu.Lock()
	if e.gone {
		e.mu.Unlock()
		return false
	}
	e.gone = true
	e.mu.Unlock()
	t.remove(e)
	t.evicted.Inc()
	return true
}

// remove deletes e from its shard's snapshot if still present. The
// pointer comparison makes removal idempotent against GetOrCreate having
// already replaced a gone entry.
func (t *Table[K, V]) remove(e *Entry[K, V]) {
	s := t.shardFor(e.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.snap.Load()
	if old[e.Key] != e {
		return
	}
	next := make(map[K]*Entry[K, V], len(old)-1)
	for kk, vv := range old {
		if vv != e {
			next[kk] = vv
		}
	}
	s.snap.Store(&next)
	s.count.Store(int64(len(next)))
	t.len.Add(-1)
	t.occupancy.Add(-1)
	t.updateImbalance()
}

// Range calls f for each entry in the table's current snapshots, stopping
// early if f returns false. Entries are visited unlocked; f must Lock and
// check Gone before mutating. The iteration is a consistent view per
// shard, not across shards — the same guarantee a scrape of a live table
// can promise.
func (t *Table[K, V]) Range(f func(*Entry[K, V]) bool) {
	for i := range t.shards {
		for _, e := range *t.shards[i].snap.Load() {
			if !f(e) {
				return
			}
		}
	}
}

// EvictIdle scans for entries idle longer than olderThan and evicts each
// one shouldEvict approves. shouldEvict runs under the entry lock and is
// where the owner tears down per-peer resources (recycle window buffers,
// disarm retransmit timers, wake blocked senders) — returning false vetoes
// the eviction (e.g. packets still unacknowledged). Returns the number
// evicted.
func (t *Table[K, V]) EvictIdle(olderThan time.Duration, shouldEvict func(*Entry[K, V]) bool) int {
	now := time.Now()
	cutoff := now.Add(-olderThan).UnixNano()
	evicted := 0
	for i := range t.shards {
		for _, e := range *t.shards[i].snap.Load() {
			if e.lastUsed.Load() > cutoff {
				continue
			}
			e.mu.Lock()
			if e.gone || e.lastUsed.Load() > cutoff || (shouldEvict != nil && !shouldEvict(e)) {
				e.mu.Unlock()
				continue
			}
			e.gone = true
			e.mu.Unlock()
			t.remove(e)
			t.evicted.Inc()
			evicted++
		}
	}
	return evicted
}

// Clear evicts every entry, calling teardown (if non-nil) under each
// entry's lock. For endpoint Close paths.
func (t *Table[K, V]) Clear(teardown func(*Entry[K, V])) {
	for i := range t.shards {
		for _, e := range *t.shards[i].snap.Load() {
			e.mu.Lock()
			if e.gone {
				e.mu.Unlock()
				continue
			}
			e.gone = true
			if teardown != nil {
				teardown(e)
			}
			e.mu.Unlock()
			t.remove(e)
			t.evicted.Inc()
		}
	}
}

// Len returns the current entry count.
func (t *Table[K, V]) Len() int { return int(t.len.Load()) }

// Stats is a point-in-time occupancy summary.
type Stats struct {
	Occupancy int // total entries
	Shards    int // stripe count
	ShardMax  int // most-loaded stripe
	ShardMin  int // least-loaded stripe
}

// Stats recomputes and returns the occupancy summary, refreshing the
// imbalance gauges as a side effect.
func (t *Table[K, V]) Stats() Stats {
	max, min := t.updateImbalance()
	return Stats{
		Occupancy: t.Len(),
		Shards:    len(t.shards),
		ShardMax:  int(max),
		ShardMin:  int(min),
	}
}

// updateImbalance refreshes the shard max/min gauges from the per-shard
// counters. O(Shards) atomic loads on the structural-change path — cheap
// against a copy-on-write insert, and never on the packet path.
func (t *Table[K, V]) updateImbalance() (max, min int64) {
	min = int64(^uint64(0) >> 1)
	for i := range t.shards {
		n := t.shards[i].count.Load()
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	t.shardMax.Set(max)
	t.shardMin.Set(min)
	return max, min
}
