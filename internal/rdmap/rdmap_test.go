package rdmap

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestCtrlRoundTrip(t *testing.T) {
	for _, op := range []Opcode{OpWrite, OpReadReq, OpReadResp, OpSend, OpSendSE, OpTerminate, OpWriteRecord} {
		got, err := ParseCtrl(Ctrl(op))
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if got != op {
			t.Fatalf("round trip %s -> %s", op, got)
		}
	}
}

func TestParseCtrlRejects(t *testing.T) {
	if _, err := ParseCtrl(0x00); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
	// Correct version, reserved opcode 0x7.
	if _, err := ParseCtrl(byte(Version)<<6 | 0x7); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("opcode: %v", err)
	}
	// OpSendInv is defined but unimplemented: rejected.
	if _, err := ParseCtrl(Ctrl(OpSendInv)); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("sendinv: %v", err)
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpWriteRecord.String() != "RDMA_WRITE_RECORD" {
		t.Fatalf("got %q", OpWriteRecord.String())
	}
	if !strings.HasPrefix(Opcode(0xe).String(), "OPCODE_") {
		t.Fatalf("got %q", Opcode(0xe).String())
	}
}

func TestReadReqRoundTrip(t *testing.T) {
	in := ReadReq{
		SinkSTag: 0x11223344,
		SinkTO:   1 << 33,
		Len:      4096,
		SrcSTag:  0x55667788,
		SrcTO:    12345,
	}
	wire := in.Append(nil)
	if len(wire) != ReadReqLen {
		t.Fatalf("wire length %d", len(wire))
	}
	out, err := ParseReadReq(wire)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("%+v vs %+v", out, in)
	}
}

func TestReadReqRoundTripQuick(t *testing.T) {
	f := func(a uint32, b uint64, c, d uint32, e uint64) bool {
		in := ReadReq{SinkSTag: a, SinkTO: b, Len: c, SrcSTag: d, SrcTO: e}
		out, err := ParseReadReq(in.Append(nil))
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadReqShort(t *testing.T) {
	if _, err := ParseReadReq(make([]byte, ReadReqLen-1)); !errors.Is(err, ErrShort) {
		t.Fatalf("err = %v", err)
	}
}

func TestTerminateRoundTrip(t *testing.T) {
	in := Terminate{Layer: LayerDDP, Code: TermBaseBounds, Info: "offset 9999 beyond region"}
	out, err := ParseTerminate(in.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("%+v vs %+v", out, in)
	}
	if !strings.Contains(out.Error(), "offset 9999") {
		t.Fatalf("Error() = %q", out.Error())
	}
}

func TestTerminateLongInfoTruncated(t *testing.T) {
	in := Terminate{Layer: LayerRDMAP, Code: TermCatastrophic, Info: strings.Repeat("x", 300)}
	out, err := ParseTerminate(in.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Info) != 255 {
		t.Fatalf("info length %d", len(out.Info))
	}
}

func TestTerminateShort(t *testing.T) {
	if _, err := ParseTerminate([]byte{0, 0}); !errors.Is(err, ErrShort) {
		t.Fatalf("err = %v", err)
	}
	// Declared info longer than the buffer.
	if _, err := ParseTerminate([]byte{0, 0, 0, 10, 'a'}); !errors.Is(err, ErrShort) {
		t.Fatalf("err = %v", err)
	}
}
