package rdmap

import (
	"testing"
)

// FuzzRDMAPHeader round-trips the RDMAP wire encodings — the control byte,
// Read Request payloads, and Terminate payloads — and feeds the raw fuzz
// bytes to every parser as hostile input: decoding must reject or succeed,
// never panic.
func FuzzRDMAPHeader(f *testing.F) {
	f.Add(byte(OpReadReq), uint32(1), uint64(2), uint32(3), uint32(4), uint64(5), byte(1), uint16(0x02), "access violation", []byte{0xff})
	f.Add(byte(0x0f), uint32(0), uint64(0), uint32(0), uint32(0), uint64(0), byte(0), uint16(0), "", []byte{})
	f.Fuzz(func(t *testing.T, op byte, sinkSTag uint32, sinkTO uint64, length, srcSTag uint32, srcTO uint64, layer byte, code uint16, info string, raw []byte) {
		// Control byte: every defined opcode survives Ctrl/ParseCtrl.
		opc := Opcode(op & 0x0f)
		got, err := ParseCtrl(Ctrl(opc))
		switch opc {
		case OpWrite, OpReadReq, OpReadResp, OpSend, OpSendSE, OpTerminate, OpWriteRecord:
			if err != nil {
				t.Fatalf("ParseCtrl rejected own encoding of %s: %v", opc, err)
			}
			if got != opc {
				t.Fatalf("control byte round-trip: sent %s, got %s", opc, got)
			}
		default:
			if err == nil {
				t.Fatalf("ParseCtrl accepted undefined opcode %#x", byte(opc))
			}
		}

		// Read Request payload.
		rr := ReadReq{SinkSTag: sinkSTag, SinkTO: sinkTO, Len: length, SrcSTag: srcSTag, SrcTO: srcTO}
		enc := rr.Append(nil)
		if len(enc) != ReadReqLen {
			t.Fatalf("ReadReq.Append wrote %d bytes, ReadReqLen is %d", len(enc), ReadReqLen)
		}
		dec, err := ParseReadReq(enc)
		if err != nil {
			t.Fatalf("ParseReadReq rejected own encoding: %v", err)
		}
		if dec != rr {
			t.Fatalf("read request round-trip mismatch:\n in: %+v\nout: %+v", rr, dec)
		}

		// Terminate payload; Info is truncated to 255 bytes on the wire.
		tm := Terminate{Layer: TermLayer(layer), Code: TermCode(code), Info: info}
		decT, err := ParseTerminate(tm.Append(nil))
		if err != nil {
			t.Fatalf("ParseTerminate rejected own encoding: %v", err)
		}
		wantInfo := info
		if len(wantInfo) > 255 {
			wantInfo = wantInfo[:255]
		}
		if decT.Layer != tm.Layer || decT.Code != tm.Code || decT.Info != wantInfo {
			t.Fatalf("terminate round-trip mismatch:\n in: %+v\nout: %+v", tm, decT)
		}

		// Hostile input: arbitrary bytes must never panic a parser.
		_, _ = ParseCtrl(op)
		_, _ = ParseReadReq(raw)
		_, _ = ParseTerminate(raw)
	})
}
