// Package rdmap implements the RDMA Protocol layer (Recio et al., RDMA
// Consortium 2002) plus the paper's datagram extensions: the operation
// opcodes, the control byte that rides in DDP's reserved octet, the RDMA
// Read Request wire format, and Terminate messages.
//
// RDMAP is deliberately thin — "a relatively lightweight layer" (§II) — so
// this package is mostly wire formats and semantics constants; the engine
// that executes operations is internal/core. The one protocol addition over
// the 2002 specification is OpWriteRecord, the paper's §IV.B.3 contribution:
// a tagged, truly one-sided write usable over unreliable delivery, completed
// at the target by recording placements rather than by consuming a receive.
package rdmap

import (
	"errors"
	"fmt"

	"repro/internal/nio"
)

// Opcode identifies an RDMAP operation on the wire.
type Opcode byte

// RDMAP opcodes. Values 0x0–0x6 follow the RDMAP specification;
// OpWriteRecord is the paper's extension (a previously reserved value).
const (
	OpWrite       Opcode = 0x0 // tagged: RDMA Write (RC only)
	OpReadReq     Opcode = 0x1 // untagged on QN 1: RDMA Read Request
	OpReadResp    Opcode = 0x2 // tagged: RDMA Read Response
	OpSend        Opcode = 0x3 // untagged on QN 0: Send
	OpSendInv     Opcode = 0x4 // Send with Invalidate (unimplemented)
	OpSendSE      Opcode = 0x5 // Send with Solicited Event
	OpTerminate   Opcode = 0x6 // untagged on QN 2: Terminate
	OpWriteRecord Opcode = 0x8 // tagged: RDMA Write-Record (paper §IV.B.3)
)

func (o Opcode) String() string {
	switch o {
	case OpWrite:
		return "RDMA_WRITE"
	case OpReadReq:
		return "RDMA_READ_REQ"
	case OpReadResp:
		return "RDMA_READ_RESP"
	case OpSend:
		return "SEND"
	case OpSendInv:
		return "SEND_INV"
	case OpSendSE:
		return "SEND_SE"
	case OpTerminate:
		return "TERMINATE"
	case OpWriteRecord:
		return "RDMA_WRITE_RECORD"
	default:
		return fmt.Sprintf("OPCODE_%#x", byte(o))
	}
}

// Version is the RDMAP protocol version.
const Version = 1

// Wire errors.
var (
	ErrBadVersion = errors.New("rdmap: unsupported version")
	ErrBadOpcode  = errors.New("rdmap: reserved or unknown opcode")
	ErrShort      = errors.New("rdmap: message too short")
)

// Ctrl builds the RDMAP control byte: version in the top two bits, opcode
// in the low four.
func Ctrl(op Opcode) byte { return byte(Version)<<6 | byte(op)&0x0f }

// ParseCtrl validates and splits an RDMAP control byte.
func ParseCtrl(b byte) (Opcode, error) {
	if b>>6 != Version {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, b>>6)
	}
	op := Opcode(b & 0x0f)
	switch op {
	case OpWrite, OpReadReq, OpReadResp, OpSend, OpSendSE, OpTerminate, OpWriteRecord:
		return op, nil
	default:
		return 0, fmt.Errorf("%w: %s", ErrBadOpcode, op)
	}
}

// ReadReq is the payload of an RDMA Read Request (untagged, QN 1): it names
// the requester's sink buffer and the responder's source buffer.
type ReadReq struct {
	SinkSTag uint32
	SinkTO   uint64
	Len      uint32
	SrcSTag  uint32
	SrcTO    uint64
}

// ReadReqLen is the wire length of a Read Request payload.
const ReadReqLen = 4 + 8 + 4 + 4 + 8

// Append encodes the request onto dst.
func (r *ReadReq) Append(dst []byte) []byte {
	dst = nio.PutU32(dst, r.SinkSTag)
	dst = nio.PutU64(dst, r.SinkTO)
	dst = nio.PutU32(dst, r.Len)
	dst = nio.PutU32(dst, r.SrcSTag)
	dst = nio.PutU64(dst, r.SrcTO)
	return dst
}

// ParseReadReq decodes a Read Request payload.
func ParseReadReq(p []byte) (ReadReq, error) {
	if len(p) < ReadReqLen {
		return ReadReq{}, fmt.Errorf("%w: read request %d bytes", ErrShort, len(p))
	}
	return ReadReq{
		SinkSTag: nio.U32(p),
		SinkTO:   nio.U64(p[4:]),
		Len:      nio.U32(p[12:]),
		SrcSTag:  nio.U32(p[16:]),
		SrcTO:    nio.U64(p[20:]),
	}, nil
}

// TermLayer identifies which protocol layer raised a Terminate.
type TermLayer byte

// Terminate-originating layers.
const (
	LayerRDMAP TermLayer = 0
	LayerDDP   TermLayer = 1
	LayerLLP   TermLayer = 2
)

// TermCode classifies a Terminate error.
type TermCode uint16

// Terminate error codes (condensed from the specification's table).
const (
	TermInvalidSTag     TermCode = 0x00
	TermBaseBounds      TermCode = 0x01
	TermAccessViolation TermCode = 0x02
	TermPDMismatch      TermCode = 0x03
	TermWrapError       TermCode = 0x04
	TermInvalidVersion  TermCode = 0x05
	TermInvalidOpcode   TermCode = 0x06
	TermCatastrophic    TermCode = 0xff
)

// Terminate is the RDMAP error-report message (untagged, QN 2). In RC mode
// it precedes connection teardown; in UD mode — per the paper's relaxation
// of DDP §5 item 8 — errors "are simply reported, but the QP is not forced
// into the error state".
type Terminate struct {
	Layer TermLayer
	Code  TermCode
	Info  string // diagnostic text, truncated to 255 bytes on the wire
}

// Append encodes the Terminate payload onto dst.
func (t *Terminate) Append(dst []byte) []byte {
	info := t.Info
	if len(info) > 255 {
		info = info[:255]
	}
	dst = append(dst, byte(t.Layer))
	dst = nio.PutU16(dst, uint16(t.Code))
	dst = append(dst, byte(len(info)))
	return append(dst, info...)
}

// ParseTerminate decodes a Terminate payload.
func ParseTerminate(p []byte) (Terminate, error) {
	if len(p) < 4 {
		return Terminate{}, fmt.Errorf("%w: terminate %d bytes", ErrShort, len(p))
	}
	n := int(p[3])
	if len(p) < 4+n {
		return Terminate{}, fmt.Errorf("%w: terminate info truncated", ErrShort)
	}
	return Terminate{
		Layer: TermLayer(p[0]),
		Code:  TermCode(nio.U16(p[1:])),
		Info:  string(p[4 : 4+n]),
	}, nil
}

func (t Terminate) Error() string {
	return fmt.Sprintf("rdmap: terminate layer=%d code=%#x: %s", t.Layer, t.Code, t.Info)
}
