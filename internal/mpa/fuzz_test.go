package mpa

import (
	"bytes"
	"testing"

	"repro/internal/nio"
)

// fuzzConfigs spans the framing matrix the stack actually runs: defaults,
// markerless, CRC off, a short marker period (many markers per FPDU), and
// the markerless+no-CRC ablation.
var fuzzConfigs = []Config{
	{},
	{MarkerInterval: -1},
	{DisableCRC: true},
	{MarkerInterval: 128},
	{MarkerInterval: -1, DisableCRC: true},
}

// FuzzMPAHeader round-trips fuzzed ULPDUs through a connected MPA pair —
// length header, padding, markers, and CRC are all exercised by Send and
// undone by Recv — across the configuration matrix. Any payload mutation,
// marker misplacement, or CRC disagreement shows up as a mismatch or a
// framing error.
func FuzzMPAHeader(f *testing.F) {
	f.Add([]byte("ulpdu"), byte(0))
	f.Add([]byte{}, byte(1))
	f.Add(bytes.Repeat([]byte{0xa5}, 600), byte(3)) // several marker periods
	f.Fuzz(func(t *testing.T, payload []byte, sel byte) {
		cfg := fuzzConfigs[int(sel)%len(fuzzConfigs)]
		if len(payload) > DefaultMaxULPDU {
			payload = payload[:DefaultMaxULPDU]
		}
		a, b := connPair(t, cfg)
		sent := make(chan error, 1)
		go func() { sent <- a.Send(nio.VecOf(payload)) }()
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv (cfg %+v): %v", cfg, err)
		}
		if err := <-sent; err != nil {
			t.Fatalf("Send (cfg %+v): %v", cfg, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round-trip mismatch (cfg %+v): sent %d bytes, got %d", cfg, len(payload), len(got))
		}
	})
}
