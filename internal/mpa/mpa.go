// Package mpa implements Marker PDU Aligned framing (Culley et al., RDMA
// Consortium 2002): the adaptation shim that lets the message-oriented DDP
// layer ride the stream-oriented TCP. Each upper-layer PDU (ULPDU) is
// wrapped in an FPDU carrying a length header, pad, and CRC32C; markers are
// inserted into the byte stream every MarkerInterval octets, each pointing
// back at the FPDU header so a receiver can resynchronise after middle-box
// resegmentation.
//
// The paper's motivation for datagram-iWARP starts here: "packet marking ...
// is a high overhead activity and is very expensive to implement in
// hardware" (§IV.A), while "such functionality is not needed for datagrams
// as they have defined message boundaries" (§II). Datagram mode bypasses
// this package entirely (Figure 2: "MPA bypassed for datagrams"); RC mode
// pays for it on every byte. The cost difference between those two paths is
// physical, not simulated: the marker copies and CRC below execute for real
// in the RC benchmarks.
//
// Simplification vs. the wire spec: the CRC is computed over the unmarked
// FPDU rather than the marked byte stream, which keeps the per-byte cost
// identical while making the framing logic independent of marker phase.
package mpa

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/crcx"
	"repro/internal/nio"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Framing and negotiation errors.
var (
	ErrCRC       = errors.New("mpa: FPDU CRC mismatch")
	ErrTooLong   = errors.New("mpa: ULPDU exceeds MULPDU")
	ErrBadFrame  = errors.New("mpa: malformed FPDU")
	ErrBadReqRep = errors.New("mpa: malformed MPA request/reply frame")
	ErrRejected  = errors.New("mpa: connection rejected by responder")
)

// DefaultMarkerInterval is the spec-mandated 512-octet marker period.
const DefaultMarkerInterval = 512

// markerLen is the size of one marker: a 16-bit FPDU pointer plus 16 bits
// reserved.
const markerLen = 4

// DefaultMaxULPDU sizes FPDUs so that one FPDU plus TCP/IP headers fits an
// Ethernet frame (1500 - 20 IP - 20 TCP - 2 len - 4 CRC - worst-case one
// marker), matching how an RNIC picks its MULPDU from the path MSS.
const DefaultMaxULPDU = 1450

// Config parameterises an MPA connection.
type Config struct {
	// MarkerInterval is the marker period in stream octets; 0 disables
	// markers (legal per spec if both sides agree — our "markerless RC"
	// ablation). Default DefaultMarkerInterval.
	MarkerInterval int
	// DisableCRC turns off the FPDU CRC (the spec allows disabling it when
	// the LLP checksum is trusted — the CRC ablation benchmark).
	DisableCRC bool
	// MaxULPDU is the largest ULPDU carried in one FPDU.
	// Default DefaultMaxULPDU.
	MaxULPDU int
}

func (c Config) withDefaults() Config {
	if c.MarkerInterval == 0 {
		c.MarkerInterval = DefaultMarkerInterval
	}
	if c.MarkerInterval < 0 {
		c.MarkerInterval = 0 // explicit "no markers"
	}
	if c.MaxULPDU == 0 {
		c.MaxULPDU = DefaultMaxULPDU
	}
	return c
}

// Conn frames ULPDUs over a reliable stream. One goroutine may call Send
// concurrently with one goroutine calling Recv; Send and Recv are
// individually serialised by internal locks.
type Conn struct {
	stream transport.Stream
	cfg    Config

	sendMu  sync.Mutex
	sendPos uint64 // octets of marked stream emitted so far
	sendBuf []byte

	recvMu   sync.Mutex
	recvPos  uint64
	rd       io.Reader
	ulpduBuf []byte

	// Buffer capacities mirrored atomically so BufferFootprint never
	// contends with a receive loop blocked inside Recv holding recvMu.
	sendBufCap atomic.Int64
	recvBufCap atomic.Int64

	// crcFail counts FPDUs rejected on CRC, on the telemetry registry
	// (DESIGN.md §4.6). On RC a CRC failure is fatal to the connection, so
	// a non-zero count pairs with a torn-down QP.
	crcFail *telemetry.Counter
}

// NewConn wraps an established stream (after any MPA negotiation) with the
// given framing configuration. Both ends must use identical Config — that
// is what Connect/Accept negotiate.
func NewConn(s transport.Stream, cfg Config) *Conn {
	cfg = cfg.withDefaults()
	return &Conn{
		stream:  s,
		cfg:     cfg,
		rd:      s,
		crcFail: telemetry.Default.Counter("diwarp_mpa_crc_fail_total"),
	}
}

// MaxULPDU reports the largest payload Send accepts.
func (c *Conn) MaxULPDU() int { return c.cfg.MaxULPDU }

// Stream returns the underlying transport stream.
func (c *Conn) Stream() transport.Stream { return c.stream }

// BufferFootprint reports the bytes of framing buffers the connection has
// grown (send assembly, receive reassembly), for socket memory accounting.
// Lock-free: reads atomic mirrors so it is safe to call while the receive
// loop is blocked mid-Recv.
func (c *Conn) BufferFootprint() int64 {
	return c.sendBufCap.Load() + c.recvBufCap.Load()
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.stream.Close() }

// Send frames one ULPDU (given as a gather vector) into an FPDU, inserts
// any markers that fall within it, and writes it to the stream.
func (c *Conn) Send(ulpdu nio.Vec) error {
	n := ulpdu.Len()
	if n > c.cfg.MaxULPDU {
		return fmt.Errorf("%w: %d > %d", ErrTooLong, n, c.cfg.MaxULPDU)
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()

	// Assemble the unmarked FPDU: 2-byte length, payload, pad to 4, CRC.
	pad := (4 - (2+n)%4) % 4
	raw := c.sendBuf[:0]
	raw = nio.PutU16(raw, uint16(n))
	for _, seg := range ulpdu {
		raw = append(raw, seg...)
	}
	for i := 0; i < pad; i++ {
		raw = append(raw, 0)
	}
	if !c.cfg.DisableCRC {
		raw = nio.PutU32(raw, crcx.Checksum(raw))
	}
	c.sendBuf = raw[:0] // keep the (possibly grown) backing array
	c.sendBufCap.Store(int64(cap(raw)))

	return c.writeMarked(raw)
}

// writeMarked emits raw into the stream, inserting a marker whenever the
// stream position crosses a multiple of the marker interval. The marker's
// FPDU pointer records the distance back to the current FPDU's start.
func (c *Conn) writeMarked(raw []byte) error {
	mi := c.cfg.MarkerInterval
	if mi == 0 {
		_, err := c.stream.Write(raw)
		c.sendPos += uint64(len(raw))
		return err
	}
	fpduStart := c.sendPos
	out := make([]byte, 0, len(raw)+markerLen*(len(raw)/mi+2))
	for len(raw) > 0 {
		if c.sendPos%uint64(mi) == 0 {
			back := c.sendPos - fpduStart
			out = nio.PutU16(out, uint16(back))
			out = nio.PutU16(out, 0)
			c.sendPos += markerLen
			// Markers occupy stream octets but do not move the marker
			// phase: the next marker is one interval after this one, so
			// account for the marker bytes against the interval.
		}
		room := mi - int(c.sendPos%uint64(mi))
		k := min(room, len(raw))
		out = append(out, raw[:k]...)
		raw = raw[k:]
		c.sendPos += uint64(k)
	}
	_, err := c.stream.Write(out)
	return err
}

// readUnmarked fills p with the next len(p) octets of unmarked FPDU data,
// consuming and discarding any markers encountered.
func (c *Conn) readUnmarked(p []byte) error {
	mi := c.cfg.MarkerInterval
	if mi == 0 {
		_, err := io.ReadFull(c.rd, p)
		c.recvPos += uint64(len(p))
		return err
	}
	var mk [markerLen]byte
	for len(p) > 0 {
		if c.recvPos%uint64(mi) == 0 {
			if _, err := io.ReadFull(c.rd, mk[:]); err != nil {
				return err
			}
			c.recvPos += markerLen
		}
		room := mi - int(c.recvPos%uint64(mi))
		k := min(room, len(p))
		if _, err := io.ReadFull(c.rd, p[:k]); err != nil {
			return err
		}
		c.recvPos += uint64(k)
		p = p[k:]
	}
	return nil
}

// Recv reads the next ULPDU from the stream, verifying the FPDU CRC. The
// returned slice is valid until the next Recv call.
func (c *Conn) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()

	var hdr [2]byte
	if err := c.readUnmarked(hdr[:]); err != nil {
		return nil, err
	}
	n := int(nio.U16(hdr[:]))
	if n > c.cfg.MaxULPDU {
		return nil, fmt.Errorf("%w: length %d > MULPDU %d", ErrBadFrame, n, c.cfg.MaxULPDU)
	}
	pad := (4 - (2+n)%4) % 4
	rest := n + pad
	if !c.cfg.DisableCRC {
		rest += crcx.Size
	}
	if cap(c.ulpduBuf) < rest {
		c.ulpduBuf = make([]byte, rest)
		c.recvBufCap.Store(int64(cap(c.ulpduBuf)))
	}
	body := c.ulpduBuf[:rest]
	if err := c.readUnmarked(body); err != nil {
		return nil, err
	}
	if !c.cfg.DisableCRC {
		want := nio.U32(body[n+pad:])
		got := crcx.Update(crcx.Checksum(hdr[:]), body[:n+pad])
		if got != want {
			c.crcFail.Inc()
			telemetry.DefaultTrace.Record(telemetry.EvCRCFail, telemetry.PeerToken(c.stream.RemoteAddr()), n, 0)
			return nil, ErrCRC
		}
	}
	return body[:n], nil
}
