package mpa

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/nio"
	"repro/internal/transport"
)

// MPA connection setup: before FPDU traffic starts, initiator and responder
// exchange Request and Reply frames that carry the protocol revision, the
// marker (M) and CRC (C) flags, and optional ULP private data. Both sides
// must end up with identical framing parameters; per the spec, a feature is
// enabled only if both peers asked for it.

var reqKey = [6]byte{'M', 'P', 'A', ' ', 'I', 'D'} // shortened req/rep key

const (
	flagMarkers = 1 << 7
	flagCRC     = 1 << 6
	flagReject  = 1 << 5
	mpaRevision = 1
)

func sendReqRep(s transport.Stream, cfg Config, reject bool, private []byte) error {
	if len(private) > 512 {
		return fmt.Errorf("%w: private data %d > 512", ErrBadReqRep, len(private))
	}
	var flags byte
	if cfg.MarkerInterval > 0 {
		flags |= flagMarkers
	}
	if !cfg.DisableCRC {
		flags |= flagCRC
	}
	if reject {
		flags |= flagReject
	}
	frame := make([]byte, 0, len(reqKey)+4+len(private))
	frame = append(frame, reqKey[:]...)
	frame = append(frame, flags, mpaRevision)
	frame = nio.PutU16(frame, uint16(len(private)))
	frame = append(frame, private...)
	_, err := s.Write(frame)
	return err
}

func recvReqRep(s transport.Stream) (flags byte, private []byte, err error) {
	hdr := make([]byte, len(reqKey)+4)
	if _, err := io.ReadFull(s, hdr); err != nil {
		return 0, nil, err
	}
	if !bytes.Equal(hdr[:len(reqKey)], reqKey[:]) {
		return 0, nil, fmt.Errorf("%w: bad key %q", ErrBadReqRep, hdr[:len(reqKey)])
	}
	flags = hdr[len(reqKey)]
	if rev := hdr[len(reqKey)+1]; rev != mpaRevision {
		return 0, nil, fmt.Errorf("%w: revision %d", ErrBadReqRep, rev)
	}
	n := int(nio.U16(hdr[len(reqKey)+2:]))
	if n > 512 {
		return 0, nil, fmt.Errorf("%w: private data %d", ErrBadReqRep, n)
	}
	if n > 0 {
		private = make([]byte, n)
		if _, err := io.ReadFull(s, private); err != nil {
			return 0, nil, err
		}
	}
	return flags, private, nil
}

// merge reconciles the local configuration with the peer's advertised
// flags: markers and CRC are used only if both sides enabled them. The
// result may carry the -1 "markers disabled" sentinel, which NewConn's
// defaulting resolves; merge must not re-default, or a disabled feature
// would bounce back to its default.
func merge(cfg Config, peerFlags byte) Config {
	// cfg arrives already defaulted, so MarkerInterval == 0 means "disabled
	// locally" here, not "use default".
	if cfg.MarkerInterval == 0 || peerFlags&flagMarkers == 0 {
		cfg.MarkerInterval = -1
	}
	if peerFlags&flagCRC == 0 {
		cfg.DisableCRC = true
	}
	return cfg
}

// Connect runs the initiator side of MPA setup on an established stream and
// returns the framed connection plus the responder's private data.
func Connect(s transport.Stream, cfg Config, private []byte) (*Conn, []byte, error) {
	cfg = cfg.withDefaults()
	if err := sendReqRep(s, cfg, false, private); err != nil {
		return nil, nil, err
	}
	flags, peerPriv, err := recvReqRep(s)
	if err != nil {
		return nil, nil, err
	}
	if flags&flagReject != 0 {
		return nil, peerPriv, ErrRejected
	}
	return NewConn(s, merge(cfg, flags)), peerPriv, nil
}

// Accept runs the responder side of MPA setup and returns the framed
// connection plus the initiator's private data.
func Accept(s transport.Stream, cfg Config, private []byte) (*Conn, []byte, error) {
	cfg = cfg.withDefaults()
	flags, peerPriv, err := recvReqRep(s)
	if err != nil {
		return nil, nil, err
	}
	if err := sendReqRep(s, cfg, false, private); err != nil {
		return nil, nil, err
	}
	return NewConn(s, merge(cfg, flags)), peerPriv, nil
}

// Reject refuses an incoming MPA request, telling the initiator to tear
// down, and closes the stream.
func Reject(s transport.Stream, private []byte) error {
	if _, _, err := recvReqRep(s); err != nil {
		s.Close()
		return err
	}
	err := sendReqRep(s, Config{}, true, private)
	s.Close()
	return err
}
