package mpa

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nio"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// streamPair returns two connected simnet streams.
func streamPair(t *testing.T) (transport.Stream, transport.Stream) {
	t.Helper()
	n := simnet.New(simnet.Config{})
	l, err := n.Listen("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan transport.Stream, 1)
	go func() {
		s, err := l.Accept()
		if err == nil {
			accepted <- s
		}
	}()
	c, err := n.Dial("cli", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	s := <-accepted
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func connPair(t *testing.T, cfg Config) (*Conn, *Conn) {
	t.Helper()
	c, s := streamPair(t)
	return NewConn(c, cfg), NewConn(s, cfg)
}

func TestSendRecvSmall(t *testing.T) {
	a, b := connPair(t, Config{})
	msg := []byte("ulpdu payload")
	done := make(chan error, 1)
	go func() { done <- a.Send(nio.VecOf(msg)) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvManySizes(t *testing.T) {
	for _, cfg := range []Config{
		{},                                     // markers + CRC (standard RC)
		{MarkerInterval: -1},                   // no markers
		{DisableCRC: true},                     // no CRC
		{MarkerInterval: -1, DisableCRC: true}, // bare framing
		{MarkerInterval: 128},                  // dense markers
	} {
		a, b := connPair(t, cfg)
		rng := rand.New(rand.NewSource(7))
		var sent [][]byte
		for _, n := range []int{0, 1, 2, 3, 4, 5, 127, 128, 129, 511, 512, 513, 1000, a.MaxULPDU()} {
			p := make([]byte, n)
			rng.Read(p)
			sent = append(sent, p)
		}
		go func() {
			for _, p := range sent {
				if err := a.Send(nio.VecOf(p)); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
		for i, want := range sent {
			got, err := b.Recv()
			if err != nil {
				t.Fatalf("cfg %+v msg %d: %v", cfg, i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("cfg %+v msg %d: %d bytes vs %d", cfg, i, len(got), len(want))
			}
		}
	}
}

func TestSendGatherVector(t *testing.T) {
	a, b := connPair(t, Config{})
	go func() {
		if err := a.Send(nio.VecOf([]byte("hea"), []byte("der+"), []byte("payload"))); err != nil {
			t.Error(err)
		}
	}()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hea"+"der+"+"payload" {
		t.Fatalf("got %q", got)
	}
}

func TestSendTooLong(t *testing.T) {
	a, _ := connPair(t, Config{})
	err := a.Send(nio.VecOf(make([]byte, a.MaxULPDU()+1)))
	if !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v", err)
	}
}

// corruptingStream flips one byte of the k-th write.
type corruptingStream struct {
	transport.Stream
	writes int
	target int
}

func (cs *corruptingStream) Write(p []byte) (int, error) {
	cs.writes++
	if cs.writes == cs.target && len(p) > 10 {
		q := append([]byte(nil), p...)
		q[len(q)/2] ^= 0xFF
		return cs.Stream.Write(q)
	}
	return cs.Stream.Write(p)
}

func TestRecvDetectsCorruption(t *testing.T) {
	c, s := streamPair(t)
	// MPA sends one Write per FPDU: corrupt the first.
	a := NewConn(&corruptingStream{Stream: c, target: 1}, Config{})
	b := NewConn(s, Config{})
	go a.Send(nio.VecOf(bytes.Repeat([]byte("x"), 600)))
	if _, err := b.Recv(); !errors.Is(err, ErrCRC) {
		t.Fatalf("err = %v, want ErrCRC", err)
	}
}

func TestCorruptionUndetectedWithoutCRC(t *testing.T) {
	c, s := streamPair(t)
	cfg := Config{DisableCRC: true}
	a := NewConn(&corruptingStream{Stream: c, target: 1}, cfg)
	b := NewConn(s, cfg)
	go a.Send(nio.VecOf(bytes.Repeat([]byte("x"), 600)))
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, bytes.Repeat([]byte("x"), 600)) {
		t.Fatal("corruption did not occur")
	}
}

// Property: any sequence of random ULPDUs survives mark ∘ unmark framing
// regardless of marker phase.
func TestFramingRoundTripQuick(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		c, s := streamPairQuick()
		defer c.Close()
		defer s.Close()
		a := NewConn(c, Config{MarkerInterval: 64})
		b := NewConn(s, Config{MarkerInterval: 64})
		rng := rand.New(rand.NewSource(seed))
		n := int(count%20) + 1
		msgs := make([][]byte, n)
		for i := range msgs {
			msgs[i] = make([]byte, rng.Intn(1400))
			rng.Read(msgs[i])
		}
		errc := make(chan error, 1)
		go func() {
			for _, m := range msgs {
				if err := a.Send(nio.VecOf(m)); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
		for _, want := range msgs {
			got, err := b.Recv()
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return <-errc == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// streamPairQuick builds a pair without a *testing.T for quick.Check.
func streamPairQuick() (transport.Stream, transport.Stream) {
	n := simnet.New(simnet.Config{})
	l, _ := n.Listen("srv", 0)
	ch := make(chan transport.Stream, 1)
	go func() {
		s, err := l.Accept()
		if err == nil {
			ch <- s
		}
	}()
	c, _ := n.Dial("cli", l.Addr())
	return c, <-ch
}

func TestNegotiation(t *testing.T) {
	c, s := streamPair(t)
	type result struct {
		conn *Conn
		priv []byte
		err  error
	}
	rch := make(chan result, 1)
	go func() {
		conn, priv, err := Accept(s, Config{}, []byte("server-hello"))
		rch <- result{conn, priv, err}
	}()
	cc, priv, err := Connect(c, Config{}, []byte("client-hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(priv) != "server-hello" {
		t.Fatalf("client saw private data %q", priv)
	}
	r := <-rch
	if r.err != nil {
		t.Fatal(r.err)
	}
	if string(r.priv) != "client-hello" {
		t.Fatalf("server saw private data %q", r.priv)
	}
	// Framed traffic flows after negotiation.
	go cc.Send(nio.VecOf([]byte("post-nego")))
	got, err := r.conn.Recv()
	if err != nil || string(got) != "post-nego" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestNegotiationFeatureAND(t *testing.T) {
	c, s := streamPair(t)
	rch := make(chan *Conn, 1)
	go func() {
		// Responder refuses markers and CRC.
		conn, _, err := Accept(s, Config{MarkerInterval: -1, DisableCRC: true}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		rch <- conn
	}()
	cc, _, err := Connect(c, Config{}, nil) // initiator wants both
	if err != nil {
		t.Fatal(err)
	}
	sc := <-rch
	if cc.cfg.MarkerInterval != 0 || !cc.cfg.DisableCRC {
		t.Fatalf("initiator cfg not downgraded: %+v", cc.cfg)
	}
	if sc.cfg.MarkerInterval != 0 || !sc.cfg.DisableCRC {
		t.Fatalf("responder cfg wrong: %+v", sc.cfg)
	}
	go cc.Send(nio.VecOf([]byte("bare")))
	if got, err := sc.Recv(); err != nil || string(got) != "bare" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestNegotiationReject(t *testing.T) {
	c, s := streamPair(t)
	go Reject(s, []byte("no thanks"))
	_, priv, err := Connect(c, Config{}, nil)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	if string(priv) != "no thanks" {
		t.Fatalf("private data %q", priv)
	}
}

func TestNegotiationGarbage(t *testing.T) {
	c, s := streamPair(t)
	go c.Write([]byte("GARBAGE___GARBAGE___"))
	_, _, err := Accept(s, Config{}, nil)
	if !errors.Is(err, ErrBadReqRep) {
		t.Fatalf("err = %v", err)
	}
}

func TestMarkerOverheadCounted(t *testing.T) {
	// With interval 64, a 600-byte FPDU crosses ≥ 9 marker positions; the
	// stream must carry strictly more bytes than the unmarked FPDU.
	n := simnet.New(simnet.Config{})
	l, _ := n.Listen("srv", 0)
	ch := make(chan transport.Stream, 1)
	go func() {
		st, err := l.Accept()
		if err == nil {
			ch <- st
		}
	}()
	c, _ := n.Dial("cli", l.Addr())
	srv := <-ch
	counted := &countingStream{Stream: c}
	a := NewConn(counted, Config{MarkerInterval: 64})
	b := NewConn(srv, Config{MarkerInterval: 64})
	payload := make([]byte, 600)
	sent := make(chan error, 1)
	go func() { sent <- a.Send(nio.VecOf(payload)) }()
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := <-sent; err != nil {
		t.Fatal(err)
	}
	unmarked := 2 + 600 + 2 /*pad*/ + 4 /*crc*/
	if counted.n <= unmarked {
		t.Fatalf("stream carried %d bytes, expected > %d (markers missing?)", counted.n, unmarked)
	}
}

type countingStream struct {
	transport.Stream
	n int
}

func (cs *countingStream) Write(p []byte) (int, error) {
	n, err := cs.Stream.Write(p)
	cs.n += n
	return n, err
}
