// Package telemetry is the stack's runtime observability spine: a
// hotpath-safe metrics registry, a fixed-size datapath trace ring, pcap
// wire taps at the transport seam, and exposition (Prometheus text format,
// JSON snapshots, an HTTP handler).
//
// The paper's evaluation hinges on seeing datapath behaviour — loss-driven
// retransmits, Write-Record placement, UD vs RC segmentation — and the
// monitoring literature it sits in (RDMAvisor; "Revisiting Network Support
// for RDMA", see PAPERS.md) argues RDMA deployments need a first-class
// monitoring plane with per-event visibility, not just end-of-run
// aggregates. This package provides both planes:
//
//   - aggregates: [Counter], [Gauge], and power-of-two-bucket [Histogram]
//     primitives whose record operations are single atomic updates — zero
//     allocations, no locks, no interface boxing — so they are legal inside
//     //diwarp:hotpath functions and enforced as such by the hotpath
//     analyzer (the record methods carry the annotation);
//   - events: a lock-free sequence-stamped [Ring] of typed datapath events
//     (send, recv, retransmit, drop, Write-Record placement, CRC failure)
//     drained post-hoc by tests, the trace endpoint, and diwarp-top;
//   - wire: [DatagramTap] and [StreamTap] copy traffic crossing a
//     transport.Datagram or transport.Stream into standard .pcap files
//     (UDP/TCP encapsulation) any Wireshark can open;
//   - exposition: [WritePrometheus], [Snapshot] JSON, and [Handler] for
//     embedding in daemons (cmd/iwarpd serves it behind -metrics).
//
// Metric instances are registered into a [Registry] (usually [Default])
// under Prometheus-style names. Several components may register handles
// under the same name — every UD queue pair registers
// diwarp_ud_msgs_sent_total, for example — and the registry aggregates
// them at snapshot time, so per-instance accessors (UDQP.Stats,
// rudp's Snapshot) stay exact while the process-wide view is the sum.
package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; obtain registered instances from [Registry.Counter].
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
//
//diwarp:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//diwarp:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to
// use; obtain registered instances from [Registry.Gauge].
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
//
//diwarp:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
//
//diwarp:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the bucket count of a power-of-two histogram:
// bits.Len64 maps a non-negative value into 0..64.
const histBuckets = 65

// Histogram accumulates non-negative integer observations (latencies in
// microseconds, batch sizes, message lengths) into power-of-two buckets:
// bucket k counts values v with bits.Len64(v) == k, i.e. v in
// [2^(k-1), 2^k). Observing is three atomic adds — no locks, no
// allocation — so it is hotpath-legal; the trade is coarse (factor-of-two)
// resolution, which is exactly the precision a latency distribution under
// loss needs. Negative observations clamp to zero.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
//
//diwarp:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Bucket is one histogram bucket in a snapshot: Count observations whose
// value was ≤ Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le    uint64 `json:"le"` // inclusive upper bound: 2^k - 1
	Count int64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram (or of several
// merged by the registry). Buckets are non-cumulative and truncated after
// the highest non-empty bucket.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Buckets = appendBuckets(s.Buckets, &h.buckets)
	return s
}

// appendBuckets converts the atomic bucket array into snapshot buckets,
// dropping the empty tail.
func appendBuckets(dst []Bucket, b *[histBuckets]atomic.Int64) []Bucket {
	hi := -1
	for k := histBuckets - 1; k >= 0; k-- {
		if b[k].Load() != 0 {
			hi = k
			break
		}
	}
	for k := 0; k <= hi; k++ {
		dst = append(dst, Bucket{Le: bucketBound(k), Count: b[k].Load()})
	}
	return dst
}

// bucketBound returns bucket k's inclusive upper value bound.
func bucketBound(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(k) - 1
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// (q in [0,1]) — an estimate no finer than the power-of-two resolution.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := q * float64(s.Count)
	cum := 0.0
	for _, b := range s.Buckets {
		cum += float64(b.Count)
		if cum >= target {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}
