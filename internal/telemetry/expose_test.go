package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("diwarp_expose_total").Add(5)
	r.Gauge("diwarp_expose_depth").Set(-2)
	h := r.Histogram("diwarp_expose_lat")
	h.Observe(1)
	h.Observe(1)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE diwarp_expose_total counter\ndiwarp_expose_total 5\n",
		"# TYPE diwarp_expose_depth gauge\ndiwarp_expose_depth -2\n",
		"# TYPE diwarp_expose_lat histogram\n",
		// Buckets are cumulative: le=1 has both 1s, le=7 adds the 5.
		"diwarp_expose_lat_bucket{le=\"1\"} 2\n",
		"diwarp_expose_lat_bucket{le=\"7\"} 3\n",
		"diwarp_expose_lat_bucket{le=\"+Inf\"} 3\n",
		"diwarp_expose_lat_sum 7\n",
		"diwarp_expose_lat_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("diwarp_handler_total").Add(3)
	ring := NewRing(64)
	ring.Record(EvSend, 0, 11, 4)
	srv := httptest.NewServer(Handler(reg, ring))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "diwarp_handler_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}

	code, body := get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics.json does not decode into Snapshot: %v", err)
	}
	if snap.Counters["diwarp_handler_total"] != 3 {
		t.Fatalf("decoded counters = %v", snap.Counters)
	}

	code, body = get("/trace.json")
	if code != 200 {
		t.Fatalf("/trace.json = %d", code)
	}
	var dump struct {
		Events []struct {
			Seq   uint64 `json:"seq"`
			Type  string `json:"type"`
			Bytes int    `json:"bytes"`
			Arg   uint32 `json:"arg"`
		} `json:"events"`
		Cursor uint64 `json:"cursor"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 1 || dump.Events[0].Type != "SEND" ||
		dump.Events[0].Bytes != 11 || dump.Events[0].Arg != 4 {
		t.Fatalf("trace dump = %+v", dump)
	}
	// The endpoint drains: a second fetch is empty but still valid JSON.
	if _, body = get("/trace.json"); !strings.Contains(body, "\"events\": []") {
		t.Fatalf("second trace fetch = %q", body)
	}
}

func TestServeLifecycle(t *testing.T) {
	reg := NewRegistry()
	addr, stop, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after stop")
	}
}
