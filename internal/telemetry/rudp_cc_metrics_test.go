package telemetry_test

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/rudp"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// TestRudpCCMetricNames pins the congestion-control metric names in the
// Prometheus exposition: dashboards and alerts key on these strings, so a
// rename must fail a test, not a production scrape. A lossy, ECN-marking
// simnet run must move the mark/decrease counters and leave a positive
// cwnd gauge; the remaining cc series must at least be present.
func TestRudpCCMetricNames(t *testing.T) {
	nw := simnet.New(simnet.Config{
		LossRate: 0.15,
		Seed:     99,
		MarkRate: 0.5,
		Marker:   rudp.MarkCongestion,
	})
	ia, err := nw.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := nw.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rudp.New(ia), rudp.New(ib)
	defer a.Close()
	defer b.Close()

	const count = 200
	go func() {
		for i := 0; i < count; i++ {
			if err := a.SendTo([]byte(fmt.Sprintf("cc-%03d", i)), b.LocalAddr()); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < count; i++ {
		if _, _, err := b.Recv(5 * time.Second); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if err := a.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	addr, stop, err := telemetry.Serve("127.0.0.1:0", telemetry.Default, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Must be present AND have moved during this run.
	for _, name := range []string{
		"diwarp_rudp_cc_cwnd",
		"diwarp_rudp_cc_ecn_marks_total",
		"diwarp_rudp_cc_md_events_total",
		"diwarp_simnet_marked_total",
	} {
		v, ok := scrapeValue(text, name)
		if !ok || v <= 0 {
			t.Errorf("scrape: %s = %d (present=%v), want > 0", name, v, ok)
		}
	}
	// Must be present under the pinned name (value depends on the loss
	// pattern, so only existence is asserted).
	for _, name := range []string{
		"diwarp_rudp_cc_fast_retransmits_total",
		"diwarp_rudp_cc_spurious_rexmits_total",
	} {
		if _, ok := scrapeValue(text, name); !ok {
			t.Errorf("scrape: %s missing from exposition", name)
		}
	}
}
