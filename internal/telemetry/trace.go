package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// EventType identifies one kind of datapath trace event.
type EventType uint8

// Datapath event types. Arg is event-specific: the DDP/RUDP sequence
// number for sends, receives and retransmits, a drop-cause code for drops
// (see simnet's DropCause values), and the STag for Write-Record
// placements.
const (
	EvNone        EventType = iota
	EvSend                  // message handed to the LLP
	EvRecv                  // message completed to the application
	EvRetransmit            // rudp DATA packet resent after RTO expiry
	EvDrop                  // datagram dropped (wire loss, no posted receive, ...)
	EvWriteRecord           // tagged segment placed into a registered region
	EvCRCFail               // DDP segment or MPA FPDU failed its CRC32C
	EvFault                 // faultnet injected a fault (Arg = faultnet op code)
)

// Drop causes carried in an EvDrop event's Arg, shared by every layer that
// records drops so post-hoc analysis can attribute loss without guessing.
const (
	DropLoss       uint32 = iota + 1 // Bernoulli wire loss (simnet)
	DropLatency                      // latency-stranded: destination closed before delivery
	DropMcast                        // multicast leg lost or stranded
	DropNoRecv                       // completed message found no posted receive
	DropQueue                        // destination queue gone at send time
	DropIncomplete                   // Write-Record message discarded with holes (socket layer)
)

func (t EventType) String() string {
	switch t {
	case EvSend:
		return "SEND"
	case EvRecv:
		return "RECV"
	case EvRetransmit:
		return "RETRANSMIT"
	case EvDrop:
		return "DROP"
	case EvWriteRecord:
		return "WRITE_RECORD"
	case EvCRCFail:
		return "CRC_FAIL"
	case EvFault:
		return "FAULT"
	default:
		return "NONE"
	}
}

// Event is one decoded trace-ring entry. Seq is the ring's global sequence
// number (1-based, gapless across the process lifetime of the ring), which
// lets post-hoc analysis order events and detect overwritten spans.
type Event struct {
	Seq   uint64         `json:"seq"`
	Time  time.Time      `json:"time"`
	Type  EventType      `json:"-"`
	Peer  transport.Addr `json:"-"`
	Bytes int            `json:"bytes"`
	Arg   uint32         `json:"arg"`
}

// Peer interning: trace slots must be written with plain atomic stores (the
// record path takes no locks and the race detector must stay clean), so an
// event cannot carry transport.Addr's string directly. Addresses are
// interned once into 24-bit tokens — peers are long-lived relative to
// packets — and events carry the token.
var (
	peerTokens sync.Map // transport.Addr -> uint32
	peersMu    sync.Mutex
	peerList   []transport.Addr // index = token-1
)

// peerTokenBits bounds the token space to what an event slot encodes.
const peerTokenBits = 24

// PeerToken interns addr and returns its stable token. The fast path is
// one lock-free map load; the first sighting of a peer takes a short lock.
// Token 0 is "no/unknown peer" (also returned in the pathological case of
// more than 2^24 distinct peers).
func PeerToken(addr transport.Addr) uint32 {
	if v, ok := peerTokens.Load(addr); ok {
		return v.(uint32)
	}
	peersMu.Lock()
	defer peersMu.Unlock()
	if v, ok := peerTokens.Load(addr); ok {
		return v.(uint32)
	}
	if len(peerList) >= 1<<peerTokenBits-1 {
		return 0
	}
	peerList = append(peerList, addr)
	tok := uint32(len(peerList))
	peerTokens.Store(addr, tok)
	return tok
}

// PeerOf resolves a token back to its address; the zero Addr for token 0
// or an unknown token.
func PeerOf(tok uint32) transport.Addr {
	peersMu.Lock()
	defer peersMu.Unlock()
	if tok == 0 || int(tok) > len(peerList) {
		return transport.Addr{}
	}
	return peerList[tok-1]
}

// slot is one ring entry, stored as four atomic words so concurrent
// recorders and the drainer never race in the -race sense. seq doubles as
// the validity stamp: it is zeroed before the payload words are rewritten
// and set to the entry's sequence number after, so a reader that sees a
// stable matching seq around its payload loads has a consistent entry.
type slot struct {
	seq  atomic.Uint64
	ts   atomic.Uint64 // UnixNano
	meta atomic.Uint64 // type(8) | peer token(24) | bytes(32)
	arg  atomic.Uint64
}

// Ring is a fixed-size lock-free trace ring. Writers claim a slot with one
// atomic increment and stamp it; when the ring wraps, the oldest entries
// are overwritten (and accounted). Recording never blocks and never
// allocates, so it is safe on //diwarp:hotpath functions; draining is a
// cold operation for tests, the /trace.json endpoint, and diwarp-top.
//
// Consistency under wrap is best-effort by design: an entry being
// overwritten while a drain reads it is detected via its stamp and
// skipped, exactly like a hardware trace buffer's lost records.
type Ring struct {
	mask   uint64
	slots  []slot
	cursor atomic.Uint64 // last claimed sequence number

	drainMu     sync.Mutex
	drained     uint64 // last sequence returned by Drain
	overwritten atomic.Uint64
	torn        atomic.Uint64
}

// DefaultTraceSize is the capacity of the package-default ring.
const DefaultTraceSize = 8192

// DefaultTrace is the ring the stack's components record into.
var DefaultTrace = NewRing(DefaultTraceSize)

// NewRing creates a ring holding size events (rounded up to a power of
// two, minimum 64).
func NewRing(size int) *Ring {
	n := 64
	for n < size {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Cap returns the ring's capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Cursor returns the total number of events ever recorded.
func (r *Ring) Cursor() uint64 { return r.cursor.Load() }

// Overwritten returns how many undrained events have been lost to wrap.
func (r *Ring) Overwritten() uint64 { return r.overwritten.Load() }

// Record appends one event: one atomic claim plus four atomic stores —
// no locks, no allocation, no boxing. A nil ring is a disabled ring.
//
//diwarp:hotpath
func (r *Ring) Record(t EventType, peer uint32, size int, arg uint32) {
	if r == nil {
		return
	}
	seq := r.cursor.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.seq.Store(0) // invalidate while the payload words are in flux
	s.ts.Store(uint64(time.Now().UnixNano()))
	s.meta.Store(uint64(t)<<56 | uint64(peer&(1<<peerTokenBits-1))<<32 | uint64(uint32(size)))
	s.arg.Store(uint64(arg))
	s.seq.Store(seq)
}

// Drain returns every event recorded since the previous Drain, oldest
// first. Events lost to ring wrap are counted in Overwritten; entries
// caught mid-rewrite are skipped and counted as torn. Drain consumes:
// a second call returns only newer events.
func (r *Ring) Drain() []Event {
	r.drainMu.Lock()
	defer r.drainMu.Unlock()
	cur := r.cursor.Load()
	lo := r.drained + 1
	if cur < lo {
		return nil
	}
	if span := cur - lo + 1; span > uint64(len(r.slots)) {
		r.overwritten.Add(span - uint64(len(r.slots)))
		lo = cur - uint64(len(r.slots)) + 1
	}
	out := make([]Event, 0, cur-lo+1)
	for seq := lo; seq <= cur; seq++ {
		s := &r.slots[(seq-1)&r.mask]
		if s.seq.Load() != seq {
			r.torn.Add(1)
			continue
		}
		ts, meta, arg := s.ts.Load(), s.meta.Load(), s.arg.Load()
		if s.seq.Load() != seq { // rewritten underneath the payload loads
			r.torn.Add(1)
			continue
		}
		out = append(out, Event{
			Seq:   seq,
			Time:  time.Unix(0, int64(ts)),
			Type:  EventType(meta >> 56),
			Peer:  PeerOf(uint32(meta >> 32 & (1<<peerTokenBits - 1))),
			Bytes: int(uint32(meta)),
			Arg:   uint32(arg),
		})
	}
	r.drained = cur
	return out
}
