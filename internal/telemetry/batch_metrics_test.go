package telemetry_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/transport"
)

// TestBatchMetricNames pins the metric names the kernel batch datapath
// exports (DESIGN.md §4.9). Dashboards key on these strings; renaming one
// must fail a test, not a production scrape. The test drives real loopback
// bursts so the histograms move on whatever tier this kernel probes to —
// portable, mmsg, or the full offloads.
func TestBatchMetricNames(t *testing.T) {
	src, err := transport.ListenUDP("127.0.0.1", 0)
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer src.Close()
	dst, err := transport.ListenUDP("127.0.0.1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	burst := make([][]byte, 8)
	for i := range burst {
		burst[i] = []byte{byte(i), 1, 2, 3}
	}
	if _, err := src.SendBatch(burst, dst.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	pkts := make([][]byte, 8)
	froms := make([]transport.Addr, 8)
	for got := 0; got < len(burst); {
		n, err := dst.RecvBatch(pkts, froms, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			dst.Recycle(pkts[i])
		}
		got += n
	}

	addr, stop, err := telemetry.Serve("127.0.0.1:0", telemetry.Default, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Histograms that must be present and moving after the burst above.
	for _, name := range []string{
		"diwarp_transport_batch_syscalls",
		"diwarp_transport_segs_per_syscall",
	} {
		v, ok := scrapeValue(text, name+"_count")
		if !ok {
			t.Errorf("histogram %s missing from scrape", name)
		} else if v == 0 {
			t.Errorf("histogram %s never observed a burst", name)
		}
		if !strings.Contains(text, name+"_bucket{le=") {
			t.Errorf("histogram %s has no buckets in scrape", name)
		}
	}
	// Capability gauges: present with a 0/1 verdict, matching the probe.
	feats := dst.BatchFeatures()
	for _, g := range []struct {
		name string
		on   bool
	}{
		{"diwarp_transport_gso_enabled", src.BatchFeatures().GSO},
		{"diwarp_transport_gro_enabled", feats.GRO},
	} {
		v, ok := scrapeValue(text, g.name)
		if !ok {
			t.Errorf("gauge %s missing from scrape", g.name)
			continue
		}
		want := int64(0)
		if g.on {
			want = 1
		}
		if v != want {
			t.Errorf("gauge %s = %d, want %d (probe verdict %v)", g.name, v, want, feats)
		}
	}
}
