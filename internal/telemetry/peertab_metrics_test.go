package telemetry_test

import (
	"fmt"
	"io"
	"net/http"
	"testing"

	"repro/internal/peertab"
	"repro/internal/telemetry"
)

// TestPeertabMetricNames pins the metric names the sharded peer table
// exports (DESIGN.md §4.12). diwarp-top's peer-table row and the soak
// harness key on these strings; renaming one must fail a test, not a
// production scrape. The test drives a small table through insert, evict,
// and an admission reject so every counter moves, then refreshes the
// imbalance gauges via Stats.
func TestPeertabMetricNames(t *testing.T) {
	tab := peertab.New[string, int](
		func(k string) uint32 { return peertab.HashString(peertab.Seed(), k) },
		peertab.Options{Shards: 4, Capacity: 8},
	)
	for i := 0; i < 8; i++ {
		if _, _, err := tab.GetOrCreate(fmt.Sprintf("peer-%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Table full: one more admission must reject and count.
	if _, _, err := tab.GetOrCreate("peer-overflow", nil); err == nil {
		t.Fatal("admission past capacity succeeded")
	}
	if tab.Evict("peer-0") == nil {
		t.Fatal("evict of a live peer failed")
	}
	tab.Stats() // refresh the shard max/min gauges

	addr, stop, err := telemetry.Serve("127.0.0.1:0", telemetry.Default, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Counters this test moved. They are process-global and monotonic, so
	// concurrent tables elsewhere in the test binary can only raise them.
	for _, name := range []string{
		"diwarp_peertab_evictions_total",
		"diwarp_peertab_admission_rejects_total",
	} {
		v, ok := scrapeValue(text, name)
		if !ok {
			t.Errorf("counter %s missing from scrape", name)
		} else if v == 0 {
			t.Errorf("counter %s never moved", name)
		}
	}
	// Gauges. Occupancy aggregates every live table in the process (other
	// tests' endpoints included), so only presence is pinned here.
	for _, name := range []string{
		"diwarp_peertab_occupancy",
		"diwarp_peertab_shard_max",
		"diwarp_peertab_shard_min",
	} {
		if _, ok := scrapeValue(text, name); !ok {
			t.Errorf("gauge %s missing from scrape", name)
		}
	}
}
