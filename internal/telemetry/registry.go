package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
)

// Default is the process-wide registry every stack component registers
// into; cmd/iwarpd exposes it over HTTP and cmd/iwarpbench prints it after
// a run. Tests that need isolation construct their own [NewRegistry].
var Default = NewRegistry()

// nameRE is the Prometheus metric-name grammar; names are validated at
// registration (cold path) so exposition never emits an unscrapable line.
var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry is a set of named metrics. Each call to Counter/Gauge/Histogram
// creates a NEW handle registered under the name: components keep their
// handle for exact per-instance reads, and the registry sums all handles
// sharing a name at snapshot time for the process-wide view. Registration
// takes the registry lock (cold path, at component construction); recording
// through a handle touches only that handle's atomics.
type Registry struct {
	mu       sync.Mutex
	counters map[string][]*Counter
	gauges   map[string][]*Gauge
	hists    map[string][]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string][]*Counter),
		gauges:   make(map[string][]*Gauge),
		hists:    make(map[string][]*Histogram),
	}
}

// checkName panics on malformed metric names: registration happens at
// component construction, so a typo fails fast in any test that builds the
// component rather than surfacing as a half-broken scrape in production.
func checkName(name string) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}

// Counter registers and returns a new counter handle under name.
func (r *Registry) Counter(name string) *Counter {
	checkName(name)
	c := &Counter{}
	r.mu.Lock()
	r.counters[name] = append(r.counters[name], c)
	r.mu.Unlock()
	return c
}

// Gauge registers and returns a new gauge handle under name.
func (r *Registry) Gauge(name string) *Gauge {
	checkName(name)
	g := &Gauge{}
	r.mu.Lock()
	r.gauges[name] = append(r.gauges[name], g)
	r.mu.Unlock()
	return g
}

// Histogram registers and returns a new histogram handle under name.
func (r *Registry) Histogram(name string) *Histogram {
	checkName(name)
	h := &Histogram{}
	r.mu.Lock()
	r.hists[name] = append(r.hists[name], h)
	r.mu.Unlock()
	return h
}

// Snapshot is a point-in-time aggregate of a registry: one value per name,
// summed over every registered handle. The maps marshal to stable JSON
// (encoding/json sorts map keys).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot aggregates the registry's current state. Handles are read with
// atomic loads while writers keep recording; the snapshot is a consistent
// "no torn values" view, not a stop-the-world one — exactly what a scrape
// of a live daemon can promise.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, hs := range r.counters {
		var sum int64
		for _, h := range hs {
			sum += h.Load()
		}
		s.Counters[name] = sum
	}
	for name, hs := range r.gauges {
		var sum int64
		for _, h := range hs {
			sum += h.Load()
		}
		s.Gauges[name] = sum
	}
	for name, hs := range r.hists {
		var merged [histBuckets]int64
		var agg HistogramSnapshot
		for _, h := range hs {
			agg.Count += h.count.Load()
			agg.Sum += h.sum.Load()
			for k := range h.buckets {
				merged[k] += h.buckets[k].Load()
			}
		}
		hi := -1
		for k := histBuckets - 1; k >= 0; k-- {
			if merged[k] != 0 {
				hi = k
				break
			}
		}
		for k := 0; k <= hi; k++ {
			agg.Buckets = append(agg.Buckets, Bucket{Le: bucketBound(k), Count: merged[k]})
		}
		s.Histograms[name] = agg
	}
	return s
}

// sortedKeys returns m's keys in lexical order (exposition determinism).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
