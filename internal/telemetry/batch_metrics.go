package telemetry

import "repro/internal/transport"

// Batch-datapath instruments for the kernel batch I/O path (DESIGN.md
// §4.9). Package transport sits below telemetry in the import graph (the
// pcap taps and trace ring wrap transport types), so it cannot register
// these itself; instead it exposes the narrow BatchMetrics sink and this
// init installs registry-backed handles into it. Linking telemetry —
// which every daemon and benchmark binary does — is what turns the
// transport's batch observations into scrapeable series:
//
//   - diwarp_transport_batch_syscalls: pow2 histogram of syscalls per
//     SendBatch/RecvBatch burst (the portable loop observes the burst
//     size here; one sendmmsg observes 1);
//   - diwarp_transport_segs_per_syscall: pow2 histogram of datagrams
//     moved per batch syscall (burst mean — 32-datagram sendmmsg
//     observes 32, the portable loop observes 1), the direct measure of
//     how much syscall amortization the kernel path is buying;
//   - diwarp_transport_gso_enabled / diwarp_transport_gro_enabled:
//     gauges reflecting the most recent endpoint capability probe (1 =
//     offload live, 0 = probed off or degraded at runtime).
func init() {
	transport.SetBatchMetrics(&transport.BatchMetrics{
		BatchSyscalls:  Default.Histogram("diwarp_transport_batch_syscalls"),
		SegsPerSyscall: Default.Histogram("diwarp_transport_segs_per_syscall"),
		GSOEnabled:     Default.Gauge("diwarp_transport_gso_enabled"),
		GROEnabled:     Default.Gauge("diwarp_transport_gro_enabled"),
	})
}
