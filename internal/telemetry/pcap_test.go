package telemetry

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"

	"repro/internal/transport"
)

// fakeDgram is a loopback transport.Datagram for tap tests: SendTo queues,
// Recv dequeues.
type fakeDgram struct {
	local transport.Addr
	q     [][]byte
	from  []transport.Addr
}

func (f *fakeDgram) SendTo(p []byte, to transport.Addr) error {
	f.q = append(f.q, append([]byte(nil), p...))
	f.from = append(f.from, to)
	return nil
}

func (f *fakeDgram) Recv(time.Duration) ([]byte, transport.Addr, error) {
	if len(f.q) == 0 {
		return nil, transport.Addr{}, transport.ErrTimeout
	}
	p, from := f.q[0], f.from[0]
	f.q, f.from = f.q[1:], f.from[1:]
	return p, from, nil
}

func (f *fakeDgram) LocalAddr() transport.Addr { return f.local }
func (f *fakeDgram) MaxDatagram() int          { return 65000 }
func (f *fakeDgram) PathMTU() int              { return 1500 }
func (f *fakeDgram) Close() error              { return nil }

// fakeStream is an in-memory transport.Stream backed by a buffer.
type fakeStream struct {
	buf    bytes.Buffer
	l, r   transport.Addr
	closed bool
}

func (f *fakeStream) Read(p []byte) (int, error)  { return f.buf.Read(p) }
func (f *fakeStream) Write(p []byte) (int, error) { return f.buf.Write(p) }
func (f *fakeStream) Close() error                { f.closed = true; return nil }
func (f *fakeStream) LocalAddr() transport.Addr   { return f.l }
func (f *fakeStream) RemoteAddr() transport.Addr  { return f.r }

// pcapRecord is one parsed packet record.
type pcapRecord struct {
	inclLen uint32
	origLen uint32
	frame   []byte
}

// parsePcap validates the savefile header and splits the records,
// failing the test on any structural violation.
func parsePcap(t *testing.T, b []byte) []pcapRecord {
	t.Helper()
	if len(b) < 24 {
		t.Fatalf("pcap too short for file header: %d bytes", len(b))
	}
	if magic := binary.BigEndian.Uint32(b); magic != 0xa1b2c3d4 {
		t.Fatalf("magic = %#x, want 0xa1b2c3d4", magic)
	}
	if maj, minor := binary.BigEndian.Uint16(b[4:]), binary.BigEndian.Uint16(b[6:]); maj != 2 || minor != 4 {
		t.Fatalf("version = %d.%d, want 2.4", maj, minor)
	}
	snap := binary.BigEndian.Uint32(b[16:])
	if lt := binary.BigEndian.Uint32(b[20:]); lt != 1 {
		t.Fatalf("linktype = %d, want 1 (Ethernet)", lt)
	}
	var recs []pcapRecord
	b = b[24:]
	for len(b) > 0 {
		if len(b) < 16 {
			t.Fatalf("truncated record header: %d trailing bytes", len(b))
		}
		incl := binary.BigEndian.Uint32(b[8:])
		orig := binary.BigEndian.Uint32(b[12:])
		if incl != orig {
			t.Fatalf("record incl %d != orig %d (no truncation expected)", incl, orig)
		}
		if incl > snap {
			t.Fatalf("record length %d exceeds snaplen %d", incl, snap)
		}
		if uint32(len(b)-16) < incl {
			t.Fatalf("record claims %d bytes, only %d remain", incl, len(b)-16)
		}
		recs = append(recs, pcapRecord{inclLen: incl, origLen: orig, frame: b[16 : 16+incl]})
		b = b[16+incl:]
	}
	return recs
}

func TestDatagramTapPcap(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := transport.Addr{Node: "10.1.2.3", Port: 4660}
	dst := transport.Addr{Node: "pcap-test-peer", Port: 9}
	tap := TapDatagram(&fakeDgram{local: src}, pw)

	payloads := [][]byte{[]byte("alpha"), []byte("bee"), make([]byte, 1200)}
	for _, p := range payloads {
		if err := tap.SendTo(p, dst); err != nil {
			t.Fatal(err)
		}
	}
	// The fake loops sends back; tapped Recv captures the inbound leg too.
	if _, _, err := tap.Recv(0); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}

	recs := parsePcap(t, buf.Bytes())
	if int64(len(recs)) != pw.Packets() {
		t.Fatalf("parsed %d records, tap counter says %d", len(recs), pw.Packets())
	}
	if len(recs) != len(payloads)+1 {
		t.Fatalf("parsed %d records, want %d", len(recs), len(payloads)+1)
	}

	// First record: full header validation of the UDP encapsulation.
	f := recs[0].frame
	if et := binary.BigEndian.Uint16(f[12:]); et != 0x0800 {
		t.Fatalf("ethertype = %#x, want 0x0800", et)
	}
	ip := f[14:]
	if ip[0] != 0x45 {
		t.Fatalf("IP version/IHL = %#x, want 0x45", ip[0])
	}
	if ip[9] != 17 {
		t.Fatalf("IP proto = %d, want 17 (UDP)", ip[9])
	}
	if got := binary.BigEndian.Uint16(ip[2:]); int(got) != 20+8+len(payloads[0]) {
		t.Fatalf("IP total length = %d, want %d", got, 20+8+len(payloads[0]))
	}
	// A valid IPv4 header checksums to zero when re-summed over itself.
	if cs := onesComplement(ip[:20]); cs != 0 {
		t.Fatalf("IPv4 header checksum residue %#x, want 0", cs)
	}
	// src parses as a literal IPv4 address and must pass through.
	if !bytes.Equal(ip[12:16], []byte{10, 1, 2, 3}) {
		t.Fatalf("src IP = %v, want 10.1.2.3", ip[12:16])
	}
	udp := ip[20:]
	if sp := binary.BigEndian.Uint16(udp[0:]); sp != src.Port {
		t.Fatalf("UDP src port = %d, want %d", sp, src.Port)
	}
	if dp := binary.BigEndian.Uint16(udp[2:]); dp != dst.Port {
		t.Fatalf("UDP dst port = %d, want %d", dp, dst.Port)
	}
	if ul := binary.BigEndian.Uint16(udp[4:]); int(ul) != 8+len(payloads[0]) {
		t.Fatalf("UDP length = %d, want %d", ul, 8+len(payloads[0]))
	}
	if !bytes.Equal(udp[8:], payloads[0]) {
		t.Fatal("payload mismatch in capture")
	}
}

func TestStreamTapPcap(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	inner := &fakeStream{
		l: transport.Addr{Node: "pcap-test-l", Port: 1},
		r: transport.Addr{Node: "pcap-test-r", Port: 2},
	}
	tap := TapStream(inner, pw)
	msg := []byte("stream chunk")
	if _, err := tap.Write(msg); err != nil {
		t.Fatal(err)
	}
	rd := make([]byte, len(msg))
	if _, err := io.ReadFull(tap, rd); err != nil {
		t.Fatal(err)
	}
	if err := tap.Close(); err != nil {
		t.Fatal(err)
	}
	if !inner.closed {
		t.Fatal("tap Close did not close the inner stream")
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}

	// SYN, SYN|ACK, ACK, data out, data in, FIN|ACK, ACK = 7 records.
	recs := parsePcap(t, buf.Bytes())
	if len(recs) != 7 {
		t.Fatalf("parsed %d records, want 7", len(recs))
	}
	if int64(len(recs)) != pw.Packets() {
		t.Fatalf("parsed %d records, tap counter says %d", len(recs), pw.Packets())
	}
	wantFlags := []byte{0x02, 0x12, 0x10, 0x18, 0x18, 0x11, 0x10}
	for i, r := range recs {
		ip := r.frame[14:]
		if ip[9] != 6 {
			t.Fatalf("record %d: IP proto = %d, want 6 (TCP)", i, ip[9])
		}
		tcp := ip[20:]
		if tcp[13] != wantFlags[i] {
			t.Fatalf("record %d: TCP flags = %#x, want %#x", i, tcp[13], wantFlags[i])
		}
	}
	// The data segments carry the payload and sequence 1 (post-handshake).
	if seq := binary.BigEndian.Uint32(recs[3].frame[14+20+4:]); seq != 1 {
		t.Fatalf("first data seq = %d, want 1", seq)
	}
	if !bytes.Equal(recs[3].frame[14+20+20:], msg) {
		t.Fatal("outbound payload mismatch")
	}
}

func TestPcapWriterStickyError(t *testing.T) {
	pw, err := NewPcapWriter(&failWriter{})
	if err != nil {
		t.Fatal(err)
	}
	tap := TapDatagram(&fakeDgram{local: transport.Addr{Node: "x", Port: 1}}, pw)
	// The datapath must not fail even though the capture sink does; the
	// header fits the bufio buffer, so the error surfaces on Close's flush.
	for i := 0; i < 10; i++ {
		if err := tap.SendTo(make([]byte, 60000), transport.Addr{Node: "y", Port: 2}); err != nil {
			t.Fatalf("tap leaked sink error into datapath: %v", err)
		}
	}
	if pw.Close() == nil {
		t.Fatal("Close must surface the sink error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }
