package telemetry

import (
	"sync"
	"testing"

	"repro/internal/transport"
)

func TestRingRecordAndDrain(t *testing.T) {
	r := NewRing(64)
	tok := PeerToken(transport.Addr{Node: "trace-test-a", Port: 7})
	r.Record(EvSend, tok, 100, 1)
	r.Record(EvRecv, tok, 100, 1)
	r.Record(EvDrop, 0, 42, DropLoss)

	evs := r.Drain()
	if len(evs) != 3 {
		t.Fatalf("drained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	if evs[0].Type != EvSend || evs[1].Type != EvRecv || evs[2].Type != EvDrop {
		t.Fatalf("types = %v %v %v", evs[0].Type, evs[1].Type, evs[2].Type)
	}
	if evs[0].Peer != (transport.Addr{Node: "trace-test-a", Port: 7}) {
		t.Fatalf("peer round trip failed: %v", evs[0].Peer)
	}
	if evs[2].Bytes != 42 || evs[2].Arg != DropLoss {
		t.Fatalf("drop event = %+v", evs[2])
	}
	if evs[2].Peer != (transport.Addr{}) {
		t.Fatalf("token 0 must decode to the zero addr, got %v", evs[2].Peer)
	}

	// Drain consumes: a second drain returns only newer events.
	if again := r.Drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d events", len(again))
	}
	r.Record(EvRetransmit, 0, 9, 5)
	evs = r.Drain()
	if len(evs) != 1 || evs[0].Seq != 4 || evs[0].Type != EvRetransmit {
		t.Fatalf("post-drain event = %+v", evs)
	}
}

func TestRingWrapAccountsOverwritten(t *testing.T) {
	r := NewRing(64) // minimum/rounded capacity: exactly 64 slots
	const n = 200
	for i := 0; i < n; i++ {
		r.Record(EvSend, 0, i, uint32(i))
	}
	evs := r.Drain()
	if len(evs) != r.Cap() {
		t.Fatalf("drained %d events, want capacity %d", len(evs), r.Cap())
	}
	// The survivors are the newest Cap() events, oldest first.
	if evs[0].Seq != n-uint64(r.Cap())+1 || evs[len(evs)-1].Seq != n {
		t.Fatalf("seq range [%d,%d], want [%d,%d]",
			evs[0].Seq, evs[len(evs)-1].Seq, n-r.Cap()+1, n)
	}
	if got := r.Overwritten(); got != n-uint64(r.Cap()) {
		t.Fatalf("overwritten = %d, want %d", got, n-r.Cap())
	}
	if r.Cursor() != n {
		t.Fatalf("cursor = %d, want %d", r.Cursor(), n)
	}
}

func TestRingNilIsDisabled(t *testing.T) {
	var r *Ring
	r.Record(EvSend, 0, 1, 0) // must not panic
}

// TestRingConcurrent drives recorders through wrap while a drainer runs —
// under -race this exercises the seqlock-style stamp discipline; torn or
// overwritten entries are accounted, never corrupt.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(128)
	const (
		workers = 4
		per     = 5000
	)
	var wg sync.WaitGroup
	done := make(chan struct{})
	var drained []Event
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			drained = append(drained, r.Drain()...)
			select {
			case <-done:
				drained = append(drained, r.Drain()...)
				return
			default:
			}
		}
	}()
	var rec sync.WaitGroup
	for w := 0; w < workers; w++ {
		rec.Add(1)
		go func(w int) {
			defer rec.Done()
			for i := 0; i < per; i++ {
				r.Record(EvSend, 0, i, uint32(w))
			}
		}(w)
	}
	rec.Wait()
	close(done)
	wg.Wait()

	seen := make(map[uint64]bool, len(drained))
	for _, e := range drained {
		if e.Seq == 0 || e.Seq > workers*per {
			t.Fatalf("impossible seq %d", e.Seq)
		}
		if seen[e.Seq] {
			t.Fatalf("seq %d drained twice", e.Seq)
		}
		seen[e.Seq] = true
	}
	// Conservation: every recorded event was drained, overwritten, or torn.
	total := uint64(len(drained)) + r.Overwritten() + r.torn.Load()
	if total != workers*per {
		t.Fatalf("drained %d + overwritten %d + torn %d != recorded %d",
			len(drained), r.Overwritten(), r.torn.Load(), workers*per)
	}
}

func TestPeerTokenStable(t *testing.T) {
	a := transport.Addr{Node: "trace-test-stable", Port: 1}
	t1 := PeerToken(a)
	t2 := PeerToken(a)
	if t1 == 0 || t1 != t2 {
		t.Fatalf("tokens %d, %d", t1, t2)
	}
	if got := PeerOf(t1); got != a {
		t.Fatalf("PeerOf(%d) = %v, want %v", t1, got, a)
	}
	if b := PeerToken(transport.Addr{Node: "trace-test-stable", Port: 2}); b == t1 {
		t.Fatal("distinct addrs shared a token")
	}
	if got := PeerOf(1 << 30); got != (transport.Addr{}) {
		t.Fatalf("unknown token resolved to %v", got)
	}
}

func TestEventTypeString(t *testing.T) {
	for ty, want := range map[EventType]string{
		EvSend: "SEND", EvRecv: "RECV", EvRetransmit: "RETRANSMIT",
		EvDrop: "DROP", EvWriteRecord: "WRITE_RECORD", EvCRCFail: "CRC_FAIL",
		EvNone: "NONE", EventType(200): "NONE",
	} {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
}
