package telemetry_test

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	iwarp "repro/internal/core"
	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/rudp"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// TestEndToEndObservability is the issue's acceptance test: a full-stack
// echo exchange over a 1%-lossy simnet with a pcap tap and rudp recovery
// must yield (a) a Prometheus scrape whose retransmit and drop counters are
// non-zero, (b) a drained trace ring containing drop and retransmit events,
// and (c) a structurally valid .pcap whose packet count matches the tap's
// own counter.
func TestEndToEndObservability(t *testing.T) {
	nw := simnet.New(simnet.Config{LossRate: 0.01, Seed: 7})
	srvRaw, err := nw.OpenDatagram("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	cliRaw, err := nw.OpenDatagram("cli", 0)
	if err != nil {
		t.Fatal(err)
	}

	pcapPath := filepath.Join(t.TempDir(), "e2e.pcap")
	f, err := os.Create(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := telemetry.NewPcapWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	srvEp := telemetry.TapDatagram(srvRaw, pw)
	cliEp := telemetry.TapDatagram(cliRaw, pw)
	// Reliability above the tap, as in deployment: retransmissions cross
	// the tap and appear in the capture.
	srv, cli := rudp.New(srvEp), rudp.New(cliEp)

	mkQP := func(ep transport.Datagram) (*iwarp.UDQP, *iwarp.CQ) {
		t.Helper()
		scq, rcq := iwarp.NewCQ(0), iwarp.NewCQ(0)
		qp, err := iwarp.OpenUD(ep, memreg.NewPD(), memreg.NewTable(), scq, rcq,
			iwarp.UDConfig{BlockOnRNR: true})
		if err != nil {
			t.Fatal(err)
		}
		return qp, rcq
	}
	srvQP, srvRCQ := mkQP(srv)
	defer srvQP.Close()
	cliQP, cliRCQ := mkQP(cli)
	defer cliQP.Close()

	// Echo server, as cmd/iwarpd -sim runs it.
	const msgSize = 2048
	srvBufs := make([][]byte, 16)
	for i := range srvBufs {
		srvBufs[i] = make([]byte, msgSize+16)
		if err := srvQP.PostRecv(uint64(i), srvBufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	srvDone := make(chan struct{})
	go func() {
		defer close(srvDone)
		for {
			e, err := srvRCQ.Poll(200 * time.Millisecond)
			if err != nil {
				if err == iwarp.ErrCQEmpty {
					continue
				}
				return
			}
			if e.Type != iwarp.WTRecv || e.Status == iwarp.StatusFlushed {
				if e.Status == iwarp.StatusFlushed {
					return
				}
				continue
			}
			if e.Ok() {
				_ = srvQP.PostSend(0, e.Src, nio.VecOf(srvBufs[e.WRID][:e.ByteLen]))
			}
			_ = srvQP.PostRecv(e.WRID, srvBufs[e.WRID])
		}
	}()

	// Clear stale events so the assertions below see only this run.
	telemetry.DefaultTrace.Drain()

	// Client rounds until the lossy wire has demonstrably bitten: at least
	// one Bernoulli drop and one rudp retransmission on either side.
	payload := make([]byte, msgSize)
	echo := make([]byte, msgSize+16)
	var events []telemetry.Event
	deadline := time.Now().Add(20 * time.Second)
	rounds := 0
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no loss+recovery after %d rounds: simnet %+v, cli %+v, srv %+v",
				rounds, nw.Counters(), cli.Snapshot(), srv.Snapshot())
		}
		if err := cliQP.PostRecv(1, echo); err != nil {
			t.Fatal(err)
		}
		if err := cliQP.PostSend(0, srvQP.LocalAddr(), nio.VecOf(payload)); err != nil {
			t.Fatal(err)
		}
		if _, err := cliRCQ.Poll(5 * time.Second); err != nil {
			t.Fatalf("round %d: echo lost despite rudp: %v", rounds, err)
		}
		rounds++
		events = append(events, telemetry.DefaultTrace.Drain()...)
		retrans := cli.Snapshot().Retransmits + srv.Snapshot().Retransmits
		if rounds >= 50 && nw.Counters().LostLoss > 0 && retrans > 0 {
			break
		}
	}

	// (a) Prometheus scrape: retransmit and drop counters > 0.
	addr, stop, err := telemetry.Serve("127.0.0.1:0", telemetry.Default, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"diwarp_rudp_retransmits_total",
		"diwarp_simnet_drop_loss_total",
		"diwarp_ud_msgs_recv_total",
	} {
		v, ok := scrapeValue(string(body), name)
		if !ok || v <= 0 {
			t.Errorf("scrape: %s = %d (present=%v), want > 0", name, v, ok)
		}
	}

	// (b) the trace ring saw the loss and the recovery.
	var drops, retransmits int
	for _, e := range events {
		switch e.Type {
		case telemetry.EvDrop:
			if e.Arg == telemetry.DropLoss {
				drops++
			}
		case telemetry.EvRetransmit:
			retransmits++
		}
	}
	if drops == 0 || retransmits == 0 {
		t.Errorf("trace: %d wire-loss drops, %d retransmits across %d events, want both > 0",
			drops, retransmits, len(events))
	}

	// (c) the capture is valid pcap and complete per the tap's counter.
	cliQP.Close()
	srvQP.Close()
	<-srvDone
	wantPackets := pw.Packets()
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	recs := parsePcapFile(t, raw)
	if int64(recs) != wantPackets {
		t.Fatalf("pcap has %d records, tap counted %d", recs, wantPackets)
	}
	if recs == 0 {
		t.Fatal("empty capture")
	}
	t.Logf("e2e: %d rounds, %d pcap packets, %d drops, %d retransmits traced",
		rounds, recs, drops, retransmits)
}

// scrapeValue extracts an integer sample from Prometheus text exposition.
func scrapeValue(text, name string) (int64, bool) {
	for _, line := range strings.Split(text, "\n") {
		val, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(val, "%d", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}

// parsePcapFile validates the file header and counts records (the detailed
// per-field validation lives in pcap_test.go; this checks the whole file's
// structure holds at soak volume).
func parsePcapFile(t *testing.T, b []byte) int {
	t.Helper()
	if len(b) < 24 {
		t.Fatalf("pcap too short: %d bytes", len(b))
	}
	if magic := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]); magic != 0xa1b2c3d4 {
		t.Fatalf("magic = %#x", magic)
	}
	b = b[24:]
	n := 0
	for len(b) > 0 {
		if len(b) < 16 {
			t.Fatalf("truncated record header after %d records", n)
		}
		incl := int(uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11]))
		if len(b)-16 < incl {
			t.Fatalf("record %d claims %d bytes, %d remain", n, incl, len(b)-16)
		}
		b = b[16+incl:]
		n++
	}
	return n
}
