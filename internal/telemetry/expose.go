package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Exposition: the registry and trace ring rendered for consumers — the
// Prometheus text format (version 0.0.4) for scrapers, JSON snapshots for
// diwarp-top and scripts, and an http.Handler bundling both for daemons.

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format. Counter names should follow the *_total convention; histograms
// expand into cumulative _bucket{le=...} series plus _sum and _count.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, h.Count, name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the registry's current state to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Snapshot())
}

// MarshalJSON renders an event with its type and peer as strings, so
// /trace.json output reads without the numeric enum and token tables.
func (e Event) MarshalJSON() ([]byte, error) {
	peer := ""
	if !e.Peer.IsZero() {
		peer = e.Peer.String()
	}
	return json.Marshal(struct {
		Seq   uint64 `json:"seq"`
		Time  string `json:"time"`
		Type  string `json:"type"`
		Peer  string `json:"peer,omitempty"`
		Bytes int    `json:"bytes"`
		Arg   uint32 `json:"arg"`
	}{
		Seq:   e.Seq,
		Time:  e.Time.Format(time.RFC3339Nano),
		Type:  e.Type.String(),
		Peer:  peer,
		Bytes: e.Bytes,
		Arg:   e.Arg,
	})
}

// traceDump is the /trace.json response shape.
type traceDump struct {
	Events      []Event `json:"events"`
	Overwritten uint64  `json:"overwritten"`
	Cursor      uint64  `json:"cursor"`
}

// Handler serves the observability endpoints for reg and ring (either may
// be nil to disable its routes):
//
//	GET /metrics        Prometheus text format
//	GET /metrics.json   JSON snapshot of the registry
//	GET /trace.json     drain the trace ring (consuming!) as JSON
//	GET /healthz        liveness probe
func Handler(reg *Registry, ring *Ring) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(reg.Snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if ring != nil {
		mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			dump := traceDump{Events: ring.Drain(), Overwritten: ring.Overwritten(), Cursor: ring.Cursor()}
			if dump.Events == nil {
				dump.Events = []Event{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(dump); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	return mux
}

// Serve binds addr (host:port, port 0 for ephemeral) and serves [Handler]
// for reg and ring on it in a background goroutine. It returns the bound
// address and a shutdown function. This is the one-liner daemons use:
//
//	addr, stop, err := telemetry.Serve("127.0.0.1:9090", telemetry.Default, telemetry.DefaultTrace)
func Serve(addr string, reg *Registry, ring *Ring) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(reg, ring)}
	go func() {
		// Serve returns ErrServerClosed on shutdown; other errors mean the
		// listener died, which the health probe will surface.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv.Close, nil
}

// FormatValue renders a metric value with a thousands separator for the
// human-facing summaries (iwarpbench's telemetry section, diwarp-top).
func FormatValue(v int64) string {
	s := strconv.FormatInt(v, 10)
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg, s = true, s[1:]
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}
