package telemetry

import (
	"bufio"
	"encoding/binary"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/transport"
)

// Pcap wire taps: a [DatagramTap] or [StreamTap] interposes on the
// transport seam — the boundary between the iWARP stack and its LLP — and
// copies every datagram or stream chunk that crosses it into a standard
// pcap savefile, so any run (simnet or real sockets) can be opened in
// Wireshark. Traffic is re-encapsulated: datagrams as Ethernet/IPv4/UDP
// frames, stream chunks as Ethernet/IPv4/TCP segments with a synthetic
// handshake and tracked sequence numbers. transport.Addr nodes that parse
// as IPv4 keep their address; symbolic simnet nodes ("a", "b", "mcast")
// map deterministically into 10.0.0.0/8 so two-node captures stay legible.
//
// All pcap integers are written big-endian with the standard magic; pcap
// readers detect byte order from the magic, and the tree's wire-format
// convention (wirecheck) is network order throughout.

// pcap file constants.
const (
	pcapMagic       = 0xa1b2c3d4
	pcapVerMajor    = 2
	pcapVerMinor    = 4
	pcapSnapLen     = 65535 + 54 // worst-case frame: max datagram + headers
	pcapLinkEther   = 1          // LINKTYPE_ETHERNET
	pcapRecHdrLen   = 16
	etherHdrLen     = 14
	ipv4HdrLen      = 20
	udpHdrLen       = 8
	tcpHdrLen       = 20
	maxEncapPayload = 65535 - ipv4HdrLen - udpHdrLen // IPv4 total-length ceiling
)

// PcapWriter serializes packets into pcap savefile format. It is safe for
// concurrent use (taps on both directions of a connection share one
// writer); writes are buffered and errors are sticky — a tap never fails
// the datapath it observes, so I/O errors surface through [PcapWriter.Err]
// and Close rather than through SendTo/Recv.
type PcapWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	under   io.Writer
	err     error
	ipID    uint16
	scratch [etherHdrLen + ipv4HdrLen + tcpHdrLen]byte
	hdr     [pcapRecHdrLen]byte

	packets *Counter // also registered as diwarp_pcap_packets_total
	bytes   *Counter
}

// NewPcapWriter starts a pcap stream on w, writing the file header
// immediately. If w is an io.Closer, Close closes it after flushing.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	pw := &PcapWriter{
		bw:      bufio.NewWriterSize(w, 64<<10),
		under:   w,
		packets: Default.Counter("diwarp_pcap_packets_total"),
		bytes:   Default.Counter("diwarp_pcap_bytes_total"),
	}
	var fh [24]byte
	binary.BigEndian.PutUint32(fh[0:], pcapMagic)
	binary.BigEndian.PutUint16(fh[4:], pcapVerMajor)
	binary.BigEndian.PutUint16(fh[6:], pcapVerMinor)
	// thiszone and sigfigs stay zero.
	binary.BigEndian.PutUint32(fh[16:], pcapSnapLen)
	binary.BigEndian.PutUint32(fh[20:], pcapLinkEther)
	if _, err := pw.bw.Write(fh[:]); err != nil {
		return nil, err
	}
	return pw, nil
}

// Packets returns how many packet records have been written.
func (pw *PcapWriter) Packets() int64 { return pw.packets.Load() }

// Err returns the first write error, if any.
func (pw *PcapWriter) Err() error {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.err
}

// Close flushes the buffer and closes the underlying writer when it is a
// Closer.
func (pw *PcapWriter) Close() error {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	if ferr := pw.bw.Flush(); pw.err == nil {
		pw.err = ferr
	}
	if c, ok := pw.under.(io.Closer); ok {
		if cerr := c.Close(); pw.err == nil {
			pw.err = cerr
		}
	}
	return pw.err
}

// ipFor maps a transport node name to an IPv4 address: parseable v4
// addresses pass through; anything else hashes into 10.0.0.0/8.
func ipFor(node string) [4]byte {
	if ip := net.ParseIP(node); ip != nil {
		if v4 := ip.To4(); v4 != nil {
			return [4]byte(v4)
		}
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(node)) // fnv's Write cannot fail
	s := h.Sum32()
	return [4]byte{10, byte(s >> 16), byte(s >> 8), byte(s)}
}

// onesComplement computes the RFC 1071 internet checksum of b.
func onesComplement(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// writeFrame emits one pcap record: Ethernet + IPv4 + (UDP | TCP) headers
// built in the scratch buffer, then the payload. proto is 17 (UDP) or
// 6 (TCP); seq/ack/flags are used only for TCP.
func (pw *PcapWriter) writeFrame(src, dst transport.Addr, proto byte, seq, ack uint32, flags byte, payload []byte) {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	if pw.err != nil {
		return
	}
	sip, dip := ipFor(src.Node), ipFor(dst.Node)
	l4len := udpHdrLen
	if proto == 6 {
		l4len = tcpHdrLen
	}
	totLen := ipv4HdrLen + l4len + len(payload)
	frame := pw.scratch[:etherHdrLen+ipv4HdrLen+l4len]

	// Ethernet: locally-administered MACs derived from the IPs.
	copy(frame[0:6], []byte{0x02, 0x00, dip[0], dip[1], dip[2], dip[3]})
	copy(frame[6:12], []byte{0x02, 0x00, sip[0], sip[1], sip[2], sip[3]})
	binary.BigEndian.PutUint16(frame[12:], 0x0800)

	// IPv4 header.
	ip := frame[etherHdrLen:]
	ip[0] = 0x45
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:], uint16(totLen))
	pw.ipID++
	binary.BigEndian.PutUint16(ip[4:], pw.ipID)
	binary.BigEndian.PutUint16(ip[6:], 0) // no fragmentation in the encap
	ip[8] = 64
	ip[9] = proto
	binary.BigEndian.PutUint16(ip[10:], 0)
	copy(ip[12:16], sip[:])
	copy(ip[16:20], dip[:])
	binary.BigEndian.PutUint16(ip[10:], onesComplement(ip[:ipv4HdrLen]))

	// Transport header.
	l4 := ip[ipv4HdrLen:]
	binary.BigEndian.PutUint16(l4[0:], src.Port)
	binary.BigEndian.PutUint16(l4[2:], dst.Port)
	if proto == 17 {
		binary.BigEndian.PutUint16(l4[4:], uint16(udpHdrLen+len(payload)))
		binary.BigEndian.PutUint16(l4[6:], 0) // UDP checksum 0: "not computed"
	} else {
		binary.BigEndian.PutUint32(l4[4:], seq)
		binary.BigEndian.PutUint32(l4[8:], ack)
		l4[12] = tcpHdrLen / 4 << 4
		l4[13] = flags
		binary.BigEndian.PutUint16(l4[14:], 0xffff) // window
		binary.BigEndian.PutUint16(l4[16:], 0)      // checksum: see below
		binary.BigEndian.PutUint16(l4[18:], 0)      // urgent
		binary.BigEndian.PutUint16(l4[16:], tcpChecksum(sip, dip, l4[:tcpHdrLen], payload))
	}

	// Record header: seconds, microseconds, captured length, original length.
	now := time.Now()
	wire := etherHdrLen + totLen
	binary.BigEndian.PutUint32(pw.hdr[0:], uint32(now.Unix()))
	binary.BigEndian.PutUint32(pw.hdr[4:], uint32(now.Nanosecond()/1e3))
	binary.BigEndian.PutUint32(pw.hdr[8:], uint32(wire))
	binary.BigEndian.PutUint32(pw.hdr[12:], uint32(wire))

	if _, err := pw.bw.Write(pw.hdr[:]); err != nil {
		pw.err = err
		return
	}
	if _, err := pw.bw.Write(frame); err != nil {
		pw.err = err
		return
	}
	if _, err := pw.bw.Write(payload); err != nil {
		pw.err = err
		return
	}
	pw.packets.Inc()
	pw.bytes.Add(int64(wire))
}

// tcpChecksum computes the TCP checksum over the IPv4 pseudo-header,
// header, and payload.
func tcpChecksum(sip, dip [4]byte, hdr, payload []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], sip[:])
	copy(pseudo[4:8], dip[:])
	pseudo[9] = 6
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(hdr)+len(payload)))
	var sum uint32
	add := func(b []byte) {
		for len(b) >= 2 {
			sum += uint32(binary.BigEndian.Uint16(b))
			b = b[2:]
		}
		if len(b) == 1 {
			sum += uint32(b[0]) << 8
		}
	}
	add(pseudo[:])
	add(hdr)
	add(payload)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// DatagramTap wraps a transport.Datagram, mirroring every datagram that
// crosses it into a pcap file as a UDP packet and counting transport-seam
// traffic into the registry. It forwards the optional BatchSender and
// Recycler capabilities of the endpoint below, so a tapped LLP keeps its
// batched, pooled datapath. Closing the tap closes the inner endpoint but
// NOT the writer — both directions of a simnet pair typically share one
// PcapWriter, which the caller closes once.
type DatagramTap struct {
	inner transport.Datagram
	pw    *PcapWriter

	sent, recvd           *Counter
	sentBytes, recvdBytes *Counter
}

var _ transport.Datagram = (*DatagramTap)(nil)
var _ transport.BatchSender = (*DatagramTap)(nil)
var _ transport.BatchRecver = (*DatagramTap)(nil)
var _ transport.Recycler = (*DatagramTap)(nil)
var _ transport.RecvPoolStats = (*DatagramTap)(nil)
var _ transport.BatchCapabilities = (*DatagramTap)(nil)

// BatchFeatures forwards the inner endpoint's kernel batch capabilities, so
// tapping a link does not change the burst sizing of the layers above.
func (t *DatagramTap) BatchFeatures() transport.BatchFeatures {
	if bc, ok := t.inner.(transport.BatchCapabilities); ok {
		return bc.BatchFeatures()
	}
	return transport.BatchFeatures{}
}

// TapDatagram interposes a pcap tap over inner, writing to pw.
func TapDatagram(inner transport.Datagram, pw *PcapWriter) *DatagramTap {
	return &DatagramTap{
		inner:      inner,
		pw:         pw,
		sent:       Default.Counter("diwarp_transport_datagrams_sent_total"),
		recvd:      Default.Counter("diwarp_transport_datagrams_recv_total"),
		sentBytes:  Default.Counter("diwarp_transport_bytes_sent_total"),
		recvdBytes: Default.Counter("diwarp_transport_bytes_recv_total"),
	}
}

// SendTo implements transport.Datagram.
func (t *DatagramTap) SendTo(p []byte, to transport.Addr) error {
	err := t.inner.SendTo(p, to)
	if err == nil {
		t.pw.writeFrame(t.inner.LocalAddr(), to, 17, 0, 0, 0, p)
		t.sent.Inc()
		t.sentBytes.Add(int64(len(p)))
	}
	return err
}

// SendBatch implements transport.BatchSender, delegating to the inner
// endpoint's batched path when it has one. Only datagrams actually handed
// to the network are captured.
func (t *DatagramTap) SendBatch(pkts [][]byte, to transport.Addr) (int, error) {
	if bs, ok := t.inner.(transport.BatchSender); ok {
		n, err := bs.SendBatch(pkts, to)
		from := t.inner.LocalAddr()
		for _, p := range pkts[:n] {
			t.pw.writeFrame(from, to, 17, 0, 0, 0, p)
			t.sentBytes.Add(int64(len(p)))
		}
		t.sent.Add(int64(n))
		return n, err
	}
	for i, p := range pkts {
		if err := t.SendTo(p, to); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

// Recv implements transport.Datagram.
func (t *DatagramTap) Recv(timeout time.Duration) ([]byte, transport.Addr, error) {
	p, from, err := t.inner.Recv(timeout)
	if err == nil {
		t.pw.writeFrame(from, t.inner.LocalAddr(), 17, 0, 0, 0, p)
		t.recvd.Inc()
		t.recvdBytes.Add(int64(len(p)))
	}
	return p, from, err
}

// RecvBatch implements transport.BatchRecver, delegating to the inner
// endpoint's batched path when it has one and degrading to one Recv
// otherwise, so a tapped LLP keeps the batched receive seam. Every datagram
// in the burst is captured and counted.
func (t *DatagramTap) RecvBatch(pkts [][]byte, froms []transport.Addr, timeout time.Duration) (int, error) {
	var n int
	var err error
	if br, ok := t.inner.(transport.BatchRecver); ok {
		n, err = br.RecvBatch(pkts, froms, timeout)
	} else {
		if len(pkts) == 0 || len(froms) == 0 {
			return 0, nil
		}
		pkts[0], froms[0], err = t.inner.Recv(timeout)
		if err == nil {
			n = 1
		}
	}
	local := t.inner.LocalAddr()
	for i := 0; i < n; i++ {
		t.pw.writeFrame(froms[i], local, 17, 0, 0, 0, pkts[i])
		t.recvdBytes.Add(int64(len(pkts[i])))
	}
	t.recvd.Add(int64(n))
	return n, err
}

// Recycle implements transport.Recycler when the inner endpoint does.
func (t *DatagramTap) Recycle(p []byte) {
	if r, ok := t.inner.(transport.Recycler); ok {
		r.Recycle(p)
	}
}

// RecvPoolStats implements transport.RecvPoolStats when the inner endpoint
// does; otherwise it reports zeroes (no pool below, nothing to observe).
func (t *DatagramTap) RecvPoolStats() (hits, misses int64) {
	if ps, ok := t.inner.(transport.RecvPoolStats); ok {
		return ps.RecvPoolStats()
	}
	return 0, 0
}

// LocalAddr implements transport.Datagram.
func (t *DatagramTap) LocalAddr() transport.Addr { return t.inner.LocalAddr() }

// MaxDatagram implements transport.Datagram.
func (t *DatagramTap) MaxDatagram() int { return t.inner.MaxDatagram() }

// PathMTU implements transport.Datagram.
func (t *DatagramTap) PathMTU() int { return t.inner.PathMTU() }

// Close implements transport.Datagram.
func (t *DatagramTap) Close() error { return t.inner.Close() }

// StreamTap wraps a transport.Stream (the RC mode's LLP), mirroring reads
// and writes into the pcap file as TCP segments. A synthetic three-way
// handshake is emitted at tap time so protocol analyzers track the
// conversation; sequence numbers count actual bytes in each direction.
type StreamTap struct {
	inner transport.Stream
	pw    *PcapWriter

	mu    sync.Mutex
	txSeq uint32 // next local→remote sequence number
	rxSeq uint32 // next remote→local sequence number
}

var _ transport.Stream = (*StreamTap)(nil)

// TapStream interposes a pcap tap over inner, writing to pw.
func TapStream(inner transport.Stream, pw *PcapWriter) *StreamTap {
	t := &StreamTap{inner: inner, pw: pw}
	l, r := inner.LocalAddr(), inner.RemoteAddr()
	pw.writeFrame(l, r, 6, 0, 0, 0x02, nil) // SYN
	pw.writeFrame(r, l, 6, 0, 1, 0x12, nil) // SYN|ACK
	pw.writeFrame(l, r, 6, 1, 1, 0x10, nil) // ACK
	t.txSeq, t.rxSeq = 1, 1
	return t
}

// record splits one direction's chunk into IPv4-sized TCP segments.
func (t *StreamTap) record(src, dst transport.Addr, seq, ack *uint32, p []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(p) > 0 {
		n := min(len(p), maxEncapPayload)
		t.pw.writeFrame(src, dst, 6, *seq, *ack, 0x18, p[:n]) // PSH|ACK
		*seq += uint32(n)
		p = p[n:]
	}
}

// Read implements transport.Stream.
func (t *StreamTap) Read(p []byte) (int, error) {
	n, err := t.inner.Read(p)
	if n > 0 {
		t.record(t.inner.RemoteAddr(), t.inner.LocalAddr(), &t.rxSeq, &t.txSeq, p[:n])
	}
	return n, err
}

// Write implements transport.Stream.
func (t *StreamTap) Write(p []byte) (int, error) {
	n, err := t.inner.Write(p)
	if n > 0 {
		t.record(t.inner.LocalAddr(), t.inner.RemoteAddr(), &t.txSeq, &t.rxSeq, p[:n])
	}
	return n, err
}

// LocalAddr implements transport.Stream.
func (t *StreamTap) LocalAddr() transport.Addr { return t.inner.LocalAddr() }

// RemoteAddr implements transport.Stream.
func (t *StreamTap) RemoteAddr() transport.Addr { return t.inner.RemoteAddr() }

// Close implements transport.Stream, emitting a FIN pair for the capture.
func (t *StreamTap) Close() error {
	t.mu.Lock()
	l, r := t.inner.LocalAddr(), t.inner.RemoteAddr()
	t.pw.writeFrame(l, r, 6, t.txSeq, t.rxSeq, 0x11, nil) // FIN|ACK
	t.pw.writeFrame(r, l, 6, t.rxSeq, t.txSeq+1, 0x10, nil)
	t.mu.Unlock()
	return t.inner.Close()
}
