package telemetry_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// TestMsgMetricNames pins the metric names the message layer exports
// (DESIGN.md §4.11). diwarp-top and dashboards key on these strings;
// renaming one must fail a test, not a production scrape. The test drives
// one eager and one rendezvous transfer so both datapath counters move.
func TestMsgMetricNames(t *testing.T) {
	net := simnet.New(simnet.Config{})
	epA, err := net.OpenDatagram("scrape-a", 1)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := net.OpenDatagram("scrape-b", 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int, 8)
	cfg := msg.Config{EagerThreshold: 1024, Handler: func(m msg.Message) {
		n := len(m.Data)
		m.Release()
		got <- n
	}}
	b, err := msg.Open(epB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	cfg.Handler = func(m msg.Message) { m.Release() }
	a, err := msg.Open(epA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	for _, size := range []int{256, 64 << 10} { // eager, then rendezvous
		if err := a.Send(b.LocalAddr(), make([]byte, size)); err != nil {
			t.Fatal(err)
		}
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatalf("%d-byte transfer never delivered", size)
		}
	}

	addr, stop, err := telemetry.Serve("127.0.0.1:0", telemetry.Default, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Counters that must be present and moving after the traffic above.
	for _, name := range []string{
		"diwarp_msg_eager_sent_total",
		"diwarp_msg_eager_recv_total",
		"diwarp_msg_rdv_sent_total",
		"diwarp_msg_rdv_recv_total",
		"diwarp_msg_eager_bytes_total",
		"diwarp_msg_rdv_bytes_total",
	} {
		v, ok := scrapeValue(text, name)
		if !ok {
			t.Errorf("counter %s missing from scrape", name)
		} else if v == 0 {
			t.Errorf("counter %s never moved", name)
		}
	}
	// Counters that must exist even when zero.
	for _, name := range []string{
		"diwarp_msg_credit_stalls_total",
		"diwarp_msg_credit_reclaims_total",
		"diwarp_msg_credits_sent_total",
		"diwarp_msg_rdv_swept_total",
		"diwarp_msg_rdv_timeouts_total",
		"diwarp_msg_bad_headers_total",
		"diwarp_msg_advisories_total",
	} {
		if _, ok := scrapeValue(text, name); !ok {
			t.Errorf("counter %s missing from scrape", name)
		}
	}
	// The open-rendezvous gauge must read 0 at quiesce.
	if v, ok := scrapeValue(text, "diwarp_msg_rdv_open"); !ok {
		t.Error("gauge diwarp_msg_rdv_open missing from scrape")
	} else if v != 0 {
		t.Errorf("diwarp_msg_rdv_open = %d at quiesce, want 0", v)
	}
	// Histograms: the size (crossover) histogram and rendezvous latency.
	for _, name := range []string{"diwarp_msg_send_bytes", "diwarp_msg_rdv_us"} {
		v, ok := scrapeValue(text, name+"_count")
		if !ok {
			t.Errorf("histogram %s missing from scrape", name)
		} else if v == 0 {
			t.Errorf("histogram %s never observed a transfer", name)
		}
		if !strings.Contains(text, name+"_bucket{le=") {
			t.Errorf("histogram %s has no buckets in scrape", name)
		}
	}
}
