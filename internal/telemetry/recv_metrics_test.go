package telemetry_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	iwarp "repro/internal/core"
	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// TestRecvPipelineMetricNames pins the metric names the batched receive
// datapath exports. Dashboards and alerts key on these strings; renaming
// one must fail a test, not a production scrape.
func TestRecvPipelineMetricNames(t *testing.T) {
	nw := simnet.New(simnet.Config{})
	srvEp, err := nw.OpenDatagram("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	cliEp, err := nw.OpenDatagram("cli", 0)
	if err != nil {
		t.Fatal(err)
	}
	scq, rcq := iwarp.NewCQ(0), iwarp.NewCQ(0)
	srv, err := iwarp.OpenUD(srvEp, memreg.NewPD(), memreg.NewTable(), scq, rcq, iwarp.UDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := iwarp.OpenUD(cliEp, memreg.NewPD(), memreg.NewTable(), iwarp.NewCQ(0), iwarp.NewCQ(0), iwarp.UDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Enough traffic to recycle buffers back into the pool and draw them
	// out again, so the hit counter moves too, not just the miss counter.
	const rounds = 64
	buf := make([]byte, 2048)
	payload := make([]byte, 1024)
	for i := 0; i < rounds; i++ {
		if err := srv.PostRecv(uint64(i), buf); err != nil {
			t.Fatal(err)
		}
		if err := cli.PostSend(uint64(i), srv.LocalAddr(), nio.VecOf(payload)); err != nil {
			t.Fatal(err)
		}
		if _, err := rcq.Poll(2 * time.Second); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}

	addr, stop, err := telemetry.Serve("127.0.0.1:0", telemetry.Default, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Counters that must be present and moving after the exchange above.
	for _, name := range []string{
		"diwarp_ddp_recv_batches_total",
		"diwarp_ddp_recv_segments_total",
		"diwarp_ddp_recycled_total",
		"diwarp_ud_msgs_recv_total",
	} {
		v, ok := scrapeValue(text, name)
		if !ok || v <= 0 {
			t.Errorf("scrape: %s = %d (present=%v), want > 0", name, v, ok)
		}
	}
	// Pool traffic: every receive is either a hit or a miss, and recycling
	// under steady traffic must produce at least one hit.
	hits, okH := scrapeValue(text, "diwarp_ddp_recv_pool_hits_total")
	misses, okM := scrapeValue(text, "diwarp_ddp_recv_pool_misses_total")
	if !okH || !okM {
		t.Fatalf("pool counters missing: hits present=%v, misses present=%v", okH, okM)
	}
	if hits+misses <= 0 {
		t.Errorf("pool counters flat: hits=%d misses=%d", hits, misses)
	}
	// The batch-size histogram expands into _bucket/_sum/_count series.
	if !strings.Contains(text, "diwarp_ddp_recv_batch_segments_bucket{le=") {
		t.Error("scrape: no diwarp_ddp_recv_batch_segments_bucket series")
	}
	if v, ok := scrapeValue(text, "diwarp_ddp_recv_batch_segments_count"); !ok || v <= 0 {
		t.Errorf("scrape: diwarp_ddp_recv_batch_segments_count = %d (present=%v), want > 0", v, ok)
	}
}
