package telemetry

import (
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// bits.Len64 buckets: 0 → bucket 0 (le 0), 1 → bucket 1 (le 1),
	// 2..3 → bucket 2 (le 3), 4..7 → bucket 3 (le 7).
	for _, v := range []int64{0, 1, 2, 3, 4, 7, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 17 { // negative clamps to 0
		t.Fatalf("sum = %d, want 17", s.Sum)
	}
	want := map[uint64]int64{0: 2, 1: 1, 3: 2, 7: 2}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want bounds %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Errorf("bucket le=%d count = %d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
}

func TestHistogramMeanQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(1)
	}
	h.Observe(1 << 20)
	s := h.Snapshot()
	if m := s.Mean(); m < 10485 || m > 10487 {
		t.Fatalf("mean = %f", m)
	}
	if q := s.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %d, want 1", q)
	}
	// The single huge value lives in the top bucket; p99.9 must land there.
	if q := s.Quantile(0.999); q < 1<<20-1 {
		t.Fatalf("p99.9 = %d, want ≥ %d", q, 1<<20-1)
	}
	var empty HistogramSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
}

func TestRegistryAggregatesHandles(t *testing.T) {
	r := NewRegistry()
	// Two components registering the same name: the per-instance handles
	// stay exact, the snapshot is the sum.
	a := r.Counter("diwarp_test_total")
	b := r.Counter("diwarp_test_total")
	a.Add(3)
	b.Add(4)
	if a.Load() != 3 || b.Load() != 4 {
		t.Fatalf("handles not independent: %d, %d", a.Load(), b.Load())
	}
	h1 := r.Histogram("diwarp_test_lat")
	h2 := r.Histogram("diwarp_test_lat")
	h1.Observe(1)
	h2.Observe(1)
	h2.Observe(100)
	g := r.Gauge("diwarp_test_depth")
	g.Set(9)

	s := r.Snapshot()
	if s.Counters["diwarp_test_total"] != 7 {
		t.Fatalf("counter sum = %d, want 7", s.Counters["diwarp_test_total"])
	}
	if s.Gauges["diwarp_test_depth"] != 9 {
		t.Fatalf("gauge = %d, want 9", s.Gauges["diwarp_test_depth"])
	}
	hs := s.Histograms["diwarp_test_lat"]
	if hs.Count != 3 || hs.Sum != 102 {
		t.Fatalf("merged histogram = %+v", hs)
	}
}

func TestRegistryRejectsBadName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for malformed metric name")
		}
	}()
	NewRegistry().Counter("bad name!")
}

// TestConcurrentRecording hammers counters and histograms from many
// goroutines while a reader snapshots continuously — the satellite -race
// test: `go test -race` must pass and the final totals must be exact.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 10000
	)
	c := r.Counter("diwarp_test_hammer_total")
	h := r.Histogram("diwarp_test_hammer_lat")
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			// Monotonic sanity while writers are live.
			if s.Counters["diwarp_test_hammer_total"] < 0 {
				t.Error("negative counter mid-run")
				return
			}
		}
	}()

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			// Half the workers share the registered handles, half register
			// their own under the same names (the multi-QP shape).
			cc, hh := c, h
			if w%2 == 1 {
				cc = r.Counter("diwarp_test_hammer_total")
				hh = r.Histogram("diwarp_test_hammer_lat")
			}
			for i := 0; i < iters; i++ {
				cc.Inc()
				hh.Observe(int64(i))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	s := r.Snapshot()
	if got := s.Counters["diwarp_test_hammer_total"]; got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := s.Histograms["diwarp_test_hammer_lat"].Count; got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[int64]string{
		0:        "0",
		7:        "7",
		999:      "999",
		1000:     "1,000",
		1234567:  "1,234,567",
		-9876543: "-9,876,543",
	}
	for in, want := range cases {
		if got := FormatValue(in); got != want {
			t.Errorf("FormatValue(%d) = %q, want %q", in, got, want)
		}
	}
}
