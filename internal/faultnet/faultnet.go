// Package faultnet is a deterministic fault-injecting wrapper at the
// transport.Datagram seam. It composes under rudp and ddp.DatagramChannel
// exactly like a real lossy path would — the layers above cannot tell the
// difference — and injects the failure modes the paper's datagram-iWARP
// design must absorb: bursty (Gilbert–Elliott) wire loss, reordering,
// duplication, single-byte corruption (which the DDP/RUDP CRC32C trailers
// must catch), one-way partitions with heal, mid-flow path-MTU shrink, and
// ACK-only blackholes.
//
// Every decision is drawn from one seeded PRNG under one mutex and appended
// to an event Log, so a failing chaos schedule is reproducible from its
// seed alone: same seed, same single-driver schedule → bit-for-bit the same
// decision log (compare Log.Fingerprint). Full-stack runs with free-running
// goroutines interleave decisions nondeterministically between peers, so
// there only per-seed invariant verdicts are comparable — the chaos harness
// (faultnet/chaos) relies on exactly that split.
package faultnet

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Class tags a packet for class-targeted faults (the ACK blackhole).
type Class uint8

const (
	ClassData Class = iota // anything that is not an ACK
	ClassAck               // reverse-path acknowledgement (rudp ACK)
)

// GEParams parameterizes the Gilbert–Elliott two-state burst-loss model:
// the chain sits in a good or bad state, transitions with the given
// per-packet probabilities, and drops each packet with the state's loss
// probability. PGoodToBad ≪ PBadToGood with LossBad ≫ LossGood yields the
// short, dense loss bursts that distinguish real congested paths from the
// uniform Bernoulli loss simnet provides.
type GEParams struct {
	PGoodToBad float64 // per-packet probability of entering the bad state
	PBadToGood float64 // per-packet probability of recovering
	LossGood   float64 // drop probability while good (residual loss)
	LossBad    float64 // drop probability while bad (burst loss)
}

// Config selects which faults an Endpoint injects. The zero value injects
// nothing (a transparent wrapper); Seed 0 is a valid seed.
type Config struct {
	Seed        int64
	GE          *GEParams // nil disables the loss model
	ReorderRate float64   // probability a packet is held back
	ReorderSpan int       // max later sends a held packet waits behind (default 4)
	DupRate     float64   // probability a delivered packet is sent twice
	CorruptRate float64   // probability a packet is delivered with one byte flipped
	// MarkRate is the probability a packet is stamped with a congestion
	// mark — the ECN-capable switch marking instead of dropping. No-op
	// unless Marker is also set; adjustable at runtime via SetMarkRate.
	MarkRate float64
	// Marker rewrites a packet copy in place to carry the congestion signal
	// and reports whether it applied (rudp.MarkCongestion: DATA frames
	// only, CRC re-stamped). It always runs on faultnet's own copy — the
	// caller's buffer is never retained or modified.
	Marker func(p []byte) bool
	// Classify tags packets so class-targeted faults (SetAckBlackhole) know
	// what they are looking at. nil classifies everything as ClassData.
	Classify func(p []byte) Class
	// Log receives every decision; nil allocates a fresh NewLog(0). Share
	// one Log across both directions of a link to get one merged timeline.
	Log *Log
}

// Telemetry: injected faults are counted in the default registry and traced
// as EvFault events (Arg = Op) so soak runs can watch injection rates on the
// /metrics endpoint alongside the stack's own drop counters.
var (
	mDrops     = telemetry.Default.Counter("faultnet_drops_total")
	mCorrupts  = telemetry.Default.Counter("faultnet_corruptions_total")
	mDups      = telemetry.Default.Counter("faultnet_duplicates_total")
	mReorders  = telemetry.Default.Counter("faultnet_reorders_total")
	mRecvDrops = telemetry.Default.Counter("faultnet_recv_drops_total")
	mMarks     = telemetry.Default.Counter("faultnet_marks_total")
)

// held is a packet copy waiting out its reorder delay.
type held struct {
	pkt   []byte
	to    transport.Addr
	after int // remaining SendTo calls before release
}

// Endpoint wraps an inner Datagram with fault injection. It implements
// Datagram, BatchSender and BatchRecver (falling back to the inner
// per-packet calls when the inner endpoint lacks the batch interfaces), and
// forwards Recycler/RecvPoolStats when the inner endpoint provides them.
//
// All send-side decisions happen under one mutex, which also covers the
// inner SendTo call: concurrent senders are serialized, which is exactly
// what makes a single-driver schedule bit-for-bit reproducible.
type Endpoint struct {
	inner    transport.Datagram
	cfg      Config
	log      *Log
	classify func(p []byte) Class

	mu       sync.Mutex
	rng      *rand.Rand
	geBad    bool
	heldPkts []held
	partTo   map[transport.Addr]bool
	partFrom map[transport.Addr]bool
	ackHole  bool
	mtu      int // 0 = inherit inner PathMTU; else shrunken path MTU
	closed   bool
}

// Wrap layers fault injection over inner.
func Wrap(inner transport.Datagram, cfg Config) *Endpoint {
	if cfg.ReorderSpan <= 0 {
		cfg.ReorderSpan = 4
	}
	lg := cfg.Log
	if lg == nil {
		lg = NewLog(0)
	}
	cl := cfg.Classify
	if cl == nil {
		cl = func([]byte) Class { return ClassData }
	}
	return &Endpoint{
		inner:    inner,
		cfg:      cfg,
		log:      lg,
		classify: cl,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		partTo:   make(map[transport.Addr]bool),
		partFrom: make(map[transport.Addr]bool),
	}
}

// Log returns the endpoint's decision log.
func (e *Endpoint) Log() *Log { return e.log }

// PartitionTo starts swallowing packets sent to peer (one-way outbound).
func (e *Endpoint) PartitionTo(peer transport.Addr) {
	e.mu.Lock()
	e.partTo[peer] = true
	e.mu.Unlock()
	e.log.append(OpCtl, peer, 0, CtlPartitionTo)
}

// PartitionFrom starts swallowing packets received from peer (one-way
// inbound).
func (e *Endpoint) PartitionFrom(peer transport.Addr) {
	e.mu.Lock()
	e.partFrom[peer] = true
	e.mu.Unlock()
	e.log.append(OpCtl, peer, 0, CtlPartitionFrom)
}

// Heal removes both partition directions for peer.
func (e *Endpoint) Heal(peer transport.Addr) {
	e.mu.Lock()
	delete(e.partTo, peer)
	delete(e.partFrom, peer)
	e.mu.Unlock()
	e.log.append(OpCtl, peer, 0, CtlHeal)
}

// HealAll removes every partition.
func (e *Endpoint) HealAll() {
	e.mu.Lock()
	clear(e.partTo)
	clear(e.partFrom)
	e.mu.Unlock()
	e.log.append(OpCtl, transport.Addr{}, 0, CtlHealAll)
}

// SetAckBlackhole toggles swallowing of ACK-class packets (per Classify):
// data flows, acknowledgements vanish — the asymmetric-path failure that
// provokes spurious retransmission and tests Karn-correct RTO behavior.
func (e *Endpoint) SetAckBlackhole(on bool) {
	e.mu.Lock()
	e.ackHole = on
	e.mu.Unlock()
	code := CtlAckHoleOff
	if on {
		code = CtlAckHoleOn
	}
	e.log.append(OpCtl, transport.Addr{}, 0, code)
}

// SetMTU shrinks the path MTU mid-flow: PathMTU starts reporting n and any
// packet larger than n is silently blackholed, the classic un-renegotiated
// PMTU failure. n <= 0 restores the inner MTU.
func (e *Endpoint) SetMTU(n int) {
	e.mu.Lock()
	if n <= 0 {
		n = 0
	}
	e.mtu = n
	e.mu.Unlock()
	e.log.append(OpCtl, transport.Addr{}, n, CtlMTU)
}

// SetMarkRate changes the congestion-mark probability mid-run — a chaos
// schedule's switch queue filling (rate up) and draining (rate back down).
// Takes effect only when Config.Marker was set at Wrap time.
func (e *Endpoint) SetMarkRate(p float64) {
	e.mu.Lock()
	e.cfg.MarkRate = p
	e.mu.Unlock()
	e.log.append(OpCtl, transport.Addr{}, int(p*1e6), CtlMarkRate)
}

// HeldCount reports how many reorder-held packets are pending release.
func (e *Endpoint) HeldCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.heldPkts)
}

// ReleaseHeld flushes every reorder-held packet to the wire immediately.
// The chaos harness calls it at quiesce so held copies cannot masquerade as
// leaks or lost messages.
func (e *Endpoint) ReleaseHeld() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.heldPkts {
		e.heldPkts[i].after = 0
	}
	e.releaseDueLocked()
}

// releaseDueLocked sends every held packet whose delay has elapsed.
func (e *Endpoint) releaseDueLocked() {
	kept := e.heldPkts[:0]
	for _, h := range e.heldPkts {
		if h.after > 0 {
			kept = append(kept, h)
			continue
		}
		e.log.append(OpRelease, h.to, len(h.pkt), 0)
		telemetry.DefaultTrace.Record(telemetry.EvFault, telemetry.PeerToken(h.to), len(h.pkt), uint32(OpRelease))
		e.inner.SendTo(h.pkt, h.to) //nolint:errcheck // released copy: the wire may be gone, like any late packet
	}
	e.heldPkts = kept
}

// geLossLocked advances the Gilbert–Elliott chain one packet and reports
// whether the packet is lost. Arg-visible state: 0 good, 1 bad.
func (e *Endpoint) geLossLocked() (lost bool, state uint32) {
	g := e.cfg.GE
	if g == nil {
		return false, 0
	}
	if e.geBad {
		if e.rng.Float64() < g.PBadToGood {
			e.geBad = false
		}
	} else {
		if e.rng.Float64() < g.PGoodToBad {
			e.geBad = true
		}
	}
	p, st := g.LossGood, uint32(0)
	if e.geBad {
		p, st = g.LossBad, 1
	}
	return p > 0 && e.rng.Float64() < p, st
}

// SendTo runs the fault pipeline on one packet. Decision order is fixed —
// release due held packets, partition, ACK blackhole, MTU, GE loss,
// congestion mark, corruption, reorder hold, deliver, duplicate — so a seed
// fully determines the decision sequence for a serialized driver. The
// caller's buffer is never retained: mark, corrupt and reorder legs copy.
// Unlike the terminal legs, a mark swaps the marked copy into the rest of
// the pipeline, so marked packets can still be corrupted, held, or
// duplicated downstream.
func (e *Endpoint) SendTo(p []byte, to transport.Addr) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return transport.ErrClosed
	}
	for i := range e.heldPkts {
		e.heldPkts[i].after--
	}
	e.releaseDueLocked()

	drop := func(op Op, arg uint32) error {
		e.log.append(op, to, len(p), arg)
		telemetry.DefaultTrace.Record(telemetry.EvFault, telemetry.PeerToken(to), len(p), uint32(op))
		mDrops.Inc()
		return nil // swallowed: to the caller a drop looks like success, as on a real wire
	}

	if e.partTo[to] {
		return drop(OpDropPartition, 0)
	}
	if e.ackHole && e.classify(p) == ClassAck {
		return drop(OpDropAckHole, 0)
	}
	if e.mtu > 0 && len(p) > e.mtu {
		return drop(OpDropMTU, uint32(e.mtu))
	}
	if lost, st := e.geLossLocked(); lost {
		return drop(OpDropGE, st)
	}
	if e.cfg.MarkRate > 0 && e.cfg.Marker != nil && e.rng.Float64() < e.cfg.MarkRate {
		cp := make([]byte, len(p))
		copy(cp, p)
		if e.cfg.Marker(cp) {
			p = cp
			e.log.append(OpMark, to, len(p), 0)
			telemetry.DefaultTrace.Record(telemetry.EvFault, telemetry.PeerToken(to), len(p), uint32(OpMark))
			mMarks.Inc()
		}
	}
	if e.cfg.CorruptRate > 0 && e.rng.Float64() < e.cfg.CorruptRate {
		bad := make([]byte, len(p))
		copy(bad, p)
		off := 0
		if len(bad) > 0 {
			off = e.rng.Intn(len(bad))
			bad[off] ^= 1 << uint(e.rng.Intn(8))
		}
		e.log.append(OpCorrupt, to, len(p), uint32(off))
		telemetry.DefaultTrace.Record(telemetry.EvFault, telemetry.PeerToken(to), len(p), uint32(OpCorrupt))
		mCorrupts.Inc()
		return e.inner.SendTo(bad, to)
	}
	if e.cfg.ReorderRate > 0 && e.rng.Float64() < e.cfg.ReorderRate {
		cp := make([]byte, len(p))
		copy(cp, p)
		delay := 1 + e.rng.Intn(e.cfg.ReorderSpan)
		e.heldPkts = append(e.heldPkts, held{pkt: cp, to: to, after: delay})
		e.log.append(OpHold, to, len(p), uint32(delay))
		telemetry.DefaultTrace.Record(telemetry.EvFault, telemetry.PeerToken(to), len(p), uint32(OpHold))
		mReorders.Inc()
		return nil
	}
	e.log.append(OpDeliver, to, len(p), 0)
	if err := e.inner.SendTo(p, to); err != nil {
		return err
	}
	if e.cfg.DupRate > 0 && e.rng.Float64() < e.cfg.DupRate {
		e.log.append(OpDup, to, len(p), 0)
		telemetry.DefaultTrace.Record(telemetry.EvFault, telemetry.PeerToken(to), len(p), uint32(OpDup))
		mDups.Inc()
		return e.inner.SendTo(p, to)
	}
	return nil
}

// SendBatch runs each packet of the burst through the same per-packet
// pipeline, preserving the batch API for the layers above without letting a
// whole burst share one fault verdict.
func (e *Endpoint) SendBatch(pkts [][]byte, to transport.Addr) (int, error) {
	for i, p := range pkts {
		if err := e.SendTo(p, to); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

// Recv returns the next datagram that survives the inbound partition
// filter. Filtered packets are recycled to the inner pool and the wait
// restarts with the full timeout (chaos schedules tolerate the slack).
func (e *Endpoint) Recv(timeout time.Duration) ([]byte, transport.Addr, error) {
	for {
		p, from, err := e.inner.Recv(timeout)
		if err != nil {
			return p, from, err
		}
		if !e.recvBlocked(from, len(p)) {
			return p, from, nil
		}
		e.Recycle(p)
	}
}

// RecvBatch mirrors Recv for bursts, compacting inbound-partitioned packets
// out of the result. When the inner endpoint lacks BatchRecver it degrades
// to a single Recv, preserving the n ≥ 1 contract.
func (e *Endpoint) RecvBatch(pkts [][]byte, froms []transport.Addr, timeout time.Duration) (int, error) {
	br, ok := e.inner.(transport.BatchRecver)
	if !ok {
		p, from, err := e.Recv(timeout)
		if err != nil {
			return 0, err
		}
		pkts[0], froms[0] = p, from
		return 1, nil
	}
	for {
		n, err := br.RecvBatch(pkts, froms, timeout)
		if err != nil {
			return n, err
		}
		kept := 0
		for i := 0; i < n; i++ {
			if e.recvBlocked(froms[i], len(pkts[i])) {
				e.Recycle(pkts[i])
				continue
			}
			pkts[kept], froms[kept] = pkts[i], froms[i]
			kept++
		}
		if kept > 0 {
			return kept, nil
		}
	}
}

func (e *Endpoint) recvBlocked(from transport.Addr, n int) bool {
	e.mu.Lock()
	blocked := e.partFrom[from]
	e.mu.Unlock()
	if blocked {
		e.log.append(OpRecvDrop, from, n, 0)
		telemetry.DefaultTrace.Record(telemetry.EvFault, telemetry.PeerToken(from), n, uint32(OpRecvDrop))
		mRecvDrops.Inc()
	}
	return blocked
}

// Recycle forwards to the inner pool when one exists.
func (e *Endpoint) Recycle(p []byte) {
	if rc, ok := e.inner.(transport.Recycler); ok {
		rc.Recycle(p)
	}
}

// RecvPoolStats forwards the inner pool counters when available.
func (e *Endpoint) RecvPoolStats() (hits, misses int64) {
	if ps, ok := e.inner.(transport.RecvPoolStats); ok {
		return ps.RecvPoolStats()
	}
	return 0, 0
}

// LocalAddr returns the inner endpoint's address.
func (e *Endpoint) LocalAddr() transport.Addr { return e.inner.LocalAddr() }

// MaxDatagram returns the inner limit: the transport's maximum is a host
// property, not a path property, so the MTU shrink does not move it.
func (e *Endpoint) MaxDatagram() int { return e.inner.MaxDatagram() }

// BatchFeatures forwards the inner endpoint's kernel batch capabilities so
// the layers above a faulty link size their bursts the same way they would
// on the clean link (GRO split-back still happens below the fault filter,
// and SendBatch/RecvBatch above preserve per-packet fault verdicts).
func (e *Endpoint) BatchFeatures() transport.BatchFeatures {
	if bc, ok := e.inner.(transport.BatchCapabilities); ok {
		return bc.BatchFeatures()
	}
	return transport.BatchFeatures{}
}

// PathMTU reports the shrunken MTU once SetMTU has taken effect.
func (e *Endpoint) PathMTU() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mtu > 0 && e.mtu < e.inner.PathMTU() {
		return e.mtu
	}
	return e.inner.PathMTU()
}

// Close discards held packets and closes the inner endpoint.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.heldPkts = nil
	e.mu.Unlock()
	return e.inner.Close()
}
