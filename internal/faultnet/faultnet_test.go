package faultnet

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/transport"
)

// captureEP is a stub inner Datagram that records every packet handed to
// the wire, copying so later caller-side mutations are visible as bugs.
type captureEP struct {
	sent  [][]byte
	dests []transport.Addr
}

func (c *captureEP) SendTo(p []byte, to transport.Addr) error {
	cp := make([]byte, len(p))
	copy(cp, p)
	c.sent = append(c.sent, cp)
	c.dests = append(c.dests, to)
	return nil
}
func (c *captureEP) Recv(time.Duration) ([]byte, transport.Addr, error) {
	return nil, transport.Addr{}, transport.ErrTimeout
}
func (c *captureEP) LocalAddr() transport.Addr { return transport.Addr{Node: "inner", Port: 1} }
func (c *captureEP) MaxDatagram() int          { return transport.MaxDatagramSize }
func (c *captureEP) PathMTU() int              { return transport.DefaultMTU }
func (c *captureEP) Close() error              { return nil }

var peer = transport.Addr{Node: "peer", Port: 7}

// driveScript pushes a fixed single-goroutine schedule through a fresh
// Endpoint and returns the wire transcript plus the decision log.
func driveScript(seed int64) (*captureEP, *Log) {
	inner := &captureEP{}
	ep := Wrap(inner, Config{
		Seed:        seed,
		GE:          &GEParams{PGoodToBad: 0.1, PBadToGood: 0.4, LossGood: 0.01, LossBad: 0.6},
		ReorderRate: 0.15,
		DupRate:     0.1,
		CorruptRate: 0.1,
	})
	for i := 0; i < 200; i++ {
		p := bytes.Repeat([]byte{byte(i)}, 32+i%64)
		ep.SendTo(p, peer)
	}
	ep.ReleaseHeld()
	ep.Close()
	return inner, ep.Log()
}

// TestDeterministicReplay pins the tentpole property: the same seed driving
// the same serialized schedule produces bit-for-bit the same decision log
// and the same wire transcript. A different seed must diverge (or the
// fingerprint is vacuous).
func TestDeterministicReplay(t *testing.T) {
	in1, log1 := driveScript(42)
	in2, log2 := driveScript(42)
	if log1.Fingerprint() != log2.Fingerprint() {
		t.Fatalf("same seed, different logs: %x vs %x", log1.Fingerprint(), log2.Fingerprint())
	}
	if log1.Total() != log2.Total() {
		t.Fatalf("same seed, different event counts: %d vs %d", log1.Total(), log2.Total())
	}
	if len(in1.sent) != len(in2.sent) {
		t.Fatalf("same seed, different wire transcripts: %d vs %d packets", len(in1.sent), len(in2.sent))
	}
	for i := range in1.sent {
		if !bytes.Equal(in1.sent[i], in2.sent[i]) {
			t.Fatalf("wire packet %d differs between same-seed runs", i)
		}
	}
	_, log3 := driveScript(43)
	if log3.Fingerprint() == log1.Fingerprint() {
		t.Fatal("different seeds produced identical fingerprints")
	}
}

// TestGEBurstLoss checks the two-state model actually bursts: with a sticky
// bad state the loss pattern must contain a run of consecutive drops longer
// than independent Bernoulli loss at the same average rate plausibly yields.
func TestGEBurstLoss(t *testing.T) {
	inner := &captureEP{}
	ep := Wrap(inner, Config{
		Seed: 11,
		GE:   &GEParams{PGoodToBad: 0.05, PBadToGood: 0.1, LossGood: 0, LossBad: 1.0},
	})
	const n = 2000
	for i := 0; i < n; i++ {
		ep.SendTo([]byte{byte(i)}, peer)
	}
	drops, maxRun, run := 0, 0, 0
	for _, ev := range ep.Log().Events() {
		switch ev.Op {
		case OpDropGE:
			drops++
			run++
			if run > maxRun {
				maxRun = run
			}
		case OpDeliver:
			run = 0
		}
	}
	if drops == 0 {
		t.Fatal("GE model dropped nothing")
	}
	if maxRun < 5 {
		t.Fatalf("longest loss burst is %d packets; the two-state model should produce dense bursts", maxRun)
	}
	if delivered := len(inner.sent); delivered+drops != n {
		t.Fatalf("accounting: %d delivered + %d dropped != %d sent", delivered, drops, n)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	inner := &captureEP{}
	ep := Wrap(inner, Config{Seed: 1})
	other := transport.Addr{Node: "other", Port: 8}
	ep.PartitionTo(peer)
	ep.SendTo([]byte("to-peer"), peer)   // swallowed
	ep.SendTo([]byte("to-other"), other) // unaffected
	if len(inner.sent) != 1 || !bytes.Equal(inner.sent[0], []byte("to-other")) {
		t.Fatalf("partition to one peer must not affect others: wire=%q", inner.sent)
	}
	ep.Heal(peer)
	ep.SendTo([]byte("after-heal"), peer)
	if len(inner.sent) != 2 || !bytes.Equal(inner.sent[1], []byte("after-heal")) {
		t.Fatalf("healed path must deliver: wire=%q", inner.sent)
	}
}

func TestAckBlackhole(t *testing.T) {
	inner := &captureEP{}
	ep := Wrap(inner, Config{
		Seed: 1,
		Classify: func(p []byte) Class {
			if len(p) > 0 && p[0] == 2 {
				return ClassAck
			}
			return ClassData
		},
	})
	ep.SetAckBlackhole(true)
	ep.SendTo([]byte{2, 0, 0}, peer) // ACK: swallowed
	ep.SendTo([]byte{1, 0, 0}, peer) // data: passes
	ep.SetAckBlackhole(false)
	ep.SendTo([]byte{2, 0, 0}, peer) // ACK again: passes now
	if len(inner.sent) != 2 {
		t.Fatalf("blackhole delivered %d packets, want 2", len(inner.sent))
	}
	if inner.sent[0][0] != 1 || inner.sent[1][0] != 2 {
		t.Fatalf("wrong packets survived the ACK blackhole: % x", inner.sent)
	}
}

func TestMTUShrinkBlackholesOversized(t *testing.T) {
	inner := &captureEP{}
	ep := Wrap(inner, Config{Seed: 1})
	big := make([]byte, 1200)
	if err := ep.SendTo(big, peer); err != nil || len(inner.sent) != 1 {
		t.Fatalf("pre-shrink send failed: %v, wire=%d", err, len(inner.sent))
	}
	ep.SetMTU(576)
	if got := ep.PathMTU(); got != 576 {
		t.Fatalf("PathMTU = %d after shrink, want 576", got)
	}
	if err := ep.SendTo(big, peer); err != nil {
		t.Fatalf("oversized send must be silently blackholed, got %v", err)
	}
	ep.SendTo(make([]byte, 500), peer) // fits: passes
	if len(inner.sent) != 2 {
		t.Fatalf("wire saw %d packets, want 2 (oversized one blackholed)", len(inner.sent))
	}
	ep.SetMTU(0)
	if got := ep.PathMTU(); got != transport.DefaultMTU {
		t.Fatalf("PathMTU = %d after restore, want %d", got, transport.DefaultMTU)
	}
}

// TestReorderHoldAndRelease pins the reorder mechanism: a held packet goes
// out after later sends, and the held copy is independent of the caller's
// buffer (which rudp recycles and rewrites immediately).
func TestReorderHoldAndRelease(t *testing.T) {
	inner := &captureEP{}
	ep := Wrap(inner, Config{Seed: 5, ReorderRate: 1.0, ReorderSpan: 1})
	first := bytes.Repeat([]byte{0xAA}, 64)
	ep.SendTo(first, peer)
	if len(inner.sent) != 0 || ep.HeldCount() != 1 {
		t.Fatalf("first packet should be held: wire=%d held=%d", len(inner.sent), ep.HeldCount())
	}
	for i := range first {
		first[i] = 0xFF // caller recycles its buffer; the held copy must not see this
	}
	second := bytes.Repeat([]byte{0xBB}, 64)
	ep.SendTo(second, peer) // releases the held first packet, then holds second
	ep.ReleaseHeld()
	if len(inner.sent) != 2 {
		t.Fatalf("wire saw %d packets, want 2", len(inner.sent))
	}
	if inner.sent[0][0] != 0xAA {
		t.Fatalf("held copy was corrupted by caller reuse: % x", inner.sent[0][:4])
	}
	if inner.sent[1][0] != 0xBB {
		t.Fatalf("release order wrong: % x", inner.sent[1][:4])
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	inner := &captureEP{}
	ep := Wrap(inner, Config{Seed: 9, CorruptRate: 1.0})
	orig := bytes.Repeat([]byte{0x55}, 128)
	ep.SendTo(orig, peer)
	if len(inner.sent) != 1 {
		t.Fatalf("corrupt leg must still deliver, wire=%d", len(inner.sent))
	}
	if bytes.Equal(orig, inner.sent[0]) {
		t.Fatal("corrupt leg delivered identical bytes")
	}
	diff := 0
	for i := range orig {
		if orig[i] != inner.sent[0][i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if orig[0] != 0x55 {
		t.Fatal("corrupt leg mutated the caller's buffer instead of a copy")
	}
}

func TestDupDeliversTwiceFromOneSend(t *testing.T) {
	inner := &captureEP{}
	ep := Wrap(inner, Config{Seed: 3, DupRate: 1.0})
	ep.SendTo([]byte("once"), peer)
	if len(inner.sent) != 2 {
		t.Fatalf("dup leg delivered %d copies, want 2", len(inner.sent))
	}
	if !bytes.Equal(inner.sent[0], inner.sent[1]) {
		t.Fatal("duplicate differs from original")
	}
}

func TestSendBatchPerPacketVerdicts(t *testing.T) {
	inner := &captureEP{}
	ep := Wrap(inner, Config{
		Seed: 21,
		GE:   &GEParams{PGoodToBad: 1.0, PBadToGood: 0, LossBad: 0.5},
	})
	pkts := make([][]byte, 64)
	for i := range pkts {
		pkts[i] = []byte{byte(i)}
	}
	n, err := ep.SendBatch(pkts, peer)
	if err != nil || n != len(pkts) {
		t.Fatalf("SendBatch = %d, %v", n, err)
	}
	if len(inner.sent) == 0 || len(inner.sent) == len(pkts) {
		t.Fatalf("batch must get per-packet verdicts: %d/%d delivered", len(inner.sent), len(pkts))
	}
}

func TestClosedEndpointRejectsSends(t *testing.T) {
	ep := Wrap(&captureEP{}, Config{Seed: 1})
	ep.Close()
	if err := ep.SendTo([]byte("x"), peer); err != transport.ErrClosed {
		t.Fatalf("SendTo after Close = %v, want ErrClosed", err)
	}
}
