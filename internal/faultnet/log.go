package faultnet

import (
	"fmt"
	"sync"

	"repro/internal/transport"
)

// Op identifies one fault decision recorded in the event log. Values are
// stable: they are hashed into the log fingerprint and carried as the Arg of
// telemetry EvFault trace events, so reordering them would silently change
// recorded fingerprints.
type Op uint8

const (
	OpDeliver       Op = iota + 1 // packet passed through unharmed
	OpDropGE                      // Gilbert–Elliott wire loss
	OpDropPartition               // one-way partition swallowed an outgoing packet
	OpDropAckHole                 // ACK blackhole swallowed an ACK-class packet
	OpDropMTU                     // packet exceeded the shrunken path MTU
	OpCorrupt                     // a copy was delivered with one byte flipped
	OpHold                        // packet held back for reordering
	OpRelease                     // a held packet was released (out of order)
	OpDup                         // packet delivered a second time
	OpRecvDrop                    // one-way partition swallowed an incoming packet
	OpCtl                         // control-plane change (partition/heal/MTU/blackhole)
	OpMark                        // a copy was delivered carrying a congestion mark
)

func (o Op) String() string {
	switch o {
	case OpDeliver:
		return "DELIVER"
	case OpDropGE:
		return "DROP_GE"
	case OpDropPartition:
		return "DROP_PARTITION"
	case OpDropAckHole:
		return "DROP_ACKHOLE"
	case OpDropMTU:
		return "DROP_MTU"
	case OpCorrupt:
		return "CORRUPT"
	case OpHold:
		return "HOLD"
	case OpRelease:
		return "RELEASE"
	case OpDup:
		return "DUP"
	case OpRecvDrop:
		return "RECV_DROP"
	case OpCtl:
		return "CTL"
	case OpMark:
		return "MARK"
	default:
		return "NONE"
	}
}

// Control-plane codes carried in an OpCtl event's Arg.
const (
	CtlPartitionTo uint32 = iota + 1
	CtlPartitionFrom
	CtlHeal
	CtlHealAll
	CtlAckHoleOn
	CtlAckHoleOff
	CtlMTU // Arg is shifted: CtlMTU<<16 | mtu value is too wide; MTU goes in Len
	CtlMarkRate
)

// Event is one logged fault decision.
type Event struct {
	Seq  uint64         // 1-based position in the log's full history
	Op   Op             // what the fault layer decided
	Peer transport.Addr // destination (sends) or source (receives)
	Len  int            // packet length in bytes; control value for OpCtl/MTU
	Arg  uint32         // op-specific: corrupt offset, hold delay, GE state, ctl code
}

func (ev Event) String() string {
	return fmt.Sprintf("#%d %s %s len=%d arg=%d", ev.Seq, ev.Op, ev.Peer, ev.Len, ev.Arg)
}

// DefaultLogCap bounds how many events a log retains; the running
// fingerprint still covers the full history.
const DefaultLogCap = 4096

// Log is a bounded, mutex-guarded record of every fault decision an
// Endpoint makes, in decision order. Its purpose is seed replay: two runs
// with the same seed and the same single-driver schedule produce
// bit-for-bit identical logs (compare Fingerprint), and a failing chaos run
// prints Tail so the seed can be rerun under a debugger. One Log may be
// shared by several Endpoints to interleave their decisions into one
// timeline.
type Log struct {
	mu     sync.Mutex
	cap    int
	total  uint64
	fp     uint64 // running FNV-1a over every event ever appended
	events []Event
}

// NewLog creates a log retaining up to capacity events (DefaultLogCap if
// capacity <= 0).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultLogCap
	}
	return &Log{cap: capacity, fp: fnvOffset}
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvU64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

func (l *Log) append(op Op, peer transport.Addr, n int, arg uint32) {
	l.mu.Lock()
	l.total++
	ev := Event{Seq: l.total, Op: op, Peer: peer, Len: n, Arg: arg}
	h := fnvByte(l.fp, byte(op))
	h = fnvString(h, peer.Node)
	h = fnvU64(h, uint64(peer.Port))
	h = fnvU64(h, uint64(int64(n)))
	l.fp = fnvU64(h, uint64(arg))
	if len(l.events) == l.cap {
		copy(l.events, l.events[1:])
		l.events[len(l.events)-1] = ev
	} else {
		l.events = append(l.events, ev)
	}
	l.mu.Unlock()
}

// Total returns how many events have ever been appended.
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Fingerprint returns the running FNV-1a hash over the log's full history.
// Equal fingerprints mean bit-for-bit identical decision sequences.
func (l *Log) Fingerprint() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fp
}

// Events returns a copy of the retained events, oldest first.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Tail returns the last n retained events formatted one per line, for
// failure reports.
func (l *Log) Tail(n int) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.events) {
		n = len(l.events)
	}
	out := make([]string, 0, n)
	for _, ev := range l.events[len(l.events)-n:] {
		out = append(out, ev.String())
	}
	return out
}
