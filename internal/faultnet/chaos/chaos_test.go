package chaos

import (
	"flag"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// seedFlag lets a failing chaos run be replayed: the failure report prints
// the seed, and `go test -run Chaos -faultnet.seed=N` re-executes every
// schedule with that base seed instead of the committed defaults.
var seedFlag = flag.Int64("faultnet.seed", 0, "override the base seed for all chaos schedules")

func seedOr(def int64) int64 {
	if *seedFlag != 0 {
		return *seedFlag
	}
	return def
}

// check runs a schedule and fails the test with the full report — seed,
// fault-log fingerprint, and decision tail — if any invariant broke.
func check(t *testing.T, v *Verdict) {
	t.Helper()
	t.Logf("%s", v.Report())
	if !v.Passed() {
		t.Errorf("schedule %q violated %d invariant(s); replay with -faultnet.seed=%d",
			v.Name, len(v.Failures), v.Seed)
	}
}

// ge is the steady-state Gilbert–Elliott profile used by the lossy
// schedules: ~1% background loss with dense bursts (>60% inside a bad
// state) — comfortably past the ≥5% average the acceptance bar asks for.
var ge = &GESoak

func TestChaosRDBurstLoss(t *testing.T) {
	check(t, RunRD(RDSchedule{
		Name: "rd-burst-loss", Seed: seedOr(1001),
		Messages: 300, PayloadLen: 512,
		FaultAB:   faultnet.Config{GE: ge},
		FaultBA:   faultnet.Config{GE: ge},
		CheckWire: true,
	}))
}

func TestChaosRDReorderDupCorrupt(t *testing.T) {
	check(t, RunRD(RDSchedule{
		Name: "rd-reorder-dup-corrupt", Seed: seedOr(2002),
		Messages: 300, PayloadLen: 512,
		FaultAB:   faultnet.Config{ReorderRate: 0.2, ReorderSpan: 4, DupRate: 0.15, CorruptRate: 0.05},
		FaultBA:   faultnet.Config{ReorderRate: 0.1, DupRate: 0.1, CorruptRate: 0.05},
		CheckWire: true,
	}))
}

func TestChaosRDAckBlackhole(t *testing.T) {
	check(t, RunRD(RDSchedule{
		Name: "rd-ack-blackhole", Seed: seedOr(3003),
		Messages: 200, PayloadLen: 256,
		AckHoleAtMsg: 50, AckHoleDur: 150 * time.Millisecond,
		CheckWire: true,
	}))
}

func TestChaosRDPartitionHeal(t *testing.T) {
	check(t, RunRD(RDSchedule{
		Name: "rd-partition-heal", Seed: seedOr(4004),
		Messages: 200, PayloadLen: 256,
		PartitionAtMsg: 100, PartitionDur: 300 * time.Millisecond,
		CheckWire: true,
	}))
}

func TestChaosRDMTUShrink(t *testing.T) {
	check(t, RunRD(RDSchedule{
		Name: "rd-mtu-shrink", Seed: seedOr(5005),
		Messages: 200, PayloadLen: 1200,
		MTUShrinkAtMsg: 80, MTUShrinkTo: 576, MTUShrinkDur: 300 * time.Millisecond,
		CheckWire: true,
	}))
}

func TestChaosRDCrashRestart(t *testing.T) {
	check(t, RunRD(RDSchedule{
		Name: "rd-crash-restart", Seed: seedOr(6006),
		Messages: 250, PayloadLen: 256,
		FaultAB:    faultnet.Config{GE: &faultnet.GEParams{PGoodToBad: 0.02, PBadToGood: 0.5, LossGood: 0.01, LossBad: 0.3}},
		CrashAtMsg: 120,
		// Crash strands the dead endpoint's queued packets by design, so
		// the wire-pool balance invariant does not apply here.
	}))
}

// TestChaosRDKitchenSink layers every steady-state fault plus a partition
// and an ACK blackhole in one run.
func TestChaosRDKitchenSink(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	check(t, RunRD(RDSchedule{
		Name: "rd-kitchen-sink", Seed: seedOr(7007),
		Messages: 400, PayloadLen: 700,
		FaultAB:        faultnet.Config{GE: ge, ReorderRate: 0.1, ReorderSpan: 3, DupRate: 0.1, CorruptRate: 0.03},
		FaultBA:        faultnet.Config{GE: ge, DupRate: 0.1, CorruptRate: 0.03},
		PartitionAtMsg: 150, PartitionDur: 250 * time.Millisecond,
		AckHoleAtMsg: 300, AckHoleDur: 100 * time.Millisecond,
	}))
}

// TestChaosRDECNMark pushes a heavy congestion-mark rate through the A→B
// leg and requires the marks to arrive (receiver counts ECN-flagged DATA)
// and to matter (sender performs at least one multiplicative decrease).
func TestChaosRDECNMark(t *testing.T) {
	check(t, RunRD(RDSchedule{
		Name: "rd-ecn-mark", Seed: seedOr(12012),
		Messages: 300, PayloadLen: 512,
		FaultAB:      faultnet.Config{MarkRate: 0.3},
		RequireMarks: true,
		CheckWire:    true,
	}))
}

// TestChaosRDCongestionBurst layers ECN marking on top of Gilbert–Elliott
// burst loss: recovery (fast retransmit + RTO) and congestion response
// (mark-driven decrease) must coexist without deadlocking the window.
func TestChaosRDCongestionBurst(t *testing.T) {
	check(t, RunRD(RDSchedule{
		Name: "rd-congestion-burst", Seed: seedOr(13013),
		Messages: 300, PayloadLen: 512,
		FaultAB:   faultnet.Config{GE: ge, MarkRate: 0.2},
		CheckWire: true,
	}))
}

// TestChaosRDReorderNoLoss is the no-spurious-recovery invariant: with
// reordering (span 2) and duplication but zero loss, the 64-bit SACK map
// plus the dup-ACK threshold must keep diwarp_rudp_retransmits_total at
// exactly 0 — any retransmission on this schedule is spurious by
// construction.
func TestChaosRDReorderNoLoss(t *testing.T) {
	check(t, RunRD(RDSchedule{
		Name: "rd-reorder-no-loss", Seed: seedOr(14014),
		Messages: 300, PayloadLen: 512,
		FaultAB:         faultnet.Config{ReorderRate: 0.25, ReorderSpan: 2, DupRate: 0.1},
		RequireNoRexmit: true,
		CheckWire:       true,
	}))
}

func TestChaosUDCleanBaseline(t *testing.T) {
	check(t, RunUD(UDSchedule{
		Name: "ud-clean-baseline", Seed: seedOr(8008),
		Sends: 40, Writes: 4, WriteLen: 100 << 10,
	}))
}

func TestChaosUDLossReorderDup(t *testing.T) {
	check(t, RunUD(UDSchedule{
		Name: "ud-loss-reorder-dup", Seed: seedOr(9009),
		Sends: 60, Writes: 6, WriteLen: 150 << 10,
		Fault: faultnet.Config{GE: ge, ReorderRate: 0.15, ReorderSpan: 3, DupRate: 0.1},
	}))
}

// TestChaosUDCorruption: every corrupted segment must be eaten by the DDP
// CRC — placement stays byte-identical to the shadow and advisory errors
// never consume a posted receive.
func TestChaosUDCorruption(t *testing.T) {
	check(t, RunUD(UDSchedule{
		Name: "ud-corruption", Seed: seedOr(10010),
		Sends: 60, Writes: 6, WriteLen: 150 << 10,
		Fault: faultnet.Config{CorruptRate: 0.2, DupRate: 0.1},
	}))
}

// TestChaosUDPartition: a one-way partition drops the tail of the
// Write-Record stream wholesale. Degrading gracefully means the drops are
// counted in the fault log, every posted WR still completes exactly once
// on both sides (no stuck work requests), and the partitioned writes'
// bytes never appear in the target region.
func TestChaosUDPartition(t *testing.T) {
	v := RunUD(UDSchedule{
		Name: "ud-partition", Seed: seedOr(11011),
		Sends: 40, Writes: 8, WriteLen: 100 << 10,
		PartitionAtWrite: 4,
	})
	check(t, v)
	if *seedFlag != 0 {
		return
	}
	drops := 0
	for _, ev := range v.FaultLog.Events() {
		if ev.Op == faultnet.OpDropPartition {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("partition schedule produced no partition drops")
	}
}

// TestChaosRegressionSeed pins the committed seed that exercised the
// reliability bugs this harness was built to catch — pre-hardening, this
// schedule tripped three distinct failures:
//
//   - corrupted ACK headers were trusted (no wire CRC), so a flipped bit
//     in a cumulative-ack field silently acknowledged — and discarded —
//     data the peer never received;
//   - duplicated DATA beyond the receive window was buffered without
//     bound instead of dropped;
//   - a restarted receiver SACK-absorbed a prior conversation's sequence
//     numbers, turning peer death into silent loss.
//
// With the fixes (wire CRC32C, bounded accept window, conversation
// epochs) the schedule must pass, and the run must actually have pushed
// corruption and duplication through the stack — otherwise the test is
// vacuous.
func TestChaosRegressionSeed(t *testing.T) {
	v := RunRD(RDSchedule{
		Name: "rd-regression-2718", Seed: seedOr(2718),
		Messages: 300, PayloadLen: 512,
		FaultAB: faultnet.Config{GE: ge, DupRate: 0.15, CorruptRate: 0.1},
		FaultBA: faultnet.Config{GE: ge, DupRate: 0.15, CorruptRate: 0.1},
	})
	check(t, v)
	if *seedFlag != 0 {
		return // replay run: fault mix depends on the override seed
	}
	var corrupts, dups, drops int
	for _, ev := range v.FaultLog.Events() {
		switch ev.Op {
		case faultnet.OpCorrupt:
			corrupts++
		case faultnet.OpDup:
			dups++
		case faultnet.OpDropGE:
			drops++
		}
	}
	if corrupts == 0 || dups == 0 || drops == 0 {
		t.Fatalf("regression seed no longer exercises the fault paths: corrupts=%d dups=%d drops=%d",
			corrupts, dups, drops)
	}
}
