// Package chaos is the fault-injection soak harness: it drives RD (rudp)
// and UD (verbs-layer) traffic through faultnet-wrapped transports under
// scripted fault schedules and checks the stack's end-to-end invariants —
// the properties the paper's datagram-iWARP design promises to preserve
// over an unreliable wire:
//
//   - RD delivery is exactly-once and in-order per peer; a message either
//     arrives once or its loss surfaces as ErrPeerDead — never silently.
//   - Write-Record placement matches a sender-side shadow copy
//     byte-for-byte: a byte is either untouched or correct, regardless of
//     loss, reordering, duplication, or corruption (the CRC must eat it).
//   - Completion-queue conservation: every posted work request completes
//     exactly once (success, timeout, or close-flush) — no completion is
//     lost and none is duplicated.
//   - Buffer pools balance at quiesce: every pooled buffer handed out came
//     back (gets == puts), so no fault path leaks or double-frees.
//
// Schedules are seeded: the same seed replays the same faultnet decision
// sequence (see faultnet.Log). Full-stack runs interleave decisions by
// goroutine timing, so across runs the comparable artifact is the verdict,
// and a failure report carries the seed plus the decision-log tail for
// replay under `go test -run Chaos -faultnet.seed=N`.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	iwarp "repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/rudp"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Verdict is the outcome of one schedule: empty Failures means every
// invariant held. Fingerprint and Tail identify the fault decision
// sequence for seed replay.
type Verdict struct {
	Name        string
	Seed        int64
	Failures    []string
	Sent        int
	Delivered   int
	DeadErrors  int // ErrPeerDead observations the schedule absorbed
	Fingerprint uint64
	Tail        []string
	FaultLog    *faultnet.Log // full decision log for the run
	Indices     []int         // RD only: message indices in delivery order

	// RD only: the endpoints' reliability counters at quiesce (sender a,
	// receiver b — the final incarnation after a scripted crash). Loss-
	// recovery and congestion-control invariants key off these.
	SenderStats   rudp.Snapshot
	ReceiverStats rudp.Snapshot
}

// Passed reports whether every invariant held.
func (v *Verdict) Passed() bool { return len(v.Failures) == 0 }

func (v *Verdict) failf(format string, args ...any) {
	v.Failures = append(v.Failures, fmt.Sprintf(format, args...))
}

// Report formats the verdict for humans; failing verdicts include the seed
// and the fault-log tail so the run can be replayed.
func (v *Verdict) Report() string {
	var b bytes.Buffer
	status := "PASS"
	if !v.Passed() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "%s %s seed=%d sent=%d delivered=%d dead=%d log=%016x\n",
		status, v.Name, v.Seed, v.Sent, v.Delivered, v.DeadErrors, v.Fingerprint)
	for _, f := range v.Failures {
		fmt.Fprintf(&b, "  FAIL: %s\n", f)
	}
	if !v.Passed() {
		fmt.Fprintf(&b, "  replay: go test ./internal/faultnet/chaos -run Chaos -faultnet.seed=%d\n", v.Seed)
		for _, line := range v.Tail {
			fmt.Fprintf(&b, "  log: %s\n", line)
		}
	}
	return b.String()
}

// payloadFor builds message i's deterministic RD payload: index header
// plus a per-message fill byte the receiver verifies.
func payloadFor(i, size int) []byte {
	if size < 5 {
		size = 5
	}
	p := make([]byte, 0, size)
	p = nio.PutU32(p, uint32(i))
	fill := byte(i*31 + 7)
	for len(p) < size {
		p = append(p, fill)
	}
	return p
}

// RDSchedule scripts one RD (rudp) chaos run. Steady-state faults come
// from the two faultnet configs (a's outbound and b's outbound); the
// *AtMsg fields trigger scripted events when the sender reaches that
// message index, each reverting after its duration.
type RDSchedule struct {
	Name       string
	Seed       int64
	Messages   int
	PayloadLen int

	FaultAB faultnet.Config // applied to a's outbound packets (DATA path)
	FaultBA faultnet.Config // applied to b's outbound packets (ACK path)

	PartitionAtMsg int // one-way partition a→b before sending this index
	PartitionDur   time.Duration
	AckHoleAtMsg   int // swallow b's ACKs starting at this index
	AckHoleDur     time.Duration
	MTUShrinkAtMsg int // shrink a's path MTU at this index
	MTUShrinkTo    int
	MTUShrinkDur   time.Duration
	CrashAtMsg     int // crash and restart the receiver before this index

	CheckWire bool // assert simnet packet-pool balance at quiesce (clean-ending schedules only)

	// RequireNoRexmit asserts the sender retransmitted nothing — the
	// loss-free-reorder invariant: SACK already tells the sender every
	// displaced packet arrived, and fewer than dupAckThresh duplicate ACKs
	// accumulate under a reorder span of 2, so any retransmission (RTO or
	// fast) on a loss-free schedule is spurious. Only meaningful when
	// neither direction drops packets.
	RequireNoRexmit bool
	// RequireMarks asserts the ECN signal chain ran end to end: the
	// receiver observed congestion marks and the sender answered echoes
	// with multiplicative decreases. Use with a MarkRate > 0 schedule and
	// no scripted crash (stats come from the final incarnation).
	RequireMarks bool
}

// classifyRDPacket tags rudp ACKs for faultnet's ACK blackhole.
func classifyRDPacket(p []byte) faultnet.Class {
	if rudp.IsAckPacket(p) {
		return faultnet.ClassAck
	}
	return faultnet.ClassData
}

// RunRD executes one RD schedule and checks the RD invariants.
func RunRD(s RDSchedule) *Verdict {
	v := &Verdict{Name: s.Name, Seed: s.Seed}
	wireGets0, wirePuts0 := simnet.PktBufBalance()
	wireHeld0 := wireGets0 - wirePuts0

	net := simnet.New(simnet.Config{}) // faults come from faultnet, not the substrate
	log := faultnet.NewLog(0)
	defer func() {
		v.Fingerprint = log.Fingerprint()
		v.FaultLog = log
		if !v.Passed() {
			v.Tail = log.Tail(20)
		}
	}()

	wrap := func(node string, port uint16, cfg faultnet.Config, seed int64) (*faultnet.Endpoint, *rudp.Endpoint, error) {
		ep, err := net.OpenDatagram(node, port)
		if err != nil {
			return nil, nil, err
		}
		cfg.Seed = seed
		cfg.Log = log
		cfg.Classify = classifyRDPacket
		cfg.Marker = rudp.MarkCongestion
		fe := faultnet.Wrap(ep, cfg)
		return fe, rudp.New(fe), nil
	}
	fa, a, err := wrap("a", 1, s.FaultAB, s.Seed)
	if err != nil {
		v.failf("open a: %v", err)
		return v
	}
	fb, b, err := wrap("b", 2, s.FaultBA, s.Seed+1)
	if err != nil {
		v.failf("open b: %v", err)
		return v
	}
	bAddr := b.LocalAddr()

	// Receiver: collect (index, ok) deliveries, surviving one crash/restart.
	type rxState struct {
		mu        sync.Mutex
		ep        *rudp.Endpoint
		fe        *faultnet.Endpoint
		restarted chan struct{}
	}
	rx := &rxState{ep: b, fe: fb, restarted: make(chan struct{})}
	var (
		rxMu      sync.Mutex
		delivered []int
		seen      = make(map[int]bool)
		rxFails   []string
	)
	stopRecv := make(chan struct{})
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			rx.mu.Lock()
			ep := rx.ep
			restarted := rx.restarted
			rx.mu.Unlock()
			p, _, err := ep.Recv(100 * time.Millisecond)
			switch {
			case err == nil:
				idx := int(nio.U32(p))
				ok := len(p) >= 5 && p[4] == byte(idx*31+7)
				rxMu.Lock()
				if !ok {
					rxFails = append(rxFails, fmt.Sprintf("message %d delivered with corrupt payload", idx))
				} else if seen[idx] {
					rxFails = append(rxFails, fmt.Sprintf("message %d delivered twice", idx))
				} else {
					seen[idx] = true
					delivered = append(delivered, idx)
				}
				rxMu.Unlock()
			case errors.Is(err, transport.ErrTimeout):
				select {
				case <-stopRecv:
					return
				default:
				}
			case errors.Is(err, transport.ErrClosed):
				// Either the scripted crash or the end of the run.
				select {
				case <-restarted:
					continue
				case <-stopRecv:
					return
				}
			default:
				rxMu.Lock()
				rxFails = append(rxFails, fmt.Sprintf("receiver error: %v", err))
				rxMu.Unlock()
				return
			}
		}
	}()

	// Sender: run the scripted schedule. lastDead tracks the most recent
	// message index at which the conversation died: everything at or after
	// it rides the fresh post-eviction conversation and MUST be delivered;
	// earlier indices may have died with the old conversation (unacked
	// window, or acked into an inbox the crash discarded).
	lastDead := 0
	sendOne := func(i int) error {
		err := a.SendTo(payloadFor(i, s.PayloadLen), bAddr)
		if errors.Is(err, rudp.ErrPeerDead) {
			// The conversation died (scripted partition/crash). The error
			// evicted the peer; retry once on the fresh conversation.
			v.DeadErrors++
			lastDead = i
			err = a.SendTo(payloadFor(i, s.PayloadLen), bAddr)
		}
		return err
	}
	for i := 0; i < s.Messages; i++ {
		if s.PartitionAtMsg > 0 && i == s.PartitionAtMsg {
			fa.PartitionTo(bAddr)
			time.AfterFunc(s.PartitionDur, func() { fa.Heal(bAddr) })
		}
		if s.AckHoleAtMsg > 0 && i == s.AckHoleAtMsg {
			fb.SetAckBlackhole(true)
			fbNow := fb
			time.AfterFunc(s.AckHoleDur, func() { fbNow.SetAckBlackhole(false) })
		}
		if s.MTUShrinkAtMsg > 0 && i == s.MTUShrinkAtMsg {
			fa.SetMTU(s.MTUShrinkTo)
			time.AfterFunc(s.MTUShrinkDur, func() { fa.SetMTU(0) })
		}
		if s.CrashAtMsg > 0 && i == s.CrashAtMsg {
			rx.mu.Lock()
			rx.ep.Close() // closes the wrapped faultnet+simnet endpoints too
			ep2, err := net.OpenDatagram("b", 2)
			if err != nil {
				rx.mu.Unlock()
				v.failf("restart receiver: %v", err)
				break
			}
			cfg := s.FaultBA
			cfg.Seed = s.Seed + 2
			cfg.Log = log
			cfg.Classify = classifyRDPacket
			cfg.Marker = rudp.MarkCongestion
			rx.fe = faultnet.Wrap(ep2, cfg)
			rx.ep = rudp.New(rx.fe)
			close(rx.restarted)
			rx.restarted = make(chan struct{})
			rx.mu.Unlock()
		}
		if err := sendOne(i); err != nil {
			v.failf("SendTo(%d): %v", i, err)
			break
		}
		v.Sent++
	}

	// Quiesce: release reorder holds first — a held tail packet has no
	// subsequent sends to ride out its delay, so without this every
	// reordering schedule ends in a gratuitous RTO retransmit of the tail —
	// then flush (absorbing at most one death per conversation), heal
	// residual faults, and let the receiver drain.
	fa.ReleaseHeld()
	rx.mu.Lock()
	rx.fe.ReleaseHeld()
	rx.mu.Unlock()
	flushErr := a.Flush(10 * time.Second)
	flushDead := errors.Is(flushErr, rudp.ErrPeerDead)
	if flushDead {
		v.DeadErrors++
		flushErr = a.Flush(5 * time.Second)
	}
	if flushErr != nil && !errors.Is(flushErr, transport.ErrClosed) {
		v.failf("Flush: %v (stuck work requests)", flushErr)
	}
	fa.HealAll()
	fa.ReleaseHeld()
	rx.mu.Lock()
	rx.fe.ReleaseHeld()
	rx.mu.Unlock()
	// Drain until the receiver has been silent for a few polls.
	for settle := 0; settle < 5; settle++ {
		rxMu.Lock()
		n := len(delivered)
		rxMu.Unlock()
		if n >= v.Sent {
			break
		}
		time.Sleep(100 * time.Millisecond)
		rxMu.Lock()
		if len(delivered) > n {
			settle = -1 // progress: keep draining
		}
		rxMu.Unlock()
	}
	close(stopRecv)

	// Invariant: simnet packet-pool balance. Checked before Close, while
	// the endpoints' receive loops still consume (and recycle) anything in
	// flight — packets queued at an endpoint when it closes are stranded
	// by design, so clean-ending schedules must reach balance here.
	if s.CheckWire {
		deadline := time.Now().Add(2 * time.Second)
		for {
			gets, puts := simnet.PktBufBalance()
			if gets-puts == wireHeld0 {
				break
			}
			if time.Now().After(deadline) {
				v.failf("simnet packet pool drifted: %d buffers outstanding at quiesce", gets-puts-wireHeld0)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	a.Close()
	rx.mu.Lock()
	bEnd := rx.ep
	rx.ep.Close()
	rx.mu.Unlock()
	<-recvDone
	v.SenderStats = a.Snapshot()
	v.ReceiverStats = bEnd.Snapshot()

	// Invariant: exactly-once, in-order, and no silent loss.
	rxMu.Lock()
	v.Failures = append(v.Failures, rxFails...)
	v.Delivered = len(delivered)
	v.Indices = delivered
	for i := 1; i < len(delivered); i++ {
		if delivered[i] <= delivered[i-1] {
			v.failf("delivery order broke: index %d after %d", delivered[i], delivered[i-1])
			break
		}
	}
	// No silent loss: every message sent on the final (post-eviction)
	// conversation that Flush acknowledged must have reached the
	// application. If Flush itself died, the final window is unattributable
	// and completeness cannot be pinned to an index.
	firstRequired := lastDead
	if flushDead || flushErr != nil {
		firstRequired = v.Sent
	}
	for i := firstRequired; i < v.Sent; i++ {
		if !seen[i] {
			v.failf("silent loss: message %d was sent after the last ErrPeerDead (index %d) and Flush succeeded, yet it never arrived",
				i, lastDead)
			break
		}
	}
	rxMu.Unlock()

	// Invariant: pool balance at quiesce.
	if out := a.PoolOutstanding(); out != 0 {
		v.failf("sender wire-buffer pool leaked %d buffers", out)
	}
	if out := bEnd.PoolOutstanding(); out != 0 {
		v.failf("receiver wire-buffer pool leaked %d buffers", out)
	}

	// Invariant: loss-free schedules must not retransmit. Reorder and
	// duplication give the sender nothing to resend — SACK reports every
	// displaced packet, and the dup-ACK count stays below the fast-
	// retransmit threshold at reorder span ≤ 2.
	if s.RequireNoRexmit {
		if v.SenderStats.Retransmits != 0 {
			v.failf("loss-free schedule retransmitted %d packets (%d fast, %d RTO expiries) — spurious recovery",
				v.SenderStats.Retransmits, v.SenderStats.FastRetransmits, v.SenderStats.RTOExpirations)
		}
		if s.FaultAB.DupRate == 0 && s.FaultBA.DupRate == 0 && v.ReceiverStats.SpuriousRexmits != 0 {
			// With no retransmissions and no wire duplication, nothing can
			// legitimately arrive twice.
			v.failf("receiver saw %d spurious duplicate DATA on a dup-free schedule", v.ReceiverStats.SpuriousRexmits)
		}
	}
	// Invariant: the ECN chain ran end to end — marks observed at the
	// receiver, echoes answered with multiplicative decrease at the sender.
	// A broken CRC re-stamp in the marker would instead surface as CRC
	// drops and retransmissions of every marked packet.
	if s.RequireMarks {
		if v.ReceiverStats.ECNMarks == 0 {
			v.failf("marking schedule delivered no congestion marks to the receiver")
		}
		if v.SenderStats.MDEvents == 0 {
			v.failf("receiver observed %d marks but the sender never decreased cwnd", v.ReceiverStats.ECNMarks)
		}
	}
	return v
}

// UDSchedule scripts one UD (verbs-layer) chaos run: untagged sends plus
// Write-Record messages from a to b with faults on the a→b direction.
type UDSchedule struct {
	Name     string
	Seed     int64
	Sends    int // untagged single-segment sends
	Writes   int // Write-Record messages at non-overlapping offsets
	WriteLen int // bytes per Write-Record message (may span segments)
	Fault    faultnet.Config

	// PartitionAtWrite > 0 partitions a→b one-way before posting that
	// write index, for the rest of the run: the tail writes vanish on the
	// wire (drops counted as OpDropPartition), and conservation must hold
	// anyway — no posted WR may wedge on either side.
	PartitionAtWrite int
}

// RunUD executes one UD schedule and checks completion-queue conservation
// and Write-Record shadow-copy placement.
func RunUD(s UDSchedule) *Verdict {
	v := &Verdict{Name: s.Name, Seed: s.Seed}
	log := faultnet.NewLog(0)
	defer func() {
		v.Fingerprint = log.Fingerprint()
		v.FaultLog = log
		if !v.Passed() {
			v.Tail = log.Tail(20)
		}
	}()

	net := simnet.New(simnet.Config{})
	epA, err := net.OpenDatagram("a", 1)
	if err != nil {
		v.failf("open a: %v", err)
		return v
	}
	cfg := s.Fault
	cfg.Seed = s.Seed
	cfg.Log = log
	fa := faultnet.Wrap(epA, cfg)
	epB, err := net.OpenDatagram("b", 2)
	if err != nil {
		v.failf("open b: %v", err)
		return v
	}

	type node struct {
		pd  *memreg.PD
		tbl *memreg.Table
		scq *iwarp.CQ
		rcq *iwarp.CQ
		qp  *iwarp.UDQP
	}
	open := func(ep transport.Datagram) (*node, error) {
		n := &node{pd: memreg.NewPD(), tbl: memreg.NewTable(), scq: iwarp.NewCQ(0), rcq: iwarp.NewCQ(0)}
		qp, err := iwarp.OpenUD(ep, n.pd, n.tbl, n.scq, n.rcq, iwarp.UDConfig{
			RecvDepth:         s.Sends + 8,
			ReassemblyTimeout: 300 * time.Millisecond,
		})
		n.qp = qp
		return n, err
	}
	na, err := open(fa)
	if err != nil {
		v.failf("open UD a: %v", err)
		return v
	}
	nb, err := open(epB)
	if err != nil {
		v.failf("open UD b: %v", err)
		na.qp.Close()
		return v
	}

	// Target region + sender-side shadow copy.
	regionLen := s.Writes*s.WriteLen + 64
	region, err := nb.tbl.Register(nb.pd, make([]byte, regionLen), memreg.RemoteWrite)
	if err != nil {
		v.failf("register region: %v", err)
		return v
	}
	shadow := make([]byte, regionLen)

	// Post all receives up front; every one of these WRIDs must complete
	// exactly once (success now, or flushed at close).
	const recvBase, sendBase, writeBase = 1, 1000, 2000
	for i := 0; i < s.Sends; i++ {
		if err := nb.qp.PostRecv(uint64(recvBase+i), make([]byte, 512)); err != nil {
			v.failf("PostRecv(%d): %v", i, err)
			return v
		}
	}

	for i := 0; i < s.Sends; i++ {
		if err := na.qp.PostSend(uint64(sendBase+i), nb.qp.LocalAddr(), nio.VecOf(payloadFor(i, 128))); err != nil {
			v.failf("PostSend(%d): %v", i, err)
		}
	}
	for j := 0; j < s.Writes; j++ {
		if s.PartitionAtWrite > 0 && j == s.PartitionAtWrite {
			fa.PartitionTo(nb.qp.LocalAddr())
		}
		off := j * s.WriteLen
		payload := payloadFor(j, s.WriteLen)
		if s.PartitionAtWrite == 0 || j < s.PartitionAtWrite {
			// Partitioned writes never arrive, so they must not enter the
			// shadow: the whole-region check treats their bytes as
			// untouchable.
			copy(shadow[off:], payload)
		}
		if err := na.qp.PostWriteRecord(uint64(writeBase+j), nb.qp.LocalAddr(),
			region.STag(), uint64(off), nio.VecOf(payload)); err != nil {
			v.failf("PostWriteRecord(%d): %v", j, err)
		}
	}
	v.Sent = s.Sends + s.Writes

	// Source-side CQ conservation: every posted WR completes exactly once.
	srcSeen := make(map[uint64]int)
	for polled := 0; polled < v.Sent; polled++ {
		e, err := na.scq.Poll(2 * time.Second)
		if err != nil {
			v.failf("source CQ starved: %d of %d completions, last err %v", polled, v.Sent, err)
			break
		}
		srcSeen[e.WRID]++
	}
	for id, n := range srcSeen {
		if n != 1 {
			v.failf("source WR %d completed %d times", id, n)
		}
	}

	// Target side: drain completions until the CQ goes quiet past the
	// reassembly timeout, then close and collect the flush.
	recvSeen := make(map[uint64]int)
	recvOK, wrOK := 0, 0
	var placed []memreg.Interval
	drain := func(timeout time.Duration) {
		for {
			e, err := nb.rcq.Poll(timeout)
			if err != nil {
				return
			}
			switch e.Type {
			case iwarp.WTRecv:
				recvSeen[e.WRID]++
				if e.Status == iwarp.StatusSuccess {
					recvOK++
				}
			case iwarp.WTWriteRecordRecv:
				// Record now, compare after close: reading the region while
				// other in-flight messages are still being placed is a race
				// (RDMA memory is not readable mid-write).
				wrOK++
				placed = append(placed, e.Validity.Intervals()...)
			case iwarp.WTError:
				// Advisory (CRC fail, bad opcode): the QP stays up; nothing
				// is consumed. Counted implicitly by the fault log.
			}
		}
	}
	drain(700 * time.Millisecond)
	nb.qp.Close()
	drain(50 * time.Millisecond) // close-flushed receives
	na.qp.Close()

	v.Delivered = recvOK + wrOK
	for i := 0; i < s.Sends; i++ {
		id := uint64(recvBase + i)
		if n := recvSeen[id]; n != 1 {
			v.failf("recv WR %d completed %d times, want exactly once (success, timeout, or flush)", id, n)
		}
	}
	for id, n := range recvSeen {
		if id < recvBase || id >= recvBase+uint64(s.Sends) {
			v.failf("completion for WR %d that was never posted (%d times)", id, n)
		}
	}

	// Both QPs are closed: placement has quiesced and the region is safe
	// to read. Every completed validity interval must match the shadow
	// byte-for-byte.
	for _, iv := range placed {
		if !bytes.Equal(region.Bytes()[iv.Off:iv.End()], shadow[iv.Off:iv.End()]) {
			v.failf("Write-Record placement diverges from shadow in [%d,+%d)", iv.Off, iv.Len)
		}
	}

	// Whole-region shadow check: every byte is either untouched (zero and
	// zero in shadow's untouched areas) or exactly the shadow byte. A
	// corrupted segment must never place — DDP's CRC has to eat it.
	for i, got := range region.Bytes() {
		if got != 0 && got != shadow[i] {
			v.failf("region byte %d = %#x, shadow %#x — corrupt or misplaced data reached memory", i, got, shadow[i])
			break
		}
	}
	return v
}

// Suite returns the standard schedule table rooted at a base seed — the
// same fault mixes the chaos tests pin, re-rooted so a soak run (cmd/iwarpd
// -chaos) can sweep fresh seeds every round while staying replayable.
func Suite(seed int64) ([]RDSchedule, []UDSchedule) {
	ge := &GESoak
	rds := []RDSchedule{
		{Name: "rd-burst-loss", Seed: seed, Messages: 300, PayloadLen: 512,
			FaultAB: faultnet.Config{GE: ge}, FaultBA: faultnet.Config{GE: ge}, CheckWire: true},
		{Name: "rd-reorder-dup-corrupt", Seed: seed + 100, Messages: 300, PayloadLen: 512,
			FaultAB:   faultnet.Config{ReorderRate: 0.2, ReorderSpan: 4, DupRate: 0.15, CorruptRate: 0.05},
			FaultBA:   faultnet.Config{ReorderRate: 0.1, DupRate: 0.1, CorruptRate: 0.05},
			CheckWire: true},
		{Name: "rd-ack-blackhole", Seed: seed + 200, Messages: 200, PayloadLen: 256,
			AckHoleAtMsg: 50, AckHoleDur: 150 * time.Millisecond, CheckWire: true},
		{Name: "rd-partition-heal", Seed: seed + 300, Messages: 200, PayloadLen: 256,
			PartitionAtMsg: 100, PartitionDur: 300 * time.Millisecond, CheckWire: true},
		{Name: "rd-mtu-shrink", Seed: seed + 400, Messages: 200, PayloadLen: 1200,
			MTUShrinkAtMsg: 80, MTUShrinkTo: 576, MTUShrinkDur: 300 * time.Millisecond, CheckWire: true},
		{Name: "rd-crash-restart", Seed: seed + 500, Messages: 250, PayloadLen: 256,
			FaultAB:    faultnet.Config{GE: &faultnet.GEParams{PGoodToBad: 0.02, PBadToGood: 0.5, LossGood: 0.01, LossBad: 0.3}},
			CrashAtMsg: 120},
		{Name: "rd-kitchen-sink", Seed: seed + 600, Messages: 400, PayloadLen: 700,
			FaultAB:        faultnet.Config{GE: ge, ReorderRate: 0.1, ReorderSpan: 3, DupRate: 0.1, CorruptRate: 0.03},
			FaultBA:        faultnet.Config{GE: ge, DupRate: 0.1, CorruptRate: 0.03},
			PartitionAtMsg: 150, PartitionDur: 250 * time.Millisecond,
			AckHoleAtMsg: 300, AckHoleDur: 100 * time.Millisecond},
		// Congestion schedules (DESIGN.md §4.13). rd-ecn-mark proves the
		// mark→echo→decrease chain on a clean wire (marks must not cost
		// deliveries); rd-congestion-burst layers marks over burst loss so
		// ECN decrease, fast retransmit, and RTO collapse all fire in one
		// run; rd-reorder-no-loss pins the no-spurious-recovery invariant.
		{Name: "rd-ecn-mark", Seed: seed + 1100, Messages: 300, PayloadLen: 512,
			FaultAB: faultnet.Config{MarkRate: 0.3}, RequireMarks: true, CheckWire: true},
		{Name: "rd-congestion-burst", Seed: seed + 1200, Messages: 300, PayloadLen: 512,
			FaultAB: faultnet.Config{GE: ge, MarkRate: 0.2}, CheckWire: true},
		{Name: "rd-reorder-no-loss", Seed: seed + 1300, Messages: 300, PayloadLen: 512,
			FaultAB:         faultnet.Config{ReorderRate: 0.25, ReorderSpan: 2, DupRate: 0.1},
			RequireNoRexmit: true, CheckWire: true},
	}
	uds := []UDSchedule{
		{Name: "ud-clean-baseline", Seed: seed + 700, Sends: 40, Writes: 4, WriteLen: 100 << 10},
		{Name: "ud-loss-reorder-dup", Seed: seed + 800, Sends: 60, Writes: 6, WriteLen: 150 << 10,
			Fault: faultnet.Config{GE: ge, ReorderRate: 0.15, ReorderSpan: 3, DupRate: 0.1}},
		{Name: "ud-corruption", Seed: seed + 900, Sends: 60, Writes: 6, WriteLen: 150 << 10,
			Fault: faultnet.Config{CorruptRate: 0.2, DupRate: 0.1}},
		{Name: "ud-partition", Seed: seed + 1000, Sends: 40, Writes: 8, WriteLen: 100 << 10,
			PartitionAtWrite: 4},
	}
	return rds, uds
}

// GESoak is the steady-state Gilbert–Elliott profile the standard suite
// uses: ~1% background loss with dense >60% bursts inside a bad state.
var GESoak = faultnet.GEParams{PGoodToBad: 0.05, PBadToGood: 0.3, LossGood: 0.01, LossBad: 0.65}
