package chaos

import (
	"testing"
	"time"

	"repro/internal/faultnet"
)

// The message-layer chaos tests drive the full stack — internal/msg on a
// UD QP on rudp on faultnet on simnet — through the same fault envelopes
// the RD suite uses, checking the msg invariants: exactly-once delivery
// with intact payloads across both datapaths (eager and rendezvous),
// monotone eager order, no silent loss after the last surfaced error, and
// empty rendezvous tables plus zero pool drift at quiesce.

func TestChaosMsgCleanBaseline(t *testing.T) {
	check(t, RunMsg(MsgSchedule{
		Name: "msg-clean-baseline", Seed: seedOr(12012),
		Messages: 200, EagerLen: 512, RdvLen: 32 << 10, RdvEvery: 5,
		CheckWire: true,
	}))
}

func TestChaosMsgBurstLoss(t *testing.T) {
	check(t, RunMsg(MsgSchedule{
		Name: "msg-burst-loss", Seed: seedOr(13013),
		Messages: 200, EagerLen: 512, RdvLen: 32 << 10, RdvEvery: 5,
		FaultAB:   faultnet.Config{GE: ge},
		FaultBA:   faultnet.Config{GE: ge},
		CheckWire: true,
	}))
}

func TestChaosMsgReorderDupCorrupt(t *testing.T) {
	check(t, RunMsg(MsgSchedule{
		Name: "msg-reorder-dup-corrupt", Seed: seedOr(14014),
		Messages: 200, EagerLen: 512, RdvLen: 32 << 10, RdvEvery: 5,
		FaultAB:   faultnet.Config{ReorderRate: 0.2, ReorderSpan: 4, DupRate: 0.15, CorruptRate: 0.05},
		FaultBA:   faultnet.Config{ReorderRate: 0.1, DupRate: 0.1, CorruptRate: 0.05},
		CheckWire: true,
	}))
}

func TestChaosMsgPartitionHeal(t *testing.T) {
	check(t, RunMsg(MsgSchedule{
		Name: "msg-partition-heal", Seed: seedOr(15015),
		Messages: 200, EagerLen: 512, RdvLen: 32 << 10, RdvEvery: 5,
		PartitionAtMsg: 100, PartitionDur: 300 * time.Millisecond,
		CheckWire: true,
	}))
}

func TestChaosMsgCrashRestart(t *testing.T) {
	check(t, RunMsg(MsgSchedule{
		Name: "msg-crash-restart", Seed: seedOr(16016),
		Messages: 200, EagerLen: 512, RdvLen: 32 << 10, RdvEvery: 5,
		CrashAtMsg: 100,
		// Crash strands the dead endpoint's queued packets by design, so
		// the wire-pool balance invariant does not apply here.
	}))
}

// TestChaosMsgSuite runs the committed schedule catalog end to end — the
// same set cmd/iwarpd's chaos sweep executes.
func TestChaosMsgSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	for _, s := range MsgSuite(seedOr(17017)) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			check(t, RunMsg(s))
		})
	}
}
