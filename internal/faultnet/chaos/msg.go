package chaos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/faultnet"
	"repro/internal/msg"
	"repro/internal/nio"
	"repro/internal/rudp"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// MsgSchedule scripts one message-layer (internal/msg) chaos run: a sends
// Messages indexed payloads to b over the full stack — msg on a UD QP on
// rudp on faultnet on simnet — mixing eager and rendezvous transfers.
// Steady-state faults come from the two faultnet configs; the *AtMsg
// fields trigger scripted events when the sender reaches that index.
type MsgSchedule struct {
	Name     string
	Seed     int64
	Messages int

	EagerLen int // payload length for eager messages (below threshold)
	RdvLen   int // payload length for rendezvous messages (above threshold)
	RdvEvery int // every RdvEvery-th message is a rendezvous transfer (0 = all eager)

	FaultAB faultnet.Config // applied to a's outbound packets
	FaultBA faultnet.Config // applied to b's outbound packets

	PartitionAtMsg int // one-way partition a→b before sending this index
	PartitionDur   time.Duration
	CrashAtMsg     int // crash and restart the receiver before this index

	CheckWire bool // assert simnet packet-pool balance at quiesce (clean-ending schedules only)
}

// msgChaosThreshold splits the schedule's two payload sizes: EagerLen must
// sit at or below it and RdvLen above it.
const msgChaosThreshold = 4 << 10

func (s MsgSchedule) sizeFor(i int) int {
	if s.RdvEvery > 0 && i%s.RdvEvery == s.RdvEvery-1 {
		return s.RdvLen
	}
	return s.EagerLen
}

// msgChaosConfig is the endpoint configuration every msg chaos run uses:
// reliable LLP semantics (BlockOnRNR), a single receive worker so eager
// delivery order is well-defined, and a short rendezvous timeout plus fast
// sweep so orphaned sinks from abandoned handshakes drain within the
// quiesce window rather than the production default of several seconds.
func msgChaosConfig(handler func(msg.Message)) msg.Config {
	return msg.Config{
		EagerThreshold:    msgChaosThreshold,
		EagerCredits:      32,
		RecvDepth:         128,
		RecvWorkers:       1,
		Reliable:          true,
		RendezvousTimeout: 2 * time.Second,
		SweepInterval:     200 * time.Millisecond,
		CreditTimeout:     time.Second,
		Handler:           handler,
	}
}

// RunMsg executes one message-layer schedule and checks the msg
// invariants: exactly-once delivery with intact payloads, monotone eager
// order, no silent loss after the last surfaced send error, empty
// rendezvous tables on both sides at quiesce, and zero buffer-pool drift
// in the msg layer, the rudp wire pool, and (optionally) simnet.
func RunMsg(s MsgSchedule) *Verdict {
	v := &Verdict{Name: s.Name, Seed: s.Seed}
	wireGets0, wirePuts0 := simnet.PktBufBalance()
	wireHeld0 := wireGets0 - wirePuts0

	net := simnet.New(simnet.Config{}) // faults come from faultnet, not the substrate
	log := faultnet.NewLog(0)
	defer func() {
		v.Fingerprint = log.Fingerprint()
		v.FaultLog = log
		if !v.Passed() {
			v.Tail = log.Tail(20)
		}
	}()

	// Receiver bookkeeping. The handler is shared by the original and the
	// restarted endpoint, so delivery state survives the scripted crash.
	var (
		rxMu      sync.Mutex
		delivered []int
		seen      = make(map[int]bool)
		rxFails   []string
	)
	handler := func(m msg.Message) {
		data := m.Data
		var fail string
		if len(data) < 5 {
			fail = fmt.Sprintf("runt delivery of %d bytes", len(data))
		} else {
			idx := int(nio.U32(data))
			fill := byte(idx*31 + 7)
			ok := len(data) == s.sizeFor(idx)
			for i := 4; ok && i < len(data); i++ {
				ok = data[i] == fill
			}
			rxMu.Lock()
			switch {
			case !ok:
				fail = fmt.Sprintf("message %d delivered with corrupt payload (%d bytes)", idx, len(data))
			case seen[idx]:
				fail = fmt.Sprintf("message %d delivered twice", idx)
			default:
				seen[idx] = true
				delivered = append(delivered, idx)
			}
			rxMu.Unlock()
		}
		if fail != "" {
			rxMu.Lock()
			rxFails = append(rxFails, fail)
			rxMu.Unlock()
		}
		m.Release()
	}

	open := func(node string, port uint16, cfg faultnet.Config, seed int64, h func(msg.Message)) (*faultnet.Endpoint, *rudp.Endpoint, *msg.Endpoint, error) {
		ep, err := net.OpenDatagram(node, port)
		if err != nil {
			return nil, nil, nil, err
		}
		cfg.Seed = seed
		cfg.Log = log
		cfg.Classify = classifyRDPacket
		fe := faultnet.Wrap(ep, cfg)
		re := rudp.New(fe)
		me, err := msg.Open(re, msgChaosConfig(h))
		if err != nil {
			re.Close()
			return nil, nil, nil, err
		}
		return fe, re, me, nil
	}

	fa, ra, a, err := open("a", 1, s.FaultAB, s.Seed, func(m msg.Message) { m.Release() })
	if err != nil {
		v.failf("open a: %v", err)
		return v
	}
	type rxState struct {
		mu sync.Mutex
		fe *faultnet.Endpoint
		re *rudp.Endpoint
		me *msg.Endpoint
	}
	fb, rb, b, err := open("b", 2, s.FaultBA, s.Seed+1, handler)
	if err != nil {
		a.Close()
		v.failf("open b: %v", err)
		return v
	}
	rx := &rxState{fe: fb, re: rb, me: b}
	bAddr := b.LocalAddr()

	// Sender. lastRequired tracks the most recent index at which a send
	// surfaced an error (peer death or an abandoned rendezvous handshake):
	// everything at or after it rides recovered state and MUST be
	// delivered; earlier indices may have died with the old conversation
	// or the crashed receiver. A rendezvous can need two recoveries (the
	// CTS wait times out first, then the fresh RTS surfaces ErrPeerDead
	// and evicts the conversation), so each index gets up to three tries.
	lastRequired := 0
	sendOne := func(i int) error {
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			err = a.Send(bAddr, payloadFor(i, s.sizeFor(i)))
			if err == nil {
				return nil
			}
			if !errors.Is(err, rudp.ErrPeerDead) && !errors.Is(err, msg.ErrRendezvousTimeout) {
				return err
			}
			v.DeadErrors++
			lastRequired = i
		}
		return err
	}
	for i := 0; i < s.Messages; i++ {
		if s.PartitionAtMsg > 0 && i == s.PartitionAtMsg {
			fa.PartitionTo(bAddr)
			time.AfterFunc(s.PartitionDur, func() { fa.Heal(bAddr) })
		}
		if s.CrashAtMsg > 0 && i == s.CrashAtMsg {
			rx.mu.Lock()
			rx.me.Close() // closes the QP, rudp, faultnet, and simnet endpoints
			if out := rx.me.BufOutstanding(); out != 0 {
				v.failf("crashed receiver leaked %d msg buffers", out)
			}
			if out := rx.re.PoolOutstanding(); out != 0 {
				v.failf("crashed receiver leaked %d wire buffers", out)
			}
			fe2, re2, me2, err := open("b", 2, s.FaultBA, s.Seed+2, handler)
			if err != nil {
				rx.mu.Unlock()
				v.failf("restart receiver: %v", err)
				break
			}
			rx.fe, rx.re, rx.me = fe2, re2, me2
			rx.mu.Unlock()
		}
		if err := sendOne(i); err != nil {
			v.failf("Send(%d): %v", i, err)
			break
		}
		v.Sent++
	}

	// Quiesce. Rendezvous sends are synchronous through FIN, so once the
	// loop exits only untagged eager/control frames can still be in rudp
	// flight: Flush pins them (absorbing at most one death), then residual
	// faults heal and the receiver drains.
	flushErr := ra.Flush(10 * time.Second)
	flushDead := errors.Is(flushErr, rudp.ErrPeerDead)
	if flushDead {
		v.DeadErrors++
		flushErr = ra.Flush(5 * time.Second)
	}
	if flushErr != nil && !errors.Is(flushErr, transport.ErrClosed) {
		v.failf("Flush: %v (stuck frames)", flushErr)
	}
	fa.HealAll()
	fa.ReleaseHeld()
	rx.mu.Lock()
	rx.fe.ReleaseHeld()
	rx.mu.Unlock()
	// Drain until the receiver has been silent for a few polls: a flushed
	// frame still has to cross the QP worker and the handler.
	for settle := 0; settle < 5; settle++ {
		rxMu.Lock()
		n := len(delivered)
		rxMu.Unlock()
		if n >= v.Sent {
			break
		}
		time.Sleep(100 * time.Millisecond)
		rxMu.Lock()
		if len(delivered) > n {
			settle = -1 // progress: keep draining
		}
		rxMu.Unlock()
	}

	// Invariant: rendezvous tables empty on both sides. Orphaned inbound
	// sinks (an RTS whose sender abandoned the handshake) are legitimate
	// mid-run, but the sweeper must reap them within its timeout — an
	// entry that survives quiesce is a table leak.
	rdvDeadline := time.Now().Add(8 * time.Second)
	for {
		ai, ao := a.OutstandingRendezvous()
		rx.mu.Lock()
		bi, bo := rx.me.OutstandingRendezvous()
		rx.mu.Unlock()
		if ai+ao+bi+bo == 0 {
			break
		}
		if time.Now().After(rdvDeadline) {
			v.failf("rendezvous tables not drained at quiesce: a in/out=(%d,%d) b in/out=(%d,%d)", ai, ao, bi, bo)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Invariant: simnet packet-pool balance (before Close, as in RunRD).
	if s.CheckWire {
		deadline := time.Now().Add(2 * time.Second)
		for {
			gets, puts := simnet.PktBufBalance()
			if gets-puts == wireHeld0 {
				break
			}
			if time.Now().After(deadline) {
				v.failf("simnet packet pool drifted: %d buffers outstanding at quiesce", gets-puts-wireHeld0)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	a.Close()
	rx.mu.Lock()
	bEnd, rbEnd := rx.me, rx.re
	rx.mu.Unlock()
	bEnd.Close()

	// Invariant: exactly-once with intact payloads, and monotone delivery
	// order for the eager subset. Eager messages ride one in-order LLP
	// conversation through a single receive worker, so their relative
	// order must survive every fault; rendezvous completions ride the
	// placement path and may legitimately interleave out of index order.
	rxMu.Lock()
	v.Failures = append(v.Failures, rxFails...)
	v.Delivered = len(delivered)
	v.Indices = delivered
	prevEager := -1
	for _, idx := range delivered {
		if s.sizeFor(idx) != s.EagerLen {
			continue
		}
		if idx <= prevEager {
			v.failf("eager delivery order broke: index %d after %d", idx, prevEager)
			break
		}
		prevEager = idx
	}
	// No silent loss: every message sent after the last surfaced error,
	// with Flush succeeding, must have reached the handler. If Flush
	// itself died the final window is unattributable.
	firstRequired := lastRequired
	if flushDead || flushErr != nil {
		firstRequired = v.Sent
	}
	for i := firstRequired; i < v.Sent; i++ {
		if !seen[i] {
			v.failf("silent loss: message %d was sent after the last surfaced error (index %d) and Flush succeeded, yet it never arrived",
				i, lastRequired)
			break
		}
	}
	rxMu.Unlock()

	// Invariant: buffer-pool balance at quiesce, at every layer.
	if out := a.BufOutstanding(); out != 0 {
		v.failf("sender msg layer leaked %d buffers", out)
	}
	if out := bEnd.BufOutstanding(); out != 0 {
		v.failf("receiver msg layer leaked %d buffers", out)
	}
	if out := ra.PoolOutstanding(); out != 0 {
		v.failf("sender wire-buffer pool leaked %d buffers", out)
	}
	if out := rbEnd.PoolOutstanding(); out != 0 {
		v.failf("receiver wire-buffer pool leaked %d buffers", out)
	}
	return v
}

// MsgSuite returns the message-layer schedule catalog derived from one
// base seed — the msg counterpart of Suite, kept separate so existing
// callers of Suite are untouched.
func MsgSuite(seed int64) []MsgSchedule {
	mix := func(s MsgSchedule) MsgSchedule {
		if s.Messages == 0 {
			s.Messages = 200
		}
		if s.EagerLen == 0 {
			s.EagerLen = 512
		}
		if s.RdvLen == 0 {
			s.RdvLen = 32 << 10
		}
		if s.RdvEvery == 0 {
			s.RdvEvery = 5
		}
		return s
	}
	return []MsgSchedule{
		mix(MsgSchedule{
			Name: "msg-clean-baseline", Seed: seed,
			CheckWire: true,
		}),
		mix(MsgSchedule{
			Name: "msg-burst-loss", Seed: seed + 1,
			FaultAB:   faultnet.Config{GE: &GESoak},
			FaultBA:   faultnet.Config{GE: &GESoak},
			CheckWire: true,
		}),
		mix(MsgSchedule{
			Name: "msg-reorder-dup-corrupt", Seed: seed + 2,
			FaultAB:   faultnet.Config{ReorderRate: 0.2, ReorderSpan: 4, DupRate: 0.15, CorruptRate: 0.05},
			FaultBA:   faultnet.Config{ReorderRate: 0.1, DupRate: 0.1, CorruptRate: 0.05},
			CheckWire: true,
		}),
		mix(MsgSchedule{
			Name: "msg-partition-heal", Seed: seed + 3,
			PartitionAtMsg: 100, PartitionDur: 300 * time.Millisecond,
			CheckWire: true,
		}),
		mix(MsgSchedule{
			Name: "msg-crash-restart", Seed: seed + 4,
			CrashAtMsg: 100,
		}),
	}
}
