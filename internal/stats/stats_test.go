package stats

import (
	"math"
	"testing"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Stddev() != 0 {
		t.Fatal("zero Summary should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Sample stddev of the classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Fatalf("Stddev = %v, want %v", s.Stddev(), want)
	}
}

func TestSummaryNegativeFirst(t *testing.T) {
	var s Summary
	s.Add(-3)
	s.Add(1)
	if s.Min() != -3 || s.Max() != 1 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryRejectsNaN(t *testing.T) {
	var s Summary
	s.Add(math.NaN())
	if s.N() != 0 || s.seen {
		t.Fatal("leading NaN must not count as an observation")
	}
	s.Add(3)
	s.Add(math.NaN())
	s.Add(5)
	if s.N() != 2 {
		t.Fatalf("N = %d, want 2 (NaN dropped)", s.N())
	}
	if s.Mean() != 4 || s.Min() != 3 || s.Max() != 5 {
		t.Fatalf("Mean/Min/Max = %v/%v/%v, want 4/3/5", s.Mean(), s.Min(), s.Max())
	}
	if math.IsNaN(s.Stddev()) {
		t.Fatal("Stddev poisoned by NaN input")
	}
}

func TestSummaryRecordsInfinities(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(math.Inf(1))
	if s.N() != 2 || !math.IsInf(s.Max(), 1) {
		t.Fatalf("N/Max = %d/%v: infinities are documented as recorded", s.N(), s.Max())
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 {
		t.Fatal("empty sample percentile should be 0")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("P100 = %v", got)
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	// Adding after a sorted read must keep working.
	s.Add(1000)
	if got := s.Percentile(100); got != 1000 {
		t.Fatalf("P100 after Add = %v", got)
	}
}

func TestSampleAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Nanosecond)
	if got := s.Percentile(50); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("duration recorded as %v µs, want 1.5", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1e6, time.Second); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Throughput = %v MB/s, want 1", got)
	}
	if Throughput(10, 0) != 0 {
		t.Fatal("zero elapsed must yield 0")
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{
		1:         "1",
		512:       "512",
		1024:      "1K",
		2048:      "2K",
		65536:     "64K",
		1 << 20:   "1MB",
		1536:      "1536", // not a whole K
		3 << 20:   "3MB",
		1<<20 + 1: "1048577",
	}
	for n, want := range cases {
		if got := SizeLabel(n); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestSizes(t *testing.T) {
	got := Sizes(1, 16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("Sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
	if Sizes(8, 4) != nil {
		t.Fatal("empty sweep should be nil")
	}
}
