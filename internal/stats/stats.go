// Package stats provides the measurement utilities used by the benchmark
// harness: streaming summaries, percentile histograms, throughput
// calculators, and human-readable size formatting matching the paper's axes.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates a stream of float64 observations and reports count,
// mean, min, max, and standard deviation. The zero value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
	seen     bool // set after the first recorded observation
}

// Add records one observation. NaN inputs are rejected (silently dropped):
// one NaN would otherwise poison mean, m2, and every comparison-based field
// for the rest of the stream, so a timing glitch upstream (e.g. a 0/0
// throughput sample) must not corrupt a whole benchmark series. Infinities
// are recorded as given.
func (s *Summary) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	s.n++
	if !s.seen {
		s.min, s.max = x, x
		s.seen = true
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Stddev returns the sample standard deviation, or 0 for n < 2.
func (s *Summary) Stddev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Sample collects raw observations for percentile reporting.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration records a duration in microseconds, the latency unit used
// throughout the paper's figures.
func (s *Sample) AddDuration(d time.Duration) { s.Add(float64(d) / float64(time.Microsecond)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks, or 0 with no observations.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Mean returns the arithmetic mean of the sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Throughput converts bytes moved over an elapsed duration into MB/s
// (decimal megabytes, matching the paper's bandwidth axes).
func Throughput(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds() / 1e6
}

// SizeLabel renders a byte count the way the paper labels its x-axes:
// plain numbers below 1K, then 1K, 64K, 1MB.
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Sizes returns the doubling sweep [from, to] inclusive, the message-size
// series used by every microbenchmark figure.
func Sizes(from, to int) []int {
	var out []int
	for s := from; s <= to; s *= 2 {
		out = append(out, s)
	}
	return out
}
