//go:build linux && (amd64 || arm64)

// Raw sendmmsg(2)/recvmmsg(2) plumbing: the struct layouts and syscall
// wrappers the kernel batch datapath (udp_linux.go) is built on. Everything
// here is mechanical ABI translation; policy (probing, fallback, buffer
// ownership) lives one file up.
//
// The build tag pins the two 64-bit ABIs this file's struct padding is laid
// out for: struct mmsghdr is struct msghdr (56 bytes on LP64) plus a u32
// msg_len, padded to the 8-byte stride the kernel indexes the array by.
// Other GOARCHes take the portable path via udp_nommsg.go.

package transport

import (
	"syscall"
	"unsafe"
)

// Linux UAPI constants not exported by package syscall.
const (
	udpSegment     = 103 // UDP_SEGMENT: setsockopt + cmsg type, SOL_UDP level
	udpGRO         = 104 // UDP_GRO: setsockopt + cmsg type, SOL_UDP level
	udpMaxSegments = 64  // UDP_MAX_SEGMENTS: kernel cap on GSO segments per send
)

// mmsgMax is the widest burst one sendmmsg/recvmmsg call carries; the
// per-endpoint header and iovec arrays are preallocated at this width. It
// matches udpMaxSegments so a full GSO burst and a full mmsg burst size the
// same arrays.
const mmsgMax = 64

// mmsghdr mirrors struct mmsghdr: one msghdr plus the kernel-written
// per-message byte count, padded to the LP64 array stride.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// sendmmsg transmits up to vlen messages from hdrs in one syscall. It
// returns the number of messages sent; errno is 0 on success and EAGAIN
// when the socket buffer is full before the first message.
func sendmmsg(fd uintptr, hdrs *mmsghdr, vlen int, flags uintptr) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
		uintptr(unsafe.Pointer(hdrs)), uintptr(vlen), flags, 0, 0)
	return int(n), errno
}

// recvmmsg fills up to vlen messages into hdrs in one syscall. It returns
// the number of messages received; errno is EAGAIN when the socket holds no
// data (the caller always passes MSG_DONTWAIT — blocking happens in the
// netpoller, not in the syscall).
func recvmmsg(fd uintptr, hdrs *mmsghdr, vlen int, flags uintptr) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
		uintptr(unsafe.Pointer(hdrs)), uintptr(vlen), flags, 0, 0)
	return int(n), errno
}

// gsoCmsgSpace is the control-buffer size of one UDP_SEGMENT cmsg carrying
// a uint16 segment size.
var gsoCmsgSpace = syscall.CmsgSpace(2)

// putGSOCmsg writes a UDP_SEGMENT control message carrying segsz into buf
// and returns the control length to set. buf must hold gsoCmsgSpace bytes.
func putGSOCmsg(buf []byte, segsz uint16) int {
	h := (*syscall.Cmsghdr)(unsafe.Pointer(&buf[0]))
	h.Level = syscall.IPPROTO_UDP
	h.Type = udpSegment
	h.SetLen(syscall.CmsgLen(2))
	*(*uint16)(unsafe.Pointer(&buf[syscall.CmsgLen(0)])) = segsz
	return syscall.CmsgSpace(2)
}

// groSegSize walks a received control buffer and returns the UDP_GRO
// segment size, or 0 when the kernel did not coalesce this datagram.
//
//diwarp:hotpath
func groSegSize(buf []byte, controllen int) int {
	// Manual cmsg walk: syscall.ParseSocketControlMessage allocates, and
	// this runs once per received datagram.
	for off := 0; off+syscall.CmsgLen(0) <= controllen; {
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&buf[off]))
		if h.Len < uint64(syscall.CmsgLen(0)) {
			return 0
		}
		if h.Level == syscall.IPPROTO_UDP && h.Type == udpGRO && int(h.Len) >= syscall.CmsgLen(4) {
			return int(*(*int32)(unsafe.Pointer(&buf[off+syscall.CmsgLen(0)])))
		}
		off += syscall.CmsgSpace(int(h.Len) - syscall.CmsgLen(0))
	}
	return 0
}

// rawDest is a destination sockaddr pre-encoded for the socket's family,
// cached per transport.Addr so the send path never re-parses an IP. The
// name pointer targets the struct's own storage, so a cached *rawDest keeps
// its sockaddr alive for as long as any in-flight msghdr references it.
type rawDest struct {
	sa4     syscall.RawSockaddrInet4
	sa6     syscall.RawSockaddrInet6
	name    *byte
	namelen uint32
}

// encodeDest fills a rawDest for ip:port in the given address family
// (syscall.AF_INET or AF_INET6). IPv4 destinations on a v6 socket are
// encoded v4-mapped, mirroring what the net package does below WriteToUDP.
func (rd *rawDest) encode(family int, ip4 [4]byte, ip16 [16]byte, is4 bool, port uint16) bool {
	switch family {
	case syscall.AF_INET:
		if !is4 {
			return false
		}
		rd.sa4.Family = syscall.AF_INET
		rd.sa4.Addr = ip4
		htons(&rd.sa4.Port, port)
		rd.name = (*byte)(unsafe.Pointer(&rd.sa4))
		rd.namelen = syscall.SizeofSockaddrInet4
	case syscall.AF_INET6:
		rd.sa6.Family = syscall.AF_INET6
		rd.sa6.Addr = ip16
		htons(&rd.sa6.Port, port)
		rd.name = (*byte)(unsafe.Pointer(&rd.sa6))
		rd.namelen = syscall.SizeofSockaddrInet6
	default:
		return false
	}
	return true
}

// htons stores port into a RawSockaddr port field, which the kernel reads
// in network byte order regardless of the field's declared uint16 type.
func htons(dst *uint16, port uint16) {
	b := (*[2]byte)(unsafe.Pointer(dst))
	b[0], b[1] = byte(port>>8), byte(port)
}

// ntohs reads a network-byte-order RawSockaddr port field.
func ntohs(src *uint16) uint16 {
	b := (*[2]byte)(unsafe.Pointer(src))
	return uint16(b[0])<<8 | uint16(b[1])
}
