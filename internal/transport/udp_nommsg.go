//go:build !(linux && (amd64 || arm64))

package transport

import (
	"net"
	"time"
)

// kernelBatch is absent on platforms without the mmsg/GSO/GRO datapath:
// newKernelBatch always reports "no kernel path" and UDPEndpoint runs the
// portable one-syscall-per-datagram loop. The method set mirrors
// udp_linux.go so the call sites compile unchanged; every method sits
// behind an `e.kern != nil` gate and is unreachable here.
type kernelBatch struct{}

func newKernelBatch(*net.UDPConn, UDPBatchMode) *kernelBatch { return nil }

func (*kernelBatch) features() BatchFeatures { return BatchFeatures{} }

func (*kernelBatch) sendBatch([][]byte, Addr) (int, error) {
	panic("transport: kernel batch path unavailable on this platform")
}

func (*kernelBatch) recvBatch(*UDPEndpoint, [][]byte, []Addr, time.Duration) (int, error) {
	panic("transport: kernel batch path unavailable on this platform")
}

func (*kernelBatch) recvOne(*UDPEndpoint, time.Duration) ([]byte, Addr, error) {
	panic("transport: kernel batch path unavailable on this platform")
}
