// Package transport defines the Lower Layer Protocol (LLP) abstraction the
// iWARP stack runs over, mirroring the paper's Figure 4: the same DDP/RDMAP
// code binds to a reliable byte stream (TCP — the standard's RC mode) or to
// an unreliable datagram service (UDP — the paper's datagram-iWARP mode).
//
// Three interchangeable LLP families implement these interfaces:
//
//   - package simnet: an in-process simulated network with configurable MTU,
//     loss, reordering and duplication (stands in for the testbed + tc/netem
//     loss injection used in the paper's evaluation);
//   - this package's udp.go / tcp.go: real kernel sockets, used by the
//     cmd/iwarpd demo daemon and available to all benchmarks;
//   - package rudp: a reliable-datagram layer (the paper's "reliable UDP"
//     supplement) stacked on any Datagram.
package transport

import (
	"errors"
	"fmt"
	"time"
)

// Errors shared by every LLP implementation.
var (
	// ErrTimeout reports that a receive deadline elapsed with no data. The
	// paper makes timeout-based polling mandatory for datagram-iWARP: "it is
	// essential that the completion queue be polled with a defined timeout
	// period" because a lost datagram means the matching completion never
	// arrives.
	ErrTimeout = errors.New("transport: receive timed out")
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrTooLarge reports a datagram exceeding MaxDatagram.
	ErrTooLarge = errors.New("transport: datagram exceeds maximum size")
	// ErrNoRoute reports an unknown destination address.
	ErrNoRoute = errors.New("transport: no route to destination")
)

// MaxDatagramSize is the largest payload a single datagram may carry,
// matching the UDP limit the paper cites ("datagrams are technically defined
// up to a maximum size of 64 KB", minus headers).
const MaxDatagramSize = 65507

// DefaultMTU is the wire MTU assumed throughout the evaluation (standard
// Ethernet, "WANs normally run using a 1500 byte MTU").
const DefaultMTU = 1500

// Addr identifies an LLP endpoint: a node (hostname or IP text) and a port.
// It is comparable and usable as a map key, which the UD completion path
// relies on to report datagram sources back to applications.
type Addr struct {
	Node string
	Port uint16
}

func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Node, a.Port) }

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a.Node == "" && a.Port == 0 }

// Datagram is a connectionless, message-boundary-preserving LLP endpoint —
// the service UDP provides. Implementations may silently drop, reorder, or
// duplicate messages; the iWARP layers above are designed for exactly that.
type Datagram interface {
	// SendTo transmits one datagram to the destination. It may block for
	// flow control but never blocks awaiting the receiver's application.
	// Implementations must not retain p after SendTo returns: the caller
	// may recycle the buffer immediately, as a pooled datapath does.
	SendTo(p []byte, to Addr) error
	// Recv returns the next datagram and its source. A zero timeout blocks
	// until data or close; otherwise ErrTimeout is returned when the
	// deadline passes. The returned slice is owned by the caller.
	Recv(timeout time.Duration) ([]byte, Addr, error)
	// LocalAddr returns the bound address.
	LocalAddr() Addr
	// MaxDatagram returns the largest sendable payload in bytes.
	MaxDatagram() int
	// PathMTU returns the wire MTU below which a datagram avoids
	// fragmentation — the efficiency knee in Figures 7 and 8.
	PathMTU() int
	// Close releases the endpoint; concurrent Recv calls return ErrClosed.
	Close() error
}

// BatchSender is an optional interface a Datagram implementation may
// provide: SendBatch transmits a burst of datagrams to one destination,
// amortizing per-send costs (address resolution, queue locking, eventually
// sendmmsg) across the batch. It returns the number of datagrams handed to
// the network before any error. Loss models and kernel drops do NOT count
// as errors — like SendTo, handing a datagram to a lossy network succeeds.
// Implementations must not retain any packet buffer after returning, so
// callers can recycle the whole batch immediately.
//
// The segmented DDP send path probes for this interface once per message
// and falls back to per-packet SendTo when it is absent.
type BatchSender interface {
	SendBatch(pkts [][]byte, to Addr) (int, error)
}

// BatchRecver is an optional interface a Datagram implementation may
// provide: RecvBatch fills pkts and froms with up to min(len(pkts),
// len(froms)) datagrams, amortizing per-receive costs (queue locking,
// deadline arming, eventually recvmmsg) across the burst — the receive-side
// mirror of BatchSender. It blocks up to timeout for the FIRST datagram
// (zero blocks until data or close, like Recv) and then drains whatever
// else is immediately available without waiting. It returns the number of
// datagrams received; n ≥ 1 on nil error. Buffer ownership matches Recv:
// each pkts[i] is owned by the caller, which may hand it back through
// Recycler once consumed.
//
// The DDP datagram channel probes for this interface once per channel and
// falls back to per-packet Recv when it is absent.
type BatchRecver interface {
	RecvBatch(pkts [][]byte, froms []Addr, timeout time.Duration) (int, error)
}

// RecvPoolStats is an optional interface a Datagram implementation may
// provide, reporting its receive-buffer pool's cumulative hit/miss
// counters. The layer above re-exports them as telemetry so pool health is
// observable without coupling this package to the telemetry registry.
type RecvPoolStats interface {
	RecvPoolStats() (hits, misses int64)
}

// Recycler is an optional interface a Datagram implementation may provide:
// a receiver that has fully consumed a buffer returned by Recv can hand it
// back for reuse, bounding the datapath's allocation rate the way a real
// stack recycles its receive-ring buffers. Recycling is always optional and
// buffers from foreign sources must be tolerated (and dropped).
type Recycler interface {
	Recycle(p []byte)
}

// Stream is a connected, reliable, ordered byte stream — the service TCP
// provides to standard iWARP. Message boundaries are NOT preserved, which is
// why the MPA layer exists in RC mode.
type Stream interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Close() error
	LocalAddr() Addr
	RemoteAddr() Addr
}

// Listener accepts incoming stream connections for RC mode.
type Listener interface {
	Accept() (Stream, error)
	Addr() Addr
	Close() error
}
