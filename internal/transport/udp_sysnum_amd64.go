//go:build linux

package transport

// Batch-syscall trap numbers for linux/amd64. SYS_RECVMMSG is in the
// frozen syscall table but SYS_SENDMMSG (added in Linux 3.0, after the
// table froze) is not, so both live here for symmetry.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
