package transport

import (
	"os"
	"sync"
	"sync/atomic"
)

// BatchFeatures reports which kernel batch-datapath capabilities a UDP
// endpoint is actually using, as determined by the capability probe at
// endpoint creation (DESIGN.md §4.9). Every field false means the endpoint
// runs the portable one-syscall-per-datagram path; Sendmmsg/Recvmmsg mean
// bursts go through sendmmsg(2)/recvmmsg(2); GSO means same-destination
// bursts of equal-size segments collapse into one UDP_SEGMENT send; GRO
// means the socket may deliver kernel-coalesced super-segments that the
// endpoint splits back into per-datagram buffers.
//
// The offloads imply the base syscalls: GSO is only ever set alongside
// Sendmmsg, GRO alongside Recvmmsg, because the offload paths reuse the
// mmsg machinery (and GRO split-back must intercept every receive).
type BatchFeatures struct {
	Sendmmsg bool // bursts sent via sendmmsg(2)
	Recvmmsg bool // bursts drained via recvmmsg(2)
	GSO      bool // UDP_SEGMENT segmentation offload on eligible bursts
	GRO      bool // UDP_GRO receive coalescing with split-back
}

// String renders the feature set the way iwarpd logs it.
func (f BatchFeatures) String() string {
	s := "portable"
	if f.Sendmmsg || f.Recvmmsg {
		s = "mmsg"
	}
	if f.GSO {
		s += "+gso"
	}
	if f.GRO {
		s += "+gro"
	}
	return s
}

// BatchCapabilities is an optional interface a Datagram implementation may
// provide, reporting which batch-datapath features are live. Layers above
// use it to tune burst sizing (ddp widens its receive scratch when GRO can
// split one syscall's worth of coalesced traffic into more datagrams than a
// portable burst would ever return) and wrappers (faultnet, telemetry's
// DatagramTap) forward it so the probe's verdict survives stacking.
type BatchCapabilities interface {
	BatchFeatures() BatchFeatures
}

// UDPBatchMode selects how far down the kernel batch datapath a UDP
// endpoint is allowed to go. It exists so the portable fallback stays
// testable on kernels that support everything: the capability probe can be
// overridden to force the exact code paths an unsupporting kernel would
// take.
type UDPBatchMode int

const (
	// BatchAuto probes the kernel and uses everything that works:
	// sendmmsg/recvmmsg, then UDP_SEGMENT/UDP_GRO on top.
	BatchAuto UDPBatchMode = iota
	// BatchMmsg uses the batch syscalls but leaves the GSO/GRO offloads
	// off even when the kernel supports them.
	BatchMmsg
	// BatchPortable disables the kernel batch path entirely: one syscall
	// per datagram through the portable net.UDPConn loop.
	BatchPortable
)

// envBatchMode reads the DIWARP_UDP_BATCH override once per process:
// "portable" forces the portable loop, "mmsg" caps at the batch syscalls,
// anything else (including unset) probes everything. It is the CI lever for
// running the full suite over the fallback paths on a capable kernel.
var envBatchMode = sync.OnceValue(func() UDPBatchMode {
	switch os.Getenv("DIWARP_UDP_BATCH") {
	case "portable", "off":
		return BatchPortable
	case "mmsg":
		return BatchMmsg
	default:
		return BatchAuto
	}
})

// BatchObserver records one histogram observation; BatchGauge sets a level.
// They are the shape of telemetry's Histogram.Observe and Gauge.Set, declared
// here because this package sits below telemetry in the import graph (the
// pcap taps and trace ring import transport) and must not close the cycle.
type BatchObserver interface{ Observe(v int64) }

// BatchGauge is the gauge half of the telemetry seam; see BatchObserver.
type BatchGauge interface{ Set(v int64) }

// BatchMetrics carries the batch-datapath instruments the transport feeds:
// how many syscalls each burst cost, how many datagrams each syscall moved,
// and whether the GSO/GRO offloads are live. Package telemetry installs
// registry-backed handles at init; with no sink installed recording is a
// nil-check and a branch.
type BatchMetrics struct {
	BatchSyscalls  BatchObserver // syscalls issued per SendBatch/RecvBatch call
	SegsPerSyscall BatchObserver // datagrams moved per batch syscall (burst mean)
	GSOEnabled     BatchGauge    // 1 when the last probed endpoint sends with UDP_SEGMENT
	GROEnabled     BatchGauge    // 1 when the last probed endpoint receives with UDP_GRO
}

var batchMetrics atomic.Pointer[BatchMetrics]

// SetBatchMetrics installs the process-wide batch-datapath telemetry sink.
// Passing nil disables recording. Intended to be called once from package
// telemetry's init; tests may swap sinks.
func SetBatchMetrics(m *BatchMetrics) { batchMetrics.Store(m) }

// observeBatch records one completed burst: syscalls it took and datagrams
// it moved. The segments-per-syscall observation is the burst mean, so one
// sendmmsg moving 32 datagrams observes 32 while the portable loop's 32
// one-datagram syscalls observe 1.
//
//diwarp:hotpath
func observeBatch(syscalls, datagrams int64) {
	m := batchMetrics.Load()
	if m == nil || syscalls <= 0 {
		return
	}
	if m.BatchSyscalls != nil {
		m.BatchSyscalls.Observe(syscalls)
	}
	if m.SegsPerSyscall != nil {
		m.SegsPerSyscall.Observe(datagrams / syscalls)
	}
}

// publishFeatures reflects a freshly probed endpoint's offload verdict onto
// the feature gauges.
func publishFeatures(f BatchFeatures) {
	m := batchMetrics.Load()
	if m == nil {
		return
	}
	if m.GSOEnabled != nil {
		v := int64(0)
		if f.GSO {
			v = 1
		}
		m.GSOEnabled.Set(v)
	}
	if m.GROEnabled != nil {
		v := int64(0)
		if f.GRO {
			v = 1
		}
		m.GROEnabled.Set(v)
	}
}
