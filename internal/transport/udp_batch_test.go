package transport

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func udpPair(t testing.TB) (a, b *UDPEndpoint) {
	t.Helper()
	a, err := ListenUDP("127.0.0.1", 0)
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	b, err = ListenUDP("127.0.0.1", 0)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestUDPRecvBatch: the UDP endpoint satisfies BatchRecver — one call
// blocks for the first datagram, then drains whatever else the socket
// already holds, without waiting for the batch to fill.
func TestUDPRecvBatch(t *testing.T) {
	a, b := udpPair(t)
	var br BatchRecver = b // must satisfy the optional interface
	var rc Recycler = b

	const count = 5
	sent := make(map[string]bool)
	for i := 0; i < count; i++ {
		msg := []byte(fmt.Sprintf("burst-%d", i))
		sent[string(msg)] = false
		if err := a.SendTo(msg, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	pkts := make([][]byte, 8)
	froms := make([]Addr, 8)
	got := 0
	for got < count {
		n, err := br.RecvBatch(pkts, froms, 2*time.Second)
		if err != nil {
			t.Fatalf("after %d: %v", got, err)
		}
		if n < 1 {
			t.Fatalf("RecvBatch returned %d with nil error", n)
		}
		for i := 0; i < n; i++ {
			if froms[i].Port != a.LocalAddr().Port {
				t.Fatalf("from = %v, want port %d", froms[i], a.LocalAddr().Port)
			}
			seen, ok := sent[string(pkts[i])]
			if !ok || seen {
				t.Fatalf("unexpected or duplicate packet %q", pkts[i])
			}
			sent[string(pkts[i])] = true
			rc.Recycle(pkts[i])
		}
		got += n
	}
	// The drain must not have waited for a full batch of 8.
	if _, err := br.RecvBatch(pkts, froms, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("empty socket: err = %v", err)
	}
}

// TestUDPRecvBatchPoolRoundTrip: recycled receive buffers come back out of
// the pool, and RecvPoolStats sees the hits.
func TestUDPRecvBatchPoolRoundTrip(t *testing.T) {
	a, b := udpPair(t)
	var ps RecvPoolStats = b

	msg := bytes.Repeat([]byte{7}, 512)
	for i := 0; i < 8; i++ {
		if err := a.SendTo(msg, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		pkt, _, err := b.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pkt, msg) {
			t.Fatalf("payload corrupt on round %d", i)
		}
		b.Recycle(pkt)
	}
	hits, misses := ps.RecvPoolStats()
	if hits+misses < 8 {
		t.Fatalf("pool stats %d+%d don't cover 8 receives", hits, misses)
	}
	if hits == 0 {
		t.Fatalf("no pool hits after recycling every buffer (misses=%d)", misses)
	}
}

// TestUDPRecvAllocFree pins the pooled single-datagram receive path at
// 0 allocs/op in steady state: pooled buffer, cached peer address.
func TestUDPRecvAllocFree(t *testing.T) {
	a, b := udpPair(t)
	msg := bytes.Repeat([]byte{3}, 1024)
	// Warm: first receive populates the buffer pool and the address cache.
	for i := 0; i < 4; i++ {
		if err := a.SendTo(msg, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		pkt, _, err := b.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		b.Recycle(pkt)
	}
	// Pre-queue the datagrams in the socket buffer so the measured closure
	// is receive-only: SendTo resolves the peer address per call (ParseIP,
	// *net.UDPAddr) and would charge sender allocations to the receive path.
	const runs = 100
	dst := b.LocalAddr()
	for i := 0; i < runs+1; i++ { // +1: AllocsPerRun's warm-up call
		if err := a.SendTo(msg, dst); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(runs, func() {
		pkt, _, err := b.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		b.Recycle(pkt)
	})
	if allocs != 0 {
		t.Fatalf("Recv allocates %.2f times per datagram, want 0", allocs)
	}
}

// BenchmarkUDPRecvBatch measures the batched UDP receive path over
// loopback. Run with -benchmem: the acceptance target is 0 allocs/op on
// the receive side (the sender's cost is excluded via a feeder goroutine).
func BenchmarkUDPRecvBatch(b *testing.B) {
	for _, burst := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("burst=%d", burst), func(b *testing.B) {
			src, dst := udpPair(b)
			msg := bytes.Repeat([]byte{5}, 1024)
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				// SendBatch resolves the destination once per burst, so the
				// feeder's per-packet allocation cost is amortized away and
				// -benchmem reflects the receive side.
				dstAddr := dst.LocalAddr()
				feed := make([][]byte, 64)
				for i := range feed {
					feed[i] = msg
				}
				for {
					select {
					case <-stop:
						return
					default:
					}
					// Feed ahead; the socket buffer bounds the backlog.
					_, _ = src.SendBatch(feed, dstAddr)
				}
			}()
			pkts := make([][]byte, burst)
			froms := make([]Addr, burst)
			b.SetBytes(int64(len(msg)))
			b.ResetTimer()
			n := 0
			for n < b.N {
				k, err := dst.RecvBatch(pkts, froms, 2*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < k; i++ {
					dst.Recycle(pkts[i])
				}
				n += k
			}
			b.StopTimer()
			close(stop)
			<-done
		})
	}
}
