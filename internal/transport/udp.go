package transport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nio"
)

// UDPEndpoint adapts a kernel UDP socket to the Datagram interface. It is
// the deployment LLP: cmd/iwarpd speaks datagram-iWARP over it across real
// networks, and the benchmarks can run over loopback with -transport=udp.
//
// The receive path is pooled: buffers come from a per-endpoint nio.Pool
// rather than a fresh 64 KB allocation per packet, and consumers hand them
// back through Recycle — the software analogue of a receive ring. Source
// addresses resolve through a small cache so the per-packet path performs
// zero allocations in steady state (ReadFromUDP's *net.UDPAddr and
// IP.String() would otherwise allocate twice per packet).
type UDPEndpoint struct {
	conn *net.UDPConn
	mtu  int
	pool *nio.Pool

	// kern is the kernel batch datapath (sendmmsg/recvmmsg + GSO/GRO,
	// DESIGN.md §4.9) when the platform and the capability probe allow it;
	// nil means every burst runs the portable loop below. feats caches the
	// probe's verdict for BatchFeatures.
	kern  *kernelBatch
	feats BatchFeatures

	// addrs memoizes source-address rendering, sharded with the same
	// striping discipline as internal/peertab (which transport cannot
	// import: telemetry sits between them): the per-packet hit is a
	// lock-free snapshot lookup instead of an endpoint-wide RWMutex every
	// receive shares.
	addrs addrCache
}

var (
	_ Datagram          = (*UDPEndpoint)(nil)
	_ BatchSender       = (*UDPEndpoint)(nil)
	_ BatchRecver       = (*UDPEndpoint)(nil)
	_ Recycler          = (*UDPEndpoint)(nil)
	_ RecvPoolStats     = (*UDPEndpoint)(nil)
	_ BatchCapabilities = (*UDPEndpoint)(nil)
)

// maxAddrCache bounds the source-address cache; at the bound the cache is
// reset wholesale (one burst of re-resolution) rather than tracking LRU
// state on the per-packet path.
const maxAddrCache = 4096

// aLongTimeAgo is an expired deadline: setting it makes the next read
// non-blocking, which is how RecvBatch drains a burst after its first
// (blocking) read.
var aLongTimeAgo = time.Unix(1, 0)

// ListenUDP binds a UDP endpoint on host:port (port 0 picks a free port).
// The kernel batch datapath is probed per the DIWARP_UDP_BATCH environment
// override ("portable", "mmsg", else auto); ListenUDPMode pins it in code.
func ListenUDP(host string, port uint16) (*UDPEndpoint, error) {
	return ListenUDPMode(host, port, envBatchMode())
}

// ListenUDPMode is ListenUDP with the batch-capability probe pinned to
// mode: BatchAuto probes everything, BatchMmsg forgoes the GSO/GRO
// offloads, BatchPortable forces the one-syscall-per-datagram loop. Tests
// use it to run the identical suite over every fallback tier.
func ListenUDPMode(host string, port uint16, mode UDPBatchMode) (*UDPEndpoint, error) {
	ip := net.ParseIP(host)
	if ip == nil && host != "" {
		addrs, err := net.LookupIP(host)
		if err != nil || len(addrs) == 0 {
			return nil, fmt.Errorf("transport: cannot resolve %q: %w", host, err)
		}
		ip = addrs[0]
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: ip, Port: int(port)})
	if err != nil {
		return nil, err
	}
	// Large socket buffers keep zero-loss benchmarks honest: the paper's
	// stack relies on the kernel's UDP buffering below it.
	_ = conn.SetReadBuffer(8 << 20)  //diwarp:ignore errflow: socket-option tuning: kernels cap, not fail, oversized requests
	_ = conn.SetWriteBuffer(8 << 20) //diwarp:ignore errflow: socket-option tuning: kernels cap, not fail, oversized requests
	e := &UDPEndpoint{
		conn: conn,
		mtu:  DefaultMTU,
		pool: nio.NewPool(MaxDatagramSize),
	}
	e.addrs.init()
	e.kern = newKernelBatch(conn, mode)
	if e.kern != nil {
		e.feats = e.kern.features()
	}
	publishFeatures(e.feats)
	return e, nil
}

// BatchFeatures implements BatchCapabilities: the capability probe's
// verdict for this endpoint.
func (e *UDPEndpoint) BatchFeatures() BatchFeatures {
	if e.kern != nil {
		return e.kern.features() // reflects any runtime GSO degrade
	}
	return e.feats
}

// resolve maps a transport.Addr to a UDP socket address.
func resolve(to Addr) (*net.UDPAddr, error) {
	ip := net.ParseIP(to.Node)
	if ip == nil {
		addrs, err := net.LookupIP(to.Node)
		if err != nil || len(addrs) == 0 {
			return nil, fmt.Errorf("%w: %s", ErrNoRoute, to)
		}
		ip = addrs[0]
	}
	return &net.UDPAddr{IP: ip, Port: int(to.Port)}, nil
}

// SendTo implements Datagram.
func (e *UDPEndpoint) SendTo(p []byte, to Addr) error {
	if len(p) > MaxDatagramSize {
		return ErrTooLarge
	}
	ua, err := resolve(to)
	if err != nil {
		return err
	}
	_, err = e.conn.WriteToUDP(p, ua)
	if err != nil && errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

// SendBatch implements BatchSender. With the kernel batch datapath probed
// in, the burst rides one sendmmsg(2) per mmsgMax chunk — or a single
// UDP_SEGMENT (GSO) send when every datagram is the same size — instead of
// one sendto per datagram; otherwise the portable writeBatch loop runs,
// paying one resolve for the burst.
func (e *UDPEndpoint) SendBatch(pkts [][]byte, to Addr) (int, error) {
	for _, p := range pkts {
		if len(p) > MaxDatagramSize {
			return 0, ErrTooLarge
		}
	}
	if e.kern != nil && e.feats.Sendmmsg {
		return e.kern.sendBatch(pkts, to)
	}
	ua, err := resolve(to)
	if err != nil {
		return 0, err
	}
	return e.writeBatch(pkts, ua)
}

// writeBatch transmits a resolved burst one syscall per datagram: the
// portable fallback behind the sendmmsg path, and the only path on
// platforms without it.
//
//diwarp:hotpath
func (e *UDPEndpoint) writeBatch(pkts [][]byte, ua *net.UDPAddr) (int, error) {
	for i, p := range pkts {
		if _, err := e.conn.WriteToUDP(p, ua); err != nil {
			if errors.Is(err, net.ErrClosed) {
				err = ErrClosed
			}
			observeBatch(int64(i), int64(i))
			return i, err
		}
	}
	observeBatch(int64(len(pkts)), int64(len(pkts)))
	return len(pkts), nil
}

// mapRecvErr folds the net package's deadline and close errors into the
// transport vocabulary.
func mapRecvErr(err error) error {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return ErrTimeout
	}
	if errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

// readPooled performs one socket read into a pooled buffer and resolves the
// source through the address cache. The buffer is returned to the pool on
// error. This is the per-packet unit both Recv and RecvBatch are built on.
//
//diwarp:hotpath
func (e *UDPEndpoint) readPooled() ([]byte, Addr, error) {
	buf, _ := e.pool.TryGet()
	buf = buf[:e.pool.BufSize()]
	n, ap, err := e.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		e.pool.Put(buf)
		return nil, Addr{}, mapRecvErr(err)
	}
	return buf[:n], e.cachedAddr(ap), nil
}

// addrCacheStripes is the cache's stripe count (power of two). 8 stripes
// match the receive path's realistic concurrency (recvmmsg drain plus a few
// placement workers) without bloating the endpoint struct.
const addrCacheStripes = 8

// addrCache is the miniature of peertab's sharded table the import cycle
// forces on this package: N stripes selected by FNV-1a over the source
// address, each holding an atomic pointer to an immutable snapshot map.
// Hits load the snapshot lock-free; inserts copy-on-write under the stripe
// mutex. At the capacity bound the cache resets wholesale (one burst of
// re-rendering) rather than tracking LRU on the packet path.
type addrCache struct {
	stripes [addrCacheStripes]struct {
		mu   sync.Mutex
		snap atomic.Pointer[map[netip.AddrPort]Addr]
		_    [32]byte // keep neighbouring stripes off one cache line
	}
	len atomic.Int64
}

func (c *addrCache) init() {
	for i := range c.stripes {
		empty := make(map[netip.AddrPort]Addr)
		c.stripes[i].snap.Store(&empty)
	}
}

// hashAddrPort selects a stripe: FNV-1a over the 16-byte address form and
// the port, the same discipline as peertab's hash helpers.
//
//diwarp:hotpath
func hashAddrPort(ap netip.AddrPort) uint32 {
	const fnvOffset, fnvPrime = 2166136261, 16777619
	b := ap.Addr().As16()
	h := uint32(fnvOffset)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint32(b[i])) * fnvPrime
	}
	p := ap.Port()
	h = (h ^ uint32(p>>8)) * fnvPrime
	h = (h ^ uint32(p&0xff)) * fnvPrime
	return h
}

// cachedAddr maps a socket address to a transport.Addr, memoizing the
// string form so steady-state receives never re-render an IP.
//
//diwarp:hotpath
func (e *UDPEndpoint) cachedAddr(ap netip.AddrPort) Addr {
	// The kernel reports IPv4 peers on a dual-stack socket as 4-in-6
	// (::ffff:a.b.c.d); unmap so the cached Node matches what resolve()
	// parses on the send side.
	ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	s := &e.addrs.stripes[hashAddrPort(ap)&(addrCacheStripes-1)]
	if a, ok := (*s.snap.Load())[ap]; ok {
		return a
	}
	return e.cachedAddrSlow(ap)
}

func (e *UDPEndpoint) cachedAddrSlow(ap netip.AddrPort) Addr {
	a := Addr{Node: ap.Addr().String(), Port: ap.Port()}
	if e.addrs.len.Load() >= maxAddrCache {
		for i := range e.addrs.stripes {
			s := &e.addrs.stripes[i]
			s.mu.Lock()
			empty := make(map[netip.AddrPort]Addr)
			s.snap.Store(&empty)
			s.mu.Unlock()
		}
		e.addrs.len.Store(0)
	}
	s := &e.addrs.stripes[hashAddrPort(ap)&(addrCacheStripes-1)]
	s.mu.Lock()
	old := *s.snap.Load()
	if hit, ok := old[ap]; ok {
		s.mu.Unlock()
		return hit
	}
	next := make(map[netip.AddrPort]Addr, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[ap] = a
	s.snap.Store(&next)
	s.mu.Unlock()
	e.addrs.len.Add(1)
	return a
}

// Recv implements Datagram. The returned buffer is pool-backed: the caller
// owns it and may hand it back through Recycle once consumed. On a GRO
// socket the receive routes through the kernel path's split-back machinery
// so a kernel-coalesced super-segment is never delivered as one datagram.
func (e *UDPEndpoint) Recv(timeout time.Duration) ([]byte, Addr, error) {
	if e.kern != nil && e.feats.GRO {
		return e.kern.recvOne(e, timeout)
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := e.conn.SetReadDeadline(deadline); err != nil {
		return nil, Addr{}, mapRecvErr(err)
	}
	return e.readPooled()
}

// RecvBatch implements BatchRecver. With the kernel batch datapath probed
// in, the whole burst arrives through one recvmmsg(2) (MSG_DONTWAIT after
// the netpoller's blocking wakeup, so the contract is unchanged: wait for
// the first datagram, take the rest only if already queued). The portable
// fallback below costs one syscall per queued packet plus one returning
// EWOULDBLOCK, against one wakeup and one deadline-arm for the burst.
func (e *UDPEndpoint) RecvBatch(pkts [][]byte, froms []Addr, timeout time.Duration) (int, error) {
	if e.kern != nil && e.feats.Recvmmsg {
		return e.kern.recvBatch(e, pkts, froms, timeout)
	}
	max := min(len(pkts), len(froms))
	if max == 0 {
		return 0, nil
	}
	p, from, err := e.Recv(timeout)
	if err != nil {
		return 0, err
	}
	pkts[0], froms[0] = p, from
	n := 1
	if n == max {
		observeBatch(1, 1)
		return n, nil
	}
	// Drain without blocking: an expired deadline turns further reads into
	// EWOULDBLOCK probes of the socket buffer.
	if err := e.conn.SetReadDeadline(aLongTimeAgo); err != nil {
		return n, nil //diwarp:ignore errflow: the burst's first packet is already delivered; the deadline error will resurface on the next blocking read
	}
	syscalls := int64(1) // the blocking first read
	for n < max {
		syscalls++
		p, from, err := e.readPooled()
		if err != nil {
			break // ErrTimeout: socket drained; ErrClosed: next call reports it
		}
		pkts[n], froms[n] = p, from
		n++
	}
	// Restore the deadline the drain expired: a blocking read that follows
	// (or races) this burst must wait for data, not inherit a deadline
	// already in the past.
	_ = e.conn.SetReadDeadline(time.Time{}) //diwarp:ignore errflow: the burst is already delivered; a dead socket resurfaces on the next blocking read
	observeBatch(syscalls, int64(n))
	return n, nil
}

// Recycle implements Recycler: fully-consumed receive buffers return to the
// endpoint's pool. Foreign buffers are dropped by the pool's capacity check.
func (e *UDPEndpoint) Recycle(p []byte) { e.pool.Put(p) }

// RecvPoolStats implements RecvPoolStats: the receive pool's cumulative
// hit/miss counters.
func (e *UDPEndpoint) RecvPoolStats() (hits, misses int64) { return e.pool.Stats() }

// LocalAddr implements Datagram.
func (e *UDPEndpoint) LocalAddr() Addr {
	a := e.conn.LocalAddr().(*net.UDPAddr)
	return Addr{Node: a.IP.String(), Port: uint16(a.Port)}
}

// MaxDatagram implements Datagram.
func (e *UDPEndpoint) MaxDatagram() int { return MaxDatagramSize }

// PathMTU implements Datagram.
func (e *UDPEndpoint) PathMTU() int { return e.mtu }

// Close implements Datagram.
func (e *UDPEndpoint) Close() error { return e.conn.Close() }
