package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"time"
)

// UDPEndpoint adapts a kernel UDP socket to the Datagram interface. It is
// the deployment LLP: cmd/iwarpd speaks datagram-iWARP over it across real
// networks, and the benchmarks can run over loopback with -transport=udp.
type UDPEndpoint struct {
	conn *net.UDPConn
	mtu  int
}

// ListenUDP binds a UDP endpoint on host:port (port 0 picks a free port).
func ListenUDP(host string, port uint16) (*UDPEndpoint, error) {
	ip := net.ParseIP(host)
	if ip == nil && host != "" {
		addrs, err := net.LookupIP(host)
		if err != nil || len(addrs) == 0 {
			return nil, fmt.Errorf("transport: cannot resolve %q: %w", host, err)
		}
		ip = addrs[0]
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: ip, Port: int(port)})
	if err != nil {
		return nil, err
	}
	// Large socket buffers keep zero-loss benchmarks honest: the paper's
	// stack relies on the kernel's UDP buffering below it.
	_ = conn.SetReadBuffer(8 << 20)  //diwarp:ignore errflow — socket-option tuning: kernels cap, not fail, oversized requests
	_ = conn.SetWriteBuffer(8 << 20) //diwarp:ignore errflow — socket-option tuning: kernels cap, not fail, oversized requests
	return &UDPEndpoint{conn: conn, mtu: DefaultMTU}, nil
}

// resolve maps a transport.Addr to a UDP socket address.
func resolve(to Addr) (*net.UDPAddr, error) {
	ip := net.ParseIP(to.Node)
	if ip == nil {
		addrs, err := net.LookupIP(to.Node)
		if err != nil || len(addrs) == 0 {
			return nil, fmt.Errorf("%w: %s", ErrNoRoute, to)
		}
		ip = addrs[0]
	}
	return &net.UDPAddr{IP: ip, Port: int(to.Port)}, nil
}

// SendTo implements Datagram.
func (e *UDPEndpoint) SendTo(p []byte, to Addr) error {
	if len(p) > MaxDatagramSize {
		return ErrTooLarge
	}
	ua, err := resolve(to)
	if err != nil {
		return err
	}
	_, err = e.conn.WriteToUDP(p, ua)
	if err != nil && errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

// SendBatch implements BatchSender: the destination is resolved once and the
// burst is handed to writeBatch. Kernel-side sends still go out one syscall
// at a time; batching today buys single resolution and branch-free looping,
// and concentrates the per-burst transmit in one function so a sendmmsg(2)
// implementation is a drop-in replacement for writeBatch alone.
func (e *UDPEndpoint) SendBatch(pkts [][]byte, to Addr) (int, error) {
	for _, p := range pkts {
		if len(p) > MaxDatagramSize {
			return 0, ErrTooLarge
		}
	}
	ua, err := resolve(to)
	if err != nil {
		return 0, err
	}
	return e.writeBatch(pkts, ua)
}

// writeBatch transmits a resolved burst. This is the sendmmsg seam: replace
// the loop with one vectored syscall and nothing above it changes.
//
//diwarp:hotpath
func (e *UDPEndpoint) writeBatch(pkts [][]byte, ua *net.UDPAddr) (int, error) {
	for i, p := range pkts {
		if _, err := e.conn.WriteToUDP(p, ua); err != nil {
			if errors.Is(err, net.ErrClosed) {
				err = ErrClosed
			}
			return i, err
		}
	}
	return len(pkts), nil
}

// Recv implements Datagram.
func (e *UDPEndpoint) Recv(timeout time.Duration) ([]byte, Addr, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := e.conn.SetReadDeadline(deadline); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, Addr{}, ErrClosed
		}
		return nil, Addr{}, err
	}
	buf := make([]byte, MaxDatagramSize)
	n, from, err := e.conn.ReadFromUDP(buf)
	if err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			return nil, Addr{}, ErrTimeout
		}
		if errors.Is(err, net.ErrClosed) {
			return nil, Addr{}, ErrClosed
		}
		return nil, Addr{}, err
	}
	return buf[:n], Addr{Node: from.IP.String(), Port: uint16(from.Port)}, nil
}

// LocalAddr implements Datagram.
func (e *UDPEndpoint) LocalAddr() Addr {
	a := e.conn.LocalAddr().(*net.UDPAddr)
	return Addr{Node: a.IP.String(), Port: uint16(a.Port)}
}

// MaxDatagram implements Datagram.
func (e *UDPEndpoint) MaxDatagram() int { return MaxDatagramSize }

// PathMTU implements Datagram.
func (e *UDPEndpoint) PathMTU() int { return e.mtu }

// Close implements Datagram.
func (e *UDPEndpoint) Close() error { return e.conn.Close() }
