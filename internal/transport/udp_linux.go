//go:build linux && (amd64 || arm64)

package transport

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"repro/internal/nio"
)

// kernelBatch is the kernel batch datapath behind UDPEndpoint's
// SendBatch/RecvBatch seams (DESIGN.md §4.9): bursts move through one
// sendmmsg(2)/recvmmsg(2) syscall instead of one syscall per datagram, and —
// when the capability probe says the kernel cooperates — same-destination
// bursts of equal-size segments collapse into a single UDP_SEGMENT (GSO)
// send while receives accept UDP_GRO-coalesced super-segments and split
// them back into per-datagram pooled buffers.
//
// All mmsghdr/iovec/sockaddr/control arrays are preallocated at mmsgMax
// width and reused, and the syscalls run inside closures prebuilt at
// endpoint creation, so the steady-state burst path performs zero heap
// allocations. Send state is guarded by sendMu, receive state by recvMu:
// one vectored syscall under a mutex replaces N lock-free syscalls, which
// is a win from the first burst (the critical section is array fill plus
// one syscall).
//
// Blocking integrates with the runtime netpoller, not the thread: both
// closures issue the syscall with MSG_DONTWAIT and report EAGAIN back to
// syscall.RawConn.Read/Write, which parks the goroutine until the socket is
// ready (or the read deadline set by the caller expires). The first
// datagram of a burst therefore waits exactly like the portable path; the
// rest ride the same wakeup.
type kernelBatch struct {
	rc     syscall.RawConn
	feats  BatchFeatures // probe verdict; immutable after creation
	gsoOff atomic.Bool   // runtime GSO degrade (send path rejected the option)
	family int           // socket address family: AF_INET or AF_INET6

	// Destination sockaddr cache: Addr → kernel-ready sockaddr, so the
	// send path never re-parses an IP string. Bounded like addrCache.
	destMu sync.RWMutex
	dests  map[Addr]*rawDest

	// Send state, guarded by sendMu.
	sendMu sync.Mutex
	shdrs  [mmsgMax]mmsghdr
	siovs  [mmsgMax]syscall.Iovec
	sctrl  [32]byte // one UDP_SEGMENT cmsg (gsoCmsgSpace ≤ 32)
	sendFn func(uintptr) bool
	sview  int // vlen armed for sendFn
	sn     int // sendFn result: messages sent
	serrno syscall.Errno

	// Receive state, guarded by recvMu.
	recvMu sync.Mutex
	rhdrs  [mmsgMax]mmsghdr
	riovs  [mmsgMax]syscall.Iovec
	rnames [mmsgMax]syscall.RawSockaddrInet6
	rctrl  [mmsgMax][32]byte // per-message UDP_GRO cmsg space
	rbufs  [mmsgMax][]byte   // pooled buffers pinned across the syscall
	recvFn func(uintptr) bool
	rview  int // vlen armed for recvFn
	rn     int // recvFn result: messages received
	rerrno syscall.Errno

	// pending queues GRO split-back overflow: datagrams recovered from a
	// coalesced super-segment beyond what the caller's burst arrays hold.
	// Served, in arrival order, before the next syscall.
	pending  []pendingPkt
	pendHead int

	// One-slot scratch for Recv on a GRO socket; results are copied out
	// under recvMu, so concurrent Recv calls never share the slot.
	onePkt  [1][]byte
	oneFrom [1]Addr
}

// pendingPkt is one split-back datagram awaiting delivery.
type pendingPkt struct {
	buf  []byte
	from Addr
}

// newKernelBatch probes the socket for batch capabilities and returns the
// kernel datapath, or nil when the probe says (or mode insists) the
// portable loop should run. The probe is a setsockopt/zero-length-syscall
// trial at endpoint creation — no capability matrix by kernel version, just
// "did the kernel take it".
func newKernelBatch(conn *net.UDPConn, mode UDPBatchMode) *kernelBatch {
	if mode == BatchPortable {
		return nil
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	k := &kernelBatch{rc: rc, dests: make(map[Addr]*rawDest)}
	la, ok := conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		return nil
	}
	if la.IP.To4() != nil {
		k.family = syscall.AF_INET
	} else {
		k.family = syscall.AF_INET6
	}
	if err := rc.Control(func(fd uintptr) {
		// Zero-length trials: an ENOSYS kernel rejects the syscall itself,
		// a supporting kernel sends/receives nothing and returns 0.
		if n, errno := sendmmsg(fd, nil, 0, syscall.MSG_DONTWAIT); errno == 0 && n == 0 {
			k.feats.Sendmmsg = true
		}
		if _, errno := recvmmsg(fd, nil, 0, syscall.MSG_DONTWAIT); errno == 0 || errno == syscall.EAGAIN {
			k.feats.Recvmmsg = true
		}
		if mode == BatchAuto {
			// UDP_SEGMENT 0 is "no per-socket segmentation": it proves the
			// option exists without changing behaviour (the send path passes
			// the segment size per burst via cmsg). UDP_GRO 1 arms receive
			// coalescing for the socket's lifetime.
			if k.feats.Sendmmsg && syscall.SetsockoptInt(int(fd), syscall.IPPROTO_UDP, udpSegment, 0) == nil {
				k.feats.GSO = true
			}
			if k.feats.Recvmmsg && syscall.SetsockoptInt(int(fd), syscall.IPPROTO_UDP, udpGRO, 1) == nil {
				k.feats.GRO = true
			}
		}
	}); err != nil {
		return nil
	}
	if !k.feats.Sendmmsg && !k.feats.Recvmmsg {
		return nil
	}
	k.sendFn = func(fd uintptr) bool {
		for {
			n, errno := sendmmsg(fd, &k.shdrs[0], k.sview, syscall.MSG_DONTWAIT)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false // socket buffer full: park in the netpoller
			}
			k.sn, k.serrno = n, errno
			return true
		}
	}
	k.recvFn = func(fd uintptr) bool {
		for {
			n, errno := recvmmsg(fd, &k.rhdrs[0], k.rview, syscall.MSG_DONTWAIT)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false // nothing queued: park in the netpoller
			}
			k.rn, k.rerrno = n, errno
			return true
		}
	}
	return k
}

// features reports the probe's verdict, minus any runtime GSO degrade.
func (k *kernelBatch) features() BatchFeatures {
	f := k.feats
	if k.gsoOff.Load() {
		f.GSO = false
	}
	return f
}

// resolveDest returns the kernel-ready sockaddr for to, from the cache on
// the hot path and via one cold resolve+encode on first contact.
func (k *kernelBatch) resolveDest(to Addr) (*rawDest, error) {
	k.destMu.RLock()
	rd := k.dests[to]
	k.destMu.RUnlock()
	if rd != nil {
		return rd, nil
	}
	ua, err := resolve(to)
	if err != nil {
		return nil, err
	}
	rd = &rawDest{}
	var a4 [4]byte
	var a16 [16]byte
	ip4 := ua.IP.To4()
	if ip4 != nil {
		copy(a4[:], ip4)
	}
	copy(a16[:], ua.IP.To16())
	if !rd.encode(k.family, a4, a16, ip4 != nil, uint16(ua.Port)) {
		return nil, fmt.Errorf("%w: %s (address family mismatch)", ErrNoRoute, to)
	}
	k.destMu.Lock()
	if len(k.dests) >= maxAddrCache {
		k.dests = make(map[Addr]*rawDest)
	}
	k.dests[to] = rd
	k.destMu.Unlock()
	return rd, nil
}

// sendBatch transmits the burst through the kernel batch path: one GSO
// send when the burst is eligible, else sendmmsg in mmsgMax chunks. It
// matches BatchSender semantics — datagrams handed to the network before
// any error are counted.
func (k *kernelBatch) sendBatch(pkts [][]byte, to Addr) (int, error) {
	rd, err := k.resolveDest(to)
	if err != nil {
		return 0, err
	}
	k.sendMu.Lock()
	defer k.sendMu.Unlock()
	if k.feats.GSO && !k.gsoOff.Load() {
		if segsz, ok := gsoEligible(pkts); ok {
			err := k.sendGSO(pkts, rd, segsz)
			if err == nil {
				observeBatch(1, int64(len(pkts)))
				return len(pkts), nil
			}
			if !gsoShouldFallback(err) {
				return 0, err
			}
			// The option probed fine but the send path rejected it (e.g. a
			// device without checksum offload): degrade to mmsg for good.
			k.gsoOff.Store(true)
			publishFeatures(k.features())
		}
	}
	var syscalls, sent int
	for sent < len(pkts) {
		k.armSend(pkts[sent:min(sent+mmsgMax, len(pkts))], rd)
		if err := k.rc.Write(k.sendFn); err != nil {
			observeBatch(int64(syscalls), int64(sent))
			return sent, mapRecvErr(err)
		}
		syscalls++
		if k.serrno != 0 {
			observeBatch(int64(syscalls), int64(sent))
			return sent, mapSendErrno(k.serrno)
		}
		if k.sn <= 0 {
			observeBatch(int64(syscalls), int64(sent))
			return sent, syscall.EIO
		}
		sent += k.sn
	}
	observeBatch(int64(syscalls), int64(sent))
	return sent, nil
}

// armSend fills the mmsg arrays for one sendmmsg chunk: one header and one
// iovec per datagram, all naming the same destination.
//
//diwarp:hotpath
func (k *kernelBatch) armSend(pkts [][]byte, rd *rawDest) {
	for i, p := range pkts {
		if len(p) > 0 {
			k.siovs[i].Base = &p[0]
		} else {
			k.siovs[i].Base = nil
		}
		k.siovs[i].SetLen(len(p))
		h := &k.shdrs[i].hdr
		h.Name = rd.name
		h.Namelen = rd.namelen
		h.Iov = &k.siovs[i]
		h.Iovlen = 1
		h.Control = nil
		h.SetControllen(0)
		h.Flags = 0
		k.shdrs[i].n = 0
	}
	k.sview = len(pkts)
}

// gsoEligible reports whether a burst can ride one UDP_SEGMENT send: at
// least two datagrams, every one the same size (the last may be smaller but
// not empty), within the kernel's segment-count cap, and a total payload
// that still fits one UDP datagram — the GSO buffer is a single send that
// the kernel cuts back into wire datagrams at segsz boundaries.
func gsoEligible(pkts [][]byte) (segsz int, ok bool) {
	if len(pkts) < 2 || len(pkts) > udpMaxSegments {
		return 0, false
	}
	segsz = len(pkts[0])
	if segsz == 0 {
		return 0, false
	}
	total := 0
	for i, p := range pkts {
		if len(p) != segsz && !(i == len(pkts)-1 && len(p) > 0 && len(p) < segsz) {
			return 0, false
		}
		total += len(p)
	}
	if total > MaxDatagramSize {
		return 0, false
	}
	return segsz, true
}

// sendGSO transmits the whole burst as one gathered send carrying a
// UDP_SEGMENT cmsg: the kernel re-cuts the payload into len(pkts) wire
// datagrams at segsz boundaries. Caller holds sendMu and has checked
// gsoEligible.
func (k *kernelBatch) sendGSO(pkts [][]byte, rd *rawDest, segsz int) error {
	k.armGSO(pkts, rd, segsz)
	if err := k.rc.Write(k.sendFn); err != nil {
		return mapRecvErr(err)
	}
	if k.serrno != 0 {
		return mapSendErrno(k.serrno)
	}
	return nil
}

// armGSO fills the first mmsg slot with the gathered burst and its
// UDP_SEGMENT control message.
//
//diwarp:hotpath
func (k *kernelBatch) armGSO(pkts [][]byte, rd *rawDest, segsz int) {
	for i, p := range pkts {
		k.siovs[i].Base = &p[0]
		k.siovs[i].SetLen(len(p))
	}
	h := &k.shdrs[0].hdr
	h.Name = rd.name
	h.Namelen = rd.namelen
	h.Iov = &k.siovs[0]
	h.Iovlen = uint64(len(pkts))
	h.Control = &k.sctrl[0]
	h.SetControllen(putGSOCmsg(k.sctrl[:], uint16(segsz)))
	h.Flags = 0
	k.shdrs[0].n = 0
	k.sview = 1
}

// gsoShouldFallback classifies a failed GSO send: option-level rejections
// mean the path (not the burst) is unusable and the endpoint should degrade
// to plain mmsg; anything else is a real send error.
func gsoShouldFallback(err error) bool {
	switch err {
	case syscall.EIO, syscall.EINVAL, syscall.EOPNOTSUPP:
		return true
	}
	return false
}

// mapSendErrno folds send-side errnos into the transport vocabulary.
func mapSendErrno(errno syscall.Errno) error {
	switch errno {
	case syscall.EBADF:
		return ErrClosed
	case syscall.EMSGSIZE:
		return ErrTooLarge
	}
	return errno
}

// recvBatch is the kernel RecvBatch: pending split-back datagrams first,
// then one recvmmsg riding the netpoller wakeup. Contract matches
// BatchRecver — block up to timeout for the first datagram, return n ≥ 1 on
// nil error, never wait for the batch to fill (recvmmsg with MSG_DONTWAIT
// takes only what is already queued).
func (k *kernelBatch) recvBatch(e *UDPEndpoint, pkts [][]byte, froms []Addr, timeout time.Duration) (int, error) {
	max := min(len(pkts), len(froms))
	if max == 0 {
		return 0, nil
	}
	k.recvMu.Lock()
	defer k.recvMu.Unlock()
	return k.recvLocked(e, pkts, froms, max, timeout)
}

// recvOne is Recv on a GRO socket: coalesced super-segments must flow
// through the split-back path even for single-datagram receives, or a
// caller would see two datagrams fused into one. Results are copied out of
// the one-slot scratch under recvMu.
func (k *kernelBatch) recvOne(e *UDPEndpoint, timeout time.Duration) ([]byte, Addr, error) {
	k.recvMu.Lock()
	defer k.recvMu.Unlock()
	n, err := k.recvLocked(e, k.onePkt[:], k.oneFrom[:], 1, timeout)
	if err != nil || n == 0 {
		return nil, Addr{}, err
	}
	buf, from := k.onePkt[0], k.oneFrom[0]
	k.onePkt[0] = nil
	return buf, from, nil
}

// recvLocked runs the receive state machine under recvMu: serve pending,
// else arm pooled buffers, park until readable (or deadline), harvest, and
// split super-segments. Loops only in the pathological all-truncated case.
func (k *kernelBatch) recvLocked(e *UDPEndpoint, pkts [][]byte, froms []Addr, max int, timeout time.Duration) (int, error) {
	if n := k.takePending(pkts, froms, max); n > 0 {
		return n, nil
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if err := e.conn.SetReadDeadline(deadline); err != nil {
			return 0, mapRecvErr(err)
		}
		k.armRecv(e.pool, min(max, mmsgMax))
		err := k.rc.Read(k.recvFn)
		if timeout > 0 {
			// Never leave a stale deadline armed on the shared socket: a
			// following blocking Recv must block, not inherit this wait.
			_ = e.conn.SetReadDeadline(time.Time{}) //diwarp:ignore errflow: restoring after a successful arm; a dead socket resurfaces on the next read
		}
		if err == nil && k.rerrno != 0 {
			err = mapSendErrno(k.rerrno)
		}
		if err != nil {
			k.releaseRecv(e.pool, 0)
			return 0, mapRecvErr(err)
		}
		n := k.finishRecv(e, pkts, froms, max)
		if n > 0 {
			return n, nil
		}
		// Every datagram of the burst was truncated garbage (possible only
		// for a GRO blob beyond the pool's buffer size): wait again.
	}
}

// takePending moves queued split-back datagrams into the caller's arrays,
// preserving arrival order.
func (k *kernelBatch) takePending(pkts [][]byte, froms []Addr, max int) int {
	n := 0
	for n < max && k.pendHead < len(k.pending) {
		p := &k.pending[k.pendHead]
		pkts[n], froms[n] = p.buf, p.from
		p.buf = nil
		k.pendHead++
		n++
	}
	if k.pendHead == len(k.pending) {
		k.pending = k.pending[:0]
		k.pendHead = 0
	}
	return n
}

// armRecv stages vlen pooled buffers behind the mmsg headers. Control space
// is attached only on GRO sockets — without coalescing there is nothing to
// parse and the kernel skips the copy.
//
//diwarp:hotpath
func (k *kernelBatch) armRecv(pool *nio.Pool, vlen int) {
	for i := 0; i < vlen; i++ {
		buf, _ := pool.TryGet()
		buf = buf[:cap(buf)]
		k.rbufs[i] = buf
		k.riovs[i].Base = &buf[0]
		k.riovs[i].SetLen(len(buf))
		h := &k.rhdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&k.rnames[i]))
		h.Namelen = syscall.SizeofSockaddrInet6
		h.Iov = &k.riovs[i]
		h.Iovlen = 1
		if k.feats.GRO {
			h.Control = &k.rctrl[i][0]
			h.SetControllen(len(k.rctrl[i]))
		} else {
			h.Control = nil
			h.SetControllen(0)
		}
		h.Flags = 0
		k.rhdrs[i].n = 0
	}
	k.rview = vlen
}

// releaseRecv returns armed-but-unfilled buffers (slots from..rview) to the
// pool after an error or a short harvest.
func (k *kernelBatch) releaseRecv(pool *nio.Pool, from int) {
	for i := from; i < k.rview; i++ {
		if k.rbufs[i] != nil {
			pool.Put(k.rbufs[i])
			k.rbufs[i] = nil
		}
	}
}

// finishRecv harvests one recvmmsg result: truncated datagrams are dropped,
// GRO super-segments are split back into per-datagram buffers (the first
// segment keeps the pooled receive buffer, trailing segments copy into
// fresh pooled buffers, overflow queues on pending), and sources resolve
// through the endpoint's address cache. Returns how many datagrams landed
// in the caller's arrays.
//
//diwarp:hotpath
func (k *kernelBatch) finishRecv(e *UDPEndpoint, pkts [][]byte, froms []Addr, max int) int {
	out := 0
	delivered := 0
	for i := 0; i < k.rn; i++ {
		buf := k.rbufs[i][:k.rhdrs[i].n]
		k.rbufs[i] = nil
		if k.rhdrs[i].hdr.Flags&syscall.MSG_TRUNC != 0 {
			// A coalesced blob larger than the pool's 64 KB buffers: the
			// tail is gone, so the whole datagram is unusable. UD semantics
			// absorb the drop.
			e.pool.Put(buf)
			continue
		}
		from := e.cachedAddr(decodeAddr(&k.rnames[i]))
		segsz := 0
		if k.feats.GRO {
			segsz = groSegSize(k.rctrl[i][:], int(k.rhdrs[i].hdr.Controllen))
		}
		if segsz <= 0 || len(buf) <= segsz {
			out = k.emit(pkts, froms, max, out, buf, from)
			delivered++
			continue
		}
		total := len(buf)
		out = k.emit(pkts, froms, max, out, buf[:segsz], from)
		delivered++
		for off := segsz; off < total; off += segsz {
			end := min(off+segsz, total)
			nb, _ := e.pool.TryGet()
			nb = nb[:end-off]
			copy(nb, buf[off:end])
			out = k.emit(pkts, froms, max, out, nb, from)
			delivered++
		}
	}
	k.releaseRecv(e.pool, k.rn)
	observeBatch(1, int64(delivered))
	return out
}

// emit places one datagram into the caller's arrays, spilling to the
// pending queue once they are full.
func (k *kernelBatch) emit(pkts [][]byte, froms []Addr, max, out int, buf []byte, from Addr) int {
	if out < max {
		pkts[out], froms[out] = buf, from
		return out + 1
	}
	k.pending = append(k.pending, pendingPkt{buf: buf, from: from})
	return out
}

// decodeAddr converts a kernel-written sockaddr into a netip.AddrPort;
// 4-in-6 unmapping happens in the endpoint's address cache.
//
//diwarp:hotpath
func decodeAddr(sa *syscall.RawSockaddrInet6) netip.AddrPort {
	if sa.Family == syscall.AF_INET {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), ntohs(&sa4.Port))
	}
	return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), ntohs(&sa.Port))
}
