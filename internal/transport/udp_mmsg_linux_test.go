//go:build linux && (amd64 || arm64)

package transport

import (
	"bytes"
	"net/netip"
	"syscall"
	"testing"
	"unsafe"
)

func TestGSOEligible(t *testing.T) {
	seg := func(n int) []byte { return make([]byte, n) }
	cases := []struct {
		name  string
		pkts  [][]byte
		segsz int
		ok    bool
	}{
		{"empty burst", nil, 0, false},
		{"single", [][]byte{seg(512)}, 0, false},
		{"equal pair", [][]byte{seg(512), seg(512)}, 512, true},
		{"smaller tail", [][]byte{seg(512), seg(512), seg(100)}, 512, true},
		{"empty tail", [][]byte{seg(512), seg(0)}, 0, false},
		{"larger tail", [][]byte{seg(512), seg(600)}, 0, false},
		{"ragged middle", [][]byte{seg(512), seg(100), seg(512)}, 0, false},
		{"zero segments", [][]byte{seg(0), seg(0)}, 0, false},
	}
	over := make([][]byte, udpMaxSegments+1)
	for i := range over {
		over[i] = seg(8)
	}
	cases = append(cases, struct {
		name  string
		pkts  [][]byte
		segsz int
		ok    bool
	}{"over segment cap", over, 0, false})
	// 2×33000 > MaxDatagramSize: the GSO buffer is one UDP datagram.
	cases = append(cases, struct {
		name  string
		pkts  [][]byte
		segsz int
		ok    bool
	}{"over datagram size", [][]byte{seg(33000), seg(33000)}, 0, false})
	for _, tc := range cases {
		segsz, ok := gsoEligible(tc.pkts)
		if ok != tc.ok || segsz != tc.segsz {
			t.Errorf("%s: gsoEligible = (%d, %v), want (%d, %v)",
				tc.name, segsz, ok, tc.segsz, tc.ok)
		}
	}
}

// TestGROCmsgWalk feeds groSegSize kernel-shaped control buffers: the
// UDP_GRO cmsg (int payload) must parse, and foreign or truncated control
// data must read as "not coalesced".
func TestGROCmsgWalk(t *testing.T) {
	mk := func(level, typ int32, val int32) ([]byte, int) {
		buf := make([]byte, syscall.CmsgSpace(4))
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&buf[0]))
		h.Level = level
		h.Type = typ
		h.SetLen(syscall.CmsgLen(4))
		*(*int32)(unsafe.Pointer(&buf[syscall.CmsgLen(0)])) = val
		return buf, len(buf)
	}
	if buf, n := mk(syscall.IPPROTO_UDP, udpGRO, 1400); groSegSize(buf, n) != 1400 {
		t.Fatalf("UDP_GRO cmsg: segsz = %d, want 1400", groSegSize(buf, n))
	}
	if buf, n := mk(syscall.SOL_SOCKET, syscall.SO_TIMESTAMP, 1400); groSegSize(buf, n) != 0 {
		t.Fatal("foreign cmsg parsed as GRO")
	}
	if buf, _ := mk(syscall.IPPROTO_UDP, udpGRO, 1400); groSegSize(buf, 0) != 0 {
		t.Fatal("zero controllen parsed as GRO")
	}
	// A foreign cmsg first, UDP_GRO second: the walk must step over it.
	first, _ := mk(syscall.IPPROTO_IP, 8, 0)
	second, _ := mk(syscall.IPPROTO_UDP, udpGRO, 999)
	both := append(first, second...)
	if groSegSize(both, len(both)) != 999 {
		t.Fatal("walk did not step over a leading foreign cmsg")
	}
}

// TestGSOCmsgLayout pins the UDP_SEGMENT control message putGSOCmsg builds
// against the kernel ABI: SOL_UDP level, UDP_SEGMENT type, uint16 payload.
func TestGSOCmsgLayout(t *testing.T) {
	buf := make([]byte, gsoCmsgSpace)
	n := putGSOCmsg(buf, 1472)
	if n != syscall.CmsgSpace(2) {
		t.Fatalf("control length %d, want %d", n, syscall.CmsgSpace(2))
	}
	h := (*syscall.Cmsghdr)(unsafe.Pointer(&buf[0]))
	if h.Level != syscall.IPPROTO_UDP || h.Type != udpSegment {
		t.Fatalf("cmsg level/type = %d/%d, want %d/%d",
			h.Level, h.Type, syscall.IPPROTO_UDP, udpSegment)
	}
	if h.Len != uint64(syscall.CmsgLen(2)) {
		t.Fatalf("cmsg len = %d, want %d", h.Len, syscall.CmsgLen(2))
	}
	if got := *(*uint16)(unsafe.Pointer(&buf[syscall.CmsgLen(0)])); got != 1472 {
		t.Fatalf("segment size payload = %d, want 1472", got)
	}
}

// TestKernelBatchPending drives the GRO split-back overflow queue directly:
// emit spills past the caller's arrays in arrival order, takePending serves
// the spill before any new syscall and resets its storage when drained.
func TestKernelBatchPending(t *testing.T) {
	k := &kernelBatch{}
	pkts := make([][]byte, 2)
	froms := make([]Addr, 2)
	from := Addr{Node: "127.0.0.1", Port: 9}
	out := 0
	for i := 0; i < 5; i++ {
		out = k.emit(pkts, froms, 2, out, []byte{byte(i)}, from)
	}
	if out != 2 {
		t.Fatalf("emit filled %d slots, want 2", out)
	}
	if len(k.pending) != 3 {
		t.Fatalf("pending holds %d datagrams, want 3", len(k.pending))
	}
	if pkts[0][0] != 0 || pkts[1][0] != 1 {
		t.Fatal("caller slots out of arrival order")
	}
	// First drain: two of three pending.
	if n := k.takePending(pkts, froms, 2); n != 2 {
		t.Fatalf("takePending = %d, want 2", n)
	}
	if pkts[0][0] != 2 || pkts[1][0] != 3 || froms[0] != from {
		t.Fatal("pending served out of arrival order")
	}
	// Second drain: the last one, and the queue resets for reuse.
	if n := k.takePending(pkts, froms, 2); n != 1 || pkts[0][0] != 4 {
		t.Fatal("tail of the pending queue lost")
	}
	if len(k.pending) != 0 || k.pendHead != 0 {
		t.Fatalf("queue not reset after drain: len=%d head=%d", len(k.pending), k.pendHead)
	}
	if n := k.takePending(pkts, froms, 2); n != 0 {
		t.Fatalf("empty queue served %d datagrams", n)
	}
}

// TestDecodeAddr pins the sockaddr decode against both families, including
// the network-byte-order port fix-up.
func TestDecodeAddr(t *testing.T) {
	var sa6 syscall.RawSockaddrInet6
	sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&sa6))
	sa4.Family = syscall.AF_INET
	sa4.Addr = [4]byte{192, 0, 2, 7}
	htons(&sa4.Port, 4791)
	ap := decodeAddr(&sa6)
	if want := netip.AddrPortFrom(netip.AddrFrom4([4]byte{192, 0, 2, 7}), 4791); ap != want {
		t.Fatalf("AF_INET decode = %v, want %v", ap, want)
	}

	sa6 = syscall.RawSockaddrInet6{}
	sa6.Family = syscall.AF_INET6
	sa6.Addr = [16]byte{0: 0x20, 1: 0x01, 2: 0x0d, 3: 0xb8, 15: 0x01}
	htons(&sa6.Port, 443)
	ap = decodeAddr(&sa6)
	if want := netip.AddrPortFrom(netip.AddrFrom16(sa6.Addr), 443); ap != want {
		t.Fatalf("AF_INET6 decode = %v, want %v", ap, want)
	}
}

// TestRawDestEncode pins the destination encoder: v4 on a v4 socket, v4
// mapped onto a v6 socket, and the family-mismatch rejection.
func TestRawDestEncode(t *testing.T) {
	ip4 := [4]byte{10, 0, 0, 1}
	var ip16 [16]byte
	copy(ip16[:], bytes.Repeat([]byte{0}, 10))
	ip16[10], ip16[11] = 0xff, 0xff
	copy(ip16[12:], ip4[:])

	var rd rawDest
	if !rd.encode(syscall.AF_INET, ip4, ip16, true, 4791) {
		t.Fatal("v4 destination rejected on a v4 socket")
	}
	if rd.namelen != syscall.SizeofSockaddrInet4 || rd.sa4.Addr != ip4 {
		t.Fatal("v4 sockaddr mis-encoded")
	}
	if ntohs(&rd.sa4.Port) != 4791 {
		t.Fatalf("v4 port = %d, want 4791", ntohs(&rd.sa4.Port))
	}

	var rd6 rawDest
	if !rd6.encode(syscall.AF_INET6, ip4, ip16, true, 80) {
		t.Fatal("v4-mapped destination rejected on a v6 socket")
	}
	if rd6.namelen != syscall.SizeofSockaddrInet6 || rd6.sa6.Addr != ip16 {
		t.Fatal("v4-mapped sockaddr mis-encoded")
	}

	var bad rawDest
	if bad.encode(syscall.AF_INET, ip4, ip16, false, 1) {
		t.Fatal("v6 destination accepted on a v4 socket")
	}
}
