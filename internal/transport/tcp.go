package transport

import (
	"net"
)

// tcpStream adapts a kernel TCP connection to the Stream interface.
type tcpStream struct {
	conn *net.TCPConn
}

func (s *tcpStream) Read(p []byte) (int, error)  { return s.conn.Read(p) }
func (s *tcpStream) Write(p []byte) (int, error) { return s.conn.Write(p) }
func (s *tcpStream) Close() error                { return s.conn.Close() }

func (s *tcpStream) LocalAddr() Addr {
	a := s.conn.LocalAddr().(*net.TCPAddr)
	return Addr{Node: a.IP.String(), Port: uint16(a.Port)}
}

func (s *tcpStream) RemoteAddr() Addr {
	a := s.conn.RemoteAddr().(*net.TCPAddr)
	return Addr{Node: a.IP.String(), Port: uint16(a.Port)}
}

// tcpListener adapts a kernel TCP listener to the Listener interface.
type tcpListener struct {
	l *net.TCPListener
}

// ListenTCP opens a stream listener on host:port for RC-mode iWARP over
// real TCP (port 0 picks a free port).
func ListenTCP(host string, port uint16) (Listener, error) {
	ip := net.ParseIP(host)
	l, err := net.ListenTCP("tcp", &net.TCPAddr{IP: ip, Port: int(port)})
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

func (tl *tcpListener) Accept() (Stream, error) {
	c, err := tl.l.AcceptTCP()
	if err != nil {
		return nil, err
	}
	// iWARP over TCP sends latency-critical small FPDUs; disable Nagle as
	// any RNIC or software stack would.
	_ = c.SetNoDelay(true) //diwarp:ignore errflow: socket-option tuning: the stream works (slower) without it
	return &tcpStream{conn: c}, nil
}

func (tl *tcpListener) Addr() Addr {
	a := tl.l.Addr().(*net.TCPAddr)
	return Addr{Node: a.IP.String(), Port: uint16(a.Port)}
}

func (tl *tcpListener) Close() error { return tl.l.Close() }

// DialTCP connects a stream to the given address for RC-mode iWARP.
func DialTCP(to Addr) (Stream, error) {
	c, err := net.Dial("tcp", to.String())
	if err != nil {
		return nil, err
	}
	tc := c.(*net.TCPConn)
	_ = tc.SetNoDelay(true) //diwarp:ignore errflow: socket-option tuning: the stream works (slower) without it
	return &tcpStream{conn: tc}, nil
}
