package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestAddrString(t *testing.T) {
	a := Addr{Node: "10.0.0.1", Port: 4096}
	if a.String() != "10.0.0.1:4096" {
		t.Fatalf("got %q", a.String())
	}
	if a.IsZero() {
		t.Fatal("non-zero addr reported zero")
	}
	if !(Addr{}).IsZero() {
		t.Fatal("zero addr not detected")
	}
}

func TestUDPEndpointRoundTrip(t *testing.T) {
	a, err := ListenUDP("127.0.0.1", 0)
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.MaxDatagram() != MaxDatagramSize || a.PathMTU() != DefaultMTU {
		t.Fatalf("limits: %d %d", a.MaxDatagram(), a.PathMTU())
	}
	msg := []byte("over real loopback")
	if err := a.SendTo(msg, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	got, from, err := b.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if from.Port != a.LocalAddr().Port {
		t.Fatalf("from = %v, want port %d", from, a.LocalAddr().Port)
	}
}

func TestUDPEndpointSendBatch(t *testing.T) {
	a, err := ListenUDP("127.0.0.1", 0)
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var bs BatchSender = a // the UDP endpoint must satisfy the optional interface
	pkts := [][]byte{[]byte("seg0"), []byte("seg1"), []byte("seg2")}
	n, err := bs.SendBatch(pkts, b.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(pkts) {
		t.Fatalf("SendBatch sent %d, want %d", n, len(pkts))
	}
	seen := map[string]bool{}
	for range pkts {
		got, _, err := b.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		seen[string(got)] = true
	}
	for _, p := range pkts {
		if !seen[string(p)] {
			t.Fatalf("packet %q never arrived", p)
		}
	}
	// Oversized packets must be rejected before anything hits the wire.
	if n, err := bs.SendBatch([][]byte{{1}, make([]byte, MaxDatagramSize+1)}, b.LocalAddr()); n != 0 || !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized batch: n=%d err=%v", n, err)
	}
}

func TestUDPEndpointTimeout(t *testing.T) {
	a, err := ListenUDP("127.0.0.1", 0)
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer a.Close()
	if _, _, err := a.Recv(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestUDPEndpointTooLarge(t *testing.T) {
	a, err := ListenUDP("127.0.0.1", 0)
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer a.Close()
	err = a.SendTo(make([]byte, MaxDatagramSize+1), a.LocalAddr())
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestUDPEndpointClosed(t *testing.T) {
	a, err := ListenUDP("127.0.0.1", 0)
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	a.Close()
	if _, _, err := a.Recv(time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := ListenTCP("127.0.0.1", 0)
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer s.Close()
		buf := make([]byte, 4)
		if _, err := io.ReadFull(s, buf); err != nil {
			t.Error(err)
			return
		}
		if _, err := s.Write(bytes.ToUpper(buf)); err != nil {
			t.Error(err)
		}
	}()
	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "PING" {
		t.Fatalf("got %q", buf)
	}
	<-done
}
