package transport

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// udpPairMode is udpPair with the batch-capability probe pinned, so the same
// assertions can run over every fallback tier (kernel batch, mmsg-only,
// portable loop).
func udpPairMode(t testing.TB, amode, bmode UDPBatchMode) (a, b *UDPEndpoint) {
	t.Helper()
	a, err := ListenUDPMode("127.0.0.1", 0, amode)
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	b, err = ListenUDPMode("127.0.0.1", 0, bmode)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func modeName(m UDPBatchMode) string {
	switch m {
	case BatchPortable:
		return "portable"
	case BatchMmsg:
		return "mmsg"
	default:
		return "auto"
	}
}

// TestUDPBatchModeTiers checks the capability probe honours the mode ladder
// and its own invariants: portable mode reports no features, mmsg mode never
// reports the offloads, and the offloads imply their base syscalls.
func TestUDPBatchModeTiers(t *testing.T) {
	p, err := ListenUDPMode("127.0.0.1", 0, BatchPortable)
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer p.Close()
	if p.kern != nil {
		t.Fatal("BatchPortable still built a kernel datapath")
	}
	if f := p.BatchFeatures(); f != (BatchFeatures{}) {
		t.Fatalf("portable endpoint reports features %v", f)
	}
	if s := p.BatchFeatures().String(); s != "portable" {
		t.Fatalf("portable feature string = %q", s)
	}

	m, err := ListenUDPMode("127.0.0.1", 0, BatchMmsg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if f := m.BatchFeatures(); f.GSO || f.GRO {
		t.Fatalf("BatchMmsg enabled an offload: %v", f)
	}

	a, err := ListenUDPMode("127.0.0.1", 0, BatchAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	f := a.BatchFeatures()
	t.Logf("auto probe on this kernel: %v", f)
	if f.GSO && !f.Sendmmsg {
		t.Fatalf("GSO without sendmmsg: %v", f)
	}
	if f.GRO && !f.Recvmmsg {
		t.Fatalf("GRO without recvmmsg: %v", f)
	}
}

// equivalenceBursts builds the burst shapes the cross-path test sends: a
// GSO-eligible run of equal segments (distinct payloads, so kernel re-cut
// and GRO split-back errors surface as content corruption), a ragged burst
// that must take the mmsg path, a lone datagram, a burst containing an
// empty datagram, and a single large datagram near the size cap.
func equivalenceBursts() [][][]byte {
	fill := func(n, tag int) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(tag + i*7)
		}
		return p
	}
	equal := make([][]byte, 16)
	for i := range equal {
		equal[i] = fill(512, i)
	}
	ragged := [][]byte{fill(1, 100), fill(700, 101), fill(512, 102), fill(1499, 103)}
	withEmpty := [][]byte{fill(64, 110), {}, fill(64, 111)}
	return [][][]byte{
		equal,
		ragged,
		{fill(333, 120)},
		withEmpty,
		{fill(60000, 130)},
	}
}

// TestUDPBatchEquivalence runs the same traffic over every sender-tier ×
// receiver-tier combination and asserts byte-identical delivery and exact
// per-burst send counts: the kernel batch paths (mmsg, GSO, GRO split-back)
// must be indistinguishable from the portable loop at the Datagram contract.
func TestUDPBatchEquivalence(t *testing.T) {
	modes := []UDPBatchMode{BatchPortable, BatchMmsg, BatchAuto}
	for _, sm := range modes {
		for _, rm := range modes {
			t.Run(modeName(sm)+"_to_"+modeName(rm), func(t *testing.T) {
				src, dst := udpPairMode(t, sm, rm)
				t.Logf("send features %v, recv features %v",
					src.BatchFeatures(), dst.BatchFeatures())

				want := make(map[string]int)
				total := 0
				for bi, burst := range equivalenceBursts() {
					n, err := src.SendBatch(burst, dst.LocalAddr())
					if err != nil {
						t.Fatalf("burst %d: %v", bi, err)
					}
					if n != len(burst) {
						t.Fatalf("burst %d: sent %d of %d", bi, n, len(burst))
					}
					for _, p := range burst {
						want[string(p)]++
						total++
					}
				}

				pkts := make([][]byte, 8)
				froms := make([]Addr, 8)
				got := 0
				for got < total {
					n, err := dst.RecvBatch(pkts, froms, 2*time.Second)
					if err != nil {
						t.Fatalf("after %d/%d: %v", got, total, err)
					}
					for i := 0; i < n; i++ {
						if froms[i].Port != src.LocalAddr().Port {
							t.Fatalf("packet %d from %v, want port %d",
								got+i, froms[i], src.LocalAddr().Port)
						}
						key := string(pkts[i])
						if want[key] == 0 {
							t.Fatalf("unexpected or duplicate %d-byte datagram", len(pkts[i]))
						}
						want[key]--
						dst.Recycle(pkts[i])
					}
					got += n
				}
				// Exactly the sent datagrams, nothing extra queued.
				if _, err := dst.RecvBatch(pkts, froms, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
					t.Fatalf("socket not drained after %d datagrams: %v", total, err)
				}
			})
		}
	}
}

// TestUDPGSOBoundaries pins the offload round trip: one GSO send is re-cut
// by the kernel into wire datagrams at segment boundaries, and the GRO
// receiver splits any re-coalesced super-segment back without moving a
// boundary. Runs only where the probe enabled GSO.
func TestUDPGSOBoundaries(t *testing.T) {
	src, dst := udpPairMode(t, BatchAuto, BatchAuto)
	if !src.BatchFeatures().GSO {
		t.Skipf("kernel without UDP_SEGMENT (features %v)", src.BatchFeatures())
	}
	const segs, segsz = 32, 1024
	burst := make([][]byte, segs)
	for i := range burst {
		burst[i] = bytes.Repeat([]byte{byte(i + 1)}, segsz)
	}
	burst[segs-1] = burst[segs-1][:segsz-100] // smaller tail is still eligible
	n, err := src.SendBatch(burst, dst.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	if n != segs {
		t.Fatalf("sent %d of %d", n, segs)
	}
	seen := make(map[byte]int)
	pkts := make([][]byte, 4) // smaller than the burst: exercises pending spill
	froms := make([]Addr, 4)
	for got := 0; got < segs; {
		k, err := dst.RecvBatch(pkts, froms, 2*time.Second)
		if err != nil {
			t.Fatalf("after %d/%d: %v", got, segs, err)
		}
		for i := 0; i < k; i++ {
			p := pkts[i]
			if len(p) == 0 {
				t.Fatal("empty datagram out of a GSO burst")
			}
			tag := p[0]
			wantLen := segsz
			if int(tag) == segs {
				wantLen = segsz - 100
			}
			if len(p) != wantLen {
				t.Fatalf("segment %d: %d bytes, want %d (boundary moved)", tag, len(p), wantLen)
			}
			for _, c := range p {
				if c != tag {
					t.Fatalf("segment %d: payload bled across a boundary", tag)
				}
			}
			seen[tag]++
			dst.Recycle(p)
		}
		got += k
	}
	for i := 1; i <= segs; i++ {
		if seen[byte(i)] != 1 {
			t.Fatalf("segment %d delivered %d times", i, seen[byte(i)])
		}
	}
}

// TestUDPSendBatchAllocFree pins the kernel send path at 0 allocs/op in
// steady state, for both the GSO single-send and the mmsg chunk loop.
func TestUDPSendBatchAllocFree(t *testing.T) {
	src, dst := udpPairMode(t, BatchAuto, BatchPortable)
	if !src.BatchFeatures().Sendmmsg {
		t.Skipf("kernel without sendmmsg (features %v)", src.BatchFeatures())
	}
	to := dst.LocalAddr()
	equal := make([][]byte, 32) // GSO-eligible when the probe allows
	for i := range equal {
		equal[i] = bytes.Repeat([]byte{byte(i)}, 512)
	}
	ragged := [][]byte{equal[0][:100], equal[1], equal[2][:300]} // mmsg only
	for name, burst := range map[string][][]byte{"equal": equal, "ragged": ragged} {
		// Warm the destination cache; the receiver never reads, drops are fine.
		if _, err := src.SendBatch(burst, to); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := src.SendBatch(burst, to); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s burst: SendBatch allocates %.2f times per burst, want 0", name, allocs)
		}
	}
}

// TestUDPRecvBatchAllocFreeKernel pins the recvmmsg path at 0 allocs/op in
// steady state: pooled buffers, cached peer, prebuilt syscall closure.
func TestUDPRecvBatchAllocFreeKernel(t *testing.T) {
	src, dst := udpPairMode(t, BatchAuto, BatchAuto)
	if !dst.BatchFeatures().Recvmmsg {
		t.Skipf("kernel without recvmmsg (features %v)", dst.BatchFeatures())
	}
	msg := bytes.Repeat([]byte{9}, 1024)
	to := dst.LocalAddr()
	pkts := make([][]byte, 1) // one slot: each run consumes exactly one datagram
	froms := make([]Addr, 1)
	// Warm pool and address cache.
	for i := 0; i < 8; i++ {
		if err := src.SendTo(msg, to); err != nil {
			t.Fatal(err)
		}
		if _, err := dst.RecvBatch(pkts, froms, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		dst.Recycle(pkts[0])
	}
	const runs = 100
	for i := 0; i < runs+1; i++ { // +1: AllocsPerRun's warm-up call
		if err := src.SendTo(msg, to); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(runs, func() {
		n, err := dst.RecvBatch(pkts, froms, 2*time.Second)
		if err != nil || n != 1 {
			t.Fatalf("n=%d err=%v", n, err)
		}
		dst.Recycle(pkts[0])
	})
	if allocs != 0 {
		t.Fatalf("RecvBatch allocates %.2f times per call, want 0", allocs)
	}
}

// TestUDPRecvBatchRestoresDeadline is the regression test for the stale
// drain deadline: RecvBatch's non-blocking drain arms an already-expired
// deadline on the shared socket, and before the fix it stayed armed, so a
// following blocking read returned ErrTimeout instantly instead of waiting.
// Both the portable drain and the kernel path's timed wait must hand the
// socket back with no deadline pending.
func TestUDPRecvBatchRestoresDeadline(t *testing.T) {
	for _, mode := range []UDPBatchMode{BatchPortable, BatchAuto} {
		t.Run(modeName(mode), func(t *testing.T) {
			src, dst := udpPairMode(t, BatchPortable, mode)
			to := dst.LocalAddr()
			// Queue a burst and drain it with a timed RecvBatch — the drain is
			// what leaves the expired deadline armed in the buggy version.
			for i := 0; i < 3; i++ {
				if err := src.SendTo([]byte{byte(i)}, to); err != nil {
					t.Fatal(err)
				}
			}
			pkts := make([][]byte, 8)
			froms := make([]Addr, 8)
			for got := 0; got < 3; {
				n, err := dst.RecvBatch(pkts, froms, 2*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					dst.Recycle(pkts[i])
				}
				got += n
			}
			// A blocking read that sets no deadline of its own must wait for
			// this late packet; with a stale deadline it fails immediately.
			go func() {
				time.Sleep(150 * time.Millisecond)
				_ = src.SendTo([]byte("late"), to)
			}()
			type res struct {
				p   []byte
				err error
			}
			ch := make(chan res, 1)
			go func() {
				p, _, err := dst.readPooled()
				ch <- res{p, err}
			}()
			select {
			case r := <-ch:
				if r.err != nil {
					t.Fatalf("blocking read after drain: %v (stale deadline left armed)", r.err)
				}
				if string(r.p) != "late" {
					t.Fatalf("blocking read got %q, want the late packet", r.p)
				}
				dst.Recycle(r.p)
			case <-time.After(5 * time.Second):
				t.Fatal("blocking read never completed")
			}
		})
	}
}

// BenchmarkUDPSendBatch measures the batched UDP send path over loopback at
// each fallback tier. The receiver drains in a goroutine so the socket
// queue never saturates; run with -benchmem — steady state is 0 allocs/op
// on the kernel tiers.
func BenchmarkUDPSendBatch(b *testing.B) {
	for _, mode := range []UDPBatchMode{BatchPortable, BatchMmsg, BatchAuto} {
		for _, burst := range []int{8, 32} {
			b.Run(fmt.Sprintf("%s/burst=%d", modeName(mode), burst), func(b *testing.B) {
				src, dst := udpPairMode(b, mode, BatchAuto)
				msg := bytes.Repeat([]byte{5}, 1024)
				pkts := make([][]byte, burst)
				for i := range pkts {
					pkts[i] = msg
				}
				to := dst.LocalAddr()
				stop := make(chan struct{})
				done := make(chan struct{})
				go func() {
					defer close(done)
					rp := make([][]byte, 64)
					rf := make([]Addr, 64)
					for {
						select {
						case <-stop:
							return
						default:
						}
						n, err := dst.RecvBatch(rp, rf, 100*time.Millisecond)
						if err != nil {
							continue // ErrTimeout while the sender warms up
						}
						for i := 0; i < n; i++ {
							dst.Recycle(rp[i])
						}
					}
				}()
				b.SetBytes(int64(len(msg)))
				b.ResetTimer()
				n := 0
				for n < b.N {
					k, err := src.SendBatch(pkts, to)
					if err != nil {
						b.Fatal(err)
					}
					n += k
				}
				b.StopTimer()
				close(stop)
				<-done
			})
		}
	}
}
