//go:build linux

package transport

// Batch-syscall trap numbers for linux/arm64 (the asm-generic table).
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
