package ddp

import (
	"bytes"
	"testing"

	"repro/internal/crcx"
	"repro/internal/memreg"
	"repro/internal/nio"
)

// FuzzDDPSegment round-trips fuzzed segments through the datagram wire
// format — AppendHeader + payload + CRC32C trailer, then Parse — and checks
// every header field and the payload survive. The fuzzed payload is also
// fed to Parse directly as a hostile packet: decoding must reject or
// succeed, never panic.
func FuzzDDPSegment(f *testing.F) {
	f.Add(false, true, byte(0x41), uint32(1), uint32(7), uint32(512), uint32(4096), uint64(0), []byte("payload"))
	f.Add(true, false, byte(0x00), uint32(0xdeadbeef), uint32(0), uint32(0), uint32(1), uint64(1<<40), []byte{})
	f.Fuzz(func(t *testing.T, tagged, last bool, rdmap byte, a, msn, mo, msgLen uint32, to uint64, payload []byte) {
		in := &Segment{Tagged: tagged, Last: last, RDMAP: rdmap, MSN: msn, MsgLen: msgLen}
		if tagged {
			in.STag = memreg.STag(a)
			in.TO = to
		} else {
			in.QN = a
			in.MO = mo
		}

		pkt := AppendHeader(nil, in)
		if len(pkt) != in.HeaderLen() {
			t.Fatalf("AppendHeader wrote %d bytes, HeaderLen says %d", len(pkt), in.HeaderLen())
		}
		pkt = append(pkt, payload...)
		pkt = nio.PutU32(pkt, crcx.Checksum(pkt))

		out, err := Parse(pkt, true)
		if err != nil {
			t.Fatalf("Parse rejected own encoding: %v", err)
		}
		if out.Tagged != in.Tagged || out.Last != in.Last || out.RDMAP != in.RDMAP ||
			out.MSN != in.MSN || out.MsgLen != in.MsgLen ||
			out.QN != in.QN || out.MO != in.MO ||
			out.STag != in.STag || out.TO != in.TO {
			t.Fatalf("header round-trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
		if !bytes.Equal(out.Payload, payload) {
			t.Fatalf("payload round-trip mismatch: sent %d bytes, got %d", len(payload), len(out.Payload))
		}

		// A flipped bit anywhere in the packet must fail the CRC.
		if len(pkt) > 0 {
			corrupt := append([]byte(nil), pkt...)
			corrupt[int(msn)%len(corrupt)] ^= 0x80
			if _, err := Parse(corrupt, true); err == nil {
				t.Fatal("Parse accepted a corrupted packet")
			}
		}

		// Hostile input: arbitrary bytes must never panic the decoder.
		_, _ = Parse(payload, true)
		_, _ = Parse(payload, false)
	})
}
