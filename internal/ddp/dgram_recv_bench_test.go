package ddp

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/crcx"
	"repro/internal/nio"
	"repro/internal/transport"
)

// replayEP is a feeder endpoint for receive-path benchmarks: it serves
// pre-encoded datagrams from a fixed ring, implementing BatchRecver,
// Recycler and RecvPoolStats so the full batched path is exercised with
// the wire taken out of the measurement. Buffers recycle through a
// freelist, so a warmed feeder allocates nothing.
type replayEP struct {
	discardEP
	mu     sync.Mutex
	free   [][]byte // recycled buffers, ready to serve again
	hits   int64
	misses int64
	proto  []byte // one encoded datagram, copied into fresh buffers

	corruptEvery int   // if > 0, flip the CRC trailer on every Nth datagram
	served       int64 // datagrams handed out, for the corruption cadence
}

func newReplayEP(pkt []byte) *replayEP {
	return &replayEP{discardEP: discardEP{maxDgram: transport.MaxDatagramSize}, proto: pkt}
}

func (r *replayEP) next() []byte {
	var buf []byte
	if n := len(r.free); n > 0 {
		buf = r.free[n-1]
		r.free = r.free[:n-1]
		r.hits++
	} else {
		r.misses++
		buf = make([]byte, len(r.proto))
		copy(buf, r.proto)
	}
	// Recycled buffers may carry a trailer corrupted by a previous round;
	// restore it, then corrupt on cadence.
	copy(buf[len(buf)-4:], r.proto[len(r.proto)-4:])
	r.served++
	if r.corruptEvery > 0 && r.served%int64(r.corruptEvery) == 0 {
		buf[len(buf)-1] ^= 0xff
	}
	return buf
}

func (r *replayEP) Recv(timeout time.Duration) ([]byte, transport.Addr, error) {
	r.mu.Lock()
	buf := r.next()
	r.mu.Unlock()
	return buf, transport.Addr{Node: "peer", Port: 9}, nil
}

func (r *replayEP) RecvBatch(pkts [][]byte, froms []transport.Addr, timeout time.Duration) (int, error) {
	from := transport.Addr{Node: "peer", Port: 9}
	r.mu.Lock()
	for i := range pkts {
		pkts[i] = r.next()
		froms[i] = from
	}
	r.mu.Unlock()
	return len(pkts), nil
}

func (r *replayEP) Recycle(p []byte) {
	r.mu.Lock()
	r.free = append(r.free, p)
	r.mu.Unlock()
}

func (r *replayEP) RecvPoolStats() (hits, misses int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}

// encodeSegment builds one wire datagram: header, payload, CRC32C trailer.
func encodeSegment(payload []byte) []byte {
	proto := &Segment{QN: QNSend, MSN: 1, MsgLen: uint32(len(payload)), Last: true}
	pkt := AppendHeader(nil, proto)
	pkt = append(pkt, payload...)
	return nio.PutU32(pkt, crcx.Checksum(pkt))
}

// BenchmarkUDRecvPath measures the batched receive path — burst pull,
// CRC32C verify, parse, recycle — against a replay feeder, swept across
// batch sizes. Run with -benchmem: the acceptance target is 0 allocs/op.
func BenchmarkUDRecvPath(b *testing.B) {
	const size = 32 << 10
	for _, burst := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("burst=%d", burst), func(b *testing.B) {
			ep := newReplayEP(encodeSegment(make([]byte, size)))
			ch := NewDatagramChannel(ep)
			segs := make([]Segment, burst)
			froms := make([]transport.Addr, burst)
			// Warm the feeder's freelist and the channel scratch pool.
			for i := 0; i < 4; i++ {
				n, err := ch.RecvBatch(segs, froms, 0)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					ch.Recycle(segs[j].Raw)
				}
			}
			b.SetBytes(int64(size))
			b.ResetTimer()
			n := 0
			for n < b.N {
				k, err := ch.RecvBatch(segs, froms, 0)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < k; i++ {
					ch.Recycle(segs[i].Raw)
				}
				n += k
			}
		})
	}
}

// BenchmarkUDRecvPathLoss sweeps corruption rates through the batched
// receive path: CRC failures take the drop path (count, recycle, continue)
// while the rest of the burst is still delivered. Throughput is reported
// over valid segments only.
func BenchmarkUDRecvPathLoss(b *testing.B) {
	const size = 32 << 10
	const burst = 8
	for _, loss := range []struct {
		name  string
		every int
	}{
		{"loss=0%", 0},
		{"loss=1%", 100},
		{"loss=10%", 10},
	} {
		b.Run(loss.name, func(b *testing.B) {
			ep := newReplayEP(encodeSegment(make([]byte, size)))
			ep.corruptEvery = loss.every
			ch := NewDatagramChannel(ep)
			segs := make([]Segment, burst)
			froms := make([]transport.Addr, burst)
			for i := 0; i < 4; i++ {
				n, err := ch.RecvBatch(segs, froms, 0)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					ch.Recycle(segs[j].Raw)
				}
			}
			b.SetBytes(int64(size))
			b.ResetTimer()
			n := 0
			for n < b.N {
				k, err := ch.RecvBatch(segs, froms, 0)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < k; i++ {
					ch.Recycle(segs[i].Raw)
				}
				n += k
			}
			b.StopTimer()
			// Guard against a silently non-corrupting feeder — but only
			// once enough datagrams passed for the cadence to trigger
			// (the framework's b.N=1 sizing run serves just a few).
			if loss.every > 0 && ep.served > int64(loss.every) && ch.crcFail.Load() == 0 {
				b.Fatal("corrupting feeder produced no CRC failures")
			}
		})
	}
}

// TestRecvPathAllocFree pins the batched receive path at 0 allocs/op in
// steady state — the acceptance bar for the pooled receive datapath.
func TestRecvPathAllocFree(t *testing.T) {
	ep := newReplayEP(encodeSegment(make([]byte, 4096)))
	ch := NewDatagramChannel(ep)
	segs := make([]Segment, 8)
	froms := make([]transport.Addr, 8)
	drain := func() {
		n, err := ch.RecvBatch(segs, froms, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			ch.Recycle(segs[i].Raw)
		}
	}
	for i := 0; i < 4; i++ {
		drain() // warm feeder freelist and scratch pool
	}
	if allocs := testing.AllocsPerRun(200, drain); allocs != 0 {
		t.Fatalf("batched receive allocates %.2f times per burst, want 0", allocs)
	}
}
