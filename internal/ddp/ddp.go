// Package ddp implements the Direct Data Placement protocol (Shah et al.,
// RDMA Consortium 2002) extended for datagram operation as described in the
// paper's §IV.B. DDP moves upper-layer messages either into anonymous
// receive queues (untagged model, send/recv) or directly into registered
// memory named by a steering tag (tagged model, RDMA Write / Write-Record),
// segmenting each message to the lower layer's maximum transfer unit.
//
// Two lower-layer bindings are provided:
//
//   - StreamChannel rides an mpa.Conn (the standard's TCP binding). The LLP
//     is reliable and ordered, segments arrive exactly once and in order,
//     and MPA supplies integrity.
//   - DatagramChannel rides any transport.Datagram (the paper's UDP
//     binding). Every segment is self-describing — it carries the message
//     length and sequence number in addition to the stream binding's fields
//     — and carries its own CRC32C trailer, because the paper requires
//     "the use of CRC32 when sending messages" in datagram mode with the
//     UDP checksum disabled.
//
// Deviation from the 2002 wire format, documented for clarity: both tagged
// and untagged headers here carry MSN and MsgLen in both bindings (the RC
// binding strictly needs neither in tagged segments). This keeps one header
// codec for both modes; the cost is 8 bytes per RC tagged segment.
package ddp

import (
	"errors"
	"fmt"

	"repro/internal/crcx"
	"repro/internal/memreg"
	"repro/internal/nio"
)

// Version is the DDP protocol version emitted in every segment.
const Version = 1

// Queue numbers defined by the RDMAP mapping onto untagged DDP queues.
const (
	QNSend      = 0 // Send-type messages
	QNReadReq   = 1 // RDMA Read Requests
	QNTerminate = 2 // Terminate messages
)

// Header lengths in bytes. Both start with two control octets (DDP control
// and the RDMAP control byte riding in the DDP-reserved octet).
const (
	UntaggedHdrLen = 2 + 4 + 4 + 4 + 4 // ctrl, QN, MSN, MO, MsgLen
	TaggedHdrLen   = 2 + 4 + 8 + 4 + 4 // ctrl, STag, TO, MSN, MsgLen
)

// Wire decoding errors.
var (
	ErrBadVersion = errors.New("ddp: unsupported version")
	ErrShort      = errors.New("ddp: segment too short")
	ErrCRC        = errors.New("ddp: segment CRC mismatch")
	ErrTooBig     = errors.New("ddp: message exceeds binding limits")
)

// Segment is one decoded DDP segment: the unit of placement. Tagged
// segments place Payload at TO within the region named STag; untagged
// segments deliver Payload at offset MO of message MSN on queue QN.
type Segment struct {
	Tagged bool
	Last   bool // L bit: this segment completes its message
	RDMAP  byte // RDMAP control byte (opcode etc.), opaque at this layer

	// Untagged fields.
	QN uint32
	MO uint32

	// Tagged fields.
	STag memreg.STag
	TO   uint64

	// Common datagram-extension fields.
	MSN    uint32 // message sequence number
	MsgLen uint32 // total upper-layer message length

	Payload []byte

	// Raw is the underlying transport buffer the segment was decoded from
	// (datagram binding only). Once a consumer has fully processed the
	// segment it may pass Raw to DatagramChannel.Recycle.
	Raw []byte
}

const (
	ctrlTagged  = 1 << 7
	ctrlLast    = 1 << 6
	ctrlVerMask = 0x03
)

// AppendHeader appends the segment's wire header (without payload or CRC)
// to dst and returns the extended slice.
func AppendHeader(dst []byte, s *Segment) []byte {
	ctrl := byte(Version & ctrlVerMask)
	if s.Tagged {
		ctrl |= ctrlTagged
	}
	if s.Last {
		ctrl |= ctrlLast
	}
	dst = append(dst, ctrl, s.RDMAP)
	if s.Tagged {
		dst = nio.PutU32(dst, uint32(s.STag))
		dst = nio.PutU64(dst, s.TO)
	} else {
		dst = nio.PutU32(dst, s.QN)
		dst = nio.PutU32(dst, s.MSN)
		dst = nio.PutU32(dst, s.MO)
		dst = nio.PutU32(dst, s.MsgLen)
		return dst
	}
	dst = nio.PutU32(dst, s.MSN)
	dst = nio.PutU32(dst, s.MsgLen)
	return dst
}

// HeaderLen returns the header length implied by the segment's model.
func (s *Segment) HeaderLen() int {
	if s.Tagged {
		return TaggedHdrLen
	}
	return UntaggedHdrLen
}

// Parse decodes one DDP segment from pkt. With withCRC set (datagram
// binding), the trailing CRC32C is verified over header+payload and
// stripped. The returned Segment's Payload aliases pkt.
func Parse(pkt []byte, withCRC bool) (Segment, error) {
	if withCRC {
		if len(pkt) < crcx.Size {
			return Segment{}, fmt.Errorf("%w: %d bytes", ErrShort, len(pkt))
		}
		body := pkt[:len(pkt)-crcx.Size]
		want := nio.U32(pkt[len(pkt)-crcx.Size:])
		if crcx.Checksum(body) != want {
			return Segment{}, ErrCRC
		}
		pkt = body
	}
	if len(pkt) < 2 {
		return Segment{}, fmt.Errorf("%w: %d bytes", ErrShort, len(pkt))
	}
	ctrl := pkt[0]
	if ctrl&ctrlVerMask != Version {
		return Segment{}, fmt.Errorf("%w: %d", ErrBadVersion, ctrl&ctrlVerMask)
	}
	s := Segment{
		Tagged: ctrl&ctrlTagged != 0,
		Last:   ctrl&ctrlLast != 0,
		RDMAP:  pkt[1],
	}
	if s.Tagged {
		if len(pkt) < TaggedHdrLen {
			return Segment{}, fmt.Errorf("%w: tagged header needs %d bytes, have %d", ErrShort, TaggedHdrLen, len(pkt))
		}
		s.STag = memreg.STag(nio.U32(pkt[2:]))
		s.TO = nio.U64(pkt[6:])
		s.MSN = nio.U32(pkt[14:])
		s.MsgLen = nio.U32(pkt[18:])
		s.Payload = pkt[TaggedHdrLen:]
		return s, nil
	}
	if len(pkt) < UntaggedHdrLen {
		return Segment{}, fmt.Errorf("%w: untagged header needs %d bytes, have %d", ErrShort, UntaggedHdrLen, len(pkt))
	}
	s.QN = nio.U32(pkt[2:])
	s.MSN = nio.U32(pkt[6:])
	s.MO = nio.U32(pkt[10:])
	s.MsgLen = nio.U32(pkt[14:])
	s.Payload = pkt[UntaggedHdrLen:]
	return s, nil
}
