package ddp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/crcx"
	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// maxBatchSegments bounds how many segment buffers one message holds out of
// the pool at once. A full batch at the 64 KB datagram limit is ~2 MB of
// pooled memory per in-flight send — enough to amortize the per-batch costs
// (one BatchSender call, one queue lock) without letting a 1 GB message pin
// a gigabyte of buffers.
const maxBatchSegments = 32

// DatagramChannel binds DDP to an unreliable datagram LLP: the paper's
// datagram-iWARP datapath (Figure 4, right column). There is no MPA layer —
// "MPA bypassed for datagrams" — because datagrams carry their own message
// boundaries. Every segment instead carries a CRC32C trailer, per the
// paper's operating conditions ("datagram-iWARP always requires the use of
// CRC32 when sending messages").
//
// Segmentation differs from the stream binding in the way the paper
// describes: a message is cut into datagram-sized DDP segments (up to the
// 64 KB UDP limit), each of which the network below may fragment to the
// wire MTU. Loss of a wire fragment kills one segment, not the message —
// which is what lets Write-Record place the surviving segments.
//
// The send path is a batched, pool-backed pipeline: each segment is encoded
// into its own buffer drawn from a per-channel pool, CRC'd, and the burst is
// handed to the LLP through transport.BatchSender where available. There is
// no per-channel send lock and no shared send buffer, so concurrent posters
// on one QP proceed independently — they contend only on the pool's
// lock-free free list and (under simnet) one queue lock per batch.
type DatagramChannel struct {
	ep     transport.Datagram
	batch  transport.BatchSender   // non-nil when ep supports batched sends
	brecv  transport.BatchRecver   // non-nil when ep supports batched receives
	pstats transport.RecvPoolStats // non-nil when ep reports receive-pool stats

	pool      *nio.Pool // segment wire buffers, capacity ep.MaxDatagram()
	batchBuf  sync.Pool // *[][]byte scratch, capacity maxBatchSegments
	recvBuf   sync.Pool // *recvScratch staging for RecvBatch
	recvBurst int       // scratch width: maxRecvBurst, widened under GRO

	// lastPoolHits/Misses are the endpoint pool counters as of the last
	// pull; RecvBatch exports the per-batch delta into the registry handles
	// below. Guarded by pstatsMu (one acquisition per batch, off the
	// annotated fast path).
	pstatsMu       sync.Mutex
	lastPoolHits   int64
	lastPoolMisses int64

	// Channel counters live on the telemetry registry (DESIGN.md §4.6):
	// each channel's handles are exact for SendStats, and the registry
	// aggregates every channel for the process-wide scrape.
	batches       *telemetry.Counter   // SendBatch bursts issued
	segments      *telemetry.Counter   // wire segments emitted (batched or not)
	crcFail       *telemetry.Counter   // inbound segments dropped on CRC/parse
	batchHist     *telemetry.Histogram // segments per burst
	recvBatches   *telemetry.Counter   // RecvBatch bursts pulled
	recvSegments  *telemetry.Counter   // CRC-valid segments delivered upward
	recvBatchHist *telemetry.Histogram // datagrams per received burst
	recycled      *telemetry.Counter   // receive buffers returned to the LLP pool
	recvPoolHit   *telemetry.Counter   // endpoint receive-pool hits (delta-pulled)
	recvPoolMiss  *telemetry.Counter   // endpoint receive-pool misses (delta-pulled)
}

// maxRecvBurst bounds one RecvBatch pull from the LLP. It matches the send
// side's maxBatchSegments so a full send burst drains in one receive burst.
const maxRecvBurst = maxBatchSegments

// maxRecvBurstGRO is the burst bound against an LLP doing UDP_GRO receive
// coalescing (transport.BatchFeatures.GRO): one recvmmsg there can split
// back into up to 64 datagrams per super-segment (the kernel's
// UDP_MAX_SEGMENTS), so a maxRecvBurst-sized pull would leave split-back
// overflow queued in the endpoint and re-enter the syscall path half-fed.
// Doubling the scratch lets one pull drain a full GSO burst's worth of
// coalesced traffic in one hop.
const maxRecvBurstGRO = 2 * maxRecvBurst

// recvScratch is the staging area RecvBatch pulls raw datagrams into before
// CRC verification; pooled per channel so the receive path allocates nothing.
type recvScratch struct {
	pkts  [][]byte
	addrs []transport.Addr
}

// NewDatagramChannel wraps a datagram endpoint (raw simnet/UDP for UD, or
// an rudp.Endpoint for the reliable-datagram mode).
func NewDatagramChannel(ep transport.Datagram) *DatagramChannel {
	ch := &DatagramChannel{
		ep:            ep,
		pool:          nio.NewPool(ep.MaxDatagram()),
		batches:       telemetry.Default.Counter("diwarp_ddp_batches_total"),
		segments:      telemetry.Default.Counter("diwarp_ddp_segments_total"),
		crcFail:       telemetry.Default.Counter("diwarp_ddp_crc_fail_total"),
		batchHist:     telemetry.Default.Histogram("diwarp_ddp_batch_segments"),
		recvBatches:   telemetry.Default.Counter("diwarp_ddp_recv_batches_total"),
		recvSegments:  telemetry.Default.Counter("diwarp_ddp_recv_segments_total"),
		recvBatchHist: telemetry.Default.Histogram("diwarp_ddp_recv_batch_segments"),
		recycled:      telemetry.Default.Counter("diwarp_ddp_recycled_total"),
		recvPoolHit:   telemetry.Default.Counter("diwarp_ddp_recv_pool_hits_total"),
		recvPoolMiss:  telemetry.Default.Counter("diwarp_ddp_recv_pool_misses_total"),
	}
	ch.batch, _ = ep.(transport.BatchSender)
	ch.brecv, _ = ep.(transport.BatchRecver)
	ch.pstats, _ = ep.(transport.RecvPoolStats)
	ch.recvBurst = maxRecvBurst
	if bc, ok := ep.(transport.BatchCapabilities); ok && bc.BatchFeatures().GRO {
		ch.recvBurst = maxRecvBurstGRO
	}
	ch.batchBuf.New = func() any {
		b := make([][]byte, 0, maxBatchSegments)
		return &b
	}
	ch.recvBuf.New = func() any {
		return &recvScratch{
			pkts:  make([][]byte, ch.recvBurst),
			addrs: make([]transport.Addr, ch.recvBurst),
		}
	}
	return ch
}

// MaxSegment returns the largest DDP payload one datagram segment carries.
func (ch *DatagramChannel) MaxSegment() int {
	return ch.ep.MaxDatagram() - TaggedHdrLen - crcx.Size
}

// Endpoint returns the underlying datagram endpoint.
func (ch *DatagramChannel) Endpoint() transport.Datagram { return ch.ep }

// LocalAddr returns the bound address.
func (ch *DatagramChannel) LocalAddr() transport.Addr { return ch.ep.LocalAddr() }

// Close closes the underlying endpoint.
func (ch *DatagramChannel) Close() error { return ch.ep.Close() }

// SendStats reports the channel's send-side counters: bursts handed to the
// LLP's BatchSender, total wire segments emitted, and the segment-buffer
// pool's hit/miss counts.
func (ch *DatagramChannel) SendStats() (batches, segments, poolHits, poolMisses int64) {
	poolHits, poolMisses = ch.pool.Stats()
	return ch.batches.Load(), ch.segments.Load(), poolHits, poolMisses
}

// Recycle returns a fully-consumed receive buffer (a Segment's Raw field)
// to the transport when it supports recycling; otherwise it is a no-op.
func (ch *DatagramChannel) Recycle(raw []byte) {
	if raw == nil {
		return
	}
	if r, ok := ch.ep.(transport.Recycler); ok {
		r.Recycle(raw)
		ch.recycled.Inc()
	}
}

// SendUntagged segments one untagged message to the destination. Segments
// may be lost or reordered in flight; the headers carry enough state (MSN,
// MO, MsgLen, Last) for the receiver's Reassembler to cope.
func (ch *DatagramChannel) SendUntagged(to transport.Addr, qn, msn uint32, rdmapCtrl byte, payload nio.Vec) error {
	return ch.send(to, &Segment{QN: qn, MSN: msn, RDMAP: rdmapCtrl}, payload)
}

// SendTagged segments one tagged message for direct placement at the
// destination. Used by RDMA Write-Record: each segment is independently
// placeable on arrival.
func (ch *DatagramChannel) SendTagged(to transport.Addr, stag memreg.STag, toff uint64, msn uint32, rdmapCtrl byte, payload nio.Vec) error {
	return ch.send(to, &Segment{Tagged: true, STag: stag, TO: toff, MSN: msn, RDMAP: rdmapCtrl}, payload)
}

// send cuts one message into per-segment pooled buffers — header, payload
// range, CRC32C trailer — and hands them to the LLP in bursts. Buffer
// ownership: every buffer is drawn from ch.pool, passed down while the LLP
// call is in flight (the LLP must not retain it, per the transport
// contract), and returned to the pool here before send returns.
//
//diwarp:hotpath
func (ch *DatagramChannel) send(to transport.Addr, proto *Segment, payload nio.Vec) error {
	total := payload.Len()
	if uint64(total) > uint64(^uint32(0)) {
		return errTooBig(total)
	}
	proto.MsgLen = uint32(total)
	maxSeg := ch.ep.MaxDatagram() - proto.HeaderLen() - crcx.Size

	if ch.batch == nil {
		return ch.sendUnbatched(to, proto, payload, maxSeg, total)
	}

	pktsp := ch.batchBuf.Get().(*[][]byte)
	pkts := (*pktsp)[:0]
	flush := func() error {
		if len(pkts) == 0 {
			return nil
		}
		_, err := ch.batch.SendBatch(pkts, to)
		ch.batches.Inc()
		ch.segments.Add(int64(len(pkts)))
		ch.batchHist.Observe(int64(len(pkts)))
		for i, p := range pkts {
			ch.pool.Put(p)
			pkts[i] = nil
		}
		pkts = pkts[:0]
		return err
	}
	off := 0
	for {
		n := min(maxSeg, total-off)
		proto.Last = off+n == total
		pkt := AppendHeader(ch.pool.Get(), proto)
		pkt = payload.AppendRange(pkt, off, n)
		pkt = nio.PutU32(pkt, crcx.Checksum(pkt))
		pkts = append(pkts, pkt)
		off += n
		if proto.Tagged {
			proto.TO += uint64(n)
		} else {
			proto.MO += uint32(n)
		}
		if proto.Last || len(pkts) == maxBatchSegments {
			if err := flush(); err != nil {
				*pktsp = pkts
				ch.batchBuf.Put(pktsp)
				return err
			}
			if proto.Last {
				*pktsp = pkts
				ch.batchBuf.Put(pktsp)
				return nil
			}
		}
	}
}

// errTooBig is send's cold failure path, outlined so the annotated hot
// path stays fmt-free.
func errTooBig(n int) error {
	return fmt.Errorf("%w: %d bytes", ErrTooBig, n)
}

// sendUnbatched is the per-packet fallback for LLPs without BatchSender:
// one pooled buffer is reused across the message's segments, with no shared
// channel state, so concurrent senders still do not serialize.
//
//diwarp:hotpath
func (ch *DatagramChannel) sendUnbatched(to transport.Addr, proto *Segment, payload nio.Vec, maxSeg, total int) error {
	buf := ch.pool.Get()
	defer ch.pool.Put(buf)
	off := 0
	for {
		n := min(maxSeg, total-off)
		proto.Last = off+n == total
		pkt := AppendHeader(buf[:0], proto)
		pkt = payload.AppendRange(pkt, off, n)
		pkt = nio.PutU32(pkt, crcx.Checksum(pkt))
		ch.segments.Inc()
		if err := ch.ep.SendTo(pkt, to); err != nil {
			return err
		}
		off += n
		if proto.Tagged {
			proto.TO += uint64(n)
		} else {
			proto.MO += uint32(n)
		}
		if proto.Last {
			return nil
		}
	}
}

// Recv returns the next CRC-valid DDP segment and its source. Segments
// failing CRC are dropped and counted, per the paper's UD error model
// (errors are reported, the channel stays usable). A zero timeout blocks.
func (ch *DatagramChannel) Recv(timeout time.Duration) (Segment, transport.Addr, error) {
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		remaining := time.Duration(0)
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				return Segment{}, transport.Addr{}, transport.ErrTimeout
			}
		}
		pkt, from, err := ch.ep.Recv(remaining)
		if err != nil {
			return Segment{}, transport.Addr{}, err
		}
		seg, err := Parse(pkt, true)
		if err != nil {
			ch.dropBad(pkt, from, err)
			continue
		}
		seg.Raw = pkt
		return seg, from, nil
	}
}

// dropBad disposes of a corrupt or runt datagram: drop and keep receiving.
// The QP does not error out (paper §IV.B item 2). CRC failures are the UD
// error model's one observable, so they are counted and traced. Outlined
// from the annotated batch parse loop as its cold path.
func (ch *DatagramChannel) dropBad(pkt []byte, from transport.Addr, err error) {
	if errors.Is(err, ErrCRC) {
		ch.crcFail.Inc()
		telemetry.DefaultTrace.Record(telemetry.EvCRCFail, telemetry.PeerToken(from), len(pkt), 0)
	}
	ch.Recycle(pkt)
}

// RecvBatch fills segs and froms with up to min(len(segs), len(froms))
// CRC-valid segments pulled from the LLP in one burst: a single BatchRecver
// call pulls the raw datagrams, the burst is verified segment-by-segment
// (crcx dispatches to hardware CRC32C), and valid segments are handed up
// in place — each Segment's Payload aliases its Raw buffer, so nothing is
// re-copied. Corrupt datagrams are dropped and counted exactly as in Recv;
// a burst that was ALL corrupt pulls again until the deadline. Returns the
// number of valid segments; n ≥ 1 on nil error.
//
// On an LLP without BatchRecver this degrades to one Recv per call, so
// callers need no fallback of their own.
func (ch *DatagramChannel) RecvBatch(segs []Segment, froms []transport.Addr, timeout time.Duration) (int, error) {
	max := min(len(segs), len(froms))
	if max == 0 {
		return 0, nil
	}
	if ch.brecv == nil {
		seg, from, err := ch.Recv(timeout)
		if err != nil {
			return 0, err
		}
		segs[0], froms[0] = seg, from
		return 1, nil
	}
	burst := min(max, ch.recvBurst)
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	sc := ch.recvBuf.Get().(*recvScratch)
	defer ch.recvBuf.Put(sc)
	for {
		remaining := time.Duration(0)
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				return 0, transport.ErrTimeout
			}
		}
		n, err := ch.brecv.RecvBatch(sc.pkts[:burst], sc.addrs[:burst], remaining)
		if err != nil {
			return 0, err
		}
		m := ch.parseBatch(sc.pkts[:n], sc.addrs[:n], segs, froms)
		ch.recvBatches.Inc()
		ch.recvBatchHist.Observe(int64(n))
		ch.recvSegments.Add(int64(m))
		ch.pullPoolStats()
		if m > 0 {
			return m, nil
		}
		// Whole burst failed CRC: keep pulling, like Recv's drop-and-retry.
	}
}

// parseBatch verifies and parses a burst of raw datagrams into segs/froms,
// returning how many were valid. Valid segments keep their raw buffer (no
// re-copy); invalid ones take the outlined cold path.
//
//diwarp:hotpath
func (ch *DatagramChannel) parseBatch(pkts [][]byte, addrs []transport.Addr, segs []Segment, froms []transport.Addr) int {
	m := 0
	for i, pkt := range pkts {
		seg, err := Parse(pkt, true)
		if err != nil {
			ch.dropBad(pkt, addrs[i], err)
			pkts[i] = nil
			continue
		}
		seg.Raw = pkt
		segs[m], froms[m] = seg, addrs[i]
		pkts[i] = nil // drop the scratch reference: caller owns it now
		m++
	}
	return m
}

// pullPoolStats exports the endpoint receive pool's hit/miss counters into
// the registry as per-batch deltas. One mutex acquisition per burst, off the
// annotated parse loop. With a process-shared transport pool (simnet) every
// channel observes the same underlying counters, so the registry sum over
// channels can multiply-count; per-channel RecvStats reads stay exact.
func (ch *DatagramChannel) pullPoolStats() {
	if ch.pstats == nil {
		return
	}
	hits, misses := ch.pstats.RecvPoolStats()
	ch.pstatsMu.Lock()
	dh, dm := hits-ch.lastPoolHits, misses-ch.lastPoolMisses
	ch.lastPoolHits, ch.lastPoolMisses = hits, misses
	ch.pstatsMu.Unlock()
	if dh > 0 {
		ch.recvPoolHit.Add(dh)
	}
	if dm > 0 {
		ch.recvPoolMiss.Add(dm)
	}
}

// RecvStats reports the channel's receive-side counters: bursts pulled from
// the LLP's BatchRecver, CRC-valid segments delivered, buffers recycled to
// the LLP, and the endpoint receive pool's hit/miss counts as last pulled.
func (ch *DatagramChannel) RecvStats() (batches, segments, recycled, poolHits, poolMisses int64) {
	ch.pstatsMu.Lock()
	poolHits, poolMisses = ch.lastPoolHits, ch.lastPoolMisses
	ch.pstatsMu.Unlock()
	return ch.recvBatches.Load(), ch.recvSegments.Load(), ch.recycled.Load(), poolHits, poolMisses
}
