package ddp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/crcx"
	"repro/internal/memreg"
	"repro/internal/nio"
	"repro/internal/transport"
)

// DatagramChannel binds DDP to an unreliable datagram LLP: the paper's
// datagram-iWARP datapath (Figure 4, right column). There is no MPA layer —
// "MPA bypassed for datagrams" — because datagrams carry their own message
// boundaries. Every segment instead carries a CRC32C trailer, per the
// paper's operating conditions ("datagram-iWARP always requires the use of
// CRC32 when sending messages").
//
// Segmentation differs from the stream binding in the way the paper
// describes: a message is cut into datagram-sized DDP segments (up to the
// 64 KB UDP limit), each of which the network below may fragment to the
// wire MTU. Loss of a wire fragment kills one segment, not the message —
// which is what lets Write-Record place the surviving segments.
type DatagramChannel struct {
	ep transport.Datagram

	sendMu  sync.Mutex
	sendBuf []byte
}

// NewDatagramChannel wraps a datagram endpoint (raw simnet/UDP for UD, or
// an rudp.Endpoint for the reliable-datagram mode).
func NewDatagramChannel(ep transport.Datagram) *DatagramChannel {
	return &DatagramChannel{ep: ep}
}

// MaxSegment returns the largest DDP payload one datagram segment carries.
func (ch *DatagramChannel) MaxSegment() int {
	return ch.ep.MaxDatagram() - TaggedHdrLen - crcx.Size
}

// Endpoint returns the underlying datagram endpoint.
func (ch *DatagramChannel) Endpoint() transport.Datagram { return ch.ep }

// LocalAddr returns the bound address.
func (ch *DatagramChannel) LocalAddr() transport.Addr { return ch.ep.LocalAddr() }

// Close closes the underlying endpoint.
func (ch *DatagramChannel) Close() error { return ch.ep.Close() }

// Recycle returns a fully-consumed receive buffer (a Segment's Raw field)
// to the transport when it supports recycling; otherwise it is a no-op.
func (ch *DatagramChannel) Recycle(raw []byte) {
	if raw == nil {
		return
	}
	if r, ok := ch.ep.(transport.Recycler); ok {
		r.Recycle(raw)
	}
}

// SendUntagged segments one untagged message to the destination. Segments
// may be lost or reordered in flight; the headers carry enough state (MSN,
// MO, MsgLen, Last) for the receiver's Reassembler to cope.
func (ch *DatagramChannel) SendUntagged(to transport.Addr, qn, msn uint32, rdmapCtrl byte, payload nio.Vec) error {
	return ch.send(to, &Segment{QN: qn, MSN: msn, RDMAP: rdmapCtrl}, payload)
}

// SendTagged segments one tagged message for direct placement at the
// destination. Used by RDMA Write-Record: each segment is independently
// placeable on arrival.
func (ch *DatagramChannel) SendTagged(to transport.Addr, stag memreg.STag, toff uint64, msn uint32, rdmapCtrl byte, payload nio.Vec) error {
	return ch.send(to, &Segment{Tagged: true, STag: stag, TO: toff, MSN: msn, RDMAP: rdmapCtrl}, payload)
}

func (ch *DatagramChannel) send(to transport.Addr, proto *Segment, payload nio.Vec) error {
	total := payload.Len()
	if uint64(total) > uint64(^uint32(0)) {
		return fmt.Errorf("%w: %d bytes", ErrTooBig, total)
	}
	proto.MsgLen = uint32(total)
	maxSeg := ch.ep.MaxDatagram() - proto.HeaderLen() - crcx.Size

	ch.sendMu.Lock()
	defer ch.sendMu.Unlock()
	off := 0
	for {
		n := min(maxSeg, total-off)
		proto.Last = off+n == total
		pkt := AppendHeader(ch.sendBuf[:0], proto)
		pkt = payload.Slice(off, n).AppendTo(pkt)
		pkt = nio.PutU32(pkt, crcx.Checksum(pkt))
		ch.sendBuf = pkt[:0]
		if err := ch.ep.SendTo(pkt, to); err != nil {
			return err
		}
		off += n
		if proto.Tagged {
			proto.TO += uint64(n)
		} else {
			proto.MO += uint32(n)
		}
		if proto.Last {
			return nil
		}
	}
}

// Recv returns the next CRC-valid DDP segment and its source. Segments
// failing CRC are dropped and counted, per the paper's UD error model
// (errors are reported, the channel stays usable). A zero timeout blocks.
func (ch *DatagramChannel) Recv(timeout time.Duration) (Segment, transport.Addr, error) {
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		remaining := time.Duration(0)
		if !deadline.IsZero() {
			remaining = time.Until(deadline)
			if remaining <= 0 {
				return Segment{}, transport.Addr{}, transport.ErrTimeout
			}
		}
		pkt, from, err := ch.ep.Recv(remaining)
		if err != nil {
			return Segment{}, transport.Addr{}, err
		}
		seg, err := Parse(pkt, true)
		if err != nil {
			// Corrupt or runt datagram: drop and keep receiving. The QP does
			// not error out (paper §IV.B item 2).
			ch.Recycle(pkt)
			continue
		}
		seg.Raw = pkt
		return seg, from, nil
	}
}
