package ddp

import (
	"testing"

	"repro/internal/nio"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// TestSendPathAllocFree pins the segmented send path — header encode,
// payload gather, CRC, batch hand-off, buffer recycle — at 0 allocs/op in
// steady state, the acceptance bar for the pooled datapath. Both the
// BatchSender path and the per-packet fallback are pinned.
func TestSendPathAllocFree(t *testing.T) {
	to := transport.Addr{Node: "peer", Port: 2}
	for _, batch := range []bool{true, false} {
		name := "batch"
		var ep transport.Datagram
		if batch {
			ep = &discardBatchEP{discardEP{maxDgram: transport.MaxDatagramSize}}
		} else {
			name = "sendto"
			ep = &discardEP{maxDgram: transport.MaxDatagramSize}
		}
		t.Run(name, func(t *testing.T) {
			ch := NewDatagramChannel(ep)
			vec := nio.VecOf(make([]byte, 256<<10)) // 5 segments at the 64K limit
			// Warm the pools: first sends legitimately allocate the slab.
			for i := 0; i < 4; i++ {
				if err := ch.SendUntagged(to, QNSend, 1, 0, vec); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if err := ch.SendUntagged(to, QNSend, 1, 0, vec); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("segmented send allocates %.2f times per message, want 0", allocs)
			}
		})
	}
}

// TestSendStatsCounters verifies the new datapath counters: bursts issued,
// segments per burst, and pool hit rate.
func TestSendStatsCounters(t *testing.T) {
	ep := &discardBatchEP{discardEP{maxDgram: transport.MaxDatagramSize}}
	ch := NewDatagramChannel(ep)
	to := transport.Addr{Node: "peer", Port: 2}
	vec := nio.VecOf(make([]byte, 256<<10)) // 5 segments per message (max payload 65485)
	for i := 0; i < 5; i++ {
		if err := ch.SendUntagged(to, QNSend, uint32(i), 0, vec); err != nil {
			t.Fatal(err)
		}
	}
	batches, segments, hits, misses := ch.SendStats()
	if segments != 25 {
		t.Fatalf("segments = %d, want 25", segments)
	}
	if batches != 5 {
		t.Fatalf("batches = %d, want 5 (5 segments fit one burst)", batches)
	}
	if got := ep.batches.Load(); got != batches {
		t.Fatalf("endpoint saw %d bursts, channel counted %d", got, batches)
	}
	if misses == 0 || hits+misses != segments {
		t.Fatalf("pool stats %d hits / %d misses don't cover %d segment gets", hits, misses, segments)
	}
	// Steady state: everything after the first message's misses is a hit.
	if hits < segments-8 {
		t.Fatalf("pool hit count %d too low for %d segments", hits, segments)
	}
}

// TestBatchedSendOverSimnet runs the batched path over the real simulator
// end to end: a multi-segment message must arrive intact through
// SendBatch → putBatch → Recv → reassembly-ready segments.
func TestBatchedSendOverSimnet(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a, err := net.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := NewDatagramChannel(a), NewDatagramChannel(b)
	defer ca.Close()
	defer cb.Close()

	msg := make([]byte, 200<<10)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	if err := ca.SendUntagged(cb.LocalAddr(), QNSend, 42, 0, nio.VecOf(msg)); err != nil {
		t.Fatal(err)
	}
	batches, segments, _, _ := ca.SendStats()
	if batches == 0 || segments < 4 {
		t.Fatalf("batched path not exercised: %d batches, %d segments", batches, segments)
	}
	got := make([]byte, len(msg))
	seen := 0
	for seen < len(msg) {
		seg, _, err := cb.Recv(2e9)
		if err != nil {
			t.Fatal(err)
		}
		if seg.MSN != 42 {
			t.Fatalf("MSN = %d, want 42", seg.MSN)
		}
		copy(got[seg.MO:], seg.Payload)
		seen += len(seg.Payload)
		cb.Recycle(seg.Raw)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("payload corrupt at byte %d", i)
		}
	}
}
