package ddp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/crcx"
	"repro/internal/memreg"
	"repro/internal/mpa"
	"repro/internal/nio"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func TestHeaderRoundTripUntagged(t *testing.T) {
	in := Segment{
		Last:   true,
		RDMAP:  0x83,
		QN:     QNSend,
		MSN:    42,
		MO:     1000,
		MsgLen: 5000,
	}
	wire := AppendHeader(nil, &in)
	if len(wire) != UntaggedHdrLen {
		t.Fatalf("header length %d", len(wire))
	}
	wire = append(wire, []byte("payload")...)
	out, err := Parse(wire, false)
	if err != nil {
		t.Fatal(err)
	}
	in.Payload = []byte("payload")
	if out.Tagged != in.Tagged || out.Last != in.Last || out.RDMAP != in.RDMAP ||
		out.QN != in.QN || out.MSN != in.MSN || out.MO != in.MO || out.MsgLen != in.MsgLen ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestHeaderRoundTripTagged(t *testing.T) {
	in := Segment{
		Tagged: true,
		RDMAP:  0x88,
		STag:   memreg.STag(0xDEADBEEF),
		TO:     1 << 40,
		MSN:    7,
		MsgLen: 123456,
	}
	wire := AppendHeader(nil, &in)
	if len(wire) != TaggedHdrLen {
		t.Fatalf("header length %d", len(wire))
	}
	out, err := Parse(wire, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Tagged || out.Last || out.STag != in.STag || out.TO != in.TO ||
		out.MSN != in.MSN || out.MsgLen != in.MsgLen || out.RDMAP != in.RDMAP {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{1}, false); !errors.Is(err, ErrShort) {
		t.Fatalf("short: %v", err)
	}
	if _, err := Parse([]byte{2, 0}, false); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
	// Truncated tagged header.
	if _, err := Parse([]byte{1 | 0x80, 0, 1, 2, 3}, false); !errors.Is(err, ErrShort) {
		t.Fatalf("truncated tagged: %v", err)
	}
	// Truncated untagged header.
	if _, err := Parse([]byte{1, 0, 1, 2, 3}, false); !errors.Is(err, ErrShort) {
		t.Fatalf("truncated untagged: %v", err)
	}
	// Datagram shorter than a CRC trailer.
	if _, err := Parse([]byte{1, 2}, true); !errors.Is(err, ErrShort) {
		t.Fatalf("short crc: %v", err)
	}
}

func TestParseCRC(t *testing.T) {
	s := Segment{QN: QNSend, MSN: 1, MsgLen: 3, Last: true}
	pkt := AppendHeader(nil, &s)
	pkt = append(pkt, []byte("abc")...)
	pkt = nio.PutU32(pkt, crcx.Checksum(pkt))
	if _, err := Parse(pkt, true); err != nil {
		t.Fatalf("valid CRC rejected: %v", err)
	}
	pkt[5] ^= 0x01
	if _, err := Parse(pkt, true); !errors.Is(err, ErrCRC) {
		t.Fatalf("corrupt accepted: %v", err)
	}
}

// Property: header encode/decode is the identity on all field values.
func TestHeaderRoundTripQuick(t *testing.T) {
	f := func(tagged, last bool, rdmap byte, a, b, c, d uint32, to uint64) bool {
		in := Segment{Tagged: tagged, Last: last, RDMAP: rdmap, MSN: c, MsgLen: d}
		if tagged {
			in.STag = memreg.STag(a)
			in.TO = to
		} else {
			in.QN = a
			in.MO = b
		}
		out, err := Parse(AppendHeader(nil, &in), false)
		if err != nil {
			return false
		}
		return out.Tagged == in.Tagged && out.Last == in.Last && out.RDMAP == in.RDMAP &&
			out.QN == in.QN && out.MO == in.MO && out.STag == in.STag && out.TO == in.TO &&
			out.MSN == in.MSN && out.MsgLen == in.MsgLen && len(out.Payload) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// --- Datagram channel ---

func dgramPair(t *testing.T, cfg simnet.Config) (*DatagramChannel, *DatagramChannel) {
	t.Helper()
	n := simnet.New(cfg)
	a, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := NewDatagramChannel(a), NewDatagramChannel(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestDatagramUntaggedSingleSegment(t *testing.T) {
	a, b := dgramPair(t, simnet.Config{})
	msg := []byte("single segment untagged")
	if err := a.SendUntagged(b.LocalAddr(), QNSend, 9, 0x03, nio.VecOf(msg)); err != nil {
		t.Fatal(err)
	}
	seg, from, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if from != a.LocalAddr() {
		t.Fatalf("from = %v", from)
	}
	if seg.Tagged || !seg.Last || seg.QN != QNSend || seg.MSN != 9 || seg.RDMAP != 0x03 {
		t.Fatalf("segment: %+v", seg)
	}
	if !bytes.Equal(seg.Payload, msg) {
		t.Fatalf("payload %q", seg.Payload)
	}
	if int(seg.MsgLen) != len(msg) {
		t.Fatalf("MsgLen = %d", seg.MsgLen)
	}
}

func TestDatagramMultiSegmentReassembly(t *testing.T) {
	a, b := dgramPair(t, simnet.Config{})
	// 150 KB message: 3 datagram segments at the 64 KB limit.
	msg := make([]byte, 150<<10)
	rand.New(rand.NewSource(2)).Read(msg)
	if err := a.SendUntagged(b.LocalAddr(), QNSend, 1, 0, nio.VecOf(msg)); err != nil {
		t.Fatal(err)
	}
	r := NewReassembler(0)
	var got []byte
	segs := 0
	for got == nil {
		seg, from, err := b.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		segs++
		if m, done := r.Add(from, &seg); done {
			got = m
		}
	}
	if segs != 3 {
		t.Fatalf("segments = %d, want 3", segs)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("reassembled message corrupt")
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d", r.Pending())
	}
}

func TestDatagramTaggedSegments(t *testing.T) {
	a, b := dgramPair(t, simnet.Config{})
	payload := make([]byte, 100<<10)
	rand.New(rand.NewSource(3)).Read(payload)
	if err := a.SendTagged(b.LocalAddr(), memreg.STag(0x1234), 5000, 77, 0x88, nio.VecOf(payload)); err != nil {
		t.Fatal(err)
	}
	var placed int
	sink := make([]byte, 5000+len(payload))
	for placed < len(payload) {
		seg, _, err := b.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !seg.Tagged || seg.STag != memreg.STag(0x1234) || seg.MSN != 77 {
			t.Fatalf("segment: %+v", seg)
		}
		copy(sink[seg.TO:], seg.Payload)
		placed += len(seg.Payload)
		if int(seg.MsgLen) != len(payload) {
			t.Fatalf("MsgLen = %d", seg.MsgLen)
		}
	}
	if !bytes.Equal(sink[5000:], payload) {
		t.Fatal("tagged placement mismatch")
	}
}

func TestDatagramRecvTimeout(t *testing.T) {
	_, b := dgramPair(t, simnet.Config{})
	if _, _, err := b.Recv(20 * time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestDatagramRecvDropsCorrupt(t *testing.T) {
	n := simnet.New(simnet.Config{})
	rawA, _ := n.OpenDatagram("a", 0)
	rawB, _ := n.OpenDatagram("b", 0)
	b := NewDatagramChannel(rawB)
	// Corrupt packet followed by a valid one: Recv must skip to the valid.
	s := Segment{QN: QNSend, MSN: 1, MsgLen: 2, Last: true}
	bad := AppendHeader(nil, &s)
	bad = append(bad, []byte("xy")...)
	bad = nio.PutU32(bad, crcx.Checksum(bad)^0xFFFF) // wrong CRC
	if err := rawA.SendTo(bad, rawB.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	good := AppendHeader(nil, &s)
	good = append(good, []byte("ok")...)
	good = nio.PutU32(good, crcx.Checksum(good))
	if err := rawA.SendTo(good, rawB.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	seg, _, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(seg.Payload) != "ok" {
		t.Fatalf("payload %q", seg.Payload)
	}
}

// --- Stream channel ---

func streamChanPair(t *testing.T) (*StreamChannel, *StreamChannel) {
	t.Helper()
	n := simnet.New(simnet.Config{})
	l, err := n.Listen("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		c   *mpa.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := l.Accept()
		if err != nil {
			ch <- res{nil, err}
			return
		}
		conn, _, err := mpa.Accept(s, mpa.Config{}, nil)
		ch <- res{conn, err}
	}()
	cs, err := n.Dial("cli", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cc, _, err := mpa.Connect(cs, mpa.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	a, b := NewStreamChannel(cc), NewStreamChannel(r.c)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestStreamUntaggedSegmentsInOrder(t *testing.T) {
	a, b := streamChanPair(t)
	msg := make([]byte, 10000) // several MULPDU-sized segments
	rand.New(rand.NewSource(4)).Read(msg)
	go func() {
		if err := a.SendUntagged(QNSend, 3, 0x03, nio.VecOf(msg)); err != nil {
			t.Error(err)
		}
	}()
	var got []byte
	expectMO := uint32(0)
	for {
		seg, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seg.MO != expectMO {
			t.Fatalf("MO = %d, want %d", seg.MO, expectMO)
		}
		if seg.MSN != 3 || seg.QN != QNSend {
			t.Fatalf("segment: %+v", seg)
		}
		got = append(got, seg.Payload...)
		expectMO += uint32(len(seg.Payload))
		if seg.Last {
			break
		}
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("stream reassembly mismatch")
	}
}

func TestStreamTaggedTOAdvances(t *testing.T) {
	a, b := streamChanPair(t)
	msg := make([]byte, 5000)
	rand.New(rand.NewSource(5)).Read(msg)
	const base = uint64(100)
	go func() {
		if err := a.SendTagged(memreg.STag(0xABC), base, 1, 0x80, nio.VecOf(msg)); err != nil {
			t.Error(err)
		}
	}()
	sink := make([]byte, base+uint64(len(msg)))
	for {
		seg, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !seg.Tagged || seg.STag != memreg.STag(0xABC) {
			t.Fatalf("segment: %+v", seg)
		}
		copy(sink[seg.TO:], seg.Payload)
		if seg.Last {
			break
		}
	}
	if !bytes.Equal(sink[base:], msg) {
		t.Fatal("tagged stream placement mismatch")
	}
}

func TestStreamZeroLengthMessage(t *testing.T) {
	a, b := streamChanPair(t)
	go func() {
		if err := a.SendUntagged(QNSend, 1, 0, nil); err != nil {
			t.Error(err)
		}
	}()
	seg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Last || len(seg.Payload) != 0 || seg.MsgLen != 0 {
		t.Fatalf("segment: %+v", seg)
	}
}

// --- Reassembler ---

func mkSeg(msn, mo, msgLen uint32, last bool, payload []byte) *Segment {
	return &Segment{QN: QNSend, MSN: msn, MO: mo, MsgLen: msgLen, Last: last, Payload: payload}
}

var src = transport.Addr{Node: "peer", Port: 1}

func TestReassemblerOutOfOrder(t *testing.T) {
	r := NewReassembler(0)
	if _, done := r.Add(src, mkSeg(1, 4, 8, true, []byte("５６７８")[:4])); done {
		t.Fatal("half message completed")
	}
	msg, done := r.Add(src, mkSeg(1, 0, 8, false, []byte("1234")))
	if !done {
		t.Fatal("message did not complete")
	}
	if string(msg[:4]) != "1234" {
		t.Fatalf("msg = %q", msg)
	}
}

func TestReassemblerDuplicateAbsorbed(t *testing.T) {
	r := NewReassembler(0)
	seg := mkSeg(1, 0, 8, false, []byte("1234"))
	r.Add(src, seg)
	r.Add(src, seg) // duplicate
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
	if _, done := r.Add(src, mkSeg(1, 4, 8, true, []byte("5678"))); !done {
		t.Fatal("completion lost after duplicate")
	}
}

func TestReassemblerIndependentPeers(t *testing.T) {
	r := NewReassembler(0)
	src2 := transport.Addr{Node: "other", Port: 2}
	r.Add(src, mkSeg(1, 0, 8, false, []byte("aaaa")))
	r.Add(src2, mkSeg(1, 0, 8, false, []byte("bbbb")))
	if r.Pending() != 2 {
		t.Fatalf("pending = %d", r.Pending())
	}
	msg, done := r.Add(src2, mkSeg(1, 4, 8, true, []byte("BBBB")))
	if !done || string(msg) != "bbbbBBBB" {
		t.Fatalf("msg = %q done = %v", msg, done)
	}
}

func TestReassemblerOverflowSegmentDropped(t *testing.T) {
	r := NewReassembler(0)
	if _, done := r.Add(src, mkSeg(1, 6, 8, false, []byte("xxxx"))); done {
		t.Fatal("overflowing segment completed")
	}
	if r.Pending() != 0 {
		t.Fatal("overflowing segment retained")
	}
}

func TestReassemblerSweep(t *testing.T) {
	r := NewReassembler(50 * time.Millisecond)
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }
	r.Add(src, mkSeg(1, 0, 8, false, []byte("aaaa")))
	if n := r.Sweep(); n != 0 {
		t.Fatalf("premature sweep dropped %d", n)
	}
	now = now.Add(time.Second)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("sweep dropped %d, want 1", n)
	}
	if r.Pending() != 0 {
		t.Fatal("partial retained after sweep")
	}
}

func TestReassemblerMsnReuse(t *testing.T) {
	r := NewReassembler(0)
	// Stale partial with MsgLen 8 for MSN 1, then MSN 1 reused for an
	// entirely different 6-byte message.
	r.Add(src, mkSeg(1, 0, 8, false, []byte("old!")))
	r.Add(src, mkSeg(1, 0, 6, false, []byte("new")))
	msg, done := r.Add(src, mkSeg(1, 3, 6, true, []byte("msg")))
	if !done || string(msg) != "newmsg" {
		t.Fatalf("msg = %q done = %v", msg, done)
	}
}

// Property: for any message and any segment arrival order, reassembly
// returns the original bytes.
func TestReassemblerAnyOrderQuick(t *testing.T) {
	f := func(seed int64, szRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(szRaw)%5000 + 1
		msg := make([]byte, size)
		rng.Read(msg)
		segSize := 1 + rng.Intn(size)
		var segs []*Segment
		for off := 0; off < size; off += segSize {
			n := min(segSize, size-off)
			segs = append(segs, mkSeg(5, uint32(off), uint32(size), off+n == size, msg[off:off+n]))
		}
		r := NewReassembler(0)
		var got []byte
		for _, i := range rng.Perm(len(segs)) {
			if m, done := r.Add(src, segs[i]); done {
				got = m
			}
		}
		return got != nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
