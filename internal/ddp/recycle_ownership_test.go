package ddp

import (
	"testing"
	"time"

	"repro/internal/crcx"
	"repro/internal/nio"
	"repro/internal/transport"
)

// scriptedEP is a stub LLP that hands RecvBatch one prepared burst and
// records every Recycle by buffer identity, so the test can prove each
// delivered buffer is returned exactly once no matter which path disposed of
// it (corrupt-drop inside parseBatch vs. consumer recycle after delivery).
type scriptedEP struct {
	burst    [][]byte
	served   bool
	recycled map[*byte]int
}

func (s *scriptedEP) SendTo(p []byte, to transport.Addr) error { return nil }
func (s *scriptedEP) Recv(timeout time.Duration) ([]byte, transport.Addr, error) {
	return nil, transport.Addr{}, transport.ErrClosed
}
func (s *scriptedEP) LocalAddr() transport.Addr { return transport.Addr{Node: "stub", Port: 1} }
func (s *scriptedEP) MaxDatagram() int          { return 65507 }
func (s *scriptedEP) PathMTU() int              { return 1500 }
func (s *scriptedEP) Close() error              { return nil }

func (s *scriptedEP) RecvBatch(pkts [][]byte, froms []transport.Addr, timeout time.Duration) (int, error) {
	if s.served {
		return 0, transport.ErrTimeout
	}
	s.served = true
	n := copy(pkts, s.burst)
	for i := 0; i < n; i++ {
		froms[i] = transport.Addr{Node: "peer", Port: 9}
	}
	return n, nil
}

func (s *scriptedEP) Recycle(p []byte) {
	if len(p) == 0 {
		return
	}
	s.recycled[&p[0]]++
}

// TestCorruptDropRecyclesExactlyOnce pins the receive burst's buffer
// ownership under corruption: parseBatch recycles a CRC-failed datagram
// itself, the consumer recycles delivered ones, and no buffer may travel
// back to the pool twice — a double-put would hand one backing array to two
// future receives (the bug class the chaos harness's corruption schedules
// exist to flush out).
func TestCorruptDropRecyclesExactlyOnce(t *testing.T) {
	good := func(msn uint32, body string) []byte {
		pkt := AppendHeader(nil, &Segment{QN: QNSend, MSN: msn, MsgLen: uint32(len(body)), Last: true})
		pkt = append(pkt, body...)
		return nio.PutU32(pkt, crcx.Checksum(pkt))
	}
	bad := func(msn uint32, body string) []byte {
		pkt := AppendHeader(nil, &Segment{QN: QNSend, MSN: msn, MsgLen: uint32(len(body)), Last: true})
		pkt = append(pkt, body...)
		return nio.PutU32(pkt, 0xdeadbeef)
	}
	ep := &scriptedEP{
		burst:    [][]byte{bad(1, "junk"), good(2, "keep"), bad(3, "junk2"), good(4, "keep2")},
		recycled: make(map[*byte]int),
	}
	want := make(map[*byte]bool, len(ep.burst))
	for _, p := range ep.burst {
		want[&p[0]] = true
	}

	ch := NewDatagramChannel(ep)
	defer ch.Close()
	segs := make([]Segment, 8)
	froms := make([]transport.Addr, 8)
	n, err := ch.RecvBatch(segs, froms, time.Second)
	if err != nil || n != 2 {
		t.Fatalf("RecvBatch = %d, %v; want 2 valid segments", n, err)
	}
	for i := 0; i < n; i++ {
		ch.Recycle(segs[i].Raw)
	}

	if len(ep.recycled) != len(ep.burst) {
		t.Fatalf("%d distinct buffers recycled, want all %d", len(ep.recycled), len(ep.burst))
	}
	for ptr, times := range ep.recycled {
		if !want[ptr] {
			t.Fatalf("foreign buffer %p recycled", ptr)
		}
		if times != 1 {
			t.Fatalf("buffer %p recycled %d times, want exactly once", ptr, times)
		}
	}
}
