package ddp

import (
	"time"

	"repro/internal/memreg"
	"repro/internal/transport"
)

// Reassembler rebuilds untagged messages from datagram DDP segments that
// may arrive out of order, duplicated, or not at all. It implements the
// paper's receive-side behaviour for UD send/recv: "multiple packets are
// segmented at the sender and recombined at the target machine", and a
// message for which segments never stop missing is abandoned by timeout —
// the mechanism behind "the failure to receive a given packet" completing
// as a poll timeout rather than wedging the queue.
//
// Keying is (source address, queue number, MSN): distinct senders and
// queues reassemble independently, since a UD endpoint serves many peers.
type Reassembler struct {
	pending map[reasmKey]*reasmState
	maxAge  time.Duration
	now     func() time.Time // injectable clock for tests
}

type reasmKey struct {
	from transport.Addr
	qn   uint32
	msn  uint32
}

type reasmState struct {
	buf     []byte
	arrived memreg.ValidityMap
	born    time.Time
}

// DefaultReassemblyTimeout bounds how long partial messages are retained.
const DefaultReassemblyTimeout = 2 * time.Second

// NewReassembler returns a reassembler that discards partial messages older
// than maxAge (0 selects DefaultReassemblyTimeout).
func NewReassembler(maxAge time.Duration) *Reassembler {
	if maxAge == 0 {
		maxAge = DefaultReassemblyTimeout
	}
	return &Reassembler{
		pending: make(map[reasmKey]*reasmState),
		maxAge:  maxAge,
		now:     time.Now,
	}
}

// Add incorporates one untagged segment. When the segment completes its
// message, the full payload is returned with done=true and the message's
// state is released. Duplicate segments are absorbed. Add is not safe for
// concurrent use; the owning QP serialises it.
func (r *Reassembler) Add(from transport.Addr, seg *Segment) (msg []byte, done bool) {
	if seg.Tagged {
		return nil, false
	}
	// Fast path: single-segment message (MO 0 and Last), no state needed.
	if seg.Last && seg.MO == 0 {
		if int(seg.MsgLen) != len(seg.Payload) {
			return nil, false // inconsistent header; drop
		}
		out := make([]byte, len(seg.Payload))
		copy(out, seg.Payload)
		return out, true
	}
	end := uint64(seg.MO) + uint64(len(seg.Payload))
	if end > uint64(seg.MsgLen) {
		return nil, false // segment overflows its declared message; drop
	}
	key := reasmKey{from: from, qn: seg.QN, msn: seg.MSN}
	st, ok := r.pending[key]
	if !ok {
		st = &reasmState{
			buf:  make([]byte, seg.MsgLen),
			born: r.now(),
		}
		r.pending[key] = st
	}
	if uint64(len(st.buf)) != uint64(seg.MsgLen) {
		// Conflicting MsgLen for the same MSN — stale state from a previous
		// life of this sequence number. Restart with the new message.
		st.buf = make([]byte, seg.MsgLen)
		st.arrived.Reset()
		st.born = r.now()
	}
	copy(st.buf[seg.MO:end], seg.Payload)
	st.arrived.Add(uint64(seg.MO), uint64(len(seg.Payload)))
	if st.arrived.Complete(uint64(seg.MsgLen)) {
		delete(r.pending, key)
		return st.buf, true
	}
	return nil, false
}

// Sweep discards partial messages older than the reassembler's maximum age
// and returns how many were dropped. Callers run it periodically (the UD
// QP's receive loop does, amortised).
func (r *Reassembler) Sweep() int {
	cutoff := r.now().Add(-r.maxAge)
	n := 0
	for k, st := range r.pending {
		if st.born.Before(cutoff) {
			delete(r.pending, k)
			n++
		}
	}
	return n
}

// Pending reports how many partial messages are being held.
func (r *Reassembler) Pending() int { return len(r.pending) }

// MemFootprint reports the bytes of buffer held by partial messages.
func (r *Reassembler) MemFootprint() int64 {
	var n int64
	for _, st := range r.pending {
		n += int64(cap(st.buf))
	}
	return n
}
