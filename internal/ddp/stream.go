package ddp

import (
	"fmt"
	"sync"

	"repro/internal/memreg"
	"repro/internal/mpa"
	"repro/internal/nio"
)

// StreamChannel binds DDP to a reliable stream through MPA framing: the
// standard iWARP RC datapath (Figure 1 of the paper). Each DDP segment is
// one MPA ULPDU; the MTU seen by segmentation is the MPA MULPDU, so large
// messages become many small FPDUs — exactly the per-segment overhead the
// paper's large-message bandwidth comparison exposes.
type StreamChannel struct {
	conn *mpa.Conn

	sendMu  sync.Mutex
	sendBuf []byte
}

// NewStreamChannel wraps an MPA connection.
func NewStreamChannel(conn *mpa.Conn) *StreamChannel {
	return &StreamChannel{conn: conn}
}

// MaxSegment returns the largest DDP payload one tagged segment can carry.
func (ch *StreamChannel) MaxSegment() int {
	return ch.conn.MaxULPDU() - TaggedHdrLen
}

// Close closes the underlying MPA connection.
func (ch *StreamChannel) Close() error { return ch.conn.Close() }

// Footprint reports the channel's buffer memory plus the underlying MPA
// connection's, and — when the stream exposes a MemFootprint method, as the
// simulated network's streams do — the stream's buffering too.
func (ch *StreamChannel) Footprint() int64 {
	ch.sendMu.Lock()
	n := int64(cap(ch.sendBuf))
	ch.sendMu.Unlock()
	n += ch.conn.BufferFootprint()
	if m, ok := ch.conn.Stream().(interface{ MemFootprint() int64 }); ok {
		n += m.MemFootprint()
	}
	return n
}

// SendUntagged segments one untagged message onto queue qn with message
// sequence number msn and writes every segment in order.
func (ch *StreamChannel) SendUntagged(qn, msn uint32, rdmapCtrl byte, payload nio.Vec) error {
	return ch.send(&Segment{QN: qn, MSN: msn, RDMAP: rdmapCtrl}, payload)
}

// SendTagged segments one tagged message placing payload at [to, to+len)
// within the remote region named stag.
func (ch *StreamChannel) SendTagged(stag memreg.STag, to uint64, msn uint32, rdmapCtrl byte, payload nio.Vec) error {
	return ch.send(&Segment{Tagged: true, STag: stag, TO: to, MSN: msn, RDMAP: rdmapCtrl}, payload)
}

func (ch *StreamChannel) send(proto *Segment, payload nio.Vec) error {
	total := payload.Len()
	if uint64(total) > uint64(^uint32(0)) {
		return fmt.Errorf("%w: %d bytes", ErrTooBig, total)
	}
	proto.MsgLen = uint32(total)
	maxSeg := ch.conn.MaxULPDU() - proto.HeaderLen()

	ch.sendMu.Lock()
	defer ch.sendMu.Unlock()
	off := 0
	for {
		n := min(maxSeg, total-off)
		proto.Last = off+n == total
		hdr := AppendHeader(ch.sendBuf[:0], proto)
		ch.sendBuf = hdr[:0]
		chunk := payload.Slice(off, n)
		if err := ch.conn.Send(append(nio.Vec{hdr}, chunk...)); err != nil {
			return err
		}
		off += n
		if proto.Tagged {
			proto.TO += uint64(n)
		} else {
			proto.MO += uint32(n)
		}
		if proto.Last {
			return nil
		}
	}
}

// Recv returns the next DDP segment from the stream. The segment's payload
// is valid until the next Recv call.
func (ch *StreamChannel) Recv() (Segment, error) {
	ulpdu, err := ch.conn.Recv()
	if err != nil {
		return Segment{}, err
	}
	return Parse(ulpdu, false)
}
