package ddp

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/nio"
	"repro/internal/transport"
)

// discardEP is a sink Datagram endpoint: SendTo accepts and drops every
// packet. It isolates the send path's own cost (segmentation, CRC, buffer
// management) from any real or simulated wire below it.
type discardEP struct {
	maxDgram int
	pkts     atomic.Int64
	batches  atomic.Int64
}

func (d *discardEP) SendTo(p []byte, to transport.Addr) error {
	d.pkts.Add(1)
	return nil
}

func (d *discardEP) Recv(timeout time.Duration) ([]byte, transport.Addr, error) {
	return nil, transport.Addr{}, transport.ErrTimeout
}

func (d *discardEP) LocalAddr() transport.Addr { return transport.Addr{Node: "bench", Port: 1} }
func (d *discardEP) MaxDatagram() int          { return d.maxDgram }
func (d *discardEP) PathMTU() int              { return transport.DefaultMTU }
func (d *discardEP) Close() error              { return nil }

// discardBatchEP additionally implements transport.BatchSender, accepting
// whole batches the way simnet and the UDP endpoint do.
type discardBatchEP struct{ discardEP }

func (d *discardBatchEP) SendBatch(pkts [][]byte, to transport.Addr) (int, error) {
	d.pkts.Add(int64(len(pkts)))
	d.batches.Add(1)
	return len(pkts), nil
}

// BenchmarkUDSendPath measures the segmented UD send path end to end —
// header encode, payload copy, CRC32C, and hand-off to the LLP — against a
// discard endpoint. Run with -benchmem: the acceptance target is ~0
// allocs/op (EXPERIMENTS.md records the trajectory).
func BenchmarkUDSendPath(b *testing.B) {
	sizes := []int{1 << 10, 64 << 10, 512 << 10}
	for _, batch := range []bool{false, true} {
		label := "sendto"
		if batch {
			label = "batch"
		}
		for _, size := range sizes {
			b.Run(fmt.Sprintf("%s/%d", label, size), func(b *testing.B) {
				var ep transport.Datagram
				if batch {
					ep = &discardBatchEP{discardEP{maxDgram: transport.MaxDatagramSize}}
				} else {
					ep = &discardEP{maxDgram: transport.MaxDatagramSize}
				}
				ch := NewDatagramChannel(ep)
				vec := nio.VecOf(make([]byte, size))
				to := transport.Addr{Node: "peer", Port: 2}
				b.SetBytes(int64(size))
				b.ResetTimer()
				for b.Loop() {
					if err := ch.SendUntagged(to, QNSend, 1, 0, vec); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkUDSendPathParallel measures concurrent posters sharing one
// channel — the contention case the pooled datapath exists for: without a
// shared send buffer, posters must not serialize on each other's wire I/O.
func BenchmarkUDSendPathParallel(b *testing.B) {
	const size = 64 << 10
	ep := &discardBatchEP{discardEP{maxDgram: transport.MaxDatagramSize}}
	ch := NewDatagramChannel(ep)
	to := transport.Addr{Node: "peer", Port: 2}
	b.SetBytes(size)
	b.RunParallel(func(pb *testing.PB) {
		vec := nio.VecOf(make([]byte, size))
		for pb.Next() {
			if err := ch.SendUntagged(to, QNSend, 1, 0, vec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
