package ddp

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/nio"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func recvPair(t *testing.T) (ca, cb *DatagramChannel) {
	t.Helper()
	net := simnet.New(simnet.Config{})
	a, err := net.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb = NewDatagramChannel(a), NewDatagramChannel(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

// TestRecvBatchBurstOverSimnet: a burst of sent messages comes back up in
// batches — fewer RecvBatch calls than segments — CRC-checked, with the
// receive counters live.
func TestRecvBatchBurstOverSimnet(t *testing.T) {
	ca, cb := recvPair(t)
	const count = 24
	for i := 0; i < count; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, 600)
		if err := ca.SendUntagged(cb.LocalAddr(), QNSend, uint32(i), 0, nio.VecOf(msg)); err != nil {
			t.Fatal(err)
		}
	}
	segs := make([]Segment, 16)
	froms := make([]transport.Addr, 16)
	got := 0
	calls := 0
	for got < count {
		n, err := cb.RecvBatch(segs, froms, 2*time.Second)
		if err != nil {
			t.Fatalf("after %d: %v", got, err)
		}
		calls++
		for i := 0; i < n; i++ {
			if froms[i] != ca.LocalAddr() {
				t.Fatalf("from = %v", froms[i])
			}
			want := bytes.Repeat([]byte{byte(segs[i].MSN)}, 600)
			if !bytes.Equal(segs[i].Payload, want) {
				t.Fatalf("MSN %d payload corrupt", segs[i].MSN)
			}
			cb.Recycle(segs[i].Raw)
		}
		got += n
	}
	if calls >= count {
		t.Fatalf("%d RecvBatch calls for %d segments — no batching happened", calls, count)
	}
	batches, segments, recycled, _, _ := cb.RecvStats()
	if batches != int64(calls) || segments != count || recycled != count {
		t.Fatalf("RecvStats = %d batches, %d segments, %d recycled; want %d/%d/%d",
			batches, segments, recycled, calls, count, count)
	}
}

// TestRecvBatchDropsCorrupt: a datagram with a flipped byte fails CRC and
// is silently dropped (and counted); valid traffic in the same burst still
// arrives.
func TestRecvBatchDropsCorrupt(t *testing.T) {
	ca, cb := recvPair(t)
	// One valid message.
	if err := ca.SendUntagged(cb.LocalAddr(), QNSend, 1, 0, nio.VecOf([]byte("good"))); err != nil {
		t.Fatal(err)
	}
	// One corrupt datagram injected below DDP.
	raw := AppendHeader(nil, &Segment{QN: QNSend, MSN: 2, MsgLen: 3, Last: true})
	raw = append(raw, 'b', 'a', 'd')
	raw = nio.PutU32(raw, 0xdeadbeef) // wrong CRC
	if err := ca.Endpoint().SendTo(raw, cb.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	segs := make([]Segment, 8)
	froms := make([]transport.Addr, 8)
	got := 0
	deadline := time.Now().Add(2 * time.Second)
	for got < 1 && time.Now().Before(deadline) {
		n, err := cb.RecvBatch(segs, froms, 200*time.Millisecond)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue
			}
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if string(segs[i].Payload) != "good" {
				t.Fatalf("corrupt datagram surfaced: %+v", segs[i])
			}
			cb.Recycle(segs[i].Raw)
			got++
		}
	}
	if got != 1 {
		t.Fatal("valid message lost")
	}
	if n := cb.crcFail.Load(); n != 1 {
		t.Fatalf("crcFail = %d, want 1", n)
	}
}

// singleRecvEP wraps a datagram endpoint hiding its BatchRecver, to pin
// RecvBatch's degradation path for LLPs without the seam (e.g. rudp).
type singleRecvEP struct {
	transport.Datagram
}

// TestRecvBatchFallbackSingleRecv: without BatchRecver underneath,
// RecvBatch degrades to one segment per call — callers need no fallback of
// their own.
func TestRecvBatchFallbackSingleRecv(t *testing.T) {
	net := simnet.New(simnet.Config{})
	a, err := net.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := NewDatagramChannel(a), NewDatagramChannel(&singleRecvEP{b})
	defer ca.Close()
	defer cb.Close()
	if cb.brecv != nil {
		t.Fatal("wrapper unexpectedly batch-capable")
	}
	for i := 0; i < 3; i++ {
		if err := ca.SendUntagged(cb.LocalAddr(), QNSend, uint32(i), 0, nio.VecOf([]byte("m"))); err != nil {
			t.Fatal(err)
		}
	}
	segs := make([]Segment, 8)
	froms := make([]transport.Addr, 8)
	for i := 0; i < 3; i++ {
		n, err := cb.RecvBatch(segs, froms, 2*time.Second)
		if err != nil || n != 1 {
			t.Fatalf("call %d: n=%d err=%v, want exactly 1", i, n, err)
		}
	}
}

// TestRecvBatchZeroCap: zero-length destination slices return immediately.
func TestRecvBatchZeroCap(t *testing.T) {
	_, cb := recvPair(t)
	if n, err := cb.RecvBatch(nil, nil, time.Millisecond); n != 0 || err != nil {
		t.Fatalf("n=%d err=%v", n, err)
	}
}
