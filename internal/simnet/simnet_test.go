package simnet

import (
	"bytes"
	"errors"
	"io"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

func TestDatagramRoundTrip(t *testing.T) {
	n := New(Config{})
	a, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.OpenDatagram("b", 7000)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello datagram world")
	if err := a.SendTo(msg, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	got, from, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("payload = %q", got)
	}
	if from != a.LocalAddr() {
		t.Fatalf("from = %v, want %v", from, a.LocalAddr())
	}
	if b.LocalAddr().Port != 7000 {
		t.Fatalf("bound port = %d", b.LocalAddr().Port)
	}
}

func TestDatagramPayloadIsolated(t *testing.T) {
	n := New(Config{})
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)
	msg := []byte("mutate me")
	if err := a.SendTo(msg, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X' // sender reuses its buffer immediately
	got, _, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'm' {
		t.Fatal("receiver saw sender's buffer mutation; payload must be copied")
	}
}

func TestDatagramRecvTimeout(t *testing.T) {
	n := New(Config{})
	a, _ := n.OpenDatagram("a", 0)
	start := time.Now()
	_, _, err := a.Recv(20 * time.Millisecond)
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("returned before the deadline")
	}
}

func TestDatagramNoRoute(t *testing.T) {
	n := New(Config{})
	a, _ := n.OpenDatagram("a", 0)
	err := a.SendTo([]byte("x"), transport.Addr{Node: "ghost", Port: 1})
	if !errors.Is(err, transport.ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestDatagramTooLarge(t *testing.T) {
	n := New(Config{})
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)
	err := a.SendTo(make([]byte, transport.MaxDatagramSize+1), b.LocalAddr())
	if !errors.Is(err, transport.ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestDatagramDoubleBind(t *testing.T) {
	n := New(Config{})
	if _, err := n.OpenDatagram("a", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := n.OpenDatagram("a", 100); err == nil {
		t.Fatal("double bind succeeded")
	}
}

func TestDatagramCloseUnblocksRecv(t *testing.T) {
	n := New(Config{})
	a, _ := n.OpenDatagram("a", 0)
	done := make(chan error, 1)
	go func() {
		_, _, err := a.Recv(0)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestDatagramDrainAfterClose(t *testing.T) {
	n := New(Config{})
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)
	if err := a.SendTo([]byte("queued"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.Close()
	got, _, err := b.Recv(time.Second)
	if err != nil || string(got) != "queued" {
		t.Fatalf("drain after close: %q %v", got, err)
	}
	if _, _, err := b.Recv(time.Second); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestFragmentsMath(t *testing.T) {
	n := New(Config{MTU: 1500})
	cases := []struct{ sz, want int }{
		{0, 1}, {1, 1}, {1472, 1}, {1473, 2}, {2944, 2}, {2945, 3}, {65507, 45},
	}
	for _, c := range cases {
		if got := n.fragments(c.sz); got != c.want {
			t.Errorf("fragments(%d) = %d, want %d", c.sz, got, c.want)
		}
	}
}

// A datagram spanning k fragments should survive with probability (1-p)^k;
// check the simulator's loss model statistically.
func TestLossModelStatistics(t *testing.T) {
	const p = 0.05
	n := New(Config{LossRate: p, Seed: 7})
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)

	const trials = 4000
	payload := make([]byte, 4000) // 3 fragments at MTU 1500
	wantSurvival := math.Pow(1-p, 3)
	delivered := 0
	for i := 0; i < trials; i++ {
		if err := a.SendTo(payload, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	for {
		_, _, err := b.Recv(20 * time.Millisecond)
		if err != nil {
			break
		}
		delivered++
	}
	got := float64(delivered) / trials
	if math.Abs(got-wantSurvival) > 0.03 {
		t.Fatalf("survival rate %.3f, want ≈ %.3f", got, wantSurvival)
	}
	c := n.Counters()
	if c.DatagramsSent != trials || c.DatagramsLost != trials-int64(delivered) {
		t.Fatalf("counters: %+v delivered=%d", c, delivered)
	}
	if c.FragmentsSent != trials*3 {
		t.Fatalf("FragmentsSent = %d", c.FragmentsSent)
	}
}

func TestSetLossRateRuntime(t *testing.T) {
	n := New(Config{})
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)
	n.SetLossRate(1.0)
	if err := a.SendTo([]byte("x"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Recv(20 * time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("expected total loss, got %v", err)
	}
	n.SetLossRate(0)
	if err := a.SendTo([]byte("y"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if got, _, err := b.Recv(time.Second); err != nil || string(got) != "y" {
		t.Fatalf("after reset: %q %v", got, err)
	}
}

func TestDuplication(t *testing.T) {
	n := New(Config{DupRate: 1.0})
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)
	if err := a.SendTo([]byte("twice"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, _, err := b.Recv(time.Second)
		if err != nil || string(got) != "twice" {
			t.Fatalf("copy %d: %q %v", i, got, err)
		}
	}
}

func TestReordering(t *testing.T) {
	n := New(Config{ReorderRate: 1.0})
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)
	// With reorder probability 1, the second datagram jumps the first.
	if err := a.SendTo([]byte("first"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := a.SendTo([]byte("second"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	got1, _, _ := b.Recv(time.Second)
	got2, _, _ := b.Recv(time.Second)
	if string(got1) != "second" || string(got2) != "first" {
		t.Fatalf("order = %q, %q", got1, got2)
	}
}

func TestLatencyDelay(t *testing.T) {
	n := New(Config{Latency: 30 * time.Millisecond})
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)
	start := time.Now()
	if err := a.SendTo([]byte("slow"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	_, _, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want ≥ 30ms", d)
	}
}

func TestDeterministicSeed(t *testing.T) {
	run := func() []bool {
		n := New(Config{LossRate: 0.5, Seed: 99})
		a, _ := n.OpenDatagram("a", 0)
		b, _ := n.OpenDatagram("b", 0)
		var out []bool
		for i := 0; i < 64; i++ {
			if err := a.SendTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
				t.Fatal(err)
			}
			_, _, err := b.Recv(5 * time.Millisecond)
			out = append(out, err == nil)
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("same seed produced different loss patterns")
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	n := New(Config{})
	l, err := n.Listen("srv", 80)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(s, buf); err != nil {
			t.Error(err)
			return
		}
		if _, err := s.Write(append([]byte("re:"), buf...)); err != nil {
			t.Error(err)
		}
		s.Close()
	}()
	c, err := n.Dial("cli", transport.Addr{Node: "srv", Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	if c.RemoteAddr() != (transport.Addr{Node: "srv", Port: 80}) {
		t.Fatalf("remote = %v", c.RemoteAddr())
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "re:hello" {
		t.Fatalf("got %q", buf)
	}
	// After peer close and drain, reads see EOF.
	if _, err := c.Read(buf); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	wg.Wait()
}

func TestStreamLargeTransfer(t *testing.T) {
	n := New(Config{})
	l, _ := n.Listen("srv", 0)
	const total = 4 << 20 // 16x the pipe buffer
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer s.Close()
		buf := make([]byte, 64<<10)
		var got int
		var sum byte
		for got < total {
			k, err := s.Read(buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			for _, x := range buf[:k] {
				sum ^= x
			}
			got += k
		}
		if _, err := s.Write([]byte{sum}); err != nil {
			t.Error(err)
		}
	}()
	c, err := n.Dial("cli", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 128<<10)
	var wantSum byte
	for i := range chunk {
		chunk[i] = byte(i * 31)
	}
	for sent := 0; sent < total; sent += len(chunk) {
		if _, err := c.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	for _, x := range chunk {
		wantSum ^= x
	}
	wantSum = 0
	for i := 0; i < total/len(chunk); i++ {
		for _, x := range chunk {
			wantSum ^= x
		}
	}
	got := make([]byte, 1)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != wantSum {
		t.Fatalf("checksum %x, want %x", got[0], wantSum)
	}
	wg.Wait()
}

func TestDialNoListener(t *testing.T) {
	n := New(Config{})
	if _, err := n.Dial("cli", transport.Addr{Node: "ghost", Port: 1}); !errors.Is(err, transport.ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestListenerClose(t *testing.T) {
	n := New(Config{})
	l, _ := n.Listen("srv", 0)
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	l.Close()
	if err := <-done; !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	// Port is released: listen again on same address.
	if _, err := n.Listen("srv", l.Addr().Port); err != nil {
		t.Fatalf("relisten: %v", err)
	}
}

func TestStreamWriteAfterCloseFails(t *testing.T) {
	n := New(Config{})
	l, _ := n.Listen("srv", 0)
	go func() {
		s, _ := l.Accept()
		if s != nil {
			s.Close()
		}
	}()
	c, err := n.Dial("cli", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for peer close to propagate, then writes eventually fail.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Write(make([]byte, 64<<10)); err != nil {
			if !errors.Is(err, transport.ErrClosed) {
				t.Fatalf("err = %v", err)
			}
			return
		}
	}
	t.Fatal("writes to a closed peer never failed")
}

func TestBackpressure(t *testing.T) {
	n := New(Config{QueueLen: 2})
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)
	// Fill the queue; the third send must block until we drain.
	for i := 0; i < 2; i++ {
		if err := a.SendTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- a.SendTo([]byte{9}, b.LocalAddr()) }()
	select {
	case err := <-blocked:
		t.Fatalf("third send did not block (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, _, err := b.Recv(time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("send remained blocked after drain")
	}
}

func TestLatencyDeliveryToClosedEndpointCountsLost(t *testing.T) {
	n := New(Config{Latency: 20 * time.Millisecond})
	a, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.SendTo([]byte("in flight"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	// The datagram is scheduled but not yet delivered; closing the
	// destination now strands it mid-flight.
	b.Close()
	deadline := time.Now().Add(2 * time.Second)
	for n.Counters().DatagramsLost == 0 {
		if time.Now().After(deadline) {
			t.Fatal("datagram stranded by endpoint close was never counted as lost")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
