package simnet

import (
	"testing"
	"time"
)

// TestDropCauseAccounting pins each drop path to its own counter: Bernoulli
// wire loss, latency-stranded deliveries, and multicast-leg drops must be
// distinguishable post-hoc, not folded into one "lost" number.
func TestDropCauseAccounting(t *testing.T) {
	t.Run("bernoulli", func(t *testing.T) {
		n := New(Config{LossRate: 1.0})
		a, _ := n.OpenDatagram("a", 0)
		b, _ := n.OpenDatagram("b", 0)
		defer a.Close()
		defer b.Close()
		if err := a.SendTo([]byte("doomed"), b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		c := n.Counters()
		if c.LostLoss != 1 || c.LostLatency != 0 || c.LostMcast != 0 {
			t.Fatalf("counters after wire loss: %+v", c)
		}
		if c.DatagramsLost != 1 {
			t.Fatalf("DatagramsLost = %d, want 1 (sum of causes)", c.DatagramsLost)
		}
	})

	t.Run("latency-stranded", func(t *testing.T) {
		n := New(Config{Latency: 20 * time.Millisecond})
		a, _ := n.OpenDatagram("a", 0)
		b, _ := n.OpenDatagram("b", 0)
		defer a.Close()
		if err := a.SendTo([]byte("in flight"), b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		b.Close() // strand the delayed delivery
		deadline := time.Now().Add(2 * time.Second)
		for n.Counters().LostLatency == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("stranded delivery never counted: %+v", n.Counters())
			}
			time.Sleep(5 * time.Millisecond)
		}
		c := n.Counters()
		if c.LostLoss != 0 || c.LostMcast != 0 {
			t.Fatalf("wrong cause charged: %+v", c)
		}
	})

	t.Run("mcast-leg", func(t *testing.T) {
		n := New(Config{LossRate: 1.0})
		group := GroupAddr(9)
		src, _ := n.OpenDatagram("src", 0)
		m, _ := n.OpenDatagram("m", 0)
		defer src.Close()
		defer m.Close()
		if err := n.Join(group, m); err != nil {
			t.Fatal(err)
		}
		if err := src.SendTo([]byte("group"), group); err != nil {
			t.Fatal(err)
		}
		c := n.Counters()
		if c.LostMcast != 1 || c.LostLoss != 0 || c.LostLatency != 0 {
			t.Fatalf("counters after mcast-leg loss: %+v", c)
		}
	})
}
