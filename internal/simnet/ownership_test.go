package simnet

import (
	"bytes"
	"testing"
	"time"
)

// TestDupLegBufferIndependence pins the pool-ownership contract of the
// duplication leg: the duplicate of a datagram must be carried in its own
// pooled buffer, so a receiver that consumes and recycles the first copy —
// whose storage is then immediately reissued to a new send — cannot see the
// second copy's bytes change underneath it. A shared buffer here is exactly
// the double-delivery corruption the chaos harness's dup schedules target.
func TestDupLegBufferIndependence(t *testing.T) {
	n := New(Config{DupRate: 1.0, Seed: 7})
	a, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	orig := bytes.Repeat([]byte{0xAB}, 512)
	if err := a.SendTo(orig, b.addr); err != nil {
		t.Fatal(err)
	}
	// The queue now holds the original and its duplicate. Consume and
	// recycle the first copy, then force its storage back into service with
	// a fresh send of different bytes.
	first, _, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, orig) {
		t.Fatalf("first copy corrupted: % x...", first[:8])
	}
	b.Recycle(first)
	junk := bytes.Repeat([]byte{0xEE}, 512)
	if err := a.SendTo(junk, b.addr); err != nil {
		t.Fatal(err)
	}
	// The duplicate of the original must still read back intact: it may not
	// alias the recycled (and now rewritten) first buffer.
	second, _, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second, orig) {
		t.Fatalf("duplicate shares storage with the recycled first copy: got % x..., want % x...",
			second[:8], orig[:8])
	}
	b.Recycle(second)
	// Drain the junk send and its duplicate so the endpoint quiesces clean.
	for i := 0; i < 2; i++ {
		p, _, err := b.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		b.Recycle(p)
	}
}

// TestPktBufBalanceAtQuiesce pins the pool get/put accounting itself: a
// drained, fully-recycled exchange must leave the packet pools balanced —
// the invariant the chaos harness checks after every schedule.
func TestPktBufBalanceAtQuiesce(t *testing.T) {
	gets0, puts0 := PktBufBalance()
	held0 := gets0 - puts0

	n := New(Config{DupRate: 0.5, Seed: 3})
	a, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	const msgs = 64
	for i := 0; i < msgs; i++ {
		if err := a.SendTo([]byte{byte(i)}, b.addr); err != nil {
			t.Fatal(err)
		}
	}
	delivered := int64(n.Counters().DatagramsSent + n.Counters().DatagramsDup)
	for i := int64(0); i < delivered; i++ {
		p, _, err := b.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		b.Recycle(p)
	}
	gets1, puts1 := PktBufBalance()
	if held := gets1 - puts1; held != held0 {
		t.Fatalf("pool balance drifted: %d buffers outstanding before, %d after a fully-recycled run",
			held0, held)
	}
}
