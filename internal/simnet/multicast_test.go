package simnet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/transport"
)

func TestMulticastFanOut(t *testing.T) {
	n := New(Config{})
	group := GroupAddr(1)
	sender, _ := n.OpenDatagram("src", 0)
	var members []*DatagramEndpoint
	for i := 0; i < 3; i++ {
		ep, err := n.OpenDatagram("m", 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Join(group, ep); err != nil {
			t.Fatal(err)
		}
		members = append(members, ep)
	}
	if n.GroupSize(group) != 3 {
		t.Fatalf("GroupSize = %d", n.GroupSize(group))
	}
	if err := sender.SendTo([]byte("to everyone"), group); err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		got, from, err := m.Recv(time.Second)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if string(got) != "to everyone" || from != sender.LocalAddr() {
			t.Fatalf("member %d: %q from %v", i, got, from)
		}
	}
}

func TestMulticastNoSelfLoop(t *testing.T) {
	n := New(Config{})
	group := GroupAddr(2)
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)
	n.Join(group, a)
	n.Join(group, b)
	if err := a.SendTo([]byte("x"), group); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Recv(50 * time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatal("sender received its own multicast")
	}
	if _, _, err := b.Recv(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastLeave(t *testing.T) {
	n := New(Config{})
	group := GroupAddr(3)
	src, _ := n.OpenDatagram("src", 0)
	a, _ := n.OpenDatagram("a", 0)
	n.Join(group, a)
	n.Leave(group, a)
	if n.GroupSize(group) != 0 {
		t.Fatalf("GroupSize = %d after leave", n.GroupSize(group))
	}
	if err := src.SendTo([]byte("x"), group); err != nil {
		t.Fatal(err) // empty group: silently no-one
	}
	if _, _, err := a.Recv(50 * time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatal("left member still receives")
	}
}

func TestMulticastIndependentLossLegs(t *testing.T) {
	n := New(Config{LossRate: 0.5, Seed: 4})
	group := GroupAddr(4)
	src, _ := n.OpenDatagram("src", 0)
	var members []*DatagramEndpoint
	for i := 0; i < 4; i++ {
		ep, _ := n.OpenDatagram("m", 0)
		n.Join(group, ep)
		members = append(members, ep)
	}
	const sends = 200
	for i := 0; i < sends; i++ {
		if err := src.SendTo([]byte{byte(i)}, group); err != nil {
			t.Fatal(err)
		}
	}
	// Each leg drops independently: every member should receive roughly
	// half, and the union of arrivals should differ between members.
	counts := make([]int, len(members))
	for i, m := range members {
		for {
			_, _, err := m.Recv(20 * time.Millisecond)
			if err != nil {
				break
			}
			counts[i]++
		}
	}
	for i, c := range counts {
		if c < sends/4 || c > sends*3/4 {
			t.Fatalf("member %d received %d of %d", i, c, sends)
		}
	}
	if counts[0] == counts[1] && counts[1] == counts[2] && counts[2] == counts[3] {
		t.Log("warning: identical counts across members (possible but unlikely)")
	}
}

func TestJoinRejectsUnicastAddr(t *testing.T) {
	n := New(Config{})
	a, _ := n.OpenDatagram("a", 0)
	if err := n.Join(a.LocalAddr(), a); err == nil {
		t.Fatal("joined a unicast address")
	}
	if IsGroupAddr(a.LocalAddr()) {
		t.Fatal("unicast addr classified as group")
	}
	if !IsGroupAddr(GroupAddr(9)) {
		t.Fatal("group addr not classified")
	}
}
