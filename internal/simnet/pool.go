package simnet

import "sync"

// Packet-buffer pools: a real stack services its datapath from fixed
// receive rings rather than allocating per packet, and at small message
// sizes allocator pressure would otherwise dominate the datagram path's
// cost. Two size classes cover the workloads: MTU-and-below (SIP, media
// frames) and full 64 KB datagram segments.
const (
	smallPktBuf = 2 << 10
	largePktBuf = 64<<10 + 512
)

var smallPool = sync.Pool{New: func() any { b := make([]byte, smallPktBuf); return &b }}
var largePool = sync.Pool{New: func() any { b := make([]byte, largePktBuf); return &b }}

// getPktBuf returns a buffer of length n backed by a pooled array when n
// fits a size class.
//
//diwarp:acquire
func getPktBuf(n int) []byte {
	switch {
	case n <= smallPktBuf:
		return (*smallPool.Get().(*[]byte))[:n]
	case n <= largePktBuf:
		return (*largePool.Get().(*[]byte))[:n]
	default:
		return make([]byte, n)
	}
}

// putPktBuf recycles a buffer obtained from getPktBuf. Foreign buffers
// (wrong capacity) are dropped silently, per transport.Recycler's contract.
func putPktBuf(p []byte) {
	switch cap(p) {
	case smallPktBuf:
		p = p[:smallPktBuf]
		smallPool.Put(&p)
	case largePktBuf:
		p = p[:largePktBuf]
		largePool.Put(&p)
	}
}
