package simnet

import (
	"sync"
	"sync/atomic"
)

// Packet-buffer pools: a real stack services its datapath from fixed
// receive rings rather than allocating per packet, and at small message
// sizes allocator pressure would otherwise dominate the datagram path's
// cost. Two size classes cover the workloads: MTU-and-below (SIP, media
// frames) and full 64 KB datagram segments.
const (
	smallPktBuf = 2 << 10
	largePktBuf = 64<<10 + 512
)

// Pool hit/miss accounting, mirroring nio.Pool.Stats: gets counts every
// getPktBuf, misses the ones that had to allocate (sync.Pool New or an
// oversized request). DatagramEndpoint re-exports these through
// transport.RecvPoolStats so the layer above can surface them as telemetry.
var pktBufGets, pktBufMisses atomic.Int64

var smallPool = sync.Pool{New: func() any {
	pktBufMisses.Add(1)
	b := make([]byte, smallPktBuf)
	return &b
}}
var largePool = sync.Pool{New: func() any {
	pktBufMisses.Add(1)
	b := make([]byte, largePktBuf)
	return &b
}}

// getPktBuf returns a buffer of length n backed by a pooled array when n
// fits a size class.
//
//diwarp:acquire
func getPktBuf(n int) []byte {
	pktBufGets.Add(1)
	switch {
	case n <= smallPktBuf:
		return (*smallPool.Get().(*[]byte))[:n]
	case n <= largePktBuf:
		return (*largePool.Get().(*[]byte))[:n]
	default:
		pktBufMisses.Add(1)
		return make([]byte, n)
	}
}

// putPktBuf recycles a buffer obtained from getPktBuf. Foreign buffers
// (wrong capacity) are dropped silently, per transport.Recycler's contract.
func putPktBuf(p []byte) {
	switch cap(p) {
	case smallPktBuf:
		p = p[:smallPktBuf]
		smallPool.Put(&p)
	case largePktBuf:
		p = p[:largePktBuf]
		largePool.Put(&p)
	}
}

// pktBufStats reports the packet pools' cumulative hit/miss counters.
func pktBufStats() (hits, misses int64) {
	m := pktBufMisses.Load()
	return pktBufGets.Load() - m, m
}
