package simnet

import (
	"sync"
	"sync/atomic"
)

// Packet-buffer pools: a real stack services its datapath from fixed
// receive rings rather than allocating per packet, and at small message
// sizes allocator pressure would otherwise dominate the datagram path's
// cost. Two size classes cover the workloads: MTU-and-below (SIP, media
// frames) and full 64 KB datagram segments.
const (
	smallPktBuf = 2 << 10
	largePktBuf = 64<<10 + 512
)

// Pool hit/miss accounting, mirroring nio.Pool.Stats: gets counts every
// getPktBuf, misses the ones that had to allocate (sync.Pool New or an
// oversized request). DatagramEndpoint re-exports these through
// transport.RecvPoolStats so the layer above can surface them as telemetry.
// puts counts every size-class buffer returned through putPktBuf, so the
// chaos harness can assert the gets == puts balance at quiesce.
var pktBufGets, pktBufMisses, pktBufPuts atomic.Int64

var smallPool = sync.Pool{New: func() any {
	pktBufMisses.Add(1)
	b := make([]byte, smallPktBuf)
	return &b
}}
var largePool = sync.Pool{New: func() any {
	pktBufMisses.Add(1)
	b := make([]byte, largePktBuf)
	return &b
}}

// getPktBuf returns a buffer of length n backed by a pooled array when n
// fits a size class.
//
//diwarp:acquire
func getPktBuf(n int) []byte {
	pktBufGets.Add(1)
	switch {
	case n <= smallPktBuf:
		return (*smallPool.Get().(*[]byte))[:n]
	case n <= largePktBuf:
		return (*largePool.Get().(*[]byte))[:n]
	default:
		pktBufMisses.Add(1)
		return make([]byte, n)
	}
}

// putPktBuf recycles a buffer obtained from getPktBuf. Foreign buffers
// (wrong capacity) are dropped silently, per transport.Recycler's contract.
func putPktBuf(p []byte) {
	switch cap(p) {
	case smallPktBuf:
		pktBufPuts.Add(1)
		p = p[:smallPktBuf]
		smallPool.Put(&p)
	case largePktBuf:
		pktBufPuts.Add(1)
		p = p[:largePktBuf]
		largePool.Put(&p)
	}
}

// pktBufStats reports the packet pools' cumulative hit/miss counters.
func pktBufStats() (hits, misses int64) {
	m := pktBufMisses.Load()
	return pktBufGets.Load() - m, m
}

// PktBufBalance reports the packet pools' cumulative get and put counters.
// Oversized (unpooled) gets are excluded from the get count so the two sides
// compare like-for-like: at quiesce, with every delivered datagram consumed
// and recycled, gets - puts is the number of pooled buffers still held —
// the chaos harness's leak invariant. The counters are process-global
// (shared by every simnet Network), so checkers compare deltas.
func PktBufBalance() (gets, puts int64) {
	// Oversized requests bump both gets and misses but never reach a pool;
	// they can never be Put back. They are indistinguishable here from
	// size-class allocation misses, which DO get recycled, so callers that
	// need an exact balance must avoid >64 KB datagrams (the chaos harness
	// does). All size-class traffic balances exactly.
	return pktBufGets.Load(), pktBufPuts.Load()
}
