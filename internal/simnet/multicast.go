package simnet

import (
	"fmt"
	"sync"

	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Multicast: the paper names "broadcast and multicast support" among the
// attractive features of datagram-iWARP ("a multicast capable iWARP
// solution would be useful in providing high bandwidth media while
// leveraging the other benefits of datagram-iWARP", §IV.A). The simulator
// models IP multicast: endpoints join a group address; a datagram sent to
// the group is delivered independently to every member, each copy subject
// to the loss model on its own leg, exactly like per-receiver multicast
// trees.
//
// The verbs layer needs no changes — a UD QP posts a send to the group
// address and every member QP sees an ordinary inbound message — which is
// precisely the scalability argument: one send, N deliveries, zero
// connections.

// McastNode is the node-name prefix identifying group addresses.
const McastNode = "mcast"

// GroupAddr builds the address of multicast group n.
func GroupAddr(n uint16) transport.Addr {
	return transport.Addr{Node: McastNode, Port: n}
}

// IsGroupAddr reports whether a is a multicast group address.
func IsGroupAddr(a transport.Addr) bool { return a.Node == McastNode }

type mcastState struct {
	mu     sync.Mutex
	groups map[transport.Addr]map[*DatagramEndpoint]struct{}
}

func (n *Network) mcast() *mcastState {
	n.mcastOnce.Do(func() {
		n.mcastGroups = &mcastState{groups: make(map[transport.Addr]map[*DatagramEndpoint]struct{})}
	})
	return n.mcastGroups
}

// Join subscribes ep to multicast group addr (created on first join).
func (n *Network) Join(group transport.Addr, ep *DatagramEndpoint) error {
	if !IsGroupAddr(group) {
		return fmt.Errorf("simnet: %s is not a multicast group address", group)
	}
	m := n.mcast()
	m.mu.Lock()
	defer m.mu.Unlock()
	set, ok := m.groups[group]
	if !ok {
		set = make(map[*DatagramEndpoint]struct{})
		m.groups[group] = set
	}
	set[ep] = struct{}{}
	return nil
}

// Leave unsubscribes ep from the group.
func (n *Network) Leave(group transport.Addr, ep *DatagramEndpoint) {
	m := n.mcast()
	m.mu.Lock()
	defer m.mu.Unlock()
	if set, ok := m.groups[group]; ok {
		delete(set, ep)
		if len(set) == 0 {
			delete(m.groups, group)
		}
	}
}

// GroupSize reports the group's current membership.
func (n *Network) GroupSize(group transport.Addr) int {
	m := n.mcast()
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.groups[group])
}

// members snapshots the group's endpoints.
func (n *Network) members(group transport.Addr) []*DatagramEndpoint {
	m := n.mcast()
	m.mu.Lock()
	defer m.mu.Unlock()
	set := m.groups[group]
	out := make([]*DatagramEndpoint, 0, len(set))
	for ep := range set {
		out = append(out, ep)
	}
	return out
}

// sendMulticast fans a datagram out to every group member; each leg rolls
// the loss model independently, and members never receive their own sends
// (IP_MULTICAST_LOOP off, the streaming-server configuration).
func (e *DatagramEndpoint) sendMulticast(p []byte, group transport.Addr) error {
	nw := e.net
	if len(p) > nw.cfg.MaxDatagram {
		return transport.ErrTooLarge
	}
	members := nw.members(group)
	k := nw.fragments(len(p))
	loss := nw.lossMicro.Load()
	for _, dst := range members {
		if dst == e {
			continue
		}
		nw.sent.Inc()
		nw.bytes.Add(int64(len(p)))
		nw.frags.Add(int64(k))
		dropped := false
		for i := 0; i < k; i++ {
			if nw.chance(loss) {
				nw.lostMcast.Inc()
				telemetry.DefaultTrace.Record(telemetry.EvDrop, telemetry.PeerToken(dst.addr), len(p), telemetry.DropMcast)
				dropped = true
				break
			}
		}
		if dropped {
			continue
		}
		buf := getPktBuf(len(p))
		copy(buf, p)
		reorder := nw.chance(nw.reorderMicro.Load())
		if reorder {
			nw.reorder.Inc()
		}
		// Multicast is unreliable per member: a closed member queue drops
		// the copy like loss on the wire. Count it and recycle the buffer.
		if err := dst.q.put(packet{payload: buf, from: e.addr}, reorder); err != nil {
			nw.lostMcast.Inc()
			telemetry.DefaultTrace.Record(telemetry.EvDrop, telemetry.PeerToken(dst.addr), len(p), telemetry.DropMcast)
			putPktBuf(buf)
		}
	}
	return nil
}
