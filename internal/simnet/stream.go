package simnet

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/transport"
)

// The simulated reliable stream models what a kernel TCP actually does per
// segment, so the RC iWARP path pays realistic protocol costs relative to
// the datagram path (whose UDP checksum the paper's stack disables as
// redundant with DDP's CRC32C — TCP's checksum cannot be disabled):
//
//   - writes are segmented to the MSS, and every segment's Internet
//     checksum (RFC 1071) is computed at the sender over a pseudo header
//     plus payload;
//   - the receiver verifies each segment's checksum, updates cumulative
//     sequence/ack state, and copies the payload out — exactly one extra
//     pass over every byte in each direction compared to a bare pipe;
//   - in-flight data is bounded by a window (Config.StreamBufSize),
//     blocking the sender like a peer's receive window.
//
// Segments are delivered reliably and in order: TCP's retransmission
// machinery is abstracted away (the paper's loss experiments are UD-only;
// on the RC side loss appears only as the throughput its reliability
// already paid for).

// DefaultStreamBufSize is each direction's in-flight byte budget, standing
// in for the TCP send/receive window on a LAN. Configurable per network via
// Config.StreamBufSize (the SO_SNDBUF/SO_RCVBUF knob): the SIP
// memory-scalability benchmark shrinks it to a realistic per-connection
// window so ten thousand connections fit in memory, just as a loaded server
// would tune its socket buffers.
const DefaultStreamBufSize = 256 << 10

// MSS is the simulated TCP maximum segment size (Ethernet MTU minus IP and
// TCP headers).
const MSS = 1448

// segHdrLen prefixes each simulated segment: 2-byte checksum, 6-byte
// sequence number (the rest of a real TCP header is modelled by the
// bookkeeping, not stored).
const segHdrLen = 8

// inetChecksum is the RFC 1071 Internet checksum over p — the per-segment
// work a non-offloaded TCP performs on every byte it moves.
func inetChecksum(p []byte) uint16 {
	var sum uint32
	for len(p) >= 2 {
		sum += uint32(p[0])<<8 | uint32(p[1])
		p = p[2:]
	}
	if len(p) == 1 {
		sum += uint32(p[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// streamHalf is one direction of a simulated TCP connection.
type streamHalf struct {
	q    *queue // segments in flight; capacity models the window
	acks *queue // reverse ACK traffic for this direction's sender

	wmu     sync.Mutex
	wseq    uint64 // next byte sequence to send
	lastAck uint64 // highest cumulative ack processed

	rmu     sync.Mutex
	rseq    uint64 // next byte sequence expected
	rem     []byte // unconsumed tail of the current segment
	raw     []byte // segment buffer awaiting recycle
	unacked int    // segments consumed since the last ack (delayed ack)
}

func newStreamHalf(window int) *streamHalf {
	segs := window / MSS
	if segs < 2 {
		segs = 2
	}
	return &streamHalf{q: newQueue(segs), acks: newQueue(64)}
}

// sendAck emits a cumulative ACK "packet" back toward this half's sender —
// an 8-byte checksummed segment, built and verified like real ack traffic.
// Caller holds rmu.
func (h *streamHalf) sendAck() {
	ack := getPktBuf(8)
	seq := h.rseq
	ack[2] = byte(seq >> 40)
	ack[3] = byte(seq >> 32)
	ack[4] = byte(seq >> 24)
	ack[5] = byte(seq >> 16)
	ack[6] = byte(seq >> 8)
	ack[7] = byte(seq)
	cs := inetChecksum(ack[2:])
	ack[0], ack[1] = byte(cs>>8), byte(cs)
	h.acks.putDrop(packet{payload: ack})
}

// drainAcks processes pending cumulative ACKs on the send side (window
// update, RTT bookkeeping in a real stack). Caller holds wmu.
func (h *streamHalf) drainAcks() {
	for {
		pkt, err := h.acks.tryGet()
		if err != nil {
			return
		}
		a := pkt.payload
		if len(a) == 8 {
			want := uint16(a[0])<<8 | uint16(a[1])
			if inetChecksum(a[2:]) == want {
				seq := uint64(a[2])<<40 | uint64(a[3])<<32 | uint64(a[4])<<24 |
					uint64(a[5])<<16 | uint64(a[6])<<8 | uint64(a[7])
				if seq > h.lastAck {
					h.lastAck = seq
				}
			}
		}
		putPktBuf(a)
	}
}

// Write segments p to the MSS, checksums each segment, and queues it,
// blocking on window backpressure.
func (h *streamHalf) Write(p []byte) (int, error) {
	h.wmu.Lock()
	defer h.wmu.Unlock()
	h.drainAcks()
	total := 0
	for len(p) > 0 {
		n := min(MSS, len(p))
		seg := getPktBuf(segHdrLen + n)
		seg[0], seg[1] = 0, 0
		seq := h.wseq
		seg[2] = byte(seq >> 40)
		seg[3] = byte(seq >> 32)
		seg[4] = byte(seq >> 24)
		seg[5] = byte(seq >> 16)
		seg[6] = byte(seq >> 8)
		seg[7] = byte(seq)
		copy(seg[segHdrLen:], p[:n])
		cs := inetChecksum(seg[2:])
		seg[0], seg[1] = byte(cs>>8), byte(cs)
		if err := h.q.put(packet{payload: seg}, false); err != nil {
			putPktBuf(seg)
			return total, transport.ErrClosed
		}
		h.wseq += uint64(n)
		p = p[n:]
		total += n
	}
	return total, nil
}

// Read verifies and consumes segments, filling p with as many contiguous
// bytes as available (at least one, blocking if necessary).
func (h *streamHalf) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	h.rmu.Lock()
	defer h.rmu.Unlock()
	total := 0
	for total < len(p) {
		if len(h.rem) > 0 {
			n := copy(p[total:], h.rem)
			h.rem = h.rem[n:]
			total += n
			if len(h.rem) == 0 && h.raw != nil {
				putPktBuf(h.raw)
				h.raw = nil
			}
			continue
		}
		// Block only for the first byte; afterwards return what we have.
		var pkt packet
		var err error
		if total == 0 {
			pkt, err = h.q.get(0)
		} else {
			pkt, err = h.q.tryGet()
		}
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, io.EOF
		}
		seg := pkt.payload
		if len(seg) < segHdrLen {
			putPktBuf(seg)
			continue
		}
		want := uint16(seg[0])<<8 | uint16(seg[1])
		if inetChecksum(seg[2:]) != want {
			// Cannot happen on the lossless simulated wire; guards against
			// memory bugs exactly like the real checksum guards the wire.
			putPktBuf(seg)
			return total, fmt.Errorf("simnet: TCP segment checksum mismatch")
		}
		seq := uint64(seg[2])<<40 | uint64(seg[3])<<32 | uint64(seg[4])<<24 |
			uint64(seg[5])<<16 | uint64(seg[6])<<8 | uint64(seg[7])
		if seq != h.rseq {
			putPktBuf(seg)
			return total, fmt.Errorf("simnet: TCP sequence gap: got %d want %d", seq, h.rseq)
		}
		payload := seg[segHdrLen:]
		h.rseq += uint64(len(payload)) // cumulative ACK state
		h.unacked++
		if h.unacked >= 2 { // delayed ack: one cumulative ACK per two segments
			h.unacked = 0
			h.sendAck()
		}
		n := copy(p[total:], payload)
		total += n
		if n < len(payload) {
			h.rem = payload[n:]
			h.raw = seg
		} else {
			putPktBuf(seg)
		}
	}
	return total, nil
}

func (h *streamHalf) close() {
	h.q.close()
	h.acks.close()
}

// window reports the half's in-flight byte budget for memory accounting.
func (h *streamHalf) window() int64 { return int64(h.q.cap) * MSS }

// stream is one end of a simulated TCP connection.
type stream struct {
	rd, wr        *streamHalf
	local, remote transport.Addr
	closeOnce     sync.Once
}

var _ transport.Stream = (*stream)(nil)

func (s *stream) Read(p []byte) (int, error)  { return s.rd.Read(p) }
func (s *stream) Write(p []byte) (int, error) { return s.wr.Write(p) }

func (s *stream) Close() error {
	s.closeOnce.Do(func() {
		s.rd.close()
		s.wr.close()
	})
	return nil
}

func (s *stream) LocalAddr() transport.Addr  { return s.local }
func (s *stream) RemoteAddr() transport.Addr { return s.remote }

// MemFootprint reports the bytes of buffering this end of the stream owns
// (its receive window), for socket memory accounting.
func (s *stream) MemFootprint() int64 { return s.rd.window() }

// listener accepts simulated TCP connections.
type listener struct {
	net     *Network
	addr    transport.Addr
	backlog chan *stream
	done    chan struct{}
	once    sync.Once
}

var _ transport.Listener = (*listener)(nil)

// Listen opens a stream listener on node (port 0 auto-allocates).
func (n *Network) Listen(node string, port uint16) (transport.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if port == 0 {
		port = n.allocPort(node)
	}
	addr := transport.Addr{Node: node, Port: port}
	if _, used := n.listeners[addr]; used {
		return nil, fmt.Errorf("simnet: address %s already listening", addr)
	}
	l := &listener{
		net:     n,
		addr:    addr,
		backlog: make(chan *stream, 64),
		done:    make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

func (l *listener) Accept() (transport.Stream, error) {
	select {
	case s := <-l.backlog:
		return s, nil
	case <-l.done:
		return nil, transport.ErrClosed
	}
}

func (l *listener) Addr() transport.Addr { return l.addr }

func (l *listener) Close() error {
	l.once.Do(func() {
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
		close(l.done)
	})
	return nil
}

// Dial connects from node to a listener at to, completing the simulated
// three-way handshake synchronously.
func (n *Network) Dial(node string, to transport.Addr) (transport.Stream, error) {
	n.mu.Lock()
	l, ok := n.listeners[to]
	var local transport.Addr
	if ok {
		local = transport.Addr{Node: node, Port: n.allocPort(node)}
	}
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", transport.ErrNoRoute, to)
	}
	window := n.cfg.StreamBufSize
	if window <= 0 {
		window = DefaultStreamBufSize
	}
	a2b := newStreamHalf(window)
	b2a := newStreamHalf(window)
	client := &stream{rd: b2a, wr: a2b, local: local, remote: to}
	server := &stream{rd: a2b, wr: b2a, local: to, remote: local}
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, transport.ErrClosed
	}
}
