package simnet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestRecvBatchBurst: queued datagrams drain in bursts — one call returns
// up to cap packets without a second wakeup, the next call takes the rest.
func TestRecvBatchBurst(t *testing.T) {
	n := New(Config{})
	a, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	const count = 10
	for i := 0; i < count; i++ {
		if err := a.SendTo([]byte(fmt.Sprintf("pkt-%d", i)), b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	var br transport.BatchRecver = b // the endpoint must satisfy the seam
	pkts := make([][]byte, 8)
	froms := make([]transport.Addr, 8)
	got, err := br.RecvBatch(pkts, froms, time.Second)
	if err != nil || got != 8 {
		t.Fatalf("first burst: n=%d err=%v, want 8", got, err)
	}
	for i := 0; i < got; i++ {
		if string(pkts[i]) != fmt.Sprintf("pkt-%d", i) {
			t.Fatalf("packet %d = %q — order or content wrong", i, pkts[i])
		}
		if froms[i] != a.LocalAddr() {
			t.Fatalf("from = %v", froms[i])
		}
		b.Recycle(pkts[i])
	}
	rest, err := br.RecvBatch(pkts, froms, time.Second)
	if err != nil || rest != count-8 {
		t.Fatalf("second burst: n=%d err=%v, want %d", rest, err, count-8)
	}
	for i := 0; i < rest; i++ {
		b.Recycle(pkts[i])
	}
}

// TestRecvBatchDoesNotWaitForFull: a partial queue returns immediately —
// the batch fills from what is there, it never stalls waiting for more.
func TestRecvBatchDoesNotWaitForFull(t *testing.T) {
	n := New(Config{})
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)
	for i := 0; i < 3; i++ {
		if err := a.SendTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	pkts := make([][]byte, 16)
	froms := make([]transport.Addr, 16)
	start := time.Now()
	got, err := b.RecvBatch(pkts, froms, 5*time.Second)
	if err != nil || got != 3 {
		t.Fatalf("n=%d err=%v, want 3", got, err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("partial burst took %v — waited for a full batch?", el)
	}
}

// TestRecvBatchTimeout: an empty queue blocks for the first datagram and
// honours the timeout.
func TestRecvBatchTimeout(t *testing.T) {
	n := New(Config{})
	b, _ := n.OpenDatagram("b", 0)
	pkts := make([][]byte, 4)
	froms := make([]transport.Addr, 4)
	start := time.Now()
	if _, err := b.RecvBatch(pkts, froms, 50*time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("timed out after only %v", el)
	}
}

// TestRecvBatchCloseUnblocks: closing the endpoint releases a blocked
// batch receive with ErrClosed.
func TestRecvBatchCloseUnblocks(t *testing.T) {
	n := New(Config{})
	b, _ := n.OpenDatagram("b", 0)
	errc := make(chan error, 1)
	go func() {
		pkts := make([][]byte, 4)
		froms := make([]transport.Addr, 4)
		_, err := b.RecvBatch(pkts, froms, 10*time.Second)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvBatch still blocked after Close")
	}
}

// TestRecvBatchInterleavesPeers: a burst carries datagrams from several
// sources, each with its correct source address.
func TestRecvBatchInterleavesPeers(t *testing.T) {
	n := New(Config{})
	b, _ := n.OpenDatagram("b", 0)
	var srcs []transport.Addr
	for i := 0; i < 4; i++ {
		ep, err := n.OpenDatagram(fmt.Sprintf("src%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, ep.LocalAddr())
		if err := ep.SendTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	pkts := make([][]byte, 8)
	froms := make([]transport.Addr, 8)
	got, err := b.RecvBatch(pkts, froms, time.Second)
	if err != nil || got != 4 {
		t.Fatalf("n=%d err=%v", got, err)
	}
	for i := 0; i < got; i++ {
		if froms[i] != srcs[pkts[i][0]] {
			t.Fatalf("packet from %v, payload says %v", froms[i], srcs[pkts[i][0]])
		}
	}
}

// TestRecvPoolStats: the endpoint reports its packet-buffer pool traffic,
// and recycling keeps the steady state on pool hits.
func TestRecvPoolStats(t *testing.T) {
	n := New(Config{})
	a, _ := n.OpenDatagram("a", 0)
	b, _ := n.OpenDatagram("b", 0)
	var ps transport.RecvPoolStats = b
	h0, m0 := ps.RecvPoolStats()
	const count = 32
	for i := 0; i < count; i++ {
		if err := a.SendTo([]byte("x"), b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		pkt, _, err := b.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		b.Recycle(pkt)
	}
	h1, m1 := ps.RecvPoolStats()
	if (h1-h0)+(m1-m0) < count {
		t.Fatalf("pool stats delta %d+%d don't cover %d packets", h1-h0, m1-m0, count)
	}
	if h1 == h0 {
		t.Fatal("no pool hits despite recycling every buffer")
	}
}
