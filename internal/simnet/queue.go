package simnet

import (
	"sync"
	"time"

	"repro/internal/transport"
)

// packet is one datagram in flight.
type packet struct {
	payload []byte
	from    transport.Addr
}

// queue is a bounded FIFO of packets supporting blocking put with
// backpressure, timed get, reorder-insertion, and close. It is the receive
// queue of a simulated socket.
type queue struct {
	mu     sync.Mutex
	q      []packet
	cap    int
	closed bool
	avail  chan struct{} // pulsed when data arrives
	space  chan struct{} // pulsed when space frees up
	done   chan struct{} // closed on close()
}

func newQueue(capacity int) *queue {
	return &queue{
		cap:   capacity,
		avail: make(chan struct{}, 1),
		space: make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
}

func pulse(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// put appends pkt, blocking while the queue is full. With reorder set and at
// least one packet queued, the packet is inserted one position early,
// modelling adjacent-packet reordering. Returns transport.ErrClosed if the
// queue closes.
func (q *queue) put(pkt packet, reorder bool) error {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return transport.ErrClosed
		}
		if len(q.q) < q.cap {
			if reorder && len(q.q) > 0 {
				last := len(q.q) - 1
				q.q = append(q.q, q.q[last])
				q.q[last] = pkt
			} else {
				q.q = append(q.q, pkt)
			}
			q.mu.Unlock()
			pulse(q.avail)
			return nil
		}
		q.mu.Unlock()
		select {
		case <-q.space:
		case <-q.done:
			return transport.ErrClosed
		}
	}
}

// get pops the head packet. A zero timeout blocks until data or close.
// The timeout timer is armed lazily: a queue with data ready (the common
// case under load) never touches the runtime timer heap.
func (q *queue) get(timeout time.Duration) (packet, error) {
	var timer *time.Timer
	var tch <-chan time.Time
	for {
		q.mu.Lock()
		if len(q.q) > 0 {
			pkt := q.q[0]
			q.q[0] = packet{}
			q.q = q.q[1:]
			if len(q.q) == 0 {
				// Reset backing storage so the slice does not grow without
				// bound as the window slides.
				q.q = nil
			}
			q.mu.Unlock()
			pulse(q.space)
			return pkt, nil
		}
		if q.closed {
			q.mu.Unlock()
			return packet{}, transport.ErrClosed
		}
		q.mu.Unlock()
		if timeout > 0 && timer == nil {
			timer = time.NewTimer(timeout)
			defer timer.Stop()
			tch = timer.C
		}
		select {
		case <-q.avail:
		case <-tch:
			return packet{}, transport.ErrTimeout
		case <-q.done:
		}
	}
}

// putBatch appends a burst of packets under one lock acquisition, blocking
// while the queue is full, and returns the number enqueued. This is the
// receive-side half of transport.BatchSender: a whole segmented message
// costs one (or a few, under backpressure) lock round-trips instead of one
// per packet. Packets not enqueued on close are recycled here.
func (q *queue) putBatch(pkts []packet) (int, error) {
	i := 0
	for i < len(pkts) {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			for _, pk := range pkts[i:] {
				putPktBuf(pk.payload)
			}
			return i, transport.ErrClosed
		}
		for i < len(pkts) && len(q.q) < q.cap {
			q.q = append(q.q, pkts[i])
			i++
		}
		q.mu.Unlock()
		pulse(q.avail)
		if i == len(pkts) {
			return i, nil
		}
		select {
		case <-q.space:
		case <-q.done:
		}
	}
	return i, nil
}

// getBatch pops up to max packets into dst under one lock acquisition — the
// receive-side mirror of putBatch. It blocks for the FIRST packet exactly
// like get (zero timeout blocks until data or close), then takes whatever
// else is already queued without waiting. Returns the number popped; n ≥ 1
// on nil error.
func (q *queue) getBatch(dst []packet, timeout time.Duration) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	var timer *time.Timer
	var tch <-chan time.Time
	for {
		q.mu.Lock()
		if k := len(q.q); k > 0 {
			n := min(k, len(dst))
			copy(dst, q.q[:n])
			for i := range q.q[:n] {
				q.q[i] = packet{}
			}
			q.q = q.q[n:]
			if len(q.q) == 0 {
				q.q = nil
			} else {
				// More data remains and other readers may be parked on the
				// cap-1 avail pulse this wakeup consumed; re-pulse so a
				// concurrent reader is not stranded (lost-wakeup cascade).
				pulse(q.avail)
			}
			q.mu.Unlock()
			pulse(q.space)
			return n, nil
		}
		if q.closed {
			q.mu.Unlock()
			return 0, transport.ErrClosed
		}
		q.mu.Unlock()
		if timeout > 0 && timer == nil {
			timer = time.NewTimer(timeout)
			defer timer.Stop()
			tch = timer.C
		}
		select {
		case <-q.avail:
		case <-tch:
			return 0, transport.ErrTimeout
		case <-q.done:
		}
	}
}

// putDrop appends pkt without blocking, dropping it when the queue is full
// (ack traffic: losing one is harmless, the next ack is cumulative).
func (q *queue) putDrop(pkt packet) {
	q.mu.Lock()
	if q.closed || len(q.q) >= q.cap {
		q.mu.Unlock()
		putPktBuf(pkt.payload)
		return
	}
	q.q = append(q.q, pkt)
	q.mu.Unlock()
	pulse(q.avail)
}

// tryGet pops the head packet without blocking; it fails on an empty or
// closed-and-drained queue.
func (q *queue) tryGet() (packet, error) {
	q.mu.Lock()
	if len(q.q) == 0 {
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return packet{}, transport.ErrClosed
		}
		return packet{}, transport.ErrTimeout
	}
	pkt := q.q[0]
	q.q[0] = packet{}
	q.q = q.q[1:]
	if len(q.q) == 0 {
		q.q = nil
	}
	q.mu.Unlock()
	pulse(q.space)
	return pkt, nil
}

// len reports the number of queued packets.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.q)
}

// close marks the queue closed; queued packets remain readable until
// drained, after which get returns transport.ErrClosed.
func (q *queue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.done)
}
