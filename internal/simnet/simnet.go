// Package simnet is an in-process network simulator providing the datagram
// and stream LLPs the iWARP stack runs over in tests and benchmarks.
//
// It stands in for the paper's experimental apparatus: two Opteron hosts on
// a 10-Gigabit Ethernet switch, with packet loss injected by a Linux traffic
// control FIFO queue "configured to drop packets at a defined rate"
// (§VI.A.2). The simulator reproduces the properties that shape the paper's
// results:
//
//   - a wire MTU (default 1500 B): datagrams larger than the MTU are
//     IP-fragmented, and loss of ANY fragment destroys the whole datagram —
//     the cliff in Figures 7 and 8;
//   - a 64 KB maximum datagram: messages beyond it need several datagrams,
//     which is where Write-Record's partial placement starts to win;
//   - independent Bernoulli loss per fragment at a configurable rate, plus
//     optional reordering and duplication (datagram mode only — streams are
//     reliable and ordered, like TCP);
//   - bounded receive queues with sender backpressure, like loopback socket
//     buffers.
//
// All randomness is drawn from a single seeded source, so every experiment
// is reproducible.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Config parameterises a simulated network. Zero values select defaults.
type Config struct {
	// MTU is the wire MTU in bytes (default transport.DefaultMTU).
	MTU int
	// MaxDatagram is the largest datagram payload (default 65507, UDP's).
	MaxDatagram int
	// LossRate is the per-fragment drop probability in [0, 1).
	LossRate float64
	// ReorderRate is the probability a datagram is delivered behind the
	// next one.
	ReorderRate float64
	// DupRate is the probability a datagram is delivered twice.
	DupRate float64
	// MarkRate is the probability a datagram is stamped with a congestion
	// mark by Marker — the simulated analogue of an ECN-capable switch
	// marking instead of dropping. No-op unless Marker is set.
	MarkRate float64
	// Marker rewrites a datagram in place to carry a congestion signal and
	// reports whether it applied (rudp.MarkCongestion marks DATA frames and
	// re-stamps their CRC; non-markable packets pass unchanged). It is
	// called on the simulator's own pooled copy, never the caller's buffer.
	Marker func(p []byte) bool
	// Latency is an optional one-way delivery delay.
	Latency time.Duration
	// QueueLen bounds each endpoint's receive queue in packets
	// (default 4096).
	QueueLen int
	// StreamBufSize sets each direction's stream buffering in bytes
	// (default DefaultStreamBufSize) — the simulated SO_SNDBUF/SO_RCVBUF.
	StreamBufSize int
	// Seed seeds the loss/reorder/duplication RNG (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MTU == 0 {
		c.MTU = transport.DefaultMTU
	}
	if c.MaxDatagram == 0 {
		c.MaxDatagram = transport.MaxDatagramSize
	}
	if c.QueueLen == 0 {
		c.QueueLen = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Counters exposes the simulator's traffic statistics. Losses are split by
// cause — Bernoulli wire loss, latency-stranded deliveries (the destination
// closed while the packet was in flight), and multicast-leg drops — with
// DatagramsLost their sum, so experiments can attribute loss instead of
// guessing.
type Counters struct {
	DatagramsSent    int64
	DatagramsLost    int64
	LostLoss         int64 // Bernoulli wire loss (unicast legs)
	LostLatency      int64 // latency-delayed packet found its destination closed
	LostMcast        int64 // multicast legs lost (wire loss or closed member)
	DatagramsDup     int64
	DatagramsReorder int64
	DatagramsMarked  int64 // congestion marks applied by Config.Marker
	FragmentsSent    int64
	BytesSent        int64
}

// Network is a simulated network segment. All endpoints opened on it can
// exchange traffic; the Config's impairments apply to datagram traffic.
type Network struct {
	cfg Config

	rngMu sync.Mutex
	rng   *rand.Rand

	lossMicro    atomic.Int64 // LossRate * 1e6, runtime-adjustable
	reorderMicro atomic.Int64
	dupMicro     atomic.Int64
	markMicro    atomic.Int64

	mu        sync.Mutex
	dgram     map[transport.Addr]*DatagramEndpoint
	listeners map[transport.Addr]*listener
	nextPort  map[string]uint16

	mcastOnce   sync.Once
	mcastGroups *mcastState

	// Traffic counters are telemetry-registry handles (DESIGN.md §4.6),
	// with loss accounted per cause.
	sent, dup, reorder, frags, bytes *telemetry.Counter
	lostLoss, lostLatency, lostMcast *telemetry.Counter
	marked                           *telemetry.Counter
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	n := &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		dgram:     make(map[transport.Addr]*DatagramEndpoint),
		listeners: make(map[transport.Addr]*listener),
		nextPort:  make(map[string]uint16),
	}
	n.lossMicro.Store(int64(cfg.LossRate * 1e6))
	n.reorderMicro.Store(int64(cfg.ReorderRate * 1e6))
	n.dupMicro.Store(int64(cfg.DupRate * 1e6))
	n.markMicro.Store(int64(cfg.MarkRate * 1e6))
	n.sent = telemetry.Default.Counter("diwarp_simnet_datagrams_sent_total")
	n.dup = telemetry.Default.Counter("diwarp_simnet_dup_total")
	n.reorder = telemetry.Default.Counter("diwarp_simnet_reorder_total")
	n.frags = telemetry.Default.Counter("diwarp_simnet_fragments_total")
	n.bytes = telemetry.Default.Counter("diwarp_simnet_bytes_sent_total")
	n.lostLoss = telemetry.Default.Counter("diwarp_simnet_drop_loss_total")
	n.lostLatency = telemetry.Default.Counter("diwarp_simnet_drop_latency_total")
	n.lostMcast = telemetry.Default.Counter("diwarp_simnet_drop_mcast_total")
	n.marked = telemetry.Default.Counter("diwarp_simnet_marked_total")
	return n
}

// SetLossRate changes the per-fragment loss probability at runtime; the
// benchmark harness sweeps it the way the paper swept tc/netem rates.
func (n *Network) SetLossRate(p float64) { n.lossMicro.Store(int64(p * 1e6)) }

// SetReorderRate changes the reorder probability at runtime.
func (n *Network) SetReorderRate(p float64) { n.reorderMicro.Store(int64(p * 1e6)) }

// SetDupRate changes the duplication probability at runtime.
func (n *Network) SetDupRate(p float64) { n.dupMicro.Store(int64(p * 1e6)) }

// SetMarkRate changes the congestion-mark probability at runtime; the
// goodput harness ramps it the way a switch's RED/ECN threshold engages as
// its queue fills.
func (n *Network) SetMarkRate(p float64) { n.markMicro.Store(int64(p * 1e6)) }

// maybeMark stamps the simulator-owned buffer with Config.Marker at the
// configured rate. Called only on pooled copies: the marker rewrites bytes
// (flag bit + CRC trailer), which must never touch a caller's buffer.
func (n *Network) maybeMark(buf []byte) {
	if n.cfg.Marker == nil || !n.chance(n.markMicro.Load()) {
		return
	}
	if n.cfg.Marker(buf) {
		n.marked.Inc()
	}
}

// Counters returns a snapshot of traffic statistics.
func (n *Network) Counters() Counters {
	loss, lat, mc := n.lostLoss.Load(), n.lostLatency.Load(), n.lostMcast.Load()
	return Counters{
		DatagramsSent:    n.sent.Load(),
		DatagramsLost:    loss + lat + mc,
		LostLoss:         loss,
		LostLatency:      lat,
		LostMcast:        mc,
		DatagramsDup:     n.dup.Load(),
		DatagramsReorder: n.reorder.Load(),
		DatagramsMarked:  n.marked.Load(),
		FragmentsSent:    n.frags.Load(),
		BytesSent:        n.bytes.Load(),
	}
}

// MTU returns the configured wire MTU.
func (n *Network) MTU() int { return n.cfg.MTU }

// chance draws a Bernoulli sample with probability micro/1e6.
func (n *Network) chance(micro int64) bool {
	if micro <= 0 {
		return false
	}
	n.rngMu.Lock()
	v := n.rng.Int63n(1e6)
	n.rngMu.Unlock()
	return v < micro
}

func (n *Network) allocPort(node string) uint16 {
	p, ok := n.nextPort[node]
	if !ok {
		p = 49152
	}
	for {
		p++
		if p == 0 {
			p = 49153
		}
		a := transport.Addr{Node: node, Port: p}
		if _, used := n.dgram[a]; used {
			continue
		}
		if _, used := n.listeners[a]; used {
			continue
		}
		n.nextPort[node] = p
		return p
	}
}

// fragPayload is the usable payload per wire fragment: MTU minus the 20-byte
// IP header and 8-byte UDP header.
func (n *Network) fragPayload() int { return n.cfg.MTU - 28 }

// fragments returns how many wire fragments a datagram of size sz needs.
func (n *Network) fragments(sz int) int {
	fp := n.fragPayload()
	if sz <= fp {
		return 1
	}
	return (sz + fp - 1) / fp
}

// OpenDatagram binds a datagram endpoint on node (port 0 auto-allocates).
func (n *Network) OpenDatagram(node string, port uint16) (*DatagramEndpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if port == 0 {
		port = n.allocPort(node)
	}
	addr := transport.Addr{Node: node, Port: port}
	if _, used := n.dgram[addr]; used {
		return nil, fmt.Errorf("simnet: address %s already bound", addr)
	}
	ep := &DatagramEndpoint{
		net:  n,
		addr: addr,
		q:    newQueue(n.cfg.QueueLen),
	}
	n.dgram[addr] = ep
	return ep, nil
}

func (n *Network) lookupDatagram(addr transport.Addr) (*DatagramEndpoint, bool) {
	n.mu.Lock()
	ep, ok := n.dgram[addr]
	n.mu.Unlock()
	return ep, ok
}

func (n *Network) dropDatagram(addr transport.Addr) {
	n.mu.Lock()
	delete(n.dgram, addr)
	n.mu.Unlock()
}

// DatagramEndpoint is a simulated UDP socket.
type DatagramEndpoint struct {
	net  *Network
	addr transport.Addr
	q    *queue
}

var (
	_ transport.Datagram      = (*DatagramEndpoint)(nil)
	_ transport.BatchSender   = (*DatagramEndpoint)(nil)
	_ transport.BatchRecver   = (*DatagramEndpoint)(nil)
	_ transport.Recycler      = (*DatagramEndpoint)(nil)
	_ transport.RecvPoolStats = (*DatagramEndpoint)(nil)
)

// SendTo implements transport.Datagram. The payload is copied, fragmented
// against the MTU, subjected to the loss/duplication/reordering models, and
// enqueued at the destination. Blocks only when the destination queue is
// full (socket-buffer backpressure).
func (e *DatagramEndpoint) SendTo(p []byte, to transport.Addr) error {
	nw := e.net
	if IsGroupAddr(to) {
		return e.sendMulticast(p, to)
	}
	if len(p) > nw.cfg.MaxDatagram {
		return transport.ErrTooLarge
	}
	dst, ok := nw.lookupDatagram(to)
	if !ok {
		return fmt.Errorf("%w: %s", transport.ErrNoRoute, to)
	}
	nw.sent.Inc()
	nw.bytes.Add(int64(len(p)))
	k := nw.fragments(len(p))
	nw.frags.Add(int64(k))
	// Loss is per wire fragment; losing any fragment kills the datagram
	// because IP reassembly cannot complete.
	loss := nw.lossMicro.Load()
	for i := 0; i < k; i++ {
		if nw.chance(loss) {
			nw.lostLoss.Inc()
			telemetry.DefaultTrace.Record(telemetry.EvDrop, telemetry.PeerToken(to), len(p), telemetry.DropLoss)
			return nil // silently dropped, like a real lossy network
		}
	}
	deliver := func(pk packet) error {
		reorder := nw.chance(nw.reorderMicro.Load())
		if reorder {
			nw.reorder.Inc()
		}
		if err := dst.q.put(pk, reorder); err != nil {
			return fmt.Errorf("%w: %s", transport.ErrNoRoute, to)
		}
		return nil
	}
	send := func(pk packet) error {
		if nw.cfg.Latency > 0 {
			time.AfterFunc(nw.cfg.Latency, func() {
				// The sender returned long ago; a delivery failure here
				// (destination queue closed mid-flight) is a lost packet.
				// Count it and recycle the buffer nobody will consume.
				if err := deliver(pk); err != nil {
					nw.lostLatency.Inc()
					telemetry.DefaultTrace.Record(telemetry.EvDrop, telemetry.PeerToken(to), len(pk.payload), telemetry.DropLatency)
					putPktBuf(pk.payload)
				}
			})
			return nil
		}
		return deliver(pk)
	}
	buf := getPktBuf(len(p))
	copy(buf, p)
	nw.maybeMark(buf)
	if err := send(packet{payload: buf, from: e.addr}); err != nil {
		return err
	}
	if nw.chance(nw.dupMicro.Load()) {
		nw.dup.Inc()
		// The duplicate needs its own buffer: the receiver may recycle the
		// first copy's storage before consuming the second.
		dupBuf := getPktBuf(len(p))
		copy(dupBuf, p)
		// Its own mark draw too: each wire traversal meets the queue anew.
		nw.maybeMark(dupBuf)
		return send(packet{payload: dupBuf, from: e.addr})
	}
	return nil
}

// SendBatch implements transport.BatchSender: the whole burst is subjected
// to the per-datagram impairment models, copied into pooled packet buffers,
// and enqueued at the destination under a single queue lock — the simulated
// analogue of a sendmmsg burst. Multicast destinations and latency-shaped
// networks fall back to per-packet SendTo (both deliver asynchronously, so
// there is no shared lock to amortize).
func (e *DatagramEndpoint) SendBatch(pkts [][]byte, to transport.Addr) (int, error) {
	nw := e.net
	if IsGroupAddr(to) || nw.cfg.Latency > 0 {
		for i, p := range pkts {
			if err := e.SendTo(p, to); err != nil {
				return i, err
			}
		}
		return len(pkts), nil
	}
	for _, p := range pkts {
		if len(p) > nw.cfg.MaxDatagram {
			return 0, transport.ErrTooLarge
		}
	}
	dst, ok := nw.lookupDatagram(to)
	if !ok {
		return 0, fmt.Errorf("%w: %s", transport.ErrNoRoute, to)
	}
	loss := nw.lossMicro.Load()
	batch := make([]packet, 0, len(pkts))
	orig := make([]int, 0, len(pkts)) // source datagram index per batch slot
	for i, p := range pkts {
		nw.sent.Inc()
		nw.bytes.Add(int64(len(p)))
		k := nw.fragments(len(p))
		nw.frags.Add(int64(k))
		dropped := false
		for f := 0; f < k; f++ {
			if nw.chance(loss) {
				nw.lostLoss.Inc()
				telemetry.DefaultTrace.Record(telemetry.EvDrop, telemetry.PeerToken(to), len(p), telemetry.DropLoss)
				dropped = true
				break
			}
		}
		if dropped {
			continue // handed to the network and lost there: still "sent"
		}
		buf := getPktBuf(len(p))
		copy(buf, p)
		nw.maybeMark(buf)
		pk := packet{payload: buf, from: e.addr}
		if nw.chance(nw.reorderMicro.Load()) && len(batch) > 0 {
			nw.reorder.Inc()
			last := len(batch) - 1
			batch = append(batch, batch[last])
			orig = append(orig, orig[last])
			batch[last] = pk
			orig[last] = i
		} else {
			batch = append(batch, pk)
			orig = append(orig, i)
		}
		if nw.chance(nw.dupMicro.Load()) {
			nw.dup.Inc()
			dupBuf := getPktBuf(len(p))
			copy(dupBuf, p)
			nw.maybeMark(dupBuf)
			batch = append(batch, packet{payload: dupBuf, from: e.addr})
			orig = append(orig, i)
		}
	}
	enq, err := dst.q.putBatch(batch)
	if err != nil {
		// The queue closed part-way through: the unenqueued tail's pooled
		// buffers have no consumer left, so recycle them here.
		for _, pk := range batch[enq:] {
			putPktBuf(pk.payload)
		}
		sent := 0
		if enq > 0 {
			sent = orig[enq-1] + 1
		}
		return sent, fmt.Errorf("%w: %s", transport.ErrNoRoute, to)
	}
	return len(pkts), nil
}

// Recv implements transport.Datagram.
func (e *DatagramEndpoint) Recv(timeout time.Duration) ([]byte, transport.Addr, error) {
	pkt, err := e.q.get(timeout)
	if err != nil {
		return nil, transport.Addr{}, err
	}
	return pkt.payload, pkt.from, nil
}

// maxRecvBurst bounds one RecvBatch pop; BatchRecver's contract is "up to
// min(len(pkts), len(froms))", so capping the burst only splits oversized
// requests across calls.
const maxRecvBurst = 64

// pktScratchPool recycles the []packet staging slices RecvBatch pops into,
// keeping the batch receive path allocation-free.
var pktScratchPool = sync.Pool{New: func() any {
	s := make([]packet, maxRecvBurst)
	return &s
}}

// RecvBatch implements transport.BatchRecver: one queue lock round-trip pops
// the whole burst — the simulated analogue of recvmmsg, and the receive-side
// mirror of SendBatch's single-lock putBatch.
func (e *DatagramEndpoint) RecvBatch(pkts [][]byte, froms []transport.Addr, timeout time.Duration) (int, error) {
	max := min(len(pkts), len(froms), maxRecvBurst)
	if max == 0 {
		return 0, nil
	}
	sp := pktScratchPool.Get().(*[]packet)
	scratch := (*sp)[:max]
	n, err := e.q.getBatch(scratch, timeout)
	for i := 0; i < n; i++ {
		pkts[i], froms[i] = scratch[i].payload, scratch[i].from
		scratch[i] = packet{} // drop the payload reference: caller owns it now
	}
	pktScratchPool.Put(sp)
	return n, err
}

// RecvPoolStats implements transport.RecvPoolStats, reporting the simulator's
// shared packet-pool hit/miss counters.
func (e *DatagramEndpoint) RecvPoolStats() (hits, misses int64) { return pktBufStats() }

// LocalAddr implements transport.Datagram.
func (e *DatagramEndpoint) LocalAddr() transport.Addr { return e.addr }

// MaxDatagram implements transport.Datagram.
func (e *DatagramEndpoint) MaxDatagram() int { return e.net.cfg.MaxDatagram }

// PathMTU implements transport.Datagram.
func (e *DatagramEndpoint) PathMTU() int { return e.net.cfg.MTU }

// Recycle implements transport.Recycler: consumers hand fully-processed
// receive buffers back to the simulator's packet pools.
func (e *DatagramEndpoint) Recycle(p []byte) { putPktBuf(p) }

// Close implements transport.Datagram.
func (e *DatagramEndpoint) Close() error {
	e.net.dropDatagram(e.addr)
	e.q.close()
	return nil
}
