// Package media implements the streaming workload of the paper's §VI.B.1
// (the VLC experiment): a deterministic synthetic media clip, a streaming
// server speaking the two protocols the paper compares — UDP transport
// streaming (VLC's UDP mode) and HTTP-style streaming over a reliable
// connection (VLC's HTTP mode) — and a client that measures initial
// buffering time, the metric of Figure 9.
//
// The UDP mode can run its data path over plain send/recv or over RDMA
// Write-Record through the socket interface, reproducing the paper's
// observation that the two are nearly identical through a buffered-copy
// socket layer.
package media

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/sockif"
	"repro/internal/transport"
)

// TSPacket is the MPEG transport-stream packet size; media payloads are
// multiples of it. DefaultFrameSize is seven TS packets — the datagram
// payload VLC uses for UDP streaming, and the "1KB to 1.5KB" message size
// the paper calls "of great importance ... in the delivery of media".
const (
	TSPacket         = 188
	DefaultFrameSize = 7 * TSPacket // 1316
)

// Streaming errors.
var (
	ErrBadRequest = errors.New("media: malformed streaming request")
	ErrShortClip  = errors.New("media: stream ended before the buffer filled")
)

// Clip is a synthetic media asset: Size bytes of deterministic content cut
// into FrameSize datagram payloads.
type Clip struct {
	Size      int64
	FrameSize int
}

// NewClip returns a clip of the given size with the default frame size.
func NewClip(size int64) Clip { return Clip{Size: size, FrameSize: DefaultFrameSize} }

// Frames returns how many frames the clip streams.
func (c Clip) Frames() int {
	fs := int64(c.frameSize())
	return int((c.Size + fs - 1) / fs)
}

func (c Clip) frameSize() int {
	if c.FrameSize <= 0 {
		return DefaultFrameSize
	}
	return c.FrameSize
}

// Frame fills dst with frame i's bytes and returns its length (the last
// frame may be short). Content is deterministic so receivers can verify.
func (c Clip) Frame(i int, dst []byte) int {
	fs := c.frameSize()
	off := int64(i) * int64(fs)
	if off >= c.Size {
		return 0
	}
	n := fs
	if rem := c.Size - off; int64(n) > rem {
		n = int(rem)
	}
	for j := 0; j < n; j++ {
		pos := off + int64(j)
		dst[j] = byte(pos*2654435761 + pos>>8)
	}
	return n
}

// VerifyFrame reports whether a received frame matches the clip content at
// frame index i.
func (c Clip) VerifyFrame(i int, data []byte) bool {
	buf := make([]byte, c.frameSize())
	n := c.Frame(i, buf)
	return n == len(data) && bytes.Equal(buf[:n], data)
}

// --- UDP-mode streaming (VLC UDP) ---

// playRequest is the client's start message: "PLAY <prebuffer> <wr>".
func playRequest(wr bool) []byte {
	if wr {
		return []byte("PLAY WR")
	}
	return []byte("PLAY")
}

// ServeUDP waits for one PLAY request on the socket and streams the whole
// clip to the requester as fast as the transport accepts it. When the
// request asks for Write-Record mode, the server switches its data path to
// RDMA Write-Record into the client's advertised ring before streaming.
func ServeUDP(sock *sockif.Socket, clip Clip, timeout time.Duration) error {
	buf := make([]byte, 256)
	n, from, err := sock.RecvFrom(buf, timeout)
	if err != nil {
		return err
	}
	req := string(buf[:n])
	if !strings.HasPrefix(req, "PLAY") {
		return fmt.Errorf("%w: %q", ErrBadRequest, req)
	}
	if err := sock.Connect(from); err != nil {
		return err
	}
	if strings.HasSuffix(req, "WR") {
		if err := sock.EnableWriteRecord(timeout); err != nil {
			return fmt.Errorf("media: write-record setup: %w", err)
		}
	}
	frame := make([]byte, clip.frameSize())
	for i := 0; i < clip.Frames(); i++ {
		k := clip.Frame(i, frame)
		if err := sock.Send(frame[:k]); err != nil {
			return err
		}
		// Yield after each frame: datagrams have no flow control, and
		// without the wire serializing sends (server and client share one
		// CPU here, unlike the paper's two hosts) the send loop would
		// starve the receiving client.
		runtime.Gosched()
	}
	return nil
}

// PreBufferUDP requests the stream and receives until prebuffer bytes have
// arrived, returning the initial-buffering time (the Figure 9 metric) and
// the byte count actually received. With writeRecord set, the client asks
// the server to stream via RDMA Write-Record; the client's socket pump
// answers the ring advertisement automatically.
func PreBufferUDP(sock *sockif.Socket, server transport.Addr, prebuffer int64, writeRecord bool, timeout time.Duration) (time.Duration, int64, error) {
	if err := sock.SendTo(playRequest(writeRecord), server); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	buf := make([]byte, 64<<10)
	var got int64
	deadline := start.Add(timeout)
	for got < prebuffer {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return 0, got, transport.ErrTimeout
		}
		n, _, err := sock.RecvFrom(buf, remaining)
		if err != nil {
			return 0, got, err
		}
		got += int64(n)
	}
	return time.Since(start), got, nil
}

// --- HTTP-mode streaming (VLC HTTP over RC) ---

// ServeHTTP accepts one connection and serves the clip with HTTP-style
// framing: request line + headers in, status line + headers + body out.
// The extra protocol overhead relative to UDP mode is intentional — the
// paper notes "there is more inherent overhead involved in the HTTP based
// method" and attributes part of the RC gap to it.
func ServeHTTP(l *sockif.StreamListener, clip Clip) error {
	conn, err := l.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	// Read the request up to the blank line.
	var req []byte
	buf := make([]byte, 4096)
	for !bytes.Contains(req, []byte("\r\n\r\n")) {
		n, err := conn.Recv(buf, 10*time.Second)
		if err != nil {
			return err
		}
		req = append(req, buf[:n]...)
		if len(req) > 64<<10 {
			return ErrBadRequest
		}
	}
	line, _, _ := bytes.Cut(req, []byte("\r\n"))
	parts := strings.Fields(string(line))
	if len(parts) != 3 || parts[0] != "GET" {
		resp := "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n"
		_ = conn.Send([]byte(resp))
		return fmt.Errorf("%w: %q", ErrBadRequest, line)
	}
	hdr := "HTTP/1.1 200 OK\r\nContent-Type: video/mp2t\r\nContent-Length: " +
		strconv.FormatInt(clip.Size, 10) + "\r\n\r\n"
	if err := conn.Send([]byte(hdr)); err != nil {
		return err
	}
	frame := make([]byte, clip.frameSize())
	for i := 0; i < clip.Frames(); i++ {
		k := clip.Frame(i, frame)
		if err := conn.Send(frame[:k]); err != nil {
			return err
		}
	}
	return nil
}

// PreBufferHTTP issues the HTTP request on a connected stream socket and
// receives until prebuffer body bytes have arrived, returning the
// initial-buffering time measured from the request.
func PreBufferHTTP(conn *sockif.Socket, prebuffer int64, timeout time.Duration) (time.Duration, int64, error) {
	start := time.Now()
	if err := conn.Send([]byte("GET /stream HTTP/1.1\r\nHost: media\r\n\r\n")); err != nil {
		return 0, 0, err
	}
	buf := make([]byte, 64<<10)
	var body int64
	var headerDone bool
	var acc []byte
	deadline := start.Add(timeout)
	for body < prebuffer {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return 0, body, transport.ErrTimeout
		}
		n, err := conn.Recv(buf, remaining)
		if err != nil {
			return 0, body, err
		}
		data := buf[:n]
		if !headerDone {
			acc = append(acc, data...)
			if i := bytes.Index(acc, []byte("\r\n\r\n")); i >= 0 {
				status, _, _ := bytes.Cut(acc, []byte("\r\n"))
				if !bytes.Contains(status, []byte(" 200 ")) {
					return 0, 0, fmt.Errorf("%w: %q", ErrBadRequest, status)
				}
				headerDone = true
				body += int64(len(acc) - i - 4)
				acc = nil
			}
			continue
		}
		body += int64(n)
	}
	return time.Since(start), body, nil
}

// --- Native UDP baseline (socket-interface overhead measurement) ---

// ServeNativeUDP is the UDP-mode streamer over a raw transport endpoint,
// bypassing the iWARP stack and socket interface entirely: the baseline
// for the paper's ≈2% interface-overhead measurement.
func ServeNativeUDP(ep transport.Datagram, clip Clip, timeout time.Duration) error {
	req, from, err := ep.Recv(timeout)
	if err != nil {
		return err
	}
	if !bytes.HasPrefix(req, []byte("PLAY")) {
		return fmt.Errorf("%w: %q", ErrBadRequest, req)
	}
	frame := make([]byte, clip.frameSize())
	for i := 0; i < clip.Frames(); i++ {
		k := clip.Frame(i, frame)
		if err := ep.SendTo(frame[:k], from); err != nil {
			return err
		}
		runtime.Gosched() // same pacing as ServeUDP, for a fair baseline
	}
	return nil
}

// PreBufferNativeUDP mirrors PreBufferUDP over a raw transport endpoint.
func PreBufferNativeUDP(ep transport.Datagram, server transport.Addr, prebuffer int64, timeout time.Duration) (time.Duration, int64, error) {
	if err := ep.SendTo([]byte("PLAY"), server); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	var got int64
	deadline := start.Add(timeout)
	for got < prebuffer {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return 0, got, transport.ErrTimeout
		}
		p, _, err := ep.Recv(remaining)
		if err != nil {
			return 0, got, err
		}
		got += int64(len(p))
	}
	return time.Since(start), got, nil
}
