package media

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/sockif"
)

func TestClipFrames(t *testing.T) {
	c := NewClip(3000)
	if c.Frames() != 3 { // 1316 + 1316 + 368
		t.Fatalf("Frames = %d", c.Frames())
	}
	buf := make([]byte, DefaultFrameSize)
	if n := c.Frame(0, buf); n != 1316 {
		t.Fatalf("frame 0 len %d", n)
	}
	if n := c.Frame(2, buf); n != 368 {
		t.Fatalf("frame 2 len %d", n)
	}
	if n := c.Frame(3, buf); n != 0 {
		t.Fatalf("frame past end len %d", n)
	}
}

func TestClipDeterministicAndVerifiable(t *testing.T) {
	c := NewClip(10000)
	a := make([]byte, DefaultFrameSize)
	b := make([]byte, DefaultFrameSize)
	n1 := c.Frame(3, a)
	n2 := c.Frame(3, b)
	if n1 != n2 {
		t.Fatal("nondeterministic length")
	}
	if !c.VerifyFrame(3, a[:n1]) {
		t.Fatal("self-verification failed")
	}
	a[5] ^= 1
	if c.VerifyFrame(3, a[:n1]) {
		t.Fatal("corrupt frame verified")
	}
}

func mediaSetup(t *testing.T, cfg sockif.Config) (*sockif.Interface, *sockif.Interface) {
	t.Helper()
	net := simnet.New(simnet.Config{})
	return sockif.NewSim(net, "server", cfg), sockif.NewSim(net, "client", cfg)
}

func TestUDPStreamingPreBuffer(t *testing.T) {
	ifSrv, ifCli := mediaSetup(t, sockif.Config{RecvBufSize: 2048, RecvBufCount: 512})
	clip := NewClip(500 << 10)

	ss, err := ifSrv.BindDatagram(1234)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	cs, err := ifCli.Socket(sockif.DatagramSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	srvErr := make(chan error, 1)
	go func() { srvErr <- ServeUDP(ss, clip, 5*time.Second) }()

	d, got, err := PreBufferUDP(cs, ss.LocalAddr(), 256<<10, false, 10*time.Second)
	if err != nil {
		t.Fatalf("prebuffer: %v (got %d)", err, got)
	}
	if d <= 0 || got < 256<<10 {
		t.Fatalf("d=%v got=%d", d, got)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestUDPStreamingWriteRecordMode(t *testing.T) {
	ifSrv, ifCli := mediaSetup(t, sockif.Config{RecvBufSize: 2048, RecvBufCount: 512, RingSize: 256 << 10})
	clip := NewClip(300 << 10)

	ss, _ := ifSrv.BindDatagram(1234)
	defer ss.Close()
	cs, _ := ifCli.Socket(sockif.DatagramSocket)
	defer cs.Close()

	srvErr := make(chan error, 1)
	go func() { srvErr <- ServeUDP(ss, clip, 5*time.Second) }()

	d, got, err := PreBufferUDP(cs, ss.LocalAddr(), 128<<10, true, 10*time.Second)
	if err != nil {
		t.Fatalf("prebuffer: %v (got %d)", err, got)
	}
	if d <= 0 || got < 128<<10 {
		t.Fatalf("d=%v got=%d", d, got)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestHTTPStreamingPreBuffer(t *testing.T) {
	ifSrv, ifCli := mediaSetup(t, sockif.Config{RecvBufSize: 2048, RecvBufCount: 512})
	clip := NewClip(500 << 10)

	l, err := ifSrv.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srvErr := make(chan error, 1)
	go func() { srvErr <- ServeHTTP(l, clip) }()

	cs, err := ifCli.Socket(sockif.StreamSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	if err := cs.Connect(l.Addr()); err != nil {
		t.Fatal(err)
	}
	d, got, err := PreBufferHTTP(cs, 256<<10, 10*time.Second)
	if err != nil {
		t.Fatalf("prebuffer: %v (got %d)", err, got)
	}
	if d <= 0 || got < 256<<10 {
		t.Fatalf("d=%v got=%d", d, got)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestHTTPRejectsBadRequest(t *testing.T) {
	ifSrv, ifCli := mediaSetup(t, sockif.Config{})
	l, _ := ifSrv.Listen(8080)
	defer l.Close()
	done := make(chan error, 1)
	go func() { done <- ServeHTTP(l, NewClip(1000)) }()
	cs, _ := ifCli.Socket(sockif.StreamSocket)
	defer cs.Close()
	if err := cs.Connect(l.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := cs.Send([]byte("DELETE /stream HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("bad request accepted")
	}
}

func TestNativeUDPBaseline(t *testing.T) {
	net := simnet.New(simnet.Config{})
	srvEp, err := net.OpenDatagram("server", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srvEp.Close()
	cliEp, err := net.OpenDatagram("client", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cliEp.Close()
	clip := NewClip(200 << 10)
	done := make(chan error, 1)
	go func() { done <- ServeNativeUDP(srvEp, clip, 5*time.Second) }()
	d, got, err := PreBufferNativeUDP(cliEp, srvEp.LocalAddr(), 100<<10, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || got < 100<<10 {
		t.Fatalf("d=%v got=%d", d, got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
