// Package memreg implements the registered-memory subsystem of the iWARP
// stack: protection domains, memory regions, steering tags (STags), access
// rights, and bounds-checked direct placement.
//
// In hardware iWARP the RNIC validates every tagged DDP segment against a
// registered region before DMA-ing the payload into host memory ("the
// receiving machine enforces the requirement that the requested memory
// location must be registered with the device as a valid memory region
// before placing the data"). This package is that validation engine: DDP's
// tagged placement path resolves an STag here and writes through Region.Place,
// which enforces protection-domain membership, access rights, and bounds.
//
// It also provides the ValidityMap interval algebra that RDMA Write-Record
// uses to record which byte ranges of a sink buffer hold valid data when
// segments arrive out of order or are lost (paper §IV.B.3).
package memreg

import (
	"errors"
	"fmt"
	"sync"
)

// Access is the set of rights granted when a region is registered.
type Access uint8

// Access rights. Remote rights implicitly require the corresponding local
// right at registration time, as in the verbs specification.
const (
	LocalRead Access = 1 << iota
	LocalWrite
	RemoteRead
	RemoteWrite
)

func (a Access) String() string {
	if a == 0 {
		return "none"
	}
	s := ""
	add := func(bit Access, name string) {
		if a&bit != 0 {
			if s != "" {
				s += "|"
			}
			s += name
		}
	}
	add(LocalRead, "LOCAL_READ")
	add(LocalWrite, "LOCAL_WRITE")
	add(RemoteRead, "REMOTE_READ")
	add(RemoteWrite, "REMOTE_WRITE")
	return s
}

// STag is a steering tag: the wire-visible handle a remote peer uses to name
// a registered region in tagged (one-sided) operations. The low 8 bits are a
// key that changes on every registration of the same slot, so stale STags
// from deregistered regions are detected rather than silently reused.
type STag uint32

// Index returns the region-table slot encoded in the STag.
func (s STag) Index() uint32 { return uint32(s) >> 8 }

// Key returns the per-registration key byte.
func (s STag) Key() uint8 { return uint8(s) }

// Errors returned by the registration and placement paths. These correspond
// to the DDP/RDMAP error classes that a hardware RNIC would raise in a
// Terminate message (invalid STag, base/bounds violation, access violation,
// PD mismatch).
var (
	ErrInvalidSTag     = errors.New("memreg: invalid or stale STag")
	ErrBounds          = errors.New("memreg: base/bounds violation")
	ErrAccess          = errors.New("memreg: access rights violation")
	ErrPDMismatch      = errors.New("memreg: protection domain mismatch")
	ErrRegionSize      = errors.New("memreg: region must be non-empty")
	ErrInvalidatedSTag = errors.New("memreg: STag has been invalidated")
)

var pdSeq struct {
	sync.Mutex
	next uint32
}

// PD is a protection domain. Regions and queue pairs created in different
// domains cannot be used together; the check happens on every placement.
type PD struct {
	id uint32
}

// NewPD allocates a fresh protection domain.
func NewPD() *PD {
	pdSeq.Lock()
	pdSeq.next++
	id := pdSeq.next
	pdSeq.Unlock()
	return &PD{id: id}
}

// ID returns the domain's unique identifier.
func (p *PD) ID() uint32 { return p.id }

func (p *PD) String() string { return fmt.Sprintf("pd#%d", p.id) }

// Region is a registered memory region: a byte buffer pinned for direct
// placement, its STag, its access rights, and — for Write-Record sinks — a
// validity map of the ranges that have been written.
type Region struct {
	mu    sync.Mutex
	buf   []byte
	stag  STag
	pd    *PD
	acc   Access
	valid bool
	vmap  ValidityMap
}

// STag returns the region's steering tag.
func (r *Region) STag() STag { return r.stag }

// Len returns the registered length in bytes.
func (r *Region) Len() int { return len(r.buf) }

// Access returns the rights granted at registration.
func (r *Region) Access() Access { return r.acc }

// PD returns the protection domain the region belongs to.
func (r *Region) PD() *PD { return r.pd }

// Bytes returns the underlying buffer. The caller owns synchronisation with
// concurrent remote placements, exactly as an application using RDMA must.
func (r *Region) Bytes() []byte { return r.buf }

// Place writes data at offset to within the region on behalf of a peer in
// protection domain pd holding rights need (RemoteWrite for tagged writes,
// LocalWrite for receive-side placement of untagged messages, with pd == the
// local QP's domain). It enforces validity, domain, rights, and bounds, and
// is safe for concurrent use.
func (r *Region) Place(pd *PD, need Access, to uint64, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.valid {
		return ErrInvalidatedSTag
	}
	if r.pd != pd {
		return ErrPDMismatch
	}
	if r.acc&need != need {
		return ErrAccess
	}
	end := to + uint64(len(data))
	if to > uint64(len(r.buf)) || end > uint64(len(r.buf)) || end < to {
		return fmt.Errorf("%w: [%d,%d) outside region of %d bytes", ErrBounds, to, end, len(r.buf))
	}
	copy(r.buf[to:end], data)
	return nil
}

// Read copies len(dst) bytes starting at offset to into dst on behalf of a
// peer with rights need (RemoteRead for RDMA Read sources).
func (r *Region) Read(pd *PD, need Access, to uint64, dst []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.valid {
		return ErrInvalidatedSTag
	}
	if r.pd != pd {
		return ErrPDMismatch
	}
	if r.acc&need != need {
		return ErrAccess
	}
	end := to + uint64(len(dst))
	if to > uint64(len(r.buf)) || end > uint64(len(r.buf)) || end < to {
		return fmt.Errorf("%w: [%d,%d) outside region of %d bytes", ErrBounds, to, end, len(r.buf))
	}
	copy(dst, r.buf[to:end])
	return nil
}

// Record adds [to, to+n) to the region's validity map. Write-Record target
// processing calls this after each successful placement.
func (r *Region) Record(to uint64, n int) {
	r.mu.Lock()
	r.vmap.Add(to, uint64(n))
	r.mu.Unlock()
}

// Validity returns a snapshot of the region's validity map and leaves the
// live map untouched.
func (r *Region) Validity() ValidityMap {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.vmap.Clone()
}

// ResetValidity clears the validity map, typically after the application has
// consumed a completed Write-Record message.
func (r *Region) ResetValidity() {
	r.mu.Lock()
	r.vmap = ValidityMap{}
	r.mu.Unlock()
}

// Table maps STags to regions for one node. A hardware RNIC keeps this in
// adapter memory; its size is exactly the per-connection state the paper's
// scalability argument is about.
type Table struct {
	mu    sync.Mutex
	slots []*Region
	free  []uint32
	key   uint8
}

// NewTable returns an empty region table.
func NewTable() *Table { return &Table{} }

// Register pins buf as a new memory region in domain pd with rights acc and
// returns it. Remote rights imply the matching local right.
func (t *Table) Register(pd *PD, buf []byte, acc Access) (*Region, error) {
	if len(buf) == 0 {
		return nil, ErrRegionSize
	}
	if acc&RemoteWrite != 0 {
		acc |= LocalWrite
	}
	if acc&RemoteRead != 0 {
		acc |= LocalRead
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var idx uint32
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		idx = uint32(len(t.slots))
		t.slots = append(t.slots, nil)
	}
	t.key++
	if t.key == 0 {
		t.key = 1
	}
	r := &Region{
		buf:   buf,
		stag:  STag(idx<<8 | uint32(t.key)),
		pd:    pd,
		acc:   acc,
		valid: true,
	}
	t.slots[idx] = r
	return r, nil
}

// Lookup resolves an STag to its region, failing on stale or unknown tags.
func (t *Table) Lookup(s STag) (*Region, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := s.Index()
	if idx >= uint32(len(t.slots)) || t.slots[idx] == nil || t.slots[idx].stag != s {
		return nil, fmt.Errorf("%w: %#x", ErrInvalidSTag, uint32(s))
	}
	return t.slots[idx], nil
}

// Deregister unpins the region named by s. Subsequent placements through the
// STag fail with ErrInvalidSTag (table miss) or ErrInvalidatedSTag (held
// region pointer).
func (t *Table) Deregister(s STag) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := s.Index()
	if idx >= uint32(len(t.slots)) || t.slots[idx] == nil || t.slots[idx].stag != s {
		return fmt.Errorf("%w: %#x", ErrInvalidSTag, uint32(s))
	}
	r := t.slots[idx]
	r.mu.Lock()
	r.valid = false
	r.mu.Unlock()
	t.slots[idx] = nil
	t.free = append(t.free, idx)
	return nil
}

// Count returns the number of live registrations.
func (t *Table) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, r := range t.slots {
		if r != nil {
			n++
		}
	}
	return n
}

// Footprint estimates the bytes of pinned buffer memory plus table state the
// node currently dedicates to registrations, the quantity behind the paper's
// memory-scalability results.
func (t *Table) Footprint() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for _, r := range t.slots {
		if r != nil {
			total += int64(len(r.buf)) + regionOverhead
		}
	}
	total += int64(len(t.slots)) * 8
	return total
}

// regionOverhead approximates the per-region bookkeeping an RNIC/driver
// keeps (address, length, rights, PD, key — one TPT entry).
const regionOverhead = 64
