package memreg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ivs(m *ValidityMap) []Interval { return m.Intervals() }

func TestValidityAddDisjoint(t *testing.T) {
	var m ValidityMap
	m.Add(10, 5)
	m.Add(20, 5)
	m.Add(0, 5)
	got := ivs(&m)
	want := []Interval{{0, 5}, {10, 5}, {20, 5}}
	if len(got) != 3 {
		t.Fatalf("intervals = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intervals = %v, want %v", got, want)
		}
	}
	if m.Covered() != 15 {
		t.Fatalf("Covered = %d", m.Covered())
	}
}

func TestValidityMergeAdjacent(t *testing.T) {
	var m ValidityMap
	m.Add(0, 5)
	m.Add(5, 5)
	if got := ivs(&m); len(got) != 1 || got[0] != (Interval{0, 10}) {
		t.Fatalf("intervals = %v", got)
	}
}

func TestValidityMergeOverlapping(t *testing.T) {
	var m ValidityMap
	m.Add(0, 10)
	m.Add(5, 10)
	m.Add(3, 2) // fully inside
	if got := ivs(&m); len(got) != 1 || got[0] != (Interval{0, 15}) {
		t.Fatalf("intervals = %v", got)
	}
}

func TestValidityBridgeMerge(t *testing.T) {
	var m ValidityMap
	m.Add(0, 5)
	m.Add(10, 5)
	m.Add(4, 7) // bridges both
	if got := ivs(&m); len(got) != 1 || got[0] != (Interval{0, 15}) {
		t.Fatalf("intervals = %v", got)
	}
}

func TestValidityAddEmptyNoop(t *testing.T) {
	var m ValidityMap
	m.Add(5, 0)
	if len(ivs(&m)) != 0 {
		t.Fatal("empty add must not create intervals")
	}
}

func TestValidityContains(t *testing.T) {
	var m ValidityMap
	m.Add(10, 10)
	cases := []struct {
		off, n uint64
		want   bool
	}{
		{10, 10, true},
		{12, 5, true},
		{10, 0, true},
		{0, 0, true},
		{9, 2, false},
		{19, 2, false},
		{0, 5, false},
		{25, 1, false},
	}
	for i, c := range cases {
		if got := m.Contains(c.off, c.n); got != c.want {
			t.Errorf("case %d: Contains(%d,%d) = %v, want %v", i, c.off, c.n, got, c.want)
		}
	}
}

func TestValidityComplete(t *testing.T) {
	var m ValidityMap
	if !m.Complete(0) {
		t.Fatal("empty map must be complete for total 0")
	}
	m.Add(0, 5)
	m.Add(6, 4)
	if m.Complete(10) {
		t.Fatal("map with hole reported complete")
	}
	m.Add(5, 1)
	if !m.Complete(10) {
		t.Fatal("full map reported incomplete")
	}
	if m.Complete(11) {
		t.Fatal("short map reported complete")
	}
}

func TestValidityHoles(t *testing.T) {
	var m ValidityMap
	m.Add(5, 5)
	m.Add(15, 5)
	holes := m.Holes(25)
	want := []Interval{{0, 5}, {10, 5}, {20, 5}}
	if len(holes) != len(want) {
		t.Fatalf("Holes = %v", holes)
	}
	for i := range want {
		if holes[i] != want[i] {
			t.Fatalf("Holes = %v, want %v", holes, want)
		}
	}
	if h := (&ValidityMap{}).Holes(7); len(h) != 1 || h[0] != (Interval{0, 7}) {
		t.Fatalf("empty-map holes = %v", h)
	}
	// Interval extending beyond total: no trailing hole.
	var m2 ValidityMap
	m2.Add(0, 100)
	if h := m2.Holes(50); len(h) != 0 {
		t.Fatalf("holes = %v, want none", h)
	}
}

func TestValidityCloneIndependent(t *testing.T) {
	var m ValidityMap
	m.Add(0, 5)
	c := m.Clone()
	m.Add(5, 5)
	if c.Covered() != 5 {
		t.Fatalf("clone changed: %v", c.String())
	}
	if m.Covered() != 10 {
		t.Fatalf("original wrong: %v", m.String())
	}
}

func TestValidityString(t *testing.T) {
	var m ValidityMap
	if m.String() != "{}" {
		t.Fatalf("empty = %q", m.String())
	}
	m.Add(0, 3)
	m.Add(7, 1)
	if m.String() != "{[0,3) [7,8)}" {
		t.Fatalf("got %q", m.String())
	}
}

// reference model: a boolean slice.
type refMap []bool

func (r refMap) add(off, n int) {
	for i := off; i < off+n && i < len(r); i++ {
		r[i] = true
	}
}

func (r refMap) covered() uint64 {
	var c uint64
	for _, b := range r {
		if b {
			c++
		}
	}
	return c
}

// Property: ValidityMap agrees with a bitmap model under random adds, and
// its invariants (sorted, disjoint, coalesced) hold throughout.
func TestValidityMatchesModelQuick(t *testing.T) {
	const space = 256
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var m ValidityMap
		ref := make(refMap, space)
		for range int(ops%40) + 1 {
			off := rng.Intn(space)
			n := rng.Intn(space - off)
			m.Add(uint64(off), uint64(n))
			ref.add(off, n)
		}
		if m.Covered() != ref.covered() {
			return false
		}
		// Invariants.
		prevEnd := uint64(0)
		for i, iv := range m.Intervals() {
			if iv.Len == 0 {
				return false
			}
			if i > 0 && iv.Off <= prevEnd {
				return false // must be disjoint and non-touching
			}
			prevEnd = iv.End()
		}
		// Spot-check Contains against the model.
		for range 16 {
			off := rng.Intn(space)
			n := rng.Intn(space - off)
			want := true
			for i := off; i < off+n; i++ {
				if !ref[i] {
					want = false
					break
				}
			}
			if m.Contains(uint64(off), uint64(n)) != want {
				return false
			}
		}
		// Holes ∪ intervals must tile [0, space).
		var total uint64
		for _, h := range m.Holes(space) {
			total += h.Len
		}
		return total+m.Covered() == space
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is order-independent (the map is a join-semilattice).
func TestValidityOrderIndependentQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		ivs := make([]Interval, n)
		for i := range ivs {
			off := rng.Intn(200)
			ivs[i] = Interval{uint64(off), uint64(rng.Intn(200 - off))}
		}
		var a, b ValidityMap
		for _, iv := range ivs {
			a.AddInterval(iv)
		}
		perm := rng.Perm(n)
		for _, k := range perm {
			b.AddInterval(ivs[k])
		}
		return a.String() == b.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
