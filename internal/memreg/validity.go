package memreg

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is a half-open byte range [Off, Off+Len) within a sink buffer.
type Interval struct {
	Off uint64
	Len uint64
}

// End returns the exclusive upper bound of the interval.
func (iv Interval) End() uint64 { return iv.Off + iv.Len }

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Off, iv.End()) }

// ValidityMap records which byte ranges of a tagged sink buffer hold valid
// data. It is the receive-side log behind RDMA Write-Record: each placed
// segment adds its range; the application later reads the aggregate to learn
// "the valid memory areas that have been written" (paper §IV.B.4), skipping
// holes left by lost datagrams.
//
// Invariants: intervals are sorted by offset, non-empty, and maximally
// coalesced (no two intervals touch or overlap). The zero value is an empty
// map ready for use.
type ValidityMap struct {
	ivs []Interval
}

// Add records [off, off+n) as valid, merging with adjacent or overlapping
// ranges. Adding an empty range is a no-op.
func (m *ValidityMap) Add(off, n uint64) {
	if n == 0 {
		return
	}
	end := off + n
	// Find the first interval whose end reaches our start; everything before
	// it is untouched.
	i := sort.Search(len(m.ivs), func(k int) bool { return m.ivs[k].End() >= off })
	// Find the first interval that starts after our end; everything from
	// there on is untouched. Intervals [i, j) merge with the new range.
	j := i
	for j < len(m.ivs) && m.ivs[j].Off <= end {
		j++
	}
	if i < j {
		if m.ivs[i].Off < off {
			off = m.ivs[i].Off
		}
		if e := m.ivs[j-1].End(); e > end {
			end = e
		}
	}
	merged := Interval{Off: off, Len: end - off}
	m.ivs = append(m.ivs[:i], append([]Interval{merged}, m.ivs[j:]...)...)
}

// AddInterval records iv as valid.
func (m *ValidityMap) AddInterval(iv Interval) { m.Add(iv.Off, iv.Len) }

// Covered returns the total number of valid bytes.
func (m *ValidityMap) Covered() uint64 {
	var total uint64
	for _, iv := range m.ivs {
		total += iv.Len
	}
	return total
}

// Contains reports whether every byte of [off, off+n) is valid. The empty
// range is always contained.
func (m *ValidityMap) Contains(off, n uint64) bool {
	if n == 0 {
		return true
	}
	end := off + n
	i := sort.Search(len(m.ivs), func(k int) bool { return m.ivs[k].End() > off })
	return i < len(m.ivs) && m.ivs[i].Off <= off && m.ivs[i].End() >= end
}

// Complete reports whether [0, total) is fully valid.
func (m *ValidityMap) Complete(total uint64) bool {
	if total == 0 {
		return true
	}
	return len(m.ivs) == 1 && m.ivs[0].Off == 0 && m.ivs[0].Len >= total
}

// Intervals returns the coalesced valid ranges in ascending order. The
// returned slice aliases internal storage; callers must not modify it.
func (m *ValidityMap) Intervals() []Interval { return m.ivs }

// Holes returns the invalid ranges within [0, total): the gaps a lossy
// transport left in the message.
func (m *ValidityMap) Holes(total uint64) []Interval {
	var holes []Interval
	var pos uint64
	for _, iv := range m.ivs {
		if iv.Off >= total {
			break
		}
		if iv.Off > pos {
			holes = append(holes, Interval{Off: pos, Len: iv.Off - pos})
		}
		if e := iv.End(); e > pos {
			pos = e
		}
	}
	if pos < total {
		holes = append(holes, Interval{Off: pos, Len: total - pos})
	}
	return holes
}

// Clone returns an independent copy of the map.
func (m *ValidityMap) Clone() ValidityMap {
	out := ValidityMap{}
	if len(m.ivs) > 0 {
		out.ivs = append([]Interval(nil), m.ivs...)
	}
	return out
}

// Reset discards all recorded ranges.
func (m *ValidityMap) Reset() { m.ivs = m.ivs[:0] }

func (m *ValidityMap) String() string {
	if len(m.ivs) == 0 {
		return "{}"
	}
	parts := make([]string, len(m.ivs))
	for i, iv := range m.ivs {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
