package memreg

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func newRegion(t *testing.T, tbl *Table, pd *PD, n int, acc Access) *Region {
	t.Helper()
	r, err := tbl.Register(pd, make([]byte, n), acc)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	return r
}

func TestRegisterLookupDeregister(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	r := newRegion(t, tbl, pd, 128, LocalWrite|RemoteWrite)
	if r.Len() != 128 || r.PD() != pd {
		t.Fatal("region metadata wrong")
	}
	got, err := tbl.Lookup(r.STag())
	if err != nil || got != r {
		t.Fatalf("Lookup: %v %v", got, err)
	}
	if tbl.Count() != 1 {
		t.Fatalf("Count = %d", tbl.Count())
	}
	if err := tbl.Deregister(r.STag()); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if _, err := tbl.Lookup(r.STag()); !errors.Is(err, ErrInvalidSTag) {
		t.Fatalf("stale lookup err = %v", err)
	}
	if err := tbl.Deregister(r.STag()); !errors.Is(err, ErrInvalidSTag) {
		t.Fatalf("double deregister err = %v", err)
	}
	if tbl.Count() != 0 {
		t.Fatalf("Count = %d", tbl.Count())
	}
}

func TestRegisterEmptyFails(t *testing.T) {
	if _, err := NewTable().Register(NewPD(), nil, LocalRead); !errors.Is(err, ErrRegionSize) {
		t.Fatalf("err = %v", err)
	}
}

func TestStaleSTagKeyRotation(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	r1 := newRegion(t, tbl, pd, 8, LocalWrite)
	old := r1.STag()
	if err := tbl.Deregister(old); err != nil {
		t.Fatal(err)
	}
	// New registration reuses the slot but must get a different key.
	r2 := newRegion(t, tbl, pd, 8, LocalWrite)
	if r2.STag() == old {
		t.Fatalf("slot reuse produced identical STag %#x", uint32(old))
	}
	if r2.STag().Index() != old.Index() {
		t.Fatalf("expected slot reuse: idx %d vs %d", r2.STag().Index(), old.Index())
	}
	if _, err := tbl.Lookup(old); !errors.Is(err, ErrInvalidSTag) {
		t.Fatalf("stale STag resolved: %v", err)
	}
}

func TestPlaceHappyPath(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	r := newRegion(t, tbl, pd, 16, RemoteWrite)
	if err := r.Place(pd, RemoteWrite, 4, []byte("abcd")); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if !bytes.Equal(r.Bytes()[4:8], []byte("abcd")) {
		t.Fatalf("buffer = %q", r.Bytes())
	}
}

func TestPlaceEnforcesBounds(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	r := newRegion(t, tbl, pd, 16, RemoteWrite)
	cases := []struct {
		to uint64
		n  int
	}{
		{14, 4},             // straddles the end
		{16, 1},             // starts at end
		{^uint64(0) - 1, 4}, // offset overflow
		{1 << 40, 1},        // far out of range
	}
	for i, c := range cases {
		err := r.Place(pd, RemoteWrite, c.to, make([]byte, c.n))
		if !errors.Is(err, ErrBounds) {
			t.Errorf("case %d: err = %v, want ErrBounds", i, err)
		}
	}
	// Zero-length at exactly the end is legal (no bytes touched).
	if err := r.Place(pd, RemoteWrite, 16, nil); err != nil {
		t.Errorf("zero-length place at end: %v", err)
	}
}

func TestPlaceEnforcesAccess(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	r := newRegion(t, tbl, pd, 16, LocalRead) // no write rights at all
	if err := r.Place(pd, RemoteWrite, 0, []byte("x")); !errors.Is(err, ErrAccess) {
		t.Fatalf("err = %v, want ErrAccess", err)
	}
	if err := r.Read(pd, RemoteRead, 0, make([]byte, 1)); !errors.Is(err, ErrAccess) {
		t.Fatalf("read err = %v, want ErrAccess", err)
	}
}

func TestPlaceEnforcesPD(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	other := NewPD()
	r := newRegion(t, tbl, pd, 16, RemoteWrite)
	if err := r.Place(other, RemoteWrite, 0, []byte("x")); !errors.Is(err, ErrPDMismatch) {
		t.Fatalf("err = %v, want ErrPDMismatch", err)
	}
}

func TestPlaceOnInvalidatedRegion(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	r := newRegion(t, tbl, pd, 16, RemoteWrite)
	if err := tbl.Deregister(r.STag()); err != nil {
		t.Fatal(err)
	}
	if err := r.Place(pd, RemoteWrite, 0, []byte("x")); !errors.Is(err, ErrInvalidatedSTag) {
		t.Fatalf("err = %v, want ErrInvalidatedSTag", err)
	}
}

func TestRemoteRightsImplyLocal(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	r := newRegion(t, tbl, pd, 8, RemoteWrite|RemoteRead)
	if r.Access()&LocalWrite == 0 || r.Access()&LocalRead == 0 {
		t.Fatalf("Access = %v, remote rights must imply local", r.Access())
	}
}

func TestReadHappyPath(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	r := newRegion(t, tbl, pd, 8, RemoteRead)
	copy(r.Bytes(), "abcdefgh")
	dst := make([]byte, 4)
	if err := r.Read(pd, RemoteRead, 2, dst); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(dst) != "cdef" {
		t.Fatalf("dst = %q", dst)
	}
}

func TestRecordAndValidity(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	r := newRegion(t, tbl, pd, 64, RemoteWrite)
	r.Record(0, 16)
	r.Record(32, 16)
	v := r.Validity()
	if v.Covered() != 32 {
		t.Fatalf("Covered = %d", v.Covered())
	}
	// Snapshot must be independent of later records.
	r.Record(16, 16)
	if v.Covered() != 32 {
		t.Fatal("snapshot mutated by later Record")
	}
	got := r.Validity()
	if !got.Contains(0, 48) {
		t.Fatalf("validity = %v", got.String())
	}
	r.ResetValidity()
	after := r.Validity()
	if after.Covered() != 0 {
		t.Fatal("ResetValidity did not clear")
	}
}

func TestFootprint(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	if tbl.Footprint() != 0 {
		t.Fatalf("empty footprint = %d", tbl.Footprint())
	}
	newRegion(t, tbl, pd, 1000, LocalWrite)
	fp := tbl.Footprint()
	if fp < 1000 {
		t.Fatalf("footprint %d should include buffer bytes", fp)
	}
}

func TestConcurrentRegisterPlace(t *testing.T) {
	tbl := NewTable()
	pd := NewPD()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r, err := tbl.Register(pd, make([]byte, 32), RemoteWrite)
				if err != nil {
					t.Error(err)
					return
				}
				if err := r.Place(pd, RemoteWrite, 0, []byte("data")); err != nil {
					t.Error(err)
					return
				}
				r.Record(0, 4)
				if err := tbl.Deregister(r.STag()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tbl.Count() != 0 {
		t.Fatalf("Count = %d after churn", tbl.Count())
	}
}

func TestAccessString(t *testing.T) {
	if Access(0).String() != "none" {
		t.Fatal("zero access string")
	}
	got := (LocalRead | RemoteWrite).String()
	if got != "LOCAL_READ|REMOTE_WRITE" {
		t.Fatalf("got %q", got)
	}
}
