package nio

import "encoding/binary"

// Wire formats throughout the stack are big-endian ("network order"), as in
// the RDMA Consortium wire specifications. These helpers keep header
// marshalling terse and allocation-free.

// PutU16 appends v to b in network order and returns the extended slice.
func PutU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }

// PutU32 appends v to b in network order and returns the extended slice.
func PutU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

// PutU64 appends v to b in network order and returns the extended slice.
func PutU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// U16 reads a network-order uint16 from the front of b.
func U16(b []byte) uint16 { return binary.BigEndian.Uint16(b) }

// U32 reads a network-order uint32 from the front of b.
func U32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }

// U64 reads a network-order uint64 from the front of b.
func U64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }
