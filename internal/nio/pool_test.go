package nio

import "testing"

func TestPoolRecycleInvariant(t *testing.T) {
	pl := NewPool(128)
	a := pl.Get()
	if len(a) != 0 || cap(a) != 128 {
		t.Fatalf("Get: len=%d cap=%d, want 0/128", len(a), cap(a))
	}
	// Dirty the buffer, recycle it, and take it back out.
	a = append(a, 0xAA, 0xBB, 0xCC)
	first := &a[:1][0]
	pl.Put(a)
	b := pl.Get()
	if &b[:1][0] != first {
		t.Fatal("Get after Put must hand back the recycled buffer's storage")
	}
	if len(b) != 0 {
		t.Fatalf("recycled Get: len=%d, want 0 — stale payload bytes must not be visible", len(b))
	}
	if cap(b) != 128 {
		t.Fatalf("recycled Get: cap=%d, want 128", cap(b))
	}
}

func TestPoolDropsForeignCapacity(t *testing.T) {
	pl := NewPool(64)
	warm := pl.Get()
	pl.Put(warm) // one known-good buffer in the free list
	pl.Put(make([]byte, 0, 65))
	pl.Put(make([]byte, 0, 1))
	pl.Put(nil)
	if got := pl.Get(); cap(got) != 64 {
		t.Fatalf("pool handed out a foreign buffer of cap %d", cap(got))
	}
	if got := pl.Get(); cap(got) != 64 {
		t.Fatalf("pool handed out a foreign buffer of cap %d", cap(got))
	}
}

func TestPoolStats(t *testing.T) {
	pl := NewPool(32)
	a := pl.Get() // miss
	pl.Put(a)
	pl.Get() // hit
	pl.Get() // miss
	hits, misses := pl.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("Stats = %d hits / %d misses, want 1/2", hits, misses)
	}
}

// TestPoolOutstanding pins the get/put balance counter the chaos harness's
// leak checker reads: it must track exactly the buffers held by consumers,
// and foreign-capacity Puts must not perturb it.
func TestPoolOutstanding(t *testing.T) {
	pl := NewPool(32)
	a, b := pl.Get(), pl.Get()
	if out := pl.Outstanding(); out != 2 {
		t.Fatalf("Outstanding = %d with two live buffers, want 2", out)
	}
	pl.Put(make([]byte, 0, 99)) // foreign: dropped, not a return
	if out := pl.Outstanding(); out != 2 {
		t.Fatalf("Outstanding = %d after foreign Put, want 2", out)
	}
	pl.Put(a)
	pl.Put(b)
	if out := pl.Outstanding(); out != 0 {
		t.Fatalf("Outstanding = %d at quiesce, want 0", out)
	}
}

func TestPoolIdleBound(t *testing.T) {
	const size = 64 << 10
	bound := idleBound(size) // 32 MB budget / 64 KB = 512
	pl := NewPool(size)
	bufs := make([][]byte, bound+16)
	for i := range bufs {
		bufs[i] = pl.Get()
	}
	for _, b := range bufs {
		pl.Put(b)
	}
	if idle := pl.idle(); idle != bound {
		t.Fatalf("free lists hold %d buffers, want the %d bound", idle, bound)
	}
}

// TestPoolIdleBoundScalesWithSize pins the byte-budget semantics: the idle
// bound is a memory budget, so small size classes retain proportionally more
// buffers. A many-peer endpoint with thousands of shallow windows depends on
// this — a fixed buffer-count bound would drop-and-reallocate on every
// window turn once outstanding buffers exceed it.
func TestPoolIdleBoundScalesWithSize(t *testing.T) {
	if small, large := idleBound(2048), idleBound(64<<10); small <= large {
		t.Fatalf("idleBound(2KB)=%d not larger than idleBound(64KB)=%d", small, large)
	}
	if got := idleBound(2048) * 2048; got > idleBudgetBytes {
		t.Fatalf("idle budget exceeded: %d bytes", got)
	}
	if b := idleBound(1); b != maxIdleBufs {
		t.Fatalf("tiny size class not clamped: %d", b)
	}
	if b := idleBound(1 << 30); b != minIdleBufs {
		t.Fatalf("huge size class not clamped: %d", b)
	}
}

// TestPoolGetPutAllocFree pins the recycle loop itself at zero allocations:
// if Put ever re-boxes the slice header (the sync.Pool failure mode), every
// pooled send would pay one allocation per segment.
func TestPoolGetPutAllocFree(t *testing.T) {
	pl := NewPool(256)
	pl.Put(pl.Get()) // warm: the one legitimate allocation
	allocs := testing.AllocsPerRun(1000, func() {
		b := pl.Get()
		b = append(b, 1, 2, 3)
		pl.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("Get/Put cycle allocates %.2f times per run, want 0", allocs)
	}
}
