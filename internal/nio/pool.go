package nio

import "sync"

// Pool hands out fixed-capacity byte buffers and recycles them, bounding the
// allocation rate of the datapath. It is safe for concurrent use.
//
// A Pool models the receive-buffer slab an RNIC would carve out of host
// memory: Get always returns a zero-length slice with the pool's capacity so
// stale payload bytes can never leak between messages.
type Pool struct {
	size int
	p    sync.Pool
}

// NewPool returns a pool of buffers with capacity size bytes.
func NewPool(size int) *Pool {
	if size <= 0 {
		panic("nio: NewPool size must be positive")
	}
	pl := &Pool{size: size}
	pl.p.New = func() any {
		b := make([]byte, 0, size)
		return &b
	}
	return pl
}

// BufSize reports the capacity of buffers handed out by the pool.
func (pl *Pool) BufSize() int { return pl.size }

// Get returns an empty buffer with the pool's capacity.
func (pl *Pool) Get() []byte {
	return (*pl.p.Get().(*[]byte))[:0]
}

// Put recycles a buffer previously returned by Get. Buffers of foreign
// capacity are dropped so the pool's size invariant holds.
func (pl *Pool) Put(b []byte) {
	if cap(b) != pl.size {
		return
	}
	b = b[:0]
	pl.p.Put(&b)
}
