package nio

import (
	"sync"
	"sync/atomic"
)

// The idle bound is a byte budget, not a buffer count: a pool retains up to
// idleBudgetBytes/size free buffers, clamped to [minIdleBufs, maxIdleBufs].
// At the 64 KB datagram size that is 512 idle buffers — ~32 MB, a bounded
// slab like an RNIC's receive ring. Smaller size classes get proportionally
// more buffers for the same memory: a 2 KB pool retains 16384, which is
// what a many-peer endpoint needs — with thousands of peers each holding a
// few un-acked window buffers, a fixed 256-buffer bound degenerates into
// drop-on-Put / allocate-on-Get churn at exactly the scale the sharded
// peer tables are built for.
const (
	idleBudgetBytes = 32 << 20
	minIdleBufs     = 64
	maxIdleBufs     = 1 << 16

	// poolStripes is the number of independent free lists (power of two).
	// A single free-list mutex serializes every Get/Put in the process;
	// with per-peer locking upstream, that one lock would be the last
	// global serialization point left on the datapath.
	poolStripes = 8
)

func idleBound(size int) int {
	n := idleBudgetBytes / size
	if n < minIdleBufs {
		n = minIdleBufs
	}
	if n > maxIdleBufs {
		n = maxIdleBufs
	}
	return n
}

// Pool hands out fixed-capacity byte buffers and recycles them, bounding the
// allocation rate of the datapath. It is safe for concurrent use.
//
// A Pool models the receive-buffer slab an RNIC would carve out of host
// memory: Get always returns a zero-length slice with the pool's capacity so
// stale payload bytes can never leak between messages.
//
// The free lists are mutex-guarded stacks of slice headers rather than a
// sync.Pool: storing a []byte in an interface (or re-boxing a *[]byte on
// every Put) costs one 24-byte allocation per recycle, which would defeat
// the zero-alloc send path. The stack is striped poolStripes ways so
// concurrent senders on different peers do not collide on one lock; the
// Get/Put counters double as the stripe selectors, spreading traffic
// round-robin without any extra atomics on the hot path.
type Pool struct {
	size    int
	maxIdle int // per-stripe bound
	gets    atomic.Int64
	misses  atomic.Int64
	puts    atomic.Int64

	stripes [poolStripes]poolStripe

	guard poolGuard // double-put detector, active under -tags pooldebug only
}

type poolStripe struct {
	mu   sync.Mutex
	free [][]byte
	_    [32]byte // pad to a cache line so stripes do not false-share
}

// NewPool returns a pool of buffers with capacity size bytes.
func NewPool(size int) *Pool {
	if size <= 0 {
		panic("nio: NewPool size must be positive")
	}
	per := idleBound(size) / poolStripes
	if per < 1 {
		per = 1
	}
	return &Pool{size: size, maxIdle: per}
}

// BufSize reports the capacity of buffers handed out by the pool.
func (pl *Pool) BufSize() int { return pl.size }

// Get returns an empty buffer with the pool's capacity.
func (pl *Pool) Get() []byte {
	b, _ := pl.TryGet()
	return b
}

// TryGet is Get, additionally reporting whether the buffer was served from
// a free list (hit) or had to be allocated (miss). Datapaths that export
// their own hit/miss telemetry use it to count without re-deriving deltas
// from Stats.
func (pl *Pool) TryGet() ([]byte, bool) {
	home := uint64(pl.gets.Add(1)) & (poolStripes - 1)
	// Start at the home stripe; on a miss, sweep the others before paying
	// for an allocation — a nearly-empty pool must still find the buffers
	// it does have (and the recycle invariant depends on it).
	for i := uint64(0); i < poolStripes; i++ {
		s := &pl.stripes[(home+i)&(poolStripes-1)]
		s.mu.Lock()
		if n := len(s.free); n > 0 {
			b := s.free[n-1]
			s.free[n-1] = nil
			s.free = s.free[:n-1]
			s.mu.Unlock()
			pl.guard.onGet(b)
			return b[:0], true
		}
		s.mu.Unlock()
	}
	pl.misses.Add(1)
	b := make([]byte, 0, pl.size)
	pl.guard.onGet(b)
	return b, false
}

// Put recycles a buffer previously returned by Get. Buffers of foreign
// capacity are dropped so the pool's size invariant holds; so are buffers
// beyond the idle bound, to keep the slab's memory footprint fixed.
func (pl *Pool) Put(b []byte) {
	if cap(b) != pl.size {
		return
	}
	pl.guard.onPut(b)
	s := &pl.stripes[uint64(pl.puts.Add(1))&(poolStripes-1)]
	s.mu.Lock()
	if len(s.free) < pl.maxIdle {
		s.free = append(s.free, b[:0])
	}
	s.mu.Unlock()
}

// Stats reports the pool's hit/miss counters: hits are Gets served from a
// recycled buffer, misses are Gets that had to allocate. Their ratio is the
// datapath's pool hit rate.
func (pl *Pool) Stats() (hits, misses int64) {
	m := pl.misses.Load()
	return pl.gets.Load() - m, m
}

// Outstanding reports how many buffers have been handed out by Get and not
// yet returned through Put (foreign-capacity Puts are not counted on either
// side). At quiesce a leak-free datapath reads 0: the invariant the chaos
// harness asserts after every schedule.
func (pl *Pool) Outstanding() int64 {
	return pl.gets.Load() - pl.puts.Load()
}

// idle reports the total buffers currently parked across all free lists
// (test and telemetry helper; takes every stripe lock).
func (pl *Pool) idle() int {
	n := 0
	for i := range pl.stripes {
		s := &pl.stripes[i]
		s.mu.Lock()
		n += len(s.free)
		s.mu.Unlock()
	}
	return n
}
