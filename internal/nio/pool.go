package nio

import (
	"sync"
	"sync/atomic"
)

// defaultMaxIdle bounds how many free buffers a Pool retains; beyond it,
// Put drops the buffer for the GC. 256 idle buffers at the 64 KB datagram
// size is ~16 MB — a bounded slab, like an RNIC's receive ring.
const defaultMaxIdle = 256

// Pool hands out fixed-capacity byte buffers and recycles them, bounding the
// allocation rate of the datapath. It is safe for concurrent use.
//
// A Pool models the receive-buffer slab an RNIC would carve out of host
// memory: Get always returns a zero-length slice with the pool's capacity so
// stale payload bytes can never leak between messages.
//
// The free list is a mutex-guarded stack of slice headers rather than a
// sync.Pool: storing a []byte in an interface (or re-boxing a *[]byte on
// every Put) costs one 24-byte allocation per recycle, which would defeat
// the zero-alloc send path. The critical section is a pointer push/pop, so
// the lock is held for a few nanoseconds.
type Pool struct {
	size    int
	maxIdle int
	gets    atomic.Int64
	misses  atomic.Int64
	puts    atomic.Int64

	mu   sync.Mutex
	free [][]byte

	guard poolGuard // double-put detector, active under -tags pooldebug only
}

// NewPool returns a pool of buffers with capacity size bytes.
func NewPool(size int) *Pool {
	if size <= 0 {
		panic("nio: NewPool size must be positive")
	}
	return &Pool{size: size, maxIdle: defaultMaxIdle}
}

// BufSize reports the capacity of buffers handed out by the pool.
func (pl *Pool) BufSize() int { return pl.size }

// Get returns an empty buffer with the pool's capacity.
func (pl *Pool) Get() []byte {
	b, _ := pl.TryGet()
	return b
}

// TryGet is Get, additionally reporting whether the buffer was served from
// the free list (hit) or had to be allocated (miss). Datapaths that export
// their own hit/miss telemetry use it to count without re-deriving deltas
// from Stats.
func (pl *Pool) TryGet() ([]byte, bool) {
	pl.gets.Add(1)
	pl.mu.Lock()
	if n := len(pl.free); n > 0 {
		b := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pl.mu.Unlock()
		pl.guard.onGet(b)
		return b[:0], true
	}
	pl.mu.Unlock()
	pl.misses.Add(1)
	b := make([]byte, 0, pl.size)
	pl.guard.onGet(b)
	return b, false
}

// Put recycles a buffer previously returned by Get. Buffers of foreign
// capacity are dropped so the pool's size invariant holds; so are buffers
// beyond the idle bound, to keep the slab's memory footprint fixed.
func (pl *Pool) Put(b []byte) {
	if cap(b) != pl.size {
		return
	}
	pl.guard.onPut(b)
	pl.puts.Add(1)
	pl.mu.Lock()
	if len(pl.free) < pl.maxIdle {
		pl.free = append(pl.free, b[:0])
	}
	pl.mu.Unlock()
}

// Stats reports the pool's hit/miss counters: hits are Gets served from a
// recycled buffer, misses are Gets that had to allocate. Their ratio is the
// datapath's pool hit rate.
func (pl *Pool) Stats() (hits, misses int64) {
	m := pl.misses.Load()
	return pl.gets.Load() - m, m
}

// Outstanding reports how many buffers have been handed out by Get and not
// yet returned through Put (foreign-capacity Puts are not counted on either
// side). At quiesce a leak-free datapath reads 0: the invariant the chaos
// harness asserts after every schedule.
func (pl *Pool) Outstanding() int64 {
	return pl.gets.Load() - pl.puts.Load()
}
