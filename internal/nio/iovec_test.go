package nio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecLen(t *testing.T) {
	cases := []struct {
		v    Vec
		want int
	}{
		{nil, 0},
		{VecOf(), 0},
		{VecOf([]byte("abc")), 3},
		{VecOf([]byte("ab"), nil, []byte("cde")), 5},
	}
	for i, c := range cases {
		if got := c.v.Len(); got != c.want {
			t.Errorf("case %d: Len() = %d, want %d", i, got, c.want)
		}
	}
}

func TestVecGatherScatterRoundTrip(t *testing.T) {
	v := VecOf(make([]byte, 3), make([]byte, 0), make([]byte, 7), make([]byte, 1))
	src := []byte("hello world")
	if n := v.Scatter(src); n != 11 {
		t.Fatalf("Scatter copied %d bytes, want 11", n)
	}
	dst := make([]byte, 11)
	if n := v.Gather(dst); n != 11 {
		t.Fatalf("Gather copied %d bytes, want 11", n)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("round trip mismatch: got %q want %q", dst, src)
	}
}

func TestVecGatherShortDst(t *testing.T) {
	v := VecOf([]byte("abcdef"))
	dst := make([]byte, 4)
	if n := v.Gather(dst); n != 4 {
		t.Fatalf("Gather = %d, want 4", n)
	}
	if string(dst) != "abcd" {
		t.Fatalf("got %q", dst)
	}
}

func TestVecScatterShortSrc(t *testing.T) {
	v := VecOf(make([]byte, 2), make([]byte, 2))
	if n := v.Scatter([]byte("xyz")); n != 3 {
		t.Fatalf("Scatter = %d, want 3", n)
	}
	if got := string(v.Bytes()[:3]); got != "xyz" {
		t.Fatalf("got %q", got)
	}
}

func TestVecBytesSingleSegmentNoCopy(t *testing.T) {
	seg := []byte("abc")
	v := VecOf(seg)
	out := v.Bytes()
	out[0] = 'z'
	if seg[0] != 'z' {
		t.Fatal("single-segment Bytes should alias the segment")
	}
}

func TestVecSlice(t *testing.T) {
	v := VecOf([]byte("abc"), []byte("defg"), []byte("hi"))
	cases := []struct {
		off, n int
		want   string
	}{
		{0, 0, ""},
		{0, 3, "abc"},
		{1, 3, "bcd"},
		{3, 4, "defg"},
		{2, 6, "cdefgh"},
		{8, 1, "i"},
		{0, 9, "abcdefghi"},
	}
	for i, c := range cases {
		got := string(v.Slice(c.off, c.n).Bytes())
		if got != c.want {
			t.Errorf("case %d: Slice(%d,%d) = %q, want %q", i, c.off, c.n, got, c.want)
		}
	}
}

func TestVecSlicePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Slice out of range did not panic")
		}
	}()
	VecOf([]byte("ab")).Slice(1, 5)
}

func TestVecSliceSharesStorage(t *testing.T) {
	seg := []byte("abcdef")
	sub := VecOf(seg).Slice(2, 2)
	sub[0][0] = 'X'
	if seg[2] != 'X' {
		t.Fatal("Slice must share storage with the parent vector")
	}
}

// Property: for random segmentations, Slice(off, n) over a Vec equals
// slicing the flattened bytes.
func TestVecSliceMatchesFlatQuick(t *testing.T) {
	f := func(data []byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var v Vec
		rest := data
		for len(rest) > 0 {
			k := 1 + rng.Intn(len(rest))
			v = append(v, rest[:k])
			rest = rest[k:]
		}
		flat := v.Bytes()
		if !bytes.Equal(flat, data) {
			return false
		}
		if len(data) == 0 {
			return true
		}
		off := rng.Intn(len(data))
		n := rng.Intn(len(data) - off + 1)
		return bytes.Equal(v.Slice(off, n).Bytes(), data[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVecAppendRangeMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	v := VecOf(make([]byte, 13), make([]byte, 0), make([]byte, 29), make([]byte, 7))
	for _, s := range v {
		rng.Read(s)
	}
	total := v.Len()
	for trial := 0; trial < 200; trial++ {
		off := rng.Intn(total + 1)
		n := rng.Intn(total - off + 1)
		want := v.Slice(off, n).AppendTo([]byte("prefix"))
		got := v.AppendRange([]byte("prefix"), off, n)
		if !bytes.Equal(got, want) {
			t.Fatalf("AppendRange(%d, %d) diverges from Slice+AppendTo", off, n)
		}
	}
}

func TestVecAppendRangePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRange past the end did not panic")
		}
	}()
	VecOf([]byte("abc")).AppendRange(nil, 2, 5)
}

func TestVecAppendRangeAllocFree(t *testing.T) {
	v := VecOf(make([]byte, 100), make([]byte, 100))
	dst := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(500, func() {
		dst = v.AppendRange(dst[:0], 37, 120)
	})
	if allocs != 0 {
		t.Fatalf("AppendRange allocates %.2f times per run, want 0", allocs)
	}
}

func TestPool(t *testing.T) {
	p := NewPool(64)
	if p.BufSize() != 64 {
		t.Fatalf("BufSize = %d", p.BufSize())
	}
	b := p.Get()
	if len(b) != 0 || cap(b) != 64 {
		t.Fatalf("Get returned len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, []byte("sensitive")...)
	p.Put(b)
	b2 := p.Get()
	if len(b2) != 0 {
		t.Fatalf("recycled buffer has non-zero length %d", len(b2))
	}
	// Foreign-capacity buffers must be rejected silently.
	p.Put(make([]byte, 10))
}

func TestPoolPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool(0)
}

func TestWireHelpers(t *testing.T) {
	var b []byte
	b = PutU16(b, 0x0102)
	b = PutU32(b, 0x03040506)
	b = PutU64(b, 0x0708090a0b0c0d0e)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 0xa, 0xb, 0xc, 0xd, 0xe}
	if !bytes.Equal(b, want) {
		t.Fatalf("encoded %x, want %x", b, want)
	}
	if U16(b) != 0x0102 || U32(b[2:]) != 0x03040506 || U64(b[6:]) != 0x0708090a0b0c0d0e {
		t.Fatal("decode mismatch")
	}
}
