//go:build !pooldebug

package nio

// poolGuard is the release-build stub of the double-put detector: a zero-size
// field with empty methods the compiler erases, so the guarded datapath costs
// nothing unless the pooldebug build tag is set.
type poolGuard struct{}

func (poolGuard) onGet([]byte) {}
func (poolGuard) onPut([]byte) {}
