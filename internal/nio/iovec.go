// Package nio provides small I/O building blocks shared by every layer of
// the datagram-iWARP stack: gather/scatter I/O vectors, reference-counted
// buffer pools, and byte-order helpers.
//
// The software implementation described in the paper "takes advantage of I/O
// vectors to minimize data copying"; Vec is the Go equivalent used on both
// the send path (gather) and the placement path (scatter).
package nio

import "fmt"

// Vec is a gather/scatter I/O vector: an ordered list of byte slices that
// together form one logical message. The zero value is an empty vector.
type Vec [][]byte

// VecOf builds a Vec from the given segments without copying.
func VecOf(segs ...[]byte) Vec { return Vec(segs) }

// Len returns the total number of bytes covered by the vector.
func (v Vec) Len() int {
	n := 0
	for _, s := range v {
		n += len(s)
	}
	return n
}

// Gather copies the vector's bytes into dst and returns the number copied.
// dst may be shorter than v.Len(); the copy stops when dst is full.
func (v Vec) Gather(dst []byte) int {
	n := 0
	for _, s := range v {
		if n == len(dst) {
			break
		}
		n += copy(dst[n:], s)
	}
	return n
}

// Bytes flattens the vector into a single freshly allocated slice.
// A single-segment vector returns its segment without copying.
func (v Vec) Bytes() []byte {
	if len(v) == 1 {
		return v[0]
	}
	out := make([]byte, v.Len())
	v.Gather(out)
	return out
}

// Slice returns a sub-vector covering bytes [off, off+n) of the logical
// message, sharing the underlying storage. It panics if the range is out of
// bounds, mirroring Go slice semantics.
func (v Vec) Slice(off, n int) Vec {
	if off < 0 || n < 0 || off+n > v.Len() {
		panic(fmt.Sprintf("nio: Vec.Slice(%d, %d) out of range for length %d", off, n, v.Len()))
	}
	var out Vec
	for _, s := range v {
		if n == 0 {
			break
		}
		if off >= len(s) {
			off -= len(s)
			continue
		}
		take := len(s) - off
		if take > n {
			take = n
		}
		out = append(out, s[off:off+take])
		off = 0
		n -= take
	}
	return out
}

// AppendRange appends bytes [off, off+n) of the logical message to dst and
// returns the extended slice. It is the allocation-free equivalent of
// v.Slice(off, n).AppendTo(dst) — the segmented send path cuts messages with
// it without materializing a sub-vector per segment. It panics if the range
// is out of bounds, mirroring Go slice semantics.
//
//diwarp:hotpath
func (v Vec) AppendRange(dst []byte, off, n int) []byte {
	if off < 0 || n < 0 || off+n > v.Len() {
		rangePanic(off, n, v.Len())
	}
	for _, s := range v {
		if n == 0 {
			break
		}
		if off >= len(s) {
			off -= len(s)
			continue
		}
		take := len(s) - off
		if take > n {
			take = n
		}
		dst = append(dst, s[off:off+take]...)
		off = 0
		n -= take
	}
	return dst
}

// rangePanic is AppendRange's cold failure path, outlined so the annotated
// hot path stays fmt-free.
func rangePanic(off, n, length int) {
	panic(fmt.Sprintf("nio: Vec.AppendRange(%d, %d) out of range for length %d", off, n, length))
}

// AppendTo appends the vector's bytes to dst and returns the extended slice.
func (v Vec) AppendTo(dst []byte) []byte {
	for _, s := range v {
		dst = append(dst, s...)
	}
	return dst
}

// Scatter copies src across the vector's segments in order, returning the
// number of bytes copied (min of len(src) and v.Len()).
func (v Vec) Scatter(src []byte) int {
	n := 0
	for _, s := range v {
		if n == len(src) {
			break
		}
		n += copy(s, src[n:])
	}
	return n
}
