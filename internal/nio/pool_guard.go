//go:build pooldebug

package nio

import (
	"fmt"
	"sync"
	"unsafe"
)

// poolGuard is the pooldebug-build double-put detector. It tracks every
// buffer the pool has handed out by its backing-array pointer and panics the
// moment ownership is violated: a buffer Put twice without an intervening
// Get, or a buffer Put that this pool never handed out. Both are the exact
// failure modes a duplicated or corrupt-dropped datagram can provoke in the
// recycling paths (a double-put silently hands the same storage to two
// consumers, which then scribble over each other's packets).
//
// The guard is behind a build tag because the map insert/delete would cost
// an allocation-free datapath its 0 allocs/op; chaos and pool tests run with
// -tags pooldebug (make chaos-smoke) so the invariant is still enforced in
// CI.
type poolGuard struct {
	mu  sync.Mutex
	out map[unsafe.Pointer]bool // backing array -> currently held by a consumer
}

func (g *poolGuard) onGet(b []byte) {
	p := unsafe.Pointer(unsafe.SliceData(b[:cap(b)]))
	g.mu.Lock()
	if g.out == nil {
		g.out = make(map[unsafe.Pointer]bool)
	}
	g.out[p] = true
	g.mu.Unlock()
}

func (g *poolGuard) onPut(b []byte) {
	p := unsafe.Pointer(unsafe.SliceData(b[:cap(b)]))
	g.mu.Lock()
	held, known := g.out[p]
	if known {
		g.out[p] = false
	}
	g.mu.Unlock()
	if known && !held {
		panic(fmt.Sprintf("nio: double Put of pool buffer %p (cap %d)", p, cap(b)))
	}
	if !known {
		panic(fmt.Sprintf("nio: Put of foreign buffer %p (cap %d) never handed out by this pool", p, cap(b)))
	}
}
