//go:build pooldebug

package nio

import "testing"

// TestPoolGuardDoublePut pins the pooldebug ownership guard: recycling the
// same buffer twice must panic instead of silently handing one backing array
// to two future getters — the corruption mode the chaos harness's
// duplication and corrupt-drop legs are designed to provoke.
func TestPoolGuardDoublePut(t *testing.T) {
	pl := NewPool(64)
	b := pl.Get()
	pl.Put(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic under pooldebug")
		}
	}()
	pl.Put(b)
}

// TestPoolGuardForeignPut pins the other ownership violation: recycling a
// matching-capacity buffer the pool never handed out.
func TestPoolGuardForeignPut(t *testing.T) {
	pl := NewPool(64)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign Put did not panic under pooldebug")
		}
	}()
	pl.Put(make([]byte, 0, 64))
}

// TestPoolGuardLegalCycle proves the guard stays silent through the legal
// get→put→get→put lifecycle, including a pool-free-list round trip.
func TestPoolGuardLegalCycle(t *testing.T) {
	pl := NewPool(64)
	for i := 0; i < 8; i++ {
		b := pl.Get()
		pl.Put(b)
	}
	if out := pl.Outstanding(); out != 0 {
		t.Fatalf("Outstanding = %d after balanced cycles", out)
	}
}
