// Package rudp implements a reliable datagram LLP on top of any unreliable
// transport.Datagram — the "reliable UDP" option the paper repeatedly
// invokes: "applications that currently use TCP can also be supported via a
// reliable UDP implementation that provides the order and reliability
// guarantees they require" (§IV.B), and "data loss ... can be supplemented
// by a reliability mechanism (like reliable UDP) for those applications that
// cannot deal with data loss" (§I).
//
// The protocol is deliberately lightweight compared to TCP — the whole point
// of the paper's RD mode: per-peer sliding windows with selective
// acknowledgement, fixed-interval retransmission with exponential backoff,
// exactly-once in-order delivery, and nothing else (no congestion control,
// no byte-stream semantics, no connection teardown handshake). Message
// boundaries are preserved, so the DDP layer above needs no MPA markers.
//
// Wire format (big-endian):
//
//	DATA: | type=1 (1) | resv (1) | seq (4) | payload ... |
//	ACK:  | type=2 (1) | resv (1) | cumAck (4) | sack bitmap (4) |
//
// cumAck acknowledges every DATA with seq ≤ cumAck; sack bit i acknowledges
// seq cumAck+1+i, letting the sender skip retransmitting packets that
// arrived out of order.
package rudp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/nio"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

const (
	typeData = 1
	typeAck  = 2

	headerLen    = 6
	ackLen       = 10
	windowSize   = 64
	maxRetries   = 12
	initialRTO   = 10 * time.Millisecond
	maxRTO       = 200 * time.Millisecond
	tickInterval = 2 * time.Millisecond
)

// ErrPeerDead reports that a peer stopped acknowledging after maxRetries
// retransmissions of some packet.
var ErrPeerDead = errors.New("rudp: peer unreachable (retries exhausted)")

// Endpoint is a reliable datagram endpoint. It implements
// transport.Datagram, delivering every message exactly once and in per-peer
// order, so it can be slotted under the iWARP stack wherever a raw UDP
// endpoint can.
type Endpoint struct {
	inner transport.Datagram

	// pool recycles DATA wire buffers (header + payload). A buffer lives
	// from SendTo until the packet is acknowledged AND no transmission is
	// in flight (pending.inFlight tracks sends that have been handed to the
	// inner transport but not yet returned).
	pool *nio.Pool
	// ackPool recycles the small ACK wire buffers, which are released as
	// soon as the inner SendTo returns (the transport does not retain them).
	ackPool *nio.Pool

	mu     sync.Mutex
	peers  map[transport.Addr]*peerState
	closed bool
	fatal  error

	// Reliability counters are telemetry-registry handles (DESIGN.md §4.6).
	// ackSendFail and dataSendFail count inner-transport send failures on
	// the paths that have no caller to return an error to (ACKs from the
	// receive loop, retransmissions from the timer loop). The protocol
	// already tolerates the loss — a dropped ACK is re-cut from cumulative
	// state, a dropped retransmission fires again at the next RTO — but a
	// persistently failing transport must be visible rather than silent.
	retransmits  *telemetry.Counter   // DATA packets resent after RTO expiry
	rtoExpired   *telemetry.Counter   // RTO expiry events (includes final, fatal one)
	ackSendFail  *telemetry.Counter   // ACK sends the inner transport rejected
	dataSendFail *telemetry.Counter   // retransmission sends the inner transport rejected
	rtt          *telemetry.Histogram // ack round-trip, µs (Karn: first transmissions only)

	inbox chan message
	done  chan struct{}
	wg    sync.WaitGroup
}

type message struct {
	payload []byte
	from    transport.Addr
}

// peerState tracks one remote endpoint's send and receive windows.
type peerState struct {
	// Send side.
	nextSeq  uint32
	unacked  map[uint32]*pending
	sendWait chan struct{} // pulsed when window space frees

	// Receive side.
	expected uint32            // next in-order seq to deliver
	ooo      map[uint32][]byte // out-of-order arrivals pending delivery
}

type pending struct {
	payload  []byte
	lastSent time.Time
	rto      time.Duration
	retries  int
	inFlight int  // transmissions handed to inner and not yet returned (guarded by e.mu)
	acked    bool // removed from the window; recycle payload when inFlight drains
}

// New wraps inner with reliability. The Endpoint owns inner and closes it.
func New(inner transport.Datagram) *Endpoint {
	e := &Endpoint{
		inner:        inner,
		pool:         nio.NewPool(inner.MaxDatagram()),
		ackPool:      nio.NewPool(ackLen),
		peers:        make(map[transport.Addr]*peerState),
		inbox:        make(chan message, 1024),
		done:         make(chan struct{}),
		retransmits:  telemetry.Default.Counter("diwarp_rudp_retransmits_total"),
		rtoExpired:   telemetry.Default.Counter("diwarp_rudp_rto_expired_total"),
		ackSendFail:  telemetry.Default.Counter("diwarp_rudp_ack_send_fail_total"),
		dataSendFail: telemetry.Default.Counter("diwarp_rudp_retransmit_send_fail_total"),
		rtt:          telemetry.Default.Histogram("diwarp_rudp_rtt_microseconds"),
	}
	e.wg.Add(2)
	go e.recvLoop()
	go e.retransmitLoop()
	return e
}

func (e *Endpoint) peer(a transport.Addr) *peerState {
	p, ok := e.peers[a]
	if !ok {
		p = &peerState{
			unacked:  make(map[uint32]*pending),
			ooo:      make(map[uint32][]byte),
			nextSeq:  1,
			expected: 1,
			sendWait: make(chan struct{}, 1),
		}
		e.peers[a] = p
	}
	return p
}

// seqLE reports a ≤ b in wraparound-aware serial arithmetic.
func seqLE(a, b uint32) bool { return int32(b-a) >= 0 }

// release marks a pending packet as out of the window and recycles its wire
// buffer once no transmission still references it. Caller holds e.mu.
func (e *Endpoint) release(pd *pending) {
	pd.acked = true
	if pd.inFlight == 0 && pd.payload != nil {
		e.pool.Put(pd.payload)
		pd.payload = nil
	}
}

// finishSends drops one in-flight reference from each pending packet, and
// recycles buffers whose packet was acknowledged while the transmission was
// on the wire.
func (e *Endpoint) finishSends(pds ...*pending) {
	e.mu.Lock()
	for _, pd := range pds {
		pd.inFlight--
		if pd.acked && pd.inFlight == 0 && pd.payload != nil {
			e.pool.Put(pd.payload)
			pd.payload = nil
		}
	}
	e.mu.Unlock()
}

// SendTo implements transport.Datagram. It blocks while the peer's send
// window is full and returns ErrPeerDead if the peer stops acknowledging.
func (e *Endpoint) SendTo(p []byte, to transport.Addr) error {
	if len(p) > e.MaxDatagram() {
		return transport.ErrTooLarge
	}
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return transport.ErrClosed
		}
		if e.fatal != nil {
			err := e.fatal
			e.mu.Unlock()
			return err
		}
		ps := e.peer(to)
		if len(ps.unacked) < windowSize {
			seq := ps.nextSeq
			ps.nextSeq++
			buf := e.pool.Get()
			buf = append(buf, typeData, 0)
			buf = nio.PutU32(buf, seq)
			buf = append(buf, p...)
			pd := &pending{
				payload:  buf,
				lastSent: time.Now(),
				rto:      initialRTO,
				inFlight: 1,
			}
			ps.unacked[seq] = pd
			e.mu.Unlock()
			err := e.inner.SendTo(buf, to)
			e.finishSends(pd)
			return err
		}
		wait := ps.sendWait
		e.mu.Unlock()
		select {
		case <-wait:
		case <-e.done:
			return transport.ErrClosed
		case <-time.After(tickInterval * 4):
			// Re-check: space may have been freed without a pulse.
		}
	}
}

// Recv implements transport.Datagram, returning the next in-order message
// from any peer.
func (e *Endpoint) Recv(timeout time.Duration) ([]byte, transport.Addr, error) {
	// Fast path: pending delivery needs no timer.
	select {
	case m := <-e.inbox:
		return m.payload, m.from, nil
	default:
	}
	var tch <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tch = t.C
	}
	select {
	case m := <-e.inbox:
		return m.payload, m.from, nil
	case <-tch:
		return nil, transport.Addr{}, transport.ErrTimeout
	case <-e.done:
		// Drain anything already delivered before the close.
		select {
		case m := <-e.inbox:
			return m.payload, m.from, nil
		default:
			return nil, transport.Addr{}, transport.ErrClosed
		}
	}
}

// recvLoop dispatches incoming DATA and ACK packets.
func (e *Endpoint) recvLoop() {
	defer e.wg.Done()
	recycler, _ := e.inner.(transport.Recycler)
	for {
		pkt, from, err := e.inner.Recv(0)
		if err != nil {
			return // endpoint closed underneath us
		}
		if len(pkt) >= headerLen {
			switch pkt[0] {
			case typeData:
				e.handleData(pkt, from)
			case typeAck:
				if len(pkt) >= ackLen {
					e.handleAck(pkt, from)
				}
			}
		}
		// Both handlers copy what they keep; the buffer can be recycled.
		if recycler != nil {
			recycler.Recycle(pkt)
		}
	}
}

func (e *Endpoint) handleData(pkt []byte, from transport.Addr) {
	seq := nio.U32(pkt[2:])
	payload := pkt[headerLen:]

	e.mu.Lock()
	ps := e.peer(from)
	var deliverables []message
	if seqLE(ps.expected, seq) {
		if _, dup := ps.ooo[seq]; !dup {
			ps.ooo[seq] = append([]byte(nil), payload...)
		}
		// Deliver the in-order prefix.
		for {
			data, ok := ps.ooo[ps.expected]
			if !ok {
				break
			}
			delete(ps.ooo, ps.expected)
			deliverables = append(deliverables, message{payload: data, from: from})
			ps.expected++
		}
	}
	ack := e.buildAck(ps)
	e.mu.Unlock()

	// ACK first so the sender's window opens even if our inbox is full.
	// A failed ACK send is recoverable — acks are cumulative and the next
	// inbound DATA re-cuts one — but it must be counted, not swallowed.
	if err := e.inner.SendTo(ack, from); err != nil {
		e.ackSendFail.Inc()
	}
	e.ackPool.Put(ack)
	for _, m := range deliverables {
		select {
		case e.inbox <- m:
		case <-e.done:
			return
		}
	}
}

// buildAck encodes the peer's receive state: cumulative ack plus a bitmap of
// the 32 sequence numbers above it. Caller holds e.mu.
func (e *Endpoint) buildAck(ps *peerState) []byte {
	cum := ps.expected - 1
	var bitmap uint32
	for i := uint32(0); i < 32; i++ {
		if _, ok := ps.ooo[cum+1+i]; ok {
			bitmap |= 1 << i
		}
	}
	buf := e.ackPool.Get()
	buf = append(buf, typeAck, 0)
	buf = nio.PutU32(buf, cum)
	buf = nio.PutU32(buf, bitmap)
	return buf
}

func (e *Endpoint) handleAck(pkt []byte, from transport.Addr) {
	cum := nio.U32(pkt[2:])
	bitmap := nio.U32(pkt[6:])

	now := time.Now()
	e.mu.Lock()
	ps := e.peer(from)
	freed := false
	for seq, pd := range ps.unacked {
		acked := seqLE(seq, cum)
		if !acked {
			if d := seq - cum - 1; d < 32 && bitmap&(1<<d) != 0 {
				acked = true
			}
		}
		if !acked {
			continue
		}
		// Karn's algorithm: only first transmissions give an unambiguous
		// RTT sample — an ack after a retransmit could match either send.
		if pd.retries == 0 {
			e.rtt.Observe(now.Sub(pd.lastSent).Microseconds())
		}
		delete(ps.unacked, seq)
		e.release(pd)
		freed = true
	}
	wait := ps.sendWait
	e.mu.Unlock()
	if freed {
		select {
		case wait <- struct{}{}:
		default:
		}
	}
}

// retransmitLoop resends unacknowledged packets whose RTO expired, with
// exponential backoff, and declares the endpoint failed after maxRetries.
func (e *Endpoint) retransmitLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(tickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		type resend struct {
			pd  *pending
			to  transport.Addr
			seq uint32
		}
		var rs []resend
		e.mu.Lock()
		for addr, ps := range e.peers {
			for seq, pd := range ps.unacked {
				if now.Sub(pd.lastSent) < pd.rto {
					continue
				}
				pd.retries++
				e.rtoExpired.Inc()
				if pd.retries > maxRetries {
					e.fatal = fmt.Errorf("%w: %s", ErrPeerDead, addr)
					continue
				}
				pd.lastSent = now
				pd.rto *= 2
				if pd.rto > maxRTO {
					pd.rto = maxRTO
				}
				// Hold an in-flight reference so a concurrent ack cannot
				// recycle (and another sender overwrite) the buffer while
				// the retransmission reads it.
				pd.inFlight++
				rs = append(rs, resend{pd: pd, to: addr, seq: seq})
			}
		}
		e.mu.Unlock()
		for _, r := range rs {
			// A failed retransmission behaves exactly like a lost one: the
			// next RTO tick retries it. Count it so a dead transport shows.
			e.retransmits.Inc()
			telemetry.DefaultTrace.Record(telemetry.EvRetransmit, telemetry.PeerToken(r.to), len(r.pd.payload), r.seq)
			if err := e.inner.SendTo(r.pd.payload, r.to); err != nil {
				e.dataSendFail.Inc()
			}
			e.finishSends(r.pd)
		}
	}
}

// Flush blocks until every sent message has been acknowledged, or the
// timeout passes (returning transport.ErrTimeout), or a peer dies.
func (e *Endpoint) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		e.mu.Lock()
		outstanding := 0
		for _, ps := range e.peers {
			outstanding += len(ps.unacked)
		}
		err := e.fatal
		e.mu.Unlock()
		if err != nil {
			return err
		}
		if outstanding == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return transport.ErrTimeout
		}
		time.Sleep(tickInterval)
	}
}

// Snapshot is a point-in-time view of the endpoint's reliability counters.
type Snapshot struct {
	// Retransmits counts DATA packets actually resent after an RTO expiry.
	Retransmits int64
	// RTOExpirations counts RTO expiry events, including the final expiry
	// that declares a peer dead (so it can exceed Retransmits by one per
	// failed peer, and equals Retransmits otherwise).
	RTOExpirations int64
	// AckSendFailures counts ACK sends the inner transport rejected.
	AckSendFailures int64
	// RetransmitSendFailures counts retransmission sends the inner
	// transport rejected.
	RetransmitSendFailures int64
}

// Snapshot reports this endpoint's reliability counters. The values are
// exact for this endpoint; the process-wide telemetry registry additionally
// aggregates them across endpoints under the diwarp_rudp_* metric names.
func (e *Endpoint) Snapshot() Snapshot {
	return Snapshot{
		Retransmits:            e.retransmits.Load(),
		RTOExpirations:         e.rtoExpired.Load(),
		AckSendFailures:        e.ackSendFail.Load(),
		RetransmitSendFailures: e.dataSendFail.Load(),
	}
}

// SendErrors reports how many ACK or retransmission sends the inner
// transport has rejected. The protocol recovers from each individually; a
// growing count means the transport below is unhealthy.
func (e *Endpoint) SendErrors() uint64 {
	return uint64(e.ackSendFail.Load() + e.dataSendFail.Load())
}

// LocalAddr implements transport.Datagram.
func (e *Endpoint) LocalAddr() transport.Addr { return e.inner.LocalAddr() }

// MaxDatagram implements transport.Datagram, reserving header space.
func (e *Endpoint) MaxDatagram() int { return e.inner.MaxDatagram() - headerLen }

// PathMTU implements transport.Datagram.
func (e *Endpoint) PathMTU() int { return e.inner.PathMTU() }

// Close implements transport.Datagram, closing the underlying endpoint.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	err := e.inner.Close()
	e.wg.Wait()
	return err
}
