// Package rudp implements a reliable datagram LLP on top of any unreliable
// transport.Datagram — the "reliable UDP" option the paper repeatedly
// invokes: "applications that currently use TCP can also be supported via a
// reliable UDP implementation that provides the order and reliability
// guarantees they require" (§IV.B), and "data loss ... can be supplemented
// by a reliability mechanism (like reliable UDP) for those applications that
// cannot deal with data loss" (§I).
//
// The protocol is deliberately lightweight compared to TCP — the whole point
// of the paper's RD mode: per-peer sliding windows with selective
// acknowledgement, adaptive retransmission (RFC 6298 RTT estimation with
// Karn-correct sampling and backoff), IRN-style selective loss recovery
// with a BDP-bounded congestion window (DESIGN.md §4.13), exactly-once
// in-order delivery, and nothing else (no byte-stream semantics, no
// connection teardown handshake). Message boundaries are preserved, so the
// DDP layer above needs no MPA markers.
//
// Wire format (big-endian; byte 0 carries the frame type in its low nibble
// and flag bits in its high nibble):
//
//	DATA: | type=1|flags (1) | epoch (1) | seq (4) | payload ... | crc32c (4) |
//	ACK:  | type=2|flags (1) | epoch (1) | cumAck (4) | sack bitmap (8) | crc32c (4) |
//
// cumAck acknowledges every DATA with seq ≤ cumAck; sack bit i acknowledges
// seq cumAck+1+i. The bitmap is 64 bits wide — exactly windowSize — so
// every packet the sender can have in flight is selectively acknowledgeable
// (the previous 32-bit bitmap covered only half the window, and the
// unSACKable upper half was spuriously retransmitted on every RTO even when
// delivered). The flagECN bit is the congestion-signal plane: a simulated
// switch (simnet/faultnet) sets it on a DATA frame via MarkCongestion, the
// receiver echoes it on its next ACK, and the sender answers the echo with
// a multiplicative cwnd decrease. The CRC32C trailer covers everything
// before it. It exists because this header is control plane: DDP's own CRC
// protects the payload end-to-end, but a bit flipped in cumAck would make
// the sender drop packets the receiver never got (silent loss), and a
// flipped seq would poison the receiver's reassembly state. Corrupt packets
// are discarded here and recovered exactly like losses.
//
// The epoch byte identifies one incarnation of the sender's conversation
// state: it is drawn at random when a peer's state is created and stamped
// on every packet of that conversation. Without it, a crash/restart on
// either side silently aliases two different conversations onto one
// sequence space — a restarted receiver SACKs sequence numbers it never
// delivered (silent loss), and stale out-of-order buffers can be delivered
// into the wrong conversation. An epoch mismatch with sends outstanding
// surfaces as ErrPeerDead; a mismatch on a conversation-start DATA adopts
// the new incarnation in place. A 1-in-256 collision between successive
// incarnations evades detection; that residual risk is accepted for a
// one-byte header cost.
//
// # Scaling (DESIGN.md §4.12)
//
// Per-peer state lives in a sharded peertab.Table: the demux from source
// address to window state is a lock-free snapshot lookup, and every state
// mutation takes only that peer's entry lock, so senders to different
// peers never contend. Retransmit scheduling is a hashed timer wheel — the
// tick visits only peers whose RTO is actually due instead of scanning the
// whole population under a global mutex. One QP's worth of endpoint can
// therefore carry the paper's "arbitrarily many peers" without the peer
// count taxing every packet.
package rudp

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crcx"
	"repro/internal/nio"
	"repro/internal/peertab"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

const (
	typeData = 1
	typeAck  = 2
	// typeMask extracts the frame type from byte 0; the high nibble is
	// flag space so a marked packet still demuxes correctly.
	typeMask = 0x0f
	// flagECN is the congestion-experienced bit: set on DATA by the network
	// (MarkCongestion), echoed on the next ACK by the receiver.
	flagECN = 0x80

	headerLen  = 6                      // DATA header before the payload
	ackBodyLen = 14                     // ACK fields before the trailer (64-bit SACK bitmap)
	ackLen     = ackBodyLen + crcx.Size // full ACK wire size
	windowSize = 64
	// sackBits is the SACK bitmap width. It MUST cover the full window:
	// the sender can have windowSize packets in flight, and any seq the
	// bitmap cannot express is retransmitted on every RTO even when it was
	// delivered (the seed shipped 32 bits against a 64-packet window and
	// behaved like go-back-N under burst loss).
	sackBits = windowSize
	// acceptWindow bounds how far past the in-order point a DATA seq may be
	// buffered. The sender never has more than windowSize unacked, so any
	// farther seq is garbage (or an un-evicted peer's past life); buffering
	// it would wedge reassembly and leak the out-of-order map.
	acceptWindow = windowSize
	maxRetries   = 12
	initialRTO   = 10 * time.Millisecond
	maxRTO       = 200 * time.Millisecond
	maxBackoff   = 6 // cap on Karn doublings; rto is clamped to maxRTO anyway
	tickInterval = 2 * time.Millisecond

	// wheelSlots × tickInterval is the wheel horizon (512ms) — past maxRTO,
	// so a deadline never wraps in normal operation.
	wheelSlots = 256
	// idleSweepEvery spaces EvictIdle scans: the scan is O(peers), so it
	// runs once a second, not once per 2ms tick.
	idleSweepEvery = time.Second / tickInterval

	// Congestion control (IRN-style, DESIGN.md §4.13). cwnd is a packet
	// count bounding unackedN; it grows by slow start below ssthresh and
	// AIMD above it, and is clamped to windowSize (the ring IS the BDP
	// ceiling). dupAckThresh duplicate cumulative ACKs carrying new SACK
	// information trigger fast retransmit of the holes below the highest
	// SACKed seq — loss recovery one RTT after the loss instead of one RTO.
	initialCwnd  = 16
	minCwnd      = 2
	dupAckThresh = 3
)

// ErrPeerDead reports that a peer stopped acknowledging after maxRetries
// retransmissions of some packet. The failure is per-peer: the first SendTo
// or Flush that observes it returns this error and evicts the peer's state,
// so a restarted peer (fresh sequence space) can resume on the same address
// while traffic to other peers continues unaffected.
var ErrPeerDead = errors.New("rudp: peer unreachable (retries exhausted)")

// Config tunes the endpoint's peer-table policy. The zero value matches
// the historical New behavior: default sharding, unbounded peers, no idle
// eviction.
type Config struct {
	// Shards is the peer-table stripe count (power of two; 0 selects the
	// peertab default). Raise it for soak-scale populations so each
	// copy-on-write insert copies a small shard.
	Shards int
	// MaxPeers bounds the peer table. Beyond it, SendTo to a new peer
	// returns peertab.ErrCapacity and inbound packets from new peers are
	// dropped (counted in diwarp_peertab_admission_rejects_total).
	// Zero means unbounded.
	MaxPeers int
	// IdleEvict, when positive, evicts peers whose conversation has been
	// idle that long and has nothing unacknowledged. A resumed peer starts
	// a fresh conversation (new epoch) transparently; any out-of-order
	// data buffered behind a loss gap is dropped with the state, exactly
	// as if the packets had been lost on the wire.
	IdleEvict time.Duration
	// GoBackN disables the IRN machinery — 32-bit SACK on the ACKs this
	// endpoint cuts, no fast retransmit, no congestion window, no ECN —
	// reproducing the pre-§4.13 loss behavior. It exists as the A/B
	// baseline for the EXPERIMENTS.md goodput figure and stays wire-
	// compatible: the bitmap field is still 64 bits on the wire, an IRN
	// peer just finds the top half always zero.
	GoBackN bool
}

// Endpoint is a reliable datagram endpoint. It implements
// transport.Datagram, delivering every message exactly once and in per-peer
// order, so it can be slotted under the iWARP stack wherever a raw UDP
// endpoint can.
type Endpoint struct {
	inner transport.Datagram
	cfg   Config

	// pool recycles DATA wire buffers (header + payload + CRC). A buffer
	// lives from SendTo until its reference count drains: one reference
	// for window residency, one per transmission handed to the inner
	// transport (see pending.refs).
	pool *nio.Pool
	// ackPool recycles the small ACK wire buffers, which are released as
	// soon as the inner SendTo returns (the transport does not retain them).
	ackPool *nio.Pool

	// tab shards the per-peer state; wheel schedules retransmit deadlines.
	// Lock order: shard.mu → Entry.mu → wslot.mu (declared in peertab).
	tab    *peertab.Table[transport.Addr, peerState]
	wheel  *peertab.Wheel[transport.Addr]
	closed atomic.Bool

	// Reliability counters are telemetry-registry handles (DESIGN.md §4.6).
	// ackSendFail and dataSendFail count inner-transport send failures on
	// the paths that have no caller to return an error to (ACKs from the
	// receive loop, retransmissions from the timer loop). The protocol
	// already tolerates the loss — a dropped ACK is re-cut from cumulative
	// state, a dropped retransmission fires again at the next RTO — but a
	// persistently failing transport must be visible rather than silent.
	retransmits   *telemetry.Counter   // DATA packets resent (RTO expiry or fast retransmit)
	rtoExpired    *telemetry.Counter   // RTO expiry events (includes final, fatal one)
	ackSendFail   *telemetry.Counter   // ACK sends the inner transport rejected
	dataSendFail  *telemetry.Counter   // retransmission sends the inner transport rejected
	crcFail       *telemetry.Counter   // inbound packets dropped by the header CRC
	windowDrops   *telemetry.Counter   // DATA beyond the acceptance window, not buffered
	evictions     *telemetry.Counter   // peers evicted (dead on observation, or idle)
	epochMismatch *telemetry.Counter   // packets from a different conversation incarnation
	rtt           *telemetry.Histogram // ack round-trip, µs (Karn: first transmissions only)

	// Congestion-control observability (DESIGN.md §4.13). ccCwnd is a gauge
	// tracking the most recently adjusted peer's cwnd — with one busy peer
	// (the benchmark and chaos shapes) it IS the cwnd trajectory; the
	// registry sums handles across endpoints, so a scrape of a multi-
	// endpoint process reads the sum of each endpoint's latest value.
	// ccSpurious counts DATA arrivals the receiver had already delivered or
	// buffered — every one is a packet the sender resent for nothing (or a
	// wire duplicate), the counter that proves the SACK-width fix.
	ccCwnd       *telemetry.Gauge
	ccFastRexmit *telemetry.Counter // DATA packets resent by dup-ACK fast retransmit
	ccSpurious   *telemetry.Counter // duplicate DATA arrivals (already delivered/buffered)
	ccEcnMarks   *telemetry.Counter // DATA arrivals carrying the congestion mark
	ccMDEvents   *telemetry.Counter // multiplicative decreases (ECN echo, dup-ACK loss, RTO)

	inbox chan message
	done  chan struct{}
	wg    sync.WaitGroup
}

type message struct {
	payload []byte
	from    transport.Addr
}

// peerEntry is one peer's slot in the sharded table; its embedded lock
// guards every peerState field.
type peerEntry = peertab.Entry[transport.Addr, peerState]

// peerState tracks one remote endpoint's send and receive windows. All
// fields are guarded by the owning entry's lock except pending.refs.
type peerState struct {
	// Send side. The un-acked window is a fixed ring indexed seq mod
	// windowSize: sequence numbers are assigned consecutively, so slot
	// seq&63 is free exactly when seq-64 has been acknowledged — the ring
	// occupancy IS the window check. Compared to a map keyed by seq this
	// removes one heap allocation per send (the map's *pending value) and
	// turns every window scan (ack clearing, RTO sweep, teardown) into a
	// 64-entry array walk with no hashing and no iterator.
	wnd      [windowSize]pending
	unackedN int           // ring slots currently holding the window reference
	nextSeq  uint32        // next sequence number to assign
	ackedTo  uint32        // every seq ≤ ackedTo is acked: window walks start past it
	sendWait chan struct{} // pulsed when window space frees
	dead     error         // set once retries exhaust or the peer restarts; awaits eviction

	// wheelIdx is the wheel slot this peer's earliest retransmit deadline
	// is filed in, or -1 when unarmed. The tick loop sets it to -1 when it
	// consumes a firing (matching the Fired slot — a mismatch means the
	// peer re-armed between the pop and the lock, and the firing is
	// stale); everyone else arms only when it is -1 and disarms through
	// it, so a peer occupies at most one wheel filing.
	wheelIdx int

	// Incarnation tracking: txEpoch stamps every packet this conversation
	// sends; rxEpoch is the peer's epoch, bound from its first packet.
	txEpoch byte
	rxEpoch byte
	rxBound bool

	// Adaptive RTO (RFC 6298): srtt/rttvar are fed by first-transmission
	// RTT samples only (Karn), and backoff counts consecutive RTO doublings
	// since the last acknowledged progress — it MUST reset on progress, or
	// one loss burst leaves every later retransmission crawling at maxRTO.
	srtt    time.Duration
	rttvar  time.Duration
	backoff int

	// Congestion control (unused when Config.GoBackN). cwnd is the dynamic
	// in-flight cap in packets; ssthresh the slow-start/AIMD boundary.
	// ccRecover gates multiplicative decrease NewReno-style: signals
	// arriving while ackedTo has not passed the seq outstanding at the last
	// decrease belong to the same congestion event and must not halve cwnd
	// again. dupAcks counts consecutive ACKs that advanced nothing
	// cumulatively but freed new SACK holes — the fast-retransmit trigger.
	// ecnEcho, on the receive side, latches an observed congestion mark
	// until the next ACK carries the echo out.
	cwnd      float64
	ssthresh  float64
	ccRecover uint32
	dupAcks   int
	ecnEcho   bool

	// Receive side.
	expected uint32            // next in-order seq to deliver
	ooo      map[uint32][]byte // out-of-order arrivals pending delivery
}

// curRTO returns the peer's current retransmission timeout: the RFC 6298
// estimate (or initialRTO before the first sample), doubled per Karn
// backoff step, clamped to [initialRTO, maxRTO].
func (ps *peerState) curRTO() time.Duration {
	rto := initialRTO
	if ps.srtt > 0 {
		rto = ps.srtt + 4*ps.rttvar
		if rto < initialRTO {
			rto = initialRTO
		}
	}
	for i := 0; i < ps.backoff && rto < maxRTO; i++ {
		rto *= 2
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}

// observeRTT folds one first-transmission RTT sample into the estimator.
func (ps *peerState) observeRTT(sample time.Duration) {
	if ps.srtt == 0 {
		ps.srtt = sample
		ps.rttvar = sample / 2
		return
	}
	diff := ps.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	ps.rttvar = (3*ps.rttvar + diff) / 4
	ps.srtt = (7*ps.srtt + sample) / 8
}

// cwndCap is the congestion window as an integer packet bound (≥ 1 so the
// window can never deadlock shut).
func (ps *peerState) cwndCap() int {
	n := int(ps.cwnd)
	if n < 1 {
		n = 1
	}
	if n > windowSize {
		n = windowSize
	}
	return n
}

// ccGrow credits n newly acknowledged packets to the congestion window:
// slow start (one packet per acked packet) below ssthresh, additive
// increase (~one packet per cwnd of acks, i.e. per RTT) above it, clamped
// to the ring size — the ring IS the BDP ceiling.
func (ps *peerState) ccGrow(n int) {
	for i := 0; i < n; i++ {
		if ps.cwnd < ps.ssthresh {
			ps.cwnd++
		} else {
			ps.cwnd += 1 / ps.cwnd
		}
	}
	if ps.cwnd > windowSize {
		ps.cwnd = windowSize
	}
}

// ccDecrease applies one multiplicative decrease, NewReno-gated: signals
// landing before ackedTo passes the flight outstanding at the previous
// decrease are the same congestion event and are absorbed. collapse
// distinguishes an RTO expiry (the flight is presumed gone — restart from
// minCwnd) from an ECN echo or dup-ACK loss (the network is still
// delivering — keep half the window). Reports whether a decrease happened.
func (ps *peerState) ccDecrease(collapse bool) bool {
	if !seqLE(ps.ccRecover, ps.ackedTo) {
		return false
	}
	ps.ssthresh = ps.cwnd / 2
	if ps.ssthresh < minCwnd {
		ps.ssthresh = minCwnd
	}
	if collapse {
		ps.cwnd = minCwnd
	} else {
		ps.cwnd = ps.ssthresh
	}
	ps.ccRecover = ps.nextSeq - 1
	ps.dupAcks = 0
	return true
}

// pending is one ring slot: an in-window packet. refs counts reasons the
// wire buffer must stay alive: 1 for window residency (inUse) plus 1 per
// transmission currently handed to the inner transport. Increments happen
// only under the peer's entry lock while the window reference is still held
// (so refs never revives from zero); the final decrement — wherever it
// lands — recycles the buffer without needing any lock. Because the slot
// outlives the packet (the ring is reused), every releaseRef passes the
// payload it captured while it still held a reference: reading pd.payload
// after the decrement could observe the slot's next occupant.
//
// A slot is reusable only when inUse is false AND refs has drained to 0 —
// a lingering transmission reference (a retransmission in flight when the
// ack landed) briefly blocks reuse, which SendTo treats as a full window.
type pending struct {
	payload  []byte
	lastSent time.Time
	seq      uint32
	retries  int
	inUse    bool
	refs     atomic.Int32
}

// hashAddr is the table's shard hash: FNV-1a over the address, the same
// discipline (and therefore the same spread) as the core placement workers.
func hashAddr(a transport.Addr) uint32 {
	h := peertab.HashString(peertab.Seed(), a.Node)
	return peertab.HashUint32(h, uint32(a.Port))
}

// New wraps inner with reliability using default Config. The Endpoint owns
// inner and closes it.
func New(inner transport.Datagram) *Endpoint { return NewConfig(inner, Config{}) }

// NewConfig wraps inner with reliability under an explicit peer-table
// policy.
func NewConfig(inner transport.Datagram, cfg Config) *Endpoint {
	e := &Endpoint{
		inner:   inner,
		cfg:     cfg,
		pool:    nio.NewPool(inner.MaxDatagram()),
		ackPool: nio.NewPool(ackLen),
		tab: peertab.New[transport.Addr, peerState](hashAddr, peertab.Options{
			Shards:   cfg.Shards,
			Capacity: cfg.MaxPeers,
		}),
		wheel:         peertab.NewWheel[transport.Addr](wheelSlots, tickInterval),
		inbox:         make(chan message, 1024),
		done:          make(chan struct{}),
		retransmits:   telemetry.Default.Counter("diwarp_rudp_retransmits_total"),
		rtoExpired:    telemetry.Default.Counter("diwarp_rudp_rto_expired_total"),
		ackSendFail:   telemetry.Default.Counter("diwarp_rudp_ack_send_fail_total"),
		dataSendFail:  telemetry.Default.Counter("diwarp_rudp_retransmit_send_fail_total"),
		crcFail:       telemetry.Default.Counter("diwarp_rudp_crc_fail_total"),
		windowDrops:   telemetry.Default.Counter("diwarp_rudp_window_drops_total"),
		evictions:     telemetry.Default.Counter("diwarp_rudp_peer_evictions_total"),
		epochMismatch: telemetry.Default.Counter("diwarp_rudp_epoch_mismatch_total"),
		rtt:           telemetry.Default.Histogram("diwarp_rudp_rtt_microseconds"),
		ccCwnd:        telemetry.Default.Gauge("diwarp_rudp_cc_cwnd"),
		ccFastRexmit:  telemetry.Default.Counter("diwarp_rudp_cc_fast_retransmits_total"),
		ccSpurious:    telemetry.Default.Counter("diwarp_rudp_cc_spurious_rexmits_total"),
		ccEcnMarks:    telemetry.Default.Counter("diwarp_rudp_cc_ecn_marks_total"),
		ccMDEvents:    telemetry.Default.Counter("diwarp_rudp_cc_md_events_total"),
	}
	e.ccCwnd.Set(initialCwnd)
	e.wg.Add(2)
	go e.recvLoop()
	go e.retransmitLoop()
	return e
}

// initPeer initializes a freshly admitted peer's state; peertab runs it
// before the entry is visible to anyone else.
func initPeer(ent *peerEntry) {
	ent.V = peerState{
		ooo:      make(map[uint32][]byte),
		nextSeq:  1,
		expected: 1,
		sendWait: make(chan struct{}, 1),
		txEpoch:  byte(rand.Int()),
		wheelIdx: -1,
		cwnd:     initialCwnd,
		ssthresh: windowSize,
	}
}

// lockPeer returns the peer's entry locked and alive, creating it if
// absent. The only error is table admission (peertab.ErrCapacity).
func (e *Endpoint) lockPeer(a transport.Addr) (*peerEntry, error) {
	ent, _, err := e.tab.LockOrCreate(a, initPeer)
	return ent, err
}

// evictEntry tears a peer out of the table (idempotent, pointer-exact).
// The caller must NOT hold the entry lock and must have already released
// the peer's window and wheel state.
func (e *Endpoint) evictEntry(ent *peerEntry) {
	if e.tab.EvictEntry(ent) {
		e.evictions.Inc()
	}
}

// releaseRef drops one reference from a pending slot and recycles the wire
// buffer when the count drains. payload is the caller's capture of the
// slot's buffer, taken while the caller still held a reference — the slot
// itself may be re-occupied the instant refs reaches 0.
func (e *Endpoint) releaseRef(pd *pending, payload []byte) {
	if pd.refs.Add(-1) == 0 {
		e.pool.Put(payload)
	}
}

// releaseWindow empties the peer's send window, dropping each packet's
// window reference and waking any blocked sender. Caller holds the entry
// lock. Also disarms the retransmit wheel — a peer with no window has no
// deadline, and an evicted peer must not leak its wheel filing.
func (e *Endpoint) releaseWindow(ent *peerEntry) {
	ps := &ent.V
	for i := range ps.wnd {
		pd := &ps.wnd[i]
		if !pd.inUse {
			continue
		}
		payload := pd.payload
		pd.inUse, pd.payload = false, nil
		ps.unackedN--
		e.releaseRef(pd, payload)
	}
	if ps.wheelIdx >= 0 {
		e.wheel.Disarm(ent.Key, ps.wheelIdx)
		ps.wheelIdx = -1
	}
	select {
	case ps.sendWait <- struct{}{}:
	default:
	}
}

// seqLE reports a ≤ b in wraparound-aware serial arithmetic.
func seqLE(a, b uint32) bool { return int32(b-a) >= 0 }

// IsAckPacket reports whether a wire packet is a rudp ACK — exported so a
// fault-injection layer below can target the reverse path (ACK blackholes)
// without re-deriving the wire format.
func IsAckPacket(p []byte) bool { return len(p) == ackLen && p[0]&typeMask == typeAck }

// MarkCongestion sets the ECN congestion-experienced bit on a rudp DATA
// frame in place, re-stamping the CRC trailer (the header is control plane:
// a simulated switch may rewrite it, but the receiver verifies the CRC
// before the type byte, so the mark must be covered or the frame reads as
// corrupt). Reports whether p was a markable DATA frame; ACKs and foreign
// packets are left untouched. Exported as the Marker hook for simnet and
// faultnet — the layers playing the ECN-capable switch. The caller must own
// p exclusively (its private copy of the frame): marking a buffer the
// sender retains for retransmission would race with the resend path.
func MarkCongestion(p []byte) bool {
	if len(p) < headerLen+crcx.Size || p[0]&typeMask != typeData {
		return false
	}
	p[0] |= flagECN
	body := p[:len(p)-crcx.Size]
	// Appending to the truncated slice rewrites the trailer bytes in place:
	// body's capacity still spans p's backing array.
	nio.PutU32(body, crcx.Checksum(body))
	return true
}

// admitEpoch checks an inbound packet's epoch against the conversation and
// reports whether processing may continue. Caller holds the entry lock.
//
// A mismatch means the peer's conversation state was rebuilt (process
// restart, or eviction-and-retry on its side). With sends outstanding, the
// conversation's fate is ambiguous — some packets the old incarnation
// SACKed may never have been delivered — so the peer is declared dead and
// the error surfaces instead of silently losing data. With nothing
// outstanding, a conversation-start DATA (small seq) adopts the new
// incarnation in place, clearing receive state so stale out-of-order
// buffers cannot leak into the new conversation; anything else (stale
// stragglers, orphan ACKs) is dropped.
func (e *Endpoint) admitEpoch(ent *peerEntry, epoch byte, isData bool, seq uint32) bool {
	ps := &ent.V
	if !ps.rxBound {
		ps.rxBound, ps.rxEpoch = true, epoch
		return true
	}
	if ps.rxEpoch == epoch {
		return true
	}
	e.epochMismatch.Inc()
	if ps.unackedN > 0 {
		if ps.dead == nil {
			ps.dead = fmt.Errorf("%w: %s restarted (epoch %d -> %d)", ErrPeerDead, ent.Key, ps.rxEpoch, epoch)
			e.releaseWindow(ent)
		}
		return false
	}
	if isData && seq-1 < acceptWindow {
		ps.rxEpoch = epoch
		ps.expected = 1
		clear(ps.ooo)
		ps.nextSeq, ps.ackedTo = 1, 0
		ps.srtt, ps.rttvar, ps.backoff = 0, 0, 0
		ps.cwnd, ps.ssthresh = initialCwnd, windowSize
		ps.ccRecover, ps.dupAcks, ps.ecnEcho = 0, 0, false
		return true
	}
	return false
}

// SendTo implements transport.Datagram. It blocks while the peer's send
// window is full and returns ErrPeerDead if the peer stops acknowledging —
// in which case the peer's state is evicted, so the next SendTo to the same
// address starts a fresh conversation. With Config.MaxPeers set it returns
// peertab.ErrCapacity for a new peer that does not fit.
func (e *Endpoint) SendTo(p []byte, to transport.Addr) error {
	if len(p) > e.MaxDatagram() {
		return transport.ErrTooLarge
	}
	// One timer serves every blocked-wait iteration of this call (see
	// waitSendSlot); nil until the window first blocks, so the fast path
	// never allocates one.
	var tm *time.Timer
	defer func() {
		if tm != nil {
			tm.Stop()
		}
	}()
	for {
		if e.closed.Load() {
			return transport.ErrClosed
		}
		ent, err := e.lockPeer(to)
		if err != nil {
			return err
		}
		ps := &ent.V
		if ps.dead != nil {
			err := ps.dead
			ent.Unlock()
			e.evictEntry(ent)
			return err
		}
		// The next seq's ring slot is free exactly when seq-windowSize has
		// been acked (seqs are consecutive), so slot occupancy is the window
		// check. refs must also have drained: a retransmission of the old
		// occupant may still be in flight holding the slot's counter. On top
		// of the ring bound, unackedN must fit the congestion window — the
		// BDP-scaled dynamic cap — unless the endpoint runs as the go-back-N
		// baseline.
		pd := &ps.wnd[ps.nextSeq&(windowSize-1)]
		if !pd.inUse && pd.refs.Load() == 0 &&
			(e.cfg.GoBackN || ps.unackedN < ps.cwndCap()) {
			now := time.Now()
			seq := ps.nextSeq
			ps.nextSeq++
			buf := e.pool.Get()
			buf = append(buf, typeData, ps.txEpoch)
			buf = nio.PutU32(buf, seq)
			buf = append(buf, p...)
			buf = nio.PutU32(buf, crcx.Checksum(buf))
			pd.payload, pd.lastSent, pd.seq, pd.retries, pd.inUse = buf, now, seq, 0, true
			pd.refs.Store(2) // window residency + the transmission below
			ps.unackedN++
			if ps.wheelIdx < 0 {
				ps.wheelIdx = e.wheel.Arm(to, now.Add(ps.curRTO()))
			}
			ent.Touch(now.UnixNano())
			ent.Unlock()
			err := e.inner.SendTo(buf, to)
			e.releaseRef(pd, buf)
			return err
		}
		wait := ps.sendWait
		ent.Unlock()
		var ok bool
		if tm, ok = e.waitSendSlot(wait, tm); !ok {
			return transport.ErrClosed
		}
	}
}

// waitSendSlot parks a blocked sender until window space is pulsed, the
// endpoint closes (ok=false), or a re-check interval passes (space may have
// been freed without a pulse). The timer is reused across iterations of one
// SendTo — the historical time.After here allocated a fresh runtime timer
// every loop, garbage proportional to time spent blocked. tm is nil on the
// first block; the (possibly just-created) timer is returned for the next
// iteration and is either drained here or stopped by SendTo's defer.
func (e *Endpoint) waitSendSlot(wait chan struct{}, tm *time.Timer) (*time.Timer, bool) {
	if tm == nil {
		tm = time.NewTimer(tickInterval * 4)
	} else {
		// Pre-1.23 timer discipline: the channel must be drained before
		// Reset, and the select below guarantees it was not already.
		if !tm.Stop() {
			select {
			case <-tm.C:
			default:
			}
		}
		tm.Reset(tickInterval * 4)
	}
	select {
	case <-wait:
	case <-e.done:
		return tm, false
	case <-tm.C:
	}
	return tm, true
}

// Recv implements transport.Datagram, returning the next in-order message
// from any peer.
func (e *Endpoint) Recv(timeout time.Duration) ([]byte, transport.Addr, error) {
	// Fast path: pending delivery needs no timer.
	select {
	case m := <-e.inbox:
		return m.payload, m.from, nil
	default:
	}
	var tch <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tch = t.C
	}
	select {
	case m := <-e.inbox:
		return m.payload, m.from, nil
	case <-tch:
		return nil, transport.Addr{}, transport.ErrTimeout
	case <-e.done:
		// Drain anything already delivered before the close.
		select {
		case m := <-e.inbox:
			return m.payload, m.from, nil
		default:
			return nil, transport.Addr{}, transport.ErrClosed
		}
	}
}

// recvLoop dispatches incoming DATA and ACK packets. The CRC trailer is
// checked before anything else: a corrupt header is indistinguishable from
// a hostile one, and acting on it corrupts protocol state (see the wire
// format comment), so the packet is dropped and recovered as a loss.
func (e *Endpoint) recvLoop() {
	defer e.wg.Done()
	recycler, _ := e.inner.(transport.Recycler)
	for {
		pkt, from, err := e.inner.Recv(0)
		if err != nil {
			return // endpoint closed underneath us
		}
		if len(pkt) >= headerLen+crcx.Size {
			body := pkt[:len(pkt)-crcx.Size]
			if crcx.Checksum(body) != nio.U32(pkt[len(body):]) {
				e.crcFail.Inc()
				telemetry.DefaultTrace.Record(telemetry.EvCRCFail, telemetry.PeerToken(from), len(pkt), 0)
			} else {
				switch body[0] & typeMask {
				case typeData:
					e.handleData(body, from)
				case typeAck:
					if len(body) >= ackBodyLen {
						e.handleAck(body, from)
					}
				}
			}
		}
		// Both handlers copy what they keep; the buffer can be recycled.
		if recycler != nil {
			recycler.Recycle(pkt)
		}
	}
}

func (e *Endpoint) handleData(pkt []byte, from transport.Addr) {
	seq := nio.U32(pkt[2:])
	payload := pkt[headerLen:]

	ent, err := e.lockPeer(from)
	if err != nil {
		// Table at capacity: the stranger's packet is dropped exactly like
		// a loss (peertab counts the rejection); admitted peers continue.
		return
	}
	ps := &ent.V
	if !e.admitEpoch(ent, pkt[1], true, seq) {
		ent.Unlock()
		return
	}
	if pkt[0]&flagECN != 0 && !e.cfg.GoBackN {
		// Congestion-experienced mark from the network below: latch the
		// echo so the ACK cut below carries it back to the sender.
		e.ccEcnMarks.Inc()
		ps.ecnEcho = true
	}
	var deliverables []message
	switch {
	case seq-ps.expected < acceptWindow:
		// In the acceptance window: buffer, then deliver the in-order
		// prefix. The subtraction is wraparound-correct, so a window that
		// straddles seq 2^32 → 0 behaves like any other.
		if _, dup := ps.ooo[seq]; !dup {
			ps.ooo[seq] = append([]byte(nil), payload...)
		} else {
			// Already buffered: the sender resent a packet we hold (or the
			// wire duplicated it) — a spurious retransmission either way.
			e.ccSpurious.Inc()
		}
		for {
			data, ok := ps.ooo[ps.expected]
			if !ok {
				break
			}
			delete(ps.ooo, ps.expected)
			deliverables = append(deliverables, message{payload: data, from: from})
			ps.expected++
		}
	case seqLE(seq, ps.expected-1):
		// Old duplicate (the sender missed our ACK): nothing to store, but
		// fall through to re-cut the cumulative ACK below. Counted spurious:
		// this packet was already delivered, so resending it moved no data.
		e.ccSpurious.Inc()
	default:
		// Beyond the window: a sane sender cannot produce this within one
		// conversation, so nothing is stored — one garbage packet must not
		// reserve unbounded reassembly state. The cumulative ACK below is
		// still sent: it is truthful, and its epoch lets a sender whose
		// conversation predates ours detect the restart immediately.
		e.windowDrops.Inc()
	}
	ack := e.buildAck(ps)
	ent.Touch(time.Now().UnixNano())
	ent.Unlock()

	// ACK first so the sender's window opens even if our inbox is full.
	// A failed ACK send is recoverable — acks are cumulative and the next
	// inbound DATA re-cuts one — but it must be counted, not swallowed.
	if err := e.inner.SendTo(ack, from); err != nil {
		e.ackSendFail.Inc()
	}
	e.ackPool.Put(ack)
	for _, m := range deliverables {
		select {
		case e.inbox <- m:
		case <-e.done:
			return
		}
	}
}

// buildAck encodes the peer's receive state: cumulative ack plus a bitmap
// of the full window of sequence numbers above it, and the latched ECN echo
// in the flag nibble. Caller holds the entry lock.
func (e *Endpoint) buildAck(ps *peerState) []byte {
	cum := ps.expected - 1
	var bitmap uint64
	// In go-back-N baseline mode only the low 32 bits are populated,
	// reproducing the seed's SACK blind spot for the A/B measurement.
	bits := uint32(sackBits)
	if e.cfg.GoBackN {
		bits = 32
	}
	for i := uint32(0); i < bits; i++ {
		if _, ok := ps.ooo[cum+1+i]; ok {
			bitmap |= 1 << i
		}
	}
	head := byte(typeAck)
	if ps.ecnEcho {
		head |= flagECN
		ps.ecnEcho = false
	}
	buf := e.ackPool.Get()
	buf = append(buf, head, ps.txEpoch)
	buf = nio.PutU32(buf, cum)
	buf = nio.PutU64(buf, bitmap)
	buf = nio.PutU32(buf, crcx.Checksum(buf))
	return buf
}

// sackHighest returns the highest sequence number the bitmap selectively
// acknowledges above cum, in wraparound arithmetic (bit i ↔ seq cum+1+i, so
// the result is correct even when the window straddles 2^32 → 0). ok is
// false when the bitmap is empty.
func sackHighest(cum uint32, bitmap uint64) (uint32, bool) {
	if bitmap == 0 {
		return 0, false
	}
	return cum + uint32(64-bits.LeadingZeros64(bitmap)), true
}

func (e *Endpoint) handleAck(pkt []byte, from transport.Addr) {
	cum := nio.U32(pkt[2:])
	bitmap := nio.U64(pkt[6:])

	now := time.Now()
	// Look up without creating: an ACK from an address we are not talking
	// to (evicted peer's stale ack, mis-delivery) must not mint state.
	ent := e.tab.Lookup(from)
	if ent == nil {
		return
	}
	ps := &ent.V
	if !e.admitEpoch(ent, pkt[1], false, 0) {
		ent.Unlock()
		return
	}
	cumBefore := ps.ackedTo
	freedN := 0  // slots this ACK released (cumulative or selective)
	sackNew := 0 // of those, released by a bitmap bit above cum
	// Walk only the live window range (ackedTo, nextSeq): unacked seqs are
	// consecutive, so everything below ackedTo's slot is long recycled and
	// everything at nextSeq and above is unsent.
	for seq := ps.ackedTo + 1; seqLE(seq, ps.nextSeq-1); seq++ {
		pd := &ps.wnd[seq&(windowSize-1)]
		if !pd.inUse || pd.seq != seq {
			continue // a SACK hole already cleared this slot
		}
		acked := seqLE(seq, cum)
		if !acked {
			// SACK offset in wraparound arithmetic: seq-cum-1 is the bit
			// index even when cum is just below 2^32 and seq just above 0.
			if d := seq - cum - 1; d < sackBits && bitmap&(1<<d) != 0 {
				acked = true
				sackNew++
			}
		}
		if !acked {
			continue
		}
		// Karn's algorithm: only first transmissions give an unambiguous
		// RTT sample — an ack after a retransmit could match either send.
		if pd.retries == 0 {
			sample := now.Sub(pd.lastSent)
			e.rtt.Observe(sample.Microseconds())
			ps.observeRTT(sample)
		}
		payload := pd.payload
		pd.inUse, pd.payload = false, nil
		ps.unackedN--
		e.releaseRef(pd, payload)
		freedN++
	}
	// Advance the contiguous-acked floor to the cumulative ack (never past
	// what was actually sent: a garbage cum must not detach the floor from
	// the window, and SACKed seqs above it stay holes until cum catches up).
	if seqLE(ps.ackedTo+1, cum) && seqLE(cum, ps.nextSeq-1) {
		ps.ackedTo = cum
	}
	if freedN > 0 {
		// Acknowledged progress ends the backoff regime (Karn): the path is
		// passing traffic again, so retransmission timing restarts from the
		// current RTT estimate instead of the escalated timeout.
		ps.backoff = 0
	}
	// Congestion control + fast retransmit (skipped in the go-back-N
	// baseline). Resends are collected under the lock and sent after it.
	type resend struct {
		pd      *pending
		payload []byte
		seq     uint32
	}
	var rs [windowSize]resend
	nrs := 0
	if !e.cfg.GoBackN {
		ps.ccGrow(freedN)
		if pkt[0]&flagECN != 0 {
			// The receiver saw a congestion mark within the last RTT:
			// multiplicative decrease, once per congestion event.
			if ps.ccDecrease(false) {
				e.ccMDEvents.Inc()
			}
		}
		if ps.ackedTo != cumBefore {
			ps.dupAcks = 0
		} else if sackNew > 0 {
			// The cumulative floor is stuck but the receiver keeps
			// acknowledging new data above it — the classic duplicate-ACK
			// shape. (A byte-identical wire duplicate frees nothing and is
			// ignored, so dup counting survives faultnet's dup leg.)
			ps.dupAcks++
			high, haveHigh := sackHighest(cum, bitmap)
			if ps.dupAcks >= dupAckThresh && haveHigh && seqLE(ps.ccRecover, ps.ackedTo) {
				// Fast retransmit: everything still unacked below the
				// highest SACKed seq has had dupAckThresh chances to be
				// acknowledged and was not — infer loss and resend exactly
				// those holes, one RTT after the loss instead of one RTO.
				// The triggering ACK's own bitmap bounds the sweep: buildAck
				// scans the receiver's whole out-of-order map, so the bitmap
				// is cumulative and no cross-ACK maximum needs tracking.
				for seq := ps.ackedTo + 1; seqLE(seq+1, high); seq++ {
					pd := &ps.wnd[seq&(windowSize-1)]
					if !pd.inUse || pd.seq != seq {
						continue
					}
					pd.retries++ // Karn: its next ack is ambiguous
					pd.lastSent = now
					pd.refs.Add(1)
					rs[nrs] = resend{pd: pd, payload: pd.payload, seq: seq}
					nrs++
				}
				if ps.ccDecrease(false) {
					e.ccMDEvents.Inc()
				}
				ps.dupAcks = 0
			}
		}
		e.ccCwnd.Set(int64(ps.cwnd))
	}
	if ps.unackedN == 0 && ps.wheelIdx >= 0 {
		e.wheel.Disarm(from, ps.wheelIdx)
		ps.wheelIdx = -1
	}
	wait := ps.sendWait
	ent.Touch(now.UnixNano())
	ent.Unlock()
	for _, r := range rs[:nrs] {
		e.retransmits.Inc()
		e.ccFastRexmit.Inc()
		telemetry.DefaultTrace.Record(telemetry.EvRetransmit, telemetry.PeerToken(from), len(r.payload), r.seq)
		if err := e.inner.SendTo(r.payload, from); err != nil {
			e.dataSendFail.Inc()
		}
		e.releaseRef(r.pd, r.payload)
	}
	if freedN > 0 {
		select {
		case wait <- struct{}{}:
		default:
		}
	}
}

// retransmitLoop drives the timer wheel: each tick pops only the peers
// whose RTO deadline arrived and processes each under its own entry lock —
// no global scan, no global mutex. A peer that stops acknowledging is
// declared dead after maxRetries; death is contained to the peer (its
// window is released, its wheel filing removed) and its state awaits
// eviction by the next SendTo/Flush that observes the error. The loop also
// owns the idle-eviction sweep when Config.IdleEvict is set.
func (e *Endpoint) retransmitLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(tickInterval)
	defer ticker.Stop()
	var fired []peertab.Fired[transport.Addr]
	ticks := 0
	for {
		select {
		case <-e.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		fired = e.wheel.Advance(now, fired[:0])
		for _, f := range fired {
			e.tickPeer(f, now)
		}
		if ticks++; e.cfg.IdleEvict > 0 && ticks%int(idleSweepEvery) == 0 {
			n := e.tab.EvictIdle(e.cfg.IdleEvict, func(ent *peerEntry) bool {
				if ent.V.unackedN > 0 {
					return false // still awaiting acks: not idle, just slow
				}
				// No window → no wheel filing to disarm beyond safety.
				if ent.V.wheelIdx >= 0 {
					e.wheel.Disarm(ent.Key, ent.V.wheelIdx)
					ent.V.wheelIdx = -1
				}
				return true
			})
			e.evictions.Add(int64(n))
		}
	}
}

// tickPeer handles one wheel firing: retransmit the peer's due packets,
// escalate retries, and re-file the earliest remaining deadline.
func (e *Endpoint) tickPeer(f peertab.Fired[transport.Addr], now time.Time) {
	ent := e.tab.Lookup(f.Key)
	if ent == nil {
		return // evicted between pop and lock; its filing died with it
	}
	ps := &ent.V
	if ps.wheelIdx != f.Slot {
		// The peer disarmed (all acked) or re-armed into another slot
		// between the pop and this lock; the firing is stale.
		ent.Unlock()
		return
	}
	ps.wheelIdx = -1
	if ps.dead != nil {
		ent.Unlock()
		return
	}
	rto := ps.curRTO()
	type resend struct {
		pd      *pending
		payload []byte
		seq     uint32
	}
	// Stack array, not append: retransmit bursts must not allocate.
	var rs [windowSize]resend
	nrs := 0
	bumped := false
	var minLastSent time.Time
	for seq := ps.ackedTo + 1; seqLE(seq, ps.nextSeq-1); seq++ {
		pd := &ps.wnd[seq&(windowSize-1)]
		if !pd.inUse || pd.seq != seq {
			continue
		}
		if now.Sub(pd.lastSent) < rto {
			if minLastSent.IsZero() || pd.lastSent.Before(minLastSent) {
				minLastSent = pd.lastSent
			}
			continue
		}
		pd.retries++
		e.rtoExpired.Inc()
		if pd.retries > maxRetries {
			ps.dead = fmt.Errorf("%w: %s", ErrPeerDead, ent.Key)
			break
		}
		pd.lastSent = now
		if !bumped && ps.backoff < maxBackoff {
			// One doubling per expiry event, not per packet: a whole
			// window expiring together is one timeout.
			ps.backoff++
			bumped = true
		}
		// Hold a transmission reference so a concurrent ack cannot recycle
		// (and another sender overwrite) the buffer while the
		// retransmission reads it.
		pd.refs.Add(1)
		rs[nrs] = resend{pd: pd, payload: pd.payload, seq: pd.seq}
		nrs++
		if minLastSent.IsZero() || now.Before(minLastSent) {
			minLastSent = now
		}
	}
	if nrs > 0 && !e.cfg.GoBackN {
		// An RTO expiry means the congestion signal chain (SACKs, dup ACKs,
		// ECN echoes) went silent for a whole timeout — assume the flight is
		// gone and collapse to minCwnd rather than merely halving.
		if ps.ccDecrease(true) {
			e.ccMDEvents.Inc()
		}
		e.ccCwnd.Set(int64(ps.cwnd))
	}
	var wake chan struct{}
	switch {
	case ps.dead != nil:
		// Release the whole window now. Without this the buffers (and any
		// sender blocked on window space) would be wedged until eviction,
		// and Close could not drain the pool.
		e.releaseWindow(ent)
		wake = ps.sendWait
	case ps.unackedN > 0:
		// Re-file at the earliest remaining deadline (backoff may have
		// grown the RTO, so recompute).
		ps.wheelIdx = e.wheel.Arm(ent.Key, minLastSent.Add(ps.curRTO()))
	}
	ent.Unlock()
	if wake != nil {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
	for _, r := range rs[:nrs] {
		// A failed retransmission behaves exactly like a lost one: the
		// next RTO tick retries it. Count it so a dead transport shows.
		e.retransmits.Inc()
		telemetry.DefaultTrace.Record(telemetry.EvRetransmit, telemetry.PeerToken(f.Key), len(r.payload), r.seq)
		if err := e.inner.SendTo(r.payload, f.Key); err != nil {
			e.dataSendFail.Inc()
		}
		e.releaseRef(r.pd, r.payload)
	}
}

// Flush blocks until every sent message has been acknowledged, or the
// timeout passes (returning transport.ErrTimeout), or a peer dies
// (returning its ErrPeerDead and evicting it), or the endpoint is closed
// (returning transport.ErrClosed — a Flush racing Close must resolve, not
// spin out its full timeout against loops that no longer run).
func (e *Endpoint) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if e.closed.Load() {
			return transport.ErrClosed
		}
		outstanding := 0
		var deadErr error
		var deadEnts []*peerEntry
		e.tab.Range(func(ent *peerEntry) bool {
			ent.Lock()
			if !ent.Gone() {
				if ent.V.dead != nil {
					if deadErr == nil {
						deadErr = ent.V.dead
					}
					deadEnts = append(deadEnts, ent)
				} else {
					outstanding += ent.V.unackedN
				}
			}
			ent.Unlock()
			return true
		})
		for _, ent := range deadEnts {
			e.evictEntry(ent)
		}
		if deadErr != nil {
			return deadErr
		}
		if outstanding == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return transport.ErrTimeout
		}
		select {
		case <-e.done:
			return transport.ErrClosed
		case <-time.After(tickInterval):
		}
	}
}

// Snapshot is a point-in-time view of the endpoint's reliability counters.
type Snapshot struct {
	// Retransmits counts DATA packets actually resent, whether by RTO
	// expiry or by dup-ACK fast retransmit.
	Retransmits int64
	// RTOExpirations counts RTO expiry events, including the final expiry
	// that declares a peer dead (so RTOExpirations + FastRetransmits can
	// exceed Retransmits by one per failed peer, and equals it otherwise).
	RTOExpirations int64
	// AckSendFailures counts ACK sends the inner transport rejected.
	AckSendFailures int64
	// RetransmitSendFailures counts retransmission sends the inner
	// transport rejected.
	RetransmitSendFailures int64
	// CRCFailures counts inbound packets dropped by the header CRC check.
	CRCFailures int64
	// WindowDrops counts DATA packets beyond the acceptance window.
	WindowDrops int64
	// PeerEvictions counts peers whose state was torn down (dead peers on
	// observation, and idle peers under Config.IdleEvict).
	PeerEvictions int64
	// EpochMismatches counts packets carrying a different conversation
	// incarnation than the one bound — restart detections and stragglers.
	EpochMismatches int64
	// FastRetransmits counts DATA packets resent by the dup-ACK fast
	// retransmit path (also included in Retransmits).
	FastRetransmits int64
	// SpuriousRexmits counts DATA arrivals this endpoint had already
	// delivered or buffered — each is a packet the peer resent for nothing
	// (or a wire duplicate). The counter that proves the SACK-width fix.
	SpuriousRexmits int64
	// ECNMarks counts inbound DATA carrying the congestion-experienced
	// mark (observed at the receiver; the sender sees them as MD events).
	ECNMarks int64
	// MDEvents counts multiplicative decreases of the congestion window —
	// one per congestion event (ECN echo, dup-ACK loss, or RTO collapse).
	MDEvents int64
	// Cwnd is the most recently recorded congestion window, in packets.
	Cwnd int64
}

// Snapshot reports this endpoint's reliability counters. The values are
// exact for this endpoint; the process-wide telemetry registry additionally
// aggregates them across endpoints under the diwarp_rudp_* metric names.
func (e *Endpoint) Snapshot() Snapshot {
	return Snapshot{
		Retransmits:            e.retransmits.Load(),
		RTOExpirations:         e.rtoExpired.Load(),
		AckSendFailures:        e.ackSendFail.Load(),
		RetransmitSendFailures: e.dataSendFail.Load(),
		CRCFailures:            e.crcFail.Load(),
		WindowDrops:            e.windowDrops.Load(),
		PeerEvictions:          e.evictions.Load(),
		EpochMismatches:        e.epochMismatch.Load(),
		FastRetransmits:        e.ccFastRexmit.Load(),
		SpuriousRexmits:        e.ccSpurious.Load(),
		ECNMarks:               e.ccEcnMarks.Load(),
		MDEvents:               e.ccMDEvents.Load(),
		Cwnd:                   e.ccCwnd.Load(),
	}
}

// SendErrors reports how many ACK or retransmission sends the inner
// transport has rejected. The protocol recovers from each individually; a
// growing count means the transport below is unhealthy.
func (e *Endpoint) SendErrors() uint64 {
	return uint64(e.ackSendFail.Load() + e.dataSendFail.Load())
}

// PoolOutstanding reports how many DATA wire buffers are currently checked
// out of the send pool — the chaos harness's leak invariant: at quiesce
// (everything flushed or every peer evicted, endpoint closed) it must be 0.
func (e *Endpoint) PoolOutstanding() int64 { return e.pool.Outstanding() }

// Peers reports the current peer-table occupancy.
func (e *Endpoint) Peers() int { return e.tab.Len() }

// PeerStats reports the peer table's shard-occupancy summary.
func (e *Endpoint) PeerStats() peertab.Stats { return e.tab.Stats() }

// ArmedTimers reports how many peers hold a live retransmit-wheel filing —
// the eviction-leak invariant: at quiesce it must equal the number of
// peers with unacked packets (0 after a clean Flush/Close).
func (e *Endpoint) ArmedTimers() int { return e.wheel.Armed() }

// LocalAddr implements transport.Datagram.
func (e *Endpoint) LocalAddr() transport.Addr { return e.inner.LocalAddr() }

// MaxDatagram implements transport.Datagram, reserving header and CRC
// trailer space.
func (e *Endpoint) MaxDatagram() int { return e.inner.MaxDatagram() - headerLen - crcx.Size }

// PathMTU implements transport.Datagram.
func (e *Endpoint) PathMTU() int { return e.inner.PathMTU() }

// Close implements transport.Datagram, closing the underlying endpoint and
// recycling every wire buffer still sitting in a send window, so a closed
// endpoint leaves its pool balanced even when peers never acked.
func (e *Endpoint) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(e.done)
	err := e.inner.Close()
	e.wg.Wait()
	// Loops are stopped: nothing takes new transmission references.
	// Buffers still referenced by a SendTo mid-inner-send are recycled by
	// its releaseRef once the window reference is dropped here.
	e.tab.Clear(func(ent *peerEntry) {
		e.releaseWindow(ent)
	})
	return err
}
