// Package rudp implements a reliable datagram LLP on top of any unreliable
// transport.Datagram — the "reliable UDP" option the paper repeatedly
// invokes: "applications that currently use TCP can also be supported via a
// reliable UDP implementation that provides the order and reliability
// guarantees they require" (§IV.B), and "data loss ... can be supplemented
// by a reliability mechanism (like reliable UDP) for those applications that
// cannot deal with data loss" (§I).
//
// The protocol is deliberately lightweight compared to TCP — the whole point
// of the paper's RD mode: per-peer sliding windows with selective
// acknowledgement, adaptive retransmission (RFC 6298 RTT estimation with
// Karn-correct sampling and backoff), exactly-once in-order delivery, and
// nothing else (no congestion control, no byte-stream semantics, no
// connection teardown handshake). Message boundaries are preserved, so the
// DDP layer above needs no MPA markers.
//
// Wire format (big-endian):
//
//	DATA: | type=1 (1) | epoch (1) | seq (4) | payload ... | crc32c (4) |
//	ACK:  | type=2 (1) | epoch (1) | cumAck (4) | sack bitmap (4) | crc32c (4) |
//
// cumAck acknowledges every DATA with seq ≤ cumAck; sack bit i acknowledges
// seq cumAck+1+i, letting the sender skip retransmitting packets that
// arrived out of order. The CRC32C trailer covers everything before it.
// It exists because this header is control plane: DDP's own CRC protects
// the payload end-to-end, but a bit flipped in cumAck would make the sender
// drop packets the receiver never got (silent loss), and a flipped seq
// would poison the receiver's reassembly state. Corrupt packets are
// discarded here and recovered exactly like losses.
//
// The epoch byte identifies one incarnation of the sender's conversation
// state: it is drawn at random when a peer's state is created and stamped
// on every packet of that conversation. Without it, a crash/restart on
// either side silently aliases two different conversations onto one
// sequence space — a restarted receiver SACKs sequence numbers it never
// delivered (silent loss), and stale out-of-order buffers can be delivered
// into the wrong conversation. An epoch mismatch with sends outstanding
// surfaces as ErrPeerDead; a mismatch on a conversation-start DATA adopts
// the new incarnation in place. A 1-in-256 collision between successive
// incarnations evades detection; that residual risk is accepted for a
// one-byte header cost.
package rudp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/crcx"
	"repro/internal/nio"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

const (
	typeData = 1
	typeAck  = 2

	headerLen  = 6                      // DATA header before the payload
	ackBodyLen = 10                     // ACK fields before the trailer
	ackLen     = ackBodyLen + crcx.Size // full ACK wire size
	windowSize = 64
	// acceptWindow bounds how far past the in-order point a DATA seq may be
	// buffered. The sender never has more than windowSize unacked, so any
	// farther seq is garbage (or an un-evicted peer's past life); buffering
	// it would wedge reassembly and leak the out-of-order map.
	acceptWindow = windowSize
	maxRetries   = 12
	initialRTO   = 10 * time.Millisecond
	maxRTO       = 200 * time.Millisecond
	maxBackoff   = 6 // cap on Karn doublings; rto is clamped to maxRTO anyway
	tickInterval = 2 * time.Millisecond
)

// ErrPeerDead reports that a peer stopped acknowledging after maxRetries
// retransmissions of some packet. The failure is per-peer: the first SendTo
// or Flush that observes it returns this error and evicts the peer's state,
// so a restarted peer (fresh sequence space) can resume on the same address
// while traffic to other peers continues unaffected.
var ErrPeerDead = errors.New("rudp: peer unreachable (retries exhausted)")

// Endpoint is a reliable datagram endpoint. It implements
// transport.Datagram, delivering every message exactly once and in per-peer
// order, so it can be slotted under the iWARP stack wherever a raw UDP
// endpoint can.
type Endpoint struct {
	inner transport.Datagram

	// pool recycles DATA wire buffers (header + payload + CRC). A buffer
	// lives from SendTo until the packet is acknowledged AND no transmission
	// is in flight (pending.inFlight tracks sends that have been handed to
	// the inner transport but not yet returned).
	pool *nio.Pool
	// ackPool recycles the small ACK wire buffers, which are released as
	// soon as the inner SendTo returns (the transport does not retain them).
	ackPool *nio.Pool

	mu     sync.Mutex
	peers  map[transport.Addr]*peerState
	closed bool

	// Reliability counters are telemetry-registry handles (DESIGN.md §4.6).
	// ackSendFail and dataSendFail count inner-transport send failures on
	// the paths that have no caller to return an error to (ACKs from the
	// receive loop, retransmissions from the timer loop). The protocol
	// already tolerates the loss — a dropped ACK is re-cut from cumulative
	// state, a dropped retransmission fires again at the next RTO — but a
	// persistently failing transport must be visible rather than silent.
	retransmits   *telemetry.Counter   // DATA packets resent after RTO expiry
	rtoExpired    *telemetry.Counter   // RTO expiry events (includes final, fatal one)
	ackSendFail   *telemetry.Counter   // ACK sends the inner transport rejected
	dataSendFail  *telemetry.Counter   // retransmission sends the inner transport rejected
	crcFail       *telemetry.Counter   // inbound packets dropped by the header CRC
	windowDrops   *telemetry.Counter   // DATA beyond the acceptance window, not buffered
	evictions     *telemetry.Counter   // dead peers evicted on observation
	epochMismatch *telemetry.Counter   // packets from a different conversation incarnation
	rtt           *telemetry.Histogram // ack round-trip, µs (Karn: first transmissions only)

	inbox chan message
	done  chan struct{}
	wg    sync.WaitGroup
}

type message struct {
	payload []byte
	from    transport.Addr
}

// peerState tracks one remote endpoint's send and receive windows.
type peerState struct {
	// Send side.
	nextSeq  uint32
	unacked  map[uint32]*pending
	sendWait chan struct{} // pulsed when window space frees
	dead     error         // set once retries exhaust or the peer restarts; awaits eviction

	// Incarnation tracking: txEpoch stamps every packet this conversation
	// sends; rxEpoch is the peer's epoch, bound from its first packet.
	txEpoch byte
	rxEpoch byte
	rxBound bool

	// Adaptive RTO (RFC 6298): srtt/rttvar are fed by first-transmission
	// RTT samples only (Karn), and backoff counts consecutive RTO doublings
	// since the last acknowledged progress — it MUST reset on progress, or
	// one loss burst leaves every later retransmission crawling at maxRTO.
	srtt    time.Duration
	rttvar  time.Duration
	backoff int

	// Receive side.
	expected uint32            // next in-order seq to deliver
	ooo      map[uint32][]byte // out-of-order arrivals pending delivery
}

// curRTO returns the peer's current retransmission timeout: the RFC 6298
// estimate (or initialRTO before the first sample), doubled per Karn
// backoff step, clamped to [initialRTO, maxRTO].
func (ps *peerState) curRTO() time.Duration {
	rto := initialRTO
	if ps.srtt > 0 {
		rto = ps.srtt + 4*ps.rttvar
		if rto < initialRTO {
			rto = initialRTO
		}
	}
	for i := 0; i < ps.backoff && rto < maxRTO; i++ {
		rto *= 2
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}

// observeRTT folds one first-transmission RTT sample into the estimator.
func (ps *peerState) observeRTT(sample time.Duration) {
	if ps.srtt == 0 {
		ps.srtt = sample
		ps.rttvar = sample / 2
		return
	}
	diff := ps.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	ps.rttvar = (3*ps.rttvar + diff) / 4
	ps.srtt = (7*ps.srtt + sample) / 8
}

type pending struct {
	payload  []byte
	lastSent time.Time
	retries  int
	inFlight int  // transmissions handed to inner and not yet returned (guarded by e.mu)
	acked    bool // removed from the window; recycle payload when inFlight drains
}

// New wraps inner with reliability. The Endpoint owns inner and closes it.
func New(inner transport.Datagram) *Endpoint {
	e := &Endpoint{
		inner:         inner,
		pool:          nio.NewPool(inner.MaxDatagram()),
		ackPool:       nio.NewPool(ackLen),
		peers:         make(map[transport.Addr]*peerState),
		inbox:         make(chan message, 1024),
		done:          make(chan struct{}),
		retransmits:   telemetry.Default.Counter("diwarp_rudp_retransmits_total"),
		rtoExpired:    telemetry.Default.Counter("diwarp_rudp_rto_expired_total"),
		ackSendFail:   telemetry.Default.Counter("diwarp_rudp_ack_send_fail_total"),
		dataSendFail:  telemetry.Default.Counter("diwarp_rudp_retransmit_send_fail_total"),
		crcFail:       telemetry.Default.Counter("diwarp_rudp_crc_fail_total"),
		windowDrops:   telemetry.Default.Counter("diwarp_rudp_window_drops_total"),
		evictions:     telemetry.Default.Counter("diwarp_rudp_peer_evictions_total"),
		epochMismatch: telemetry.Default.Counter("diwarp_rudp_epoch_mismatch_total"),
		rtt:           telemetry.Default.Histogram("diwarp_rudp_rtt_microseconds"),
	}
	e.wg.Add(2)
	go e.recvLoop()
	go e.retransmitLoop()
	return e
}

func (e *Endpoint) peer(a transport.Addr) *peerState {
	p, ok := e.peers[a]
	if !ok {
		p = &peerState{
			unacked:  make(map[uint32]*pending),
			ooo:      make(map[uint32][]byte),
			nextSeq:  1,
			expected: 1,
			sendWait: make(chan struct{}, 1),
			txEpoch:  byte(rand.Int()),
		}
		e.peers[a] = p
	}
	return p
}

// evict removes a dead peer's state so a restarted peer (or a fresh
// conversation) starts from clean sequence space. Caller holds e.mu; the
// unacked window was already released when the peer was declared dead.
func (e *Endpoint) evict(a transport.Addr) {
	delete(e.peers, a)
	e.evictions.Inc()
}

// seqLE reports a ≤ b in wraparound-aware serial arithmetic.
func seqLE(a, b uint32) bool { return int32(b-a) >= 0 }

// IsAckPacket reports whether a wire packet is a rudp ACK — exported so a
// fault-injection layer below can target the reverse path (ACK blackholes)
// without re-deriving the wire format.
func IsAckPacket(p []byte) bool { return len(p) == ackLen && p[0] == typeAck }

// admitEpoch checks an inbound packet's epoch against the conversation and
// reports whether processing may continue. Caller holds e.mu.
//
// A mismatch means the peer's conversation state was rebuilt (process
// restart, or eviction-and-retry on its side). With sends outstanding, the
// conversation's fate is ambiguous — some packets the old incarnation
// SACKed may never have been delivered — so the peer is declared dead and
// the error surfaces instead of silently losing data. With nothing
// outstanding, a conversation-start DATA (small seq) adopts the new
// incarnation in place, clearing receive state so stale out-of-order
// buffers cannot leak into the new conversation; anything else (stale
// stragglers, orphan ACKs) is dropped.
func (e *Endpoint) admitEpoch(ps *peerState, from transport.Addr, epoch byte, isData bool, seq uint32) bool {
	if !ps.rxBound {
		ps.rxBound, ps.rxEpoch = true, epoch
		return true
	}
	if ps.rxEpoch == epoch {
		return true
	}
	e.epochMismatch.Inc()
	if len(ps.unacked) > 0 {
		if ps.dead == nil {
			ps.dead = fmt.Errorf("%w: %s restarted (epoch %d -> %d)", ErrPeerDead, from, ps.rxEpoch, epoch)
			for s, pd := range ps.unacked {
				delete(ps.unacked, s)
				e.release(pd)
			}
			select {
			case ps.sendWait <- struct{}{}:
			default:
			}
		}
		return false
	}
	if isData && seq-1 < acceptWindow {
		ps.rxEpoch = epoch
		ps.expected = 1
		clear(ps.ooo)
		ps.nextSeq = 1
		ps.srtt, ps.rttvar, ps.backoff = 0, 0, 0
		return true
	}
	return false
}

// release marks a pending packet as out of the window and recycles its wire
// buffer once no transmission still references it. Caller holds e.mu.
func (e *Endpoint) release(pd *pending) {
	pd.acked = true
	if pd.inFlight == 0 && pd.payload != nil {
		e.pool.Put(pd.payload)
		pd.payload = nil
	}
}

// finishSends drops one in-flight reference from each pending packet, and
// recycles buffers whose packet was acknowledged while the transmission was
// on the wire.
func (e *Endpoint) finishSends(pds ...*pending) {
	e.mu.Lock()
	for _, pd := range pds {
		pd.inFlight--
		if pd.acked && pd.inFlight == 0 && pd.payload != nil {
			e.pool.Put(pd.payload)
			pd.payload = nil
		}
	}
	e.mu.Unlock()
}

// SendTo implements transport.Datagram. It blocks while the peer's send
// window is full and returns ErrPeerDead if the peer stops acknowledging —
// in which case the peer's state is evicted, so the next SendTo to the same
// address starts a fresh conversation.
func (e *Endpoint) SendTo(p []byte, to transport.Addr) error {
	if len(p) > e.MaxDatagram() {
		return transport.ErrTooLarge
	}
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return transport.ErrClosed
		}
		ps := e.peer(to)
		if ps.dead != nil {
			err := ps.dead
			e.evict(to)
			e.mu.Unlock()
			return err
		}
		if len(ps.unacked) < windowSize {
			seq := ps.nextSeq
			ps.nextSeq++
			buf := e.pool.Get()
			buf = append(buf, typeData, ps.txEpoch)
			buf = nio.PutU32(buf, seq)
			buf = append(buf, p...)
			buf = nio.PutU32(buf, crcx.Checksum(buf))
			pd := &pending{
				payload:  buf,
				lastSent: time.Now(),
				inFlight: 1,
			}
			ps.unacked[seq] = pd
			e.mu.Unlock()
			err := e.inner.SendTo(buf, to)
			e.finishSends(pd)
			return err
		}
		wait := ps.sendWait
		e.mu.Unlock()
		select {
		case <-wait:
		case <-e.done:
			return transport.ErrClosed
		case <-time.After(tickInterval * 4):
			// Re-check: space may have been freed without a pulse.
		}
	}
}

// Recv implements transport.Datagram, returning the next in-order message
// from any peer.
func (e *Endpoint) Recv(timeout time.Duration) ([]byte, transport.Addr, error) {
	// Fast path: pending delivery needs no timer.
	select {
	case m := <-e.inbox:
		return m.payload, m.from, nil
	default:
	}
	var tch <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tch = t.C
	}
	select {
	case m := <-e.inbox:
		return m.payload, m.from, nil
	case <-tch:
		return nil, transport.Addr{}, transport.ErrTimeout
	case <-e.done:
		// Drain anything already delivered before the close.
		select {
		case m := <-e.inbox:
			return m.payload, m.from, nil
		default:
			return nil, transport.Addr{}, transport.ErrClosed
		}
	}
}

// recvLoop dispatches incoming DATA and ACK packets. The CRC trailer is
// checked before anything else: a corrupt header is indistinguishable from
// a hostile one, and acting on it corrupts protocol state (see the wire
// format comment), so the packet is dropped and recovered as a loss.
func (e *Endpoint) recvLoop() {
	defer e.wg.Done()
	recycler, _ := e.inner.(transport.Recycler)
	for {
		pkt, from, err := e.inner.Recv(0)
		if err != nil {
			return // endpoint closed underneath us
		}
		if len(pkt) >= headerLen+crcx.Size {
			body := pkt[:len(pkt)-crcx.Size]
			if crcx.Checksum(body) != nio.U32(pkt[len(body):]) {
				e.crcFail.Inc()
				telemetry.DefaultTrace.Record(telemetry.EvCRCFail, telemetry.PeerToken(from), len(pkt), 0)
			} else {
				switch body[0] {
				case typeData:
					e.handleData(body, from)
				case typeAck:
					if len(body) >= ackBodyLen {
						e.handleAck(body, from)
					}
				}
			}
		}
		// Both handlers copy what they keep; the buffer can be recycled.
		if recycler != nil {
			recycler.Recycle(pkt)
		}
	}
}

func (e *Endpoint) handleData(pkt []byte, from transport.Addr) {
	seq := nio.U32(pkt[2:])
	payload := pkt[headerLen:]

	e.mu.Lock()
	ps := e.peer(from)
	if !e.admitEpoch(ps, from, pkt[1], true, seq) {
		e.mu.Unlock()
		return
	}
	var deliverables []message
	switch {
	case seq-ps.expected < acceptWindow:
		// In the acceptance window: buffer, then deliver the in-order
		// prefix. The subtraction is wraparound-correct, so a window that
		// straddles seq 2^32 → 0 behaves like any other.
		if _, dup := ps.ooo[seq]; !dup {
			ps.ooo[seq] = append([]byte(nil), payload...)
		}
		for {
			data, ok := ps.ooo[ps.expected]
			if !ok {
				break
			}
			delete(ps.ooo, ps.expected)
			deliverables = append(deliverables, message{payload: data, from: from})
			ps.expected++
		}
	case seqLE(seq, ps.expected-1):
		// Old duplicate (the sender missed our ACK): nothing to store, but
		// fall through to re-cut the cumulative ACK below.
	default:
		// Beyond the window: a sane sender cannot produce this within one
		// conversation, so nothing is stored — one garbage packet must not
		// reserve unbounded reassembly state. The cumulative ACK below is
		// still sent: it is truthful, and its epoch lets a sender whose
		// conversation predates ours detect the restart immediately.
		e.windowDrops.Inc()
	}
	ack := e.buildAck(ps)
	e.mu.Unlock()

	// ACK first so the sender's window opens even if our inbox is full.
	// A failed ACK send is recoverable — acks are cumulative and the next
	// inbound DATA re-cuts one — but it must be counted, not swallowed.
	if err := e.inner.SendTo(ack, from); err != nil {
		e.ackSendFail.Inc()
	}
	e.ackPool.Put(ack)
	for _, m := range deliverables {
		select {
		case e.inbox <- m:
		case <-e.done:
			return
		}
	}
}

// buildAck encodes the peer's receive state: cumulative ack plus a bitmap of
// the 32 sequence numbers above it. Caller holds e.mu.
func (e *Endpoint) buildAck(ps *peerState) []byte {
	cum := ps.expected - 1
	var bitmap uint32
	for i := uint32(0); i < 32; i++ {
		if _, ok := ps.ooo[cum+1+i]; ok {
			bitmap |= 1 << i
		}
	}
	buf := e.ackPool.Get()
	buf = append(buf, typeAck, ps.txEpoch)
	buf = nio.PutU32(buf, cum)
	buf = nio.PutU32(buf, bitmap)
	buf = nio.PutU32(buf, crcx.Checksum(buf))
	return buf
}

func (e *Endpoint) handleAck(pkt []byte, from transport.Addr) {
	cum := nio.U32(pkt[2:])
	bitmap := nio.U32(pkt[6:])

	now := time.Now()
	e.mu.Lock()
	// Look up without creating: an ACK from an address we are not talking
	// to (evicted peer's stale ack, mis-delivery) must not mint state.
	ps, ok := e.peers[from]
	if !ok {
		e.mu.Unlock()
		return
	}
	if !e.admitEpoch(ps, from, pkt[1], false, 0) {
		e.mu.Unlock()
		return
	}
	freed := false
	for seq, pd := range ps.unacked {
		acked := seqLE(seq, cum)
		if !acked {
			// SACK offset in wraparound arithmetic: seq-cum-1 is the bit
			// index even when cum is just below 2^32 and seq just above 0.
			if d := seq - cum - 1; d < 32 && bitmap&(1<<d) != 0 {
				acked = true
			}
		}
		if !acked {
			continue
		}
		// Karn's algorithm: only first transmissions give an unambiguous
		// RTT sample — an ack after a retransmit could match either send.
		if pd.retries == 0 {
			sample := now.Sub(pd.lastSent)
			e.rtt.Observe(sample.Microseconds())
			ps.observeRTT(sample)
		}
		delete(ps.unacked, seq)
		e.release(pd)
		freed = true
	}
	if freed {
		// Acknowledged progress ends the backoff regime (Karn): the path is
		// passing traffic again, so retransmission timing restarts from the
		// current RTT estimate instead of the escalated timeout.
		ps.backoff = 0
	}
	wait := ps.sendWait
	e.mu.Unlock()
	if freed {
		select {
		case wait <- struct{}{}:
		default:
		}
	}
}

// retransmitLoop resends unacknowledged packets whose RTO expired, with
// per-peer Karn backoff, and declares a peer dead after maxRetries. Death
// is contained to the peer: its window is released (no buffer may outlive
// the window) and its state awaits eviction by the next SendTo/Flush that
// observes the error; other peers are untouched.
func (e *Endpoint) retransmitLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(tickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		type resend struct {
			pd  *pending
			to  transport.Addr
			seq uint32
		}
		var rs []resend
		var wakes []chan struct{}
		e.mu.Lock()
		for addr, ps := range e.peers {
			if ps.dead != nil {
				continue
			}
			rto := ps.curRTO()
			bumped := false
			for seq, pd := range ps.unacked {
				if now.Sub(pd.lastSent) < rto {
					continue
				}
				pd.retries++
				e.rtoExpired.Inc()
				if pd.retries > maxRetries {
					ps.dead = fmt.Errorf("%w: %s", ErrPeerDead, addr)
					break
				}
				pd.lastSent = now
				if !bumped && ps.backoff < maxBackoff {
					// One doubling per expiry event, not per packet: a
					// whole window expiring together is one timeout.
					ps.backoff++
					bumped = true
				}
				// Hold an in-flight reference so a concurrent ack cannot
				// recycle (and another sender overwrite) the buffer while
				// the retransmission reads it.
				pd.inFlight++
				rs = append(rs, resend{pd: pd, to: addr, seq: seq})
			}
			if ps.dead != nil {
				// Release the whole window now. Without this the buffers
				// (and any sender blocked on window space) would be wedged
				// until eviction, and Close could not drain the pool.
				for seq, pd := range ps.unacked {
					delete(ps.unacked, seq)
					e.release(pd)
				}
				wakes = append(wakes, ps.sendWait)
			}
		}
		e.mu.Unlock()
		for _, w := range wakes {
			select {
			case w <- struct{}{}:
			default:
			}
		}
		for _, r := range rs {
			// A failed retransmission behaves exactly like a lost one: the
			// next RTO tick retries it. Count it so a dead transport shows.
			e.retransmits.Inc()
			telemetry.DefaultTrace.Record(telemetry.EvRetransmit, telemetry.PeerToken(r.to), len(r.pd.payload), r.seq)
			if err := e.inner.SendTo(r.pd.payload, r.to); err != nil {
				e.dataSendFail.Inc()
			}
			e.finishSends(r.pd)
		}
	}
}

// Flush blocks until every sent message has been acknowledged, or the
// timeout passes (returning transport.ErrTimeout), or a peer dies
// (returning its ErrPeerDead and evicting it), or the endpoint is closed
// (returning transport.ErrClosed — a Flush racing Close must resolve, not
// spin out its full timeout against loops that no longer run).
func (e *Endpoint) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return transport.ErrClosed
		}
		outstanding := 0
		var dead error
		for addr, ps := range e.peers {
			if ps.dead != nil && dead == nil {
				dead = ps.dead
				e.evict(addr)
				continue
			}
			outstanding += len(ps.unacked)
		}
		e.mu.Unlock()
		if dead != nil {
			return dead
		}
		if outstanding == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return transport.ErrTimeout
		}
		select {
		case <-e.done:
			return transport.ErrClosed
		case <-time.After(tickInterval):
		}
	}
}

// Snapshot is a point-in-time view of the endpoint's reliability counters.
type Snapshot struct {
	// Retransmits counts DATA packets actually resent after an RTO expiry.
	Retransmits int64
	// RTOExpirations counts RTO expiry events, including the final expiry
	// that declares a peer dead (so it can exceed Retransmits by one per
	// failed peer, and equals Retransmits otherwise).
	RTOExpirations int64
	// AckSendFailures counts ACK sends the inner transport rejected.
	AckSendFailures int64
	// RetransmitSendFailures counts retransmission sends the inner
	// transport rejected.
	RetransmitSendFailures int64
	// CRCFailures counts inbound packets dropped by the header CRC check.
	CRCFailures int64
	// WindowDrops counts DATA packets beyond the acceptance window.
	WindowDrops int64
	// PeerEvictions counts dead peers whose state was torn down.
	PeerEvictions int64
	// EpochMismatches counts packets carrying a different conversation
	// incarnation than the one bound — restart detections and stragglers.
	EpochMismatches int64
}

// Snapshot reports this endpoint's reliability counters. The values are
// exact for this endpoint; the process-wide telemetry registry additionally
// aggregates them across endpoints under the diwarp_rudp_* metric names.
func (e *Endpoint) Snapshot() Snapshot {
	return Snapshot{
		Retransmits:            e.retransmits.Load(),
		RTOExpirations:         e.rtoExpired.Load(),
		AckSendFailures:        e.ackSendFail.Load(),
		RetransmitSendFailures: e.dataSendFail.Load(),
		CRCFailures:            e.crcFail.Load(),
		WindowDrops:            e.windowDrops.Load(),
		PeerEvictions:          e.evictions.Load(),
		EpochMismatches:        e.epochMismatch.Load(),
	}
}

// SendErrors reports how many ACK or retransmission sends the inner
// transport has rejected. The protocol recovers from each individually; a
// growing count means the transport below is unhealthy.
func (e *Endpoint) SendErrors() uint64 {
	return uint64(e.ackSendFail.Load() + e.dataSendFail.Load())
}

// PoolOutstanding reports how many DATA wire buffers are currently checked
// out of the send pool — the chaos harness's leak invariant: at quiesce
// (everything flushed or every peer evicted, endpoint closed) it must be 0.
func (e *Endpoint) PoolOutstanding() int64 { return e.pool.Outstanding() }

// LocalAddr implements transport.Datagram.
func (e *Endpoint) LocalAddr() transport.Addr { return e.inner.LocalAddr() }

// MaxDatagram implements transport.Datagram, reserving header and CRC
// trailer space.
func (e *Endpoint) MaxDatagram() int { return e.inner.MaxDatagram() - headerLen - crcx.Size }

// PathMTU implements transport.Datagram.
func (e *Endpoint) PathMTU() int { return e.inner.PathMTU() }

// Close implements transport.Datagram, closing the underlying endpoint and
// recycling every wire buffer still sitting in a send window, so a closed
// endpoint leaves its pool balanced even when peers never acked.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	err := e.inner.Close()
	e.wg.Wait()
	// Loops are stopped: nothing takes new in-flight references. Buffers
	// still referenced by a SendTo mid-inner-send are recycled by its
	// finishSends (release marks them acked below).
	e.mu.Lock()
	for _, ps := range e.peers {
		for seq, pd := range ps.unacked {
			delete(ps.unacked, seq)
			e.release(pd)
		}
	}
	e.mu.Unlock()
	return err
}
