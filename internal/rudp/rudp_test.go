package rudp

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/crcx"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func pair(t *testing.T, cfg simnet.Config) (*Endpoint, *Endpoint) {
	t.Helper()
	n := simnet.New(cfg)
	ia, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := n.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(ia), New(ib)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestReliableRoundTrip(t *testing.T) {
	a, b := pair(t, simnet.Config{})
	msg := []byte("reliable datagram")
	if err := a.SendTo(msg, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	got, from, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) || from != a.LocalAddr() {
		t.Fatalf("got %q from %v", got, from)
	}
}

func TestSeqLE(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{1, 1, true},
		{1, 2, true},
		{2, 1, false},
		{0xFFFFFFFF, 0, true}, // wraparound
		{0, 0xFFFFFFFF, false},
	}
	for i, c := range cases {
		if got := seqLE(c.a, c.b); got != c.want {
			t.Errorf("case %d: seqLE(%d,%d) = %v", i, c.a, c.b, got)
		}
	}
}

func TestDeliveryUnderHeavyLoss(t *testing.T) {
	a, b := pair(t, simnet.Config{LossRate: 0.3, Seed: 11})
	const count = 200
	go func() {
		for i := 0; i < count; i++ {
			payload := []byte(fmt.Sprintf("msg-%04d", i))
			if err := a.SendTo(payload, b.LocalAddr()); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < count; i++ {
		got, _, err := b.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		want := fmt.Sprintf("msg-%04d", i)
		if string(got) != want {
			t.Fatalf("out of order or corrupt: got %q want %q", got, want)
		}
	}
	// Nothing extra delivered (exactly-once).
	if extra, _, err := b.Recv(50 * time.Millisecond); err == nil {
		t.Fatalf("unexpected extra delivery %q", extra)
	}
}

func TestDeliveryUnderReorderAndDup(t *testing.T) {
	a, b := pair(t, simnet.Config{ReorderRate: 0.4, DupRate: 0.3, Seed: 5})
	const count = 100
	go func() {
		for i := 0; i < count; i++ {
			if err := a.SendTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < count; i++ {
		got, _, err := b.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("msg %d: got %d", i, got[0])
		}
	}
	if _, _, err := b.Recv(50 * time.Millisecond); err == nil {
		t.Fatal("duplicate delivered")
	}
}

func TestBidirectional(t *testing.T) {
	a, b := pair(t, simnet.Config{LossRate: 0.1, Seed: 3})
	const count = 50
	errc := make(chan error, 2)
	go func() {
		for i := 0; i < count; i++ {
			if err := a.SendTo([]byte{1, byte(i)}, b.LocalAddr()); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	go func() {
		for i := 0; i < count; i++ {
			if err := b.SendTo([]byte{2, byte(i)}, a.LocalAddr()); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < count; i++ {
		if got, _, err := a.Recv(5 * time.Second); err != nil || got[0] != 2 || got[1] != byte(i) {
			t.Fatalf("a recv %d: %v %v", i, got, err)
		}
		if got, _, err := b.Recv(5 * time.Second); err != nil || got[0] != 1 || got[1] != byte(i) {
			t.Fatalf("b recv %d: %v %v", i, got, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFlush(t *testing.T) {
	a, b := pair(t, simnet.Config{LossRate: 0.2, Seed: 9})
	for i := 0; i < 32; i++ {
		if err := a.SendTo(make([]byte, 100), b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(5 * time.Second); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func TestWindowBackpressure(t *testing.T) {
	// 100% loss: no ACKs ever, so at most windowSize sends proceed.
	n := simnet.New(simnet.Config{LossRate: 1.0})
	ia, _ := n.OpenDatagram("a", 0)
	ib, _ := n.OpenDatagram("b", 0)
	a, b := New(ia), New(ib)
	defer a.Close()
	defer b.Close()
	sent := make(chan int, 1)
	go func() {
		i := 0
		for ; i < windowSize+10; i++ {
			if err := a.SendTo([]byte("x"), b.LocalAddr()); err != nil {
				break
			}
		}
		sent <- i
	}()
	select {
	case n := <-sent:
		t.Fatalf("sender never blocked (sent %d)", n)
	case <-time.After(100 * time.Millisecond):
		// Blocked as expected.
	}
}

func TestPeerDeadAfterRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("retry exhaustion takes seconds")
	}
	n := simnet.New(simnet.Config{LossRate: 1.0})
	ia, _ := n.OpenDatagram("a", 0)
	ib, _ := n.OpenDatagram("b", 0)
	a, b := New(ia), New(ib)
	defer a.Close()
	defer b.Close()
	if err := a.SendTo([]byte("doomed"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(30 * time.Second); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("Flush err = %v, want ErrPeerDead", err)
	}
}

func TestMaxDatagramReservesHeader(t *testing.T) {
	a, b := pair(t, simnet.Config{})
	if a.MaxDatagram() != transport.MaxDatagramSize-headerLen-crcx.Size {
		t.Fatalf("MaxDatagram = %d", a.MaxDatagram())
	}
	if err := a.SendTo(make([]byte, a.MaxDatagram()+1), b.LocalAddr()); !errors.Is(err, transport.ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	n := simnet.New(simnet.Config{})
	ia, _ := n.OpenDatagram("a", 0)
	a := New(ia)
	done := make(chan error, 1)
	go func() {
		_, _, err := a.Recv(0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestManyMessagesRandomSizes(t *testing.T) {
	a, b := pair(t, simnet.Config{LossRate: 0.05, Seed: 21})
	rng := rand.New(rand.NewSource(4))
	const count = 100
	var sent [][]byte
	for i := 0; i < count; i++ {
		p := make([]byte, 1+rng.Intn(8000))
		rng.Read(p)
		sent = append(sent, p)
	}
	go func() {
		for _, p := range sent {
			if err := a.SendTo(p, b.LocalAddr()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < count; i++ {
		got, _, err := b.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(got, sent[i]) {
			t.Fatalf("msg %d corrupted (len %d vs %d)", i, len(got), len(sent[i]))
		}
	}
}

// failingInner wraps a transport.Datagram and fails every SendTo after the
// first `allow` calls, simulating a transport that degrades mid-connection.
type failingInner struct {
	transport.Datagram
	allow atomic.Int32
}

var errInjected = errors.New("injected send failure")

func (f *failingInner) SendTo(p []byte, to transport.Addr) error {
	if f.allow.Add(-1) < 0 {
		return errInjected
	}
	return f.Datagram.SendTo(p, to)
}

func TestSendErrorsCounted(t *testing.T) {
	n := simnet.New(simnet.Config{})
	ia, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := n.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	fa := &failingInner{Datagram: ia}
	fa.allow.Store(1)                 // the initial DATA transmission goes through
	fb := &failingInner{Datagram: ib} // every ACK fails
	a, b := New(fa), New(fb)
	t.Cleanup(func() { a.Close(); b.Close() })

	if err := a.SendTo([]byte("once"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	// Delivery is unaffected: only the reverse (ACK) and retransmit legs
	// fail, and those have no caller to hand an error to.
	if _, _, err := b.Recv(time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.SendErrors() == 0 || a.SendErrors() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("send failures not counted: a=%d (retransmits), b=%d (acks)",
				a.SendErrors(), b.SendErrors())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
