package rudp

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/crcx"
	"repro/internal/nio"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// hookEP intercepts outgoing packets: the hook may pass a packet through
// (return it), replace it (return different bytes), or drop it (return
// nil). Everything else forwards to the embedded endpoint.
type hookEP struct {
	transport.Datagram
	mu   sync.Mutex
	hook func(p []byte, to transport.Addr) []byte
}

func (h *hookEP) set(f func(p []byte, to transport.Addr) []byte) {
	h.mu.Lock()
	h.hook = f
	h.mu.Unlock()
}

func (h *hookEP) SendTo(p []byte, to transport.Addr) error {
	h.mu.Lock()
	f := h.hook
	h.mu.Unlock()
	if f != nil {
		q := f(p, to)
		if q == nil {
			return nil // swallowed, like wire loss
		}
		p = q
	}
	return h.Datagram.SendTo(p, to)
}

// peerField runs f on addr's peer state under its entry lock, creating
// the peer if absent — the test-side window into the sharded table.
func peerField(t *testing.T, e *Endpoint, addr transport.Addr, f func(*peerState)) {
	t.Helper()
	ent, _, err := e.tab.LockOrCreate(addr, initPeer)
	if err != nil {
		t.Fatal(err)
	}
	f(&ent.V)
	ent.Unlock()
}

// TestWrapCrossingUnderLoss pins the serial-arithmetic edges: a window
// sliding across seq 2^32−32 … 32 under 20% loss must still deliver every
// message exactly once and in order — cumAck, the SACK bitmap offsets
// (cumAck+1+i on the receive side, seq−cum−1 on the send side) and the
// acceptance window all straddle the wrap during this run.
func TestWrapCrossingUnderLoss(t *testing.T) {
	const start = ^uint32(0) - 31 // 2^32 - 32
	a, b := pair(t, simnet.Config{LossRate: 0.2, Seed: 42})
	peerField(t, a, b.LocalAddr(), func(ps *peerState) { ps.nextSeq, ps.ackedTo = start, start-1 })
	peerField(t, b, a.LocalAddr(), func(ps *peerState) { ps.expected = start })

	const msgs = 64 // crosses from 2^32-32 to 32
	done := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			if err := a.SendTo([]byte(fmt.Sprintf("wrap-%d", i)), b.LocalAddr()); err != nil {
				done <- err
				return
			}
		}
		done <- a.Flush(10 * time.Second)
	}()
	for i := 0; i < msgs; i++ {
		p, _, err := b.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("wrap-%d", i); string(p) != want {
			t.Fatalf("message %d = %q, want %q — order broke across the wrap", i, p, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("send/flush: %v", err)
	}
}

// TestCorruptedHeadersDropped pins the header CRC: an ACK whose cumAck was
// inflated in flight, and a DATA whose seq was mangled, must be dropped by
// the trailer check and recovered as losses. Without the CRC the inflated
// cumAck makes the sender free packets the receiver never got — silent
// loss — and the mangled seq poisons reassembly state.
func TestCorruptedHeadersDropped(t *testing.T) {
	n := simnet.New(simnet.Config{})
	ia, _ := n.OpenDatagram("a", 0)
	ib, _ := n.OpenDatagram("b", 0)
	ha := &hookEP{Datagram: ia}
	hb := &hookEP{Datagram: ib}
	a, b := New(ha), New(hb)
	defer a.Close()
	defer b.Close()

	var mangledAcks, mangledData int
	hb.set(func(p []byte, to transport.Addr) []byte { // b's outgoing: ACKs
		if IsAckPacket(p) && mangledAcks < 3 {
			mangledAcks++
			q := append([]byte(nil), p...)
			q[2], q[3], q[4], q[5] = 0xFF, 0xFF, 0xFF, 0xFE // cumAck := huge
			return q
		}
		return p
	})
	ha.set(func(p []byte, to transport.Addr) []byte { // a's outgoing: DATA
		if len(p) > 0 && p[0] == typeData && mangledData < 2 {
			mangledData++
			q := append([]byte(nil), p...)
			q[4] ^= 0x80 // mangle seq, stale CRC
			return q
		}
		return p
	})

	const msgs = 10
	for i := 0; i < msgs; i++ {
		if err := a.SendTo([]byte(fmt.Sprintf("m-%d", i)), b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		p, _, err := b.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("m-%d", i); string(p) != want {
			t.Fatalf("message %d = %q, want %q", i, p, want)
		}
	}
	if err := a.Flush(5 * time.Second); err != nil {
		t.Fatalf("Flush after corruption: %v", err)
	}
	if got := a.Snapshot().CRCFailures + b.Snapshot().CRCFailures; got < 1 {
		t.Fatalf("no CRC failures recorded; the mangled packets were accepted")
	}
}

// TestFarFutureSeqNotBuffered pins the bounded acceptance window: a DATA
// far beyond the in-order point must not reserve reassembly state (the
// pre-fix behavior buffered anything up to 2^31 ahead, so one bad packet
// wedged the peer's ooo map forever).
func TestFarFutureSeqNotBuffered(t *testing.T) {
	n := simnet.New(simnet.Config{})
	ib, _ := n.OpenDatagram("b", 0)
	raw, _ := n.OpenDatagram("raw", 0)
	b := New(ib)
	defer b.Close()
	defer raw.Close()

	craft := func(epoch byte, seq uint32, payload string) []byte {
		pkt := []byte{typeData, epoch}
		pkt = nio.PutU32(pkt, seq)
		pkt = append(pkt, payload...)
		return nio.PutU32(pkt, crcx.Checksum(pkt))
	}
	if err := raw.SendTo(craft(7, 5000, "garbage"), ib.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := raw.SendTo(craft(7, 1, "ok"), ib.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	p, _, err := b.Recv(5 * time.Second)
	if err != nil || string(p) != "ok" {
		t.Fatalf("Recv = %q, %v; want the in-window message", p, err)
	}
	if got := b.Snapshot().WindowDrops; got != 1 {
		t.Fatalf("WindowDrops = %d, want 1", got)
	}
	var ooo int
	peerField(t, b, raw.LocalAddr(), func(ps *peerState) { ooo = len(ps.ooo) })
	if ooo != 0 {
		t.Fatalf("%d out-of-order buffers retained for the garbage seq", ooo)
	}
}

// TestFlushRacingCloseReturns pins the lifecycle race: a Flush waiting on
// unacked packets while Close tears down the retransmit loop must return a
// definite error promptly — the pre-fix code polled its full timeout
// against loops that no longer ran.
func TestFlushRacingCloseReturns(t *testing.T) {
	n := simnet.New(simnet.Config{LossRate: 1.0})
	ia, _ := n.OpenDatagram("a", 0)
	ib, _ := n.OpenDatagram("b", 0)
	a := New(ia)
	defer ib.Close()
	if err := a.SendTo([]byte("never-acked"), ib.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- a.Flush(30 * time.Second) }()
	time.Sleep(20 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, transport.ErrClosed) && !errors.Is(err, ErrPeerDead) {
			t.Fatalf("Flush after Close = %v, want ErrClosed (or ErrPeerDead if already declared)", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Flush still blocked 2s after Close")
	}
}

// TestBackoffResetsAfterAck pins Karn-correct backoff: RTO doublings
// accumulated through a loss episode must reset once an ACK shows the path
// passing traffic again — the pre-fix per-packet rto never recovered, so
// every later drop on the conversation waited out maxRTO.
func TestBackoffResetsAfterAck(t *testing.T) {
	n := simnet.New(simnet.Config{})
	ia, _ := n.OpenDatagram("a", 0)
	ib, _ := n.OpenDatagram("b", 0)
	ha := &hookEP{Datagram: ia}
	a, b := New(ha), New(ib)
	defer a.Close()
	defer b.Close()

	ha.set(func(p []byte, to transport.Addr) []byte { return nil }) // black hole
	if err := a.SendTo([]byte("stalled"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		var bo int
		peerField(t, a, b.LocalAddr(), func(ps *peerState) { bo = ps.backoff })
		if bo >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backoff never accumulated under total loss")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ha.set(nil) // heal
	if err := a.Flush(5 * time.Second); err != nil {
		t.Fatalf("Flush after heal: %v", err)
	}
	var bo int
	peerField(t, a, b.LocalAddr(), func(ps *peerState) { bo = ps.backoff })
	if bo != 0 {
		t.Fatalf("backoff = %d after acknowledged progress, want 0 (Karn reset)", bo)
	}
}

// TestPeerDeathIsPerPeer pins failure containment and eviction: one
// unreachable peer must neither wedge traffic to healthy peers (the
// pre-fix endpoint-global fatal error did) nor leave dead state behind —
// after eviction the same address can be talked to again.
func TestPeerDeathIsPerPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("retry exhaustion takes seconds")
	}
	n := simnet.New(simnet.Config{})
	ia, _ := n.OpenDatagram("a", 0)
	ib, _ := n.OpenDatagram("b", 0)
	ic, _ := n.OpenDatagram("c", 0)
	ha := &hookEP{Datagram: ia}
	a, b, c := New(ha), New(ib), New(ic)
	defer a.Close()
	defer b.Close()
	defer c.Close()

	cAddr := c.LocalAddr()
	ha.set(func(p []byte, to transport.Addr) []byte {
		if to == cAddr {
			return nil // c unreachable
		}
		return p
	})
	if err := a.SendTo([]byte("doomed"), cAddr); err != nil {
		t.Fatal(err)
	}
	// While c's retries burn down, b must stay fully served.
	deadline := time.Now().Add(10 * time.Second)
	var deadErr error
	for deadErr == nil {
		if err := a.SendTo([]byte("alive"), b.LocalAddr()); err != nil {
			t.Fatalf("healthy peer wedged by dying peer: %v", err)
		}
		if p, _, err := b.Recv(2 * time.Second); err != nil || string(p) != "alive" {
			t.Fatalf("healthy peer starved: %q, %v", p, err)
		}
		err := a.Flush(50 * time.Millisecond)
		if errors.Is(err, ErrPeerDead) {
			deadErr = err
		} else if err != nil && !errors.Is(err, transport.ErrTimeout) {
			t.Fatalf("Flush: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("peer never declared dead")
		}
	}
	if got := a.Snapshot().PeerEvictions; got < 1 {
		t.Fatalf("PeerEvictions = %d after observing death, want ≥ 1", got)
	}
	// Heal the path: the evicted address must accept a fresh conversation.
	ha.set(nil)
	if err := a.SendTo([]byte("hello-again"), cAddr); err != nil {
		t.Fatalf("send to evicted address: %v", err)
	}
	if p, _, err := c.Recv(5 * time.Second); err != nil || string(p) != "hello-again" {
		t.Fatalf("resumed conversation: %q, %v", p, err)
	}
}

// TestRestartedPeerDetectedAndResumed pins the epoch mechanism end to end:
// a peer that crashes and restarts mid-conversation is detected via its new
// incarnation (fast — no retry exhaustion needed), in-flight messages
// surface as ErrPeerDead instead of being silently SACK-absorbed by the
// fresh receiver, and after eviction the conversation resumes cleanly with
// no stale out-of-order state crossing the restart boundary.
func TestRestartedPeerDetectedAndResumed(t *testing.T) {
	n := simnet.New(simnet.Config{})
	ia, _ := n.OpenDatagram("a", 0)
	ib, _ := n.OpenDatagram("b", 100)
	a, b1 := New(ia), New(ib)
	defer a.Close()

	bAddr := b1.LocalAddr()
	for i := 0; i < 5; i++ {
		if err := a.SendTo([]byte(fmt.Sprintf("pre-%d", i)), bAddr); err != nil {
			t.Fatal(err)
		}
		if p, _, err := b1.Recv(2 * time.Second); err != nil || string(p) != fmt.Sprintf("pre-%d", i) {
			t.Fatalf("pre-restart delivery: %q, %v", p, err)
		}
	}
	if err := a.Flush(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Crash and restart b on the same address.
	b1.Close()
	ib2, err := n.OpenDatagram("b", 100)
	if err != nil {
		t.Fatalf("reopen crashed address: %v", err)
	}
	b2 := New(ib2)
	defer b2.Close()

	// The in-flight message lands at the restarted peer, which SACKs the
	// old sequence number it never delivered. The epoch mismatch must turn
	// that into ErrPeerDead at the sender — not a silent success.
	if err := a.SendTo([]byte("during-restart"), bAddr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := a.Flush(50 * time.Millisecond)
		if errors.Is(err, ErrPeerDead) {
			break
		}
		if err == nil {
			t.Fatal("Flush reported success for a message the restarted peer never delivered (silent loss)")
		}
		if !errors.Is(err, transport.ErrTimeout) {
			t.Fatalf("Flush: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("restart never detected")
		}
	}
	if got := a.Snapshot().EpochMismatches; got < 1 {
		t.Fatalf("EpochMismatches = %d, want ≥ 1", got)
	}

	// Fresh conversation after eviction: delivered exactly once, and the
	// stale "during-restart" buffer must not leak out of b2.
	if err := a.SendTo([]byte("post-restart"), bAddr); err != nil {
		t.Fatalf("send after eviction: %v", err)
	}
	p, _, err := b2.Recv(5 * time.Second)
	if err != nil || string(p) != "post-restart" {
		t.Fatalf("post-restart delivery: %q, %v", p, err)
	}
	if p, _, err := b2.Recv(100 * time.Millisecond); err == nil {
		t.Fatalf("unexpected extra delivery %q — stale pre-restart state leaked", p)
	}
}
