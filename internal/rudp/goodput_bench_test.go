package rudp_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/rudp"
	"repro/internal/simnet"
)

// BenchmarkRDGoodputBurstLoss measures RD goodput against Gilbert–Elliott
// burst loss, sweeping the burst-entry probability, for both recovery
// designs: the go-back-N-shaped 32-bit-SACK baseline (GoBackN: true —
// the seed's wire behavior) and IRN-style selective recovery (64-bit
// SACK + fast retransmit + cwnd). The EXPERIMENTS.md loss-recovery table
// is generated from this benchmark; the rexmit/op and spurious/op metrics
// separate real recovery work from the baseline's wasted resends.
func BenchmarkRDGoodputBurstLoss(b *testing.B) {
	const payload = 512
	for _, pgb := range []float64{0, 0.01, 0.02, 0.05, 0.10} {
		for _, mode := range []struct {
			name string
			gbn  bool
		}{{"gbn", true}, {"irn", false}} {
			b.Run(fmt.Sprintf("pGB=%.2f/%s", pgb, mode.name), func(b *testing.B) {
				nw := simnet.New(simnet.Config{})
				ia, err := nw.OpenDatagram("a", 0)
				if err != nil {
					b.Fatal(err)
				}
				ib, err := nw.OpenDatagram("b", 0)
				if err != nil {
					b.Fatal(err)
				}
				var ge *faultnet.GEParams
				if pgb > 0 {
					ge = &faultnet.GEParams{PGoodToBad: pgb, PBadToGood: 0.3, LossBad: 0.5}
				}
				fa := faultnet.Wrap(ia, faultnet.Config{GE: ge, Seed: 7})
				a := rudp.NewConfig(fa, rudp.Config{GoBackN: mode.gbn})
				rx := rudp.NewConfig(ib, rudp.Config{GoBackN: mode.gbn})
				defer a.Close()
				defer rx.Close()

				msg := make([]byte, payload)
				done := make(chan error, 1)
				go func() {
					for i := 0; i < b.N; i++ {
						if _, _, err := rx.Recv(30 * time.Second); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}()
				b.SetBytes(payload)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := a.SendTo(msg, rx.LocalAddr()); err != nil {
						b.Fatal(err)
					}
				}
				if err := a.Flush(60 * time.Second); err != nil {
					b.Fatal(err)
				}
				if err := <-done; err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				s, r := a.Snapshot(), rx.Snapshot()
				b.ReportMetric(float64(s.Retransmits)/float64(b.N), "rexmit/op")
				b.ReportMetric(float64(r.SpuriousRexmits)/float64(b.N), "spurious/op")
			})
		}
	}
}
