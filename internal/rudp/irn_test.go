package rudp

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/nio"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// irnPair builds a rudp pair over a clean simnet with a send hook on a's
// transport, under an explicit Config shared by both ends (the receiver's
// config decides the SACK bitmap width it advertises).
func irnPair(t *testing.T, cfg Config) (*hookEP, *Endpoint, *Endpoint) {
	t.Helper()
	n := simnet.New(simnet.Config{})
	ia, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := n.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	ha := &hookEP{Datagram: ia}
	a, b := NewConfig(ha, cfg), NewConfig(ib, cfg)
	t.Cleanup(func() { a.Close(); b.Close() })
	return ha, a, b
}

// dropSeq installs a hook dropping the first `times` transmissions of seq
// on h; later retransmissions pass through.
func dropSeq(h *hookEP, seq uint32, times int) {
	dropped := 0
	h.set(func(p []byte, to transport.Addr) []byte {
		if dropped < times && len(p) >= headerLen && p[0]&typeMask == typeData && nio.U32(p[2:]) == seq {
			dropped++
			return nil
		}
		return p
	})
}

// dropOneSeq drops only the first transmission of seq.
func dropOneSeq(h *hookEP, seq uint32) { dropSeq(h, seq, 1) }

// fillWindow sends windowSize messages from a to b, receives them all at b
// in order, and flushes a.
func fillWindow(t *testing.T, a, b *Endpoint) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < windowSize; i++ {
			if err := a.SendTo([]byte(fmt.Sprintf("w-%02d", i)), b.LocalAddr()); err != nil {
				done <- err
				return
			}
		}
		done <- a.Flush(10 * time.Second)
	}()
	for i := 0; i < windowSize; i++ {
		p, _, err := b.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("w-%02d", i); string(p) != want {
			t.Fatalf("message %d = %q, want %q", i, p, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("send/flush: %v", err)
	}
}

// TestSACKCoversFullWindow is the regression test for the 32-bit-bitmap /
// 64-packet-window mismatch. The window is filled, only the second packet
// is lost, and every later packet is delivered and buffered out of order.
// With the widened 64-bit bitmap every buffered packet is SACK-visible, so
// recovery must resend exactly the one hole — one retransmission total,
// and the receiver must never see a duplicate DATA.
//
// The GoBackN subtest re-runs the schedule with the legacy 32-bit
// advertisement and shows what this test pins against: packets beyond
// cum+32 cannot be acknowledged, so the sender retransmits data the peer
// already holds and the receiver counts the spurious duplicates.
func TestSACKCoversFullWindow(t *testing.T) {
	t.Run("IRN", func(t *testing.T) {
		ha, a, b := irnPair(t, Config{})
		dropOneSeq(ha, 2)
		fillWindow(t, a, b)
		s := a.Snapshot()
		if s.Retransmits != 1 {
			t.Fatalf("Retransmits = %d, want exactly 1 (the single hole)", s.Retransmits)
		}
		if rb := b.Snapshot(); rb.SpuriousRexmits != 0 {
			t.Fatalf("receiver saw %d duplicate DATA; full-window SACK must prevent spurious resends", rb.SpuriousRexmits)
		}
	})
	t.Run("GoBackN", func(t *testing.T) {
		ha, a, b := irnPair(t, Config{GoBackN: true})
		// Dropping the retransmission too keeps the hole open across an RTO
		// backoff, guaranteeing the blind-spot slots' own timers expire
		// before cumulative progress frees them — with a single drop the
		// outcome would depend on tick alignment.
		dropSeq(ha, 2, 2)
		fillWindow(t, a, b)
		s := a.Snapshot()
		if s.Retransmits <= 2 {
			t.Fatalf("Retransmits = %d; the 32-bit baseline should over-retransmit on this schedule — if it no longer does, the regression fixture is stale", s.Retransmits)
		}
		if rb := b.Snapshot(); rb.SpuriousRexmits == 0 {
			t.Fatal("legacy 32-bit SACK produced no spurious duplicates; the regression fixture is vacuous")
		}
	})
}

// TestFastRetransmitBeatsRTO pins the dup-ACK path: with one hole and a
// stream of later arrivals, recovery must come from fast retransmit (new
// SACK information on a stalled cumulative ack), not from waiting out the
// retransmission timer.
func TestFastRetransmitBeatsRTO(t *testing.T) {
	ha, a, b := irnPair(t, Config{})
	dropOneSeq(ha, 2)
	fillWindow(t, a, b)
	s := a.Snapshot()
	if s.FastRetransmits != 1 {
		t.Fatalf("FastRetransmits = %d, want 1", s.FastRetransmits)
	}
	if s.RTOExpirations != 0 {
		t.Fatalf("RTOExpirations = %d; the hole should have been repaired before any timer fired", s.RTOExpirations)
	}
}

// TestWaitSendSlotReusesTimer pins the blocked-send allocation fix: the
// historical code burned a fresh time.After timer every wait iteration, so
// a sender stuck behind a full window generated garbage proportional to
// how long it was blocked. One timer must now serve the whole blocked
// span — zero allocations per iteration after the first.
func TestWaitSendSlotReusesTimer(t *testing.T) {
	a, _ := pair(t, simnet.Config{})
	wait := make(chan struct{}) // never pulsed: every wait runs to its tick
	tm, ok := a.waitSendSlot(wait, nil)
	if !ok || tm == nil {
		t.Fatalf("first wait: tm=%v ok=%v", tm, ok)
	}
	defer tm.Stop()
	first := tm
	allocs := testing.AllocsPerRun(10, func() {
		var ok bool
		if tm, ok = a.waitSendSlot(wait, tm); !ok {
			t.Error("wait reported endpoint closed")
		}
	})
	if tm != first {
		t.Fatal("waitSendSlot replaced the timer instead of reusing it")
	}
	if allocs != 0 {
		t.Fatalf("blocked-send wait allocates %v per iteration, want 0", allocs)
	}
}

// TestSACKHighestWrap pins the recovery horizon arithmetic across the
// 32-bit sequence wrap: the highest SACKed seq derived from (cum, bitmap)
// must be computed in serial arithmetic, not plain comparison.
func TestSACKHighestWrap(t *testing.T) {
	cases := []struct {
		cum    uint32
		bitmap uint64
		want   uint32
		ok     bool
	}{
		{cum: 10, bitmap: 0, want: 0, ok: false},
		{cum: 10, bitmap: 1, want: 11, ok: true},                              // lowest bit = cum+1
		{cum: 10, bitmap: 1 << 63, want: 74, ok: true},                        // full window span
		{cum: ^uint32(0) - 5, bitmap: 1 << 9, want: 4, ok: true},              // crosses 2^32
		{cum: ^uint32(0), bitmap: 1, want: 0, ok: true},                       // lands exactly on 0
		{cum: ^uint32(0) - 2, bitmap: (1 << 5) | (1 << 2), want: 3, ok: true}, // highest bit wins
	}
	for _, c := range cases {
		got, ok := sackHighest(c.cum, c.bitmap)
		if got != c.want || ok != c.ok {
			t.Errorf("sackHighest(%#x, %#x) = (%d, %v), want (%d, %v)", c.cum, c.bitmap, got, ok, c.want, c.ok)
		}
	}
}

// TestFastRetransmitAcrossWrap drops one packet straddling the 2^32
// sequence wrap and requires selective recovery to still resend exactly
// that hole: the seq−cum−1 bitmap offsets, the SACK horizon, and the
// recovery-guard comparisons all operate across the wrap during this run.
func TestFastRetransmitAcrossWrap(t *testing.T) {
	const start = ^uint32(0) - 31 // window slides 2^32−32 … 32
	ha, a, b := irnPair(t, Config{})
	peerField(t, a, b.LocalAddr(), func(ps *peerState) {
		ps.nextSeq, ps.ackedTo = start, start-1
		// The NewReno recovery guard compares against ackedTo in serial
		// arithmetic; its zero value sits a half-space away from seqs near
		// the wrap, so a conversation starting there must carry it along.
		ps.ccRecover = start - 1
	})
	peerField(t, b, a.LocalAddr(), func(ps *peerState) { ps.expected = start })

	dropOneSeq(ha, ^uint32(0)) // the last seq before the wrap
	fillWindow(t, a, b)
	s := a.Snapshot()
	if s.Retransmits != 1 || s.FastRetransmits != 1 {
		t.Fatalf("Retransmits = %d, FastRetransmits = %d; want exactly one fast-retransmitted hole across the wrap", s.Retransmits, s.FastRetransmits)
	}
	if rb := b.Snapshot(); rb.SpuriousRexmits != 0 {
		t.Fatalf("receiver saw %d duplicate DATA across the wrap", rb.SpuriousRexmits)
	}
}

// TestECNMarkDrivesDecrease pins the congestion-signal loop end to end:
// marking every DATA packet on the wire must surface as receiver-side mark
// counts, echoed congestion bits on ACKs, and at least one multiplicative
// decrease at the sender — with cwnd never collapsing below its floor and
// the transfer still completing.
func TestECNMarkDrivesDecrease(t *testing.T) {
	ha, a, b := irnPair(t, Config{})
	ha.set(func(p []byte, to transport.Addr) []byte {
		if len(p) >= headerLen && p[0]&typeMask == typeData {
			q := append([]byte(nil), p...)
			if MarkCongestion(q) {
				return q
			}
		}
		return p
	})
	fillWindow(t, a, b)
	if rb := b.Snapshot(); rb.ECNMarks == 0 {
		t.Fatalf("receiver counted no ECN marks: %+v", rb)
	}
	s := a.Snapshot()
	if s.MDEvents == 0 {
		t.Fatalf("sender never decreased cwnd despite every packet marked: %+v", s)
	}
	if s.Cwnd < minCwnd {
		t.Fatalf("cwnd gauge %d fell below the floor %d", s.Cwnd, minCwnd)
	}
	if s.Retransmits != 0 {
		t.Fatalf("marking is not loss; %d retransmits on a clean wire", s.Retransmits)
	}
}

// TestMarkCongestionRejectsNonData pins MarkCongestion's guards: ACK
// frames and runts must be left untouched.
func TestMarkCongestionRejectsNonData(t *testing.T) {
	ack := make([]byte, ackLen)
	ack[0] = typeAck
	if MarkCongestion(ack) {
		t.Fatal("MarkCongestion accepted an ACK frame")
	}
	if ack[0] != typeAck {
		t.Fatal("MarkCongestion mutated a rejected frame")
	}
	if MarkCongestion(make([]byte, headerLen)) {
		t.Fatal("MarkCongestion accepted a runt shorter than header+CRC")
	}
}
