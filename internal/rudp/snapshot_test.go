package rudp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/transport"
)

// TestSnapshotCountsLossRecovery is the satellite regression test for the
// Snapshot accessor: a lossy run must show the retransmissions that saved
// it, with the documented relation between retransmit and RTO-expiry counts
// and zero transport-send failures on a healthy inner endpoint.
func TestSnapshotCountsLossRecovery(t *testing.T) {
	a, b := pair(t, simnet.Config{LossRate: 0.3, Seed: 11})
	const count = 100
	go func() {
		for i := 0; i < count; i++ {
			if err := a.SendTo([]byte(fmt.Sprintf("msg-%03d", i)), b.LocalAddr()); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < count; i++ {
		if _, _, err := b.Recv(5 * time.Second); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if err := a.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	s := a.Snapshot()
	if s.Retransmits == 0 {
		t.Fatalf("30%% loss produced no retransmits: %+v", s)
	}
	// Every retransmission is triggered by an RTO expiry or a dup-ACK fast
	// retransmit; expiries can exceed their share only by fatal
	// (retries-exhausted) events, of which a delivered run has none.
	if s.RTOExpirations+s.FastRetransmits != s.Retransmits {
		t.Fatalf("RTO expirations %d + fast retransmits %d != retransmits %d on a surviving run",
			s.RTOExpirations, s.FastRetransmits, s.Retransmits)
	}
	if s.AckSendFailures != 0 || s.RetransmitSendFailures != 0 {
		t.Fatalf("healthy transport charged with send failures: %+v", s)
	}
	if a.SendErrors() != 0 {
		t.Fatalf("SendErrors = %d, want 0", a.SendErrors())
	}
	// The receiver only acknowledges; it has nothing to retransmit.
	if rb := b.Snapshot(); rb.Retransmits != 0 {
		t.Fatalf("receiver snapshot shows retransmits: %+v", rb)
	}
}

// flakySend wraps a transport, rejecting every send while fail is set —
// the shape of a NIC outage the rudp counters must make visible.
type flakySend struct {
	transport.Datagram
	fail atomic.Bool
}

func (d *flakySend) SendTo(p []byte, to transport.Addr) error {
	if d.fail.Load() {
		return errors.New("injected transport failure")
	}
	return d.Datagram.SendTo(p, to)
}

func TestSnapshotCountsAckSendFailures(t *testing.T) {
	n := simnet.New(simnet.Config{})
	ia, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := n.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakySend{Datagram: ib}
	flaky.fail.Store(true)
	a, b := New(ia), New(flaky)
	t.Cleanup(func() { a.Close(); b.Close() })

	if err := a.SendTo([]byte("needs an ack"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	// Delivery succeeds — only the ACK path is down.
	if _, _, err := b.Recv(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.Snapshot().AckSendFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ACK send failures never counted: %+v", b.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	if b.SendErrors() == 0 {
		t.Fatal("SendErrors must reflect ACK failures")
	}

	// Heal the transport: the sender's next retransmission gets acked and
	// the exchange completes, having been counted on both sides.
	flaky.fail.Store(false)
	if err := a.Flush(5 * time.Second); err != nil {
		t.Fatalf("flush after transport healed: %v", err)
	}
	if s := a.Snapshot(); s.Retransmits == 0 {
		t.Fatalf("sender never retransmitted while ACKs were failing: %+v", s)
	}
}
