package rudp

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/peertab"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// TestEvictDuringTickNoTimerLeak pins the eviction/timer-wheel interlock:
// a peer torn down while the retransmit tick is scanning it must not leak
// its armed wheel filing or any window buffer. The failure mode this guards
// against: tickPeer pops a firing, the peer is evicted and re-admitted (or
// just evicted) between the pop and the lock, and a stale re-arm files a
// timer for state that no longer exists — at quiesce the wheel would still
// count it, and Close could never balance the pool.
func TestEvictDuringTickNoTimerLeak(t *testing.T) {
	n := simnet.New(simnet.Config{LossRate: 1.0}) // acks never arrive: every peer keeps an armed RTO
	ep, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ep)
	defer e.Close()

	// Ghost peers exist on the network but never run a protocol endpoint,
	// so nothing ever acks (and LossRate 1.0 drops the traffic anyway).
	const peers = 48
	addrs := make([]transport.Addr, peers)
	for i := range addrs {
		g, err := n.OpenDatagram(fmt.Sprintf("ghost%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		addrs[i] = g.LocalAddr()
	}
	addr := func(i int) transport.Addr { return addrs[i] }
	payload := []byte("never acked")

	// dropAndEvict is the dead-peer teardown path SendTo takes, exercised
	// directly so the test controls its timing against the tick loop.
	dropAndEvict := func(i int) {
		ent := e.tab.Lookup(addr(i))
		if ent == nil {
			return
		}
		e.releaseWindow(ent)
		ent.Unlock()
		e.evictEntry(ent)
	}

	for round := 0; round < 3; round++ {
		for i := 0; i < peers; i++ {
			if err := e.SendTo(payload, addr(i)); err != nil {
				t.Fatal(err)
			}
		}
		// Let the 2ms retransmit ticks engage so evictions race live scans.
		time.Sleep(8 * tickInterval)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < peers; i += 4 {
					dropAndEvict(i)
				}
			}(g)
		}
		wg.Wait()
		// A stale firing may still be in flight inside the tick loop; give
		// it a tick to resolve against the now-gone entries.
		time.Sleep(4 * tickInterval)
		if armed := e.ArmedTimers(); armed != 0 {
			t.Fatalf("round %d: %d wheel filings leaked past eviction", round, armed)
		}
		if got := e.Peers(); got != 0 {
			t.Fatalf("round %d: %d peers survived eviction", round, got)
		}
	}
	if out := e.PoolOutstanding(); out != 0 {
		t.Fatalf("pool unbalanced at quiesce: %d buffers outstanding", out)
	}
}

// TestMaxPeersAdmission pins the bounded-capacity policy: SendTo to a peer
// beyond MaxPeers surfaces peertab.ErrCapacity, existing conversations are
// unaffected, and eviction frees the slot.
func TestMaxPeersAdmission(t *testing.T) {
	n := simnet.New(simnet.Config{LossRate: 1.0})
	ep, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewConfig(ep, Config{MaxPeers: 4})
	defer e.Close()

	addrs := make([]transport.Addr, 5)
	for i := range addrs {
		g, err := n.OpenDatagram(fmt.Sprintf("p%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		addrs[i] = g.LocalAddr()
	}
	addr := func(i int) transport.Addr { return addrs[i] }
	for i := 0; i < 4; i++ {
		if err := e.SendTo([]byte("hi"), addr(i)); err != nil {
			t.Fatalf("peer %d within capacity rejected: %v", i, err)
		}
	}
	if err := e.SendTo([]byte("hi"), addr(4)); !errors.Is(err, peertab.ErrCapacity) {
		t.Fatalf("peer beyond capacity: err=%v, want ErrCapacity", err)
	}
	// Established peers keep working at capacity.
	if err := e.SendTo([]byte("again"), addr(0)); err != nil {
		t.Fatalf("existing peer rejected at capacity: %v", err)
	}
	// Freeing a slot admits the newcomer.
	ent := e.tab.Lookup(addr(1))
	if ent == nil {
		t.Fatal("peer 1 missing")
	}
	e.releaseWindow(ent)
	ent.Unlock()
	e.evictEntry(ent)
	if err := e.SendTo([]byte("hi"), addr(4)); err != nil {
		t.Fatalf("admission after evict: %v", err)
	}
}

// TestIdleEvictAndResume pins the idle-eviction lifecycle: a fully-acked
// conversation idle past IdleEvict is evicted (occupancy drops, eviction
// counted), and the next send starts a fresh conversation the receiver
// adopts transparently — same address, new epoch, delivery continues.
func TestIdleEvictAndResume(t *testing.T) {
	n := simnet.New(simnet.Config{})
	ia, err := n.OpenDatagram("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := n.OpenDatagram("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	a := NewConfig(ia, Config{IdleEvict: 50 * time.Millisecond})
	b := New(ib)
	defer a.Close()
	defer b.Close()

	if err := a.SendTo([]byte("one"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Recv(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	// The idle sweep runs once a second; wait out one full cadence.
	deadline := time.Now().Add(3 * time.Second)
	for a.Peers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle peer not evicted: %d peers after %s", a.Peers(), 3*time.Second)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if ev := a.Snapshot().PeerEvictions; ev < 1 {
		t.Fatalf("eviction not counted: %d", ev)
	}
	if armed := a.ArmedTimers(); armed != 0 {
		t.Fatalf("idle eviction leaked %d wheel filings", armed)
	}
	// Resume: same address, fresh conversation, transparent to the peer.
	if err := a.SendTo([]byte("two"), b.LocalAddr()); err != nil {
		t.Fatalf("resume after idle eviction: %v", err)
	}
	msg, _, err := b.Recv(time.Second)
	if err != nil {
		t.Fatalf("resumed conversation undelivered: %v", err)
	}
	if string(msg) != "two" {
		t.Fatalf("resumed delivery got %q", msg)
	}
}
