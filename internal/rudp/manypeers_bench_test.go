package rudp

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/crcx"
	"repro/internal/nio"
	"repro/internal/transport"
)

// ackStub is a transport.Datagram that synthesizes a cumulative ACK for
// every 8th sequence number handed to SendTo. It isolates the endpoint's
// own demux and bookkeeping cost: there is no wire, no peer process, and
// no loss, so the benchmark below measures exactly the per-send table
// lookup, window accounting, and timer arming — the paths the sharded
// peer table exists to scale.
//
// The 1-in-8 thinning is protocol-correct (a cumulative ack clears every
// seq below it) and deliberate: acking every packet would make the
// endpoint's single receive loop the measured bottleneck instead of the
// send-side demux. 8 ≪ windowSize, so windows stay shallow and senders
// almost never block on window space. The un-acked tail of each peer's
// final stride retransmits until the run ends — which is fair game, since
// it exercises the retransmit scheduler's scaling too (the old code
// scanned every peer under the global mutex each 2ms tick).
type ackStub struct {
	acks chan stubAck
	done chan struct{}
}

type stubAck struct {
	pkt  []byte
	from transport.Addr
}

const ackEvery = 8

func newAckStub() *ackStub {
	return &ackStub{
		acks: make(chan stubAck, 1<<15),
		done: make(chan struct{}),
	}
}

func (s *ackStub) SendTo(p []byte, to transport.Addr) error {
	if len(p) == 0 || p[0] != typeData {
		return nil // ACKs from the endpoint under test are discarded
	}
	seq := nio.U32(p[2:])
	if seq%ackEvery != 0 {
		return nil
	}
	ack := make([]byte, 0, ackLen)
	ack = append(ack, typeAck, p[1])
	ack = nio.PutU32(ack, seq)
	ack = nio.PutU32(ack, 0)
	ack = nio.PutU32(ack, crcx.Checksum(ack))
	select {
	case s.acks <- stubAck{pkt: ack, from: to}:
	case <-s.done:
	}
	return nil
}

func (s *ackStub) Recv(timeout time.Duration) ([]byte, transport.Addr, error) {
	var tch <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tch = t.C
	}
	select {
	case a := <-s.acks:
		return a.pkt, a.from, nil
	case <-tch:
		return nil, transport.Addr{}, transport.ErrTimeout
	case <-s.done:
		return nil, transport.Addr{}, transport.ErrClosed
	}
}

func (s *ackStub) LocalAddr() transport.Addr { return transport.Addr{Node: "ackstub"} }

// MaxDatagram is kept small so the endpoint's wire-buffer pool deals in
// 2KB buffers: the benchmark sends 32-byte payloads, and 64KB size-class
// buffers would make allocator zeroing — identical in any table design —
// the dominant per-op cost instead of the demux under test.
func (s *ackStub) MaxDatagram() int { return 2048 }
func (s *ackStub) PathMTU() int     { return 1500 }
func (s *ackStub) Close() error {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	return nil
}

// BenchmarkRudpManyPeers sweeps concurrent senders across a growing peer
// population through one Endpoint — the many-logical-endpoints-over-one-QP
// shape of the paper's scalability argument. Run with -cpu to vary sender
// parallelism; ops/s must grow with cores instead of flatlining on a
// global endpoint mutex (EXPERIMENTS.md records the before/after).
//
// ErrPeerDead is retried, not fatal: a peer whose un-acked tail stride
// exhausted retries is evicted by contract, and the retry simply starts
// its fresh conversation — the eviction/readmission path is part of what
// scales (or does not).
func BenchmarkRudpManyPeers(b *testing.B) {
	for _, peers := range []int{1, 16, 256, 1024, 10240} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			st := newAckStub()
			e := New(st)
			defer e.Close()
			addrs := make([]transport.Addr, peers)
			for i := range addrs {
				addrs[i] = transport.Addr{Node: "peer" + strconv.Itoa(i), Port: uint16(i%60000) + 1}
			}
			payload := make([]byte, 32)
			var next atomic.Uint64
			var failed atomic.Value
			var revived atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1)
					to := addrs[i%uint64(peers)]
					err := e.SendTo(payload, to)
					if errors.Is(err, ErrPeerDead) {
						revived.Add(1)
						err = e.SendTo(payload, to)
					}
					if err != nil {
						failed.Store(err)
						return
					}
				}
			})
			b.StopTimer()
			if err := failed.Load(); err != nil {
				b.Fatal(err)
			}
			if n := revived.Load(); n > 0 {
				b.ReportMetric(float64(n), "revives")
			}
		})
	}
}
