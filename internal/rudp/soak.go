package rudp

// Many-peer soak harness: one reliable-datagram endpoint holding the state
// of tens of thousands of live conversations over simnet, with heap
// accounting per peer. This is the paper's Figure 11 argument driven to
// scale in software — a datagram endpoint's per-peer cost is one table
// entry and one send window, not a connection — and the acceptance gate for
// the sharded peer table: occupancy, memory, and liveness must all hold at
// 100k peers. It lives in this package because the senders hand-craft DATA
// frames (spinning up one full Endpoint per simulated peer would measure
// goroutine stacks, not peer state) and the wire format is private.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/crcx"
	"repro/internal/nio"
	"repro/internal/peertab"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// SoakConfig parameterises SoakManyPeers.
type SoakConfig struct {
	// Peers is how many distinct remote addresses converse with the hub.
	Peers int
	// Duration bounds the hold phase (populate time is extra).
	Duration time.Duration
	// Shards overrides the hub's peer-table stripe count (0 = scale with
	// Peers: one stripe per ~64 expected entries, minimum the default).
	Shards int
	// Progress, if non-nil, receives human-readable phase updates.
	Progress func(format string, args ...any)
}

// SoakReport is the outcome of one many-peer soak.
type SoakReport struct {
	Peers       int
	Delivered   int64         // messages the hub's inbox surfaced
	HeapBase    uint64        // bytes with the harness up but no peers admitted
	HeapPeers   uint64        // bytes with every peer's conversation established
	HeapPeak    uint64        // high-water mark across the hold phase
	PerPeer     float64       // (HeapPeers - HeapBase) / Peers
	Sys         uint64        // runtime.MemStats.Sys at the end (RSS proxy)
	Table       peertab.Stats // hub peer-table occupancy and imbalance
	ArmedTimers int
	Hold        time.Duration
}

func (r SoakReport) String() string {
	return fmt.Sprintf(
		"peers=%d delivered=%d heap base=%.1f MiB populated=%.1f MiB peak=%.1f MiB per-peer=%.0f B sys=%.1f MiB shards=%d shard max/min=%d/%d armed=%d hold=%s",
		r.Peers, r.Delivered,
		float64(r.HeapBase)/(1<<20), float64(r.HeapPeers)/(1<<20), float64(r.HeapPeak)/(1<<20),
		r.PerPeer, float64(r.Sys)/(1<<20),
		r.Table.Shards, r.Table.ShardMax, r.Table.ShardMin, r.ArmedTimers, r.Hold,
	)
}

// soakPayload keeps frames small: the soak measures peer state, not
// bandwidth.
const soakPayload = 32

// heapNow forces a collection and reads the live heap.
func heapNow() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// soakSender is one simulated remote peer: a raw simnet endpoint plus just
// enough conversation state (epoch, next seq) to emit valid DATA frames.
type soakSender struct {
	ep    *simnet.DatagramEndpoint
	seq   uint32
	frame []byte // reusable wire buffer
}

// send emits the peer's next in-order DATA frame to the hub.
func (s *soakSender) send(hub transport.Addr, epoch byte, payload []byte) error {
	buf := s.frame[:0]
	buf = append(buf, typeData, epoch)
	buf = nio.PutU32(buf, s.seq)
	buf = append(buf, payload...)
	buf = nio.PutU32(buf, crcx.Checksum(buf))
	s.frame = buf
	s.seq++
	return s.ep.SendTo(buf, hub)
}

// SoakManyPeers runs the soak: admit cfg.Peers conversations on one hub
// endpoint, hold them live for cfg.Duration while sampling the heap, and
// report the per-peer memory figure. The hub's correctness invariants
// (occupancy == Peers, wheel quiescent, pool balanced) are checked and
// reported as errors, not just recorded.
func SoakManyPeers(cfg SoakConfig) (SoakReport, error) {
	if cfg.Peers <= 0 {
		return SoakReport{}, fmt.Errorf("rudp: soak needs a positive peer count")
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = max(peertab.DefaultShards, cfg.Peers/64)
	}

	// Small per-endpoint queues: 100k simnet receive queues must not
	// dominate the memory the soak is trying to attribute to peer state.
	// Hub ACKs overflow the senders' queues and drop — senders never read
	// them, exactly like a one-way UDP blaster.
	net := simnet.New(simnet.Config{QueueLen: 8})
	hubEP, err := net.OpenDatagram("hub", 1)
	if err != nil {
		return SoakReport{}, err
	}
	hub := NewConfig(hubEP, Config{Shards: shards})
	defer hub.Close()

	// Drain the hub's inbox for the whole run so delivery never wedges the
	// receive path.
	var delivered atomic.Int64
	go func() {
		for {
			_, _, err := hub.Recv(100 * time.Millisecond)
			if err == transport.ErrClosed {
				return
			}
			if err == nil {
				delivered.Add(1)
			}
		}
	}()

	// Senders spread across nodes: a simnet port is 16-bit, so one node
	// cannot host 100k addresses.
	const peersPerNode = 1024
	senders := make([]soakSender, cfg.Peers)
	for i := range senders {
		ep, err := net.OpenDatagram(fmt.Sprintf("n%d", i/peersPerNode), 0)
		if err != nil {
			return SoakReport{}, err
		}
		senders[i] = soakSender{ep: ep, seq: 1, frame: make([]byte, 0, headerLen+soakPayload+crcx.Size)}
	}
	defer func() {
		for i := range senders {
			senders[i].ep.Close() //diwarp:ignore errflow: teardown of a simulated sender after the report is taken; nothing to do with a close error
		}
	}()

	var rep SoakReport
	rep.Peers = cfg.Peers
	rep.HeapBase = heapNow()
	progress("soak: harness up, heap %.1f MiB; populating %d peers", float64(rep.HeapBase)/(1<<20), cfg.Peers)

	// Populate: every peer sends one in-order frame, creating its state in
	// the hub's table. simnet is lossless and FIFO per pair, so arrival is
	// guaranteed; poll occupancy to let the receive loop catch up.
	payload := make([]byte, soakPayload)
	hubAddr := hub.LocalAddr()
	for i := range senders {
		if err := senders[i].send(hubAddr, byte(7), payload); err != nil {
			return rep, fmt.Errorf("rudp: soak populate peer %d: %w", i, err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for hub.Peers() < cfg.Peers {
		if time.Now().After(deadline) {
			return rep, fmt.Errorf("rudp: soak populate stalled at %d/%d peers", hub.Peers(), cfg.Peers)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep.HeapPeers = heapNow()
	rep.PerPeer = float64(rep.HeapPeers-rep.HeapBase) / float64(cfg.Peers)
	rep.HeapPeak = rep.HeapPeers
	progress("soak: %d peers live, heap %.1f MiB (%.0f B/peer); holding %s",
		hub.Peers(), float64(rep.HeapPeers)/(1<<20), rep.PerPeer, cfg.Duration)

	// Hold: a rotating slice of peers keeps the datapath warm (the table
	// must stay correct under live traffic, not just after a burst) while
	// the heap is sampled for growth. One core serves 100k peers, so each
	// tick touches a bounded cohort rather than the full population.
	start := time.Now()
	cohort := cfg.Peers / 64
	if cohort < 1 {
		cohort = 1
	}
	next := 0
	for time.Since(start) < cfg.Duration {
		for i := 0; i < cohort; i++ {
			s := &senders[next%cfg.Peers]
			next++
			if err := s.send(hubAddr, byte(7), payload); err != nil {
				return rep, fmt.Errorf("rudp: soak hold send: %w", err)
			}
		}
		time.Sleep(20 * time.Millisecond)
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > rep.HeapPeak {
			rep.HeapPeak = ms.HeapAlloc
		}
	}
	rep.Hold = time.Since(start)

	// Invariants at quiesce: full occupancy, no armed retransmit state (the
	// hub only ever received), and an intact table.
	rep.Table = hub.tab.Stats()
	rep.ArmedTimers = hub.ArmedTimers()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.Sys = ms.Sys
	if got := hub.Peers(); got != cfg.Peers {
		return rep, fmt.Errorf("rudp: soak held %d peers, want %d", got, cfg.Peers)
	}
	if rep.ArmedTimers != 0 {
		return rep, fmt.Errorf("rudp: receive-only soak armed %d retransmit timers", rep.ArmedTimers)
	}
	rep.Delivered = delivered.Load()
	if rep.Delivered == 0 {
		return rep, fmt.Errorf("rudp: soak delivered nothing")
	}
	return rep, nil
}
