// Package errflow forbids silently discarded errors on the I/O layers the
// datagram stack's correctness leans on: transport, rudp, simnet, and
// sockif. The paper's loss model makes error returns the ONLY signal that a
// send or queue hand-off failed — a dropped error there is an invisible
// lost datagram with no counter, no retransmission, and no recycled buffer.
//
// Within those packages (test files excluded) the analyzer reports:
//
//   - a call used as a statement whose results include an error;
//   - an error result assigned to the blank identifier, whether alone
//     (_ = conn.Send(b)) or in a tuple (n, _ := conn.Read(b)).
//
// `defer c.Close()` stays legal: cleanup-path Close errors have no receiver.
// Genuinely best-effort calls (socket-option tuning, advisory messages) are
// suppressed case by case with //diwarp:ignore errflow and a rationale, so
// every silent discard in the tree is a reviewed decision rather than an
// accident (DESIGN.md §4.5).
package errflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the discarded-error checker.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc: "no discarded errors on transport/rudp I/O paths\n\n" +
		"Reports calls whose error result is dropped (statement calls and blank\n" +
		"assignments) in the transport, rudp, simnet, and sockif packages.",
	Run: run,
}

// scope lists the import-path segments the analyzer applies to.
var scope = []string{"transport", "rudp", "simnet", "sockif"}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasAnySegment(pass.Pkg.Path(), scope...) {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	isErr := func(t types.Type) bool { return t != nil && types.Identical(t, errType) }

	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.FileStart).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if resultsContainError(pass, call, isErr) {
					pass.Reportf(call.Pos(), "error result of %s is discarded (handle it, or //diwarp:ignore errflow with a reason)", calleeName(call))
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, n, isErr)
			}
			return true
		})
	}
	return nil
}

// resultsContainError reports whether any result of the call has type error.
func resultsContainError(pass *analysis.Pass, call *ast.CallExpr, isErr func(types.Type) bool) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErr(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErr(t)
	}
}

// checkBlankAssign reports error results assigned to the blank identifier.
func checkBlankAssign(pass *analysis.Pass, s *ast.AssignStmt, isErr func(types.Type) bool) {
	blankAt := func(i int) bool {
		id, ok := s.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}

	// Multi-value form: n, _ := conn.Read(b) — one call, tuple results.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tup, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok || tup.Len() != len(s.Lhs) {
			return // comma-ok assertions and the like
		}
		for i := 0; i < tup.Len(); i++ {
			if blankAt(i) && isErr(tup.At(i).Type()) {
				pass.Reportf(s.Lhs[i].Pos(), "error result of %s is assigned to _ (handle it, or //diwarp:ignore errflow with a reason)", calleeName(call))
			}
		}
		return
	}

	// 1:1 positions: _ = conn.Send(b).
	if len(s.Rhs) == len(s.Lhs) {
		for i := range s.Lhs {
			if !blankAt(i) {
				continue
			}
			call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			if t := pass.TypesInfo.Types[call].Type; t != nil && isErr(t) {
				pass.Reportf(s.Lhs[i].Pos(), "error result of %s is assigned to _ (handle it, or //diwarp:ignore errflow with a reason)", calleeName(call))
			}
		}
	}
}

// calleeName renders the called function for diagnostics: pkg.Fn, recv.Meth,
// or the raw expression text for indirect calls.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
