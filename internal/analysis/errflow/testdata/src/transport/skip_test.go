// Test files are outside errflow's contract: tests routinely fire calls
// for their side effects. Nothing here may be reported.
package transport

func discardInTest(c Conn, b []byte) {
	c.Send(b)
	_ = c.Send(b)
}
