// Package transport exercises errflow inside a scoped package (path
// segment "transport"): statement-level and blank-assigned error discards
// are flagged; handled errors, defers, error-free calls, and reviewed
// //diwarp:ignore suppressions are not.
package transport

type Conn struct{}

func (Conn) Send(b []byte) error         { return nil }
func (Conn) Read(b []byte) (int, error)  { return 0, nil }
func (Conn) Close() error                { return nil }
func (Conn) Len() int                    { return 0 }
func (Conn) Lookup(k int) (string, bool) { return "", false }

func bad(c Conn, b []byte) {
	c.Send(b)         // want `error result of c.Send is discarded`
	_ = c.Send(b)     // want `error result of c.Send is assigned to _`
	n, _ := c.Read(b) // want `error result of c.Read is assigned to _`
	_ = n
}

func good(c Conn, b []byte) error {
	defer c.Close() // cleanup-path Close has no receiver for its error
	if err := c.Send(b); err != nil {
		return err
	}
	n, err := c.Read(b)
	if err != nil {
		return err
	}
	_ = n
	c.Len()             // no error result
	v, _ := c.Lookup(1) // comma-ok, not an error
	_ = v
	//diwarp:ignore errflow: fixture: reviewed best-effort send
	c.Send(b)
	return nil
}
