// Package app sits outside errflow's scope (no transport/rudp/simnet/sockif
// path segment): identical discards draw no diagnostics here.
package app

func fallible() error { return nil }

func g() {
	fallible()
	_ = fallible()
}
