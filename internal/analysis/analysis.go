// Package analysis is a self-contained, standard-library-only analogue of
// golang.org/x/tools/go/analysis: just enough framework to write the
// datapath-invariant linters in internal/analysis/{poolcheck,hotpath,
// wirecheck,errflow} and drive them from "go vet -vettool" (see the unit
// subpackage) and from fixture tests (see the analysistest subpackage).
//
// The subset is deliberate. The repo's analyzers are single-package and
// fact-free, so the x/tools machinery for cross-package facts, analyzer
// dependencies, and suggested fixes is omitted; what remains is the
// Analyzer/Pass/Diagnostic triple plus the //diwarp: directive conventions
// shared by every checker:
//
//	//diwarp:hotpath            annotates a function checked by hotpath
//	//diwarp:acquire            annotates a function whose []byte result is a
//	                            pooled buffer (tracked by poolcheck like
//	                            nio.Pool.Get)
//	//diwarp:lockafter key...   on a mutex field or package-level mutex var,
//	                            declares the locks it is intentionally
//	                            acquired after (consumed by lockorder)
//	//diwarp:ignore name[,name]: reason
//	                            suppresses the named analyzers' diagnostics
//	                            on the comment's line and the line below it.
//	                            The ": reason" suffix is mandatory: a
//	                            suppression without one is inert and is
//	                            itself reported (analyzer name
//	                            "suppression"), so every silenced diagnostic
//	                            in the tree carries its justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //diwarp:ignore comments. It must be a valid identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank line,
	// then details.
	Doc string

	// Run applies the analyzer to a single package. Diagnostics are
	// delivered through pass.Report / pass.Reportf.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package and a
// sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the drivers
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// directivePrefix introduces every in-source annotation the suite consumes.
const directivePrefix = "//diwarp:"

// HasDirective reports whether the doc comment group carries the given
// //diwarp: directive (e.g. HasDirective(fn.Doc, "hotpath")). Directives are
// whole-line machine comments in the style of //go: directives: no space
// after the slashes, directive name terminated by end of line or a space.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c.Text); ok && d == name {
			return true
		}
	}
	return false
}

// parseDirective extracts the directive name from a //diwarp:name[ args]
// comment, reporting whether the comment is a directive at all.
func parseDirective(text string) (string, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", false
	}
	rest := text[len(directivePrefix):]
	if i := strings.IndexAny(rest, " \t:"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// DirectiveArgs returns the argument text following the named //diwarp:
// directive in the comment group ("" when the directive has no arguments),
// and whether the directive is present at all.
func DirectiveArgs(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c.Text); ok && d == name {
			return strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix+name)), true
		}
	}
	return "", false
}

// ignoresIn collects //diwarp:ignore suppressions from a file. The returned
// map is keyed by line number; the value is the set of analyzer names (or
// "all") suppressed on that line. A suppression comment covers its own line
// and the line that follows — so both trailing comments and comments-above
// work:
//
//	e.doBestEffort() //diwarp:ignore errflow: reason
//
//	//diwarp:ignore errflow: reason
//	e.doBestEffort()
//
// The ": reason" suffix is mandatory. A directive without it suppresses
// NOTHING — the underlying diagnostic still fires — and its position is
// returned in malformed so Run can report the directive itself. An inert
// malformed suppression cannot hide a real finding behind a typo.
func ignoresIn(fset *token.FileSet, f *ast.File) (ignores map[int]map[string]bool, malformed []token.Pos) {
	add := func(line int, names []string) {
		if ignores == nil {
			ignores = make(map[int]map[string]bool)
		}
		set := ignores[line]
		if set == nil {
			set = make(map[string]bool)
			ignores[line] = set
		}
		for _, n := range names {
			set[n] = true
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c.Text)
			if !ok || d != "ignore" {
				continue
			}
			names, ok := parseIgnoreArgs(strings.TrimPrefix(c.Text, directivePrefix+"ignore"))
			if !ok {
				malformed = append(malformed, c.Pos())
				continue
			}
			pos := fset.Position(c.Pos())
			add(pos.Line, names)
			add(pos.Line+1, names)
		}
	}
	return ignores, malformed
}

// parseIgnoreArgs splits the text following "//diwarp:ignore" into the
// suppressed analyzer names, enforcing the "name[,name]: reason" shape. An
// empty name list (":" immediately after the directive) suppresses all
// analyzers. ok is false when the colon or the reason is missing, or when
// the name list is not a single comma-separated token.
func parseIgnoreArgs(args string) (names []string, ok bool) {
	list, reason, found := strings.Cut(args, ":")
	if !found || strings.TrimSpace(reason) == "" {
		return nil, false
	}
	list = strings.TrimSpace(list)
	if list == "" {
		return []string{"all"}, true
	}
	if strings.ContainsAny(list, " \t") {
		return nil, false
	}
	for _, n := range strings.Split(list, ",") {
		if n == "" {
			return nil, false
		}
		names = append(names, n)
	}
	return names, true
}

// Suppressed reports whether a diagnostic from the named analyzer at pos is
// silenced by a //diwarp:ignore comment.
func suppressed(ignores map[int]map[string]bool, fset *token.FileSet, pos token.Pos, name string) bool {
	if len(ignores) == 0 {
		return false
	}
	set := ignores[fset.Position(pos).Line]
	return set["all"] || set[name]
}

// Run applies each analyzer to the package and returns the surviving
// diagnostics (suppressions applied), ordered by position. It is the single
// execution path shared by the vettool driver and analysistest, so fixture
// tests exercise exactly what "go vet -vettool" runs.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	ignores := make(map[*ast.File]map[int]map[string]bool)
	for _, f := range files {
		ig, malformed := ignoresIn(fset, f)
		ignores[f] = ig
		// Malformed suppressions are findings in their own right, reported
		// under the reserved name "suppression" (and not themselves
		// suppressible: a directive too broken to parse cannot vouch for
		// another one).
		for _, pos := range malformed {
			out = append(out, Diagnostic{
				Pos:      pos,
				Message:  "malformed //diwarp:ignore: want \"//diwarp:ignore analyzer[,analyzer]: reason\" (the reason is mandatory)",
				Analyzer: "suppression",
			})
		}
	}
	fileOf := func(pos token.Pos) *ast.File {
		for _, f := range files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return f
			}
		}
		return nil
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			if f := fileOf(d.Pos); f != nil && suppressed(ignores[f], fset, d.Pos, a.Name) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sortDiagnostics(fset, out)
	return out, nil
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	// Insertion sort keeps the package dependency-free; diagnostic counts
	// are tiny.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(fset, ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func less(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Analyzer < b.Analyzer
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// populated, shared by the drivers.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
