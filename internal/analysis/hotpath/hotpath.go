// Package hotpath checks functions annotated //diwarp:hotpath against the
// datapath performance contract established in DESIGN.md §4.4: the batched
// send path runs with zero heap allocations and no lock acquisition, so the
// compiler-invisible costs a reviewer would have to spot by eye — a stray
// fmt call, a map literal, a value boxed into an interface — are mechanical
// findings here instead.
//
// Within an annotated function body the analyzer rejects:
//
//   - calls into package fmt (formatting allocates and convTs its operands;
//     cold error paths must be outlined into unannotated helpers);
//   - make and new (direct allocations);
//   - map, slice, and pointer-to-composite literals (heap allocations; plain
//     struct value literals stay on the stack and are allowed);
//   - blocking synchronization: method calls such as Lock/RLock/Wait/Do on
//     types from package sync (sync.Pool.Get/Put and everything in
//     sync/atomic remain allowed — pools and atomics ARE the hot path's
//     tools), channel sends, receives, and select statements, and spawning
//     goroutines;
//   - implicit boxing: passing, returning, or assigning a concrete
//     non-pointer-shaped value where an interface is expected (each such
//     conversion is a runtime convT allocation on the fast path).
//
// The check is intra-procedural by design: annotating a function asserts
// its own body, not its callees'. Callees that must uphold the contract get
// their own annotation.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hotpath invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //diwarp:hotpath may not allocate, lock, call fmt, or box interfaces\n\n" +
		"Enforces the zero-alloc, lock-free send-path contract of DESIGN.md §4.4.",
	Run: run,
}

// syncBlocking lists the methods of package sync that acquire a lock or
// block. sync.Pool's Get/Put and sync/atomic are deliberately absent.
var syncBlocking = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"Wait": true, "Do": true,
	"Range": true, "LoadOrStore": true, "LoadAndDelete": true, "Delete": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.HasDirective(fn.Doc, "hotpath") {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hotpath function %s spawns a goroutine", fn.Name.Name)
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "hotpath function %s blocks on select", fn.Name.Name)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "hotpath function %s sends on a channel", fn.Name.Name)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "hotpath function %s receives from a channel", fn.Name.Name)
			}
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "hotpath function %s allocates a map literal", fn.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "hotpath function %s allocates a slice literal", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkCall(pass, fn, n)
		}
		return true
	})

	// &T{...} escapes to the heap when the pointer outlives the statement;
	// on a zero-alloc path the address-of-composite idiom is banned outright.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if _, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
				pass.Reportf(u.Pos(), "hotpath function %s heap-allocates &composite literal", fn.Name.Name)
			}
		}
		return true
	})

	checkBoxing(pass, fn)
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	if analysis.IsBuiltinCall(info, call, "make") || analysis.IsBuiltinCall(info, call, "new") {
		pass.Reportf(call.Pos(), "hotpath function %s allocates with %s", fn.Name.Name, ast.Unparen(call.Fun).(*ast.Ident).Name)
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// fmt.* call?
	if pkg := analysis.PkgNameOf(info, sel.X); pkg != nil && pkg.Path() == "fmt" {
		pass.Reportf(call.Pos(), "hotpath function %s calls fmt.%s (outline cold formatting into an unannotated helper)", fn.Name.Name, sel.Sel.Name)
		return
	}
	// Blocking sync method?
	if analysis.ReceiverPkgPath(info, sel) == "sync" && syncBlocking[sel.Sel.Name] {
		pass.Reportf(call.Pos(), "hotpath function %s takes a lock via sync method %s", fn.Name.Name, sel.Sel.Name)
	}
}

// checkBoxing reports implicit concrete-to-interface conversions in call
// arguments, returns, and assignments. Pointer-shaped values (pointers,
// channels, maps, funcs) convert without allocating and are allowed.
func checkBoxing(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	boxes := func(dst types.Type, src ast.Expr) bool {
		if dst == nil {
			return false
		}
		if _, ok := dst.Underlying().(*types.Interface); !ok {
			return false
		}
		tv, ok := info.Types[src]
		if !ok || tv.Type == nil {
			return false
		}
		st := tv.Type
		if st == types.Typ[types.UntypedNil] {
			return false
		}
		switch st.Underlying().(type) {
		case *types.Interface:
			return false // already an interface: no conversion
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			return false // direct-interface representation: no allocation
		}
		if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
			return false
		}
		return true
	}
	report := func(pos ast.Node, src ast.Expr, what string) {
		tv := info.Types[src]
		pass.Reportf(pos.Pos(), "hotpath function %s boxes %s into an interface (%s)", fn.Name.Name, tv.Type, what)
	}

	// Result types for return checking come from the innermost enclosing
	// function — the annotated declaration or a nested func literal.
	var outerSig *types.Signature
	if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
		outerSig = obj.Type().(*types.Signature)
	}
	var lits []*ast.FuncLit
	sigAt := func(pos token.Pos) *types.Signature {
		sig := outerSig
		for _, lit := range lits {
			if lit.Pos() <= pos && pos < lit.End() {
				if s, ok := info.Types[lit].Type.(*types.Signature); ok {
					sig = s
				}
			}
		}
		return sig
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sig := signatureOf(info, n)
			if sig == nil {
				return true
			}
			for i, arg := range n.Args {
				pt := paramType(sig, i, n.Ellipsis.IsValid())
				if boxes(pt, arg) {
					report(arg, arg, "call argument")
				}
			}
		case *ast.ReturnStmt:
			sig := sigAt(n.Pos())
			if sig == nil || sig.Results() == nil || len(n.Results) != sig.Results().Len() {
				return true
			}
			for i, res := range n.Results {
				if boxes(sig.Results().At(i).Type(), res) {
					report(res, res, "return value")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				lt, ok := info.Types[n.Lhs[i]]
				if !ok {
					continue
				}
				if boxes(lt.Type, n.Rhs[i]) {
					report(n.Rhs[i], n.Rhs[i], "assignment")
				}
			}
		}
		return true
	})
}

// signatureOf returns the signature of the called function, or nil for
// builtins and conversions.
func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType returns the type the i'th argument converts to, accounting for
// variadic parameters; nil when out of range (e.g. conversion exprs).
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	if sig.Variadic() && !ellipsis {
		last := params.Len() - 1
		if i >= last {
			if sl, ok := params.At(last).Type().(*types.Slice); ok {
				return sl.Elem()
			}
			return nil
		}
	}
	if i < params.Len() {
		return params.At(i).Type()
	}
	return nil
}
