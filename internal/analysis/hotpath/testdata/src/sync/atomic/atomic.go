// Package atomic is the fixture stand-in for sync/atomic: its import path
// is "sync/atomic", not exactly "sync", so hotpath leaves its methods alone
// — atomics ARE the hot path's tools.
package atomic

type Int64 struct{ v int64 }

func (a *Int64) Add(n int64) int64 { return a.v }
func (a *Int64) Load() int64       { return a.v }
func (a *Int64) Store(n int64)     {}

type Uint64 struct{ v uint64 }

func (a *Uint64) Add(n uint64) uint64 { return a.v }
func (a *Uint64) Load() uint64        { return a.v }
func (a *Uint64) Store(n uint64)      {}

type Uint32 struct{ v uint32 }

func (a *Uint32) Add(n uint32) uint32             { return a.v }
func (a *Uint32) Load() uint32                    { return a.v }
func (a *Uint32) Store(n uint32)                  {}
func (a *Uint32) CompareAndSwap(o, n uint32) bool { return true }

// Pointer mirrors atomic.Pointer[T]: the lock-free snapshot publication
// primitive the sharded peer table's read path is built on.
type Pointer[T any] struct{ v *T }

func (p *Pointer[T]) Load() *T                    { return p.v }
func (p *Pointer[T]) Store(v *T)                  {}
func (p *Pointer[T]) CompareAndSwap(o, n *T) bool { return true }
