// Package sync is the fixture stand-in for the real sync: hotpath bans the
// blocking methods of any type declared in a package whose import path is
// exactly "sync", while Pool.Get/Put stay allowed.
package sync

type Mutex struct{ state int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type Pool struct{ x any }

func (p *Pool) Get() any  { return p.x }
func (p *Pool) Put(v any) {}
