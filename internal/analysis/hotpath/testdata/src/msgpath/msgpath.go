// Package msgpath mirrors the message layer's eager fast path (internal/msg):
// a pooled gather-vector send and a lock-free credit reservation, both
// annotated. The fixture pins that the idioms the real path relies on —
// sync.Pool checkout of a pointer-shaped vector, atomic CAS credit
// arithmetic, struct-value message construction — stay clean, and that the
// constructs the path must avoid are flagged.
package msgpath

import (
	"sync"
	"sync/atomic"
)

type addr struct {
	node string
	port uint16
}

type message struct {
	from addr
	data []byte
}

type endpoint struct {
	vecs    sync.Pool
	sent    atomic.Uint32
	limit   atomic.Uint32
	handler func(message)
}

func (e *endpoint) post(v [][]byte) error { return nil }

// goodEagerPost is the real postEager shape: pooled *[2][]byte, no allocs.
//
//diwarp:hotpath
func (e *endpoint) goodEagerPost(hdr, payload []byte) error {
	vb := e.vecs.Get().(*[2][]byte)
	vb[0], vb[1] = hdr, payload
	err := e.post(vb[:])
	vb[0], vb[1] = nil, nil
	e.vecs.Put(vb)
	return err
}

// goodReserve is the real tryReserve shape: pure atomics.
//
//diwarp:hotpath
func (e *endpoint) goodReserve() bool {
	for {
		s := e.sent.Load()
		if int32(s-e.limit.Load()) >= 0 {
			return false
		}
		if e.sent.CompareAndSwap(s, s+1) {
			return true
		}
	}
}

// goodDeliver is the real handleEager shape: struct-value message, direct
// handler call.
//
//diwarp:hotpath
func (e *endpoint) goodDeliver(from addr, buf []byte, n int) {
	e.handler(message{from: from, data: buf[:n]})
}

// badEagerPost is the tempting version of the send path: a fresh slice
// literal per send.
//
//diwarp:hotpath
func (e *endpoint) badEagerPost(hdr, payload []byte) error {
	vec := [][]byte{hdr, payload} // want `allocates a slice literal`
	return e.post(vec)
}

var creditMu sync.Mutex

// badReserve guards the ledger with a lock instead of CAS.
//
//diwarp:hotpath
func (e *endpoint) badReserve() bool {
	creditMu.Lock() // want `takes a lock`
	ok := e.sent.Load() < e.limit.Load()
	creditMu.Unlock()
	return ok
}

// badDeliver parks on a channel inside the delivery path.
//
//diwarp:hotpath
func (e *endpoint) badDeliver(ch chan message, m message) {
	ch <- m // want `sends on a channel`
}

// unannotated may do all of it: the analyzer keys strictly on the marker.
func (e *endpoint) unannotated(hdr, payload []byte) error {
	vec := [][]byte{hdr, payload}
	creditMu.Lock()
	creditMu.Unlock()
	return e.post(vec)
}
