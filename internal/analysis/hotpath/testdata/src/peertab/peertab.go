// Package peertab mirrors the sharded peer table's datapath lookup
// (internal/peertab, DESIGN.md §4.12): shard selection is pure hash
// arithmetic and the read path is one atomic snapshot load plus one read of
// an immutable map — no lock, no allocation. The fixture pins that this
// idiom stays clean under the hotpath contract and that the tempting
// shortcuts (locking the stripe on the read path, doing the copy-on-write
// insert inline instead of outlining it) are flagged.
package peertab

import (
	"sync"
	"sync/atomic"
)

type addr struct {
	node string
	port uint16
}

type entry struct {
	key  addr
	hits int
}

type shard struct {
	mu   sync.Mutex
	snap atomic.Pointer[map[addr]*entry]
}

type table struct {
	shards []shard
	mask   uint32
}

// hashAddr is the chained FNV-1a shape: pure integer arithmetic.
//
//diwarp:hotpath
func hashAddr(a addr) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(a.node); i++ {
		h = (h ^ uint32(a.node[i])) * 16777619
	}
	h = (h ^ uint32(a.port&0xff)) * 16777619
	return (h ^ uint32(a.port>>8)) * 16777619
}

// goodGet is the real Get shape: mask-select the stripe, one atomic load,
// one map read from the immutable snapshot. Clean.
//
//diwarp:hotpath
func (t *table) goodGet(a addr) *entry {
	s := &t.shards[hashAddr(a)&t.mask]
	return (*s.snap.Load())[a]
}

// goodTouch mutates through the entry pointer the snapshot handed out —
// still no locks or allocation on the fast path.
//
//diwarp:hotpath
func (t *table) goodTouch(a addr) bool {
	e := t.goodGet(a)
	if e == nil {
		return false
	}
	e.hits++
	return true
}

// badLockedGet guards the read path with the stripe lock — the global-mutex
// demux this table exists to kill.
//
//diwarp:hotpath
func (t *table) badLockedGet(a addr) *entry {
	s := &t.shards[hashAddr(a)&t.mask]
	s.mu.Lock() // want `takes a lock via sync method Lock`
	var snap map[addr]*entry
	if p := s.snap.Load(); p != nil {
		snap = *p
	}
	e := snap[a]
	s.mu.Unlock()
	return e
}

// badInlineCreate performs the copy-on-write insert on the annotated path:
// the map copy and the new entry both allocate. The real code outlines this
// into the unannotated GetOrCreate slow path.
//
//diwarp:hotpath
func (t *table) badInlineCreate(a addr) *entry {
	s := &t.shards[hashAddr(a)&t.mask]
	old := *s.snap.Load()
	if e := old[a]; e != nil {
		return e
	}
	next := make(map[addr]*entry, len(old)+1) // want `allocates with make`
	for k, v := range old {
		next[k] = v
	}
	e := &entry{key: a} // want `heap-allocates &composite literal`
	next[a] = e
	s.snap.Store(&next)
	return e
}
