// Package a exercises hotpath: every banned construct inside an annotated
// function, the allowed idioms (sync.Pool, append, pointer-shaped interface
// values), and the same constructs unflagged without the annotation.
package a

import (
	"fmt"
	"sync"
)

type sink interface{ accept() }

type value struct{ n int }

func (value) accept() {}

var mu sync.Mutex
var pool sync.Pool

func take(s sink) {}

//diwarp:hotpath
func badAllocs(n int) {
	s := make([]byte, n) // want `allocates with make`
	_ = s
	m := map[int]int{} // want `allocates a map literal`
	_ = m
	sl := []int{1, 2} // want `allocates a slice literal`
	_ = sl
	p := &value{n} // want `heap-allocates`
	_ = p
}

//diwarp:hotpath
func badLockAndFmt(n int) string {
	mu.Lock() // want `takes a lock`
	mu.Unlock()
	return fmt.Sprintf("%d", n) // want `calls fmt.Sprintf` `boxes`
}

//diwarp:hotpath
func badConcurrency(c chan int) {
	go take(nil) // want `spawns a goroutine`
	c <- 1       // want `sends on a channel`
	<-c          // want `receives from a channel`
}

//diwarp:hotpath
func badBoxing(v value) sink {
	take(v)  // want `boxes`
	return v // want `boxes`
}

//diwarp:hotpath
func goodHotLoop(b []byte, vs []value) int {
	x := pool.Get() // sync.Pool is the hot path's tool, not a lock
	pool.Put(x)
	b = append(b, 0) // append into an existing buffer is not a literal
	v := value{n: len(b)}
	take(&v) // pointer-shaped: direct interface value, no convT
	total := 0
	for _, e := range vs {
		total += e.n
	}
	return total
}

// coldPath shows the outlining idiom: the same constructs are fine in an
// unannotated helper.
func coldPath(n int) string {
	mu.Lock()
	defer mu.Unlock()
	return fmt.Sprintf("%d", n)
}

type addr struct{ port uint16 }

// badRecvBatch is the batched-receive shape done wrong: fresh destination
// slices and a per-packet copy buffer allocated inside the annotated
// function instead of being supplied by the caller or a pool.
//
//diwarp:hotpath
func badRecvBatch(n int) ([][]byte, []addr) {
	pkts := make([][]byte, n) // want `allocates with make`
	froms := make([]addr, n)  // want `allocates with make`
	for i := range pkts {
		pkts[i] = make([]byte, 2048) // want `allocates with make`
		froms[i] = addr{port: uint16(i)}
	}
	return pkts, froms
}

// goodRecvBatch is the same shape done right: the caller owns the
// destination slices, buffers come from the pool, and per-packet state is
// struct values written in place — nothing escapes, nothing allocates.
//
//diwarp:hotpath
func goodRecvBatch(pkts [][]byte, froms []addr) int {
	n := 0
	for i := range pkts {
		buf, _ := pool.Get().([]byte)
		if buf == nil {
			break // pool empty: cold refill is the caller's problem
		}
		pkts[i] = buf[:0]
		froms[i] = addr{port: uint16(i)}
		n++
	}
	return n
}

// --- kernel batch syscall-path shapes (transport's sendmmsg/recvmmsg arm
// functions): the vector arrays behind a batch syscall must be preallocated
// per endpoint and filled in place, never rebuilt per burst. ---

type iovec struct {
	base *byte
	vlen uint64
}

type msghdr struct {
	name    *byte
	namelen uint32
	iov     *iovec
	iovlen  uint64
	control *byte
}

// mmsgSock models an endpoint owning its syscall arrays.
type mmsgSock struct {
	hdrs [64]msghdr
	iovs [64]iovec
	ctrl [32]byte
}

// badArmSend is the syscall arm done wrong: fresh header and iovec arrays
// plus a literal control buffer on every burst.
//
//diwarp:hotpath
func badArmSend(pkts [][]byte) []msghdr {
	hdrs := make([]msghdr, len(pkts)) // want `allocates with make`
	iovs := make([]iovec, len(pkts))  // want `allocates with make`
	ctrl := []byte{0, 0, 0, 0}        // want `allocates a slice literal`
	for i := range pkts {
		iovs[i] = iovec{vlen: uint64(len(pkts[i]))}
		hdrs[i].iov = &iovs[i]
		hdrs[i].control = &ctrl[0]
	}
	return hdrs
}

// goodArmSend is the same arm done right: the endpoint's preallocated
// arrays are indexed and filled in place, so arming a burst of any width
// touches no allocator.
//
//diwarp:hotpath
func (s *mmsgSock) goodArmSend(pkts [][]byte) int {
	for i, p := range pkts {
		if len(p) > 0 {
			s.iovs[i].base = &p[0]
		}
		s.iovs[i].vlen = uint64(len(p))
		h := &s.hdrs[i]
		h.iov = &s.iovs[i]
		h.iovlen = 1
		h.control = &s.ctrl[0]
	}
	return len(pkts)
}
