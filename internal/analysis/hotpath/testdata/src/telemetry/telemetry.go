// Package telemetry is the fixture mirror of internal/telemetry's record
// path: the exact shapes Counter.Add, Histogram.Observe, and Ring.Record
// use under their //diwarp:hotpath annotations. The instrument methods must
// produce zero diagnostics — that is the proof DESIGN.md §4.6 leans on when
// it claims counters are safe to bump from the batched send path. The
// locked variant at the bottom is the design telemetry rejected, kept here
// to show the analyzer would have caught it.
package telemetry

import (
	"sync"
	"sync/atomic"
)

type Counter struct{ v atomic.Int64 }

//diwarp:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

//diwarp:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

type Gauge struct{ v atomic.Int64 }

//diwarp:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [65]atomic.Int64
}

//diwarp:hotpath
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	for x := v; x > 0; x >>= 1 {
		i++
	}
	h.buckets[i].Add(1)
}

type slot struct {
	seq  atomic.Uint64
	ts   atomic.Uint64
	meta atomic.Uint64
	arg  atomic.Uint64
}

type Ring struct {
	next  atomic.Uint64
	slots [8]slot
}

// Record is the trace ring's claim-and-stamp sequence: one atomic counter
// claim, then four plain stores bracketed by an odd/even seq stamp. No
// allocation, no lock, no channel — only array indexing and atomics.
//
//diwarp:hotpath
func (r *Ring) Record(t uint8, peer uint32, size int, arg uint32) {
	n := r.next.Add(1) - 1
	s := &r.slots[n%uint64(len(r.slots))]
	s.seq.Store(2*n + 1)
	s.ts.Store(n)
	s.meta.Store(uint64(t)<<56 | uint64(peer)<<32 | uint64(uint32(size)))
	s.arg.Store(uint64(arg))
	s.seq.Store(2 * n)
}

// lockedRegistry is the mutex-and-map design the telemetry package
// deliberately avoided; annotated, every step of it is a finding.
type lockedRegistry struct {
	mu sync.Mutex
	m  map[string]int64
}

//diwarp:hotpath
func (r *lockedRegistry) add(name string, n int64) {
	r.mu.Lock() // want `takes a lock`
	r.m[name] += n
	r.mu.Unlock()
}
