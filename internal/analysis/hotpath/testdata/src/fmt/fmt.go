// Package fmt is the fixture stand-in for the real fmt: hotpath bans calls
// into any package whose import path is exactly "fmt", which this stub's
// path satisfies.
package fmt

func Errorf(format string, args ...any) error   { return nil }
func Sprintf(format string, args ...any) string { return format }
