// Package analysistest runs an analyzer over small fixture packages and
// checks its diagnostics against // want comments, mirroring (a subset of)
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Fixtures live in GOPATH-style trees: Run(t, dir, analyzer, "pkgpath")
// loads every .go file under dir/src/pkgpath, type-checks the package — its
// imports resolve recursively against the same dir/src tree, so a fixture
// needing fmt or nio imports a stub defined in testdata rather than the
// real standard library — and applies the analyzer through the same
// analysis.Run path "go vet -vettool" uses, //diwarp:ignore suppression
// included.
//
// Expectations are trailing comments on the line the diagnostic must point
// at:
//
//	pool.Get() // want `may leak`
//
// The backquoted string is a regexp matched against the diagnostic message;
// several on one line each require a distinct diagnostic. Diagnostics with
// no matching want, and wants with no matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run applies the analyzer to each named fixture package under dir/src and
// reports mismatches against the fixtures' // want comments through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, pkgpath := range pkgpaths {
		t.Run(pkgpath, func(t *testing.T) {
			t.Helper()
			runOne(t, dir, a, pkgpath)
		})
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld := &loader{
		root: filepath.Join(dir, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*loaded),
	}
	lp, err := ld.load(pkgpath)
	if err != nil {
		t.Fatal(err)
	}

	diags, err := analysis.Run(ld.fset, lp.files, lp.pkg, lp.info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, ld.fset, lp.files)

	// Match each diagnostic to the first unconsumed want on its line whose
	// regexp accepts the message.
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE extracts the quoted patterns of a want comment; both `...` and
// "..." quote a pattern.
var wantRE = regexp.MustCompile("// want ((?:[`\"][^`\"]*[`\"]\\s*)+)")
var patRE = regexp.MustCompile("[`\"]([^`\"]*)[`\"]")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*want {
	t.Helper()
	wants := make(map[wantKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pm := range patRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pm[1], err)
					}
					key := wantKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// loader type-checks fixture packages from a src tree, resolving imports
// recursively within the same tree.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*loaded
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func (ld *loader) load(pkgpath string) (*loaded, error) {
	if lp, ok := ld.pkgs[pkgpath]; ok {
		if lp == nil {
			return nil, fmt.Errorf("import cycle through %q", pkgpath)
		}
		return lp, nil
	}
	ld.pkgs[pkgpath] = nil // cycle marker

	pkgdir := filepath.Join(ld.root, filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %v", pkgpath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(pkgdir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q has no .go files", pkgpath)
	}

	info := analysis.NewTypesInfo()
	tc := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			lp, err := ld.load(path)
			if err != nil {
				return nil, err
			}
			return lp.pkg, nil
		}),
	}
	pkg, err := tc.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %v", pkgpath, err)
	}
	lp := &loaded{pkg: pkg, files: files, info: info}
	ld.pkgs[pkgpath] = lp
	return lp, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
