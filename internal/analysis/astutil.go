package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PathHasSegment reports whether the package import path contains seg as a
// complete "/"-separated element — so "repro/internal/ddp" matches "ddp" but
// "repro/internal/ddputil" does not. Analyzers use it to scope themselves to
// the protocol layers named in their contracts while still matching the
// single-segment import paths of analysistest fixtures.
func PathHasSegment(path, seg string) bool {
	for len(path) > 0 {
		i := strings.IndexByte(path, '/')
		if i < 0 {
			return path == seg
		}
		if path[:i] == seg {
			return true
		}
		path = path[i+1:]
	}
	return false
}

// PathHasAnySegment reports whether the import path contains any of the
// given segments.
func PathHasAnySegment(path string, segs ...string) bool {
	for _, s := range segs {
		if PathHasSegment(path, s) {
			return true
		}
	}
	return false
}

// PkgNameOf resolves an identifier used as the X of a selector to the
// imported package it names, or nil.
func PkgNameOf(info *types.Info, e ast.Expr) *types.Package {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported()
	}
	return nil
}

// ReceiverPkgPath returns the import path of the package declaring the
// method called by the selector-based call, or "" when the callee is not a
// method (or not resolvable). It sees through pointers and named types:
// a call mu.Lock() with mu a sync.Mutex field yields "sync".
func ReceiverPkgPath(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return ""
	}
	if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil {
		return fn.Pkg().Path()
	}
	return ""
}

// NamedOf unwraps pointers and aliases to the *types.Named beneath t, or nil.
func NamedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// IsNamedType reports whether t (possibly behind pointers) is the named type
// pkgSegment.typeName, where pkgSegment must appear as a path segment of the
// declaring package ("nio".Pool matches both repro/internal/nio and a
// fixture package imported as plain "nio").
func IsNamedType(t types.Type, pkgSegment, typeName string) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return PathHasSegment(obj.Pkg().Path(), pkgSegment)
}

// CalleeFuncDecl resolves a call to the *types.Func it invokes, or nil for
// builtins, conversions, and indirect calls through function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn
			}
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsBuiltinCall reports whether the call invokes the named universe builtin
// (len, cap, copy, append, ...).
func IsBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// ObjectOf returns the object an identifier expression denotes, or nil.
func ObjectOf(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}
