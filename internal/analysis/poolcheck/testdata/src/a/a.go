// Package a exercises poolcheck: leaks, use-after-Put, double Put, and the
// legal idioms (defer release, self-append regrowth, hand-offs) that must
// stay silent.
package a

import "nio"

var pool = &nio.Pool{}

func consume(b []byte) {}

// leakOnBranch releases only when n > 0: the fall-through path leaks.
func leakOnBranch(n int) {
	b := pool.Get() // want `may leak`
	if n > 0 {
		pool.Put(b)
	}
}

// leakOnReturn leaks on the early return, not the releasing path.
func leakOnReturn(n int) int {
	b := pool.Get() // want `may leak`
	if n > 0 {
		return n
	}
	pool.Put(b)
	return 0
}

func useAfterPut() {
	b := pool.Get()
	pool.Put(b)
	b = append(b, 1) // want `used after Put`
	_ = b
}

func doublePut() {
	b := pool.Get()
	pool.Put(b)
	pool.Put(b) // want `released twice`
}

// okStraightLine is the canonical cut-append-release shape of the send path.
func okStraightLine(v uint32) {
	b := pool.Get()
	b = nio.PutU32(b, v)
	b = append(b, 0xff)
	pool.Put(b)
}

// okDefer releases via defer; later (pre-return) uses are legal.
func okDefer(v uint32) {
	b := pool.Get()
	defer pool.Put(b)
	b = nio.PutU32(b, v)
	consume(b)
}

// okBothArms releases on every branch.
func okBothArms(n int) {
	b := pool.Get()
	if n > 0 {
		pool.Put(b)
	} else {
		pool.Put(b)
	}
}

// okReturn transfers ownership to the caller.
func okReturn() []byte {
	b := pool.Get()
	return b
}

// okHandoff transfers ownership to the callee (the wire hand-off: the
// transport or a queue now owns the buffer).
func okHandoff() {
	b := pool.Get()
	consume(b)
}

// okRebindAfterPut re-acquires into the same variable: legal, and the new
// buffer is tracked in its own right.
func okRebindAfterPut() {
	b := pool.Get()
	pool.Put(b)
	b = pool.Get()
	pool.Put(b)
}
