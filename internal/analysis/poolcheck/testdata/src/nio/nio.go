// Package nio is the fixture stand-in for repro/internal/nio: poolcheck
// keys its acquire/release tracking on the nio.Pool type by name and
// package segment, so this stub's single-segment import path "nio" matches.
package nio

// Pool mimics the freelist the real datapath draws wire buffers from.
type Pool struct{ size int }

func (pl *Pool) Get() []byte  { return make([]byte, 0, pl.size) }
func (pl *Pool) Put(b []byte) {}

// PutU32 mimics the append-style wire helpers the send path regrows
// buffers through.
func PutU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
